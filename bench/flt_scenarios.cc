// Fault-scenario suite: deterministic fault injection against the
// workload generator, reporting degraded-mode behavior and tail latency
// (p50/p99/p999) per scenario.
//
// Each scenario is one workload::Spec with an armed fault::FaultPlan: a
// broken ring link under an incast (on all three channel devices -- BBP,
// sockets, hybrid), a slowed RPC server, a congested fabric under a
// hot-spot, host-port congestion under an all-to-all, and a redundant-ring
// switchover. Every report is a pure function of its spec: the output is
// byte-identical at any --jobs value and is diffed against
// bench/golden/flt_scenarios.txt by repro_all.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "sweep/runner.h"
#include "workload/workload.h"

using namespace scrnet;

namespace {

using fault::FaultKind;
using workload::Device;
using workload::Pattern;
using workload::Spec;

constexpr u32 kN = 8;

u64 fired(const workload::Report& r, FaultKind k) {
  return r.fault_fired[static_cast<u32>(k)];
}

std::vector<Spec> catalog() {
  std::vector<Spec> specs;

  {  // Baseline: the incast with timeouts armed but nothing injected.
    Spec s;
    s.name = "clean_incast_bbp";
    s.pattern = Pattern::kIncast;
    s.device = Device::kBbp;
    s.nodes = kN;
    s.op_timeout = ms(50);
    specs.push_back(s);
  }
  {  // Permanent early break of the link into rank 0: senders exhaust
     // their 8 billboards (ACKs stop) and time out; rank 0's receives
     // time out. Both sides return kTimedOut instead of hanging.
    Spec s;
    s.name = "break_incast_bbp";
    s.pattern = Pattern::kIncast;
    s.device = Device::kBbp;
    s.nodes = kN;
    s.bbp_slots = 8;
    s.op_timeout = ms(2);
    s.faults.link_down(us(150), kN - 1);
    specs.push_back(s);
  }
  {  // Fail-stop partition of the sink on the TCP path: sends still buffer
     // (the stack never blocks), so only the receiver observes timeouts.
    Spec s;
    s.name = "part_incast_sock";
    s.pattern = Pattern::kIncast;
    s.device = Device::kSock;
    s.fabric = harness::TcpFabricKind::kFastEthernet;
    s.nodes = kN;
    s.op_timeout = ms(2);
    s.faults.partition(ms(1), fault::FaultPlan::kAnyNode, 0);
    specs.push_back(s);
  }
  {  // The same ring break under the hybrid device: small messages ride
     // the (broken) SCRAMNet low path, so timeouts propagate as on BBP.
    Spec s;
    s.name = "break_incast_hybrid";
    s.pattern = Pattern::kIncast;
    s.device = Device::kHybrid;
    s.fabric = harness::TcpFabricKind::kMyrinet;
    s.nodes = kN;
    s.bbp_slots = 8;
    s.op_timeout = ms(2);
    s.retries = 1;
    s.faults.link_down(us(150), kN - 1);
    specs.push_back(s);
  }
  {  // One slowed server (CPU dial x8): its clients' round trips stretch,
     // growing the tail while the median stays near the clean value.
    Spec s;
    s.name = "rpc_slow_server";
    s.pattern = Pattern::kRpc;
    s.device = Device::kBbp;
    s.nodes = kN;
    s.ops = 32;
    s.op_timeout = ms(50);
    s.faults.slow_node(us(500), kN / 2, 8.0);
    specs.push_back(s);
  }
  {  // Congested fabric window under a hot-spot: every frame in the window
     // pays extra delay, inflating the tail of the one-way distribution.
    Spec s;
    s.name = "hotspot_congested_sock";
    s.pattern = Pattern::kHotspot;
    s.device = Device::kSock;
    s.fabric = harness::TcpFabricKind::kFastEthernet;
    s.nodes = kN;
    s.op_timeout = ms(50);
    s.faults.fabric_congestion(us(500), ms(20), us(60));
    specs.push_back(s);
  }
  {  // Host-port congestion (I/O dial) plus a slow node (CPU dial) under
     // an all-to-all: per-node throughput skews, latency tail grows.
    Spec s;
    s.name = "alltoall_hostio_bbp";
    s.pattern = Pattern::kAllToAll;
    s.device = Device::kBbp;
    s.nodes = kN;
    s.op_timeout = ms(50);
    s.faults.host_congestion(us(300), 3, 6.0).slow_node(us(300), 5, 4.0);
    specs.push_back(s);
  }
  {  // The same break on a redundant ring: the carrier-loss switchover
     // restores connectivity after cfg.switchover, so the run completes
     // (losses bounded to in-flight traffic) instead of timing out.
    Spec s;
    s.name = "switchover_incast_bbp";
    s.pattern = Pattern::kIncast;
    s.device = Device::kBbp;
    s.nodes = kN;
    s.redundant_ring = true;
    s.op_timeout = ms(2);
    s.faults.link_down(us(400), kN - 1);
    specs.push_back(s);
  }
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  bench::header("Fault scenarios: degraded-mode behavior and tail latency",
                "robustness extension (paper Section 6 ring recovery; "
                "bounded-wait timeouts instead of hangs)");

  const std::vector<Spec> specs = catalog();
  sweep::Runner runner(bench::parse_jobs(argc, argv));
  const std::vector<workload::Report> reports = runner.map(
      "flt", specs, [](const Spec& s) { return workload::run(s); });

  for (usize i = 0; i < specs.size(); ++i)
    std::cout << "\n" << reports[i].render(specs[i]);

  const workload::Report& clean = reports[0];
  const workload::Report& bbp = reports[1];
  const workload::Report& sock = reports[2];
  const workload::Report& hybrid = reports[3];
  const workload::Report& rpc = reports[4];
  const workload::Report& hotspot = reports[5];
  const workload::Report& a2a = reports[6];
  const workload::Report& redun = reports[7];

  std::cout << "\nChecks:\n";
  bench::check_shape("clean baseline completes every op without a timeout",
                     clean.ops_timeout == 0 &&
                         clean.ops_ok == u64{kN - 1} * 24);
  bench::check_shape("broken-link incast on BBP returns timeouts, not hangs",
                     bbp.ops_timeout > 0 && bbp.ops_ok < clean.ops_ok);
  bench::check_shape("partitioned incast on sockets times out at the receiver",
                     sock.ops_timeout > 0 && fired(sock, FaultKind::kPartition) > 0);
  bench::check_shape("broken-link incast on hybrid times out and retried sends",
                     hybrid.ops_timeout > 0 && hybrid.retried > 0);
  bench::check_shape("slow server stretches the RPC tail (p999 > p50)",
                     rpc.latency.percentile_permille(999) >
                         rpc.latency.percentile_permille(500) &&
                         rpc.ops_timeout == 0);
  bench::check_shape("congestion window inflates the hot-spot tail",
                     fired(hotspot, FaultKind::kCongestion) > 0 &&
                         hotspot.latency.max() >
                             clean.latency.percentile_permille(500));
  bench::check_shape("host dials skew the all-to-all without losing ops",
                     a2a.ops_timeout == 0 && a2a.ops_ok == u64{kN} * 24);
  bench::check_shape("redundant ring switches over and completes more ops",
                     redun.ops_ok > bbp.ops_ok);
  return 0;
}
