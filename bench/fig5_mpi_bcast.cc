// Figure 5: 4-node MPI_Bcast -- Fast Ethernet (MPICH point-to-point tree),
// SCRAMNet with the same point-to-point tree, and SCRAMNet using the
// BillBoard API multicast.
//
// Paper claims: point-to-point SCRAMNet beats Fast Ethernet below ~450 B;
// the API-multicast implementation is "much faster" and stays below Fast
// Ethernet through the full plotted range (up to 1 KB).
#include <iostream>

#include "bench_util.h"
#include "harness/benchops.h"
#include "sweep/runner.h"

using namespace scrnet;
using namespace scrnet::bench;
using namespace scrnet::harness;

int main(int argc, char** argv) {
  sweep::Runner runner(parse_jobs(argc, argv));

  header("Figure 5: 4-node MPI_Bcast on SCRAMNet and Fast Ethernet",
         "Moorthy et al., IPPS 1999, Figure 5");

  const std::vector<u32> sizes{0, 4, 64, 128, 256, 384, 512, 640, 768, 896, 1000};
  Series fe{"FastEth p2p-tree",
            mpi_tcp_bcast_us_sweep(TcpFabricKind::kFastEthernet, sizes, runner)},
      scr_p2p{"SCRAMNet p2p-tree",
              mpi_scramnet_bcast_us_sweep(sizes, scrmpi::CollAlgo::kPointToPoint,
                                          runner)},
      scr_mc{"SCRAMNet API-mcast",
             mpi_scramnet_bcast_us_sweep(sizes, scrmpi::CollAlgo::kNativeMcast,
                                         runner)};
  print_series(sizes, {fe, scr_p2p, scr_mc});

  std::cout << "\nShape checks (paper Section 5):\n";
  check_shape("SCRAMNet p2p-tree beats Fast Ethernet for small messages",
              scr_p2p.us[1] < fe.us[1]);
  report_crossover("SCRAMNet p2p-tree vs Fast Ethernet (paper: ~450 B)",
                   crossover(sizes, scr_p2p.us, fe.us), 300, 700);
  bool mc_below_fe = true;
  for (usize i = 0; i < sizes.size(); ++i)
    if (scr_mc.us[i] >= fe.us[i]) mc_below_fe = false;
  check_shape("API-multicast bcast faster than Fast Ethernet up to 1 KB",
              mc_below_fe);
  bool mc_below_p2p = true;
  for (usize i = 0; i < sizes.size(); ++i)
    if (scr_mc.us[i] >= scr_p2p.us[i]) mc_below_p2p = false;
  check_shape("API-multicast bcast \"much faster\" than the p2p tree",
              mc_below_p2p && scr_mc.us[1] * 1.8 < scr_p2p.us[1]);
  return 0;
}
