// Figure 2: One-way latency at the API layer -- SCRAMNet (BillBoard API)
// vs Fast Ethernet (TCP/IP), ATM (TCP/IP), Myrinet (native API) and
// Myrinet (TCP/IP).
//
// Paper claims (Section 5, OCR-reconstructed sizes, see EXPERIMENTS.md):
//  * SCRAMNet beats Fast Ethernet up to "several thousand bytes";
//  * beats ATM below ~1000-1800 B;
//  * beats the native Myrinet API below ~500 B;
//  * Myrinet over TCP/IP is slower than Fast Ethernet TCP/IP for small
//    messages.
#include <iostream>

#include "bench_util.h"
#include "harness/benchops.h"
#include "sweep/runner.h"

using namespace scrnet;
using namespace scrnet::bench;
using namespace scrnet::harness;

int main(int argc, char** argv) {
  sweep::Runner runner(parse_jobs(argc, argv));

  header("Figure 2: API-layer one-way latency across networks",
         "Moorthy et al., IPPS 1999, Figure 2");

  const std::vector<u32> sizes{0,    4,    64,   128,  256,  512, 750,
                               1000, 1500, 2000, 3000, 4000, 5000};
  Series scr{"SCRAMNet API", bbp_oneway_us_sweep(sizes, runner)},
      fe{"FastEth TCP",
         tcp_api_oneway_us_sweep(TcpFabricKind::kFastEthernet, sizes, runner)},
      atm{"ATM TCP", tcp_api_oneway_us_sweep(TcpFabricKind::kAtm, sizes, runner)},
      myr_api{"Myrinet API", myrinet_api_oneway_us_sweep(sizes, runner)},
      myr_tcp{"Myrinet TCP",
              tcp_api_oneway_us_sweep(TcpFabricKind::kMyrinet, sizes, runner)};
  print_series(sizes, {scr, fe, atm, myr_api, myr_tcp});

  std::cout << "\nShape checks (paper Section 5):\n";
  check_shape("SCRAMNet fastest at 4 bytes",
              scr.us[1] < fe.us[1] && scr.us[1] < atm.us[1] &&
                  scr.us[1] < myr_api.us[1] && scr.us[1] < myr_tcp.us[1]);
  report_crossover("SCRAMNet vs Fast Ethernet (\"several thousand bytes\")",
                   crossover(sizes, scr.us, fe.us), 1800, 6000);
  report_crossover("SCRAMNet vs ATM (paper: ~\"1?00 bytes\", OCR-damaged)",
                   crossover(sizes, scr.us, atm.us), 900, 2000);
  report_crossover("SCRAMNet vs Myrinet API (paper: ~\"5?0 bytes\")",
                   crossover(sizes, scr.us, myr_api.us), 350, 650);
  check_shape("Myrinet TCP slower than Fast Ethernet TCP at small sizes",
              myr_tcp.us[1] > fe.us[1]);
  check_shape("Myrinet API eventually fastest of all (high bandwidth)",
              myr_api.us.back() < scr.us.back() &&
                  myr_api.us.back() < fe.us.back() &&
                  myr_api.us.back() < atm.us.back());
  return 0;
}
