// Figure 6: MPI_Barrier -- SCRAMNet with the API-multicast implementation
// vs the MPICH point-to-point algorithm, at 3 and 4 nodes; plus the
// 3-node barrier on Fast Ethernet and ATM.
//
// Paper values: 3-node barrier = 554 us on Fast Ethernet, ~660 us on ATM
// (OCR "66"; the text says both are *more* expensive than SCRAMNet),
// 179 us on SCRAMNet point-to-point, 37 us with the API multicast
// (abstract quotes 37 us for the 4-node barrier).
#include <iostream>

#include "bench_util.h"
#include "harness/benchops.h"
#include "sweep/runner.h"

using namespace scrnet;
using namespace scrnet::bench;
using namespace scrnet::harness;

int main(int argc, char** argv) {
  sweep::Runner runner(parse_jobs(argc, argv));

  header("Figure 6: MPI_Barrier on SCRAMNet, Fast Ethernet and ATM",
         "Moorthy et al., IPPS 1999, Figure 6");

  const std::vector<u32> nodes{2, 3, 4};
  const std::vector<double> scr_api = mpi_scramnet_barrier_us_sweep(
      nodes, scrmpi::CollAlgo::kNativeMcast, runner);
  const std::vector<double> scr_p2p = mpi_scramnet_barrier_us_sweep(
      nodes, scrmpi::CollAlgo::kPointToPoint, runner);
  const std::vector<double> fe =
      mpi_tcp_barrier_us_sweep(TcpFabricKind::kFastEthernet, nodes, runner);
  const std::vector<double> atm =
      mpi_tcp_barrier_us_sweep(TcpFabricKind::kAtm, nodes, runner);

  Table t({"nodes", "SCRAMNet w/API (us)", "SCRAMNet w/p2p (us)",
           "FastEth p2p (us)", "ATM p2p (us)"});
  struct Row {
    u32 nodes;
    double scr_api, scr_p2p, fe, atm;
  };
  std::vector<Row> rows;
  for (usize i = 0; i < nodes.size(); ++i) {
    Row r{nodes[i], scr_api[i], scr_p2p[i], fe[i], atm[i]};
    rows.push_back(r);
    t.add_row({std::to_string(r.nodes), Table::num(r.scr_api),
               Table::num(r.scr_p2p), Table::num(r.fe), Table::num(r.atm)});
  }
  t.print(std::cout);

  const Row& r3 = rows[1];
  const Row& r4 = rows[2];
  std::cout << "\nHeadline checks (3-node barrier):\n";
  check("SCRAMNet w/p2p", 179.0, r3.scr_p2p, 0.35);
  // Our API barrier keeps the MPICH channel envelope on the null messages
  // (a 20-byte header the coordinator reads across the I/O bus per
  // arrival); the paper's implementation called bbp_Mcast directly from
  // the collective, shaving ~2 us per arrival. Hence the wider band here
  // -- see EXPERIMENTS.md.
  check("SCRAMNet w/API", 30.0, r3.scr_api, 0.55);
  check("Fast Ethernet", 554.0, r3.fe, 0.60);
  check("ATM", 660.0, r3.atm, 0.60);
  check("SCRAMNet w/API, 4 nodes", 37.0, r4.scr_api, 0.55);

  std::cout << "\nShape checks:\n";
  check_shape("ordering: API << p2p << FastEthernet <= ATM",
              r3.scr_api < r3.scr_p2p && r3.scr_p2p < r3.fe && r3.fe <= r3.atm);
  check_shape("API barrier scales gently with node count",
              r4.scr_api < 2.0 * r3.scr_api);
  return 0;
}
