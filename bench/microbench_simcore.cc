// Host-performance microbenchmarks (google-benchmark, real wall time):
// how fast the simulator substrate itself runs. All figure benches measure
// *virtual* time; this one guards the real-time cost of reproducing them.
#include <benchmark/benchmark.h>

#include "bbp/endpoint.h"
#include "common/bytes.h"
#include "harness/benchops.h"
#include "netmodels/rdma.h"
#include "scramnet/ring.h"
#include "scramnet/sim_port.h"
#include "scramnet/thread_backend.h"
#include "sim/simulation.h"
#include "sweep/runner.h"

namespace {

using namespace scrnet;

/// Raw event throughput of the DES kernel, posting the way device models
/// do: a small trivially-copyable functor that fits the queue's inline
/// event buffer, so the whole post/step cycle is allocation-free.
void BM_SimKernelEvents(benchmark::State& state) {
  const int chain = static_cast<int>(state.range(0));
  u64 events = 0;
  struct Tick {
    sim::Simulation* sim;
    int* remaining;
    void operator()() const {
      if (--*remaining > 0) sim->post(ns(10), *this);
    }
  };
  for (auto _ : state) {
    sim::Simulation sim;
    int remaining = chain;
    sim.post(ns(10), Tick{&sim, &remaining});
    sim.run();
    events += sim.events_executed();
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimKernelEvents)->Arg(1000)->Arg(100000);

/// Same chain through a type-erased std::function, the only idiom the old
/// priority-queue kernel supported (each post paid a heap-allocated copy).
/// Kept to track the legacy path's trajectory.
void BM_SimKernelEventsErased(benchmark::State& state) {
  const int chain = static_cast<int>(state.range(0));
  u64 events = 0;
  for (auto _ : state) {
    sim::Simulation sim;
    int remaining = chain;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.post(ns(10), tick);
    };
    sim.post(ns(10), tick);
    sim.run();
    events += sim.events_executed();
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimKernelEventsErased)->Arg(100000);

/// Queue churn with many outstanding events: every handler reposts itself
/// at a pseudo-random future delay, so the calendar's buckets and overflow
/// heap both stay loaded. Arg = events kept in flight (old kernel: O(log n)
/// per op on a 48-byte-element binary heap; calendar: O(1) bucket append).
void BM_SimQueueChurn(benchmark::State& state) {
  const int outstanding = static_cast<int>(state.range(0));
  constexpr int kRounds = 16;
  u64 events = 0;
  struct Churn {
    sim::Simulation* sim;
    u32 lcg;
    int remaining;
    void operator()() {
      if (--remaining <= 0) return;
      lcg = lcg * 1664525u + 1013904223u;
      // Mix near-bucket delays with beyond-horizon ones (up to ~67 us).
      sim->post(ps(1 + (lcg >> 6) % 67'000'000), *this);
    }
  };
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < outstanding; ++i)
      sim.post(ns(10 + i), Churn{&sim, static_cast<u32>(i) * 2654435761u, kRounds});
    sim.run();
    events += sim.events_executed();
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimQueueChurn)->Arg(1000)->Arg(10000);

/// Process context-switch cost (delay -> kernel -> resume round trip).
void BM_SimProcessSwitch(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  u64 switches = 0;
  for (auto _ : state) {
    sim::Simulation sim;
    sim.spawn("p", [&](sim::Process& p) {
      for (int i = 0; i < hops; ++i) p.delay(ns(5));
    });
    sim.run();
    switches += static_cast<u64>(hops);
  }
  state.counters["switch/s"] =
      benchmark::Counter(static_cast<double>(switches), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimProcessSwitch)->Arg(1000);

/// Process spawn + run-to-exit + teardown cost. The bodies are empty, so
/// lifetimes never overlap: the fiber scheduler must serve every process
/// after the first from its recycled stack pool (one mmap total); the
/// thread fallback pays a thread create/join per process.
void BM_SimSpawnTeardown(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  u64 spawned = 0;
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < procs; ++i) sim.spawn("p", [](sim::Process&) {});
    sim.run();
    spawned += static_cast<u64>(procs);
  }
  state.counters["procs/s"] =
      benchmark::Counter(static_cast<double>(spawned), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimSpawnTeardown)->Arg(1000);

/// Window machinery of the sharded kernel: Arg shards each run a tick
/// chain, and every tick posts a +400 ns event to the next shard through
/// the outbox/merge path, so each lockstep window carries real cross-shard
/// traffic. Arg=1 is the sequential kernel's price for the same event
/// count -- the overhead floor the conservative windows must amortize.
void BM_SimParallelWindow(benchmark::State& state) {
  const u32 jobs = static_cast<u32>(state.range(0));
  constexpr int kTicks = 4000;
  u64 events = 0;
  for (auto _ : state) {
    sim::Simulation sim(sim::SimConfig{.sim_jobs = jobs});
    sim.set_lookahead(ns(400));
    for (u32 s = 0; s < jobs; ++s) {
      sim.spawn_on(s, "tick", [&, s, jobs](sim::Process& p) {
        for (int i = 0; i < kTicks; ++i) {
          p.delay(ns(400));
          sim.post_at_shard((s + 1) % jobs, p.now() + ns(400), [] {});
        }
      });
    }
    sim.run();
    events += sim.events_executed();
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimParallelWindow)->Arg(1)->Arg(2)->Arg(4)
    ->MeasureProcessCPUTime()->UseRealTime();

/// End-to-end 64-node ring at Arg shards (driving the ring layer directly
/// keeps the event mix pure kernel): every node's host streams block writes
/// into its own region with staggered starts, and each write's packets
/// walk all 63 downstream nodes. The wall-clock speedup intra-run sharding
/// buys on a big topology; compare Arg=1 against Arg=4 on a multicore host
/// (on one core they roughly tie -- the sharded path degrades to inline
/// window drains).
void BM_SimParallelRing64(benchmark::State& state) {
  const u32 sim_jobs = static_cast<u32>(state.range(0));
  constexpr u32 kNodes = 64;
  constexpr u32 kWords = 64;
  u64 bytes = 0;
  std::vector<u32> block(kWords, 0xC3C3C3C3u);
  for (auto _ : state) {
    sim::Simulation sim(sim::SimConfig{.sim_jobs = sim_jobs});
    scramnet::RingConfig rc{.nodes = kNodes, .bank_words = 1u << 15};
    scramnet::Ring ring(sim, rc);
    if (sim.jobs() > 1) {
      ring.set_partition(harness::block_partition(kNodes, sim.jobs()));
      sim.set_lookahead(rc.hop_latency);
    }
    for (u32 n = 0; n < kNodes; ++n) {
      sim.spawn_on(ring.shard_of(n), "host", [&, n](sim::Process& p) {
        scramnet::SimHostPort port(ring, n, p);
        p.delay(ns(73) * (n + 1));  // tie-free staggered start
        for (int i = 0; i < 6; ++i) {
          port.write_block(n * 512, block);
          p.delay(us(2));
        }
      });
    }
    sim.run();
    bytes += u64{kNodes} * 6 * kWords * 4;
  }
  state.counters["bytes/s"] =
      benchmark::Counter(static_cast<double>(bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimParallelRing64)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

/// Large-N broadcast sweep: one word written per round, then the packet
/// walks every downstream node of an Arg-node ring on a quiet medium. The
/// coalesced walk applies the whole tail inside one host event (strictly
/// below the inline-apply bound), so host events per broadcast packet stay
/// O(1) instead of O(N) -- the headline "events/packet" counter is ~255 on
/// the per-hop walk at N=256 and ~2 here. Virtual times are bit-identical
/// either way; only the host cost changes.
void BM_RingWalk256(benchmark::State& state) {
  const u32 nodes = static_cast<u32>(state.range(0));
  constexpr int kRounds = 512;
  u64 events = 0, packets = 0;
  for (auto _ : state) {
    sim::Simulation sim;
    scramnet::Ring ring(sim,
                        scramnet::RingConfig{.nodes = nodes, .bank_words = 1u << 12});
    for (int r = 0; r < kRounds; ++r) {
      ring.host_write(static_cast<u32>(r) % nodes, 16, static_cast<u32>(r));
      sim.run();  // quiet ring: the whole broadcast tail coalesces
    }
    events += sim.events_executed();
    packets += kRounds;
  }
  state.counters["events/packet"] =
      static_cast<double>(events) / static_cast<double>(packets);
  state.counters["packets/s"] =
      benchmark::Counter(static_cast<double>(packets), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RingWalk256)->Arg(64)->Arg(256);

/// Deliberately skewed partition: shard 0 carries every node except one
/// per remaining shard (harness::skewed_partition). Lockstep windows leave
/// the cold shards idling at each barrier; the claim-mask scheduler lets
/// whichever thread drains early steal the hot shard's next window. On a
/// single-core host Arg>1 degrades to inline drains and should track
/// Arg=1; the speedup target lives on the multicore CI leg.
void BM_SimParallelSkew(benchmark::State& state) {
  const u32 sim_jobs = static_cast<u32>(state.range(0));
  constexpr u32 kNodes = 64;
  constexpr u32 kWords = 64;
  u64 bytes = 0;
  std::vector<u32> block(kWords, 0x5C5C5C5Cu);
  for (auto _ : state) {
    sim::Simulation sim(sim::SimConfig{.sim_jobs = sim_jobs});
    scramnet::RingConfig rc{.nodes = kNodes, .bank_words = 1u << 15};
    scramnet::Ring ring(sim, rc);
    if (sim.jobs() > 1) {
      ring.set_partition(harness::skewed_partition(kNodes, sim.jobs()));
      sim.set_lookahead(rc.hop_latency);
    }
    for (u32 n = 0; n < kNodes; ++n) {
      sim.spawn_on(ring.shard_of(n), "host", [&, n](sim::Process& p) {
        scramnet::SimHostPort port(ring, n, p);
        p.delay(ns(73) * (n + 1));  // tie-free staggered start
        for (int i = 0; i < 6; ++i) {
          port.write_block(n * 512, block);
          p.delay(us(2));
        }
      });
    }
    sim.run();
    bytes += u64{kNodes} * 6 * kWords * 4;
  }
  state.counters["bytes/s"] =
      benchmark::Counter(static_cast<double>(bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimParallelSkew)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

/// Host-side cost of replicating a 1 KiB block write around a 4-node ring.
/// In kFixed4 mode this is the worst case the packet pooling targets: 256
/// one-word packets, each walking 3 downstream nodes.
void BM_RingBlockWrite(benchmark::State& state) {
  const auto mode = state.range(0) == 0 ? scramnet::PacketMode::kFixed4
                                        : scramnet::PacketMode::kVariable;
  constexpr u32 kWords = 256;  // 1 KiB
  u64 bytes = 0;
  std::vector<u32> block(kWords, 0xA5A5A5A5u);
  for (auto _ : state) {
    sim::Simulation sim;
    scramnet::Ring ring(sim, scramnet::RingConfig{
                                 .nodes = 4, .bank_words = 1u << 12, .mode = mode});
    constexpr int kWrites = 64;
    for (int i = 0; i < kWrites; ++i) {
      ring.host_write_block(0, 0, block, ns(240));
      sim.run();
    }
    bytes += u64{kWrites} * kWords * 4;
  }
  state.SetLabel(mode == scramnet::PacketMode::kFixed4 ? "fixed4" : "variable");
  state.counters["bytes/s"] =
      benchmark::Counter(static_cast<double>(bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RingBlockWrite)->Arg(0)->Arg(1);

/// End-to-end simulated BBP ping-pong per wall second.
void BM_BbpPingPongSim(benchmark::State& state) {
  const u32 bytes = static_cast<u32>(state.range(0));
  u64 msgs = 0;
  for (auto _ : state) {
    sim::Simulation sim;
    scramnet::Ring ring(sim, scramnet::RingConfig{.nodes = 2, .bank_words = 1u << 15});
    constexpr int kIters = 50;
    sim.spawn("a", [&](sim::Process& p) {
      scramnet::SimHostPort port(ring, 0, p);
      bbp::Endpoint ep(port, 2, 0);
      std::vector<u8> msg(bytes), buf(std::max<u32>(bytes, 4));
      for (int i = 0; i < kIters; ++i) {
        (void)ep.send(1, msg);
        (void)ep.recv(1, buf);
      }
      ep.drain();
    });
    sim.spawn("b", [&](sim::Process& p) {
      scramnet::SimHostPort port(ring, 1, p);
      bbp::Endpoint ep(port, 2, 1);
      std::vector<u8> msg(bytes), buf(std::max<u32>(bytes, 4));
      for (int i = 0; i < kIters; ++i) {
        (void)ep.recv(0, buf);
        (void)ep.send(0, msg);
      }
      ep.drain();
    });
    sim.run();
    msgs += 2 * 50;
  }
  state.counters["msgs/s"] =
      benchmark::Counter(static_cast<double>(msgs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BbpPingPongSim)->Arg(4)->Arg(1024);

/// BBP over the real-threads backend: actual protocol throughput.
void BM_BbpPingPongThreads(benchmark::State& state) {
  const u32 bytes = static_cast<u32>(state.range(0));
  u64 msgs = 0;
  for (auto _ : state) {
    scramnet::ThreadBackend backend(2, 1u << 15);
    constexpr int kIters = 200;
    std::thread t1([&] {
      scramnet::ThreadPort port(backend, 1);
      bbp::Endpoint ep(port, 2, 1);
      std::vector<u8> msg(bytes), buf(std::max<u32>(bytes, 4));
      for (int i = 0; i < kIters; ++i) {
        (void)ep.recv(0, buf);
        (void)ep.send(0, msg);
      }
      ep.drain();
    });
    {
      scramnet::ThreadPort port(backend, 0);
      bbp::Endpoint ep(port, 2, 0);
      std::vector<u8> msg(bytes), buf(std::max<u32>(bytes, 4));
      for (int i = 0; i < kIters; ++i) {
        (void)ep.send(1, msg);
        (void)ep.recv(1, buf);
      }
      ep.drain();
    }
    t1.join();
    msgs += 2 * 200;
  }
  state.counters["msgs/s"] =
      benchmark::Counter(static_cast<double>(msgs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BbpPingPongThreads)->Arg(4)->Arg(1024);

/// Full MPI stack over the simulated ring with the zero-copy rendezvous
/// path forced on (billboard window + low eager cap): the wall-clock cost
/// of reproducing the large-message figures. Arg = payload bytes; 256
/// stays under the cap (eager control), 16384 rides RTS -> CTS(placement)
/// -> ring put -> FIN with no channel-packet copy.
void BM_RendezvousPingPong(benchmark::State& state) {
  const u32 bytes = static_cast<u32>(state.range(0));
  u64 msgs = 0;
  harness::ScramnetOptions opts;
  opts.ring.bank_words = 1u << 18;
  opts.bbp.rndv_window_bytes = 64 * 1024;
  opts.mpi.eager_cap = 256;
  for (auto _ : state) {
    constexpr int kIters = 20;
    harness::run_scramnet_mpi(
        2,
        [&](sim::Process&, scrmpi::Mpi& mpi) {
          const scrmpi::Comm& w = mpi.world();
          std::vector<u8> msg(bytes), buf(bytes);
          if (mpi.rank(w) == 0) {
            for (int i = 0; i < kIters; ++i) {
              (void)mpi.send(msg.data(), bytes, scrmpi::Datatype::kByte, 1, 0, w);
              (void)mpi.recv(buf.data(), bytes, scrmpi::Datatype::kByte, 1, 0, w);
            }
          } else {
            for (int i = 0; i < kIters; ++i) {
              (void)mpi.recv(buf.data(), bytes, scrmpi::Datatype::kByte, 0, 0, w);
              (void)mpi.send(msg.data(), bytes, scrmpi::Datatype::kByte, 0, 0, w);
            }
          }
        },
        opts);
    msgs += 2 * kIters;
  }
  state.counters["msgs/s"] =
      benchmark::Counter(static_cast<double>(msgs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RendezvousPingPong)->Arg(256)->Arg(16384);

/// RDMA NIC model put throughput at the fabric level: one registered
/// region, back-to-back puts (chunked at the MTU), each awaited on its
/// CQE the way ch_rdma's bounded wait does. Arg = bytes per put.
void BM_RdmaPut(benchmark::State& state) {
  const u32 bytes = static_cast<u32>(state.range(0));
  u64 total = 0;
  for (auto _ : state) {
    sim::Simulation sim;
    netmodels::RdmaFabric fab(sim, 2);
    std::vector<u8> dst(bytes), src(bytes, 0x5A);
    const u32 rkey = fab.register_region(1, dst);
    constexpr int kPuts = 50;
    sim.spawn("initiator", [&](sim::Process& p) {
      for (int i = 0; i < kPuts; ++i) {
        fab.rdma_put(0, rkey, 0, src, static_cast<u64>(i));
        while (!fab.cq(0).try_pop().has_value()) p.delay(us(1));
      }
    });
    sim.run();
    total += static_cast<u64>(kPuts) * bytes;
  }
  state.counters["bytes/s"] =
      benchmark::Counter(static_cast<double>(total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RdmaPut)->Arg(4096)->Arg(65536);

/// Figure-style latency sweep through sweep::Runner at 1..N workers: the
/// wall-clock win the parallel sweep engine buys on this machine. Arg is
/// the worker count; compare jobs=1 (inline sequential) against the rest.
void BM_SweepFigures(benchmark::State& state) {
  const u32 jobs = static_cast<u32>(state.range(0));
  const std::vector<u32> sizes{0, 4, 16, 64, 256, 512, 750, 1000};
  u64 sims = 0;
  for (auto _ : state) {
    sweep::Runner runner(jobs);
    const auto us = harness::bbp_oneway_us_sweep(sizes, runner, 4, 8, 2);
    benchmark::DoNotOptimize(us.data());
    sims += sizes.size();
  }
  state.counters["sims/s"] =
      benchmark::Counter(static_cast<double>(sims), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepFigures)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

/// Pool overhead floor: tiny jobs (one near-empty simulation each), so the
/// submit/steal/future machinery dominates instead of the simulations.
void BM_SweepThroughput(benchmark::State& state) {
  const u32 jobs = static_cast<u32>(state.range(0));
  u64 done = 0;
  for (auto _ : state) {
    sweep::Runner runner(jobs);
    std::vector<sweep::Future<u64>> futs;
    futs.reserve(256);
    for (int i = 0; i < 256; ++i)
      futs.push_back(runner.submit([] {
        sim::Simulation sim;
        int remaining = 16;
        struct Tick {
          sim::Simulation* sim;
          int* remaining;
          void operator()() const {
            if (--*remaining > 0) sim->post(ns(10), *this);
          }
        };
        sim.post(ns(10), Tick{&sim, &remaining});
        sim.run();
        return sim.events_executed();
      }));
    for (auto& f : futs) done += f.get() ? 1 : 0;
  }
  state.counters["jobs/s"] =
      benchmark::Counter(static_cast<double>(done), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepThroughput)->Arg(1)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
