// Host-performance microbenchmarks (google-benchmark, real wall time):
// how fast the simulator substrate itself runs. All figure benches measure
// *virtual* time; this one guards the real-time cost of reproducing them.
#include <benchmark/benchmark.h>

#include "bbp/endpoint.h"
#include "common/bytes.h"
#include "scramnet/ring.h"
#include "scramnet/sim_port.h"
#include "scramnet/thread_backend.h"
#include "sim/simulation.h"

namespace {

using namespace scrnet;

/// Raw event throughput of the DES kernel.
void BM_SimKernelEvents(benchmark::State& state) {
  const int chain = static_cast<int>(state.range(0));
  u64 events = 0;
  for (auto _ : state) {
    sim::Simulation sim;
    int remaining = chain;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.post(ns(10), tick);
    };
    sim.post(ns(10), tick);
    sim.run();
    events += sim.events_executed();
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimKernelEvents)->Arg(1000)->Arg(100000);

/// Process context-switch cost (delay -> kernel -> resume round trip).
void BM_SimProcessSwitch(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  u64 switches = 0;
  for (auto _ : state) {
    sim::Simulation sim;
    sim.spawn("p", [&](sim::Process& p) {
      for (int i = 0; i < hops; ++i) p.delay(ns(5));
    });
    sim.run();
    switches += static_cast<u64>(hops);
  }
  state.counters["switch/s"] =
      benchmark::Counter(static_cast<double>(switches), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimProcessSwitch)->Arg(1000);

/// End-to-end simulated BBP ping-pong per wall second.
void BM_BbpPingPongSim(benchmark::State& state) {
  const u32 bytes = static_cast<u32>(state.range(0));
  u64 msgs = 0;
  for (auto _ : state) {
    sim::Simulation sim;
    scramnet::Ring ring(sim, scramnet::RingConfig{.nodes = 2, .bank_words = 1u << 15});
    constexpr int kIters = 50;
    sim.spawn("a", [&](sim::Process& p) {
      scramnet::SimHostPort port(ring, 0, p);
      bbp::Endpoint ep(port, 2, 0);
      std::vector<u8> msg(bytes), buf(std::max<u32>(bytes, 4));
      for (int i = 0; i < kIters; ++i) {
        (void)ep.send(1, msg);
        (void)ep.recv(1, buf);
      }
      ep.drain();
    });
    sim.spawn("b", [&](sim::Process& p) {
      scramnet::SimHostPort port(ring, 1, p);
      bbp::Endpoint ep(port, 2, 1);
      std::vector<u8> msg(bytes), buf(std::max<u32>(bytes, 4));
      for (int i = 0; i < kIters; ++i) {
        (void)ep.recv(0, buf);
        (void)ep.send(0, msg);
      }
      ep.drain();
    });
    sim.run();
    msgs += 2 * 50;
  }
  state.counters["msgs/s"] =
      benchmark::Counter(static_cast<double>(msgs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BbpPingPongSim)->Arg(4)->Arg(1024);

/// BBP over the real-threads backend: actual protocol throughput.
void BM_BbpPingPongThreads(benchmark::State& state) {
  const u32 bytes = static_cast<u32>(state.range(0));
  u64 msgs = 0;
  for (auto _ : state) {
    scramnet::ThreadBackend backend(2, 1u << 15);
    constexpr int kIters = 200;
    std::thread t1([&] {
      scramnet::ThreadPort port(backend, 1);
      bbp::Endpoint ep(port, 2, 1);
      std::vector<u8> msg(bytes), buf(std::max<u32>(bytes, 4));
      for (int i = 0; i < kIters; ++i) {
        (void)ep.recv(0, buf);
        (void)ep.send(0, msg);
      }
      ep.drain();
    });
    {
      scramnet::ThreadPort port(backend, 0);
      bbp::Endpoint ep(port, 2, 0);
      std::vector<u8> msg(bytes), buf(std::max<u32>(bytes, 4));
      for (int i = 0; i < kIters; ++i) {
        (void)ep.send(1, msg);
        (void)ep.recv(1, buf);
      }
      ep.drain();
    }
    t1.join();
    msgs += 2 * 200;
  }
  state.counters["msgs/s"] =
      benchmark::Counter(static_cast<double>(msgs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BbpPingPongThreads)->Arg(4)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
