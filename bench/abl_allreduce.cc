// Ablation: MPI_Allreduce algorithm choice on SCRAMNet vs Fast Ethernet.
//
// reduce+bcast leans on SCRAMNet's hardware multicast for its second half;
// recursive doubling is the classic low-latency algorithm on
// point-to-point networks. The comparison shows where the paper's
// "collectives from hardware multicast" design philosophy pays and where
// classic algorithms remain competitive.
#include <iostream>

#include "bench_util.h"
#include "harness/benchops.h"

using namespace scrnet;
using namespace scrnet::bench;
using namespace scrnet::harness;
using scrmpi::Mpi;

namespace {

double allreduce_us(bool scramnet, Mpi::AllreduceAlgo algo,
                    scrmpi::CollAlgo bcast_algo, u32 doubles, u32 nodes = 4,
                    u32 iters = 12, u32 warmup = 3) {
  SimTime t0 = 0, t1 = 0;
  auto body = [&](sim::Process& p, Mpi& mpi) {
    mpi.set_allreduce_algo(algo);
    mpi.set_bcast_algo(bcast_algo);
    const scrmpi::Comm& w = mpi.world();
    std::vector<double> in(doubles, 1.5), out(doubles);
    for (u32 i = 0; i < warmup + iters; ++i) {
      if (mpi.rank(w) == 0 && i == warmup) t0 = p.now();
      mpi.allreduce(in.data(), out.data(), doubles, scrmpi::Datatype::kDouble,
                    scrmpi::ReduceOp::kSum, w);
      if (mpi.rank(w) == 0 && i == warmup + iters - 1) t1 = p.now();
    }
  };
  if (scramnet) {
    // Pinned to the sequential kernel: the reduce tree makes ranks 1 and 3
    // request the medium at the *same picosecond*, and equal-time
    // arbitration order is an explicit contract boundary -- event order
    // under jobs=1, node order under the sharded spine (both
    // deterministic, not byte-equal). See docs/simulator.md "Parallel
    // execution"; every other suite is byte-identical at any sim_jobs.
    ScramnetOptions opts;
    opts.sim_jobs = 1;
    run_scramnet_mpi(nodes, body, opts);
  } else {
    run_tcp_mpi(nodes, TcpFabricKind::kFastEthernet, body);
  }
  return to_us(t1 - t0) / iters;
}

}  // namespace

int main() {
  header("Ablation: MPI_Allreduce algorithms (4 nodes)",
         "collectives-from-multicast (paper Section 4) vs classic trees");

  Table t({"elements (doubles)", "SCR reduce+mcast-bcast (us)",
           "SCR reduce+p2p-bcast (us)", "SCR recursive-dbl (us)",
           "FE reduce+bcast (us)", "FE recursive-dbl (us)"});
  double scr_mc4 = 0, scr_rd4 = 0, fe_rb4 = 0, fe_rd4 = 0;
  for (u32 n : {1u, 16u, 64u, 128u}) {
    const double a = allreduce_us(true, Mpi::AllreduceAlgo::kReduceBcast,
                                  scrmpi::CollAlgo::kNativeMcast, n);
    const double b = allreduce_us(true, Mpi::AllreduceAlgo::kReduceBcast,
                                  scrmpi::CollAlgo::kPointToPoint, n);
    const double c = allreduce_us(true, Mpi::AllreduceAlgo::kRecursiveDoubling,
                                  scrmpi::CollAlgo::kPointToPoint, n);
    const double d = allreduce_us(false, Mpi::AllreduceAlgo::kReduceBcast,
                                  scrmpi::CollAlgo::kPointToPoint, n);
    const double e = allreduce_us(false, Mpi::AllreduceAlgo::kRecursiveDoubling,
                                  scrmpi::CollAlgo::kPointToPoint, n);
    if (n == 1) {
      scr_mc4 = a;
      scr_rd4 = c;
      fe_rb4 = d;
      fe_rd4 = e;
    }
    t.add_row({std::to_string(n), Table::num(a), Table::num(b), Table::num(c),
               Table::num(d), Table::num(e)});
  }
  t.print(std::cout);

  std::cout << "\nChecks:\n";
  check_shape("hardware-mcast bcast phase beats the p2p tree on SCRAMNet",
              allreduce_us(true, Mpi::AllreduceAlgo::kReduceBcast,
                           scrmpi::CollAlgo::kNativeMcast, 16) <
                  allreduce_us(true, Mpi::AllreduceAlgo::kReduceBcast,
                               scrmpi::CollAlgo::kPointToPoint, 16));
  check_shape("recursive doubling beats reduce+bcast on Fast Ethernet",
              fe_rd4 < fe_rb4);
  check_shape("every SCRAMNet variant beats every FE variant at small sizes",
              scr_mc4 < fe_rd4 && scr_rd4 < fe_rd4);
  return 0;
}
