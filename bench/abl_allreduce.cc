// Ablation: MPI_Allreduce algorithm choice on SCRAMNet vs Fast Ethernet.
//
// reduce+bcast leans on SCRAMNet's hardware multicast for its second half;
// recursive doubling is the classic low-latency algorithm on
// point-to-point networks; Rabenseifner and ring trade extra latency for
// moving each byte ~2x instead of log2(n)x, so they take over as vectors
// grow (arXiv cs/0408034). The comparison shows where the paper's
// "collectives from hardware multicast" design philosophy pays, where
// classic algorithms remain competitive, and where the bandwidth-optimal
// family wins -- the same crossovers the auto-tuner's decision table
// encodes (docs/collectives.md).
#include <iostream>

#include "bench_util.h"
#include "harness/benchops.h"

using namespace scrnet;
using namespace scrnet::bench;
using namespace scrnet::harness;
using scrmpi::Mpi;

namespace {

double allreduce_us(bool scramnet, Mpi::AllreduceAlgo algo,
                    scrmpi::CollAlgo bcast_algo, u32 doubles, u32 nodes = 4,
                    u32 iters = 12, u32 warmup = 3) {
  SimTime t0 = 0, t1 = 0;
  auto body = [&](sim::Process& p, Mpi& mpi) {
    mpi.set_allreduce_algo(algo);
    mpi.set_bcast_algo(bcast_algo);
    const scrmpi::Comm& w = mpi.world();
    std::vector<double> in(doubles, 1.5), out(doubles);
    for (u32 i = 0; i < warmup + iters; ++i) {
      if (mpi.rank(w) == 0 && i == warmup) t0 = p.now();
      mpi.allreduce(in.data(), out.data(), doubles, scrmpi::Datatype::kDouble,
                    scrmpi::ReduceOp::kSum, w);
      if (mpi.rank(w) == 0 && i == warmup + iters - 1) t1 = p.now();
    }
  };
  if (scramnet) {
    ScramnetOptions opts;
    opts.ring.bank_words = 1u << 18;  // room for the 64 KiB vectors
    run_scramnet_mpi(nodes, body, opts);
  } else {
    run_tcp_mpi(nodes, TcpFabricKind::kFastEthernet, body);
  }
  return to_us(t1 - t0) / iters;
}

}  // namespace

int main() {
  header("Ablation: MPI_Allreduce algorithms (4 nodes)",
         "collectives-from-multicast (paper Section 4) vs classic trees");

  const std::vector<u32> kElems{1, 16, 64, 128, 1024, 8192};
  Table t({"elements (doubles)", "SCR reduce+mcast-bcast (us)",
           "SCR reduce+p2p-bcast (us)", "SCR recursive-dbl (us)",
           "SCR rabenseifner (us)", "SCR ring (us)", "FE reduce+bcast (us)",
           "FE recursive-dbl (us)", "FE ring (us)"});
  std::vector<u32> bytes_axis;
  std::vector<double> scr_rd, scr_rab, scr_ring, fe_rd, fe_ring;
  double scr_mc4 = 0, scr_rd4 = 0, fe_rb4 = 0, fe_rd4 = 0;
  for (u32 n : kElems) {
    const double a = allreduce_us(true, Mpi::AllreduceAlgo::kReduceBcast,
                                  scrmpi::CollAlgo::kNativeMcast, n);
    const double b = allreduce_us(true, Mpi::AllreduceAlgo::kReduceBcast,
                                  scrmpi::CollAlgo::kPointToPoint, n);
    const double c = allreduce_us(true, Mpi::AllreduceAlgo::kRecursiveDoubling,
                                  scrmpi::CollAlgo::kPointToPoint, n);
    const double cr = allreduce_us(true, Mpi::AllreduceAlgo::kRabenseifner,
                                   scrmpi::CollAlgo::kPointToPoint, n);
    const double cg = allreduce_us(true, Mpi::AllreduceAlgo::kRing,
                                   scrmpi::CollAlgo::kPointToPoint, n);
    const double d = allreduce_us(false, Mpi::AllreduceAlgo::kReduceBcast,
                                  scrmpi::CollAlgo::kPointToPoint, n);
    const double e = allreduce_us(false, Mpi::AllreduceAlgo::kRecursiveDoubling,
                                  scrmpi::CollAlgo::kPointToPoint, n);
    const double eg = allreduce_us(false, Mpi::AllreduceAlgo::kRing,
                                   scrmpi::CollAlgo::kPointToPoint, n);
    if (n == 1) {
      scr_mc4 = a;
      scr_rd4 = c;
      fe_rb4 = d;
      fe_rd4 = e;
    }
    bytes_axis.push_back(n * 8);
    scr_rd.push_back(c);
    scr_rab.push_back(cr);
    scr_ring.push_back(cg);
    fe_rd.push_back(e);
    fe_ring.push_back(eg);
    t.add_row({std::to_string(n), Table::num(a), Table::num(b), Table::num(c),
               Table::num(cr), Table::num(cg), Table::num(d), Table::num(e),
               Table::num(eg)});
  }
  t.print(std::cout);

  std::cout << "\nChecks:\n";
  check_shape("hardware-mcast bcast phase beats the p2p tree on SCRAMNet",
              allreduce_us(true, Mpi::AllreduceAlgo::kReduceBcast,
                           scrmpi::CollAlgo::kNativeMcast, 16) <
                  allreduce_us(true, Mpi::AllreduceAlgo::kReduceBcast,
                               scrmpi::CollAlgo::kPointToPoint, 16));
  check_shape("recursive doubling beats reduce+bcast on Fast Ethernet",
              fe_rd4 < fe_rb4);
  check_shape("every SCRAMNet variant beats every FE variant at small sizes",
              scr_mc4 < fe_rd4 && scr_rd4 < fe_rd4);
  // The latency/bandwidth crossover the decision table encodes: recursive
  // doubling starts cheaper, the ~2x-bytes family wins for long vectors.
  report_crossover("FE: recursive doubling -> ring (allreduce)",
                   crossover(bytes_axis, fe_rd, fe_ring), 256, 65536);
  report_crossover("SCR: recursive doubling -> rabenseifner (allreduce)",
                   crossover(bytes_axis, scr_rd, scr_rab), 256, 65536);
  check_shape("SCR: ring beats recursive doubling at 64 KiB vectors",
              scr_ring.back() < scr_rd.back());
  return 0;
}
