// Ablation: cut-through vs store-and-forward Fast Ethernet switching, and
// its effect on where SCRAMNet's advantage ends (Figure 2's crossover).
#include <iostream>

#include "bench_util.h"
#include "harness/benchops.h"

using namespace scrnet;
using namespace scrnet::bench;
using namespace scrnet::harness;

int main() {
  header("Ablation: Ethernet switch forwarding mode",
         "sensitivity of Figure 2's SCRAMNet-vs-FastEthernet crossover");

  TcpOptions ct;  // default: cut-through
  TcpOptions snf;
  snf.ethernet.store_and_forward = true;

  const std::vector<u32> sizes{0, 64, 256, 512, 1000, 1500, 3000, 5000};
  Series scr{"SCRAMNet API", {}}, fe_ct{"FE TCP cut-through", {}},
      fe_snf{"FE TCP store&fwd", {}};
  for (u32 s : sizes) {
    scr.us.push_back(bbp_oneway_us(s));
    fe_ct.us.push_back(tcp_api_oneway_us(TcpFabricKind::kFastEthernet, s, 20, 4, ct));
    fe_snf.us.push_back(tcp_api_oneway_us(TcpFabricKind::kFastEthernet, s, 20, 4, snf));
  }
  print_series(sizes, {scr, fe_ct, fe_snf});

  std::cout << "\nChecks:\n";
  check_shape("store-and-forward adds ~a frame time per full frame",
              fe_snf.us[5] - fe_ct.us[5] > 80.0);
  const auto x_ct = crossover(sizes, scr.us, fe_ct.us);
  const auto x_snf = crossover(sizes, scr.us, fe_snf.us);
  std::cout << "  crossover (cut-through): "
            << (x_ct ? std::to_string(static_cast<int>(*x_ct)) + " B" : "none")
            << "; (store-and-forward): "
            << (x_snf ? std::to_string(static_cast<int>(*x_snf)) + " B" : "none")
            << "\n";
  check_shape("store-and-forward pushes the crossover further out (or away)",
              !x_snf || (x_ct && *x_snf > *x_ct));
  return 0;
}
