// repro_all: run the entire figure/table/ablation suite and diff every
// output against the committed golden files in bench/golden/.
//
// Each bench binary is launched as a subprocess (stdout+stderr captured)
// with SCRNET_JOBS=1 forced in its environment: parallelism lives at the
// process level here, so the children must not each spin up their own
// worker pools on top. The subprocess launches themselves are fanned out
// over a sweep::Runner -- a worker thread blocks in popen() per child --
// which makes the whole 16-binary suite take roughly
// slowest-binary-wall-clock on an idle multicore box.
//
//   repro_all [--jobs N] [--update-golden] [--no-compare]
//             [--bindir DIR] [--golden DIR]
//
// Exit status is the number of mismatching/failed binaries (0 = suite
// reproduces bit-exactly). --update-golden rewrites the golden files from
// the current outputs instead of diffing (then exits 0 unless a binary
// itself failed). --no-compare skips the golden diff entirely and fails
// only on nonzero child exits: the mode for runs under perturbing env
// knobs (e.g. SCRNET_RNDV_EAGER_MAX forcing the rendezvous path), where
// the outputs legitimately differ and the check is "every figure still
// completes" -- a deadlock/crash canary, not an identity diff.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/types.h"
#include "sweep/runner.h"

#ifndef SCRNET_GOLDEN_DIR
#define SCRNET_GOLDEN_DIR "bench/golden"
#endif

using namespace scrnet;

namespace {

/// Committed reference wall-clock for the full suite (seconds), measured
/// on the 1-core CI-class box that produced the goldens. The suite
/// printing more than 1.5x this is a perf-regression canary: it warns
/// (stdout only, exit status unchanged) so golden identity and timing
/// drift stay separate signals.
constexpr double kReferenceWallS = 26.5;

constexpr const char* kSuite[] = {
    "fig1_latency",      "fig2_api_networks",     "fig3_mpi_networks",
    "fig4_bcast_vs_p2p", "fig5_mpi_bcast",        "fig6_barrier",
    "tbl_ring_throughput", "abl_packet_mode",     "abl_ring_scaling",
    "abl_interrupt_recv", "abl_channel_interface", "abl_ethernet_switch",
    "abl_hybrid",        "abl_hierarchy",         "abl_dma",
    "abl_allreduce",     "abl_bcast",             "flt_scenarios",
};

struct RunResult {
  std::string output;   // captured stdout+stderr
  double wall_s = 0.0;
  int exit_code = -1;
};

/// Directory holding this binary (the suite binaries are its siblings).
std::string self_dir(const char* argv0) {
  std::string s(argv0);
  const auto slash = s.rfind('/');
  return slash == std::string::npos ? std::string(".") : s.substr(0, slash);
}

RunResult run_one(const std::string& bindir, const std::string& name) {
  RunResult r;
  // Force the child sequential; quoting is safe because bindir comes from
  // argv[0]/--bindir, not from untrusted input.
  const std::string cmd =
      "env SCRNET_JOBS=1 '" + bindir + "/" + name + "' 2>&1";
  const auto t0 = std::chrono::steady_clock::now();
  FILE* p = popen(cmd.c_str(), "r");
  if (!p) return r;
  char buf[4096];
  usize n;
  while ((n = fread(buf, 1, sizeof buf, p)) > 0) r.output.append(buf, n);
  const int status = pclose(p);
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return r;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  *out = ss.str();
  return true;
}

bool write_file(const std::string& path, const std::string& data) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << data;
  return f.good();
}

/// First differing line, for a compact mismatch report.
std::string first_diff(const std::string& want, const std::string& got) {
  std::istringstream a(want), b(got);
  std::string la, lb;
  usize line = 0;
  while (true) {
    ++line;
    const bool ea = !std::getline(a, la);
    const bool eb = !std::getline(b, lb);
    if (ea && eb) return "(identical?)";
    if (ea != eb || la != lb) {
      std::ostringstream ss;
      ss << "line " << line << ":\n    golden: " << (ea ? "<eof>" : la)
         << "\n    got:    " << (eb ? "<eof>" : lb);
      return ss.str();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string bindir = self_dir(argv[0]);
  std::string golden_dir = SCRNET_GOLDEN_DIR;
  bool update = false;
  bool compare = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-golden") == 0) update = true;
    if (std::strcmp(argv[i], "--no-compare") == 0) compare = false;
    if (std::strcmp(argv[i], "--bindir") == 0 && i + 1 < argc)
      bindir = argv[++i];
    if (std::strcmp(argv[i], "--golden") == 0 && i + 1 < argc)
      golden_dir = argv[++i];
  }

  sweep::Runner runner(bench::parse_jobs(argc, argv));
  std::cout << "repro_all: " << (sizeof kSuite / sizeof kSuite[0])
            << " binaries, jobs=" << runner.jobs() << ", golden=" << golden_dir
            << (update ? " (UPDATING)" : compare ? "" : " (NO COMPARE)")
            << "\n";

  const auto suite_t0 = std::chrono::steady_clock::now();
  std::vector<sweep::Future<RunResult>> futs;
  for (const char* name : kSuite)
    futs.push_back(runner.submit(name, [bindir, name] {
      return run_one(bindir, name);
    }));

  int bad = 0;
  for (usize i = 0; i < futs.size(); ++i) {
    const std::string name = kSuite[i];
    const RunResult r = futs[i].get();
    char wall[32];
    std::snprintf(wall, sizeof wall, "%6.2fs", r.wall_s);
    if (r.exit_code != 0) {
      ++bad;
      std::cout << "  [FAIL] " << name << "  " << wall << "  exit="
                << r.exit_code << "\n";
      continue;
    }
    if (!compare) {
      std::cout << "  [RAN]  " << name << "  " << wall << "\n";
      continue;
    }
    const std::string gpath = golden_dir + "/" + name + ".txt";
    if (update) {
      if (write_file(gpath, r.output)) {
        std::cout << "  [GOLD] " << name << "  " << wall << "  -> " << gpath
                  << "\n";
      } else {
        ++bad;
        std::cout << "  [FAIL] " << name << "  cannot write " << gpath << "\n";
      }
      continue;
    }
    std::string want;
    if (!read_file(gpath, &want)) {
      ++bad;
      std::cout << "  [MISS] " << name << "  " << wall << "  no golden file "
                << gpath << "\n";
      continue;
    }
    if (want == r.output) {
      std::cout << "  [OK]   " << name << "  " << wall << "\n";
    } else {
      ++bad;
      std::cout << "  [DIFF] " << name << "  " << wall << "  first mismatch at "
                << first_diff(want, r.output) << "\n";
    }
  }

  const auto suite_t1 = std::chrono::steady_clock::now();
  const double total_s =
      std::chrono::duration<double>(suite_t1 - suite_t0).count();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2fs", total_s);
  std::cout << "repro_all: " << (bad == 0 ? "PASS" : "FAIL") << " ("
            << futs.size() - static_cast<usize>(bad) << "/" << futs.size()
            << (compare ? " identical" : " completed") << "), suite wall-clock "
            << buf << "\n";
  if (total_s > 1.5 * kReferenceWallS) {
    char ref[64];
    std::snprintf(ref, sizeof ref, "%.2fs (1.5x reference %.1fs)",
                  1.5 * kReferenceWallS, kReferenceWallS);
    std::cout << "repro_all: WARN suite wall-clock " << buf
              << " exceeds budget " << ref
              << " -- investigate simulator perf regressions\n";
  }
  return bad;
}
