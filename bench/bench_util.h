// Shared reporting helpers for the figure-reproduction benches. Each bench
// binary prints (a) the series the paper's figure plots and (b) a
// paper-vs-measured check of the figure's headline claims.
#pragma once

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/chart.h"
#include "common/table.h"
#include "common/types.h"

namespace scrnet::bench {

/// Parse `--jobs N` / `--jobs=N` from a bench main's argv. Returns 0 when
/// absent, which sweep::Runner resolves to SCRNET_JOBS or
/// hardware_concurrency. The job count never changes a figure's output
/// (results are collected in submission order), only its wall clock.
inline u32 parse_jobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      return static_cast<u32>(std::atol(argv[i + 1]));
    if (std::strncmp(argv[i], "--jobs=", 7) == 0)
      return static_cast<u32>(std::atol(argv[i] + 7));
  }
  return 0;
}

inline void header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n==========================================================\n"
            << title << "\n"
            << "Reproduces: " << paper_ref << "\n"
            << "==========================================================\n";
}

/// A named latency series over message sizes.
struct Series {
  std::string name;
  std::vector<double> us;  // parallel to the sizes vector
};

inline void print_series(const std::vector<u32>& sizes,
                         const std::vector<Series>& series,
                         const std::string& chart_title = {}) {
  std::vector<std::string> hdr{"bytes"};
  for (const auto& s : series) hdr.push_back(s.name + " (us)");
  Table t(hdr);
  for (usize i = 0; i < sizes.size(); ++i) {
    std::vector<std::string> row{std::to_string(sizes[i])};
    for (const auto& s : series) row.push_back(Table::num(s.us[i]));
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  if (std::getenv("SCRNET_CSV")) {
    std::cout << "--- CSV ---\n";
    t.print_csv(std::cout);
    std::cout << "--- end CSV ---\n";
  }

  // Render the figure the way the paper plots it.
  AsciiChart chart(chart_title.empty() ? "one-way latency vs message size"
                                       : chart_title,
                   "message size (bytes)", "latency (us)");
  static constexpr char kGlyphs[] = {'S', 'F', 'A', 'M', 'T', 'H', '#', '%'};
  std::vector<double> xs(sizes.begin(), sizes.end());
  for (usize i = 0; i < series.size(); ++i)
    chart.add_series(series[i].name, kGlyphs[i % sizeof kGlyphs], xs,
                     series[i].us);
  chart.print(std::cout);
}

/// Check a measured value against the paper's number within a tolerance
/// band (fraction, e.g. 0.25 = +/-25%).
inline bool check(const std::string& what, double paper, double measured,
                  double tol_frac) {
  const bool ok = std::fabs(measured - paper) <= tol_frac * paper;
  std::cout << (ok ? "  [OK]  " : "  [DEV] ") << what << ": paper=" << paper
            << "us measured=" << Table::num(measured)
            << "us (tol +/-" << static_cast<int>(tol_frac * 100) << "%)\n";
  return ok;
}

/// Check an ordering/shape claim.
inline bool check_shape(const std::string& what, bool holds) {
  std::cout << (holds ? "  [OK]  " : "  [DEV] ") << what << "\n";
  return holds;
}

/// Linear interpolation of the crossover size where series a first exceeds
/// series b (a starts below b); nullopt if they never cross in range.
inline std::optional<double> crossover(const std::vector<u32>& sizes,
                                       const std::vector<double>& a,
                                       const std::vector<double>& b) {
  for (usize i = 1; i < sizes.size(); ++i) {
    if (a[i - 1] <= b[i - 1] && a[i] > b[i]) {
      const double d0 = b[i - 1] - a[i - 1];
      const double d1 = a[i] - b[i];
      const double frac = d0 / (d0 + d1);
      return sizes[i - 1] + frac * (sizes[i] - sizes[i - 1]);
    }
  }
  return std::nullopt;
}

inline void report_crossover(const std::string& what,
                             const std::optional<double>& x,
                             double paper_lo, double paper_hi) {
  if (!x) {
    std::cout << "  [DEV] " << what << ": no crossover in measured range (paper: "
              << paper_lo << "-" << paper_hi << " B)\n";
    return;
  }
  const bool ok = *x >= paper_lo && *x <= paper_hi;
  std::cout << (ok ? "  [OK]  " : "  [DEV] ") << what << ": crossover at ~"
            << static_cast<int>(*x) << " B (paper band: " << paper_lo << "-"
            << paper_hi << " B)\n";
}

}  // namespace scrnet::bench
