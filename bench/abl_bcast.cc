// Ablation: the MPI_Bcast algorithm zoo across payload sizes and node
// counts (ROADMAP item 4).
//
// On SCRAMNet the paper's hardware-multicast bcast is a single ring
// transit, so the p2p zoo only matters as a fallback; on point-to-point
// fabrics the classic tradeoff appears: the binomial tree is
// latency-optimal (log2(n) rounds, every byte crosses log2(n)x), the van
// de Geijn scatter-allgather moves every byte ~2x and wins for long
// messages (arXiv cs/0408034), and the ring/pipelined-chain family
// (arXiv 1603.06809) trades latency linear in n for store-and-forward
// bandwidth.
//
// Every cell below is tune::measure_us -- the exact measurement the
// auto-tuner sweeps -- so the crossovers printed here and the switch
// points in the generated decision table (src/tune/builtin_table.inc)
// agree by construction; the final check verifies that cell by cell.
#include <iostream>
#include <map>

#include "bench_util.h"
#include "tune/measure.h"
#include "tune/table.h"

using namespace scrnet;
using namespace scrnet::bench;
using namespace scrnet::tune;

namespace {

double cell_us(const std::string& dev, u32 nodes, u32 bytes,
               const std::string& algo) {
  // Memoized: the final table-agreement check revisits cells the sweep
  // sections already measured (each cell is deterministic).
  static std::map<std::string, double> memo;
  const std::string key =
      dev + "/" + algo + "/" + std::to_string(nodes) + "/" + std::to_string(bytes);
  const auto it = memo.find(key);
  if (it != memo.end()) return it->second;
  MeasureSpec s;
  s.device = dev;
  s.op = "bcast";
  s.algo = algo;
  s.nodes = nodes;
  s.bytes = bytes;
  return memo[key] = measure_us(s);
}

/// One size-sweep section: a column per algorithm, a row per grid size.
/// Returns the per-algorithm series keyed in candidate order.
std::vector<std::vector<double>> size_section(const std::string& dev,
                                              u32 nodes) {
  const std::vector<std::string> algos = candidates(dev, "bcast");
  std::vector<std::string> cols{"payload (B)"};
  for (const std::string& a : algos) cols.push_back(a + " (us)");
  Table t(cols);
  std::vector<std::vector<double>> series(algos.size());
  for (u32 bytes : kSweepSizes) {
    std::vector<std::string> row{std::to_string(bytes)};
    for (usize ai = 0; ai < algos.size(); ++ai) {
      const double us = cell_us(dev, nodes, bytes, algos[ai]);
      series[ai].push_back(us);
      row.push_back(Table::num(us));
    }
    t.add_row(row);
  }
  t.print(std::cout);
  return series;
}

/// Node-sweep section at a fixed payload: winner changes across n expose
/// the node-dependent switch points in the decision table.
void node_section(const std::string& dev, u32 bytes) {
  const std::vector<std::string> algos = candidates(dev, "bcast");
  std::vector<std::string> cols{"nodes"};
  for (const std::string& a : algos) cols.push_back(a + " (us)");
  cols.push_back("winner");
  Table t(cols);
  for (u32 nodes : kSweepNodes) {
    std::vector<std::string> row{std::to_string(nodes)};
    std::string best;
    double best_us = 0;
    for (const std::string& a : algos) {
      const double us = cell_us(dev, nodes, bytes, a);
      row.push_back(Table::num(us));
      if (best.empty() || us < best_us) {
        best = a;
        best_us = us;
      }
    }
    row.push_back(best);
    t.add_row(row);
  }
  t.print(std::cout);
}

usize algo_index(const std::vector<std::string>& algos,
                 const std::string& name) {
  for (usize i = 0; i < algos.size(); ++i)
    if (algos[i] == name) return i;
  return algos.size();
}

}  // namespace

int main() {
  header("Ablation: MPI_Bcast algorithm zoo",
         "binomial vs scatter-allgather vs ring/chain (cs/0408034 Fig. 1 "
         "shape); native multicast where the hardware has it");

  std::cout << "-- SCRAMNet (bbp), 8 nodes --\n";
  const auto bbp = size_section("bbp", 8);
  std::cout << "\n-- Fast Ethernet (sock), 8 nodes --\n";
  const auto sock = size_section("sock", 8);
  std::cout << "\n-- RDMA, 8 nodes --\n";
  const auto rdma = size_section("rdma", 8);

  std::cout << "\n-- winner vs node count, 65536 B payload --\n";
  std::cout << "Fast Ethernet (sock):\n";
  node_section("sock", 65536);
  std::cout << "SCRAMNet (bbp):\n";
  node_section("bbp", 65536);

  std::cout << "\nChecks:\n";
  const std::vector<std::string> bbp_algos = candidates("bbp", "bcast");
  const std::vector<std::string> p2p_algos = candidates("sock", "bcast");
  const usize bin = algo_index(p2p_algos, "binomial");
  const usize sag = algo_index(p2p_algos, "scatter_allgather");
  const usize ring = algo_index(p2p_algos, "ring");
  const usize chain = algo_index(p2p_algos, "chain");

  check_shape("bbp: native multicast wins at every measured size",
              [&] {
                const usize nat = algo_index(bbp_algos, "native");
                for (usize si = 0; si < kSweepSizes.size(); ++si)
                  for (usize ai = 0; ai < bbp_algos.size(); ++ai)
                    if (bbp[ai][si] < bbp[nat][si]) return false;
                return true;
              }());
  check_shape("sock: binomial beats ring relay at 8 B (latency regime)",
              sock[bin][0] < sock[ring][0]);
  check_shape("sock: chain pipelining beats the unsegmented ring at 64 KiB",
              sock[chain].back() < sock[ring].back());
  // The size-dependent switch the decision table encodes on p2p fabrics.
  report_crossover("sock: binomial -> scatter-allgather (bcast)",
                   crossover({kSweepSizes.begin(), kSweepSizes.end()},
                             sock[bin], sock[sag]),
                   256, 65536);
  // On the high-bandwidth fabric the extra scatter/allgather phases never
  // pay off inside the swept range -- binomial stays the argmin, which is
  // exactly what the tuner writes into the table (rdma bcast * * binomial).
  check_shape("rdma: binomial wins at every measured size (bandwidth regime)",
              [&] {
                for (usize si = 0; si < kSweepSizes.size(); ++si)
                  for (usize ai = 0; ai < p2p_algos.size(); ++ai)
                    if (rdma[ai][si] < rdma[bin][si]) return false;
                return true;
              }());

  // The compiled-in decision table must pick the measured argmin at every
  // grid point: the tuner sweeps these exact cells, so any disagreement
  // means builtin_table.inc is stale (regenerate: tuner --cc, see
  // docs/collectives.md).
  const tune::DecisionTable& table = tune::DecisionTable::builtin();
  std::vector<std::pair<std::string, std::pair<u32, u32>>> points;
  for (const std::string& dev : kSweepDevices)
    for (u32 bytes : kSweepSizes) points.push_back({dev, {8, bytes}});
  for (const std::string& dev : {std::string("sock"), std::string("bbp")})
    for (u32 nodes : kSweepNodes) points.push_back({dev, {nodes, 65536}});
  u32 cells = 0, agree = 0;
  for (const auto& [dev, nb] : points) {
    const auto [nodes, bytes] = nb;
    std::string best;
    double best_us = 0;
    for (const std::string& a : candidates(dev, "bcast")) {
      const double us = cell_us(dev, nodes, bytes, a);
      if (best.empty() || us < best_us) {
        best = a;
        best_us = us;
      }
    }
    ++cells;
    if (table.pick(dev, "bcast", nodes, bytes) == best)
      ++agree;
    else
      std::cout << "  [DEV] table pick mismatch at " << dev << " n=" << nodes
                << " b=" << bytes << ": table="
                << table.pick(dev, "bcast", nodes, bytes) << " measured="
                << best << "\n";
  }
  check_shape("decision table picks the measured argmin at all " +
                  std::to_string(cells) + " measured bcast grid points",
              agree == cells);
  return 0;
}
