// Ablation: cost of the MPICH Channel Interface layer.
//
// Section 7 of the paper: "The first direction is to remove the Channel
// Interface layer by creating an Abstract Device Interface layer directly
// on top of the BillBoard API." This bench estimates the payoff by zeroing
// the channel-interface packetization costs (the extra copy) while keeping
// the rest of the MPI stack.
#include <iostream>

#include "bench_util.h"
#include "harness/benchops.h"

using namespace scrnet;
using namespace scrnet::bench;
using namespace scrnet::harness;

int main() {
  header("Ablation: removing the Channel Interface layer",
         "the paper's Section 7 'future work' direction, quantified");

  ScramnetOptions with_ci;  // defaults: full MPICH-style stack

  ScramnetOptions no_ci;
  no_ci.mpi.channel_pack = 0;       // no packetization step
  no_ci.mpi.per_byte_scale = 0.15;  // direct-to-user delivery keeps a touch
  no_ci.mpi.adi_dispatch = us(2);   // ADI talks straight to the BBP

  const std::vector<u32> sizes{0, 4, 64, 256, 512, 1000};
  Series a{"MPI w/ channel iface", {}}, b{"MPI direct-ADI (est.)", {}},
      api{"raw BBP API", {}};
  for (u32 s : sizes) {
    a.us.push_back(mpi_scramnet_oneway_us(s, 4, 20, 4, with_ci));
    b.us.push_back(mpi_scramnet_oneway_us(s, 4, 20, 4, no_ci));
    api.us.push_back(bbp_oneway_us(s));
  }
  print_series(sizes, {a, b, api});

  std::cout << "\nChecks:\n";
  check_shape("removing the channel layer saves fixed overhead at 0B",
              b.us[0] < a.us[0] - 4.0);
  check_shape("and most of the per-byte MPI penalty at 1000B",
              (b.us.back() - api.us.back()) < 0.5 * (a.us.back() - api.us.back()));
  return 0;
}
