// Ablation: cost of the MPICH Channel Interface layer.
//
// Section 7 of the paper: "The first direction is to remove the Channel
// Interface layer by creating an Abstract Device Interface layer directly
// on top of the BillBoard API." Two takes on that payoff:
//   * "direct-ADI (est.)": the original what-if -- zero the channel
//     packetization costs while keeping the copy-based protocols;
//   * "zero-copy rndv": the implemented answer (docs/adi.md) -- a
//     rendezvous window in the billboard plus a low eager cap, so large
//     payloads are put straight into the receiver's granted placement and
//     never ride a channel packet at all. Small messages (<= the 256 B
//     cap) stay eager and match the full stack bit-for-bit; above it the
//     RTS/CTS handshake buys freedom from the per-byte pack/unpack passes.
//     The handshake pays for itself by 512 B already, and at 16 KB the
//     zero-copy line rides ~60 us over raw BBP where the full stack is
//     ~1300 us over -- the channel-interface copy was the whole gap.
#include <iostream>

#include "bench_util.h"
#include "harness/benchops.h"

using namespace scrnet;
using namespace scrnet::bench;
using namespace scrnet::harness;

int main() {
  header("Ablation: removing the Channel Interface layer",
         "the paper's Section 7 'future work' direction, quantified");

  ScramnetOptions with_ci;  // defaults: full MPICH-style stack

  ScramnetOptions no_ci;
  no_ci.mpi.channel_pack = 0;       // no packetization step
  no_ci.mpi.per_byte_scale = 0.15;  // direct-to-user delivery keeps a touch
  no_ci.mpi.adi_dispatch = us(2);   // ADI talks straight to the BBP

  ScramnetOptions zero_copy;  // the real implementation, not an estimate
  zero_copy.bbp.rndv_window_bytes = 256 * 1024;
  zero_copy.mpi.eager_cap = 256;  // payloads above this go rendezvous

  const std::vector<u32> sizes{0, 4, 64, 256, 512, 1000, 4096, 16384};
  Series a{"MPI w/ channel iface", {}}, b{"MPI direct-ADI (est.)", {}},
      zc{"MPI zero-copy rndv", {}}, api{"raw BBP API", {}};
  for (u32 s : sizes) {
    a.us.push_back(mpi_scramnet_oneway_us(s, 4, 20, 4, with_ci));
    b.us.push_back(mpi_scramnet_oneway_us(s, 4, 20, 4, no_ci));
    zc.us.push_back(mpi_scramnet_oneway_us(s, 4, 20, 4, zero_copy));
    api.us.push_back(bbp_oneway_us(s));
  }
  print_series(sizes, {a, b, zc, api});

  std::cout << "\nChecks:\n";
  check_shape("removing the channel layer saves fixed overhead at 0B",
              b.us[0] < a.us[0] - 4.0);
  check_shape("and most of the per-byte MPI penalty at 1000B",
              (b.us[5] - api.us[5]) < 0.5 * (a.us[5] - api.us[5]));
  check_shape("zero-copy matches the full stack below the eager cap",
              zc.us[0] == a.us[0] && zc.us[3] == a.us[3]);
  check_shape("zero-copy beats the full stack at 4KB despite the handshake",
              zc.us[6] < a.us[6]);
  check_shape("and approaches the raw-BBP slope at 16KB",
              (zc.us[7] - api.us[7]) < 0.25 * (a.us[7] - api.us[7]));
  return 0;
}
