// Ablation/extension: the hybrid SCRAMNet + Myrinet cluster the paper's
// conclusion proposes -- "low latency as well as high bandwidth".
//
// One MPI latency curve per configuration: pure SCRAMNet, pure Myrinet
// (TCP), and the hybrid channel with a 2 KB threshold. The hybrid curve
// should hug SCRAMNet below the threshold and Myrinet above it.
#include <iostream>

#include "bench_util.h"
#include "harness/benchops.h"

using namespace scrnet;
using namespace scrnet::bench;
using namespace scrnet::harness;

namespace {

constexpr u32 kThreshold = 512;  // near the SCRAMNet/Myrinet latency crossover

double hybrid_oneway_us(u32 bytes, u32 iters = 20, u32 warmup = 4) {
  SimTime t_start = 0, t_end = 0;
  run_hybrid_mpi(2, TcpFabricKind::kMyrinet, kThreshold,
                 [&](sim::Process& p, scrmpi::Mpi& mpi) {
                   const scrmpi::Comm& w = mpi.world();
                   const i32 me = mpi.rank(w);
                   std::vector<u8> buf(std::max<u32>(bytes, 1));
                   const i32 peer = 1 - me;
                   for (u32 i = 0; i < warmup + iters; ++i) {
                     if (me == 0) {
                       if (i == warmup) t_start = p.now();
                       mpi.send(buf.data(), bytes, scrmpi::Datatype::kByte, peer, 0, w);
                       mpi.recv(buf.data(), bytes, scrmpi::Datatype::kByte, peer, 0, w);
                       if (i == warmup + iters - 1) t_end = p.now();
                     } else {
                       mpi.recv(buf.data(), bytes, scrmpi::Datatype::kByte, peer, 0, w);
                       mpi.send(buf.data(), bytes, scrmpi::Datatype::kByte, peer, 0, w);
                     }
                   }
                 });
  return to_us(t_end - t_start) / (2.0 * iters);
}

}  // namespace

int main() {
  header("Extension: hybrid SCRAMNet+Myrinet cluster (MPI latency)",
         "the paper's Section 7 conclusion, implemented (512 B threshold)");

  const std::vector<u32> sizes{0,    4,    64,   512,  1024, 2048,
                               4096, 8192, 16384, 65536};
  Series scr{"SCRAMNet only", {}}, myr{"Myrinet TCP only", {}},
      hyb{"Hybrid (512B split)", {}};
  for (u32 s : sizes) {
    scr.us.push_back(mpi_scramnet_oneway_us(s, 2));
    myr.us.push_back(mpi_tcp_oneway_us(TcpFabricKind::kMyrinet, s));
    hyb.us.push_back(hybrid_oneway_us(s));
  }
  print_series(sizes, {scr, myr, hyb});

  std::cout << "\nChecks:\n";
  check_shape("hybrid tracks SCRAMNet for small messages (<= threshold)",
              hyb.us[1] < myr.us[1] && hyb.us[1] < scr.us[1] * 1.2);
  check_shape("hybrid tracks Myrinet for bulk messages (64 KB)",
              hyb.us.back() < scr.us.back() * 0.5 &&
                  hyb.us.back() < myr.us.back() * 1.3);
  bool envelope = true;
  for (usize i = 0; i < sizes.size(); ++i) {
    if (hyb.us[i] > 1.35 * std::min(scr.us[i], myr.us[i])) envelope = false;
  }
  check_shape("hybrid stays near min(SCRAMNet, Myrinet) across all sizes",
              envelope);
  return 0;
}
