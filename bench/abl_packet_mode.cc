// Ablation: fixed 4-byte vs variable-length SCRAMNet packet mode under the
// BillBoard Protocol (Section 2 discusses the tradeoff: fixed packets have
// the lowest latency, variable packets 2.5x the throughput).
#include <iostream>

#include "bench_util.h"
#include "harness/benchops.h"

using namespace scrnet;
using namespace scrnet::bench;
using namespace scrnet::harness;

int main() {
  header("Ablation: SCRAMNet packet mode (fixed 4-byte vs variable)",
         "design choice from Section 2 of the paper");

  ScramnetOptions fixed;
  fixed.ring.mode = scramnet::PacketMode::kFixed4;
  ScramnetOptions variable;
  variable.ring.mode = scramnet::PacketMode::kVariable;

  const std::vector<u32> sizes{0, 4, 64, 256, 1024, 4096};
  Series f{"fixed-4B latency", {}}, v{"variable latency", {}};
  for (u32 s : sizes) {
    f.us.push_back(bbp_oneway_us(s, 4, 20, 4, fixed));
    v.us.push_back(bbp_oneway_us(s, 4, 20, 4, variable));
  }
  print_series(sizes, {f, v});

  Table t({"message bytes", "fixed-4B tput (MB/s)", "variable tput (MB/s)"});
  for (u32 s : {1024u, 16384u, 65536u}) {
    t.add_row({std::to_string(s),
               Table::num(bbp_throughput_mbps(s, 1u << 20, 4, fixed)),
               Table::num(bbp_throughput_mbps(s, 1u << 20, 4, variable))});
  }
  std::cout << '\n';
  t.print(std::cout);

  std::cout << "\nChecks:\n";
  check_shape("4-byte latency comparable in both modes (single word anyway)",
              std::abs(f.us[1] - v.us[1]) < 2.0);
  check_shape("variable mode wins decisively on large-message latency",
              v.us.back() < 0.6 * f.us.back());
  const double tf = bbp_throughput_mbps(65536, 1u << 20, 4, fixed);
  const double tv = bbp_throughput_mbps(65536, 1u << 20, 4, variable);
  check_shape("variable-mode throughput ~2.5x fixed mode (16.7 vs 6.5 MB/s)",
              tv / tf > 1.8 && tv / tf < 3.2);
  return 0;
}
