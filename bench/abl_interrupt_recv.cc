// Ablation: polling vs interrupt-driven receive on SCRAMNet.
//
// Section 7 of the paper: "The second direction is to incorporate an
// interrupt mechanism ... Currently, our MPI implementation uses polling
// to check for incoming messages. Polling requires memory access across
// the I/O bus which increases the receive overhead."
//
// This bench quantifies that tradeoff on the device model: a polling
// receiver pays repeated PIO reads (and detects quickly); an interrupt
// receiver sleeps until the NIC raises an interrupt on a watched address,
// pays one interrupt dispatch, and reads once.
#include <iostream>

#include "bench_util.h"
#include "scramnet/ring.h"
#include "scramnet/sim_port.h"

using namespace scrnet;
using namespace scrnet::bench;

namespace {

constexpr u32 kFlagAddr = 100;
constexpr u32 kDataAddr = 101;
constexpr SimTime kInterruptDispatch = us(7);  // Linux-2.0-era irq + wakeup

struct RecvResult {
  double latency_us;
  u64 pio_reads;
};

RecvResult polled(u32 gap_writes) {
  sim::Simulation sim;
  scramnet::Ring ring(sim, {});
  SimTime sent = 0, got = 0;
  u64 reads = 0;
  sim.spawn("writer", [&](sim::Process& p) {
    scramnet::SimHostPort port(ring, 0, p);
    p.delay(us(3) * gap_writes);  // vary phase relative to the poll loop
    sent = p.now();
    port.write_u32(kDataAddr, 77);
    port.write_u32(kFlagAddr, 1);
  });
  sim.spawn("reader", [&](sim::Process& p) {
    scramnet::SimHostPort port(ring, 1, p);
    while (port.read_u32(kFlagAddr) == 0) {
      ++reads;
      port.poll_pause();
    }
    ++reads;
    (void)port.read_u32(kDataAddr);
    ++reads;
    got = p.now();
  });
  sim.run();
  return {to_us(got - sent), reads};
}

RecvResult interrupt_driven(u32 gap_writes) {
  sim::Simulation sim;
  scramnet::Ring ring(sim, {});
  SimTime sent = 0, got = 0;
  u64 reads = 0;
  sim::Signal irq(sim);
  ring.set_interrupt(1, kFlagAddr, kFlagAddr + 1, [&](u32) { irq.notify_all(); });
  sim.spawn("writer", [&](sim::Process& p) {
    scramnet::SimHostPort port(ring, 0, p);
    p.delay(us(3) * gap_writes);
    sent = p.now();
    port.write_u32(kDataAddr, 77);
    port.write_u32(kFlagAddr, 1);
  });
  sim.spawn("reader", [&](sim::Process& p) {
    scramnet::SimHostPort port(ring, 1, p);
    irq.wait(p);                 // blocked: zero bus traffic while idle
    p.delay(kInterruptDispatch); // irq handler + process wakeup
    (void)port.read_u32(kDataAddr);
    ++reads;
    got = p.now();
  });
  sim.run();
  return {to_us(got - sent), reads};
}

}  // namespace

int main() {
  header("Ablation: polling vs interrupt-driven receive",
         "the paper's Section 7 'future work' direction, quantified");

  Table t({"arrival phase", "poll latency (us)", "poll PIO reads",
           "irq latency (us)", "irq PIO reads"});
  double poll_sum = 0, irq_sum = 0;
  u64 poll_reads = 0;
  for (u32 g = 0; g < 6; ++g) {
    const RecvResult p = polled(g);
    const RecvResult i = interrupt_driven(g);
    poll_sum += p.latency_us;
    irq_sum += i.latency_us;
    poll_reads += p.pio_reads;
    t.add_row({std::to_string(g), Table::num(p.latency_us),
               std::to_string(p.pio_reads), Table::num(i.latency_us),
               std::to_string(i.pio_reads)});
  }
  t.print(std::cout);
  std::cout << "\nAverages: poll=" << Table::num(poll_sum / 6)
            << "us  irq=" << Table::num(irq_sum / 6) << "us\n";

  std::cout << "\nChecks:\n";
  check_shape("polling detects faster than a 7us interrupt dispatch",
              poll_sum < irq_sum);
  check_shape("but polling burns I/O-bus reads while idle (the paper's point)",
              poll_reads > 12);
  check_shape("interrupt receive needs exactly one data read per message",
              interrupt_driven(0).pio_reads == 1);
  return 0;
}
