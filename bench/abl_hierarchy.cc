// Ablation/extension: the ring hierarchy Section 2 proposes for systems
// beyond one ring. BBP latency within a leaf ring vs across the backbone,
// and a system-wide multicast on a 12-node (3x4) hierarchy.
#include <iostream>

#include "bbp/endpoint.h"
#include "bench_util.h"
#include "common/bytes.h"
#include "scramnet/hierarchy.h"

using namespace scrnet;
using namespace scrnet::bench;
using namespace scrnet::scramnet;

namespace {

double oneway_us(u32 from, u32 to, u32 bytes, HierarchyConfig cfg) {
  sim::Simulation sim;
  RingHierarchy h(sim, cfg);
  SimTime t0 = 0, t1 = 0;
  sim.spawn("tx", [&](sim::Process& p) {
    HierarchyPort port(h, from, p);
    bbp::Endpoint ep(port, h.nodes(), from);
    std::vector<u8> msg(bytes);
    t0 = p.now();
    (void)ep.send(to, msg);
    ep.drain();
  });
  sim.spawn("rx", [&](sim::Process& p) {
    HierarchyPort port(h, to, p);
    bbp::Endpoint ep(port, h.nodes(), to);
    std::vector<u8> buf(std::max<u32>(bytes, 4));
    (void)ep.recv(from, buf);
    t1 = p.now();
  });
  sim.run();
  return to_us(t1 - t0);
}

double bcast_all_us(u32 bytes, HierarchyConfig cfg) {
  sim::Simulation sim;
  RingHierarchy h(sim, cfg);
  const u32 n = h.nodes();
  SimTime t0 = 0, last = 0;
  sim.spawn("root", [&](sim::Process& p) {
    HierarchyPort port(h, 0, p);
    bbp::Endpoint ep(port, n, 0);
    std::vector<u32> dests;
    for (u32 r = 1; r < n; ++r) dests.push_back(r);
    std::vector<u8> msg(bytes);
    t0 = p.now();
    (void)ep.mcast(dests, msg);
    ep.drain();
  });
  for (u32 r = 1; r < n; ++r) {
    sim.spawn("rx" + std::to_string(r), [&, r](sim::Process& p) {
      HierarchyPort port(h, r, p);
      bbp::Endpoint ep(port, n, r);
      std::vector<u8> buf(std::max<u32>(bytes, 4));
      (void)ep.recv(0, buf);
      if (p.now() > last) last = p.now();
    });
  }
  sim.run();
  return to_us(last - t0);
}

}  // namespace

int main() {
  header("Extension: two-level ring hierarchy (3 rings x 4 nodes)",
         "Section 2: 'for systems larger than 256 nodes, a hierarchy of "
         "rings can be used'");

  HierarchyConfig cfg;
  cfg.leaf_rings = 3;
  cfg.nodes_per_ring = 4;
  cfg.bank_words = 1u << 16;

  Table t({"path", "4 B (us)", "256 B (us)", "1024 B (us)"});
  struct Path {
    const char* name;
    u32 from, to;
  };
  const Path paths[] = {
      {"same ring (1 -> 2)", 1, 2},
      {"to own bridge (1 -> 0)", 1, 0},
      {"cross-ring (1 -> 6)", 1, 6},
      {"worst case (1 -> 11)", 1, 11},
  };
  double same4 = 0, cross4 = 0;
  for (const Path& pth : paths) {
    const double a = oneway_us(pth.from, pth.to, 4, cfg);
    const double b = oneway_us(pth.from, pth.to, 256, cfg);
    const double c = oneway_us(pth.from, pth.to, 1024, cfg);
    if (pth.from == 1 && pth.to == 2) same4 = a;
    if (pth.from == 1 && pth.to == 6) cross4 = a;
    t.add_row({pth.name, Table::num(a), Table::num(b), Table::num(c)});
  }
  t.print(std::cout);

  std::cout << "\n12-node hardware multicast (one bbp_Mcast, all nodes):\n";
  Table t2({"bytes", "bcast-to-all latency (us)"});
  for (u32 b : {4u, 256u, 1024u})
    t2.add_row({std::to_string(b), Table::num(bcast_all_us(b, cfg))});
  t2.print(std::cout);

  std::cout << "\nChecks:\n";
  check_shape("same-ring latency matches the flat 4-node ring (~7-8us)",
              same4 > 6.0 && same4 < 9.5);
  check_shape("cross-ring adds two bridge hops (~4-8us more)",
              cross4 > same4 + 3.0 && cross4 < same4 + 12.0);
  check_shape("12-node mcast still one send-side operation, < 3x unicast",
              bcast_all_us(4, cfg) < 3.0 * cross4);
  return 0;
}
