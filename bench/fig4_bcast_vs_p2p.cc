// Figure 4: SCRAMNet point-to-point vs 4-node broadcast latency at the
// BillBoard API level.
//
// Paper claims: "a 4-node broadcast adds very little overhead to a unicast
// message" -- 4-byte broadcast to 4 nodes measured at 10.1 us vs 7.8 us
// point-to-point (abstract; OCR of "1.1" reconstructed as 10.1).
#include <iostream>

#include "bench_util.h"
#include "harness/benchops.h"
#include "sweep/runner.h"

using namespace scrnet;
using namespace scrnet::bench;
using namespace scrnet::harness;

int main(int argc, char** argv) {
  sweep::Runner runner(parse_jobs(argc, argv));

  header("Figure 4: SCRAMNet point-to-point vs 4-node broadcast (API level)",
         "Moorthy et al., IPPS 1999, Figure 4 + abstract");

  const std::vector<u32> sizes{0, 4, 16, 64, 128, 256, 512, 750, 1000};
  Series p2p{"Point-to-Point", bbp_oneway_us_sweep(sizes, runner)},
      bc{"4-node Broadcast", bbp_bcast_us_sweep(sizes, runner)}, d{"Delta", {}};
  for (usize i = 0; i < sizes.size(); ++i)
    d.us.push_back(bc.us[i] - p2p.us[i]);
  print_series(sizes, {p2p, bc, d});

  std::cout << "\nHeadline checks:\n";
  check("4-byte point-to-point", 7.8, p2p.us[1], 0.15);
  check("4-byte 4-node broadcast", 10.1, bc.us[1], 0.25);
  std::cout << "\nShape checks:\n";
  bool small_delta = true;
  for (usize i = 0; i < sizes.size(); ++i) {
    // "very little overhead": the broadcast premium stays a few us and does
    // not grow with message size (single-step hardware replication).
    if (d.us[i] > 8.0) small_delta = false;
  }
  check_shape("broadcast premium stays small and size-independent", small_delta);
  return 0;
}
