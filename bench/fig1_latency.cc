// Figure 1: One-way message latency on SCRAMNet at the BillBoard API level
// and at the MPI level, for 0-64 bytes and 0-1000 bytes.
//
// Paper values: API 0 B = 6.5 us, 4 B = 7.8 us; MPI 0 B = 44 us,
// 4 B = 49 us; "the MPI layer only adds a constant overhead to the API
// layer latency".
#include <iostream>

#include "bench_util.h"
#include "harness/benchops.h"
#include "sweep/runner.h"

using namespace scrnet;
using namespace scrnet::bench;
using namespace scrnet::harness;

namespace {

struct Panel {
  Series api, mpi, delta;
};

Panel measure(const std::vector<u32>& sizes, sweep::Runner& runner) {
  Panel pn{{"SCRAMNet API", bbp_oneway_us_sweep(sizes, runner)},
           {"MPI", mpi_scramnet_oneway_us_sweep(sizes, runner)},
           {"MPI - API", {}}};
  for (usize i = 0; i < sizes.size(); ++i)
    pn.delta.us.push_back(pn.mpi.us[i] - pn.api.us[i]);
  return pn;
}

void print_panel(const std::vector<u32>& sizes, const Panel& pn,
                 const char* label) {
  std::cout << "\n-- " << label << " --\n";
  print_series(sizes, {pn.api, pn.mpi, pn.delta});
}

}  // namespace

int main(int argc, char** argv) {
  sweep::Runner runner(parse_jobs(argc, argv));

  header("Figure 1: SCRAMNet one-way latency, BillBoard API vs MPI",
         "Moorthy et al., IPPS 1999, Figure 1 + Section 5 headline numbers");

  const std::vector<u32> small{0, 4, 8, 16, 32, 48, 64};
  const std::vector<u32> large{0, 128, 256, 384, 512, 640, 768, 896, 1000};
  const Panel psmall = measure(small, runner);
  const Panel plarge = measure(large, runner);
  print_panel(small, psmall, "small messages (0-64 bytes)");
  print_panel(large, plarge, "0-1000 bytes");

  std::cout << "\nHeadline checks:\n";
  // The sweeps above already measured these points (deterministic
  // simulations: re-running would reproduce the exact same doubles).
  const double api0 = psmall.api.us[0];
  const double api4 = psmall.api.us[1];
  const double mpi0 = psmall.mpi.us[0];
  const double mpi4 = psmall.mpi.us[1];
  check("API 0-byte one-way", 6.5, api0, 0.15);
  check("API 4-byte one-way", 7.8, api4, 0.15);
  check("MPI 0-byte one-way", 44.0, mpi0, 0.15);
  check("MPI 4-byte one-way", 49.0, mpi4, 0.15);

  // Constant-overhead claim (paper's small-message panel): the MPI-API gap
  // stays nearly constant across 0-64 B. Over the 0-1000 B panel the gap
  // grows slowly with size -- that per-byte term is the channel-interface
  // copy, and it is also what produces Figure 3's 512 B crossover against
  // Fast Ethernet (a strictly constant overhead could not: SCRAMNet-MPI
  // would then stay below Fast-Ethernet-MPI far beyond 1 KB).
  const double gap0 = mpi0 - api0;
  const double gap64 = psmall.delta.us.back();
  check_shape("MPI adds a near-constant overhead for small messages (gap@0B=" +
                  Table::num(gap0) + "us, gap@64B=" + Table::num(gap64) + "us)",
              gap64 < 1.5 * gap0);
  return 0;
}
