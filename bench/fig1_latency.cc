// Figure 1: One-way message latency on SCRAMNet at the BillBoard API level
// and at the MPI level, for 0-64 bytes and 0-1000 bytes.
//
// Paper values: API 0 B = 6.5 us, 4 B = 7.8 us; MPI 0 B = 44 us,
// 4 B = 49 us; "the MPI layer only adds a constant overhead to the API
// layer latency".
#include <iostream>

#include "bench_util.h"
#include "harness/benchops.h"

using namespace scrnet;
using namespace scrnet::bench;
using namespace scrnet::harness;

namespace {

void sweep(const std::vector<u32>& sizes, const char* label) {
  Series api{"SCRAMNet API", {}}, mpi{"MPI", {}}, delta{"MPI - API", {}};
  for (u32 s : sizes) {
    const double a = bbp_oneway_us(s);
    const double m = mpi_scramnet_oneway_us(s);
    api.us.push_back(a);
    mpi.us.push_back(m);
    delta.us.push_back(m - a);
  }
  std::cout << "\n-- " << label << " --\n";
  print_series(sizes, {api, mpi, delta});
}

}  // namespace

int main() {
  header("Figure 1: SCRAMNet one-way latency, BillBoard API vs MPI",
         "Moorthy et al., IPPS 1999, Figure 1 + Section 5 headline numbers");

  sweep({0, 4, 8, 16, 32, 48, 64}, "small messages (0-64 bytes)");
  sweep({0, 128, 256, 384, 512, 640, 768, 896, 1000}, "0-1000 bytes");

  std::cout << "\nHeadline checks:\n";
  const double api0 = bbp_oneway_us(0);
  const double api4 = bbp_oneway_us(4);
  const double mpi0 = mpi_scramnet_oneway_us(0);
  const double mpi4 = mpi_scramnet_oneway_us(4);
  check("API 0-byte one-way", 6.5, api0, 0.15);
  check("API 4-byte one-way", 7.8, api4, 0.15);
  check("MPI 0-byte one-way", 44.0, mpi0, 0.15);
  check("MPI 4-byte one-way", 49.0, mpi4, 0.15);

  // Constant-overhead claim (paper's small-message panel): the MPI-API gap
  // stays nearly constant across 0-64 B. Over the 0-1000 B panel the gap
  // grows slowly with size -- that per-byte term is the channel-interface
  // copy, and it is also what produces Figure 3's 512 B crossover against
  // Fast Ethernet (a strictly constant overhead could not: SCRAMNet-MPI
  // would then stay below Fast-Ethernet-MPI far beyond 1 KB).
  const double gap0 = mpi0 - api0;
  const double gap64 = mpi_scramnet_oneway_us(64) - bbp_oneway_us(64);
  check_shape("MPI adds a near-constant overhead for small messages (gap@0B=" +
                  Table::num(gap0) + "us, gap@64B=" + Table::num(gap64) + "us)",
              gap64 < 1.5 * gap0);
  return 0;
}
