// Ablation: scaling with ring size (2-16 nodes). The paper's testbed stops
// at 4 nodes; Section 2 argues the single-step multicast should keep
// broadcast near-flat while point-to-point trees grow with log2(N) rounds.
//
// `abl_ring_scaling --large` extends the sweep with N=64 and N=256 rows
// (the DestSet-era world sizes; 256 is the flat ring's architectural max).
// The large rows are opt-in so the default output stays byte-identical to
// the committed golden; the CI sim-jobs leg runs them as a smoke point.
#include <cstring>
#include <iostream>

#include "bench_util.h"
#include "harness/benchops.h"

using namespace scrnet;
using namespace scrnet::bench;
using namespace scrnet::harness;

int main(int argc, char** argv) {
  const bool large = argc > 1 && std::strcmp(argv[1], "--large") == 0;
  header("Ablation: ring size scaling (2-16 nodes)",
         "extrapolates the paper's 4-node testbed per its Section 2 claims");

  Table t({"nodes", "BBP p2p (us)", "BBP bcast (us)", "MPI barrier API (us)",
           "MPI barrier p2p (us)"});
  struct Row {
    u32 n;
    double p2p, bcast, bar_api, bar_p2p;
  };
  std::vector<Row> rows;
  std::vector<u32> sizes{2u, 4u, 8u, 16u};
  if (large) {
    sizes.push_back(64u);
    sizes.push_back(256u);
  }
  for (u32 n : sizes) {
    Row r{n, bbp_oneway_us(4, n),
          n >= 2 ? bbp_bcast_us(4, n) : 0.0,
          mpi_scramnet_barrier_us(scrmpi::CollAlgo::kNativeMcast, n),
          mpi_scramnet_barrier_us(scrmpi::CollAlgo::kPointToPoint, n)};
    rows.push_back(r);
    t.add_row({std::to_string(n), Table::num(r.p2p), Table::num(r.bcast),
               Table::num(r.bar_api), Table::num(r.bar_p2p)});
  }
  t.print(std::cout);

  // Shape checks judge the paper-scale sweep (N <= 16); the --large rows
  // are a scaling smoke point, printed above and spot-checked below.
  const Row& r16 = rows[3];
  std::cout << "\nChecks:\n";
  check_shape("p2p latency nearly independent of ring size (bounded hops)",
              r16.p2p < rows.front().p2p + 6.0);
  check_shape("single-step bcast grows only mildly with node count",
              r16.bcast < 3.0 * rows[1].bcast);
  check_shape("API barrier stays well below the p2p tree at every size",
              [&] {
                for (const Row& r : rows)
                  if (r.n <= 16 && r.bar_api >= r.bar_p2p) return false;
                return true;
              }());
  if (large) {
    // Broadcast completion is one serialization plus N-1 ring hops, so the
    // per-hop slope must stay flat as N grows (linear completion, not
    // log-tree or quadratic growth). Compare the 16->64 and 64->256
    // segment slopes with 1.5x headroom.
    const double slope_mid = (rows[4].bcast - r16.bcast) / (64 - 16);
    const double slope_big = (rows[5].bcast - rows[4].bcast) / (256 - 64);
    check_shape("bcast per-hop slope stays flat out to N=256",
                slope_big < 1.5 * slope_mid);
  }
  // The flip side of the paper's design: the mcast barrier's *release* is
  // single-step, but its gather is a linear coordinator, so it must grow
  // faster than the log2 tree as N rises -- the mcast advantage is a
  // small-cluster property. Quantify the erosion:
  const double adv4 = rows[1].bar_p2p / rows[1].bar_api;
  const double adv16 = r16.bar_p2p / r16.bar_api;
  std::cout << "  p2p/API barrier advantage: " << Table::num(adv4) << "x at 4 nodes, "
            << Table::num(adv16) << "x at 16 nodes\n";
  check_shape("linear coordinator erodes the mcast advantage as N grows",
              adv16 < adv4);
  return 0;
}
