// Figure 3: One-way MPI-level latency -- SCRAMNet (MPICH over the
// BillBoard API) vs Fast Ethernet and ATM (MPICH over TCP/IP).
//
// Paper claims: SCRAMNet faster than Fast Ethernet below ~512 B and
// faster than ATM below ~580 B (OCR: "58 bytes").
#include <iostream>

#include "bench_util.h"
#include "harness/benchops.h"
#include "sweep/runner.h"

using namespace scrnet;
using namespace scrnet::bench;
using namespace scrnet::harness;

int main(int argc, char** argv) {
  sweep::Runner runner(parse_jobs(argc, argv));

  header("Figure 3: MPI point-to-point latency across networks",
         "Moorthy et al., IPPS 1999, Figure 3");

  const std::vector<u32> sizes{0, 4, 64, 128, 256, 384, 512, 640, 768, 896, 1000};
  Series scr{"SCRAMNet MPI", mpi_scramnet_oneway_us_sweep(sizes, runner)},
      fe{"FastEth MPI",
         mpi_tcp_oneway_us_sweep(TcpFabricKind::kFastEthernet, sizes, runner)},
      atm{"ATM MPI", mpi_tcp_oneway_us_sweep(TcpFabricKind::kAtm, sizes, runner)};
  print_series(sizes, {scr, fe, atm});

  std::cout << "\nShape checks (paper Section 5):\n";
  check_shape("SCRAMNet fastest at 0/4 bytes",
              scr.us[0] < fe.us[0] && scr.us[0] < atm.us[0] &&
                  scr.us[1] < fe.us[1] && scr.us[1] < atm.us[1]);
  report_crossover("SCRAMNet vs Fast Ethernet (paper: ~512 B)",
                   crossover(sizes, scr.us, fe.us), 350, 700);
  report_crossover("SCRAMNet vs ATM (paper: ~580 B)",
                   crossover(sizes, scr.us, atm.us), 400, 800);
  const auto x_fe = crossover(sizes, scr.us, fe.us);
  const auto x_atm = crossover(sizes, scr.us, atm.us);
  check_shape("ATM crossover beyond Fast Ethernet's (ATM slope is flatter)",
              x_fe && x_atm && *x_atm > *x_fe);
  return 0;
}
