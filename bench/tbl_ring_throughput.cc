// Section 2 specification table: SCRAMNet ring throughput in fixed 4-byte
// packet mode (6.5 MB/s max) and variable-length packet mode (16.7 MB/s
// max), plus the BBP-level throughput the protocol achieves on top.
#include <iostream>

#include "bench_util.h"
#include "harness/benchops.h"
#include "scramnet/ring.h"
#include "sweep/runner.h"

using namespace scrnet;
using namespace scrnet::bench;
using namespace scrnet::harness;

namespace {

/// Raw ring throughput: stream `bytes` from one node with an instant host.
double raw_ring_mbps(scramnet::PacketMode mode, u32 bytes) {
  sim::Simulation sim;
  scramnet::RingConfig cfg;
  cfg.mode = mode;
  cfg.bank_words = 1u << 20;
  scramnet::Ring ring(sim, cfg);
  std::vector<u32> words(bytes / 4, 0x5A);
  ring.host_write_block(0, 0, words, 0);
  sim.run();
  return static_cast<double>(bytes) / 1e6 /
         (static_cast<double>(sim.now()) / 1e12);
}

}  // namespace

int main(int argc, char** argv) {
  sweep::Runner runner(parse_jobs(argc, argv));

  header("Table: SCRAMNet ring throughput (Section 2 specifications)",
         "Moorthy et al., IPPS 1999, Section 2");

  // The two raw-ring measurements are independent simulations too: submit
  // them alongside the BBP sweep so everything overlaps.
  auto f_fixed = runner.submit("raw_ring.fixed4", [] {
    return raw_ring_mbps(scramnet::PacketMode::kFixed4, 1u << 20);
  });
  auto f_variable = runner.submit("raw_ring.variable", [] {
    return raw_ring_mbps(scramnet::PacketMode::kVariable, 1u << 20);
  });
  const std::vector<u32> sizes{64, 256, 1024, 4096, 16384, 65536};
  const std::vector<double> bbp =
      bbp_throughput_mbps_sweep(sizes, 1u << 20, runner);
  const double fixed = f_fixed.get();
  const double variable = f_variable.get();

  Table t({"mode", "paper max (MB/s)", "measured (MB/s)"});
  t.add_row({"fixed 4-byte packets", "6.5", Table::num(fixed)});
  t.add_row({"variable packets (<=1KB)", "16.7", Table::num(variable)});
  t.print(std::cout);

  std::cout << "\nBBP end-to-end throughput (variable mode, incl. protocol):\n";
  Table t2({"message bytes", "BBP throughput (MB/s)"});
  for (usize i = 0; i < sizes.size(); ++i)
    t2.add_row({std::to_string(sizes[i]), Table::num(bbp[i])});
  t2.print(std::cout);

  std::cout << "\nChecks:\n";
  check("fixed-mode ring throughput (MB/s)", 6.5, fixed, 0.05);
  check("variable-mode ring throughput (MB/s)", 16.7, variable, 0.05);
  check_shape("BBP throughput approaches the ring limit for large messages",
              bbp.back() > 10.0);
  return 0;
}
