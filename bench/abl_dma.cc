// Ablation: PIO vs DMA for large BBP payloads (Section 2: "for larger
// data transfers, programmed I/O or DMA can be used").
//
// The wire is the same ring either way; what DMA buys is the *sender's
// CPU*: with PIO the host shovels every word across the PCI bus itself,
// with DMA it writes a descriptor and is free. One-way latency barely
// moves; back-to-back streaming throughput and sender availability do.
#include <iostream>

#include "bench_util.h"
#include "harness/benchops.h"

using namespace scrnet;
using namespace scrnet::bench;
using namespace scrnet::harness;

namespace {

ScramnetOptions dma_opts() {
  ScramnetOptions o;
  o.bbp.dma_threshold_bytes = 512;
  return o;
}

/// Sender-side occupancy: virtual time from first send() call to the
/// sender being done issuing `msgs` back-to-back sends (not waiting for
/// delivery) -- the "CPU free for the application" metric.
double sender_issue_us(u32 bytes, u32 msgs, ScramnetOptions opts) {
  SimTime t0 = 0, t1 = 0;
  run_scramnet_bbp(
      2,
      [&](sim::Process& p, bbp::Endpoint& ep) {
        if (ep.rank() == 0) {
          std::vector<u8> msg(bytes);
          t0 = p.now();
          for (u32 i = 0; i < msgs; ++i) (void)ep.send(1, msg);
          t1 = p.now();  // issue complete; drain happens after
          ep.drain();
        } else {
          std::vector<u8> buf(bytes);
          for (u32 i = 0; i < msgs; ++i) (void)ep.recv(0, buf);
        }
      },
      opts);
  return to_us(t1 - t0);
}

}  // namespace

int main() {
  header("Ablation: PIO vs DMA payload transfer in the BillBoard Protocol",
         "Section 2: 'programmed I/O or DMA can be used'");

  const std::vector<u32> sizes{512, 1024, 4096, 16384};
  Series pio_lat{"PIO latency", {}}, dma_lat{"DMA latency", {}};
  for (u32 s : sizes) {
    pio_lat.us.push_back(bbp_oneway_us(s));
    dma_lat.us.push_back(bbp_oneway_us(s, 4, 20, 4, dma_opts()));
  }
  print_series(sizes, {pio_lat, dma_lat});

  std::cout << "\nSender-side issue time for 8 back-to-back messages:\n";
  Table t({"bytes", "PIO issue (us)", "DMA issue (us)", "PIO tput (MB/s)",
           "DMA tput (MB/s)"});
  double pio_issue_16k = 0, dma_issue_16k = 0;
  for (u32 s : sizes) {
    const double a = sender_issue_us(s, 8, {});
    const double b = sender_issue_us(s, 8, dma_opts());
    if (s == 16384) {
      pio_issue_16k = a;
      dma_issue_16k = b;
    }
    t.add_row({std::to_string(s), Table::num(a), Table::num(b),
               Table::num(bbp_throughput_mbps(s, 1u << 20)),
               Table::num(bbp_throughput_mbps(s, 1u << 20, 4, dma_opts()))});
  }
  t.print(std::cout);

  std::cout << "\nChecks:\n";
  check_shape("one-way latency is wire-bound, DMA changes it < 15%",
              std::abs(dma_lat.us.back() - pio_lat.us.back()) <
                  0.15 * pio_lat.us.back());
  check_shape("DMA frees most of the sender's CPU on bulk streams",
              dma_issue_16k < 0.6 * pio_issue_16k);
  return 0;
}
