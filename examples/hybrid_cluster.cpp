// hybrid_cluster: the communication subsystem the paper's conclusion
// proposes -- SCRAMNet for latency alongside Myrinet for bandwidth.
//
// Workload: a parameter-server round. The server pushes a large model
// block (bulk, bandwidth-bound) to each worker, workers push back small
// gradient summaries (latency-bound), with mcast barriers between rounds.
// The same program runs on three cluster configurations; the hybrid one
// should win on both phases.
#include <cstdio>
#include <vector>

#include "common/bytes.h"
#include "harness/cluster.h"

using namespace scrnet;
using namespace scrnet::scrmpi;

namespace {

constexpr u32 kModelBytes = 48 * 1024;  // bulk push per worker per round
constexpr u32 kGradBytes = 96;          // small reply
constexpr u32 kRounds = 5;

double run_round_trip(Mpi& mpi, sim::Process& p) {
  mpi.set_bcast_algo(CollAlgo::kAuto);
  mpi.set_barrier_algo(CollAlgo::kAuto);
  const Comm& w = mpi.world();
  const i32 me = mpi.rank(w);
  const i32 np = static_cast<i32>(mpi.size(w));
  const SimTime t0 = p.now();

  std::vector<u8> model(kModelBytes), grad(kGradBytes);
  for (u32 round = 0; round < kRounds; ++round) {
    if (me == 0) {
      fill_pattern(model, round);
      for (i32 r = 1; r < np; ++r)
        mpi.send(model.data(), kModelBytes, Datatype::kByte, r, 1, w);
      for (i32 r = 1; r < np; ++r) {
        MpiStatus st = mpi.recv(grad.data(), kGradBytes, Datatype::kByte,
                                kAnySource, 2, w);
        (void)st;
      }
    } else {
      mpi.recv(model.data(), kModelBytes, Datatype::kByte, 0, 1, w);
      if (!check_pattern(model, round)) std::abort();
      fill_pattern(grad, round * 100 + static_cast<u32>(me));
      mpi.send(grad.data(), kGradBytes, Datatype::kByte, 0, 2, w);
    }
    mpi.barrier(w);
  }
  return to_us(p.now() - t0);
}

}  // namespace

int main() {
  std::printf("hybrid_cluster: parameter-server rounds, 1 server + 3 workers\n");
  std::printf("bulk push: %u KB/worker, replies: %u B, %u rounds\n\n",
              kModelBytes / 1024, kGradBytes, kRounds);

  double t_scr = 0, t_myr = 0, t_hyb = 0;
  harness::run_scramnet_mpi(4, [&](sim::Process& p, Mpi& mpi) {
    const double t = run_round_trip(mpi, p);
    if (mpi.rank(mpi.world()) == 0) t_scr = t;
  });
  harness::run_tcp_mpi(4, harness::TcpFabricKind::kMyrinet,
                       [&](sim::Process& p, Mpi& mpi) {
                         const double t = run_round_trip(mpi, p);
                         if (mpi.rank(mpi.world()) == 0) t_myr = t;
                       });
  harness::run_hybrid_mpi(4, harness::TcpFabricKind::kMyrinet, /*threshold=*/512,
                          [&](sim::Process& p, Mpi& mpi) {
                            const double t = run_round_trip(mpi, p);
                            if (mpi.rank(mpi.world()) == 0) t_hyb = t;
                          });

  std::printf("%-28s %12s\n", "cluster network", "time (ms)");
  std::printf("%-28s %12.2f\n", "SCRAMNet only", t_scr / 1000);
  std::printf("%-28s %12.2f\n", "Myrinet (TCP) only", t_myr / 1000);
  std::printf("%-28s %12.2f\n", "hybrid SCRAMNet+Myrinet", t_hyb / 1000);

  const bool wins = t_hyb < t_scr && t_hyb < t_myr;
  std::printf("\nhybrid fastest: %s -- bulk rides Myrinet's 1.28 Gb/s links,\n"
              "small replies and barriers ride SCRAMNet's 7us path.\n",
              wins ? "yes" : "NO");
  return wins ? 0 : 1;
}
