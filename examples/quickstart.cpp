// Quickstart: the whole stack in one file.
//
//  1. Bring up a simulated 4-node SCRAMNet ring.
//  2. Exchange messages with the paper's 5-call BillBoard Protocol API
//     (bbp_init / bbp_Send / bbp_Recv / bbp_Mcast / bbp_MsgAvail).
//  3. Do the same through the MPI layer, including the hardware-multicast
//     MPI_Bcast.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <cstring>

#include "harness/cluster.h"

using namespace scrnet;

namespace {

void bbp_level_demo() {
  std::printf("--- BillBoard Protocol API (the paper's 5 calls) ---\n");
  harness::run_scramnet_bbp(4, [](sim::Process& p, bbp::Endpoint& ep) {
    if (ep.rank() == 0) {
      const char* text = "hello over replicated shared memory";
      // Point-to-point to node 1...
      (void)ep.send(1, {reinterpret_cast<const u8*>(text), strlen(text) + 1});
      // ...and a single-step multicast to everyone else.
      const u32 dests[] = {1, 2, 3};
      const char* all = "one write, three receivers";
      (void)ep.mcast(dests, {reinterpret_cast<const u8*>(all), strlen(all) + 1});
      ep.drain();
    } else {
      char buf[64];
      if (ep.rank() == 1) {
        auto r = ep.recv(0, {reinterpret_cast<u8*>(buf), sizeof buf});
        std::printf("node 1 got p2p:   \"%s\" at t=%.2fus\n", buf, to_us(p.now()));
        (void)r;
      }
      auto r = ep.recv(0, {reinterpret_cast<u8*>(buf), sizeof buf});
      std::printf("node %u got mcast: \"%s\" at t=%.2fus\n", ep.rank(), buf,
                  to_us(p.now()));
      (void)r;
    }
  });
}

void mpi_level_demo() {
  std::printf("\n--- MPI layer (MPICH-style, ch_bbp device) ---\n");
  harness::run_scramnet_mpi(4, [](sim::Process& p, scrmpi::Mpi& mpi) {
    const scrmpi::Comm& world = mpi.world();
    const i32 me = mpi.rank(world);

    // Ring-pass a token with tagged point-to-point messages.
    i32 token = (me == 0) ? 1000 : 0;
    const i32 next = (me + 1) % 4, prev = (me + 3) % 4;
    if (me == 0) {
      mpi.send(&token, 1, scrmpi::Datatype::kInt32, next, 42, world);
      mpi.recv(&token, 1, scrmpi::Datatype::kInt32, prev, 42, world);
      std::printf("rank 0: token back with value %d at t=%.1fus\n", token,
                  to_us(p.now()));
    } else {
      mpi.recv(&token, 1, scrmpi::Datatype::kInt32, prev, 42, world);
      ++token;
      mpi.send(&token, 1, scrmpi::Datatype::kInt32, next, 42, world);
    }

    // Hardware-multicast broadcast (the paper's MPI_Bcast).
    mpi.set_bcast_algo(scrmpi::CollAlgo::kNativeMcast);
    double pi = (me == 0) ? 3.14159265 : 0.0;
    mpi.bcast(&pi, 1, scrmpi::Datatype::kDouble, 0, world);

    // Reduce everyone's rank; the sum 0+1+2+3 lands at the root.
    i32 sum = 0;
    mpi.reduce(&me, &sum, 1, scrmpi::Datatype::kInt32, scrmpi::ReduceOp::kSum, 0,
               world);
    if (me == 0)
      std::printf("rank 0: bcast pi=%.5f, reduced rank-sum=%d\n", pi, sum);

    mpi.barrier(world);
  });
}

}  // namespace

int main() {
  std::printf("SCRAMNet/BBP quickstart (simulated 4-node ring)\n\n");
  bbp_level_demo();
  mpi_level_demo();
  std::printf("\ndone.\n");
  return 0;
}
