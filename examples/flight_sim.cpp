// flight_sim: the application domain SCRAMNet was built for (Section 1:
// "aircraft simulators, industrial process control, virtual reality,
// telemetry and robotics").
//
// Four stations run a fixed-rate real-time loop over the replicated
// shared memory, the way real SCRAMNet deployments do:
//   * station 0: flight-dynamics host -- writes the aircraft state vector
//     into its region of SCRAMNet memory every 5 ms frame;
//   * station 1: control-loading rig  -- writes stick/rudder inputs;
//   * station 2: visual system        -- reads the state each frame and
//     renders (here: checks staleness of what it read);
//   * station 3: instructor station   -- occasionally injects a failure
//     command through a BBP message (mixing the shared-memory model with
//     the paper's message passing on the same network).
//
// The run reports worst-case state staleness observed by the visual
// system -- the bounded-latency property Section 2 advertises.
#include <cstdio>
#include <cstring>

#include "bbp/endpoint.h"
#include "scramnet/ring.h"
#include "scramnet/sim_port.h"

using namespace scrnet;

namespace {

constexpr u32 kFrames = 200;
constexpr SimTime kFrame = us(5000);  // 200 Hz simulation frame

// Fixed layout in replicated memory (word addresses).
constexpr u32 kStateBase = 0x100;   // aircraft state: [frame, x, y, z, vx, vy, vz]
constexpr u32 kStateWords = 7;
constexpr u32 kControlsBase = 0x200;  // [frame, stick_x, stick_y, rudder]
constexpr u32 kControlsWords = 4;

u32 f2w(double v) {
  float f = static_cast<float>(v);
  u32 w;
  std::memcpy(&w, &f, 4);
  return w;
}
double w2f(u32 w) {
  float f;
  std::memcpy(&f, &w, 4);
  return f;
}

}  // namespace

int main() {
  std::printf("flight_sim: 4 stations on a simulated SCRAMNet ring, 200 Hz\n\n");
  sim::Simulation sim;
  scramnet::RingConfig rcfg;
  rcfg.nodes = 4;
  scramnet::Ring ring(sim, rcfg);

  u32 failures_injected = 0, failures_seen = 0;
  SimTime worst_staleness = 0;

  // Station 0: flight dynamics. Owns the state vector.
  sim.spawn("dynamics", [&](sim::Process& p) {
    scramnet::SimHostPort port(ring, 0, p);
    bbp::Endpoint ep(port, 4, 0);
    double x = 0, y = 0, z = 3000;
    for (u32 frame = 1; frame <= kFrames; ++frame) {
      // Read the control rig's latest inputs straight from shared memory.
      const double stick_x = w2f(port.read_u32(kControlsBase + 1));
      const double stick_y = w2f(port.read_u32(kControlsBase + 2));
      x += 120.0 * 0.005;               // ~120 m/s forward
      y += stick_x * 5.0;
      z += stick_y * 8.0;
      const u32 state[kStateWords] = {frame, f2w(x), f2w(y), f2w(z),
                                      f2w(120.0), f2w(stick_x * 5), f2w(stick_y * 8)};
      port.write_block(kStateBase + 1, std::span<const u32>(state + 1, 6));
      port.write_u32(kStateBase, frame);  // frame counter last: consistency flag
      // Instructor failure commands arrive as BBP messages.
      if (ep.msg_avail_from(3)) {
        u8 cmd[16];
        (void)ep.recv(3, cmd);
        ++failures_seen;
      }
      p.delay(kFrame - us(300));  // rest of the frame budget
    }
  });

  // Station 1: control loading. Owns the controls vector.
  sim.spawn("controls", [&](sim::Process& p) {
    scramnet::SimHostPort port(ring, 1, p);
    for (u32 frame = 1; frame <= kFrames; ++frame) {
      const double phase = frame * 0.05;
      const u32 ctl[kControlsWords] = {frame, f2w(0.3 * phase), f2w(-0.1), f2w(0.05)};
      port.write_block(kControlsBase, ctl);
      p.delay(kFrame);
    }
  });

  // Station 2: visual system. Reads state; tracks staleness.
  sim.spawn("visuals", [&](sim::Process& p) {
    scramnet::SimHostPort port(ring, 2, p);
    p.delay(us(1200));  // start mid-frame, like a real async renderer
    u32 last_frame = 0;
    for (u32 tick = 0; tick < kFrames; ++tick) {
      const u32 frame = port.read_u32(kStateBase);
      if (frame > last_frame) {
        // Staleness: how far into the frame period are we reading it?
        const SimTime age = p.now() - static_cast<SimTime>(frame - 1) * kFrame;
        if (frame > 2 && age > worst_staleness) worst_staleness = age;
        last_frame = frame;
      }
      p.delay(kFrame);
    }
  });

  // Station 3: instructor. Injects failure commands over BBP.
  sim.spawn("instructor", [&](sim::Process& p) {
    scramnet::SimHostPort port(ring, 3, p);
    bbp::Endpoint ep(port, 4, 3);
    for (u32 i = 0; i < 5; ++i) {
      p.delay(kFrame * 37);
      const char* cmd = "FAIL ENG2";
      (void)ep.send(0, {reinterpret_cast<const u8*>(cmd), strlen(cmd) + 1});
      ++failures_injected;
    }
    ep.drain();
  });

  sim.run();

  std::printf("frames simulated:        %u (%.0f ms of flight)\n", kFrames,
              to_us(kFrames * kFrame) / 1000.0);
  std::printf("failure cmds delivered:  %u / %u over BBP\n", failures_seen,
              failures_injected);
  std::printf("worst state staleness:   %.1f us (frame period: %.0f us)\n",
              to_us(worst_staleness), to_us(kFrame));
  std::printf("\nThe state a renderer reads is at most one frame plus the ring\n"
              "propagation old -- the bounded-latency behaviour that made\n"
              "SCRAMNet the standard interconnect for hard-real-time rigs.\n");
  return failures_seen == failures_injected ? 0 : 1;
}
