// heat_stencil: a classic cluster-computing workload (the paper's
// motivation: "workstation clusters ... for parallel and distributed
// computing") -- a 1-D heat-diffusion solver with halo exchange on the
// mini-MPI, run over both SCRAMNet and Fast Ethernet to show where the
// low-latency network pays off.
//
// Each rank owns a block of cells; every iteration exchanges one-cell
// halos with neighbors (latency-bound small messages -- SCRAMNet's sweet
// spot) and every 50 iterations does an Allreduce for the residual.
#include <cmath>
#include <cstdio>
#include <vector>

#include "harness/cluster.h"

using namespace scrnet;
using namespace scrnet::scrmpi;

namespace {

constexpr u32 kCellsPerRank = 64;
constexpr u32 kIters = 300;
constexpr double kAlpha = 0.25;

struct RunResult {
  double residual = 0;
  double checksum = 0;
  SimTime elapsed = 0;
};

RunResult solve(Mpi& mpi, sim::Process& p) {
  const Comm& w = mpi.world();
  const i32 me = mpi.rank(w);
  const i32 np = static_cast<i32>(mpi.size(w));
  std::vector<double> u(kCellsPerRank + 2, 0.0), next(kCellsPerRank + 2, 0.0);

  // Initial condition: a hot spike in rank 0's first cell, fixed boundary.
  if (me == 0) u[1] = 1000.0;

  const SimTime t0 = p.now();
  double residual = 0;
  for (u32 it = 0; it < kIters; ++it) {
    // Halo exchange with neighbors (blocking sendrecv avoids deadlock).
    const i32 left = me - 1, right = me + 1;
    if (left >= 0) {
      mpi.sendrecv(&u[1], 1, Datatype::kDouble, left, 0, &u[0], 1,
                   Datatype::kDouble, left, 0, w);
    }
    if (right < np) {
      mpi.sendrecv(&u[kCellsPerRank], 1, Datatype::kDouble, right, 0,
                   &u[kCellsPerRank + 1], 1, Datatype::kDouble, right, 0, w);
    }
    // Jacobi update.
    double local_res = 0;
    for (u32 i = 1; i <= kCellsPerRank; ++i) {
      next[i] = u[i] + kAlpha * (u[i - 1] - 2 * u[i] + u[i + 1]);
      local_res += std::fabs(next[i] - u[i]);
    }
    std::swap(u, next);
    // Boundary pins (world edges stay at 0, except the source).
    if (me == 0) u[0] = 0;
    if (me == np - 1) u[kCellsPerRank + 1] = 0;

    if (it % 50 == 49) {
      mpi.allreduce(&local_res, &residual, 1, Datatype::kDouble, ReduceOp::kSum, w);
    }
  }
  mpi.barrier(w);

  double local_sum = 0;
  for (u32 i = 1; i <= kCellsPerRank; ++i) local_sum += u[i];
  double checksum = 0;
  mpi.allreduce(&local_sum, &checksum, 1, Datatype::kDouble, ReduceOp::kSum, w);

  RunResult r;
  r.residual = residual;
  r.checksum = checksum;
  r.elapsed = p.now() - t0;
  return r;
}

}  // namespace

int main() {
  std::printf("heat_stencil: 4-rank 1-D heat diffusion, %u cells/rank, %u iters\n\n",
              kCellsPerRank, kIters);

  RunResult scr, fe;
  harness::run_scramnet_mpi(4, [&](sim::Process& p, Mpi& mpi) {
    mpi.set_bcast_algo(CollAlgo::kNativeMcast);
    RunResult r = solve(mpi, p);
    if (mpi.rank(mpi.world()) == 0) scr = r;
  });
  harness::run_tcp_mpi(4, harness::TcpFabricKind::kFastEthernet,
                       [&](sim::Process& p, Mpi& mpi) {
                         RunResult r = solve(mpi, p);
                         if (mpi.rank(mpi.world()) == 0) fe = r;
                       });

  std::printf("%-16s %14s %14s %12s\n", "network", "residual", "checksum",
              "time (ms)");
  std::printf("%-16s %14.6f %14.4f %12.2f\n", "SCRAMNet", scr.residual,
              scr.checksum, to_us(scr.elapsed) / 1000.0);
  std::printf("%-16s %14.6f %14.4f %12.2f\n", "FastEthernet", fe.residual,
              fe.checksum, to_us(fe.elapsed) / 1000.0);

  const bool same = std::fabs(scr.checksum - fe.checksum) < 1e-9;
  const double speedup = to_us(fe.elapsed) / to_us(scr.elapsed);
  std::printf("\nidentical numerics on both networks: %s\n", same ? "yes" : "NO");
  std::printf("SCRAMNet speedup on this latency-bound workload: %.1fx\n", speedup);
  std::printf("(halo cells are 8-byte messages -- exactly the regime where\n"
              " Figure 3 shows SCRAMNet ahead of Ethernet/ATM)\n");
  return same && speedup > 1.5 ? 0 : 1;
}
