// shm_coordination: the shared-memory programming model SCRAMNet shipped
// with (paper Section 2), using the scrshm synchronization library --
// Lamport bakery mutex, dissemination barrier and single-writer seqlock on
// non-coherent replicated memory.
//
// Scenario: four stations keep a shared work ledger. Each phase, every
// station claims work items under the mutex, the owner of the telemetry
// record publishes it through the seqlock, and a barrier separates phases.
#include <cstdio>
#include <vector>

#include "scramnet/ring.h"
#include "scramnet/sim_port.h"
#include "scrshm/barrier.h"
#include "scrshm/mutex.h"
#include "scrshm/seqlock.h"

using namespace scrnet;
using namespace scrnet::scrshm;

namespace {

constexpr u32 kStations = 4;
constexpr u32 kPhases = 6;
constexpr u32 kItemsPerPhase = 20;

// Shared-ledger layout: each station owns one "claimed count" word
// (single-writer), and the next-item cursor is guarded by the mutex.
// The cursor itself must also be single-writer... on SCRAMNet one gives
// the mutex holder temporary write ownership: only the holder writes it,
// which the lock guarantees.
constexpr u32 kCursorAddr = 512;
constexpr u32 kClaimBase = 513;  // + station

}  // namespace

int main() {
  std::printf("shm_coordination: %u stations, %u phases, %u items/phase\n\n",
              kStations, kPhases, kItemsPerPhase);
  sim::Simulation sim;
  scramnet::RingConfig rcfg;
  rcfg.nodes = kStations;
  scramnet::Ring ring(sim, rcfg);

  std::vector<u32> claimed(kStations, 0);
  u32 telemetry_versions_seen = 0;
  bool consistent = true;

  for (u32 id = 0; id < kStations; ++id) {
    sim.spawn("station" + std::to_string(id), [&, id](sim::Process& p) {
      scramnet::SimHostPort port(ring, id, p);
      Arena arena(0, 512);
      BakeryMutex mu(port, arena, kStations, id);
      DisseminationBarrier bar(port, arena, kStations, id);
      SeqLock telemetry(port, arena, 4, /*writer=*/0);

      for (u32 phase = 0; phase < kPhases; ++phase) {
        // Claim items until the phase's quota is gone.
        for (;;) {
          BakeryMutex::Guard g(mu);
          const u32 cursor = port.read_u32(kCursorAddr);
          if (cursor >= (phase + 1) * kItemsPerPhase) break;
          port.write_u32(kCursorAddr, cursor + 1);
          // "Work" on the item outside the ledger words.
          ++claimed[id];
          port.write_u32(kClaimBase + id, claimed[id]);
        }
        // Station 0 publishes a telemetry record for the phase.
        if (id == 0) {
          const u32 rec[4] = {phase, claimed[0], p.now() > 0 ? 1u : 0u, 0xFEEDu};
          telemetry.publish(rec);
        } else {
          u32 rec[4];
          if (telemetry.snapshot(rec) > 0) {
            if (rec[3] != 0xFEEDu) consistent = false;
            ++telemetry_versions_seen;
          }
        }
        bar.wait();  // phase boundary
      }
    });
  }
  sim.run();

  u32 total = 0;
  for (u32 id = 0; id < kStations; ++id) {
    std::printf("station %u claimed %u items\n", id, claimed[id]);
    total += claimed[id];
  }
  std::printf("total claimed: %u (expected %u, no double-claims under the "
              "bakery lock)\n", total, kPhases * kItemsPerPhase);
  std::printf("telemetry snapshots read: %u, all internally consistent: %s\n",
              telemetry_versions_seen, consistent ? "yes" : "NO");
  return (total == kPhases * kItemsPerPhase && consistent) ? 0 : 1;
}
