// master_worker: task-farm pattern exercising the paper's collective fast
// paths -- the master broadcasts a parameter block to all workers with the
// hardware-multicast MPI_Bcast, workers stream results back with tagged
// sends and wildcard receives, and epochs are separated by the
// mcast-release MPI_Barrier.
//
// The workload is a Monte-Carlo pi estimator: embarrassingly parallel
// compute, but with a broadcast + gather + barrier per round, so the
// collective latency (Figures 5 and 6) directly shows up in wall time.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "harness/cluster.h"

using namespace scrnet;
using namespace scrnet::scrmpi;

namespace {

constexpr u32 kRounds = 8;
constexpr u32 kSamplesPerWorker = 20000;
constexpr SimTime kCostPerSample = ns(80);  // modeled FLOP cost per sample

struct RoundParams {
  u32 round;
  u32 samples;
  u64 seed;
};

double run(Mpi& mpi, sim::Process& p, CollAlgo algo, u64* hits_out) {
  mpi.set_bcast_algo(algo);
  mpi.set_barrier_algo(algo);
  const Comm& w = mpi.world();
  const i32 me = mpi.rank(w);
  const i32 np = static_cast<i32>(mpi.size(w));
  const SimTime t0 = p.now();
  u64 total_hits = 0, total_samples = 0;

  for (u32 round = 0; round < kRounds; ++round) {
    RoundParams params{round, kSamplesPerWorker, 0x9E3779B9u + round};
    mpi.bcast(&params, sizeof(params) / 4, Datatype::kUint32, 0, w);

    if (me != 0) {
      Rng rng(params.seed * 1000003u + static_cast<u64>(me));
      u64 hits = 0;
      for (u32 s = 0; s < params.samples; ++s) {
        const double x = rng.uniform(), y = rng.uniform();
        if (x * x + y * y <= 1.0) ++hits;
      }
      p.delay(kCostPerSample * params.samples);  // the compute itself
      mpi.send(&hits, 1, Datatype::kInt64, 0, static_cast<i32>(round), w);
    } else {
      for (i32 i = 1; i < np; ++i) {
        u64 hits = 0;
        MpiStatus st = mpi.recv(&hits, 1, Datatype::kInt64, kAnySource,
                                static_cast<i32>(round), w);
        (void)st;
        total_hits += hits;
        total_samples += params.samples;
      }
    }
    mpi.barrier(w);
  }
  if (hits_out) *hits_out = total_hits;
  if (me == 0) {
    const double pi = 4.0 * static_cast<double>(total_hits) /
                      static_cast<double>(total_samples);
    std::printf("  pi estimate: %.5f from %llu samples\n", pi,
                static_cast<unsigned long long>(total_samples));
  }
  return to_us(p.now() - t0);
}

}  // namespace

int main() {
  std::printf("master_worker: Monte-Carlo task farm, 1 master + 3 workers, "
              "%u rounds\n\n", kRounds);

  double t_native = 0, t_p2p = 0;
  u64 hits_native = 0, hits_p2p = 0;

  std::printf("SCRAMNet, native-mcast collectives:\n");
  harness::run_scramnet_mpi(4, [&](sim::Process& p, Mpi& mpi) {
    const double t = run(mpi, p, CollAlgo::kNativeMcast, &hits_native);
    if (mpi.rank(mpi.world()) == 0) t_native = t;
  });

  std::printf("SCRAMNet, point-to-point collectives:\n");
  harness::run_scramnet_mpi(4, [&](sim::Process& p, Mpi& mpi) {
    const double t = run(mpi, p, CollAlgo::kPointToPoint, &hits_p2p);
    if (mpi.rank(mpi.world()) == 0) t_p2p = t;
  });

  std::printf("\nwall time, native mcast: %10.1f us\n", t_native);
  std::printf("wall time, p2p trees:    %10.1f us\n", t_p2p);
  std::printf("collective fast-path saving: %.1f us (%.1f us per round)\n",
              t_p2p - t_native, (t_p2p - t_native) / kRounds);

  const bool same = hits_native == hits_p2p;
  std::printf("identical results across algorithms: %s\n", same ? "yes" : "NO");
  return same && t_native < t_p2p ? 0 : 1;
}
