// Tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/mailbox.h"
#include "sim/simulation.h"

namespace scrnet::sim {
namespace {

TEST(Simulation, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.post(us(30), [&] { order.push_back(3); });
  sim.post(us(10), [&] { order.push_back(1); });
  sim.post(us(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), us(30));
}

TEST(Simulation, TiesBreakByPostOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) sim.post(us(5), [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, NestedPostsExecute) {
  Simulation sim;
  int hits = 0;
  sim.post(us(1), [&] {
    ++hits;
    sim.post(us(1), [&] {
      ++hits;
      sim.post(us(1), [&] { ++hits; });
    });
  });
  sim.run();
  EXPECT_EQ(hits, 3);
  EXPECT_EQ(sim.now(), us(3));
}

TEST(Simulation, ProcessDelayAdvancesClock) {
  Simulation sim;
  SimTime end = -1;
  sim.spawn("p", [&](Process& p) {
    p.delay(us(7));
    p.delay(ns(500));
    end = p.now();
  });
  sim.run();
  EXPECT_EQ(end, us(7) + ns(500));
}

TEST(Simulation, TwoProcessesInterleaveDeterministically) {
  Simulation sim;
  std::vector<std::string> log;
  sim.spawn("a", [&](Process& p) {
    for (int i = 0; i < 3; ++i) {
      p.delay(us(10));
      log.push_back("a" + std::to_string(i));
    }
  });
  sim.spawn("b", [&](Process& p) {
    for (int i = 0; i < 3; ++i) {
      p.delay(us(15));
      log.push_back("b" + std::to_string(i));
    }
  });
  sim.run();
  // At t=30 both a2 and b1 fire; b1's resume was posted earlier (t=15 vs
  // t=20), so the FIFO tie-break runs it first.
  EXPECT_EQ(log, (std::vector<std::string>{"a0", "b0", "a1", "b1", "a2", "b2"}));
}

TEST(Simulation, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulation sim;
    std::vector<SimTime> stamps;
    Signal sig(sim);
    sim.spawn("producer", [&](Process& p) {
      for (int i = 0; i < 50; ++i) {
        p.delay(ns(137));
        sig.notify_one();
      }
    });
    sim.spawn("consumer", [&](Process& p) {
      for (int i = 0; i < 50; ++i) {
        sig.wait(p);
        stamps.push_back(p.now());
      }
    });
    sim.run();
    return stamps;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Simulation, SignalWakesParkedProcess) {
  Simulation sim;
  Signal sig(sim);
  SimTime woke = -1;
  sim.spawn("waiter", [&](Process& p) {
    sig.wait(p);
    woke = p.now();
  });
  sim.spawn("waker", [&](Process& p) {
    p.delay(us(42));
    sig.notify_all();
  });
  sim.run();
  EXPECT_EQ(woke, us(42));
}

TEST(Simulation, SignalNotifyOneWakesExactlyOne) {
  Simulation sim;
  Signal sig(sim);
  int woke = 0;
  for (int i = 0; i < 3; ++i) {
    sim.spawn("w" + std::to_string(i), [&](Process& p) {
      sig.wait(p);
      ++woke;
    });
  }
  sim.spawn("waker", [&](Process& p) {
    p.delay(us(1));
    sig.notify_one();
    p.delay(us(1));
    // Wake the rest so the sim terminates cleanly.
    EXPECT_EQ(woke, 1);
    sig.notify_all();
  });
  sim.run();
  EXPECT_EQ(woke, 3);
}

TEST(Simulation, WaitForTimesOut) {
  Simulation sim;
  Signal sig(sim);
  bool notified = true;
  sim.spawn("p", [&](Process& p) {
    notified = sig.wait_for(p, us(5));
    EXPECT_EQ(p.now(), us(5));
  });
  sim.run();
  EXPECT_FALSE(notified);
}

TEST(Simulation, WaitForNotifiedBeforeTimeout) {
  Simulation sim;
  Signal sig(sim);
  bool notified = false;
  sim.spawn("p", [&](Process& p) { notified = sig.wait_for(p, us(100)); });
  sim.spawn("q", [&](Process& p) {
    p.delay(us(3));
    sig.notify_all();
  });
  sim.run();
  EXPECT_TRUE(notified);
}

TEST(Simulation, DeadlockIsDetectedAndNamed) {
  Simulation sim;
  Signal sig(sim);
  sim.spawn("stuck-proc", [&](Process& p) { sig.wait(p); });
  try {
    sim.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("stuck-proc"), std::string::npos);
  }
}

TEST(Simulation, ProcessExceptionPropagates) {
  Simulation sim;
  sim.spawn("boom", [&](Process&) { throw std::runtime_error("bad thing"); });
  try {
    sim.run();
    FAIL() << "expected ProcessError";
  } catch (const ProcessError& e) {
    EXPECT_NE(std::string(e.what()).find("bad thing"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  int hits = 0;
  sim.post(us(10), [&] { ++hits; });
  sim.post(us(20), [&] { ++hits; });
  EXPECT_TRUE(sim.run_until(us(15)));
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(sim.now(), us(15));
}

TEST(Simulation, SpawnDuringRun) {
  Simulation sim;
  SimTime child_end = -1;
  sim.spawn("parent", [&](Process& p) {
    p.delay(us(5));
    p.simulation().spawn("child", [&](Process& c) {
      c.delay(us(5));
      child_end = c.now();
    });
    p.delay(us(1));
  });
  sim.run();
  EXPECT_EQ(child_end, us(10));
}

TEST(Simulation, YieldLetsQueuedEventsRun) {
  Simulation sim;
  std::vector<int> order;
  sim.spawn("p", [&](Process& p) {
    p.delay(us(1));
    sim.post(0, [&] { order.push_back(1); });
    p.yield();
    order.push_back(2);
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Mailbox, PushPopAcrossProcesses) {
  Simulation sim;
  Mailbox<int> box(sim);
  std::vector<int> got;
  sim.spawn("producer", [&](Process& p) {
    for (int i = 0; i < 5; ++i) {
      p.delay(us(2));
      box.push(i);
    }
  });
  sim.spawn("consumer", [&](Process& p) {
    for (int i = 0; i < 5; ++i) got.push_back(box.pop(p));
  });
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Mailbox, PopForTimesOutThenSucceeds) {
  Simulation sim;
  Mailbox<int> box(sim);
  sim.spawn("consumer", [&](Process& p) {
    auto miss = box.pop_for(p, us(3));
    EXPECT_FALSE(miss.has_value());
    auto hit = box.pop_for(p, us(100));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 7);
  });
  sim.spawn("producer", [&](Process& p) {
    p.delay(us(10));
    box.push(7);
  });
  sim.run();
}

TEST(Mailbox, PopForZeroTimeoutPollsWithoutBlocking) {
  Simulation sim;
  Mailbox<int> box(sim);
  sim.spawn("consumer", [&](Process& p) {
    const SimTime t0 = p.now();
    EXPECT_FALSE(box.pop_for(p, 0).has_value());  // empty: immediate miss
    EXPECT_EQ(p.now(), t0);                       // ...without advancing time
    box.push(3);
    auto hit = box.pop_for(p, 0);  // non-empty: immediate hit
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 3);
    EXPECT_EQ(p.now(), t0);
  });
  sim.run();
}

// A push landing exactly at the pop_for deadline resolves deterministically
// by event order: whichever side queued its time-T event first wins.
TEST(Mailbox, PopForExpiryExactlyAtPushConsumerFirst) {
  Simulation sim;
  Mailbox<int> box(sim);
  sim.spawn("consumer", [&](Process& p) {
    // Timeout event enqueued before the producer's resume: the wait is
    // cancelled before the push runs, so this attempt misses...
    EXPECT_FALSE(box.pop_for(p, us(5)).has_value());
    EXPECT_EQ(p.now(), us(5));
    // ...and once the producer's same-time event runs, the item is there.
    p.yield();
    auto hit = box.pop_for(p, 0);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 9);
  });
  sim.spawn("producer", [&](Process& p) {
    p.delay(us(5));
    box.push(9);
  });
  sim.run();
}

TEST(Mailbox, PopForExpiryExactlyAtPushProducerFirst) {
  Simulation sim;
  Mailbox<int> box(sim);
  sim.spawn("producer", [&](Process& p) {
    p.delay(us(5));
    box.push(11);
  });
  sim.spawn("consumer", [&](Process& p) {
    // The producer's resume event at t=5us precedes the timeout event, so
    // the notify wins the tie and the pop succeeds at the deadline.
    auto hit = box.pop_for(p, us(5));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 11);
    EXPECT_EQ(p.now(), us(5));
  });
  sim.run();
}

TEST(Mailbox, PopForRearmsAfterItemStolenMidWait) {
  // The notify arrives but the item is consumed (try_pop) before the waiter
  // resumes: pop_for must re-arm for the remaining time, then miss at the
  // original deadline -- not return an empty optional early or hang.
  Simulation sim;
  Mailbox<int> box(sim);
  sim.spawn("consumer", [&](Process& p) {
    EXPECT_FALSE(box.pop_for(p, us(10)).has_value());
    EXPECT_EQ(p.now(), us(10));  // full timeout despite the us(5) wakeup
  });
  sim.spawn("thief", [&](Process& p) {
    p.delay(us(5));
    box.push(1);                             // wakes the consumer...
    EXPECT_EQ(box.try_pop().value_or(0), 1); // ...but steals the item first
  });
  sim.run();
}

TEST(Simulation, TimeLimitAborts) {
  Simulation sim;
  sim.set_time_limit(us(50));
  sim.spawn("spinner", [&](Process& p) {
    for (;;) p.delay(us(10));
  });
  EXPECT_THROW(sim.run(), std::runtime_error);
}

}  // namespace
}  // namespace scrnet::sim
