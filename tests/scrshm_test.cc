// Tests for the shared-memory synchronization library (scrshm): Lamport
// bakery mutex, dissemination barrier and single-writer seqlock on
// non-coherent replicated memory -- under the deterministic simulator and
// under real threads with asynchronous replication.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "scramnet/ring.h"
#include "scramnet/sim_port.h"
#include "scramnet/thread_backend.h"
#include "scrshm/barrier.h"
#include "scrshm/mutex.h"
#include "scrshm/seqlock.h"

namespace scrnet::scrshm {
namespace {

using scramnet::Ring;
using scramnet::RingConfig;
using scramnet::SimHostPort;

TEST(Arena, AllocatesAlignedAndBounds) {
  Arena a(100, 20);
  EXPECT_EQ(a.alloc(3), 100u);
  EXPECT_EQ(a.alloc(1, 4), 104u);
  EXPECT_EQ(a.remaining(), 15u);
  EXPECT_THROW(a.alloc(100), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// BakeryMutex
// ---------------------------------------------------------------------------

class BakeryProcsTest : public ::testing::TestWithParam<u32> {};
INSTANTIATE_TEST_SUITE_P(Procs, BakeryProcsTest, ::testing::Values(2u, 3u, 5u),
                         [](const auto& ti) { return "n" + std::to_string(ti.param); });

TEST_P(BakeryProcsTest, MutualExclusionInSim) {
  const u32 n = GetParam();
  constexpr int kIters = 15;
  sim::Simulation sim;
  Ring ring(sim, RingConfig{.nodes = n, .bank_words = 4096});
  int in_cs = 0, max_in_cs = 0, total = 0;
  for (u32 id = 0; id < n; ++id) {
    sim.spawn("p" + std::to_string(id), [&, id](sim::Process& p) {
      SimHostPort port(ring, id, p);
      Arena arena(0, 256);
      BakeryMutex mu(port, arena, n, id);
      for (int i = 0; i < kIters; ++i) {
        mu.lock();
        ++in_cs;
        if (in_cs > max_in_cs) max_in_cs = in_cs;
        // Dwell in the critical section across several event boundaries so
        // an exclusion violation would be observable.
        p.delay(us(3));
        ++total;
        --in_cs;
        mu.unlock();
        p.delay(us(1) * ((id * 7 + static_cast<u32>(i)) % 5));  // jitter
      }
    });
  }
  sim.run();
  EXPECT_EQ(max_in_cs, 1) << "two processes were in the critical section";
  EXPECT_EQ(total, static_cast<int>(n) * kIters);
}

TEST(Bakery, MutualExclusionOnRealThreads) {
  constexpr u32 kN = 4;
  constexpr int kIters = 150;
  scramnet::DelayedThreadBackend backend(kN, 4096);
  std::atomic<int> in_cs{0};
  std::atomic<int> violations{0};
  long counter = 0;  // plain long: torn updates would show without the lock
  std::vector<std::thread> ts;
  for (u32 id = 0; id < kN; ++id) {
    ts.emplace_back([&, id] {
      scramnet::DelayedThreadPort port(backend, id);
      Arena arena(0, 256);
      BakeryMutex mu(port, arena, kN, id);
      for (int i = 0; i < kIters; ++i) {
        mu.lock();
        if (in_cs.fetch_add(1) != 0) violations.fetch_add(1);
        counter = counter + 1;  // intentionally non-atomic
        in_cs.fetch_sub(1);
        mu.unlock();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(counter, kN * kIters);
}

TEST(Bakery, HandoffIsFifoByTicket) {
  // Two processes contend; tickets must alternate once both are active --
  // the bakery's bounded-bypass property.
  sim::Simulation sim;
  Ring ring(sim, RingConfig{.nodes = 2, .bank_words = 4096});
  std::vector<u32> order;
  for (u32 id = 0; id < 2; ++id) {
    sim.spawn("p" + std::to_string(id), [&, id](sim::Process& p) {
      SimHostPort port(ring, id, p);
      Arena arena(0, 64);
      BakeryMutex mu(port, arena, 2, id);
      for (int i = 0; i < 6; ++i) {
        mu.lock();
        order.push_back(id);
        p.delay(us(5));
        mu.unlock();
        p.delay(us(2));
      }
    });
  }
  sim.run();
  // After the initial acquisition, no process may win 3+ times in a row
  // while the other is waiting (bakery grants in ticket order).
  int run = 1;
  int worst = 1;
  for (usize i = 1; i < order.size(); ++i) {
    run = (order[i] == order[i - 1]) ? run + 1 : 1;
    worst = std::max(worst, run);
  }
  EXPECT_LE(worst, 2);
}

// ---------------------------------------------------------------------------
// DisseminationBarrier
// ---------------------------------------------------------------------------

class BarrierProcsTest : public ::testing::TestWithParam<u32> {};
INSTANTIATE_TEST_SUITE_P(Procs, BarrierProcsTest, ::testing::Values(2u, 3u, 4u, 7u, 8u),
                         [](const auto& ti) { return "n" + std::to_string(ti.param); });

TEST_P(BarrierProcsTest, NoProcessEntersNextPhaseEarly) {
  const u32 n = GetParam();
  constexpr u32 kPhases = 8;
  sim::Simulation sim;
  Ring ring(sim, RingConfig{.nodes = n, .bank_words = 4096});
  std::vector<u32> arrived(kPhases, 0);
  bool ok = true;
  for (u32 id = 0; id < n; ++id) {
    sim.spawn("p" + std::to_string(id), [&, id](sim::Process& p) {
      SimHostPort port(ring, id, p);
      Arena arena(0, 1024);
      DisseminationBarrier bar(port, arena, n, id);
      for (u32 phase = 0; phase < kPhases; ++phase) {
        // Every process must still be in `phase` when I am: nobody may have
        // advanced past it before all arrived.
        p.delay(us(1) * ((id * 13 + phase * 7) % 9));  // skew arrivals
        ++arrived[phase];
        bar.wait();
        if (arrived[phase] != n) ok = false;  // someone left early
      }
    });
  }
  sim.run();
  EXPECT_TRUE(ok);
}

TEST(Barrier, WorksOnRealThreads) {
  constexpr u32 kN = 4;
  constexpr u32 kPhases = 40;
  scramnet::DelayedThreadBackend backend(kN, 4096);
  std::atomic<u32> arrivals[kPhases];
  for (auto& a : arrivals) a.store(0);
  std::atomic<int> errors{0};
  std::vector<std::thread> ts;
  for (u32 id = 0; id < kN; ++id) {
    ts.emplace_back([&, id] {
      scramnet::DelayedThreadPort port(backend, id);
      Arena arena(0, 1024);
      DisseminationBarrier bar(port, arena, kN, id);
      for (u32 phase = 0; phase < kPhases; ++phase) {
        arrivals[phase].fetch_add(1);
        bar.wait();
        if (arrivals[phase].load() != kN) errors.fetch_add(1);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(errors.load(), 0);
}

// ---------------------------------------------------------------------------
// SeqLock
// ---------------------------------------------------------------------------

TEST(SeqLock, SnapshotsAreNeverTorn) {
  sim::Simulation sim;
  Ring ring(sim, RingConfig{.nodes = 3, .bank_words = 4096});
  constexpr u32 kWords = 8;
  constexpr u32 kVersions = 40;
  u64 snapshots_taken = 0;
  sim.spawn("writer", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p);
    Arena arena(0, 64);
    SeqLock sl(port, arena, kWords, 0);
    for (u32 v = 1; v <= kVersions; ++v) {
      std::vector<u32> data(kWords);
      for (u32 w = 0; w < kWords; ++w) data[w] = v * 1000 + w;  // self-checking
      sl.publish(data);
      p.delay(us(7));
    }
  });
  for (u32 id = 1; id < 3; ++id) {
    sim.spawn("reader" + std::to_string(id), [&, id](sim::Process& p) {
      SimHostPort port(ring, id, p);
      Arena arena(0, 64);
      SeqLock sl(port, arena, kWords, 0);
      u32 last_version = 0;
      for (u32 i = 0; i < kVersions; ++i) {
        std::vector<u32> out(kWords);
        const u32 ver = sl.snapshot(out);
        if (ver == 0) {  // nothing published yet
          p.delay(us(3));
          continue;
        }
        // Internal consistency: all words from one publication.
        const u32 v = out[0] / 1000;
        for (u32 w = 0; w < kWords; ++w)
          ASSERT_EQ(out[w], v * 1000 + w) << "torn snapshot";
        ASSERT_GE(ver, last_version) << "version went backwards";
        last_version = ver;
        ++snapshots_taken;
        p.delay(us(5));
      }
    });
  }
  sim.run();
  EXPECT_GT(snapshots_taken, 20u);
}

TEST(SeqLock, TornReadsWouldHappenWithoutIt) {
  // Control experiment: read the same multi-word record without the
  // seqlock protocol while the writer is mid-update -- the reader must be
  // able to observe a torn state (this validates the test methodology).
  sim::Simulation sim;
  Ring ring(sim, RingConfig{.nodes = 2, .bank_words = 4096});
  bool saw_torn = false;
  sim.spawn("writer", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p);
    for (u32 v = 1; v <= 30; ++v) {
      // Write words one by one (no protocol): window for torn reads.
      for (u32 w = 0; w < 8; ++w) {
        port.write_u32(100 + w, v * 1000 + w);
        p.delay(us(2));
      }
    }
  });
  sim.spawn("reader", [&](sim::Process& p) {
    SimHostPort port(ring, 1, p);
    for (int i = 0; i < 200 && !saw_torn; ++i) {
      u32 first = port.read_u32(100);
      u32 last = port.read_u32(107);
      if (first != 0 && last != 0 && first / 1000 != last / 1000) saw_torn = true;
      p.delay(us(3));
    }
  });
  sim.run();
  EXPECT_TRUE(saw_torn);
}

TEST(SeqLock, VersionProbeAdvances) {
  sim::Simulation sim;
  Ring ring(sim, RingConfig{.nodes = 2, .bank_words = 4096});
  sim.spawn("writer", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p);
    Arena arena(0, 32);
    SeqLock sl(port, arena, 2, 0);
    const u32 d1[2] = {1, 2};
    sl.publish(d1);
    p.delay(us(50));
    const u32 d2[2] = {3, 4};
    sl.publish(d2);
  });
  sim.spawn("reader", [&](sim::Process& p) {
    SimHostPort port(ring, 1, p);
    Arena arena(0, 32);
    SeqLock sl(port, arena, 2, 0);
    p.delay(us(25));
    const u32 v1 = sl.version();
    p.delay(us(60));
    const u32 v2 = sl.version();
    EXPECT_GT(v2, v1);
    EXPECT_EQ(v1, 2u);
    EXPECT_EQ(v2, 4u);
  });
  sim.run();
}

}  // namespace
}  // namespace scrnet::scrshm
