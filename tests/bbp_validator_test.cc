// Tests for bbp::Validator: a clean session satisfies every protocol
// invariant, and each deliberately injected corruption (via
// Endpoint::corrupt_for_test) makes the corresponding check fire.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "bbp/endpoint.h"
#include "bbp/validator.h"
#include "common/bytes.h"
#include "scramnet/ring.h"
#include "scramnet/sim_port.h"

namespace scrnet::bbp {
namespace {

using scramnet::Ring;
using scramnet::RingConfig;
using scramnet::SimHostPort;

/// Run a 2-rank simulated session; `body` runs as rank 0 with rank 1 as a
/// plain echo peer consuming `peer_recvs` messages.
void run_rank0(u32 peer_recvs,
               const std::function<void(sim::Process&, Endpoint&)>& body) {
  sim::Simulation sim;
  Ring ring(sim, RingConfig{.nodes = 2, .bank_words = 1u << 14});
  sim.spawn("rank0", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p);
    Endpoint ep(port, 2, 0);
    body(p, ep);
  });
  sim.spawn("rank1", [&](sim::Process& p) {
    SimHostPort port(ring, 1, p);
    Endpoint ep(port, 2, 1);
    std::vector<u8> buf(64);
    for (u32 i = 0; i < peer_recvs; ++i) ASSERT_TRUE(ep.recv(0, buf).ok());
  });
  sim.run();
}

TEST(BbpValidator, CleanSessionPassesEveryCheck) {
  run_rank0(3, [](sim::Process& p, Endpoint& ep) {
    Validator::check(ep, "init");
    ASSERT_TRUE(ep.send(1, std::vector<u8>(40, 1)).ok());
    ASSERT_TRUE(ep.send(1, {}).ok());  // zero-length slot
    Validator::check(ep, "after sends");
    ASSERT_TRUE(ep.send(1, std::vector<u8>(8, 2)).ok());
    ep.drain();
    Validator::check(ep, "after drain");
    p.delay(us(10));
    Validator::check(ep, "idle");
  });
}

TEST(BbpValidator, CleanReceiverPassesWithQueuedMessages) {
  sim::Simulation sim;
  Ring ring(sim, RingConfig{.nodes = 2, .bank_words = 1u << 14});
  sim.spawn("tx", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p);
    Endpoint ep(port, 2, 0);
    for (int i = 0; i < 3; ++i)
      ASSERT_TRUE(ep.send(1, std::vector<u8>(16, static_cast<u8>(i))).ok());
    ep.drain();
  });
  sim.spawn("rx", [&](sim::Process& p) {
    SimHostPort port(ring, 1, p);
    Endpoint ep(port, 2, 1);
    std::vector<u8> buf(16);
    ASSERT_TRUE(ep.recv(0, buf).ok());  // polls: the rest queue up in inq_
    Validator::check(ep, "mid-stream");
    ASSERT_TRUE(ep.recv(0, buf).ok());
    ASSERT_TRUE(ep.recv(0, buf).ok());
    Validator::check(ep, "drained queue");
  });
  sim.run();
}

void expect_corruption_detected(Endpoint::Corrupt what, u32 live_sends) {
  run_rank0(live_sends, [&](sim::Process&, Endpoint& ep) {
    if (live_sends > 0) {
      ASSERT_TRUE(ep.send(1, std::vector<u8>(32, 7)).ok());
      ep.drain();  // settle: no in-flight state besides what we corrupt
    }
    Validator::check(ep, "pre-corruption");  // sanity: clean before
    ep.corrupt_for_test(what);
    EXPECT_THROW(Validator::check(ep, "post-corruption"), ValidationError);
  });
}

TEST(BbpValidator, DetectsTailCorruption) {
  expect_corruption_detected(Endpoint::Corrupt::kTail, 1);
}

TEST(BbpValidator, DetectsDataEmptyCorruption) {
  expect_corruption_detected(Endpoint::Corrupt::kDataEmpty, 1);
}

TEST(BbpValidator, DetectsFlagMirrorDesync) {
  expect_corruption_detected(Endpoint::Corrupt::kFlagMirror, 1);
}

TEST(BbpValidator, DetectsAckMirrorDesync) {
  expect_corruption_detected(Endpoint::Corrupt::kAckMirror, 1);
}

TEST(BbpValidator, DetectsSequenceRegression) {
  expect_corruption_detected(Endpoint::Corrupt::kSeq, 1);
}

TEST(BbpValidator, ErrorNamesTheFailingCheckSite) {
  run_rank0(0, [](sim::Process&, Endpoint& ep) {
    ep.corrupt_for_test(Endpoint::Corrupt::kDataEmpty);
    try {
      Validator::check(ep, "unit-test-site");
      FAIL() << "validator did not fire";
    } catch (const ValidationError& e) {
      EXPECT_NE(std::string(e.what()).find("unit-test-site"), std::string::npos);
    }
  });
}

}  // namespace
}  // namespace scrnet::bbp
