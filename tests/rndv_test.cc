// Rendezvous-protocol regression tests at the harness level (docs/adi.md):
//   * exact protocol boundaries (short/eager/rendezvous switch points) on
//     the real channel devices -- ch_bbp, ch_sock, ch_hybrid;
//   * the zero-copy billboard window end to end (reserve -> put -> FIN ->
//     release/reuse) under a forced-low eager cap;
//   * fault-path teardown: a ring link severed mid-rendezvous leaves both
//     ranks with kTimedOut and no stuck fiber or leaked placement.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "common/bytes.h"
#include "fault/plan.h"
#include "harness/cluster.h"

namespace scrnet::scrmpi {
namespace {

using harness::run_hybrid_mpi;
using harness::run_scramnet_mpi;
using harness::run_tcp_mpi;
using harness::ScramnetOptions;
using harness::TcpFabricKind;
using harness::TcpOptions;

/// Ping rank0 -> rank1 at short_limit(), short_limit()+1, eager_limit()
/// and eager_limit()+1 (queried from the live device, so the sweep tracks
/// each device's real switch points). Rank 0 records the per-send
/// rndv_rts() delta -- 1 iff the rendezvous path was chosen -- and rank 1
/// verifies count and payload at every size.
struct BoundarySweep {
  std::vector<u32> sizes;       // filled on rank 0 during the run
  std::vector<u32> rts_deltas;  // per-send rendezvous use (rank 0)
  u32 eager_limit = 0;
  bool payloads_ok = true;

  std::function<void(sim::Process&, Mpi&)> body() {
    return [this](sim::Process&, Mpi& mpi) {
      Engine& eng = mpi.engine();
      const Comm& w = mpi.world();
      const u32 sl = eng.device().short_limit();
      const u32 el = eng.effective_eager_limit();
      const u32 szs[] = {sl, sl + 1, el, el + 1};
      if (mpi.rank(w) == 0) {
        eager_limit = el;
        u64 last = 0;
        for (u32 i = 0; i < 4; ++i) {
          std::vector<u8> msg(szs[i]);
          fill_pattern(msg, i + 1);
          mpi.send(msg.data(), szs[i], Datatype::kByte, 1,
                   static_cast<i32>(i), w);
          sizes.push_back(szs[i]);
          rts_deltas.push_back(static_cast<u32>(eng.rndv_rts() - last));
          last = eng.rndv_rts();
        }
      } else {
        for (u32 i = 0; i < 4; ++i) {
          std::vector<u8> buf(szs[i]);
          const MpiStatus st = mpi.recv(buf.data(), szs[i], Datatype::kByte,
                                        0, static_cast<i32>(i), w);
          if (st.count_bytes != szs[i] || !check_pattern(buf, i + 1))
            payloads_ok = false;
        }
      }
    };
  }

  void check() const {
    ASSERT_EQ(sizes.size(), 4u);
    EXPECT_TRUE(payloads_ok);
    for (u32 i = 0; i < 4; ++i) {
      const u32 expect = sizes[i] > eager_limit ? 1u : 0u;
      EXPECT_EQ(rts_deltas[i], expect)
          << sizes[i] << " bytes (eager limit " << eager_limit << ")";
    }
  }
};

TEST(RndvBoundary, BbpSwitchesExactlyAtEagerLimit) {
  BoundarySweep sweep;
  ScramnetOptions opts;
  opts.ring.bank_words = 1u << 16;  // keep the boundary messages modest
  run_scramnet_mpi(2, sweep.body(), opts);
  sweep.check();
}

TEST(RndvBoundary, SockSwitchesExactlyAtEagerLimit) {
  BoundarySweep sweep;
  run_tcp_mpi(2, TcpFabricKind::kMyrinet, sweep.body());
  sweep.check();
}

TEST(RndvBoundary, HybridSwitchesExactlyAtEagerLimit) {
  BoundarySweep sweep;
  ScramnetOptions sopts;
  sopts.ring.bank_words = 1u << 16;
  run_hybrid_mpi(2, TcpFabricKind::kMyrinet, /*threshold=*/2048,
                 sweep.body(), sopts);
  sweep.check();
}

TEST(Rendezvous, BbpZeroCopyWindowEndToEnd) {
  // A billboard rendezvous window plus a low eager cap: 16 KB messages go
  // RTS -> CTS(placement) -> ring put -> FIN, with the payload never
  // riding a channel packet. Four back-to-back messages through a 64 KB
  // window also prove extents are released and reused.
  ScramnetOptions opts;
  opts.ring.bank_words = 1u << 18;
  opts.bbp.rndv_window_bytes = 64 * 1024;
  opts.mpi.eager_cap = 4096;
  constexpr u32 kN = 16 * 1024;
  constexpr u32 kMsgs = 4;
  u64 puts = 0, zbytes = 0, fins = 0, cts = 0;
  bool payloads_ok = true;
  run_scramnet_mpi(
      2,
      [&](sim::Process&, Mpi& mpi) {
        const Comm& w = mpi.world();
        std::vector<u8> buf(kN);
        if (mpi.rank(w) == 0) {
          for (u32 i = 0; i < kMsgs; ++i) {
            fill_pattern(buf, i + 10);
            mpi.send(buf.data(), kN, Datatype::kByte, 1, 0, w);
          }
          puts = mpi.engine().rndv_puts();
          zbytes = mpi.engine().zero_copy_bytes();
        } else {
          for (u32 i = 0; i < kMsgs; ++i) {
            const MpiStatus st =
                mpi.recv(buf.data(), kN, Datatype::kByte, 0, 0, w);
            if (st.count_bytes != kN || !check_pattern(buf, i + 10))
              payloads_ok = false;
          }
          fins = mpi.engine().rndv_fins();
          cts = mpi.engine().rndv_cts();
        }
      },
      opts);
  EXPECT_TRUE(payloads_ok);
  EXPECT_EQ(puts, u64{kMsgs});
  EXPECT_EQ(zbytes, u64{kMsgs} * kN);
  EXPECT_EQ(fins, u64{kMsgs});
  EXPECT_EQ(cts, u64{kMsgs});
}

TEST(Rendezvous, BbpWindowTooSmallFallsBackToCopy) {
  // A window smaller than the message: the reserve fails, the CTS comes
  // back empty and the transfer completes on the legacy copy path.
  ScramnetOptions opts;
  opts.ring.bank_words = 1u << 18;
  opts.bbp.rndv_window_bytes = 4 * 1024;
  opts.mpi.eager_cap = 4096;
  constexpr u32 kN = 16 * 1024;
  u64 puts = 0, rts = 0, fins = 0;
  bool ok = false;
  run_scramnet_mpi(
      2,
      [&](sim::Process&, Mpi& mpi) {
        const Comm& w = mpi.world();
        std::vector<u8> buf(kN);
        if (mpi.rank(w) == 0) {
          fill_pattern(buf, 3);
          mpi.send(buf.data(), kN, Datatype::kByte, 1, 0, w);
          puts = mpi.engine().rndv_puts();
          rts = mpi.engine().rndv_rts();
        } else {
          const MpiStatus st =
              mpi.recv(buf.data(), kN, Datatype::kByte, 0, 0, w);
          ok = st.count_bytes == kN && check_pattern(buf, 3);
          fins = mpi.engine().rndv_fins();
        }
      },
      opts);
  EXPECT_TRUE(ok);
  EXPECT_EQ(rts, 1u);   // rendezvous was attempted...
  EXPECT_EQ(puts, 0u);  // ...but no placement fit, so no put
  EXPECT_EQ(fins, 0u);
}

TEST(Rendezvous, SeveredLinkMidRendezvousTimesOutBothRanks) {
  // Sever the ring after the RTS has crossed but before the receiver
  // grants: the CTS (sent into the dead ring) never reaches the sender, so
  // the sender is stuck in its CTS wait and the receiver mid-rendezvous
  // with a placement outstanding. Both must come back with kTimedOut, the
  // receiver must release the placement, and the run must drain (no stuck
  // fibers) -- the scenario docs/adi.md's teardown rules exist for.
  ScramnetOptions opts;
  opts.ring.bank_words = 1u << 18;
  opts.bbp.rndv_window_bytes = 64 * 1024;
  opts.bbp.poll_timeout = ms(5);
  opts.mpi.eager_cap = 4096;
  opts.mpi.op_timeout = ms(50);
  fault::FaultPlan plan;
  plan.link_down(ms(2), 0).link_down(ms(2), 1);  // both directions dead
  opts.faults = &plan;
  constexpr u32 kN = 16 * 1024;
  StatusCode send_err = StatusCode::kOk, recv_err = StatusCode::kOk;
  u64 rts = 0, cts = 0, send_timeouts = 0, recv_timeouts = 0;
  run_scramnet_mpi(
      2,
      [&](sim::Process& p, Mpi& mpi) {
        const Comm& w = mpi.world();
        std::vector<u8> buf(kN, 0xAB);
        if (mpi.rank(w) == 0) {
          const MpiStatus st =
              mpi.send(buf.data(), kN, Datatype::kByte, 1, 0, w);
          send_err = st.err;
          rts = mpi.engine().rndv_rts();
          send_timeouts = mpi.engine().op_timeouts();
        } else {
          // Post the recv only after the link has died: the RTS is already
          // queued locally, so the grant happens -- and the CTS dies on
          // the broken ring.
          p.delay(ms(5));
          const MpiStatus st =
              mpi.recv(buf.data(), kN, Datatype::kByte, 0, 0, w);
          recv_err = st.err;
          cts = mpi.engine().rndv_cts();
          recv_timeouts = mpi.engine().op_timeouts();
        }
      },
      opts);
  EXPECT_EQ(send_err, StatusCode::kTimedOut);
  EXPECT_EQ(recv_err, StatusCode::kTimedOut);
  EXPECT_EQ(rts, 1u);
  EXPECT_EQ(cts, 1u);  // the receiver did grant a placement before dying
  EXPECT_EQ(send_timeouts, 1u);
  EXPECT_EQ(recv_timeouts, 1u);
}

TEST(Rendezvous, CollectivesSurviveForcedRendezvous) {
  // CI runs the whole figure suite with SCRNET_RNDV_EAGER_MAX forcing most
  // traffic through rendezvous; this is the in-tree canary that the p2p
  // collective algorithms stay deadlock-free when every payload needs a
  // posted receive before it can move.
  ScramnetOptions opts;
  opts.ring.bank_words = 1u << 18;
  opts.bbp.rndv_window_bytes = 64 * 1024;
  opts.mpi.eager_cap = 256;
  bool sums_ok = true, gathers_ok = true;
  run_scramnet_mpi(
      4,
      [&](sim::Process&, Mpi& mpi) {
        const Comm& w = mpi.world();
        const u32 me = static_cast<u32>(mpi.rank(w));
        // 512-byte payloads: above the cap, every hop is a rendezvous.
        std::vector<double> v(64, static_cast<double>(me + 1)), out(64);
        mpi.set_allreduce_algo(Mpi::AllreduceAlgo::kRecursiveDoubling);
        mpi.allreduce(v.data(), out.data(), 64, Datatype::kDouble,
                      ReduceOp::kSum, w);
        for (double d : out)
          if (d != 10.0) sums_ok = false;
        std::vector<u8> block(512);
        fill_pattern(block, me + 1);
        std::vector<u8> all(512 * 4);
        mpi.gather(block.data(), 512, Datatype::kByte, all.data(), 0, w);
        if (me == 0) {
          for (u32 r = 0; r < 4; ++r) {
            std::span<u8> part(all.data() + r * 512, 512);
            if (!check_pattern(part, r + 1)) gathers_ok = false;
          }
        }
        mpi.barrier(w);
      },
      opts);
  EXPECT_TRUE(sums_ok);
  EXPECT_TRUE(gathers_ok);
}

}  // namespace
}  // namespace scrnet::scrmpi
