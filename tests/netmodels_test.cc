// Tests for the baseline network fabrics and the TCP stack cost model.
#include <gtest/gtest.h>

#include <numeric>

#include "common/bytes.h"
#include "netmodels/atm.h"
#include "netmodels/ethernet.h"
#include "netmodels/myrinet.h"
#include "netmodels/tcp.h"

namespace scrnet::netmodels {
namespace {

TEST(Ethernet, DeliversFrameWithPayloadIntact) {
  sim::Simulation sim;
  EthernetFabric net(sim, 4);
  std::vector<u8> data(200);
  fill_pattern(data, 3);
  net.transmit(Frame{0, 2, data});
  bool got = false;
  sim.spawn("rx", [&](sim::Process& p) {
    Frame f = net.rx(2).pop(p);
    EXPECT_EQ(f.src, 0u);
    EXPECT_TRUE(check_pattern(f.payload, 3));
    got = true;
  });
  sim.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(net.frames_delivered(), 1u);
}

TEST(Ethernet, MinFrameLatencyIsReasonable) {
  sim::Simulation sim;
  EthernetFabric net(sim, 2);
  net.transmit(Frame{0, 1, std::vector<u8>(41)});  // ~TCP header-only packet
  SimTime arrived = 0;
  sim.spawn("rx", [&](sim::Process& p) {
    net.rx(1).pop(p);
    arrived = p.now();
  });
  sim.run();
  // Cut-through: ~one 84-byte wire serialization (6.7us) + 4us switch.
  EXPECT_GT(to_us(arrived), 8.0);
  EXPECT_LT(to_us(arrived), 16.0);
}

TEST(Ethernet, StoreAndForwardDoublesSerialization) {
  auto one_way = [](bool snf) {
    sim::Simulation sim;
    EthernetConfig cfg;
    cfg.store_and_forward = snf;
    EthernetFabric net(sim, 2, cfg);
    net.transmit(Frame{0, 1, std::vector<u8>(1440)});
    SimTime arrived = 0;
    sim.spawn("rx", [&](sim::Process& p) {
      net.rx(1).pop(p);
      arrived = p.now();
    });
    sim.run();
    return to_us(arrived);
  };
  const double ct = one_way(false);
  const double snf = one_way(true);
  // A 1440B+38B frame serializes in ~118us; S&F pays it twice.
  EXPECT_NEAR(snf - ct, 118.0, 10.0);
}

TEST(Ethernet, BackToBackFramesSerializeOnLink) {
  sim::Simulation sim;
  EthernetFabric net(sim, 2);
  for (int i = 0; i < 4; ++i) net.transmit(Frame{0, 1, std::vector<u8>(1462)});
  std::vector<SimTime> arrivals;
  sim.spawn("rx", [&](sim::Process& p) {
    for (int i = 0; i < 4; ++i) {
      net.rx(1).pop(p);
      arrivals.push_back(p.now());
    }
  });
  sim.run();
  // Steady-state spacing = one full-frame wire time = 1500B*8/100Mb = 120us.
  for (int i = 1; i < 4; ++i) {
    const double gap = to_us(arrivals[static_cast<size_t>(i)] -
                             arrivals[static_cast<size_t>(i) - 1]);
    EXPECT_NEAR(gap, 120.0, 2.0);
  }
}

TEST(Atm, CellMathMatchesAal5) {
  EXPECT_EQ(AtmFabric::cells_for(0), 1u);    // 8B trailer -> 1 cell
  EXPECT_EQ(AtmFabric::cells_for(40), 1u);   // 48 exactly
  EXPECT_EQ(AtmFabric::cells_for(41), 2u);
  EXPECT_EQ(AtmFabric::cells_for(1024), 22u);  // 1032 -> 21.5 -> 22 cells
}

TEST(Atm, DeliveryAndCellTax) {
  sim::Simulation sim;
  AtmFabric net(sim, 2);
  std::vector<u8> data(960);  // + 8 trailer = 968 ec -> padded 1008 -> 21 cells
  fill_pattern(data, 9);
  net.transmit(Frame{0, 1, data});
  SimTime arrived = 0;
  sim.spawn("rx", [&](sim::Process& p) {
    Frame f = net.rx(1).pop(p);
    EXPECT_TRUE(check_pattern(f.payload, 9));
    arrived = p.now();
  });
  sim.run();
  // 21 cells on wire (with the first switch latency) at 155.52 Mb/s.
  const double wire_us = 21 * 53 * 8 / 155.52;
  EXPECT_NEAR(to_us(arrived), wire_us + 3.0, 1.5);
}

TEST(Myrinet, CutThroughIsFast) {
  sim::Simulation sim;
  MyrinetFabric net(sim, 2);
  net.transmit(Frame{0, 1, std::vector<u8>(64)});
  SimTime arrived = 0;
  sim.spawn("rx", [&](sim::Process& p) {
    net.rx(1).pop(p);
    arrived = p.now();
  });
  sim.run();
  // 80B at 1.28 Gb/s = 0.5us + 0.55us switch + 0.6us cable: ~1.7us.
  EXPECT_LT(to_us(arrived), 3.0);
}

TEST(MyrinetApi, RoundTripPreservesData) {
  sim::Simulation sim;
  MyrinetFabric net(sim, 2);
  std::vector<u8> msg(500);
  fill_pattern(msg, 4);
  sim.spawn("a", [&](sim::Process& p) {
    MyrinetApi api(net, 0);
    api.send(p, 1, msg);
    std::vector<u8> buf(500);
    api.recv(p, 1, buf, 500);
    EXPECT_TRUE(check_pattern(buf, 5));
  });
  sim.spawn("b", [&](sim::Process& p) {
    MyrinetApi api(net, 1);
    std::vector<u8> buf(500);
    api.recv(p, 0, buf, 500);
    EXPECT_TRUE(check_pattern(buf, 4));
    std::vector<u8> reply(500);
    fill_pattern(reply, 5);
    api.send(p, 0, reply);
  });
  sim.run();
}

TEST(MyrinetApi, ZeroByteMessage) {
  sim::Simulation sim;
  MyrinetFabric net(sim, 2);
  sim.spawn("a", [&](sim::Process& p) {
    MyrinetApi api(net, 0);
    api.send(p, 1, {});
  });
  SimTime done = 0;
  sim.spawn("b", [&](sim::Process& p) {
    MyrinetApi api(net, 1);
    std::vector<u8> buf(1);
    api.recv(p, 0, buf, 0);
    done = p.now();
  });
  sim.run();
  EXPECT_GT(done, 0);  // the dummy frame really crossed the wire
}

TEST(MyrinetApi, SmallMessageLatencyBand) {
  // Figure 2 context: "Myrinet API" small-message one-way latency should be
  // several times SCRAMNet's 6.5-7.8us (crossover near ~500 bytes).
  sim::Simulation sim;
  MyrinetFabric net(sim, 2);
  SimTime t0 = 0, t1 = 0;
  sim.spawn("a", [&](sim::Process& p) {
    MyrinetApi api(net, 0);
    std::vector<u8> m(4);
    t0 = p.now();
    api.send(p, 1, m);
  });
  sim.spawn("b", [&](sim::Process& p) {
    MyrinetApi api(net, 1);
    std::vector<u8> buf(4);
    api.recv(p, 0, buf, 4);
    t1 = p.now();
  });
  sim.run();
  const double us_oneway = to_us(t1 - t0);
  EXPECT_GT(us_oneway, 30.0);
  EXPECT_LT(us_oneway, 60.0);
}

TEST(Tcp, StreamDeliveryAcrossSegments) {
  sim::Simulation sim;
  EthernetFabric net(sim, 2);
  std::vector<u8> data(5000);  // > 3 MSS
  fill_pattern(data, 7);
  sim.spawn("tx", [&](sim::Process& p) {
    TcpStack stack(net, 0, TcpConfig::fast_ethernet());
    stack.send(p, 1, data);
  });
  sim.spawn("rx", [&](sim::Process& p) {
    TcpStack stack(net, 1, TcpConfig::fast_ethernet());
    std::vector<u8> buf(5000);
    // Read in two odd-sized pieces to exercise stream reassembly.
    stack.recv(p, 0, buf, 1234);
    stack.recv(p, 0, std::span<u8>(buf).subspan(1234), 5000 - 1234);
    EXPECT_TRUE(check_pattern(buf, 7));
  });
  sim.run();
}

TEST(Tcp, SmallMessageLatencyNearLinux20Numbers) {
  // One-way TCP latency over Fast Ethernet on the paper's class of hardware
  // was ~55-70us.
  sim::Simulation sim;
  EthernetFabric net(sim, 2);
  SimTime t0 = 0, t1 = 0;
  sim.spawn("tx", [&](sim::Process& p) {
    TcpStack stack(net, 0, TcpConfig::fast_ethernet());
    std::vector<u8> one(1);
    t0 = p.now();
    stack.send(p, 1, one);
  });
  sim.spawn("rx", [&](sim::Process& p) {
    TcpStack stack(net, 1, TcpConfig::fast_ethernet());
    std::vector<u8> buf(1);
    stack.recv(p, 0, buf, 1);
    t1 = p.now();
  });
  sim.run();
  const double us_oneway = to_us(t1 - t0);
  EXPECT_GT(us_oneway, 45.0);
  EXPECT_LT(us_oneway, 80.0);
}

TEST(Tcp, MyrinetTcpSlowerThanEthernetTcpForSmall) {
  auto one_way = [](auto make_fabric, TcpConfig cfg) {
    sim::Simulation sim;
    auto net = make_fabric(sim);
    SimTime t0 = 0, t1 = 0;
    sim.spawn("tx", [&](sim::Process& p) {
      TcpStack stack(*net, 0, cfg);
      std::vector<u8> one(1);
      t0 = p.now();
      stack.send(p, 1, one);
    });
    sim.spawn("rx", [&](sim::Process& p) {
      TcpStack stack(*net, 1, cfg);
      std::vector<u8> buf(1);
      stack.recv(p, 0, buf, 1);
      t1 = p.now();
    });
    sim.run();
    return to_us(t1 - t0);
  };
  const double fe = one_way(
      [](sim::Simulation& s) { return std::make_unique<EthernetFabric>(s, 2); },
      TcpConfig::fast_ethernet());
  const double myr = one_way(
      [](sim::Simulation& s) { return std::make_unique<MyrinetFabric>(s, 2); },
      TcpConfig::myrinet());
  EXPECT_GT(myr, fe);  // Figure 2: Myrinet(TCP) above Fast Ethernet(TCP)
}

TEST(Tcp, LargeTransferApproachesWireRate) {
  sim::Simulation sim;
  EthernetFabric net(sim, 2);
  constexpr usize kBytes = 1 << 20;
  SimTime t1 = 0;
  sim.spawn("tx", [&](sim::Process& p) {
    TcpStack stack(net, 0, TcpConfig::fast_ethernet());
    std::vector<u8> data(kBytes);
    stack.send(p, 1, data);
  });
  sim.spawn("rx", [&](sim::Process& p) {
    TcpStack stack(net, 1, TcpConfig::fast_ethernet());
    std::vector<u8> buf(kBytes);
    stack.recv(p, 0, buf, kBytes);
    t1 = p.now();
  });
  sim.run();
  const double secs = static_cast<double>(t1) / 1e12;
  const double mbps = kBytes / 1e6 / secs;
  EXPECT_GT(mbps, 8.0);    // decent fraction of 12.5 MB/s line rate
  EXPECT_LE(mbps, 12.5);   // cannot beat the wire
}

TEST(Tcp, PerSourceDemux) {
  sim::Simulation sim;
  EthernetFabric net(sim, 3);
  sim.spawn("tx1", [&](sim::Process& p) {
    TcpStack stack(net, 0, TcpConfig::fast_ethernet());
    std::vector<u8> m(100);
    fill_pattern(m, 1);
    stack.send(p, 2, m);
  });
  sim.spawn("tx2", [&](sim::Process& p) {
    TcpStack stack(net, 1, TcpConfig::fast_ethernet());
    std::vector<u8> m(100);
    fill_pattern(m, 2);
    stack.send(p, 2, m);
  });
  sim.spawn("rx", [&](sim::Process& p) {
    TcpStack stack(net, 2, TcpConfig::fast_ethernet());
    std::vector<u8> b1(100), b2(100);
    stack.recv(p, 1, b2, 100);  // deliberately read the later stream first
    stack.recv(p, 0, b1, 100);
    EXPECT_TRUE(check_pattern(b1, 1));
    EXPECT_TRUE(check_pattern(b2, 2));
  });
  sim.run();
}

}  // namespace
}  // namespace scrnet::netmodels
