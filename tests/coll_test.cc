// Cross-algorithm equivalence suite for the collective zoo (coll.{h,cc}).
//
// Every algorithm must produce bit-identical results to the analytic
// reference on every rank: bcast delivers the root's bytes, allreduce the
// elementwise reduction (operands are exact small integers so every
// reduction order agrees), allgather the rank-ordered concatenation.
// Covered axes: non-power-of-two communicator sizes, non-zero roots,
// zero-length payloads, multi-segment chain payloads, forced rendezvous,
// and the sock / hybrid / rdma devices. Plus the decision-table unit tests
// and the coll_bytes 32-bit-overflow regression (the bugfix this PR fixes
// in six mpi.cc call sites).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "harness/cluster.h"
#include "scrmpi/coll.h"
#include "scrmpi/mpi.h"
#include "tune/table.h"

namespace {

using scrnet::u8;
using scrnet::u32;
using scrnet::harness::RdmaOptions;
using scrnet::harness::ScramnetOptions;
using scrnet::harness::TcpFabricKind;
using scrnet::harness::TcpOptions;
using scrnet::harness::run_hybrid_mpi;
using scrnet::harness::run_rdma_mpi;
using scrnet::harness::run_scramnet_mpi;
using scrnet::harness::run_tcp_mpi;
using scrnet::scrmpi::AllgatherAlgo;
using scrnet::scrmpi::AllreduceAlgo;
using scrnet::scrmpi::CollAlgo;
using scrnet::scrmpi::Datatype;
using scrnet::scrmpi::Mpi;
using scrnet::scrmpi::ReduceOp;
using scrnet::tune::DecisionTable;
using scrnet::tune::Rule;

const CollAlgo kBcastAlgos[] = {
    CollAlgo::kPointToPoint, CollAlgo::kNativeMcast,
    CollAlgo::kBinomial,     CollAlgo::kScatterAllgather,
    CollAlgo::kRing,         CollAlgo::kChain,
};
const CollAlgo kBarrierAlgos[] = {
    CollAlgo::kPointToPoint,
    CollAlgo::kNativeMcast,
    CollAlgo::kDissemination,
};
const AllreduceAlgo kAllreduceAlgos[] = {
    AllreduceAlgo::kReduceBcast,
    AllreduceAlgo::kRecursiveDoubling,
    AllreduceAlgo::kRabenseifner,
    AllreduceAlgo::kRing,
};
const AllgatherAlgo kAllgatherAlgos[] = {
    AllgatherAlgo::kGatherBcast,
    AllgatherAlgo::kRing,
};

std::vector<u8> pattern(u32 bytes, u32 seed) {
  std::vector<u8> v(bytes);
  for (u32 i = 0; i < bytes; ++i)
    v[i] = static_cast<u8>((seed * 131 + i * 7 + (i >> 8)) & 0xFF);
  return v;
}

// -- bcast ------------------------------------------------------------------

// One simulation per communicator size: inside it, every algorithm x root x
// payload size combination runs back-to-back (this also exercises the
// one-tag-per-op-family matching discipline across consecutive collectives).
void bcast_matrix(Mpi& mpi, const std::vector<u32>& sizes) {
  const auto& world = mpi.world();
  const u32 me = static_cast<u32>(mpi.rank(world));
  const u32 np = world.size();
  for (CollAlgo algo : kBcastAlgos) {
    mpi.set_bcast_algo(algo);
    for (u32 root : {0u, 2u}) {
      if (root >= np) continue;
      for (u32 bytes : sizes) {
        const std::vector<u8> want = pattern(bytes, root * 1000 + bytes);
        std::vector<u8> buf(bytes, 0xEE);
        if (me == root) buf = want;
        mpi.bcast(buf.data(), bytes, Datatype::kByte,
                  static_cast<scrnet::i32>(root), world);
        EXPECT_EQ(buf, want)
            << "bcast algo=" << coll_algo_name(algo) << " np=" << np
            << " root=" << root << " bytes=" << bytes << " rank=" << me;
      }
    }
  }
}

void run_bcast_equivalence(u32 np) {
  ScramnetOptions opts;
  opts.ring.bank_words = 1u << 18;  // room for the multi-segment payload
  run_scramnet_mpi(
      np,
      [&](scrnet::sim::Process&, Mpi& mpi) {
        // 9001 spans three kChainSegmentBytes segments (pipelined chain),
        // and with np up to 8 gives non-uniform scatter segments.
        bcast_matrix(mpi, {0, 1, 13, 300, 9001});
      },
      opts);
}

TEST(CollBcast, EquivalenceNp3) { run_bcast_equivalence(3); }
TEST(CollBcast, EquivalenceNp4) { run_bcast_equivalence(4); }
TEST(CollBcast, EquivalenceNp5) { run_bcast_equivalence(5); }
TEST(CollBcast, EquivalenceNp8) { run_bcast_equivalence(8); }

// -- barrier ----------------------------------------------------------------

// Barriers complete (no deadlock) back-to-back, and a bcast immediately
// after stays correctly matched (no tag leakage between op families).
void barrier_matrix(Mpi& mpi) {
  const auto& world = mpi.world();
  const u32 me = static_cast<u32>(mpi.rank(world));
  for (CollAlgo algo : kBarrierAlgos) {
    mpi.set_barrier_algo(algo);
    for (int i = 0; i < 3; ++i) mpi.barrier(world);
    mpi.set_bcast_algo(CollAlgo::kBinomial);
    u32 token = (me == 0) ? 0xC0FFEEu : 0;
    mpi.bcast(&token, 1, Datatype::kUint32, 0, world);
    EXPECT_EQ(token, 0xC0FFEEu)
        << "barrier algo=" << coll_algo_name(algo) << " rank=" << me;
  }
}

TEST(CollBarrier, EquivalenceNp3) {
  run_scramnet_mpi(3, [](scrnet::sim::Process&, Mpi& mpi) { barrier_matrix(mpi); });
}
TEST(CollBarrier, EquivalenceNp5) {
  run_scramnet_mpi(5, [](scrnet::sim::Process&, Mpi& mpi) { barrier_matrix(mpi); });
}
TEST(CollBarrier, EquivalenceNp8) {
  run_scramnet_mpi(8, [](scrnet::sim::Process&, Mpi& mpi) { barrier_matrix(mpi); });
}

// -- allreduce --------------------------------------------------------------

void allreduce_matrix(Mpi& mpi, const std::vector<u32>& counts) {
  const auto& world = mpi.world();
  const u32 me = static_cast<u32>(mpi.rank(world));
  const u32 np = world.size();
  for (AllreduceAlgo algo : kAllreduceAlgos) {
    mpi.set_allreduce_algo(algo);
    for (u32 count : counts) {
      // kDouble / kSum with exact small integers: every reduction order
      // produces the same bits, so equality is exact.
      {
        std::vector<double> in(count), out(count, -1.0);
        std::vector<double> want(count);
        for (u32 i = 0; i < count; ++i) {
          in[i] = static_cast<double>((me + 1) * (i % 32));
          want[i] = static_cast<double>(np * (np + 1) / 2 * (i % 32));
        }
        mpi.allreduce(in.data(), out.data(), count, Datatype::kDouble,
                      ReduceOp::kSum, world);
        EXPECT_EQ(out, want)
            << "allreduce algo=" << allreduce_algo_name(algo) << " np=" << np
            << " count=" << count << " dt=double op=sum rank=" << me;
      }
      {
        std::vector<scrnet::i32> in(count), out(count, -1);
        std::vector<scrnet::i32> want(count);
        for (u32 i = 0; i < count; ++i) {
          in[i] = static_cast<scrnet::i32>((me * 7 + i) % 101);
          scrnet::i32 mx = 0;
          for (u32 r = 0; r < np; ++r)
            mx = std::max(mx, static_cast<scrnet::i32>((r * 7 + i) % 101));
          want[i] = mx;
        }
        mpi.allreduce(in.data(), out.data(), count, Datatype::kInt32,
                      ReduceOp::kMax, world);
        EXPECT_EQ(out, want)
            << "allreduce algo=" << allreduce_algo_name(algo) << " np=" << np
            << " count=" << count << " dt=int32 op=max rank=" << me;
      }
    }
  }
}

void run_allreduce_equivalence(u32 np) {
  run_scramnet_mpi(np, [](scrnet::sim::Process&, Mpi& mpi) {
    allreduce_matrix(mpi, {0, 1, 13, 300});
  });
}

TEST(CollAllreduce, EquivalenceNp3) { run_allreduce_equivalence(3); }
TEST(CollAllreduce, EquivalenceNp4) { run_allreduce_equivalence(4); }
TEST(CollAllreduce, EquivalenceNp5) { run_allreduce_equivalence(5); }
TEST(CollAllreduce, EquivalenceNp8) { run_allreduce_equivalence(8); }

// -- allgather --------------------------------------------------------------

void allgather_matrix(Mpi& mpi, const std::vector<u32>& counts) {
  const auto& world = mpi.world();
  const u32 me = static_cast<u32>(mpi.rank(world));
  const u32 np = world.size();
  for (AllgatherAlgo algo : kAllgatherAlgos) {
    mpi.set_allgather_algo(algo);
    for (u32 count : counts) {
      const std::vector<u8> mine = pattern(count, me + 17);
      std::vector<u8> out(static_cast<size_t>(count) * np, 0xEE);
      std::vector<u8> want;
      for (u32 r = 0; r < np; ++r) {
        const std::vector<u8> b = pattern(count, r + 17);
        want.insert(want.end(), b.begin(), b.end());
      }
      mpi.allgather(mine.data(), count, Datatype::kByte, out.data(), world);
      EXPECT_EQ(out, want)
          << "allgather algo=" << allgather_algo_name(algo) << " np=" << np
          << " count=" << count << " rank=" << me;
    }
  }
}

void run_allgather_equivalence(u32 np) {
  run_scramnet_mpi(np, [](scrnet::sim::Process&, Mpi& mpi) {
    allgather_matrix(mpi, {0, 1, 13, 300});
  });
}

TEST(CollAllgather, EquivalenceNp3) { run_allgather_equivalence(3); }
TEST(CollAllgather, EquivalenceNp5) { run_allgather_equivalence(5); }
TEST(CollAllgather, EquivalenceNp8) { run_allgather_equivalence(8); }

// -- forced rendezvous ------------------------------------------------------

// Payloads above eager_cap take the rendezvous path in every point-to-point
// exchange of every algorithm (the same idiom rndv_test uses).
TEST(CollRendezvous, AllAlgorithms) {
  ScramnetOptions opts;
  opts.mpi.eager_cap = 256;
  opts.ring.bank_words = 1u << 18;
  opts.bbp.rndv_window_bytes = 64 * 1024;
  run_scramnet_mpi(
      5,
      [](scrnet::sim::Process&, Mpi& mpi) {
        bcast_matrix(mpi, {2048});
        allreduce_matrix(mpi, {512});  // 4096 bytes of doubles per exchange
        allgather_matrix(mpi, {600});
      },
      opts);
}

// -- other devices ----------------------------------------------------------

void device_matrix(Mpi& mpi) {
  bcast_matrix(mpi, {300});
  allreduce_matrix(mpi, {37});
  allgather_matrix(mpi, {64});
}

TEST(CollDevices, SockFastEthernet) {
  run_tcp_mpi(5, TcpFabricKind::kFastEthernet,
              [](scrnet::sim::Process&, Mpi& mpi) { device_matrix(mpi); });
}

TEST(CollDevices, Rdma) {
  run_rdma_mpi(5, [](scrnet::sim::Process&, Mpi& mpi) { device_matrix(mpi); });
}

TEST(CollDevices, HybridScramnetEthernet) {
  run_hybrid_mpi(4, TcpFabricKind::kFastEthernet, /*threshold=*/1024,
                 [](scrnet::sim::Process&, Mpi& mpi) { device_matrix(mpi); });
}

// Native mcast payloads above the sender's billboard data partition
// (bank/procs -- ~333 KiB at 12 nodes with the default 4 MB bank) used to
// be rejected by Endpoint::post and silently dropped by the
// fire-and-forget collective transport, deadlocking every receiver. The
// native bcast now chunks at ChannelDevice::mcast_cap(); this pins both
// the direct path and the gather_bcast composite that first exposed it.
TEST(CollNativeMcast, ChunksPayloadsBeyondBillboardPartition) {
  run_scramnet_mpi(12, [](scrnet::sim::Process&, Mpi& mpi) {
    const auto& world = mpi.world();
    const u32 me = static_cast<u32>(mpi.rank(world));
    mpi.set_bcast_algo(CollAlgo::kNativeMcast);
    const u32 bytes = 600000;  // > one 12-node billboard partition
    const std::vector<u8> want = pattern(bytes, 99);
    std::vector<u8> buf = (me == 3) ? want : std::vector<u8>(bytes, 0xEE);
    mpi.bcast(buf.data(), bytes, Datatype::kByte, 3, world);
    EXPECT_EQ(buf, want) << "rank=" << me;

    // The composite allgather broadcasts np * block bytes in one shot.
    mpi.set_allgather_algo(AllgatherAlgo::kGatherBcast);
    allgather_matrix(mpi, {32768});
  });
}

// -- stats ------------------------------------------------------------------

TEST(CollStats, AllreduceAllgatherCounters) {
  run_scramnet_mpi(3, [](scrnet::sim::Process&, Mpi& mpi) {
    double x = 1.0, y = 0.0;
    mpi.set_allreduce_algo(AllreduceAlgo::kRing);
    mpi.allreduce(&x, &y, 1, Datatype::kDouble, ReduceOp::kSum, mpi.world());
    u32 mine = 1, all[3];
    mpi.set_allgather_algo(AllgatherAlgo::kRing);
    mpi.allgather(&mine, 1, Datatype::kUint32, all, mpi.world());
    EXPECT_EQ(mpi.stats().allreduces, 1u);
    EXPECT_EQ(mpi.stats().allgathers, 1u);
  });
}

// -- coll_bytes overflow regression -----------------------------------------

// The bug this PR fixes: `count * datatype_size(dt)` was a 32-bit multiply
// in six mpi.cc call sites, so count >= 2^29 with 8-byte datatypes silently
// wrapped (e.g. 2^29 doubles -> 0 bytes). Now every collective routes
// through coll_bytes() and rejects the overflow up front.
TEST(CollBytes, UnitBoundary) {
  using scrnet::scrmpi::coll_bytes;
  EXPECT_EQ(coll_bytes(0, Datatype::kDouble), 0u);
  // (2^29 - 1) * 8 = 0xFFFFFFF8 still fits.
  EXPECT_EQ(coll_bytes((1u << 29) - 1, Datatype::kDouble), 0xFFFFFFF8u);
  EXPECT_THROW(coll_bytes(1u << 29, Datatype::kDouble), std::invalid_argument);
  EXPECT_THROW(coll_bytes(0xFFFFFFFFu, Datatype::kInt64), std::invalid_argument);
}

TEST(CollBytes, CollectivesRejectOverflow) {
  run_scramnet_mpi(2, [](scrnet::sim::Process&, Mpi& mpi) {
    // The check fires before any buffer or network access, synchronously on
    // every rank, so nobody blocks: a 1-byte buffer with an absurd count is
    // safe to pass.
    u8 tiny[8] = {};
    double dtiny[1] = {};
    EXPECT_THROW(mpi.bcast(tiny, 1u << 29, Datatype::kDouble, 0, mpi.world()),
                 std::invalid_argument);
    EXPECT_THROW(mpi.allreduce(dtiny, dtiny, 1u << 29, Datatype::kDouble,
                               ReduceOp::kSum, mpi.world()),
                 std::invalid_argument);
    EXPECT_THROW(mpi.reduce(dtiny, dtiny, 1u << 29, Datatype::kDouble,
                            ReduceOp::kSum, 0, mpi.world()),
                 std::invalid_argument);
    EXPECT_THROW(
        mpi.gather(tiny, 1u << 29, Datatype::kDouble, tiny, 0, mpi.world()),
        std::invalid_argument);
    // Per-block count fits in u32 but block * np overflows the result.
    EXPECT_THROW(
        mpi.allgather(tiny, 0x90000000u, Datatype::kByte, tiny, mpi.world()),
        std::invalid_argument);
  });
}

// -- decision table ---------------------------------------------------------

constexpr const char* kTableText =
    "table v1\n"
    "# device op max_nodes max_bytes algorithm\n"
    "bbp bcast 4 1024 native\n"
    "bbp bcast * 1024 binomial\n"
    "* bcast * * scatter_allgather\n"
    "* barrier 8 * dissemination\n"
    "* allreduce * 256 recursive_doubling\n"
    "* allreduce * * ring\n"
    "* allgather * * ring\n";

TEST(DecisionTableTest, ParseAndPick) {
  const DecisionTable t = DecisionTable::parse(kTableText);
  EXPECT_EQ(t.size(), 7u);
  // First match wins; limits are inclusive.
  EXPECT_EQ(t.pick("bbp", "bcast", 4, 1024), "native");
  EXPECT_EQ(t.pick("bbp", "bcast", 5, 1024), "binomial");
  EXPECT_EQ(t.pick("bbp", "bcast", 5, 1025), "scatter_allgather");
  EXPECT_EQ(t.pick("sock", "bcast", 2, 8), "scatter_allgather");
  EXPECT_EQ(t.pick("sock", "barrier", 8, 0), "dissemination");
  EXPECT_EQ(t.pick("sock", "barrier", 9, 0), "");  // no rule matches
  EXPECT_EQ(t.pick("rdma", "allreduce", 12, 256), "recursive_doubling");
  EXPECT_EQ(t.pick("rdma", "allreduce", 12, 257), "ring");
  EXPECT_EQ(t.pick("bbp", "alltoall", 4, 64), "");  // unknown op
}

TEST(DecisionTableTest, SerializeRoundTrip) {
  const DecisionTable t = DecisionTable::parse(kTableText);
  const DecisionTable u = DecisionTable::parse(t.serialize());
  ASSERT_EQ(u.size(), t.size());
  for (u32 n : {2u, 4u, 5u, 9u})
    for (u32 b : {0u, 256u, 1024u, 1025u, 1u << 20})
      for (const char* op : {"bcast", "barrier", "allreduce", "allgather"})
        EXPECT_EQ(u.pick("bbp", op, n, b), t.pick("bbp", op, n, b))
            << op << " n=" << n << " b=" << b;
}

TEST(DecisionTableTest, ParseErrors) {
  EXPECT_THROW(DecisionTable::parse("no header\n"), std::invalid_argument);
  EXPECT_THROW(DecisionTable::parse("table v2\n"), std::invalid_argument);
  EXPECT_THROW(DecisionTable::parse("table v1\nbbp bcast 4 native\n"),
               std::invalid_argument);
  EXPECT_THROW(DecisionTable::parse("table v1\nbbp bcast four * native\n"),
               std::invalid_argument);
}

TEST(DecisionTableTest, LoadFromFile) {
  const std::string path = ::testing::TempDir() + "/coll_table_test.txt";
  {
    std::ofstream f(path);
    f << kTableText;
  }
  const DecisionTable t = DecisionTable::load(path);
  EXPECT_EQ(t.pick("bbp", "bcast", 4, 1024), "native");
  std::remove(path.c_str());
  EXPECT_THROW(DecisionTable::load(path + ".nope"), std::runtime_error);
}

TEST(DecisionTableTest, BuiltinCoversAllOps) {
  const DecisionTable& t = DecisionTable::builtin();
  for (const char* dev : {"bbp", "sock", "rdma", "hybrid", "generic"})
    for (const char* op : {"bcast", "barrier", "allreduce", "allgather"})
      for (u32 n : {2u, 4u, 8u, 12u, 64u})
        for (u32 b : {0u, 8u, 4096u, 1u << 20})
          EXPECT_NE(t.pick(dev, op, n, b), "")
              << dev << " " << op << " n=" << n << " b=" << b;
}

// kAuto consults the injected table: results stay correct whatever the
// table names, including unknown algorithm names (which degrade to the
// per-op fallback instead of throwing).
void auto_body(Mpi& mpi) {
  const auto& world = mpi.world();
  const u32 me = static_cast<u32>(mpi.rank(world));
  const u32 np = world.size();
  // All selectors left at kAuto. Both sides of the bcast size split.
  for (u32 bytes : {16u, 300u}) {
    const std::vector<u8> want = pattern(bytes, bytes);
    std::vector<u8> buf = (me == 1) ? want : std::vector<u8>(bytes, 0xEE);
    mpi.bcast(buf.data(), bytes, Datatype::kByte, 1, world);
    EXPECT_EQ(buf, want) << "kAuto bcast bytes=" << bytes << " rank=" << me;
  }
  mpi.barrier(world);
  double x = static_cast<double>(me + 1), y = 0.0;
  mpi.allreduce(&x, &y, 1, Datatype::kDouble, ReduceOp::kSum, world);
  EXPECT_EQ(y, static_cast<double>(np * (np + 1) / 2));
  u32 mine = me * 3 + 1;
  std::vector<u32> all(np, 0);
  mpi.allgather(&mine, 1, Datatype::kUint32, all.data(), world);
  for (u32 r = 0; r < np; ++r) EXPECT_EQ(all[r], r * 3 + 1);
}

TEST(DecisionTableTest, AutoFollowsInjectedTable) {
  DecisionTable t = DecisionTable::parse(
      "table v1\n"
      "* bcast * 64 binomial\n"
      "* bcast * * ring\n"
      "* barrier * * dissemination\n"
      "* allreduce * * rabenseifner\n"
      "* allgather * * ring\n");
  run_scramnet_mpi(4, [&](scrnet::sim::Process&, Mpi& mpi) {
    mpi.set_decision_table(&t);
    auto_body(mpi);
  });
}

// Unknown algorithm names in a table degrade to the per-op fallback
// (binomial / combine-release / reduce_bcast / gather_bcast) instead of
// throwing, so a stale or hand-edited table stays safe.
TEST(DecisionTableTest, UnknownAlgoNameFallsBack) {
  DecisionTable t = DecisionTable::parse(
      "table v1\n"
      "* bcast * * frobnicate\n"
      "* barrier * * frobnicate\n"
      "* allreduce * * frobnicate\n"
      "* allgather * * frobnicate\n");
  run_scramnet_mpi(3, [&](scrnet::sim::Process&, Mpi& mpi) {
    mpi.set_decision_table(&t);
    auto_body(mpi);
  });
}

// A table demanding `native` on a device without hardware multicast (the
// sock channel) must downgrade, not hang: kNativeMcast resolves to the
// binomial tree / combine-release barrier.
TEST(DecisionTableTest, NativeDowngradesWithoutMcast) {
  DecisionTable t = DecisionTable::parse(
      "table v1\n"
      "* bcast * * native\n"
      "* barrier * * native\n"
      "* allreduce * * reduce_bcast\n"
      "* allgather * * gather_bcast\n");
  run_tcp_mpi(3, TcpFabricKind::kFastEthernet,
              [&](scrnet::sim::Process&, Mpi& mpi) {
                mpi.set_decision_table(&t);
                auto_body(mpi);
              });
}

}  // namespace
