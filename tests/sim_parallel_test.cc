// Conservative parallel DES: the sim_jobs > 1 sharded kernel must be
// observably identical to the jobs=1 sequential reference -- same virtual
// timestamps, same deterministic cross-shard merge order, fault events on
// the right shard, and clean fiber unwinding however many shards are live
// at teardown. See docs/simulator.md "Parallel execution".
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/units.h"
#include "fault/plan.h"
#include "harness/cluster.h"
#include "sim/simulation.h"

namespace scrnet {
namespace {

using harness::ScramnetOptions;
using sim::SimConfig;
using sim::Simulation;

// -- jobs resolution --------------------------------------------------------

TEST(SimParallel, JobsResolution) {
  {
    Simulation sim(SimConfig{.sim_jobs = 3});
    EXPECT_EQ(sim.jobs(), 3u);
  }
  ::setenv("SCRNET_SIM_JOBS", "5", 1);
  {
    Simulation env_sim;  // sim_jobs = 0: take the environment
    EXPECT_EQ(env_sim.jobs(), 5u);
    Simulation explicit_sim(SimConfig{.sim_jobs = 1});  // explicit beats env
    EXPECT_EQ(explicit_sim.jobs(), 1u);
  }
  ::unsetenv("SCRNET_SIM_JOBS");
  Simulation def;
  EXPECT_EQ(def.jobs(), 1u);
}

// -- bit-exact virtual time across shard counts -----------------------------

/// 8-rank BBP neighbor ping-pong; returns every rank's finish time plus the
/// run's final time, the full observable timestamp surface of the run.
/// `stagger` offsets each rank's start so no two nodes ever request the
/// shared medium at the same picosecond (see TieArbitration below for why
/// that distinction is the contract boundary).
std::vector<SimTime> bbp_ring_times(u32 sim_jobs, bool stagger) {
  constexpr u32 kNodes = 8;
  std::vector<SimTime> done(kNodes, 0);
  ScramnetOptions opts;
  opts.sim_jobs = sim_jobs;
  const SimTime end = harness::run_scramnet_bbp(
      kNodes,
      [&](sim::Process& p, bbp::Endpoint& ep) {
        const u32 me = ep.rank();
        const u32 right = (me + 1) % kNodes;
        const u32 left = (me + kNodes - 1) % kNodes;
        if (stagger) p.delay(ns(73) * (me + 1));
        std::vector<u8> msg(96, static_cast<u8>(me));
        std::vector<u8> buf(96);
        for (u32 i = 0; i < 20; ++i) {
          ASSERT_TRUE(ep.send(right, msg).ok());
          auto r = ep.recv(left, buf);
          ASSERT_TRUE(r.ok());
          EXPECT_EQ(buf[0], static_cast<u8>(left));
        }
        done[me] = p.now();
      },
      opts);
  done.push_back(end);
  return done;
}

TEST(SimParallel, BbpTimesBitExactAcrossJobs) {
  const std::vector<SimTime> ref = bbp_ring_times(1, /*stagger=*/true);
  for (u32 jobs : {2u, 4u, 8u}) {
    EXPECT_EQ(bbp_ring_times(jobs, /*stagger=*/true), ref) << "sim_jobs=" << jobs;
  }
}

TEST(SimParallel, TieArbitrationDeterministicAcrossShardCounts) {
  // The fully symmetric ping-pong makes every rank request the medium at
  // identical picoseconds. Equal-time arbitration is the documented
  // contract boundary: event order under jobs=1, node order under the
  // sharded spine -- so jobs=1 may permute per-rank times, but every
  // sharded run must agree bit-exactly with every other regardless of how
  // many shards the nodes are partitioned over.
  const std::vector<SimTime> ref = bbp_ring_times(2, /*stagger=*/false);
  for (u32 jobs : {4u, 8u}) {
    EXPECT_EQ(bbp_ring_times(jobs, /*stagger=*/false), ref) << "sim_jobs=" << jobs;
  }
  // Total ordering differs at most in same-instant swaps: the run's final
  // virtual time is tie-order invariant.
  EXPECT_EQ(bbp_ring_times(1, /*stagger=*/false).back(), ref.back());
}

std::vector<SimTime> mpi_exchange_times(u32 sim_jobs) {
  constexpr u32 kNodes = 8;
  std::vector<SimTime> done(kNodes, 0);
  ScramnetOptions opts;
  opts.sim_jobs = sim_jobs;
  const SimTime end = harness::run_scramnet_mpi(
      kNodes,
      [&](sim::Process& p, scrmpi::Mpi& mpi) {
        const scrmpi::Comm& w = mpi.world();
        const int me = mpi.rank(w);
        const int peer = me ^ 1;  // pairwise partners straddle shard cuts
        for (int i = 0; i < 10; ++i) {
          int mine = me * 100 + i, theirs = -1;
          mpi.sendrecv(&mine, 1, scrmpi::Datatype::kInt32, peer, 0, &theirs, 1,
                       scrmpi::Datatype::kInt32, peer, 0, w);
          EXPECT_EQ(theirs, peer * 100 + i);
        }
        done[static_cast<u32>(me)] = p.now();
      },
      opts);
  done.push_back(end);
  return done;
}

TEST(SimParallel, MpiTimesBitExactAcrossJobs) {
  const std::vector<SimTime> ref = mpi_exchange_times(1);
  for (u32 jobs : {2u, 4u, 8u}) {
    EXPECT_EQ(mpi_exchange_times(jobs), ref) << "sim_jobs=" << jobs;
  }
}

// -- deterministic cross-shard merge order ----------------------------------

/// Every shard fires same-timestamp events into shard 0 through the outbox
/// merge. The contract: merged ties order by (timestamp, source shard, send
/// order) -- so the arrival log must come out identical on every run and
/// every window schedule.
std::vector<int> cross_shard_log(u32 jobs) {
  Simulation sim(SimConfig{.sim_jobs = jobs});
  sim.set_lookahead(ns(100));
  std::vector<int> log;
  for (u32 s = 0; s < jobs; ++s) {
    sim.spawn_on(s, "pinger" + std::to_string(s), [&, s, jobs](sim::Process& p) {
      for (int burst = 1; burst <= 4; ++burst) {
        p.delay(ns(250));  // every shard sends at the same virtual instant
        const SimTime at = p.now() + ns(400);
        for (int k = 0; k < 3; ++k) {
          const int tag = static_cast<int>(s) * 100 + burst * 10 + k;
          p.simulation().post_at_shard(0, at, [&log, tag] { log.push_back(tag); });
        }
      }
      (void)jobs;
    });
  }
  sim.run();
  return log;
}

TEST(SimParallel, CrossShardMergeOrderDeterministic) {
  const std::vector<int> once = cross_shard_log(4);
  ASSERT_EQ(once.size(), 4u * 4u * 3u);
  // Same-timestamp ties resolve by source shard then send order: each burst
  // must appear as shard 0's three sends, then shard 1's, ...
  for (int burst = 1; burst <= 4; ++burst) {
    std::vector<int> expect;
    for (int s = 0; s < 4; ++s)
      for (int k = 0; k < 3; ++k) expect.push_back(s * 100 + burst * 10 + k);
    const auto begin = once.begin() + (burst - 1) * 12;
    EXPECT_EQ(std::vector<int>(begin, begin + 12), expect) << "burst " << burst;
  }
  EXPECT_EQ(cross_shard_log(4), once);  // repeatable, not just plausible
}

// -- fault events land on the owning shard ----------------------------------

TEST(SimParallel, FaultDialFlipsOnOwningShard) {
  // A host-I/O dial on the last node must take effect on that node's shard
  // (its port reads the dial block on every transaction there). The
  // observable: the fault stretches rank 7's costs identically at jobs=1
  // and jobs=4, and the plan records exactly one injection either way.
  auto run = [](u32 sim_jobs) {
    constexpr u32 kNodes = 8;
    fault::FaultPlan plan;
    plan.host_congestion(us(30), kNodes - 1, 4.0);
    ScramnetOptions opts;
    opts.sim_jobs = sim_jobs;
    opts.faults = &plan;
    std::vector<SimTime> done(kNodes, 0);
    harness::run_scramnet_bbp(
        kNodes,
        [&](sim::Process& p, bbp::Endpoint& ep) {
          const u32 me = ep.rank();
          std::vector<u8> msg(64, 7), buf(64);
          if (me == kNodes - 1) {
            for (int i = 0; i < 30; ++i) ASSERT_TRUE(ep.send(0, msg).ok());
          } else if (me == 0) {
            for (int i = 0; i < 30; ++i) ASSERT_TRUE(ep.recv(kNodes - 1, buf).ok());
          }
          done[me] = p.now();
        },
        opts);
    EXPECT_EQ(plan.fired(fault::FaultKind::kHostIo), 1u);
    return done;
  };
  const auto ref = run(1);
  EXPECT_EQ(run(4), ref);
  EXPECT_GT(ref[7], us(30));  // the dialed rank really ran past the flip
}

// -- teardown with shards mid-flight ----------------------------------------

TEST(SimParallel, TeardownUnwindsFibersOnAllShards) {
  // Destroy the simulation while every shard still has parked/running
  // processes; each fiber must unwind (destructors run) with no leaks or
  // deadlocks. `unwound` counts destructor executions on process stacks.
  int unwound = 0;
  struct OnUnwind {
    int* n;
    ~OnUnwind() { ++*n; }
  };
  {
    Simulation sim(SimConfig{.sim_jobs = 4});
    sim.set_lookahead(ns(100));
    for (u32 s = 0; s < 4; ++s) {
      sim.spawn_on(s, "sleeper" + std::to_string(s), [&unwound](sim::Process& p) {
        OnUnwind guard{&unwound};
        for (;;) p.delay(us(1));  // never finishes on its own
      });
    }
    EXPECT_TRUE(sim.run_until(us(5)));  // all shards mid-flight
    EXPECT_EQ(sim.now(), us(5));
  }
  EXPECT_EQ(unwound, 4);
}

// -- run_until composes with sharding ---------------------------------------

TEST(SimParallel, RunUntilStopsAtBoundaryOnEveryShard) {
  auto run = [](u32 jobs) {
    Simulation sim(SimConfig{.sim_jobs = jobs});
    sim.set_lookahead(ns(100));
    std::vector<u64> ticks(jobs, 0);
    for (u32 s = 0; s < jobs; ++s) {
      sim.spawn_on(s, "ticker" + std::to_string(s), [&, s](sim::Process& p) {
        for (int i = 0; i < 1000; ++i) {
          p.delay(ns(500));
          ++ticks[s];
        }
      });
    }
    const bool more = sim.run_until(us(100));
    EXPECT_TRUE(more);
    return ticks;
  };
  const auto ref = run(1);  // all work on the home shard
  EXPECT_EQ(ref[0], 200u);  // 100 us / 500 ns
  const auto sharded = run(4);
  for (u32 s = 0; s < 4; ++s) EXPECT_EQ(sharded[s], 200u) << "shard " << s;
}

// -- work stealing / skewed partitions --------------------------------------

/// RAII environment flag for the harness/scheduler knobs below.
struct EnvFlag {
  const char* name;
  explicit EnvFlag(const char* n) : name(n) { ::setenv(n, "1", 1); }
  ~EnvFlag() { ::unsetenv(name); }
};

TEST(SimParallel, SkewedPartitionBitExact) {
  // SCRNET_SIM_SKEW piles every node but shards-1 onto shard 0: one hot
  // shard, a tail of nearly idle ones. The cut must not leak into virtual
  // time: every skewed sharded run matches the jobs=1 reference bit for
  // bit, exactly like the balanced block partition does.
  const std::vector<SimTime> ref = bbp_ring_times(1, /*stagger=*/true);
  EnvFlag skew("SCRNET_SIM_SKEW");
  for (u32 jobs : {2u, 4u, 8u}) {
    EXPECT_EQ(bbp_ring_times(jobs, /*stagger=*/true), ref)
        << "skewed sim_jobs=" << jobs;
  }
}

TEST(SimParallel, SkewedPartitionTieArbitrationMatchesBlock) {
  // Same-picosecond arbitration resolves through the spine's (time, node,
  // kind) replay, which never looks at the partition -- so a skewed cut
  // must reproduce the balanced cut's tie ordering exactly.
  const std::vector<SimTime> ref = bbp_ring_times(2, /*stagger=*/false);
  EnvFlag skew("SCRNET_SIM_SKEW");
  for (u32 jobs : {2u, 4u, 8u}) {
    EXPECT_EQ(bbp_ring_times(jobs, /*stagger=*/false), ref)
        << "skewed sim_jobs=" << jobs;
  }
}

TEST(SimParallel, StealDuringWindowPreservesMergeOrder) {
  // Window drains are claimed from a shared mask: whichever thread claims
  // a shard runs its whole window, and an early-draining worker steals the
  // next unclaimed shard. The merge contract -- ties by (timestamp, source
  // shard, send order) -- is fixed at the barrier, so the arrival log must
  // be identical whether the windows ran inline (no workers on this host)
  // or were stolen across forced worker threads.
  const std::vector<int> inline_log = cross_shard_log(4);
  EnvFlag force("SCRNET_SIM_FORCE_WORKERS");
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(cross_shard_log(4), inline_log) << "round " << round;
  }
}

TEST(SimParallel, StealingBitExactWithSkewAndForcedWorkers) {
  // The adversarial combination: a deliberately skewed partition (so the
  // claim mask is dominated by one hot shard) drained by real worker
  // threads. Still bit-identical to the sequential reference.
  const std::vector<SimTime> ref = bbp_ring_times(1, /*stagger=*/true);
  EnvFlag force("SCRNET_SIM_FORCE_WORKERS");
  EnvFlag skew("SCRNET_SIM_SKEW");
  for (u32 jobs : {4u, 8u}) {
    EXPECT_EQ(bbp_ring_times(jobs, /*stagger=*/true), ref)
        << "skewed+stolen sim_jobs=" << jobs;
  }
}

}  // namespace
}  // namespace scrnet
