// Tests for the two-level ring hierarchy (Section 2: scaling past one
// ring) and the protocol stack running across it.
#include <gtest/gtest.h>

#include "bbp/endpoint.h"
#include "common/bytes.h"
#include "scramnet/hierarchy.h"
#include "scrshm/barrier.h"

namespace scrnet::scramnet {
namespace {

std::vector<u8> make_span_msg() {
  std::vector<u8> v(24);
  fill_pattern(v, 7);
  return v;
}

HierarchyConfig small_h() {
  HierarchyConfig cfg;
  cfg.leaf_rings = 3;
  cfg.nodes_per_ring = 4;
  cfg.bank_words = 1u << 14;
  return cfg;
}

TEST(Hierarchy, TopologyMath) {
  sim::Simulation sim;
  RingHierarchy h(sim, small_h());
  EXPECT_EQ(h.nodes(), 12u);
  EXPECT_EQ(h.ring_of(0), 0u);
  EXPECT_EQ(h.ring_of(5), 1u);
  EXPECT_EQ(h.local_of(5), 1u);
  EXPECT_TRUE(h.is_bridge(4));
  EXPECT_FALSE(h.is_bridge(5));
}

TEST(Hierarchy, WriteReflectsToAllTwelveNodes) {
  sim::Simulation sim;
  RingHierarchy h(sim, small_h());
  h.host_write(5, 100, 0xABCD);
  sim.run();
  for (u32 n = 0; n < 12; ++n)
    EXPECT_EQ(h.host_read(n, 100), 0xABCDu) << "node " << n;
}

TEST(Hierarchy, LocalRingFasterThanCrossRing) {
  // Write from node 1 (ring 0): node 2 (same ring) must see it well before
  // node 6 (ring 1, through two bridges).
  sim::Simulation sim;
  RingHierarchy h(sim, small_h());
  h.host_write(1, 7, 42);
  SimTime local_at = 0, remote_at = 0;
  sim.spawn("probe", [&](sim::Process& p) {
    while (h.host_read(2, 7) != 42) p.delay(ns(100));
    local_at = p.now();
    while (h.host_read(6, 7) != 42) p.delay(ns(100));
    remote_at = p.now();
  });
  sim.run();
  EXPECT_LT(to_us(local_at), 2.0);
  EXPECT_GT(remote_at, local_at + us(2));  // at least one bridge latency more
  EXPECT_LE(remote_at, h.full_propagation_bound() + us(1));
}

TEST(Hierarchy, PerSenderOrderHoldsAcrossBridges) {
  sim::Simulation sim;
  RingHierarchy h(sim, small_h());
  h.host_write(1, 10, 111);  // data
  h.host_write(1, 11, 222);  // flag
  bool checked = false;
  sim.spawn("probe", [&](sim::Process& p) {
    for (int i = 0; i < 1000; ++i) {
      p.delay(ns(200));
      if (h.host_read(9, 11) == 222) {  // ring 2
        EXPECT_EQ(h.host_read(9, 10), 111u) << "flag passed data across bridges";
        checked = true;
        return;
      }
    }
  });
  sim.run();
  EXPECT_TRUE(checked);
}

TEST(Hierarchy, BackbonePacketAccounting) {
  sim::Simulation sim;
  RingHierarchy h(sim, small_h());
  h.host_write(0, 1, 5);
  h.host_write(7, 2, 6);
  sim.run();
  EXPECT_EQ(h.packets_sent(), 2u);
  EXPECT_EQ(h.backbone_packets(), 2u);
}

TEST(Hierarchy, BbpRunsAcrossRings) {
  // The BillBoard Protocol on a 12-node hierarchy: cross-ring p2p and a
  // system-wide multicast, no protocol changes.
  sim::Simulation sim;
  RingHierarchy h(sim, small_h());
  u32 got_mcast = 0;
  sim.spawn("sender", [&](sim::Process& p) {
    HierarchyPort port(h, 1, p);
    bbp::Endpoint ep(port, 12, 1);
    ASSERT_TRUE(ep.send(6, make_span_msg()).ok());
    std::vector<u32> dests;
    for (u32 r = 0; r < 12; ++r)
      if (r != 1) dests.push_back(r);
    ASSERT_TRUE(ep.mcast(dests, make_span_msg()).ok());
    ep.drain();
  });
  for (u32 r = 0; r < 12; ++r) {
    if (r == 1) continue;
    sim.spawn("rx" + std::to_string(r), [&, r](sim::Process& p) {
      HierarchyPort port(h, r, p);
      bbp::Endpoint ep(port, 12, r);
      std::vector<u8> buf(24);
      if (r == 6) {  // gets the p2p message first (in-order from sender 1)
        auto res = ep.recv(1, buf);
        ASSERT_TRUE(res.ok());
        EXPECT_TRUE(check_pattern(buf, 7));
      }
      auto res = ep.recv(1, buf);
      ASSERT_TRUE(res.ok());
      EXPECT_TRUE(check_pattern(buf, 7));
      ++got_mcast;
    });
  }
  sim.run();
  EXPECT_EQ(got_mcast, 11u);
}

TEST(Hierarchy, ShmBarrierAcrossRings) {
  sim::Simulation sim;
  HierarchyConfig cfg = small_h();
  cfg.leaf_rings = 2;
  cfg.nodes_per_ring = 3;
  RingHierarchy h(sim, cfg);
  constexpr u32 kN = 6, kPhases = 5;
  std::vector<u32> arrived(kPhases, 0);
  bool ok = true;
  for (u32 id = 0; id < kN; ++id) {
    sim.spawn("p" + std::to_string(id), [&, id](sim::Process& p) {
      HierarchyPort port(h, id, p);
      scrshm::Arena arena(0, 1024);
      scrshm::DisseminationBarrier bar(port, arena, kN, id);
      for (u32 phase = 0; phase < kPhases; ++phase) {
        p.delay(us(1) * ((id * 11 + phase) % 7));
        ++arrived[phase];
        bar.wait();
        if (arrived[phase] != kN) ok = false;
      }
    });
  }
  sim.run();
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace scrnet::scramnet
