// Workload-generator tests: fault-scenario determinism across sweep job
// counts, degraded-mode termination (timeouts, never hangs) on all three
// channel devices, workload-level pause/crash faults, and startup
// rejection of invalid fault plans.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sweep/runner.h"
#include "workload/workload.h"

namespace scrnet::workload {
namespace {

// Small but representative scenario set: every device, a ring break, a
// fail-stop partition, and a clean hot-spot. Kept small (4 nodes, 8 ops)
// so the determinism matrix stays fast.
std::vector<Spec> scenarios() {
  std::vector<Spec> specs;
  {
    Spec s;
    s.name = "t_break_bbp";
    s.pattern = Pattern::kIncast;
    s.device = Device::kBbp;
    s.nodes = 4;
    s.ops = 8;
    s.bbp_slots = 8;
    s.op_timeout = ms(2);
    s.faults.link_down(us(100), 3);
    specs.push_back(s);
  }
  {
    Spec s;
    s.name = "t_part_sock";
    s.pattern = Pattern::kIncast;
    s.device = Device::kSock;
    s.fabric = harness::TcpFabricKind::kFastEthernet;
    s.nodes = 4;
    s.ops = 8;
    s.op_timeout = ms(2);
    s.faults.partition(us(400), fault::FaultPlan::kAnyNode, 0);
    specs.push_back(s);
  }
  {
    Spec s;
    s.name = "t_hot_hybrid";
    s.pattern = Pattern::kHotspot;
    s.device = Device::kHybrid;
    s.nodes = 4;
    s.ops = 8;
    s.op_timeout = ms(20);
    specs.push_back(s);
  }
  return specs;
}

std::vector<std::string> render_all(u32 jobs) {
  const std::vector<Spec> specs = scenarios();
  sweep::Runner runner(jobs);
  const std::vector<Report> reports =
      runner.map("wl", specs, [](const Spec& s) { return run(s); });
  std::vector<std::string> out;
  out.reserve(specs.size());
  for (usize i = 0; i < specs.size(); ++i)
    out.push_back(reports[i].render(specs[i]));
  return out;
}

TEST(Workload, ReportsAreByteIdenticalAcrossJobCounts) {
  // Same seed, --jobs 1 vs 2 vs 8: the rendered p50/p99/p999 reports must
  // match byte for byte (each run owns a private simulation; nothing may
  // leak across jobs or depend on worker scheduling).
  const std::vector<std::string> j1 = render_all(1);
  const std::vector<std::string> j2 = render_all(2);
  const std::vector<std::string> j8 = render_all(8);
  EXPECT_EQ(j1, j2);
  EXPECT_EQ(j1, j8);
}

TEST(Workload, LossyIncastCompletesOnEveryDevice) {
  // An 8-node incast into rank 0 with the link into the sink severed:
  // the run must terminate on all three devices, surfacing kTimedOut
  // where delivery is impossible, instead of hanging a fiber.
  auto lossy = [](Device d) {
    Spec s;
    s.name = "t_lossy";
    s.pattern = Pattern::kIncast;
    s.device = d;
    s.nodes = 8;
    s.ops = 12;
    s.bbp_slots = 8;
    s.op_timeout = ms(2);
    if (d == Device::kSock) {
      // Transient ring-style loss would desync the TCP stream framing, so
      // the socket path models link loss as a fail-stop partition of the
      // sink (docs/faults.md).
      s.fabric = harness::TcpFabricKind::kFastEthernet;
      s.faults.partition(us(150), fault::FaultPlan::kAnyNode, 0);
    } else {
      s.faults.link_down(us(150), 7);
    }
    return run(s);
  };
  for (Device d : {Device::kBbp, Device::kSock, Device::kHybrid}) {
    const Report r = lossy(d);  // returning at all proves no hang
    EXPECT_GT(r.ops_timeout, 0u) << to_string(d);
    EXPECT_LT(r.ops_ok, u64{7} * 12) << to_string(d);
    EXPECT_GT(r.makespan, 0) << to_string(d);
  }
}

TEST(Workload, RetriesAreCountedAndBounded) {
  Spec s;
  s.name = "t_retry";
  s.pattern = Pattern::kIncast;
  s.device = Device::kBbp;
  // ops > slots so senders exhaust their billboards once ACKs stop
  // flowing back over the broken link, forcing send-side timeouts.
  s.nodes = 4;
  s.ops = 12;
  s.bbp_slots = 4;
  s.op_timeout = ms(2);
  s.retries = 2;
  s.faults.link_down(us(50), 3);
  const Report r = run(s);
  EXPECT_GT(r.retried, 0u);
  // Every retry follows a failed send; retries never exceed the budget.
  EXPECT_LE(r.retried, (r.ops_timeout + r.ops_error) * 2);
}

TEST(Workload, PausedNodeCatchesUpCrashedNodeDoesNot) {
  Spec base;
  base.pattern = Pattern::kIncast;
  base.device = Device::kBbp;
  base.nodes = 4;
  base.ops = 6;
  base.op_timeout = ms(50);

  Spec paused = base;
  paused.name = "t_pause";
  paused.faults.pause_node(1, 0, us(300));
  const Report rp = run(paused);
  // The pause delays rank 1 but every op still completes.
  EXPECT_EQ(rp.ops_ok, u64{3} * 6);
  EXPECT_EQ(rp.ops_timeout, 0u);
  EXPECT_EQ(rp.fault_fired[static_cast<u32>(fault::FaultKind::kPause)], 1u);

  Spec crashed = base;
  crashed.name = "t_crash";
  crashed.op_timeout = ms(1);
  crashed.faults.crash_node(0, 1);
  const Report rc = run(crashed);
  // Rank 1 never issues an op; the sink times out waiting for its share.
  EXPECT_EQ(rc.node_ops[1], 0u);
  EXPECT_EQ(rc.ops_ok, u64{2} * 6);
  EXPECT_GT(rc.ops_timeout, 0u);
}

TEST(Workload, InvalidFaultTargetFailsAtStartup) {
  // A plan naming a nonexistent node is a caller error surfaced before
  // any traffic runs (FaultPlan::arm returns kInvalidArg; the harness
  // converts a failed arm into std::invalid_argument).
  Spec s;
  s.name = "t_bad_plan";
  s.pattern = Pattern::kIncast;
  s.device = Device::kBbp;
  s.nodes = 4;
  s.faults.link_down(us(1), 99);
  EXPECT_THROW(run(s), std::invalid_argument);
}

TEST(Workload, CleanRunHasNoDegradedCounts) {
  Spec s;
  s.name = "t_clean";
  s.pattern = Pattern::kAllToAll;
  s.device = Device::kBbp;
  s.nodes = 4;
  s.ops = 8;
  s.op_timeout = ms(50);
  const Report r = run(s);
  EXPECT_EQ(r.ops_ok, u64{4} * 8);
  EXPECT_EQ(r.ops_timeout, 0u);
  EXPECT_EQ(r.ops_error, 0u);
  EXPECT_EQ(r.retried, 0u);
  EXPECT_EQ(r.aborted, 0u);
  EXPECT_EQ(r.latency.count(), u64{4} * 8);
  EXPECT_GT(r.latency.percentile_permille(500), 0u);
  EXPECT_GE(r.latency.max(), r.latency.percentile_permille(999));
}

}  // namespace
}  // namespace scrnet::workload
