// Tests for the observability layer: the virtual-time tracer, the counter
// registry, and the guarantee that enabling tracing does not perturb any
// simulated result.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "bbp/endpoint.h"
#include "common/bytes.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "scramnet/ring.h"
#include "scramnet/sim_port.h"

namespace scrnet::obs {
namespace {

/// Restore the process-wide tracer/counter state around each test (both
/// singletons are shared across the whole test binary).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().enable(false);
    Tracer::global().clear();
    Counters::global().enable(false);
    Counters::global().clear();
  }
  void TearDown() override { SetUp(); }
};

struct FakeClock {
  SimTime t = 0;
  SimTime now() const { return t; }
};

TEST_F(ObsTest, DisabledTracerRecordsNothing) {
  EXPECT_FALSE(Tracer::enabled());
  FakeClock clk;
  {
    TRACE_SPAN(Layer::kBbp, 0, "bbp.post", clk);
    clk.t = us(5);
    TRACE_INSTANT(Layer::kSim, 1, "sim.spawn", clk);
  }
  EXPECT_EQ(Tracer::global().events(), 0u);
}

TEST_F(ObsTest, SpanReadsClockAtEntryAndExit) {
  Tracer::global().enable(true);
  FakeClock clk{us(10)};
  {
    TRACE_SPAN(Layer::kMpi, 3, "mpi.send", clk);
    clk.t = us(25);
  }
  TRACE_INSTANT(Layer::kRing, 1, "ring.inject", clk);
  EXPECT_EQ(Tracer::global().events(), 2u);

  std::ostringstream os;
  Tracer::global().write_json(os);
  const std::string json = os.str();
  // Span: complete event on node 3's scrmpi track covering [10us, 25us].
  EXPECT_NE(json.find("\"name\":\"mpi.send\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\",\"ts\":10,\"dur\":15,\"pid\":3,\"tid\":3"),
            std::string::npos);
  // Instant on node 1's scramnet track.
  EXPECT_NE(json.find("\"name\":\"ring.inject\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Process/thread naming metadata for Perfetto.
  EXPECT_NE(json.find("\"name\":\"node3\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"scrmpi\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"scramnet\""), std::string::npos);
}

TEST_F(ObsTest, LayerNamesCoverAllLayers) {
  EXPECT_STREQ(layer_name(Layer::kSim), "sim");
  EXPECT_STREQ(layer_name(Layer::kRing), "scramnet");
  EXPECT_STREQ(layer_name(Layer::kBbp), "bbp");
  EXPECT_STREQ(layer_name(Layer::kMpi), "scrmpi");
}

TEST_F(ObsTest, CountersAccumulateAndDump) {
  Counters& c = Counters::global();
  c.add("bbp.rank0", "sends", 3);
  c.add("bbp.rank0", "sends", 2);
  c.set("ring", "packets_sent", 41);
  c.set("ring", "packets_sent", 42);
  EXPECT_EQ(c.get("bbp.rank0", "sends"), 5u);
  EXPECT_EQ(c.get("ring", "packets_sent"), 42u);
  EXPECT_EQ(c.get("ring", "no_such_counter"), 0u);
  EXPECT_FALSE(c.empty());

  std::ostringstream js;
  c.write_json(js);
  EXPECT_NE(js.str().find("\"bbp.rank0\":{\"sends\":5}"), std::string::npos);
  EXPECT_NE(js.str().find("\"ring\":{\"packets_sent\":42}"), std::string::npos);

  std::ostringstream tab;
  c.write_table(tab);
  EXPECT_NE(tab.str().find("bbp.rank0.sends"), std::string::npos);
  EXPECT_NE(tab.str().find("42"), std::string::npos);

  c.clear();
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.get("bbp.rank0", "sends"), 0u);
}

/// One BBP ping-pong session; returns the final virtual time.
SimTime run_pingpong_session() {
  sim::Simulation sim;
  scramnet::Ring ring(sim, scramnet::RingConfig{.nodes = 2, .bank_words = 1u << 14});
  for (u32 r = 0; r < 2; ++r) {
    sim.spawn("rank" + std::to_string(r), [&ring, r](sim::Process& p) {
      scramnet::SimHostPort port(ring, r, p);
      bbp::Endpoint ep(port, 2, r);
      std::vector<u8> buf(32);
      for (int i = 0; i < 20; ++i) {
        if (r == 0) {
          std::vector<u8> msg(32);
          fill_pattern(msg, static_cast<u32>(i));
          ASSERT_TRUE(ep.send(1, msg).ok());
          ASSERT_TRUE(ep.recv(1, buf).ok());
        } else {
          ASSERT_TRUE(ep.recv(0, buf).ok());
          ASSERT_TRUE(ep.send(0, buf).ok());
        }
      }
      ep.drain();
    });
  }
  sim.run();
  return sim.now();
}

TEST_F(ObsTest, TracingDoesNotPerturbVirtualTime) {
  const SimTime off = run_pingpong_session();
  Tracer::global().enable(true);
  const SimTime on = run_pingpong_session();
  EXPECT_EQ(on, off);  // tracing reads clocks, never consumes virtual time
  // And the traced run actually captured spans from several layers.
  std::ostringstream os;
  Tracer::global().write_json(os);
  EXPECT_GT(Tracer::global().events(), 0u);
  EXPECT_NE(os.str().find("bbp.post"), std::string::npos);
  EXPECT_NE(os.str().find("bbp.recv"), std::string::npos);
  EXPECT_NE(os.str().find("ring.inject"), std::string::npos);
  EXPECT_NE(os.str().find("sim.spawn"), std::string::npos);
}

TEST_F(ObsTest, EndpointPublishesItsStats) {
  Counters::global().enable(true);
  sim::Simulation sim;
  scramnet::Ring ring(sim, scramnet::RingConfig{.nodes = 2, .bank_words = 1u << 14});
  for (u32 r = 0; r < 2; ++r) {
    sim.spawn("rank" + std::to_string(r), [&ring, r](sim::Process& p) {
      scramnet::SimHostPort port(ring, r, p);
      bbp::Endpoint ep(port, 2, r);
      std::vector<u8> buf(16);
      if (r == 0) {
        ASSERT_TRUE(ep.send(1, std::vector<u8>(16, 0xAB)).ok());
        ep.drain();
      } else {
        ASSERT_TRUE(ep.recv(0, buf).ok());
      }
      ep.publish_counters(Counters::global(), r == 0 ? "bbp.rank0" : "bbp.rank1");
    });
  }
  sim.run();
  ring.publish_counters(Counters::global(), "ring");
  EXPECT_EQ(Counters::global().get("bbp.rank0", "sends"), 1u);
  EXPECT_EQ(Counters::global().get("bbp.rank1", "recvs"), 1u);
  EXPECT_GT(Counters::global().get("ring", "packets_sent"), 0u);
}

}  // namespace
}  // namespace scrnet::obs
