// Tests for the RDMA NIC model (netmodels/rdma.h) and the ch_rdma channel:
// registration/put/CQE mechanics at the fabric level, then the full MPI
// stack over run_rdma_mpi -- eager two-sided frames, zero-copy rendezvous
// puts, and fault-injected chunk loss surfacing as a bounded-wait timeout.
#include <gtest/gtest.h>

#include <vector>

#include "common/bytes.h"
#include "fault/plan.h"
#include "harness/cluster.h"
#include "netmodels/rdma.h"
#include "scrmpi/ch_rdma.h"

namespace scrnet {
namespace {

using harness::RdmaOptions;
using harness::run_rdma_mpi;
using netmodels::RdmaConfig;
using netmodels::RdmaFabric;
using scrmpi::Comm;
using scrmpi::Datatype;
using scrmpi::Mpi;
using scrmpi::MpiStatus;

TEST(RdmaFabric, PutLandsBytesAndRaisesCqe) {
  sim::Simulation sim;
  RdmaFabric fab(sim, 2);
  std::vector<u8> dst(8192, 0);
  const u32 rkey = fab.register_region(1, dst);
  EXPECT_EQ(fab.registrations(), 1u);
  std::vector<u8> src(8192);
  fill_pattern(src, 4);
  sim.post_at(0, [&] { fab.rdma_put(0, rkey, 0, src, 42); });
  sim.run();
  EXPECT_TRUE(check_pattern(dst, 4));  // DMA'd straight into the region
  EXPECT_EQ(fab.puts(), 1u);
  EXPECT_EQ(fab.put_bytes(), 8192u);
  const auto ev = fab.cq(0).try_pop();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->wr_id, 42u);
  EXPECT_EQ(ev->rkey, rkey);
  EXPECT_EQ(ev->bytes, 8192u);
}

TEST(RdmaFabric, PutIntoOffsetHitsTheRightBytes) {
  sim::Simulation sim;
  RdmaFabric fab(sim, 2);
  std::vector<u8> dst(4096, 0);
  const u32 rkey = fab.register_region(1, dst);
  std::vector<u8> src(256);
  fill_pattern(src, 9);
  sim.post_at(0, [&] { fab.rdma_put(0, rkey, 1024, src, 1); });
  sim.run();
  EXPECT_EQ(dst[1023], 0);  // bytes before the offset untouched
  EXPECT_TRUE(check_pattern(std::span<u8>(dst.data() + 1024, 256), 9));
  EXPECT_EQ(dst[1024 + 256], 0);  // and after
}

TEST(RdmaFabric, DeregisteredRkeySwallowsPutWithoutCqe) {
  // The race receiver-side teardown depends on: a put arriving after the
  // region died must land nowhere, count as an rkey miss, and never raise
  // the initiator's CQE (so its bounded wait times out instead).
  sim::Simulation sim;
  RdmaFabric fab(sim, 2);
  std::vector<u8> dst(1024, 0);
  const u32 rkey = fab.register_region(1, dst);
  fab.deregister(rkey);
  std::vector<u8> src(1024, 0xEE);
  sim.post_at(0, [&] { fab.rdma_put(0, rkey, 0, src, 7); });
  sim.run();
  EXPECT_EQ(dst[0], 0);  // nothing landed in freed memory
  EXPECT_EQ(fab.rkey_misses(), 1u);
  EXPECT_FALSE(fab.cq(0).try_pop().has_value());
}

TEST(RdmaFabric, MultiChunkPutRaisesOneCqeAfterLastChunk) {
  sim::Simulation sim;
  RdmaConfig cfg;
  cfg.mtu = 1024;
  RdmaFabric fab(sim, 2, cfg);
  std::vector<u8> dst(10 * 1024, 0);
  const u32 rkey = fab.register_region(1, dst);
  std::vector<u8> src(10 * 1024);
  fill_pattern(src, 6);
  sim.post_at(0, [&] { fab.rdma_put(0, rkey, 0, src, 5); });
  sim.run();
  EXPECT_TRUE(check_pattern(dst, 6));
  ASSERT_TRUE(fab.cq(0).try_pop().has_value());
  EXPECT_FALSE(fab.cq(0).try_pop().has_value());  // exactly one CQE
}

TEST(RdmaMpi, EagerAndZeroCopyPingPong) {
  constexpr u32 kSmall = 256;        // well under the frame MTU: eager
  constexpr u32 kLarge = 64 * 1024;  // rendezvous, NIC-put zero copy
  u64 puts = 0, zbytes = 0, fins = 0, regs = 0;
  bool small_ok = false, large_ok = false;
  run_rdma_mpi(2, [&](sim::Process&, Mpi& mpi) {
    const Comm& w = mpi.world();
    if (mpi.rank(w) == 0) {
      std::vector<u8> small(kSmall), large(kLarge);
      fill_pattern(small, 1);
      fill_pattern(large, 2);
      mpi.send(small.data(), kSmall, Datatype::kByte, 1, 0, w);
      mpi.send(large.data(), kLarge, Datatype::kByte, 1, 0, w);
      puts = mpi.engine().rndv_puts();
      zbytes = mpi.engine().zero_copy_bytes();
    } else {
      std::vector<u8> small(kSmall), large(kLarge);
      mpi.recv(small.data(), kSmall, Datatype::kByte, 0, 0, w);
      mpi.recv(large.data(), kLarge, Datatype::kByte, 0, 0, w);
      small_ok = check_pattern(small, 1);
      large_ok = check_pattern(large, 2);
      fins = mpi.engine().rndv_fins();
      // The posted buffer itself was pinned for the put.
      auto& dev = static_cast<scrmpi::RdmaChannel&>(mpi.engine().device());
      regs = dev.fabric().registrations();
    }
  });
  EXPECT_TRUE(small_ok);
  EXPECT_TRUE(large_ok);
  EXPECT_EQ(puts, 1u);
  EXPECT_EQ(zbytes, u64{kLarge});
  EXPECT_EQ(fins, 1u);
  EXPECT_EQ(regs, 1u);
}

TEST(RdmaMpi, PartitionedPutExhaustsRetriesAndTimesOut) {
  // Sever the sender->receiver direction after the RTS has crossed but
  // before the put: the CTS still arrives (reverse direction), the put
  // chunks all drop, the sender's CQE never fires and its bounded wait
  // (RdmaConfig::retry_timeout, modeling RC retry exhaustion) surfaces
  // kTimedOut; the receiver's FIN wait expires on op_timeout and tears the
  // registration down.
  RdmaOptions opts;
  opts.mpi.op_timeout = ms(10);
  fault::FaultPlan plan;
  plan.partition(us(50), 0, 1);
  opts.faults = &plan;
  constexpr u32 kN = 32 * 1024;
  StatusCode send_err = StatusCode::kOk, recv_err = StatusCode::kOk;
  u64 puts = 0, sender_spin_timeouts = 0, recv_timeouts = 0, drops = 0;
  run_rdma_mpi(
      2,
      [&](sim::Process& p, Mpi& mpi) {
        const Comm& w = mpi.world();
        std::vector<u8> buf(kN, 0xCD);
        if (mpi.rank(w) == 0) {
          const MpiStatus st =
              mpi.send(buf.data(), kN, Datatype::kByte, 1, 0, w);
          send_err = st.err;
          puts = mpi.engine().rndv_puts();
          sender_spin_timeouts = mpi.engine().op_timeouts();
        } else {
          p.delay(us(100));  // grant after the partition is up
          const MpiStatus st =
              mpi.recv(buf.data(), kN, Datatype::kByte, 0, 0, w);
          recv_err = st.err;
          recv_timeouts = mpi.engine().op_timeouts();
          auto& dev =
              static_cast<scrmpi::RdmaChannel&>(mpi.engine().device());
          drops = dev.fabric().frames_dropped();
        }
      },
      opts);
  EXPECT_EQ(send_err, StatusCode::kTimedOut);
  EXPECT_EQ(recv_err, StatusCode::kTimedOut);
  EXPECT_EQ(puts, 1u);  // the put was issued; its chunks died on the wire
  // The sender's error came from the device's bounded CQE wait, not from
  // the engine's op_timeout spin.
  EXPECT_EQ(sender_spin_timeouts, 0u);
  EXPECT_EQ(recv_timeouts, 1u);
  EXPECT_GT(drops, 0u);
}

TEST(RdmaMpi, CollectivesSurviveForcedRendezvous) {
  RdmaOptions opts;
  opts.mpi.eager_cap = 64;  // push every 512-byte hop through rendezvous
  bool sums_ok = true;
  run_rdma_mpi(
      4,
      [&](sim::Process&, Mpi& mpi) {
        const Comm& w = mpi.world();
        const u32 me = static_cast<u32>(mpi.rank(w));
        std::vector<double> v(64, static_cast<double>(me + 1)), out(64);
        mpi.allreduce(v.data(), out.data(), 64, Datatype::kDouble,
                      scrmpi::ReduceOp::kSum, w);
        for (double d : out)
          if (d != 10.0) sums_ok = false;
        mpi.barrier(w);
      },
      opts);
  EXPECT_TRUE(sums_ok);
}

}  // namespace
}  // namespace scrnet
