// Property-style parameterized tests for the BillBoard Protocol:
// invariants that must hold across message sizes, slot counts, process
// counts and traffic patterns.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "bbp/endpoint.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "scramnet/ring.h"
#include "scramnet/sim_port.h"

namespace scrnet::bbp {
namespace {

using scramnet::Ring;
using scramnet::RingConfig;
using scramnet::SimHostPort;

// ---------------------------------------------------------------------------
// Invariant: payload round-trips bit-exactly for every size and slot count.
// ---------------------------------------------------------------------------

class SizeSlotsTest
    : public ::testing::TestWithParam<std::tuple<u32 /*bytes*/, u32 /*slots*/>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, SizeSlotsTest,
    ::testing::Combine(::testing::Values(0u, 1u, 3u, 4u, 5u, 63u, 64u, 65u,
                                         1000u, 1024u, 4096u),
                       ::testing::Values(1u, 2u, 8u, 32u)),
    [](const auto& ti) {
      return "b" + std::to_string(std::get<0>(ti.param)) + "_s" +
             std::to_string(std::get<1>(ti.param));
    });

TEST_P(SizeSlotsTest, PayloadIntegrityAndReclamation) {
  const auto [bytes, slots] = GetParam();
  sim::Simulation sim;
  Ring ring(sim, RingConfig{.nodes = 2, .bank_words = 1u << 15});
  Config cfg;
  cfg.slots = slots;
  u64 reclaimed = 0;
  sim.spawn("tx", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p);
    Endpoint ep(port, 2, 0, cfg);
    std::vector<u8> msg(bytes);
    fill_pattern(msg, bytes + slots);
    // Send enough messages to force slot reuse for every slot count.
    for (u32 i = 0; i < 3 * slots + 2; ++i) ASSERT_TRUE(ep.send(1, msg).ok());
    ep.drain();
    EXPECT_EQ(ep.inflight(), 0u);
    reclaimed = ep.stats().slots_reclaimed;
  });
  sim.spawn("rx", [&](sim::Process& p) {
    SimHostPort port(ring, 1, p);
    Endpoint ep(port, 2, 1, cfg);
    std::vector<u8> buf(std::max<u32>(bytes, 4));
    for (u32 i = 0; i < 3 * slots + 2; ++i) {
      auto r = ep.recv(0, buf);
      ASSERT_TRUE(r.ok());
      ASSERT_EQ(r.value().len, bytes);
      ASSERT_TRUE(check_pattern(std::span<const u8>(buf.data(), bytes),
                                bytes + slots));
    }
  });
  sim.run();
  EXPECT_EQ(reclaimed, 3 * slots + 2);  // every slot use was reclaimed
}

// ---------------------------------------------------------------------------
// Invariant: in-order, exactly-once delivery per sender under random mixed
// unicast/multicast traffic, at every process count.
// ---------------------------------------------------------------------------

class ProcCountTest : public ::testing::TestWithParam<u32> {};

INSTANTIATE_TEST_SUITE_P(Procs, ProcCountTest, ::testing::Values(2u, 3u, 5u, 8u),
                         [](const auto& ti) {
                           return "n" + std::to_string(ti.param);
                         });

TEST_P(ProcCountTest, RandomTrafficInOrderExactlyOnce) {
  const u32 n = GetParam();
  constexpr u32 kMsgsPerSender = 40;
  sim::Simulation sim;
  Ring ring(sim, RingConfig{.nodes = n, .bank_words = 1u << 16});
  Config cfg;
  cfg.slots = 4;  // small: force GC under load

  // expected[s][r] = next sequence number receiver r expects from sender s.
  std::vector<std::vector<u32>> next_seq(n, std::vector<u32>(n, 0));
  std::vector<std::vector<u32>> total_for(n, std::vector<u32>(n, 0));

  // Pre-compute each sender's destination plan deterministically so both
  // sides agree on expected counts.
  std::vector<std::vector<u32>> plan_masks(n);
  for (u32 s = 0; s < n; ++s) {
    Rng rng(1000 + s);
    for (u32 m = 0; m < kMsgsPerSender; ++m) {
      u32 mask = 0;
      while (mask == 0) {
        mask = static_cast<u32>(rng.below(1u << n));
        mask &= ~(1u << s);  // no self-sends in this test
        if (n == 1) break;
      }
      plan_masks[s].push_back(mask);
      for (u32 r = 0; r < n; ++r)
        if ((mask >> r) & 1u) ++total_for[s][r];
    }
  }

  for (u32 id = 0; id < n; ++id) {
    sim.spawn("node" + std::to_string(id), [&, id](sim::Process& p) {
      SimHostPort port(ring, id, p);
      Endpoint ep(port, n, id, cfg);
      u32 expected_in = 0;
      for (u32 s = 0; s < n; ++s)
        if (s != id) expected_in += total_for[s][id];

      u32 sent = 0, got = 0;
      Rng jitter(77 + id);
      while (sent < kMsgsPerSender || got < expected_in) {
        // Interleave sending and receiving to exercise concurrent flows.
        if (sent < kMsgsPerSender) {
          const u32 mask = plan_masks[id][sent];
          std::vector<u32> dests;
          for (u32 r = 0; r < n; ++r)
            if ((mask >> r) & 1u) dests.push_back(r);
          // Payload encodes (sender, per-message seq) for order checking.
          u32 words[2] = {id, sent};
          ASSERT_TRUE(ep.mcast(dests,
                               std::span<const u8>(
                                   reinterpret_cast<const u8*>(words), 8))
                          .ok());
          ++sent;
        }
        while (got < expected_in) {
          auto avail = ep.msg_avail();
          if (!avail) break;
          u32 words[2];
          auto r = ep.recv(*avail, std::span<u8>(reinterpret_cast<u8*>(words), 8));
          ASSERT_TRUE(r.ok());
          const u32 s = words[0];
          ASSERT_EQ(s, r.value().src);
          // In-order per sender: the m-th message I get from s must be the
          // next one s addressed to me.
          u32& want = next_seq[s][id];
          while (want < plan_masks[s].size() &&
                 !((plan_masks[s][want] >> id) & 1u))
            ++want;  // skip messages not addressed to me
          ASSERT_EQ(words[1], want) << "out-of-order from " << s;
          ++want;
          ++got;
        }
        if (got < expected_in && sent >= kMsgsPerSender) p.delay(us(2));
      }
      ep.drain();
    });
  }
  sim.run();

  // Exactly-once: every receiver consumed precisely its planned count.
  for (u32 s = 0; s < n; ++s) {
    for (u32 r = 0; r < n; ++r) {
      if (s == r) continue;
      u32 delivered = 0;
      for (u32 m = 0; m < kMsgsPerSender; ++m)
        if ((plan_masks[s][m] >> r) & 1u) ++delivered;
      EXPECT_EQ(delivered, total_for[s][r]);
    }
  }
}

// ---------------------------------------------------------------------------
// Invariant: latency is monotonically non-decreasing in message size.
// ---------------------------------------------------------------------------

TEST(BbpProperty, LatencyMonotoneInSize) {
  auto oneway = [](u32 bytes) {
    sim::Simulation sim;
    Ring ring(sim, RingConfig{.nodes = 2, .bank_words = 1u << 15});
    SimTime t0 = 0, t1 = 0;
    sim.spawn("tx", [&](sim::Process& p) {
      SimHostPort port(ring, 0, p);
      Endpoint ep(port, 2, 0);
      std::vector<u8> msg(bytes);
      t0 = p.now();
      ASSERT_TRUE(ep.send(1, msg).ok());
    });
    sim.spawn("rx", [&](sim::Process& p) {
      SimHostPort port(ring, 1, p);
      Endpoint ep(port, 2, 1);
      std::vector<u8> buf(std::max<u32>(bytes, 4));
      ASSERT_TRUE(ep.recv(0, buf).ok());
      t1 = p.now();
    });
    sim.run();
    return t1 - t0;
  };
  SimTime prev = -1;
  for (u32 b : {0u, 4u, 16u, 64u, 256u, 1024u, 4096u}) {
    const SimTime t = oneway(b);
    EXPECT_GE(t, prev) << "latency decreased at " << b << " bytes";
    prev = t;
  }
}

// ---------------------------------------------------------------------------
// Invariant: the protocol never writes outside its own region except the
// flag/ack words it owns in other regions.
// ---------------------------------------------------------------------------

TEST(BbpProperty, SingleWriterDiscipline) {
  // Run traffic, then verify every word of every control partition could
  // only have been written by its designated writer, by checking that a
  // third party's regions outside flag words stayed zero.
  sim::Simulation sim;
  Ring ring(sim, RingConfig{.nodes = 3, .bank_words = 4096});
  Layout layout(4096, 3, 8);
  sim.spawn("tx", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p);
    Endpoint ep(port, 3, 0, Config{.slots = 8, .cpu = {}});
    for (int i = 0; i < 5; ++i)
      ASSERT_TRUE(ep.send(1, std::vector<u8>(16, 0xAB)).ok());
    ep.drain();
  });
  sim.spawn("rx", [&](sim::Process& p) {
    SimHostPort port(ring, 1, p);
    Endpoint ep(port, 3, 1, Config{.slots = 8, .cpu = {}});
    std::vector<u8> buf(16);
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(ep.recv(0, buf).ok());
  });
  // Node 2 is idle: nothing in the exchange may touch node 2's region
  // except... nothing. Its whole region must remain zero.
  sim.spawn("idle", [&](sim::Process& p) { p.delay(us(1)); });
  sim.run();
  const u32 base2 = layout.region_base(2);
  for (u32 w = 0; w < layout.region_words; ++w) {
    ASSERT_EQ(ring.host_read(0, base2 + w), 0u)
        << "traffic between 0 and 1 leaked into region 2 at word " << w;
  }
}

}  // namespace
}  // namespace scrnet::bbp
