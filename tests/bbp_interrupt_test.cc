// Tests for interrupt-driven BBP receive (the paper's Section 7 future
// work, implemented as RecvMode::kInterrupt).
#include <gtest/gtest.h>

#include "bbp/endpoint.h"
#include "common/bytes.h"
#include "scramnet/ring.h"
#include "scramnet/sim_port.h"
#include "scramnet/thread_backend.h"

namespace scrnet::bbp {
namespace {

using scramnet::Ring;
using scramnet::RingConfig;
using scramnet::SimHostPort;

Config irq_cfg() {
  Config c;
  c.recv_mode = RecvMode::kInterrupt;
  return c;
}

std::vector<u8> make_msg(usize n = 32, u32 seed = 3) {
  std::vector<u8> v(n);
  fill_pattern(v, seed);
  return v;
}

TEST(BbpInterrupt, ModeActiveOnSimPort) {
  sim::Simulation sim;
  Ring ring(sim, RingConfig{.nodes = 2, .bank_words = 4096});
  sim.spawn("p", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p);
    Endpoint ep(port, 2, 0, irq_cfg());
    EXPECT_EQ(ep.recv_mode(), RecvMode::kInterrupt);
  });
  sim.run();
}

TEST(BbpInterrupt, FallsBackToPollingWithoutSupport) {
  scramnet::ThreadBackend backend(2, 4096);
  scramnet::ThreadPort port(backend, 0);
  Endpoint ep(port, 2, 0, irq_cfg());
  EXPECT_EQ(ep.recv_mode(), RecvMode::kPolling);
}

TEST(BbpInterrupt, DeliversAcrossLongIdleGaps) {
  // The receiver sleeps (no polling) for a long virtual time before the
  // message is sent; the interrupt must wake it with no busy loop.
  sim::Simulation sim;
  Ring ring(sim, RingConfig{.nodes = 2, .bank_words = 4096});
  SimTime got_at = 0;
  sim.spawn("tx", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p);
    Endpoint ep(port, 2, 0);
    p.delay(ms(10));  // long silence
    ASSERT_TRUE(ep.send(1, make_msg()).ok());
    ep.drain();
  });
  sim.spawn("rx", [&](sim::Process& p) {
    SimHostPort port(ring, 1, p);
    Endpoint ep(port, 2, 1, irq_cfg());
    std::vector<u8> buf(32);
    auto r = ep.recv(0, buf);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(check_pattern(buf, 3));
    got_at = p.now();
  });
  sim.run();
  EXPECT_GE(got_at, ms(10));
  EXPECT_LT(to_us(got_at), 10'030.0);  // woke promptly after the send
}

// Ping-pong across modes: rank 0 polls, rank 1 sleeps on interrupts; both
// directions and the ACK path get exercised every iteration.
TEST(BbpInterrupt, MixedModePingPong) {
  sim::Simulation sim;
  Ring ring(sim, RingConfig{.nodes = 2, .bank_words = 1u << 14});
  constexpr int kIters = 30;
  sim.spawn("rank0", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p);
    Endpoint ep(port, 2, 0);  // polling side
    std::vector<u8> buf(16);
    for (int i = 0; i < kIters; ++i) {
      ASSERT_TRUE(ep.send(1, make_msg(16, static_cast<u32>(i))).ok());
      ASSERT_TRUE(ep.recv(1, buf).ok());
      ASSERT_TRUE(check_pattern(buf, static_cast<u32>(i) + 100));
    }
    ep.drain();
  });
  sim.spawn("rank1", [&](sim::Process& p) {
    SimHostPort port(ring, 1, p);
    Endpoint ep(port, 2, 1, irq_cfg());  // interrupt side
    std::vector<u8> buf(16);
    for (int i = 0; i < kIters; ++i) {
      ASSERT_TRUE(ep.recv(0, buf).ok());
      ASSERT_TRUE(check_pattern(buf, static_cast<u32>(i)));
      ASSERT_TRUE(ep.send(0, make_msg(16, static_cast<u32>(i) + 100)).ok());
    }
    ep.drain();
  });
  sim.run();
}

TEST(BbpInterrupt, SenderStallWokenByAck) {
  // A blocking send with all slots in flight must be woken by the ACK
  // toggle interrupt (ACK words are inside the watched control partition).
  sim::Simulation sim;
  Ring ring(sim, RingConfig{.nodes = 2, .bank_words = 1u << 14});
  Config cfg = irq_cfg();
  cfg.slots = 2;
  sim.spawn("rank0", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p);
    Endpoint ep(port, 2, 0, cfg);
    for (int i = 0; i < 6; ++i)
      ASSERT_TRUE(ep.send(1, make_msg(8, static_cast<u32>(i))).ok());
    ep.drain();
    EXPECT_GT(ep.stats().send_stalls, 0u);
  });
  sim.spawn("rank1", [&](sim::Process& p) {
    SimHostPort port(ring, 1, p);
    Endpoint ep(port, 2, 1, cfg);
    std::vector<u8> buf(8);
    for (int i = 0; i < 6; ++i) {
      p.delay(us(40));  // slow consumer
      ASSERT_TRUE(ep.recv(0, buf).ok());
      ASSERT_TRUE(check_pattern(buf, static_cast<u32>(i)));
    }
  });
  sim.run();
}

TEST(BbpInterrupt, DrainSleepsUntilAllAcksArrive) {
  // drain() on an interrupt-mode endpoint must sleep between ACK toggles
  // (not busy-poll) and return only once every outstanding slot is
  // reclaimed, even when the receiver is very slow.
  sim::Simulation sim;
  Ring ring(sim, RingConfig{.nodes = 2, .bank_words = 1u << 14});
  constexpr int kMsgs = 4;
  SimTime drained_at = 0;
  sim.spawn("tx", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p);
    Endpoint ep(port, 2, 0, irq_cfg());
    for (int i = 0; i < kMsgs; ++i)
      ASSERT_TRUE(ep.send(1, make_msg(16, static_cast<u32>(i))).ok());
    EXPECT_GT(ep.inflight(), 0u);
    ep.drain();
    EXPECT_EQ(ep.inflight(), 0u);
    drained_at = p.now();
  });
  sim.spawn("rx", [&](sim::Process& p) {
    SimHostPort port(ring, 1, p);
    Endpoint ep(port, 2, 1);
    std::vector<u8> buf(16);
    for (int i = 0; i < kMsgs; ++i) {
      p.delay(us(100));  // slow consumer: last ACK lands after 400us
      ASSERT_TRUE(ep.recv(0, buf).ok());
      ASSERT_TRUE(check_pattern(buf, static_cast<u32>(i)));
    }
  });
  sim.run();
  // The drain must have waited for the slow receiver's final ACK.
  EXPECT_GE(drained_at, us(400));
}

TEST(BbpInterrupt, LatencyCostIsTheDispatch) {
  auto oneway = [](Config cfg) {
    sim::Simulation sim;
    Ring ring(sim, RingConfig{.nodes = 2, .bank_words = 1u << 14});
    SimTime t0 = 0, t1 = 0;
    sim.spawn("tx", [&](sim::Process& p) {
      SimHostPort port(ring, 0, p);
      Endpoint ep(port, 2, 0);
      p.delay(us(50));
      t0 = p.now();
      ASSERT_TRUE(ep.send(1, make_msg(4, 1)).ok());
    });
    sim.spawn("rx", [&](sim::Process& p) {
      SimHostPort port(ring, 1, p);
      Endpoint ep(port, 2, 1, cfg);
      std::vector<u8> buf(4);
      ASSERT_TRUE(ep.recv(0, buf).ok());
      t1 = p.now();
    });
    sim.run();
    return to_us(t1 - t0);
  };
  const double poll_us = oneway(Config{});
  const double irq_us = oneway(irq_cfg());
  // Interrupt receive trades ~irq_dispatch (7us) of latency for zero
  // polling bus traffic.
  EXPECT_GT(irq_us, poll_us);
  EXPECT_LT(irq_us, poll_us + 12.0);
}

}  // namespace
}  // namespace scrnet::bbp
