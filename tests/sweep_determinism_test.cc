// sweep::Runner: work-stealing pool correctness and the bit-identical
// determinism contract. The stress cases deliberately run multi-fiber
// simulations on many worker threads at once -- the exact configuration
// the ThreadSanitizer CI job checks (with SCRNET_SIM_THREAD_PROCS=ON,
// since fibers and TSan do not mix).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/benchops.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "sim/simulation.h"
#include "sweep/runner.h"

namespace scrnet {
namespace {

using sweep::Runner;

TEST(Runner, InlineWhenJobsIsOne) {
  Runner r(1);
  EXPECT_EQ(r.jobs(), 1u);
  auto f = r.submit([] { return 42; });
  // jobs==1 runs at submit time, so the future is ready before get().
  EXPECT_TRUE(f.ready());
  EXPECT_EQ(f.get(), 42);
}

TEST(Runner, ResultsArriveInSubmissionOrder) {
  Runner r(4);
  std::vector<sweep::Future<int>> futs;
  for (int i = 0; i < 32; ++i)
    futs.push_back(r.submit([i] { return i * i; }));
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futs[i].get(), i * i);
}

TEST(Runner, ExceptionsRethrowAtGet) {
  Runner r(2);
  auto ok = r.submit([] { return 1; });
  auto bad = r.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 1);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(Runner, DestructorDrainsOutstandingWork) {
  std::atomic<int> ran{0};
  {
    Runner r(4);
    for (int i = 0; i < 64; ++i)
      (void)r.submit([&ran] { return ++ran; });
    // Futures dropped on the floor: the destructor must still run all 64.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(Runner, MapPreservesElementOrder) {
  Runner r(4);
  const std::vector<u32> xs{5, 3, 9, 1, 7, 2, 8};
  const auto ys = r.map("sq", xs, [](u32 x) { return x * x; });
  ASSERT_EQ(ys.size(), xs.size());
  for (usize i = 0; i < xs.size(); ++i) EXPECT_EQ(ys[i], xs[i] * xs[i]);
}

// The determinism contract on real simulations: a latency sweep at jobs=8
// must be byte-identical (exact doubles) to the jobs=1 sequential
// baseline, regardless of completion order.
TEST(SweepDeterminism, ParallelMatchesSequentialBitExact) {
  const std::vector<u32> sizes{0, 4, 16, 64, 256};
  Runner seq(1), par(8);
  const auto a = harness::bbp_oneway_us_sweep(sizes, seq, 4, 4, 1);
  const auto b = harness::bbp_oneway_us_sweep(sizes, par, 4, 4, 1);
  ASSERT_EQ(a.size(), b.size());
  for (usize i = 0; i < a.size(); ++i) {
    // Bit-exact, not approximately equal.
    EXPECT_EQ(a[i], b[i]) << "size index " << i;
  }
}

// Shuffled heterogeneous workload: big jobs submitted first so completion
// order inverts submission order on a multi-worker pool, exercising the
// steal path. Results must still come back in submission order.
TEST(SweepDeterminism, CompletionOrderInversionIsInvisible) {
  std::vector<u32> sizes{1000, 750, 512, 256, 64, 16, 4, 0};
  Runner seq(1), par(8);
  const auto a = harness::bbp_oneway_us_sweep(sizes, seq, 4, 4, 1);
  const auto b = harness::bbp_oneway_us_sweep(sizes, par, 4, 4, 1);
  for (usize i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

// 64 multi-fiber simulations over 8 workers. Each job spins up a 4-node
// cluster (dozens of fibers and their thread_local switch state) -- the
// stress case for rule 2 of the determinism contract.
TEST(SweepDeterminism, StressManyJobsFewWorkers) {
  std::vector<u32> sizes;
  for (u32 i = 0; i < 64; ++i) sizes.push_back((i % 16) * 32);
  Runner seq(1), par(8);
  const auto a = harness::bbp_oneway_us_sweep(sizes, seq, 4, 2, 1);
  const auto b = harness::bbp_oneway_us_sweep(sizes, par, 4, 2, 1);
  ASSERT_EQ(a.size(), 64u);
  for (usize i = 0; i < 64; ++i) EXPECT_EQ(a[i], b[i]) << "job " << i;
}

// Each job gets a private obs sink: events recorded inside a job are
// invisible to the global sink and to sibling jobs.
TEST(SweepSinks, PerRunSinkIsolation) {
  obs::Tracer::global().clear();
  obs::Tracer::global().enable(true);
  Runner r(4);
  std::vector<sweep::Future<usize>> futs;
  for (int i = 0; i < 16; ++i)
    futs.push_back(r.submit("iso", [] {
      obs::Tracer::current().instant(obs::Layer::kSim, 0, "in-job", 0);
      // Exactly the events this job wrote, nobody else's.
      return obs::Tracer::current().events();
    }));
  for (auto& f : futs) EXPECT_EQ(f.get(), 1u);
  EXPECT_EQ(obs::Tracer::global().events(), 0u);
  obs::Tracer::global().enable(false);
}

// Labeled sinks flush to "<base>.<label>" so two concurrently finishing
// runs can never interleave one JSON document.
TEST(SweepSinks, LabeledFlushWritesSuffixedFile) {
  obs::Tracer::global().enable(true);
  obs::Sink sink("flushcheck-0001");
  {
    obs::Sink::Scope scope(sink);
    obs::Tracer::current().instant(obs::Layer::kSim, 0, "evt", 0);
  }
  const std::string base = ::testing::TempDir() + "sweep_trace.json";
  ASSERT_TRUE(sink.flush_trace_to(base));
  const std::string path = base + ".flushcheck-0001";
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr) << path;
  std::fclose(f);
  std::remove(path.c_str());
  obs::Tracer::global().enable(false);
}

// A simulation constructed inside a job publishes into that job's sink
// (Simulation captures Sink::current() at construction).
TEST(SweepSinks, SimulationBindsToJobSink) {
  Runner r(2);
  auto f = r.submit("bind", [] {
    sim::Simulation sim;
    return &sim.sink() == &obs::Sink::current() &&
           !obs::Sink::current().is_global();
  });
  EXPECT_TRUE(f.get());
  // Outside any job, new simulations bind to the global sink.
  sim::Simulation sim;
  EXPECT_TRUE(&sim.sink() == &obs::Sink::global());
}

}  // namespace
}  // namespace scrnet
