// Regression tests for the bucketed event queue: ordering (total order on
// (time, insertion sequence) across the hot slot, calendar buckets, and the
// overflow heap), the allocation-free guarantee, run_until's time-limit
// safety valve, and bit-reproducibility of a full device-model run.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "scramnet/ring.h"
#include "sim/event_queue.h"
#include "sim/simulation.h"

namespace scrnet {
namespace {

// ---------------------------------------------------------------------------
// Ordering
// ---------------------------------------------------------------------------

TEST(EventQueueTest, SameTimestampPopsInInsertionOrder) {
  sim::EventQueue q;
  std::vector<int> order;
  // All at one timestamp: first push lands in the hot slot, the rest go to
  // the calendar. Ties must pop in push order.
  for (int i = 0; i < 8; ++i) q.push(ns(100), [&order, i] { order.push_back(i); });
  sim::EventQueue::Popped ev;
  while (q.pop(&ev)) q.run_and_release(ev);
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<usize>(i)], i);
}

TEST(EventQueueTest, SlotKeepsEarlierPushOnTie) {
  sim::EventQueue q;
  std::vector<int> order;
  q.push(ns(50), [&] { order.push_back(0) ; });   // slot
  q.push(ns(10), [&] { order.push_back(1); });    // earlier: swaps into slot
  q.push(ns(10), [&] { order.push_back(2); });    // tie with slot: stays behind
  sim::EventQueue::Popped ev;
  while (q.pop(&ev)) q.run_and_release(ev);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

TEST(EventQueueTest, GlobalOrderAcrossBucketsAndOverflow) {
  // Pseudo-random times spanning several bucket windows and the overflow
  // horizon (~33.6 us): pops must come out sorted by (t, insertion seq).
  sim::EventQueue q;
  struct Rec {
    SimTime t;
    int seq;
  };
  std::vector<Rec> popped;
  u32 lcg = 12345;
  std::vector<SimTime> times;
  for (int i = 0; i < 2000; ++i) {
    lcg = lcg * 1664525u + 1013904223u;
    // Mix of in-window, same-bucket, and far-overflow times.
    const SimTime t = static_cast<SimTime>(lcg % 3 == 0 ? lcg % 4096
                                                        : lcg % 90'000'000u);
    times.push_back(t);
    q.push(t, [&popped, t, i] { popped.push_back({t, i}); });
  }
  sim::EventQueue::Popped ev;
  while (q.pop(&ev)) q.run_and_release(ev);
  ASSERT_EQ(popped.size(), times.size());
  for (usize i = 1; i < popped.size(); ++i) {
    ASSERT_LE(popped[i - 1].t, popped[i].t) << "time order violated at " << i;
    if (popped[i - 1].t == popped[i].t)
      ASSERT_LT(popped[i - 1].seq, popped[i].seq) << "tie order violated at " << i;
  }
  EXPECT_GT(q.stats().overflow_posted, 0u) << "test never exercised overflow";
}

TEST(EventQueueTest, ReschedulingAcrossWindowsKeepsOrder) {
  // Self-reposting events that hop past the bucket horizon force window
  // advances and overflow migration while the queue is live.
  sim::Simulation simu;
  SimTime last = -1;
  int count = 0;
  struct Hop {
    sim::Simulation* s;
    SimTime* last;
    int* count;
    int remaining;
    void operator()() const {
      EXPECT_GE(s->now(), *last);
      *last = s->now();
      ++*count;
      if (remaining > 0) s->post(us(40), Hop{s, last, count, remaining - 1});
    }
  };
  simu.post(ns(1), Hop{&simu, &last, &count, 50});
  simu.run();
  EXPECT_EQ(count, 51);
  EXPECT_EQ(simu.now(), ns(1) + 50 * us(40));
}

// ---------------------------------------------------------------------------
// Allocation-free guarantee
// ---------------------------------------------------------------------------

TEST(EventQueueTest, SteadyStateChainDoesNotAllocate) {
  sim::Simulation simu;
  struct Tick {
    sim::Simulation* s;
    int remaining;
    void operator()() const {
      if (remaining > 0) s->post(ns(10), Tick{s, remaining - 1});
    }
  };
  simu.post(ns(10), Tick{&simu, 100000});
  simu.run();
  const auto st = simu.queue_stats();
  EXPECT_EQ(st.posted, 100001u);
  EXPECT_EQ(st.heap_fallback, 0u) << "inline-sized functor hit the heap path";
  EXPECT_EQ(st.inline_stored, st.posted);
  EXPECT_EQ(st.pool_chunks, 1u) << "steady-state chain should reuse one chunk";
}

TEST(EventQueueTest, OversizedCallableTakesCountedHeapFallback) {
  sim::Simulation simu;
  // 64 bytes of captured state: larger than EventQueue::kInlineBytes.
  struct Big {
    unsigned char payload[sim::EventQueue::kInlineBytes + 16];
  };
  Big big{};
  big.payload[0] = 7;
  int seen = 0;
  simu.post(ns(1), [big, &seen] { seen = big.payload[0]; });
  simu.run();
  EXPECT_EQ(seen, 7);
  EXPECT_EQ(simu.queue_stats().heap_fallback, 1u);
}

TEST(EventQueueTest, NonTrivialCallableDestroyedWithoutRunning) {
  // Events still queued when the Simulation dies must destroy their
  // captures (shared_ptr refcount observes it).
  auto token = std::make_shared<int>(42);
  {
    sim::Simulation simu;
    simu.post(ns(5), [token] { FAIL() << "never executed"; });
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

// ---------------------------------------------------------------------------
// Time limit (run and run_until)
// ---------------------------------------------------------------------------

TEST(SimulationTimeLimitTest, RunHonorsLimit) {
  sim::Simulation simu;
  simu.set_time_limit(us(1));
  struct Forever {
    sim::Simulation* s;
    void operator()() const { s->post(ns(100), *this); }
  };
  simu.post(ns(100), Forever{&simu});
  EXPECT_THROW(simu.run(), std::runtime_error);
}

TEST(SimulationTimeLimitTest, RunUntilHonorsLimit) {
  // Regression: run_until used to ignore set_time_limit entirely.
  sim::Simulation simu;
  simu.set_time_limit(us(1));
  struct Forever {
    sim::Simulation* s;
    void operator()() const { s->post(ns(100), *this); }
  };
  simu.post(ns(100), Forever{&simu});
  EXPECT_THROW(simu.run_until(ms(1)), std::runtime_error);
  EXPECT_GT(simu.now(), us(1));
  EXPECT_LE(simu.now(), us(1) + ns(100));
}

TEST(SimulationTimeLimitTest, RunUntilStopsAtRequestedTime) {
  sim::Simulation simu;
  int fired = 0;
  simu.post(ns(100), [&] { ++fired; });
  simu.post(us(10), [&] { ++fired; });
  EXPECT_TRUE(simu.run_until(us(1)));   // first event only; work remains
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simu.now(), us(1));
  EXPECT_FALSE(simu.run_until(us(20)));  // drains the rest
  EXPECT_EQ(fired, 2);
}

// ---------------------------------------------------------------------------
// Determinism of a full device-model run
// ---------------------------------------------------------------------------

struct RunResult {
  u64 events;
  SimTime final_now;
  u64 packets;
  u64 words;
  u32 checksum;
};

/// A fig4-style workload: block writes from several nodes, a mid-run link
/// fault on a redundant ring, and interrupt handlers that write back --
/// exercising slot, calendar, overflow, and the pooled packet walk.
RunResult ring_scenario() {
  sim::Simulation simu;
  scramnet::Ring ring(simu, scramnet::RingConfig{.nodes = 4,
                                                 .bank_words = 1u << 12,
                                                 .redundant_ring = true});
  std::vector<u32> block(64);
  for (u32 i = 0; i < 64; ++i) block[i] = 0x1000u + i;
  ring.set_interrupt(2, 0, 256, [&](u32 addr) {
    // Write-back traffic from inside a delivery handler.
    ring.host_write(2, 512 + (addr % 64), addr);
  });
  simu.post(us(3), [&] { ring.fail_link(1); });
  simu.post(us(9), [&] { ring.heal_link(1); });
  for (int round = 0; round < 6; ++round) {
    simu.post(us(2) * round + ns(50), [&, round] {
      ring.host_write_block(static_cast<u32>(round) % 4, 0, block, ns(240));
    });
  }
  simu.run();
  u32 sum = 0;
  for (u32 node = 0; node < 4; ++node)
    for (u32 a = 0; a < 1024; ++a) sum = sum * 31 + ring.host_read(node, a);
  return {simu.events_executed(), simu.now(), ring.packets_sent(),
          ring.words_replicated(), sum};
}

TEST(DeterminismTest, IdenticalRunsProduceIdenticalResults) {
  const RunResult a = ring_scenario();
  const RunResult b = ring_scenario();
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.final_now, b.final_now);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.words, b.words);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_GT(a.events, 0u);
}

TEST(DeterminismTest, PacketWalkPoolIsRecycled) {
  sim::Simulation simu;
  scramnet::Ring ring(simu, scramnet::RingConfig{.nodes = 8, .bank_words = 1u << 10});
  // Bursts spaced so the ring drains in between (16 fixed packets serialize
  // in ~10 us, plus 7 hops of propagation): the pool high-water mark must
  // stay near one burst's in-flight count, far below the total packet count.
  for (int burst = 0; burst < 100; ++burst) {
    simu.post(us(20) * burst, [&, burst] {
      for (u32 w = 0; w < 16; ++w)
        ring.host_write(static_cast<u32>(burst) % 8, w, static_cast<u32>(burst));
    });
  }
  simu.run();
  EXPECT_EQ(ring.packets_sent(), 1600u);
  EXPECT_LE(ring.walk_pool_size(), 32u);
  EXPECT_GT(ring.walk_pool_size(), 0u);
}

}  // namespace
}  // namespace scrnet
