// Tests for the NIC DMA engine path (Section 2: PIO or DMA).
#include <gtest/gtest.h>

#include "bbp/endpoint.h"
#include "common/bytes.h"
#include "scramnet/ring.h"
#include "scramnet/sim_port.h"
#include "scramnet/thread_backend.h"

namespace scrnet::scramnet {
namespace {

TEST(Dma, CpuTimeIsSetupPlusCompleteOnly) {
  sim::Simulation sim;
  Ring ring(sim, RingConfig{.nodes = 2, .bank_words = 1u << 14});
  HostTimings t;
  sim.spawn("host", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p, t);
    std::vector<u32> data(1000, 7);
    const SimTime t0 = p.now();
    port.dma_write(100, data);
    // The process was blocked only for setup + completion, not the burst.
    EXPECT_EQ(p.now() - t0, t.dma_setup + t.dma_complete);
  });
  sim.run();
  for (u32 i = 0; i < 1000; ++i) EXPECT_EQ(ring.host_read(1, 100 + i), 7u);
}

TEST(Dma, LaterPioWriteStaysOrderedBehindDma) {
  // BBP correctness depends on this: a flag written right after a DMA
  // payload must reach remote banks after the payload.
  sim::Simulation sim;
  Ring ring(sim, RingConfig{.nodes = 2, .bank_words = 1u << 14});
  bool checked = false;
  sim.spawn("tx", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p);
    std::vector<u32> data(2000, 9);
    port.dma_write(100, data);     // NIC still streaming when we return
    port.write_u32(50, 1);         // flag: must trail the payload
  });
  sim.spawn("rx", [&](sim::Process& p) {
    SimHostPort port(ring, 1, p);
    while (port.read_u32(50) == 0) port.poll_pause();
    // Flag visible: every payload word must already be here.
    std::vector<u32> out(2000);
    port.read_block(100, out);
    for (u32 v : out) ASSERT_EQ(v, 9u);
    checked = true;
  });
  sim.run();
  EXPECT_TRUE(checked);
}

TEST(Dma, ThreadPortFallsBackToPio) {
  ThreadBackend backend(2, 4096);
  ThreadPort port(backend, 0);
  EXPECT_FALSE(port.has_dma());
  const u32 w[2] = {5, 6};
  port.dma_write(10, w);  // PIO fallback still delivers
  EXPECT_EQ(backend.read(1, 10), 5u);
  EXPECT_EQ(backend.read(1, 11), 6u);
}

TEST(Dma, BbpUsesDmaAboveThreshold) {
  sim::Simulation sim;
  Ring ring(sim, RingConfig{.nodes = 2, .bank_words = 1u << 15});
  bbp::Config cfg;
  cfg.dma_threshold_bytes = 256;
  u64 dma_sends = 0;
  sim.spawn("tx", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p);
    bbp::Endpoint ep(port, 2, 0, cfg);
    std::vector<u8> small(100), large(1000);
    fill_pattern(small, 1);
    fill_pattern(large, 2);
    ASSERT_TRUE(ep.send(1, small).ok());  // below threshold: PIO
    ASSERT_TRUE(ep.send(1, large).ok());  // above: DMA
    ep.drain();
    dma_sends = ep.stats().dma_sends;
  });
  sim.spawn("rx", [&](sim::Process& p) {
    SimHostPort port(ring, 1, p);
    bbp::Endpoint ep(port, 2, 1, cfg);
    std::vector<u8> buf(1000);
    auto a = ep.recv(0, buf);
    ASSERT_TRUE(a.ok());
    EXPECT_TRUE(check_pattern(std::span<const u8>(buf.data(), 100), 1));
    auto b = ep.recv(0, buf);
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(check_pattern(std::span<const u8>(buf.data(), 1000), 2));
  });
  sim.run();
  EXPECT_EQ(dma_sends, 1u);
}

}  // namespace
}  // namespace scrnet::scramnet
