// Failure-injection tests: link failures on the ring, with and without
// the redundant-cabling option, and their effect on the BillBoard
// Protocol.
#include <gtest/gtest.h>

#include "bbp/endpoint.h"
#include "common/bytes.h"
#include "scramnet/ring.h"
#include "scramnet/sim_port.h"

namespace scrnet::scramnet {
namespace {

TEST(Fault, LostDeliveryWithoutRedundancy) {
  sim::Simulation sim;
  RingConfig cfg;
  cfg.nodes = 4;
  cfg.bank_words = 1024;
  Ring ring(sim, cfg);
  ring.fail_link(1);  // breaks 1 -> 2
  ring.host_write(0, 10, 99);
  sim.run();
  // Node 1 (before the break) gets it; nodes 2 and 3 never do.
  EXPECT_EQ(ring.host_read(1, 10), 99u);
  EXPECT_EQ(ring.host_read(2, 10), 0u);
  EXPECT_EQ(ring.host_read(3, 10), 0u);
  EXPECT_EQ(ring.packets_lost(), 2u);
}

TEST(Fault, RedundantRingDelaysButDelivers) {
  sim::Simulation sim;
  RingConfig cfg;
  cfg.nodes = 4;
  cfg.bank_words = 1024;
  cfg.redundant_ring = true;
  cfg.switchover = us(50);
  Ring ring(sim, cfg);
  ring.fail_link(1);
  ring.host_write(0, 10, 99);
  // Before the switchover completes, downstream nodes have stale data...
  sim.run_until(us(20));
  EXPECT_EQ(ring.host_read(1, 10), 99u);  // unaffected path
  EXPECT_EQ(ring.host_read(3, 10), 0u);
  // ...after it, everything arrived.
  sim.run_until(us(60));
  EXPECT_EQ(ring.host_read(2, 10), 99u);
  EXPECT_EQ(ring.host_read(3, 10), 99u);
  EXPECT_EQ(ring.packets_lost(), 0u);
}

TEST(Fault, HealRestoresNormalLatency) {
  sim::Simulation sim;
  RingConfig cfg;
  cfg.nodes = 3;
  cfg.bank_words = 1024;
  Ring ring(sim, cfg);
  ring.fail_link(0);
  ring.host_write(0, 5, 1);  // lost for everyone downstream of 0
  ring.heal_link(0);
  ring.host_write(0, 6, 2);  // injected after heal: delivered normally
  sim.run();
  EXPECT_EQ(ring.host_read(1, 5), 0u);
  EXPECT_EQ(ring.host_read(2, 5), 0u);
  EXPECT_EQ(ring.host_read(1, 6), 2u);
  EXPECT_EQ(ring.host_read(2, 6), 2u);
}

TEST(Fault, BbpSurvivesFailureOnRedundantRing) {
  // A BBP exchange straddling a link failure completes once the backup
  // ring takes over, with only the switchover added to latency.
  sim::Simulation sim;
  RingConfig cfg;
  cfg.nodes = 2;
  cfg.bank_words = 4096;
  cfg.redundant_ring = true;
  cfg.switchover = us(80);
  Ring ring(sim, cfg);
  SimTime recv_done = 0;
  sim.spawn("tx", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p);
    bbp::Endpoint ep(port, 2, 0);
    p.delay(us(10));
    ring.fail_link(0);  // sever 0 -> 1 right before sending
    std::vector<u8> msg(32);
    fill_pattern(msg, 4);
    ASSERT_TRUE(ep.send(1, msg).ok());
    ep.drain();  // ACK comes back over the (unaffected) 1 -> 0 hop
  });
  sim.spawn("rx", [&](sim::Process& p) {
    SimHostPort port(ring, 1, p);
    bbp::Endpoint ep(port, 2, 1);
    std::vector<u8> buf(32);
    ASSERT_TRUE(ep.recv(0, buf).ok());
    EXPECT_TRUE(check_pattern(buf, 4));
    recv_done = p.now();
  });
  sim.run();
  // Delivery waited for the ~90us switchover window (10us + 80us) instead
  // of the usual ~7us.
  EXPECT_GT(to_us(recv_done), 85.0);
  EXPECT_LT(to_us(recv_done), 120.0);
}

TEST(Fault, BbpStallsForeverWithoutRedundancy) {
  // Without the backup ring, a severed link makes the receiver wait for a
  // message that can never arrive: the kernel must report the deadlock
  // (the receiver parks in interrupt mode with no pending events).
  sim::Simulation sim;
  RingConfig cfg;
  cfg.nodes = 2;
  cfg.bank_words = 4096;
  Ring ring(sim, cfg);
  sim.spawn("tx", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p);
    bbp::Endpoint ep(port, 2, 0);
    p.delay(us(5));
    ring.fail_link(0);
    std::vector<u8> msg(16);
    ASSERT_TRUE(ep.try_send(1, msg).ok());  // vanishes on the broken hop
  });
  sim.spawn("rx", [&](sim::Process& p) {
    SimHostPort port(ring, 1, p);
    bbp::Config c;
    c.recv_mode = bbp::RecvMode::kInterrupt;  // parks instead of spinning
    bbp::Endpoint ep(port, 2, 1, c);
    std::vector<u8> buf(16);
    (void)ep.recv(0, buf);  // never completes
  });
  EXPECT_THROW(sim.run(), sim::DeadlockError);
}

}  // namespace
}  // namespace scrnet::scramnet
