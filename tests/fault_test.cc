// Failure-injection tests: link failures on the ring, with and without
// the redundant-cabling option, their effect on the BillBoard Protocol,
// and the deterministic FaultPlan layer (validation, flapping links,
// wrong-speed NICs, seeded frame loss, hierarchy host dials).
#include <gtest/gtest.h>

#include <utility>

#include "bbp/endpoint.h"
#include "common/bytes.h"
#include "fault/plan.h"
#include "netmodels/ethernet.h"
#include "scramnet/hierarchy.h"
#include "scramnet/ring.h"
#include "scramnet/sim_port.h"

namespace scrnet::scramnet {
namespace {

TEST(Fault, LostDeliveryWithoutRedundancy) {
  sim::Simulation sim;
  RingConfig cfg;
  cfg.nodes = 4;
  cfg.bank_words = 1024;
  Ring ring(sim, cfg);
  ring.fail_link(1);  // breaks 1 -> 2
  ring.host_write(0, 10, 99);
  sim.run();
  // Node 1 (before the break) gets it; nodes 2 and 3 never do.
  EXPECT_EQ(ring.host_read(1, 10), 99u);
  EXPECT_EQ(ring.host_read(2, 10), 0u);
  EXPECT_EQ(ring.host_read(3, 10), 0u);
  EXPECT_EQ(ring.packets_lost(), 2u);
}

TEST(Fault, RedundantRingDelaysButDelivers) {
  sim::Simulation sim;
  RingConfig cfg;
  cfg.nodes = 4;
  cfg.bank_words = 1024;
  cfg.redundant_ring = true;
  cfg.switchover = us(50);
  Ring ring(sim, cfg);
  ring.fail_link(1);
  ring.host_write(0, 10, 99);
  // Before the switchover completes, downstream nodes have stale data...
  sim.run_until(us(20));
  EXPECT_EQ(ring.host_read(1, 10), 99u);  // unaffected path
  EXPECT_EQ(ring.host_read(3, 10), 0u);
  // ...after it, everything arrived.
  sim.run_until(us(60));
  EXPECT_EQ(ring.host_read(2, 10), 99u);
  EXPECT_EQ(ring.host_read(3, 10), 99u);
  EXPECT_EQ(ring.packets_lost(), 0u);
}

TEST(Fault, HealRestoresNormalLatency) {
  sim::Simulation sim;
  RingConfig cfg;
  cfg.nodes = 3;
  cfg.bank_words = 1024;
  Ring ring(sim, cfg);
  // Same-instant host writes arbitrate in one (node, kind)-ordered batch
  // (docs/simulator.md "Parallel execution"), so run the sim between the
  // two writes to give each its own link-state instant.
  ring.fail_link(0);
  ring.host_write(0, 5, 1);  // lost for everyone downstream of 0
  sim.run();
  ring.heal_link(0);
  ring.host_write(0, 6, 2);  // injected after heal: delivered normally
  sim.run();
  EXPECT_EQ(ring.host_read(1, 5), 0u);
  EXPECT_EQ(ring.host_read(2, 5), 0u);
  EXPECT_EQ(ring.host_read(1, 6), 2u);
  EXPECT_EQ(ring.host_read(2, 6), 2u);
}

TEST(Fault, BbpSurvivesFailureOnRedundantRing) {
  // A BBP exchange straddling a link failure completes once the backup
  // ring takes over, with only the switchover added to latency.
  sim::Simulation sim;
  RingConfig cfg;
  cfg.nodes = 2;
  cfg.bank_words = 4096;
  cfg.redundant_ring = true;
  cfg.switchover = us(80);
  Ring ring(sim, cfg);
  SimTime recv_done = 0;
  sim.spawn("tx", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p);
    bbp::Endpoint ep(port, 2, 0);
    p.delay(us(10));
    ring.fail_link(0);  // sever 0 -> 1 right before sending
    std::vector<u8> msg(32);
    fill_pattern(msg, 4);
    ASSERT_TRUE(ep.send(1, msg).ok());
    ep.drain();  // ACK comes back over the (unaffected) 1 -> 0 hop
  });
  sim.spawn("rx", [&](sim::Process& p) {
    SimHostPort port(ring, 1, p);
    bbp::Endpoint ep(port, 2, 1);
    std::vector<u8> buf(32);
    ASSERT_TRUE(ep.recv(0, buf).ok());
    EXPECT_TRUE(check_pattern(buf, 4));
    recv_done = p.now();
  });
  sim.run();
  // Delivery waited for the ~90us switchover window (10us + 80us) instead
  // of the usual ~7us.
  EXPECT_GT(to_us(recv_done), 85.0);
  EXPECT_LT(to_us(recv_done), 120.0);
}

TEST(Fault, BbpStallsForeverWithoutRedundancy) {
  // Without the backup ring, a severed link makes the receiver wait for a
  // message that can never arrive: the kernel must report the deadlock
  // (the receiver parks in interrupt mode with no pending events).
  sim::Simulation sim;
  RingConfig cfg;
  cfg.nodes = 2;
  cfg.bank_words = 4096;
  Ring ring(sim, cfg);
  sim.spawn("tx", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p);
    bbp::Endpoint ep(port, 2, 0);
    p.delay(us(5));
    ring.fail_link(0);
    std::vector<u8> msg(16);
    ASSERT_TRUE(ep.try_send(1, msg).ok());  // vanishes on the broken hop
  });
  sim.spawn("rx", [&](sim::Process& p) {
    SimHostPort port(ring, 1, p);
    bbp::Config c;
    c.recv_mode = bbp::RecvMode::kInterrupt;  // parks instead of spinning
    bbp::Endpoint ep(port, 2, 1, c);
    std::vector<u8> buf(16);
    (void)ep.recv(0, buf);  // never completes
  });
  EXPECT_THROW(sim.run(), sim::DeadlockError);
}

TEST(Fault, BadIndexReturnsErrorStatus) {
  // The ring fault API reports a nonexistent link/node as an error Status,
  // never an assert or a silent no-op.
  sim::Simulation sim;
  RingConfig cfg;
  cfg.nodes = 4;
  cfg.bank_words = 256;
  Ring ring(sim, cfg);
  EXPECT_EQ(ring.fail_link(4).code(), StatusCode::kInvalidArg);
  EXPECT_EQ(ring.heal_link(99).code(), StatusCode::kInvalidArg);
  EXPECT_EQ(ring.set_node_speed_factor(4, 2.0).code(), StatusCode::kInvalidArg);
  EXPECT_EQ(ring.set_node_speed_factor(0, 0.0).code(), StatusCode::kInvalidArg);
  EXPECT_EQ(ring.set_node_speed_factor(0, -1.0).code(), StatusCode::kInvalidArg);
  EXPECT_FALSE(ring.link_failed(4));
  // The valid wrap link still works.
  EXPECT_TRUE(ring.fail_link(3).ok());
  EXPECT_TRUE(ring.link_failed(3));
  EXPECT_TRUE(ring.heal_link(3).ok());
  EXPECT_FALSE(ring.link_failed(3));
}

TEST(FaultPlan, ArmValidatesEveryTargetUpFront) {
  sim::Simulation sim;
  RingConfig cfg;
  cfg.nodes = 4;
  cfg.bank_words = 256;
  Ring ring(sim, cfg);
  netmodels::EthernetFabric fab(sim, 4);

  {  // nonexistent link
    fault::FaultPlan p;
    p.link_down(us(1), 7);
    EXPECT_EQ(p.arm(sim, &ring).code(), StatusCode::kInvalidArg);
  }
  {  // nonexistent dial target
    fault::FaultPlan p;
    p.slow_node(us(1), 9, 2.0);
    EXPECT_EQ(p.arm(sim, &ring).code(), StatusCode::kInvalidArg);
  }
  {  // non-positive NIC speed factor
    fault::FaultPlan p;
    p.nic_speed(us(1), 1, 0.0);
    EXPECT_EQ(p.arm(sim, &ring).code(), StatusCode::kInvalidArg);
  }
  {  // fabric fault with no fabric to install the hook on
    fault::FaultPlan p;
    p.partition(us(1), 0, 1);
    EXPECT_EQ(p.arm(sim, &ring).code(), StatusCode::kInvalidArg);
  }
  {  // ring fault with no ring
    fault::FaultPlan p;
    p.link_down(us(1), 1);
    EXPECT_EQ(p.arm(sim, nullptr, &fab).code(), StatusCode::kInvalidArg);
  }
  {  // loss probability outside [0, 1]
    fault::FaultPlan p;
    p.frame_loss(us(1), us(2), 1.5, 7);
    EXPECT_EQ(p.arm(sim, nullptr, &fab).code(), StatusCode::kInvalidArg);
  }
  {  // empty pause window
    fault::FaultPlan p;
    p.pause_node(2, us(5), us(5));
    EXPECT_EQ(p.arm(sim, &ring).code(), StatusCode::kInvalidArg);
  }
  {  // no topology at all
    fault::FaultPlan p;
    EXPECT_EQ(p.arm(sim, nullptr, nullptr).code(), StatusCode::kInvalidArg);
  }
  {  // arming twice is an error (posted events point at the plan)
    fault::FaultPlan p;
    p.link_down(us(1), 1);
    EXPECT_TRUE(p.arm(sim, &ring).ok());
    EXPECT_EQ(p.arm(sim, &ring).code(), StatusCode::kUnavailable);
  }
}

TEST(FaultPlan, ArmHostsRejectsRingAndFabricKinds) {
  sim::Simulation sim;
  {
    fault::FaultPlan p;
    p.link_down(us(1), 0);
    EXPECT_EQ(p.arm_hosts(sim, 4).code(), StatusCode::kInvalidArg);
  }
  {
    fault::FaultPlan p;
    p.fabric_congestion(us(1), us(2), us(3));
    EXPECT_EQ(p.arm_hosts(sim, 4).code(), StatusCode::kInvalidArg);
  }
  {
    fault::FaultPlan p;
    p.slow_node(us(1), 1, 2.0);
    EXPECT_EQ(p.dials(1), nullptr);  // no dials before arming
    EXPECT_TRUE(p.arm_hosts(sim, 4).ok());
    EXPECT_NE(p.dials(1), nullptr);
    EXPECT_EQ(p.dials(4), nullptr);  // out of range stays null
  }
}

TEST(FaultPlan, FlappingLinkDropsOnlyDuringDownWindows) {
  sim::Simulation sim;
  RingConfig cfg;
  cfg.nodes = 4;
  cfg.bank_words = 1024;
  Ring ring(sim, cfg);
  fault::FaultPlan p;
  // Link 1 -> 2: down [10, 20)us, up [20, 30)us, down [30, 40)us, up after.
  p.flapping_link(1, us(10), us(10), us(10), 2);
  ASSERT_TRUE(p.arm(sim, &ring).ok());
  // One write from node 0 inside each window (link state is sampled at
  // packet injection).
  sim.post_at(us(5), [&] { ring.host_write(0, 0, 1); });
  sim.post_at(us(15), [&] { ring.host_write(0, 1, 2); });
  sim.post_at(us(25), [&] { ring.host_write(0, 2, 3); });
  sim.post_at(us(35), [&] { ring.host_write(0, 3, 4); });
  sim.post_at(us(45), [&] { ring.host_write(0, 4, 5); });
  sim.run();
  // Node 1 sits before the flapping link and sees everything.
  for (u32 a = 0; a < 5; ++a) EXPECT_EQ(ring.host_read(1, a), a + 1);
  // Nodes 2 and 3 lose exactly the writes injected during down windows.
  for (u32 n = 2; n < 4; ++n) {
    EXPECT_EQ(ring.host_read(n, 0), 1u);
    EXPECT_EQ(ring.host_read(n, 1), 0u);
    EXPECT_EQ(ring.host_read(n, 2), 3u);
    EXPECT_EQ(ring.host_read(n, 3), 0u);
    EXPECT_EQ(ring.host_read(n, 4), 5u);
  }
  EXPECT_EQ(ring.packets_lost(), 4u);  // 2 writes x 2 downstream nodes
  EXPECT_EQ(p.fired(fault::FaultKind::kLinkDown), 2u);
  EXPECT_EQ(p.fired(fault::FaultKind::kLinkUp), 2u);
}

TEST(FaultPlan, WrongSpeedNicStretchesSerialization) {
  // A degraded NIC (factor > 1) holds the insertion engine longer, so the
  // same write lands at the far node later than on a nominal ring.
  auto delivered_at = [](double factor) {
    sim::Simulation sim;
    RingConfig cfg;
    cfg.nodes = 4;
    cfg.bank_words = 1024;
    Ring ring(sim, cfg);
    fault::FaultPlan p;
    if (factor != 1.0) p.nic_speed(us(1), 0, factor);
    EXPECT_TRUE(p.arm(sim, &ring).ok());
    SimTime got = 0;
    ring.set_interrupt(3, 10, 11, [&](u32) { got = sim.now(); });
    sim.post_at(us(5), [&] {
      const u32 words[64] = {7};
      ring.host_write_block(0, 10, words, 0);
    });
    sim.run();
    EXPECT_GT(got, 0);
    return got;
  };
  const SimTime nominal = delivered_at(1.0);
  const SimTime slowed = delivered_at(8.0);
  EXPECT_GT(slowed, nominal);
  EXPECT_EQ(delivered_at(8.0), slowed);  // and it is deterministic
}

TEST(FaultPlan, SwitchoverIsCountedOnRedundantRing) {
  sim::Simulation sim;
  RingConfig cfg;
  cfg.nodes = 2;
  cfg.bank_words = 256;
  cfg.redundant_ring = true;
  cfg.switchover = us(50);
  Ring ring(sim, cfg);
  fault::FaultPlan p;
  p.link_down(us(5), 0);
  ASSERT_TRUE(p.arm(sim, &ring).ok());
  sim.post_at(us(10), [&] { ring.host_write(0, 10, 7); });
  sim.run();
  EXPECT_EQ(ring.switchovers(), 1u);
  EXPECT_EQ(ring.packets_lost(), 0u);
  EXPECT_EQ(ring.host_read(1, 10), 7u);  // delayed past switchover, not lost
  EXPECT_EQ(p.fired(fault::FaultKind::kLinkDown), 1u);
}

TEST(FaultPlan, PauseAndCrashQueriesArePure) {
  // Workload-level kinds are plain data: the queries answer without the
  // plan being armed and are pure functions of (node, virtual time).
  fault::FaultPlan p;
  p.pause_node(2, us(10), us(20)).crash_node(us(50), 3);
  EXPECT_TRUE(p.node_active(2, us(5)));
  EXPECT_FALSE(p.node_active(2, us(15)));
  EXPECT_EQ(p.paused_until(2, us(15)), us(20));
  EXPECT_TRUE(p.node_active(2, us(20)));  // window is half-open
  EXPECT_TRUE(p.node_active(3, us(49)));
  EXPECT_FALSE(p.node_active(3, us(50)));
  EXPECT_TRUE(p.crashed(3, us(60)));
  EXPECT_FALSE(p.crashed(2, us(60)));
}

TEST(FaultPlan, FrameLossIsSeededAndOrderIndependent) {
  // The drop verdict hashes (seed, src, dst, arrival): two runs of the
  // same traffic see bit-identical loss.
  auto run = [](u64 seed) {
    sim::Simulation sim;
    netmodels::EthernetFabric fab(sim, 2);
    fault::FaultPlan p;
    p.frame_loss(0, ms(10), 0.5, seed);
    EXPECT_TRUE(p.arm(sim, nullptr, &fab).ok());
    for (u32 i = 0; i < 40; ++i) {
      sim.post_at(us(20) * i, [&fab, i] {
        netmodels::Frame f;
        f.src = 0;
        f.dst = 1;
        f.payload.assign(64, static_cast<u8>(i));
        fab.transmit(std::move(f));
      });
    }
    sim.run();
    return std::pair<u64, u64>(fab.frames_dropped(), fab.frames_delivered());
  };
  const auto a = run(1);
  const auto b = run(1);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.first, 0u);   // some frames dropped...
  EXPECT_GT(a.second, 0u);  // ...and some survived, at prob 0.5 over 40
  EXPECT_EQ(a.first + a.second, 40u);
}

TEST(FaultPlan, BbpTimesOutInsteadOfHanging) {
  // The BbpStallsForeverWithoutRedundancy scenario again, but with a
  // bounded wait configured: both sides come back with kTimedOut and the
  // simulation drains normally instead of throwing DeadlockError.
  sim::Simulation sim;
  RingConfig cfg;
  cfg.nodes = 2;
  cfg.bank_words = 4096;
  Ring ring(sim, cfg);
  Status drain_st, recv_st;
  sim.spawn("tx", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p);
    bbp::Config c;
    c.poll_timeout = us(500);
    bbp::Endpoint ep(port, 2, 0, c);
    p.delay(us(5));
    ASSERT_TRUE(ring.fail_link(0).ok());
    std::vector<u8> msg(16);
    ASSERT_TRUE(ep.try_send(1, msg).ok());  // vanishes on the broken hop
    drain_st = ep.drain();                  // ACK toggle never arrives
  });
  sim.spawn("rx", [&](sim::Process& p) {
    SimHostPort port(ring, 1, p);
    bbp::Config c;
    c.recv_mode = bbp::RecvMode::kInterrupt;  // would park forever...
    c.poll_timeout = us(500);                 // ...but the deadline polls
    bbp::Endpoint ep(port, 2, 1, c);
    std::vector<u8> buf(16);
    recv_st = ep.recv(0, buf).status();
  });
  sim.run();  // completes: no fiber is parked forever
  EXPECT_EQ(drain_st.code(), StatusCode::kTimedOut);
  EXPECT_EQ(recv_st.code(), StatusCode::kTimedOut);
  EXPECT_GE(ring.packets_lost(), 1u);
}

TEST(FaultPlan, HierarchyPortsHonorHostDials) {
  // Host-level faults apply to the two-level ring hierarchy through the
  // same PortDials mechanism as the flat ring (arm_hosts + set_dials).
  auto finish_time = [](bool degraded) {
    sim::Simulation sim;
    HierarchyConfig hc;
    hc.leaf_rings = 2;
    hc.nodes_per_ring = 2;
    hc.bank_words = 4096;
    RingHierarchy h(sim, hc);
    fault::FaultPlan p;
    if (degraded) p.host_congestion(0, 1, 4.0).slow_node(0, 1, 4.0);
    EXPECT_TRUE(p.arm_hosts(sim, h.nodes()).ok());
    SimTime done = 0;
    sim.spawn("writer", [&](sim::Process& pr) {
      HierarchyPort port(h, 1, pr);
      port.set_dials(p.dials(1));
      pr.delay(us(1));  // let the dial events at t=0 take effect
      for (u32 i = 0; i < 16; ++i) {
        port.write_u32(100 + i, i + 1);
        port.poll_pause();
      }
      done = pr.now();
    });
    sim.run();
    // The writes crossed the bridge onto the other leaf ring.
    EXPECT_EQ(h.host_read(3, 100), 1u);
    EXPECT_GT(h.backbone_packets(), 0u);
    return done;
  };
  const SimTime nominal = finish_time(false);
  const SimTime degraded = finish_time(true);
  EXPECT_GT(degraded, nominal);
  EXPECT_EQ(finish_time(true), degraded);  // deterministic
}

}  // namespace
}  // namespace scrnet::scramnet
