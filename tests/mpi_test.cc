// Tests for scrmpi over both channel devices (ch_bbp / ch_sock).
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "common/bytes.h"
#include "harness/cluster.h"

namespace scrnet::scrmpi {
namespace {

using harness::run_scramnet_mpi;
using harness::run_tcp_mpi;
using harness::TcpFabricKind;

using Body = std::function<void(sim::Process&, Mpi&)>;

/// Device under test for the parameterized correctness suite.
enum class Device { kBbp, kSockFe, kSockAtm, kSockMyr };

std::string device_name(Device d) {
  switch (d) {
    case Device::kBbp: return "ScramnetBbp";
    case Device::kSockFe: return "SockFastEthernet";
    case Device::kSockAtm: return "SockAtm";
    case Device::kSockMyr: return "SockMyrinet";
  }
  return "?";
}

SimTime run_on(Device d, u32 nodes, const Body& body) {
  switch (d) {
    case Device::kBbp: return run_scramnet_mpi(nodes, body);
    case Device::kSockFe: return run_tcp_mpi(nodes, TcpFabricKind::kFastEthernet, body);
    case Device::kSockAtm: return run_tcp_mpi(nodes, TcpFabricKind::kAtm, body);
    case Device::kSockMyr: return run_tcp_mpi(nodes, TcpFabricKind::kMyrinet, body);
  }
  return 0;
}

class MpiDeviceTest : public ::testing::TestWithParam<Device> {};

INSTANTIATE_TEST_SUITE_P(AllDevices, MpiDeviceTest,
                         ::testing::Values(Device::kBbp, Device::kSockFe,
                                           Device::kSockAtm, Device::kSockMyr),
                         [](const auto& ti) { return device_name(ti.param); });

TEST_P(MpiDeviceTest, BlockingSendRecv) {
  run_on(GetParam(), 2, [](sim::Process&, Mpi& mpi) {
    const Comm& w = mpi.world();
    if (mpi.rank(w) == 0) {
      std::vector<u8> msg(64);
      fill_pattern(msg, 42);
      mpi.send(msg.data(), 64, Datatype::kByte, 1, 7, w);
    } else {
      std::vector<u8> buf(64);
      MpiStatus st = mpi.recv(buf.data(), 64, Datatype::kByte, 0, 7, w);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.count_bytes, 64u);
      EXPECT_TRUE(check_pattern(buf, 42));
    }
  });
}

TEST_P(MpiDeviceTest, TagMatchingOutOfOrder) {
  run_on(GetParam(), 2, [](sim::Process&, Mpi& mpi) {
    const Comm& w = mpi.world();
    if (mpi.rank(w) == 0) {
      i32 a = 111, b = 222;
      mpi.send(&a, 1, Datatype::kInt32, 1, /*tag=*/1, w);
      mpi.send(&b, 1, Datatype::kInt32, 1, /*tag=*/2, w);
    } else {
      i32 x = 0, y = 0;
      // Receive tag 2 first: tag 1's message must wait in the unexpected
      // queue and still be delivered afterwards.
      mpi.recv(&y, 1, Datatype::kInt32, 0, 2, w);
      mpi.recv(&x, 1, Datatype::kInt32, 0, 1, w);
      EXPECT_EQ(x, 111);
      EXPECT_EQ(y, 222);
    }
  });
}

TEST_P(MpiDeviceTest, WildcardSourceAndTag) {
  run_on(GetParam(), 3, [](sim::Process&, Mpi& mpi) {
    const Comm& w = mpi.world();
    const i32 me = mpi.rank(w);
    if (me == 1 || me == 2) {
      const i32 v = me * 10;
      mpi.send(&v, 1, Datatype::kInt32, 0, me, w);
    } else {
      i32 sum = 0;
      for (int i = 0; i < 2; ++i) {
        i32 v = 0;
        MpiStatus st = mpi.recv(&v, 1, Datatype::kInt32, kAnySource, kAnyTag, w);
        EXPECT_EQ(v, st.source * 10);
        EXPECT_EQ(st.tag, st.source);
        sum += v;
      }
      EXPECT_EQ(sum, 30);
    }
  });
}

TEST_P(MpiDeviceTest, IsendIrecvWaitall) {
  run_on(GetParam(), 2, [](sim::Process&, Mpi& mpi) {
    const Comm& w = mpi.world();
    constexpr int kN = 8;
    if (mpi.rank(w) == 0) {
      std::vector<std::vector<u8>> msgs(kN);
      std::vector<Request> reqs;
      for (int i = 0; i < kN; ++i) {
        msgs[static_cast<size_t>(i)].resize(32);
        fill_pattern(msgs[static_cast<size_t>(i)], static_cast<u32>(i));
        reqs.push_back(mpi.isend(msgs[static_cast<size_t>(i)].data(), 32,
                                 Datatype::kByte, 1, i, w));
      }
      mpi.waitall(reqs, w);
    } else {
      std::vector<std::vector<u8>> bufs(kN, std::vector<u8>(32));
      std::vector<Request> reqs;
      for (int i = 0; i < kN; ++i)
        reqs.push_back(mpi.irecv(bufs[static_cast<size_t>(i)].data(), 32,
                                 Datatype::kByte, 0, i, w));
      mpi.waitall(reqs, w);
      for (int i = 0; i < kN; ++i)
        EXPECT_TRUE(check_pattern(bufs[static_cast<size_t>(i)], static_cast<u32>(i)));
    }
  });
}

TEST_P(MpiDeviceTest, RendezvousLargeMessage) {
  run_on(GetParam(), 2, [](sim::Process&, Mpi& mpi) {
    const Comm& w = mpi.world();
    // Larger than both devices' eager limits (BBP: data-partition/4).
    const u32 bytes = 300 * 1024;
    if (mpi.rank(w) == 0) {
      std::vector<u8> msg(bytes);
      fill_pattern(msg, 99);
      mpi.send(msg.data(), bytes, Datatype::kByte, 1, 0, w);
    } else {
      std::vector<u8> buf(bytes);
      MpiStatus st = mpi.recv(buf.data(), bytes, Datatype::kByte, 0, 0, w);
      EXPECT_EQ(st.count_bytes, bytes);
      EXPECT_TRUE(check_pattern(buf, 99));
    }
  });
}

TEST_P(MpiDeviceTest, RendezvousUnexpectedRts) {
  // RTS arrives before the receive is posted.
  run_on(GetParam(), 2, [](sim::Process& p, Mpi& mpi) {
    const Comm& w = mpi.world();
    const u32 bytes = 200 * 1024;
    if (mpi.rank(w) == 0) {
      std::vector<u8> msg(bytes);
      fill_pattern(msg, 5);
      mpi.send(msg.data(), bytes, Datatype::kByte, 1, 3, w);
    } else {
      p.delay(ms(2));  // let the RTS land in the unexpected queue
      std::vector<u8> buf(bytes);
      mpi.recv(buf.data(), bytes, Datatype::kByte, 0, 3, w);
      EXPECT_TRUE(check_pattern(buf, 5));
    }
  });
}

TEST_P(MpiDeviceTest, ProbeRevealsEnvelope) {
  run_on(GetParam(), 2, [](sim::Process&, Mpi& mpi) {
    const Comm& w = mpi.world();
    if (mpi.rank(w) == 0) {
      std::vector<u8> msg(48);
      mpi.send(msg.data(), 48, Datatype::kByte, 1, 9, w);
    } else {
      MpiStatus st = mpi.probe(kAnySource, kAnyTag, w);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 9);
      EXPECT_EQ(st.count_bytes, 48u);
      std::vector<u8> buf(st.count_bytes);
      mpi.recv(buf.data(), st.count_bytes, Datatype::kByte, st.source, st.tag, w);
    }
  });
}

TEST_P(MpiDeviceTest, SendrecvExchanges) {
  run_on(GetParam(), 2, [](sim::Process&, Mpi& mpi) {
    const Comm& w = mpi.world();
    const i32 me = mpi.rank(w);
    const i32 peer = 1 - me;
    i32 mine = me + 100, theirs = -1;
    mpi.sendrecv(&mine, 1, Datatype::kInt32, peer, 0, &theirs, 1, Datatype::kInt32,
                 peer, 0, w);
    EXPECT_EQ(theirs, peer + 100);
  });
}

TEST_P(MpiDeviceTest, BcastPointToPoint) {
  run_on(GetParam(), 4, [](sim::Process&, Mpi& mpi) {
    mpi.set_bcast_algo(CollAlgo::kPointToPoint);
    const Comm& w = mpi.world();
    std::vector<u8> buf(256);
    if (mpi.rank(w) == 2) fill_pattern(buf, 8);  // non-zero root
    mpi.bcast(buf.data(), 256, Datatype::kByte, 2, w);
    EXPECT_TRUE(check_pattern(buf, 8));
  });
}

TEST_P(MpiDeviceTest, BarrierSynchronizes) {
  const Device dev = GetParam();
  run_on(dev, 4, [](sim::Process& p, Mpi& mpi) {
    mpi.set_barrier_algo(CollAlgo::kPointToPoint);
    const Comm& w = mpi.world();
    // Rank 3 arrives late; nobody may leave before it arrives.
    SimTime arrive;
    if (mpi.rank(w) == 3) p.delay(ms(5));
    arrive = p.now();
    (void)arrive;
    mpi.barrier(w);
    EXPECT_GE(p.now(), ms(5));
  });
}

TEST_P(MpiDeviceTest, ReduceSumInts) {
  run_on(GetParam(), 4, [](sim::Process&, Mpi& mpi) {
    const Comm& w = mpi.world();
    const i32 me = mpi.rank(w);
    std::vector<i32> v(16);
    for (usize i = 0; i < 16; ++i) v[i] = me + static_cast<i32>(i);
    std::vector<i32> out(16, -1);
    mpi.reduce(v.data(), out.data(), 16, Datatype::kInt32, ReduceOp::kSum, 0, w);
    if (me == 0) {
      for (usize i = 0; i < 16; ++i)
        EXPECT_EQ(out[i], 6 + 4 * static_cast<i32>(i));  // sum over ranks 0..3
    }
  });
}

TEST_P(MpiDeviceTest, AllreduceMaxDoubles) {
  run_on(GetParam(), 3, [](sim::Process&, Mpi& mpi) {
    const Comm& w = mpi.world();
    const double mine = 1.5 * (mpi.rank(w) + 1);
    double out = 0;
    mpi.allreduce(&mine, &out, 1, Datatype::kDouble, ReduceOp::kMax, w);
    EXPECT_DOUBLE_EQ(out, 4.5);
  });
}

TEST_P(MpiDeviceTest, GatherScatterRoundTrip) {
  run_on(GetParam(), 4, [](sim::Process&, Mpi& mpi) {
    const Comm& w = mpi.world();
    const i32 me = mpi.rank(w);
    // Scatter rows of a root matrix, double them, gather back.
    std::vector<i32> matrix(16);
    if (me == 1) std::iota(matrix.begin(), matrix.end(), 0);
    std::vector<i32> row(4);
    mpi.scatter(matrix.data(), row.data(), 4, Datatype::kInt32, 1, w);
    for (i32& x : row) x *= 2;
    mpi.gather(row.data(), 4, Datatype::kInt32, matrix.data(), 1, w);
    if (me == 1) {
      for (usize i = 0; i < 16; ++i) EXPECT_EQ(matrix[i], 2 * static_cast<i32>(i));
    }
  });
}

TEST_P(MpiDeviceTest, AllgatherCollectsAll) {
  run_on(GetParam(), 4, [](sim::Process&, Mpi& mpi) {
    const Comm& w = mpi.world();
    const u32 me = static_cast<u32>(mpi.rank(w));
    const u32 mine = me * me + 7;
    std::vector<u32> all(4, 0);
    mpi.allgather(&mine, 1, Datatype::kUint32, all.data(), w);
    for (u32 r = 0; r < 4; ++r) EXPECT_EQ(all[r], r * r + 7);
  });
}

TEST_P(MpiDeviceTest, CommSplitIsolatesTraffic) {
  run_on(GetParam(), 4, [](sim::Process&, Mpi& mpi) {
    const Comm& w = mpi.world();
    const i32 me = mpi.rank(w);
    // Even / odd split, key reverses order within the odd group.
    Comm sub = mpi.split(w, me % 2, me % 2 == 1 ? -me : me);
    EXPECT_EQ(mpi.size(sub), 2u);
    if (me % 2 == 1) {
      // key = -1 for world rank 1, -3 for world rank 3 -> rank 3 first.
      EXPECT_EQ(sub.world_of(0), 3u);
      EXPECT_EQ(sub.world_of(1), 1u);
    }
    // Exchange within the subcommunicator.
    const i32 sub_me = mpi.rank(sub);
    const i32 peer = 1 - sub_me;
    i32 out = me, in = -1;
    mpi.sendrecv(&out, 1, Datatype::kInt32, peer, 0, &in, 1, Datatype::kInt32, peer,
                 0, sub);
    EXPECT_EQ(in % 2, me % 2);  // partner is in my color group
    EXPECT_NE(in, me);
  });
}

TEST_P(MpiDeviceTest, DupGivesIndependentContext) {
  run_on(GetParam(), 2, [](sim::Process&, Mpi& mpi) {
    const Comm& w = mpi.world();
    Comm d = mpi.dup(w);
    const i32 me = mpi.rank(w);
    if (me == 0) {
      i32 a = 1, b = 2;
      mpi.send(&a, 1, Datatype::kInt32, 1, 0, w);
      mpi.send(&b, 1, Datatype::kInt32, 1, 0, d);
    } else {
      i32 a = 0, b = 0;
      // Receive from the dup first: same tag+src, different context.
      mpi.recv(&b, 1, Datatype::kInt32, 0, 0, d);
      mpi.recv(&a, 1, Datatype::kInt32, 0, 0, w);
      EXPECT_EQ(a, 1);
      EXPECT_EQ(b, 2);
    }
  });
}

TEST_P(MpiDeviceTest, TruncationReported) {
  run_on(GetParam(), 2, [](sim::Process&, Mpi& mpi) {
    const Comm& w = mpi.world();
    if (mpi.rank(w) == 0) {
      std::vector<u8> msg(100);
      mpi.send(msg.data(), 100, Datatype::kByte, 1, 0, w);
    } else {
      std::vector<u8> buf(10);
      MpiStatus st = mpi.recv(buf.data(), 10, Datatype::kByte, 0, 0, w);
      EXPECT_TRUE(st.truncated);
      EXPECT_EQ(st.count_bytes, 100u);
    }
  });
}

TEST_P(MpiDeviceTest, SelfSendCompletes) {
  run_on(GetParam(), 2, [](sim::Process&, Mpi& mpi) {
    const Comm& w = mpi.world();
    const i32 me = mpi.rank(w);
    i32 v = me + 55, got = -1;
    Request rr = mpi.irecv(&got, 1, Datatype::kInt32, me, 0, w);
    mpi.send(&v, 1, Datatype::kInt32, me, 0, w);
    mpi.wait(rr, w);
    EXPECT_EQ(got, me + 55);
  });
}

// ---------------------------------------------------------------------------
// SCRAMNet-specific: the paper's native-multicast collectives.
// ---------------------------------------------------------------------------

TEST(MpiNative, BcastUsesSingleMcast) {
  // Build the cluster by hand so the root's BBP endpoint stats are visible:
  // a native bcast must appear as exactly one hardware multicast.
  sim::Simulation sim;
  scramnet::Ring ring(sim, scramnet::RingConfig{});
  u64 root_mcasts = 0, root_sends = 0;
  for (u32 r = 0; r < 4; ++r) {
    sim.spawn("rank" + std::to_string(r), [&, r](sim::Process& p) {
      scramnet::SimHostPort port(ring, r, p);
      bbp::Endpoint ep(port, 4, r);
      BbpChannel dev(ep);
      Mpi mpi(dev);
      mpi.set_bcast_algo(CollAlgo::kNativeMcast);
      const Comm& w = mpi.world();
      std::vector<u8> buf(512);
      if (mpi.rank(w) == 0) fill_pattern(buf, 17);
      mpi.bcast(buf.data(), 512, Datatype::kByte, 0, w);
      EXPECT_TRUE(check_pattern(buf, 17));
      if (r == 0) {
        root_mcasts = ep.stats().mcasts;
        root_sends = ep.stats().sends;
      }
    });
  }
  sim.run();
  EXPECT_EQ(root_mcasts, 1u);
  EXPECT_EQ(root_sends, 0u);
}

TEST(MpiNative, BcastIsNotSynchronizing) {
  // Paper: "the root of the broadcast does not wait for other processes to
  // arrive at the MPI_Bcast call."
  SimTime root_done = 0;
  run_scramnet_mpi(4, [&](sim::Process& p, Mpi& mpi) {
    mpi.set_bcast_algo(CollAlgo::kNativeMcast);
    const Comm& w = mpi.world();
    std::vector<u8> buf(16);
    if (mpi.rank(w) == 0) {
      mpi.bcast(buf.data(), 16, Datatype::kByte, 0, w);
      root_done = p.now();
    } else {
      p.delay(ms(50));  // receivers arrive *much* later
      mpi.bcast(buf.data(), 16, Datatype::kByte, 0, w);
    }
  });
  EXPECT_LT(to_us(root_done), 1000.0);  // root left immediately
}

TEST(MpiNative, MultipleBcastsMatchInOrder) {
  run_scramnet_mpi(3, [](sim::Process&, Mpi& mpi) {
    mpi.set_bcast_algo(CollAlgo::kNativeMcast);
    const Comm& w = mpi.world();
    for (u32 i = 0; i < 10; ++i) {
      u32 v = (mpi.rank(w) == 0) ? i * 3 + 1 : 0u;
      mpi.bcast(&v, 1, Datatype::kUint32, 0, w);
      EXPECT_EQ(v, i * 3 + 1);
    }
  });
}

TEST(MpiNative, BarrierSynchronizesWithMcastRelease) {
  run_scramnet_mpi(4, [](sim::Process& p, Mpi& mpi) {
    mpi.set_barrier_algo(CollAlgo::kNativeMcast);
    const Comm& w = mpi.world();
    if (mpi.rank(w) == 2) p.delay(ms(3));
    mpi.barrier(w);
    EXPECT_GE(p.now(), ms(3));
    // And a second barrier immediately after must also work (epochs).
    mpi.barrier(w);
  });
}

TEST(MpiNative, MixedAlgosAgree) {
  // Alternate native and p2p collectives in one run.
  run_scramnet_mpi(4, [](sim::Process&, Mpi& mpi) {
    const Comm& w = mpi.world();
    for (int round = 0; round < 4; ++round) {
      mpi.set_bcast_algo(round % 2 ? CollAlgo::kPointToPoint : CollAlgo::kNativeMcast);
      mpi.set_barrier_algo(round % 2 ? CollAlgo::kNativeMcast : CollAlgo::kPointToPoint);
      u32 v = mpi.rank(w) == 0 ? static_cast<u32>(round) + 7 : 0u;
      mpi.bcast(&v, 1, Datatype::kUint32, 0, w);
      EXPECT_EQ(v, static_cast<u32>(round) + 7);
      mpi.barrier(w);
    }
  });
}

// ---------------------------------------------------------------------------
// Latency calibration: the paper's Figure 1 headline numbers.
// ---------------------------------------------------------------------------

double mpi_oneway_us(u32 bytes) {
  SimTime t0 = 0, t1 = 0;
  run_scramnet_mpi(2, [&](sim::Process& p, Mpi& mpi) {
    const Comm& w = mpi.world();
    std::vector<u8> buf(std::max<u32>(bytes, 1));
    if (mpi.rank(w) == 0) {
      t0 = p.now();
      mpi.send(buf.data(), bytes, Datatype::kByte, 1, 0, w);
    } else {
      mpi.recv(buf.data(), bytes, Datatype::kByte, 0, 0, w);
      t1 = p.now();
    }
  });
  return to_us(t1 - t0);
}

TEST(MpiCalibration, ZeroByteLatencyNearPaper) {
  // Paper: 44 us at the MPI layer.
  const double us0 = mpi_oneway_us(0);
  EXPECT_GT(us0, 30.0);
  EXPECT_LT(us0, 58.0);
}

TEST(MpiCalibration, MpiAddsRoughlyConstantOverhead) {
  // Paper Figure 1: "the MPI layer only adds a constant overhead".
  const double d0 = mpi_oneway_us(0);
  const double d256 = mpi_oneway_us(256);
  const double d1000 = mpi_oneway_us(1000);
  // Overhead growth should be dominated by per-byte wire costs, i.e. the
  // MPI-vs-API gap stays in a narrow band (checked against API in bench).
  EXPECT_LT(d256 - d0, 90.0);
  EXPECT_LT(d1000 - d256, 260.0);
}

}  // namespace
}  // namespace scrnet::scrmpi
