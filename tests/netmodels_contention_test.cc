// Contention and edge-case tests for the baseline fabrics.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "netmodels/atm.h"
#include "netmodels/ethernet.h"
#include "netmodels/myrinet.h"
#include "netmodels/tcp.h"

namespace scrnet::netmodels {
namespace {

template <typename F>
std::vector<SimTime> arrival_times(F&& make_and_send, u32 host, u32 n) {
  sim::Simulation sim;
  auto net = make_and_send(sim);
  std::vector<SimTime> times;
  sim.spawn("rx", [&](sim::Process& p) {
    for (u32 i = 0; i < n; ++i) {
      net->rx(host).pop(p);
      times.push_back(p.now());
    }
  });
  sim.run();
  return times;
}

TEST(Contention, EthernetOutputPortSerializesTwoSenders) {
  // Hosts 0 and 1 each send a full frame to host 2 at t=0: the switch's
  // output port must serialize them one frame time apart.
  auto times = arrival_times(
      [](sim::Simulation& sim) {
        auto net = std::make_unique<EthernetFabric>(sim, 3);
        net->transmit(Frame{0, 2, std::vector<u8>(1462)});
        net->transmit(Frame{1, 2, std::vector<u8>(1462)});
        return net;
      },
      2, 2);
  const double gap = to_us(times[1] - times[0]);
  EXPECT_NEAR(gap, 120.0, 3.0);  // 1500B * 8 / 100Mb
}

TEST(Contention, MyrinetWormStallsOnBusyOutput) {
  auto times = arrival_times(
      [](sim::Simulation& sim) {
        auto net = std::make_unique<MyrinetFabric>(sim, 3);
        net->transmit(Frame{0, 2, std::vector<u8>(8000)});
        net->transmit(Frame{1, 2, std::vector<u8>(8000)});
        return net;
      },
      2, 2);
  // Second worm waits for the first's tail: gap ~ one 8016B serialization
  // at 1.28 Gb/s ~ 50us.
  const double gap = to_us(times[1] - times[0]);
  EXPECT_NEAR(gap, 50.1, 3.0);
}

TEST(Contention, AtmCellTrainsShareTheOutputLink) {
  auto times = arrival_times(
      [](sim::Simulation& sim) {
        auto net = std::make_unique<AtmFabric>(sim, 3);
        net->transmit(Frame{0, 2, std::vector<u8>(4800)});  // ~101 cells
        net->transmit(Frame{1, 2, std::vector<u8>(4800)});
        return net;
      },
      2, 2);
  const double cell_train_us = 101 * 53 * 8 / 155.52;
  EXPECT_NEAR(to_us(times[1] - times[0]), cell_train_us, 5.0);
}

TEST(Contention, DistinctDestinationsDontBlockEachOther) {
  // Host 0 sends a big frame to 1; host 2's frame to 3 must not queue
  // behind it (separate output ports).
  sim::Simulation sim;
  EthernetFabric net(sim, 4);
  net.transmit(Frame{0, 1, std::vector<u8>(1462)});
  net.transmit(Frame{2, 3, std::vector<u8>(64)});
  SimTime t_small = 0, t_big = 0;
  sim.spawn("rx1", [&](sim::Process& p) {
    net.rx(1).pop(p);
    t_big = p.now();
  });
  sim.spawn("rx3", [&](sim::Process& p) {
    net.rx(3).pop(p);
    t_small = p.now();
  });
  sim.run();
  EXPECT_LT(t_small, t_big);  // the small one never waited
}

TEST(Tcp, ZeroByteSendCarriesHeaderOnlySegment) {
  sim::Simulation sim;
  EthernetFabric net(sim, 2);
  sim.spawn("tx", [&](sim::Process& p) {
    TcpStack stack(net, 0, TcpConfig::fast_ethernet());
    stack.send(p, 1, {});
  });
  sim.spawn("rx", [&](sim::Process& p) {
    Frame f = net.rx(1).pop(p);
    EXPECT_EQ(f.payload.size(), 40u);  // TCP/IP headers, no data
  });
  sim.run();
}

TEST(Tcp, InterleavedStreamsReassembleIndependently) {
  sim::Simulation sim;
  EthernetFabric net(sim, 3);
  constexpr u32 kBytes = 6000;  // several segments each
  sim.spawn("tx1", [&](sim::Process& p) {
    TcpStack stack(net, 0, TcpConfig::fast_ethernet());
    std::vector<u8> m(kBytes);
    fill_pattern(m, 1);
    stack.send(p, 2, m);
  });
  sim.spawn("tx2", [&](sim::Process& p) {
    TcpStack stack(net, 1, TcpConfig::fast_ethernet());
    std::vector<u8> m(kBytes);
    fill_pattern(m, 2);
    stack.send(p, 2, m);
  });
  sim.spawn("rx", [&](sim::Process& p) {
    TcpStack stack(net, 2, TcpConfig::fast_ethernet());
    std::vector<u8> b1(kBytes), b2(kBytes);
    stack.recv(p, 0, b1, kBytes);
    stack.recv(p, 1, b2, kBytes);
    EXPECT_TRUE(check_pattern(b1, 1));
    EXPECT_TRUE(check_pattern(b2, 2));
  });
  sim.run();
}

TEST(Tcp, NonBlockingAbsorbThenPeekConsume) {
  sim::Simulation sim;
  EthernetFabric net(sim, 2);
  sim.spawn("tx", [&](sim::Process& p) {
    TcpStack stack(net, 0, TcpConfig::fast_ethernet());
    std::vector<u8> m(100);
    fill_pattern(m, 7);
    stack.send(p, 1, m);
  });
  sim.spawn("rx", [&](sim::Process& p) {
    TcpStack stack(net, 1, TcpConfig::fast_ethernet());
    u8 first20[20];
    while (!stack.peek(0, first20)) {
      stack.try_absorb(p);
      p.delay(us(5));
    }
    EXPECT_EQ(stack.buffered(0), 100u);
    std::vector<u8> out(100);
    stack.consume(p, 0, out, 100);
    EXPECT_TRUE(check_pattern(out, 7));
    EXPECT_EQ(stack.buffered(0), 0u);
  });
  sim.run();
}

TEST(Myrinet, BigMessageSplitsAtMtu) {
  sim::Simulation sim;
  MyrinetFabric net(sim, 2);
  sim.spawn("tx", [&](sim::Process& p) {
    MyrinetApi api(net, 0);
    std::vector<u8> m(20000);  // > 8192 MTU: 3 frames
    fill_pattern(m, 9);
    api.send(p, 1, m);
  });
  sim.spawn("rx", [&](sim::Process& p) {
    MyrinetApi api(net, 1);
    std::vector<u8> out(20000);
    api.recv(p, 0, out, 20000);
    EXPECT_TRUE(check_pattern(out, 9));
  });
  sim.run();
  EXPECT_EQ(net.frames_delivered(), 3u);
}

}  // namespace
}  // namespace scrnet::netmodels
