// Unit tests for the ADI engine against a deterministic in-memory mock
// channel device -- exercising matching-queue mechanics, the rendezvous
// state machine and envelope encoding without any network model.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "scrmpi/adi.h"

namespace scrnet::scrmpi {
namespace {

/// A pair of loopback devices sharing in-memory queues. No timing, no sim:
/// cpu() and idle_pause() are no-ops, and idle_pause asserts that progress
/// is always possible (a spin here would otherwise hang the test).
class MockFabric {
 public:
  explicit MockFabric(u32 n) : queues_(n) {}
  std::vector<std::deque<Packet>> queues_;
};

class MockDevice final : public ChannelDevice {
 public:
  MockDevice(MockFabric& fab, u32 rank, u32 size)
      : fab_(fab), rank_(rank), size_(size) {}

  u32 rank() const override { return rank_; }
  u32 size() const override { return size_; }

  Status send_packet(u32 dst, const PktHeader& hdr,
                     std::span<const u8> payload) override {
    Packet p;
    p.hdr = hdr;
    p.payload.assign(payload.begin(), payload.end());
    fab_.queues_[dst].push_back(std::move(p));
    ++sent_;
    return Status::Ok();
  }

  std::optional<Packet> poll_packet() override {
    auto& q = fab_.queues_[rank_];
    if (q.empty()) return std::nullopt;
    Packet p = std::move(q.front());
    q.pop_front();
    return p;
  }

  SimTime pack_cost(u32 len) const override { return ns(1) * len; }
  SimTime unpack_cost(u32 len) const override { return ns(1) * len; }
  void cpu(SimTime) override {}
  void idle_pause() override { ++stalls_; ASSERT_LT(stalls_, 1000) << "livelock"; }
  u32 eager_limit() const override { return 4096; }
  u32 short_limit() const override { return short_limit_; }

  u64 sent_ = 0;
  int stalls_ = 0;
  u32 short_limit_ = 1024;

 private:
  MockFabric& fab_;
  u32 rank_, size_;
};

struct Pair {
  MockFabric fab{2};
  MockDevice d0{fab, 0, 2};
  MockDevice d1{fab, 1, 2};
  Engine e0{d0};
  Engine e1{d1};
};

/// Registered put target, shared by both ends of a PutMockDevice pair (the
/// receiver reserves, the sender resolves the rkey) -- a two-line stand-in
/// for the fabric's registered-memory table.
struct MockRegion {
  std::span<u8> dest;
  bool live = false;
};

/// MockDevice plus the optional zero-copy capability: rndv_put is a direct
/// memcpy into the receiver-reserved span followed by the FIN packet. Also
/// keeps a crude clock (idle_pause advances 1 us) so op_timeout tests work.
class PutMockDevice final : public ChannelDevice {
 public:
  PutMockDevice(MockFabric& fab, std::vector<MockRegion>& regions, u32 rank,
                u32 size)
      : fab_(fab), regions_(regions), rank_(rank), size_(size) {}

  u32 rank() const override { return rank_; }
  u32 size() const override { return size_; }

  Status send_packet(u32 dst, const PktHeader& hdr,
                     std::span<const u8> payload) override {
    Packet p;
    p.hdr = hdr;
    p.payload.assign(payload.begin(), payload.end());
    fab_.queues_[dst].push_back(std::move(p));
    ++sent_;
    return Status::Ok();
  }

  std::optional<Packet> poll_packet() override {
    auto& q = fab_.queues_[rank_];
    if (q.empty()) return std::nullopt;
    Packet p = std::move(q.front());
    q.pop_front();
    return p;
  }

  SimTime pack_cost(u32 len) const override { return ns(1) * len; }
  SimTime unpack_cost(u32 len) const override { return ns(1) * len; }
  SimTime now() const override { return now_; }
  void cpu(SimTime) override {}
  void idle_pause() override { now_ += us(1); }
  u32 eager_limit() const override { return 4096; }
  u32 short_limit() const override { return 1024; }

  bool supports_put() const override { return true; }

  Result<RndvPlacement> rndv_reserve(u32 /*src*/, u32 bytes,
                                     std::span<u8> dest) override {
    if (reserve_fail_) return Status::NoSpace("mock window exhausted");
    regions_.push_back(MockRegion{dest.first(bytes), true});
    RndvPlacement pl;
    pl.bytes = bytes;
    pl.rkey = static_cast<u32>(regions_.size());
    return pl;
  }

  Status rndv_put(u32 dst, const RndvPlacement& pl,
                  std::span<const u8> payload, const PktHeader& fin_hdr,
                  std::span<const u8> fin_payload) override {
    MockRegion& r = regions_.at(pl.rkey - 1);
    if (r.live && !payload.empty()) {
      std::memcpy(r.dest.data(), payload.data(),
                  std::min(payload.size(), r.dest.size()));
    }
    if (!r.live) ++dead_puts_;
    ++puts_;
    return send_packet(dst, fin_hdr, fin_payload);
  }

  Status rndv_complete(const RndvPlacement&, std::span<u8>, u32) override {
    return Status::Ok();  // the put already landed in the posted buffer
  }

  void rndv_release(const RndvPlacement& pl) override {
    regions_.at(pl.rkey - 1).live = false;
  }

  u64 sent_ = 0;
  u64 puts_ = 0;
  u64 dead_puts_ = 0;
  bool reserve_fail_ = false;

 private:
  MockFabric& fab_;
  std::vector<MockRegion>& regions_;
  u32 rank_, size_;
  SimTime now_ = 0;
};

struct PutPair {
  MockFabric fab{2};
  std::vector<MockRegion> regions;
  PutMockDevice d0{fab, regions, 0, 2};
  PutMockDevice d1{fab, regions, 1, 2};
  Engine e0{d0};
  Engine e1{d1};
};

TEST(HeaderCodec, RoundTripsAllFields) {
  PktHeader h;
  h.kind = PktKind::kRndvCts;
  h.ctx = 0xBEEF;
  h.tag = -12345;
  h.src = 777;
  h.len = 0xDEAD;
  h.aux = 0xC0FFEE;
  u32 words[kHeaderWords];
  encode_header(h, words);
  const PktHeader r = decode_header(words);
  EXPECT_EQ(r.kind, h.kind);
  EXPECT_EQ(r.ctx, h.ctx);
  EXPECT_EQ(r.tag, h.tag);
  EXPECT_EQ(r.src, h.src);
  EXPECT_EQ(r.len, h.len);
  EXPECT_EQ(r.aux, h.aux);
}

TEST(Engine, ShortMessageMatchesPostedRecv) {
  Pair p;
  std::vector<u8> buf(8, 0);
  Request rr = p.e1.irecv(0, /*ctx=*/1, /*tag=*/5, buf);
  std::vector<u8> msg{1, 2, 3, 4};
  Request sr = p.e0.isend(1, 1, 5, msg);
  p.e0.wait(sr);
  const MpiStatus st = p.e1.wait(rr);
  EXPECT_EQ(st.count_bytes, 4u);
  EXPECT_EQ(st.tag, 5);
  EXPECT_EQ(buf[2], 3);
}

TEST(Engine, ShortEagerSplitFollowsDeviceShortLimit) {
  Pair p;
  p.d0.short_limit_ = 16;  // device with a tiny single-unit payload size
  std::vector<u8> small(8, 1), large(100, 2);
  Request s1 = p.e0.isend(1, 1, 0, small);
  Request s2 = p.e0.isend(1, 1, 1, large);
  ASSERT_EQ(p.fab.queues_[1].size(), 2u);
  EXPECT_EQ(p.fab.queues_[1][0].hdr.kind, PktKind::kShort);
  EXPECT_EQ(p.fab.queues_[1][1].hdr.kind, PktKind::kEager);  // > short_limit
  p.e0.wait(s1);
  p.e0.wait(s2);
  std::vector<u8> b1(8), b2(100);
  Request r1 = p.e1.irecv(0, 1, 0, b1);
  Request r2 = p.e1.irecv(0, 1, 1, b2);
  EXPECT_EQ(p.e1.wait(r1).count_bytes, 8u);
  EXPECT_EQ(p.e1.wait(r2).count_bytes, 100u);
  EXPECT_EQ(b2[50], 2);
}

TEST(Engine, UnexpectedMessageConsumedByLaterRecv) {
  Pair p;
  std::vector<u8> msg{9, 9};
  p.e0.wait(p.e0.isend(1, 1, 7, msg));
  // Force the packet into e1's unexpected queue.
  p.e1.progress();
  EXPECT_EQ(p.e1.unexpected_depth(), 1u);
  std::vector<u8> buf(2);
  const MpiStatus st = p.e1.wait(p.e1.irecv(0, 1, 7, buf));
  EXPECT_EQ(st.count_bytes, 2u);
  EXPECT_EQ(p.e1.unexpected_depth(), 0u);
}

TEST(Engine, ContextIsolatesIdenticalTags) {
  Pair p;
  std::vector<u8> a{1}, b{2};
  p.e0.wait(p.e0.isend(1, /*ctx=*/10, 0, a));
  p.e0.wait(p.e0.isend(1, /*ctx=*/20, 0, b));
  std::vector<u8> got_b(1), got_a(1);
  p.e1.wait(p.e1.irecv(0, 20, 0, got_b));
  p.e1.wait(p.e1.irecv(0, 10, 0, got_a));
  EXPECT_EQ(got_a[0], 1);
  EXPECT_EQ(got_b[0], 2);
}

TEST(Engine, PostedQueueMatchesInFifoOrder) {
  Pair p;
  std::vector<u8> b1(4), b2(4);
  Request r1 = p.e1.irecv(kAnySource, 1, kAnyTag, b1);
  Request r2 = p.e1.irecv(kAnySource, 1, kAnyTag, b2);
  std::vector<u8> m1{1, 0, 0, 0}, m2{2, 0, 0, 0};
  p.e0.wait(p.e0.isend(1, 1, 0, m1));
  p.e0.wait(p.e0.isend(1, 1, 0, m2));
  p.e1.wait(r1);
  p.e1.wait(r2);
  EXPECT_EQ(b1[0], 1);  // first posted gets first arrival
  EXPECT_EQ(b2[0], 2);
}

TEST(Engine, RendezvousStateMachine) {
  Pair p;
  std::vector<u8> big(10000, 0);
  fill_pattern(big, 3);
  Request sr = p.e0.isend(1, 1, 0, big);  // above the 4096 eager limit
  // RTS should be on the wire; sender incomplete.
  EXPECT_FALSE(p.e0.test(sr).has_value());
  std::vector<u8> buf(10000);
  Request rr = p.e1.irecv(0, 1, 0, buf);
  // Receiver matched the RTS and sent the CTS; pump both sides.
  p.e1.progress();
  p.e0.progress();  // sender sees CTS -> ships data
  p.e1.progress();  // receiver consumes data
  const auto st = p.e1.test(rr);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->count_bytes, 10000u);
  EXPECT_TRUE(check_pattern(buf, 3));
  EXPECT_TRUE(p.e0.test(sr).has_value());
}

TEST(Engine, ProbeSeesRndvFullLength) {
  Pair p;
  std::vector<u8> big(8192, 1);
  Request sr = p.e0.isend(1, 1, 3, big);
  p.e1.progress();  // RTS lands unexpected
  const auto st = p.e1.iprobe(0, 1, 3);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->count_bytes, 8192u);  // not the 4-byte RTS payload
  std::vector<u8> buf(8192);
  Request rr = p.e1.irecv(0, 1, 3, buf);  // grants the rendezvous (CTS out)
  p.e0.progress();                        // sender ships the data on CTS
  p.e1.wait(rr);
  p.e0.wait(sr);
}

TEST(Engine, IprobeDoesNotConsume) {
  Pair p;
  std::vector<u8> m{5};
  p.e0.wait(p.e0.isend(1, 1, 9, m));
  p.e1.progress();
  EXPECT_TRUE(p.e1.iprobe(0, 1, 9).has_value());
  EXPECT_TRUE(p.e1.iprobe(0, 1, 9).has_value());  // still there
  std::vector<u8> buf(1);
  p.e1.wait(p.e1.irecv(0, 1, 9, buf));
  EXPECT_FALSE(p.e1.iprobe(0, 1, 9).has_value());
}

TEST(Engine, RequestSlotsAreReused) {
  Pair p;
  std::vector<u8> m{1};
  std::vector<u8> buf(1);
  // Many sequential operations must not grow the request table unboundedly:
  // wait() frees slots, so the same indices recycle.
  for (int i = 0; i < 200; ++i) {
    Request rr = p.e1.irecv(0, 1, 0, buf);
    Request sr = p.e0.isend(1, 1, 0, m);
    EXPECT_LT(rr.idx, 4u);
    EXPECT_LT(sr.idx, 4u);
    p.e0.wait(sr);
    p.e1.wait(rr);
  }
}

TEST(Engine, WildcardTagAndSourceTakeFirstMatch) {
  MockFabric fab(3);
  MockDevice d0(fab, 0, 3), d1(fab, 1, 3), d2(fab, 2, 3);
  Engine e0(d0), e1(d1), e2(d2);
  std::vector<u8> a{10}, b{20};
  e0.wait(e0.isend(2, 1, 100, a));
  e1.wait(e1.isend(2, 1, 200, b));
  std::vector<u8> buf(1);
  const MpiStatus st = e2.wait(e2.irecv(kAnySource, 1, kAnyTag, buf));
  EXPECT_EQ(buf[0], 10);  // arrival order: e0's packet queued first
  EXPECT_EQ(st.source, 0);
  EXPECT_EQ(st.tag, 100);
}

TEST(Engine, CollectiveTransportCountsAndReleases) {
  Pair p;
  // Barrier bookkeeping: arrivals counted per (ctx, epoch); release epochs
  // are monotonic.
  p.e0.coll_send(1, /*ctx=*/3, PktKind::kCollBarrier, /*epoch=*/1, {});
  p.e0.coll_send(1, 3, PktKind::kCollBarrier, 1, {});
  p.e1.coll_wait_arrivals(3, 1, 2);  // returns without spinning forever
  p.e1.coll_send(0, 3, PktKind::kCollRelease, 1, {});
  p.e0.coll_wait_release(3, 1);
  SUCCEED();
}

TEST(Engine, ProtocolBoundariesAreExact) {
  // The protocol switch points are inclusive: exactly short_limit() is
  // still a kShort, exactly eager_limit() is still a kEager; one byte more
  // tips each over.
  Pair p;
  const u32 sl = p.d0.short_limit_;  // 1024
  const u32 el = p.d0.eager_limit();  // 4096
  const struct {
    u32 bytes;
    PktKind kind;
  } cases[] = {{sl, PktKind::kShort},
               {sl + 1, PktKind::kEager},
               {el, PktKind::kEager},
               {el + 1, PktKind::kRndvRts}};
  i32 tag = 0;
  for (const auto& c : cases) {
    std::vector<u8> msg(c.bytes);
    fill_pattern(msg, static_cast<u32>(tag) + 1);
    Request sr = p.e0.isend(1, 1, tag, msg);
    ASSERT_FALSE(p.fab.queues_[1].empty());
    EXPECT_EQ(p.fab.queues_[1].back().hdr.kind, c.kind) << c.bytes << " bytes";
    std::vector<u8> buf(c.bytes);
    Request rr = p.e1.irecv(0, 1, tag, buf);
    std::optional<MpiStatus> st;  // test() consumes the completed request
    for (int i = 0; i < 4 && !(st = p.e1.test(rr)).has_value(); ++i) {
      p.e1.progress();
      p.e0.progress();
    }
    ASSERT_TRUE(st.has_value()) << c.bytes << " bytes";
    EXPECT_TRUE(check_pattern(buf, static_cast<u32>(tag) + 1));
    p.e0.wait(sr);
    ++tag;
  }
}

TEST(Engine, ZeroCopyRendezvousPutsStraightIntoPostedBuffer) {
  PutPair p;
  std::vector<u8> big(10000);
  fill_pattern(big, 7);
  Request sr = p.e0.isend(1, 1, 0, big);
  EXPECT_EQ(p.e0.rndv_rts(), 1u);
  std::vector<u8> buf(10000);
  Request rr = p.e1.irecv(0, 1, 0, buf);
  p.e1.progress();  // RTS -> CTS carrying the placement
  EXPECT_EQ(p.e1.rndv_cts(), 1u);
  ASSERT_EQ(p.regions.size(), 1u);
  EXPECT_TRUE(p.regions[0].live);
  p.e0.progress();  // CTS -> direct put + FIN
  EXPECT_EQ(p.e0.rndv_puts(), 1u);
  EXPECT_EQ(p.e0.zero_copy_bytes(), 10000u);
  p.e1.progress();  // FIN completes the receive
  const auto st = p.e1.test(rr);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->count_bytes, 10000u);
  EXPECT_FALSE(st->truncated);
  EXPECT_TRUE(check_pattern(buf, 7));
  EXPECT_EQ(p.e1.rndv_fins(), 1u);
  EXPECT_FALSE(p.regions[0].live);  // placement released at completion
  EXPECT_TRUE(p.e0.test(sr).has_value());
  // Only the RTS and FIN crossed as packets: the payload never rode a
  // kRndvData frame (that is the copy the protocol exists to kill).
  EXPECT_EQ(p.d0.sent_, 2u);
}

TEST(Engine, RendezvousFallsBackToCopyWhenReserveFails) {
  PutPair p;
  p.d1.reserve_fail_ = true;  // window exhausted on the receiver
  std::vector<u8> big(10000);
  fill_pattern(big, 5);
  Request sr = p.e0.isend(1, 1, 0, big);
  std::vector<u8> buf(10000);
  Request rr = p.e1.irecv(0, 1, 0, buf);
  p.e1.progress();
  p.e0.progress();
  p.e1.progress();
  const auto st = p.e1.test(rr);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->count_bytes, 10000u);
  EXPECT_TRUE(check_pattern(buf, 5));
  EXPECT_TRUE(p.e0.test(sr).has_value());
  // Copy path: no puts, no zero-copy bytes, no FIN -- and an empty
  // region table proves no placement leaked from the failed reserve.
  EXPECT_EQ(p.e0.rndv_puts(), 0u);
  EXPECT_EQ(p.e0.zero_copy_bytes(), 0u);
  EXPECT_EQ(p.e1.rndv_fins(), 0u);
  EXPECT_TRUE(p.regions.empty());
}

TEST(Engine, ZeroCopyTruncatesToPostedBuffer) {
  PutPair p;
  std::vector<u8> big(10000);
  fill_pattern(big, 9);
  Request sr = p.e0.isend(1, 1, 0, big);
  std::vector<u8> buf(4000);  // smaller than the message
  Request rr = p.e1.irecv(0, 1, 0, buf);
  p.e1.progress();
  p.e0.progress();
  p.e1.progress();
  const auto st = p.e1.test(rr);
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(st->truncated);
  // The placement (and the put) covered only the posted 4000 bytes.
  EXPECT_EQ(p.e0.zero_copy_bytes(), 4000u);
  EXPECT_TRUE(check_pattern(buf, 9));
  p.e0.wait(sr);
}

TEST(Engine, EagerCapForcesRendezvousBelowDeviceLimit) {
  MockFabric fab(2);
  std::vector<MockRegion> regions;
  PutMockDevice d0(fab, regions, 0, 2), d1(fab, regions, 1, 2);
  LayerCosts costs;
  costs.eager_cap = 64;  // device says 4096; the cap wins
  Engine e0(d0, costs), e1(d1, costs);
  EXPECT_EQ(e0.effective_eager_limit(), 64u);
  std::vector<u8> msg(100);
  fill_pattern(msg, 2);
  Request sr = e0.isend(1, 1, 0, msg);
  ASSERT_EQ(fab.queues_[1].size(), 1u);
  EXPECT_EQ(fab.queues_[1][0].hdr.kind, PktKind::kRndvRts);
  std::vector<u8> buf(100);
  Request rr = e1.irecv(0, 1, 0, buf);
  e1.progress();
  e0.progress();
  e1.progress();
  ASSERT_TRUE(e1.test(rr).has_value());
  ASSERT_TRUE(e0.test(sr).has_value());
  EXPECT_TRUE(check_pattern(buf, 2));
  EXPECT_EQ(e0.zero_copy_bytes(), 100u);
  // At the cap exactly, the message stays eager.
  std::vector<u8> small(64);
  Request s2 = e0.isend(1, 1, 1, small);
  EXPECT_EQ(fab.queues_[1].back().hdr.kind, PktKind::kShort);
  e0.wait(s2);
}

TEST(Engine, EagerCapEnvKnobAppliesWhenUnsetInCosts) {
  setenv("SCRNET_RNDV_EAGER_MAX", "128", 1);
  MockFabric fab(2);
  MockDevice d0(fab, 0, 2), d1(fab, 1, 2);
  Engine e0(d0);  // costs.eager_cap == 0 -> env knob applies
  EXPECT_EQ(e0.effective_eager_limit(), 128u);
  LayerCosts costs;
  costs.eager_cap = 256;  // explicit value beats the environment
  Engine e1(d1, costs);
  EXPECT_EQ(e1.effective_eager_limit(), 256u);
  unsetenv("SCRNET_RNDV_EAGER_MAX");
}

TEST(Engine, TimeoutMidRendezvousReleasesPlacementAndReapsLateFin) {
  MockFabric fab(2);
  std::vector<MockRegion> regions;
  PutMockDevice d0(fab, regions, 0, 2), d1(fab, regions, 1, 2);
  LayerCosts tc;
  tc.op_timeout = us(200);
  Engine e0(d0), e1(d1, tc);
  std::vector<u8> big(8192, 1);
  Request sr = e0.isend(1, 1, 0, big);
  std::vector<u8> buf(8192);
  Request rr = e1.irecv(0, 1, 0, buf);
  e1.progress();  // grants the rendezvous: placement reserved, CTS queued
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_TRUE(regions[0].live);
  fab.queues_[0].clear();  // CTS lost in flight: the put never comes
  const MpiStatus st = e1.wait(rr);
  EXPECT_EQ(st.err, StatusCode::kTimedOut);
  EXPECT_EQ(e1.op_timeouts(), 1u);
  // The placement went back to the window *before* the id was parked.
  EXPECT_FALSE(regions[0].live);
  // A late FIN naming the parked id is reaped without touching the dead
  // placement or any recycled request.
  Packet fin;
  fin.hdr.kind = PktKind::kRndvFin;
  fin.hdr.ctx = 1;
  fin.hdr.src = 0;
  fin.hdr.len = 0;
  fin.hdr.aux = rr.idx;
  fab.queues_[1].push_back(fin);
  e1.progress();
  EXPECT_EQ(e1.stale_packets(), 1u);
  EXPECT_EQ(d1.dead_puts_, 0u);
  (void)sr;  // the sender never saw the CTS; its request is abandoned here
}

TEST(Engine, CollDataMatchedInFifoOrderPerRoot) {
  Pair p;
  const u32 dst[] = {1};
  std::vector<u8> m1{1}, m2{2};
  p.e0.coll_mcast(dst, 4, PktKind::kCollData, 0, m1);
  p.e0.coll_mcast(dst, 4, PktKind::kCollData, 0, m2);
  EXPECT_EQ(p.e1.coll_wait_data(4, 0)[0], 1);
  EXPECT_EQ(p.e1.coll_wait_data(4, 0)[0], 2);
}

}  // namespace
}  // namespace scrnet::scrmpi
