// Tests for the process scheduler (fiber backend by default, hosted-thread
// backend with SCRNET_SIM_THREAD_PROCS): spawn/teardown at scale, exception
// and cancellation unwinding, report-text stability, stack-pool recycling,
// and run-twice determinism. Everything here must pass identically on both
// backends; stack-pool counter checks are fiber-only and compiled out of
// the thread fallback.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "sim/mailbox.h"
#include "sim/simulation.h"

namespace scrnet::sim {
namespace {

TEST(SimProcess, StressSpawnThousandProcesses) {
  Simulation sim;
  constexpr u32 kProcs = 1200;
  u64 total_hops = 0;
  Signal barrier(sim);
  u32 arrived = 0;
  for (u32 i = 0; i < kProcs; ++i) {
    sim.spawn("p" + std::to_string(i), [&, i](Process& p) {
      for (u32 k = 0; k < 5; ++k) p.delay(ns(10 + i % 7));
      ++total_hops;
      if (++arrived == kProcs) {
        barrier.notify_all();
      } else {
        barrier.wait(p);
      }
    });
  }
  sim.run();
  EXPECT_EQ(total_hops, kProcs);
  EXPECT_EQ(sim.live_processes(), 0u);
}

// The body throws from several frames deep; the exception must unwind the
// process stack (running destructors) and surface as ProcessError with a
// stable message.
struct DtorFlag {
  bool* flag;
  explicit DtorFlag(bool* f) : flag(f) {}
  ~DtorFlag() { *flag = true; }
};

void throw_at_depth(int n, bool* flag) {
  DtorFlag guard(flag);
  if (n == 0) throw std::runtime_error("bad thing");
  throw_at_depth(n - 1, flag);
}

TEST(SimProcess, ExceptionFromDeepFrameUnwindsAndPropagates) {
  Simulation sim;
  bool unwound = false;
  sim.spawn("boom", [&](Process& p) {
    p.delay(us(1));
    throw_at_depth(16, &unwound);
  });
  try {
    sim.run();
    FAIL() << "expected ProcessError";
  } catch (const ProcessError& e) {
    EXPECT_STREQ(e.what(), "process 'boom' failed: bad thing");
  }
  EXPECT_TRUE(unwound);
  EXPECT_EQ(sim.live_processes(), 0u);
}

// Destroying a Simulation while a process is parked must unwind that
// process's stack so RAII cleanup in the body runs (the fiber backend
// injects the same cancellation exception the thread backend uses).
TEST(SimProcess, TeardownUnwindsParkedProcessStacks) {
  bool cleaned_up = false;
  {
    Simulation sim;
    auto* sig = new Signal(sim);  // leaked on purpose: outlives the park
    sim.spawn("parked", [&cleaned_up, sig](Process& p) {
      DtorFlag guard(&cleaned_up);
      sig->wait(p);  // never notified
    });
    EXPECT_THROW(sim.run(), DeadlockError);
    EXPECT_FALSE(cleaned_up);  // still parked after the failed run
    delete sig;                // process no longer touches it once cancelled
  }
  EXPECT_TRUE(cleaned_up);
}

TEST(SimProcess, TeardownOfNeverRunProcessIsClean) {
  // Spawned but run() never called: the body must not execute at all.
  bool ran = false;
  {
    Simulation sim;
    sim.spawn("idle", [&](Process&) { ran = true; });
  }
  EXPECT_FALSE(ran);
}

TEST(SimProcess, DeadlockReportTextIsStable) {
  Simulation sim;
  Signal sig(sim);
  sim.spawn("alpha", [&](Process& p) { sig.wait(p); });
  sim.spawn("beta", [&](Process& p) { sig.wait(p); });
  try {
    sim.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_STREQ(e.what(),
                 "simulation deadlock: 2 process(es) parked with no pending "
                 "events: alpha, beta");
  }
}

TEST(SimProcess, SpawnFromRunningProcessOrdering) {
  // A child spawned mid-run is scheduled at the parent's current time but
  // behind already-queued events; the parent keeps running until it blocks.
  Simulation sim;
  std::vector<std::string> log;
  sim.spawn("parent", [&](Process& p) {
    p.delay(us(1));
    p.simulation().spawn("child", [&](Process& c) {
      log.push_back("child@" + std::to_string(c.now()));
      c.delay(us(1));
      log.push_back("child-done@" + std::to_string(c.now()));
    });
    log.push_back("parent-after-spawn@" + std::to_string(p.now()));
    p.yield();
    log.push_back("parent-after-yield@" + std::to_string(p.now()));
  });
  sim.run();
  const std::vector<std::string> want = {
      "parent-after-spawn@" + std::to_string(us(1)),
      "child@" + std::to_string(us(1)),
      "parent-after-yield@" + std::to_string(us(1)),
      "child-done@" + std::to_string(us(2)),
  };
  EXPECT_EQ(log, want);
}

#if !defined(SCRNET_SIM_THREAD_PROCS)
TEST(SimProcess, StackPoolRecyclesAcrossSequentialLifetimes) {
  // 64 processes whose lifetimes never overlap: one mmap'd stack must
  // serve all of them, every later acquire coming from the free list.
  Simulation sim;
  constexpr u32 kProcs = 64;
  u32 done = 0;
  for (u32 i = 0; i < kProcs; ++i) {
    sim.post(us(10 * (i + 1)), [&sim, &done] {
      sim.spawn("seq", [&done](Process& p) {
        p.delay(ns(100));
        ++done;
      });
    });
  }
  sim.run();
  EXPECT_EQ(done, kProcs);
  const auto st = sim.stack_stats();
  EXPECT_EQ(st.mapped, 1u);
  EXPECT_EQ(st.reused, kProcs - 1);
  EXPECT_EQ(st.live, 0u);
  EXPECT_EQ(st.pooled, 1u);
}

TEST(SimProcess, StackPoolTracksConcurrentHighWater) {
  // All processes alive at once: every one needs its own stack, and all
  // stacks return to the pool at exit.
  Simulation sim;
  constexpr u32 kProcs = 16;
  for (u32 i = 0; i < kProcs; ++i) {
    sim.spawn("c" + std::to_string(i), [](Process& p) { p.delay(us(1)); });
  }
  sim.run();
  const auto st = sim.stack_stats();
  EXPECT_EQ(st.mapped, kProcs);
  EXPECT_EQ(st.live, 0u);
  EXPECT_EQ(st.pooled, kProcs);
}

TEST(SimProcess, StackSizeKnobIsPageRoundedAndUsable) {
  SimConfig cfg;
  cfg.proc_stack_bytes = 90 * 1024;  // not page-aligned on purpose
  Simulation sim(cfg);
  EXPECT_GE(sim.proc_stack_bytes(), 90u * 1024);
  EXPECT_EQ(sim.proc_stack_bytes() % 4096, 0u);
  // Burn most of the configured stack to prove it is really there.
  u64 sum = 0;
  sim.spawn("deep", [&](Process& p) {
    p.delay(ns(1));
    volatile u8 buf[64 * 1024];
    for (u32 i = 0; i < sizeof(buf); i += 512) buf[i] = static_cast<u8>(i);
    sum += buf[0] + buf[sizeof(buf) - 512];
  });
  sim.run();
  EXPECT_EQ(sim.live_processes(), 0u);
}
#endif  // !SCRNET_SIM_THREAD_PROCS

// Run-twice determinism for the scheduler specifically (mirrors
// sim_queue_test.cc): a mixed workload of delays, signals, timeouts, and
// mid-run spawns must produce an identical timestamped trace.
std::vector<std::string> scheduler_trace() {
  Simulation sim;
  std::vector<std::string> trace;
  auto stamp = [&trace](Process& p, const char* what) {
    trace.push_back(p.name() + ":" + what + "@" + std::to_string(p.now()));
  };
  Signal sig(sim);
  Mailbox<u32> box(sim);
  sim.spawn("producer", [&](Process& p) {
    for (u32 i = 0; i < 20; ++i) {
      p.delay(ns(130 + 17 * (i % 5)));
      box.push(i);
      if (i % 3 == 0) sig.notify_one();
    }
    stamp(p, "done");
  });
  sim.spawn("consumer", [&](Process& p) {
    for (u32 i = 0; i < 20; ++i) {
      const u32 v = box.pop(p);
      if (v == 7) {
        p.simulation().spawn("late", [&](Process& q) {
          q.delay(ns(55));
          stamp(q, "fired");
        });
      }
    }
    stamp(p, "done");
  });
  sim.spawn("poller", [&](Process& p) {
    u32 hits = 0;
    while (hits < 7) {
      if (sig.wait_for(p, ns(400))) ++hits;
    }
    stamp(p, "done");
  });
  sim.run();
  return trace;
}

TEST(SimProcess, RunTwiceDeterminism) {
  const auto a = scheduler_trace();
  const auto b = scheduler_trace();
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
}

}  // namespace
}  // namespace scrnet::sim
