// DestSet: the wide destination-set type that replaced the protocol's u32
// destination bitmasks (which silently capped BBP at 32 procs). Covers the
// inline/heap boundary at rank 64, set algebra, and an end-to-end BBP
// round-trip to ranks the old mask could not address.
#include <gtest/gtest.h>

#include <vector>

#include "bbp/destset.h"
#include "harness/cluster.h"

namespace scrnet::bbp {
namespace {

std::vector<u32> members(const DestSet& s) {
  std::vector<u32> out;
  s.for_each([&](u32 r) { out.push_back(r); });
  return out;
}

TEST(DestSet, InlineHeapBoundary) {
  DestSet s;
  EXPECT_TRUE(s.empty());
  s.set(63);
  EXPECT_TRUE(s.test(63));
  EXPECT_FALSE(s.test(64));
  EXPECT_EQ(s.count(), 1u);

  s.set(64);  // first heap-word rank
  s.set(65);
  EXPECT_TRUE(s.test(64));
  EXPECT_TRUE(s.test(65));
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(members(s), (std::vector<u32>{63, 64, 65}));

  // Clearing the heap ranks must restore the all-inline representation so
  // equality with a never-spilled set still holds.
  s.clear(64);
  s.clear(65);
  EXPECT_EQ(s, DestSet::single(63));
  EXPECT_EQ(s.count(), 1u);
}

TEST(DestSet, WithinBoundaries) {
  EXPECT_TRUE(DestSet().within(0));
  EXPECT_TRUE(DestSet::single(31).within(32));
  EXPECT_FALSE(DestSet::single(32).within(32));
  EXPECT_TRUE(DestSet::single(63).within(64));
  // Word-boundary proc counts: rank 64 is out of range for a 64-proc
  // world and in range from 65 on.
  EXPECT_FALSE(DestSet::single(64).within(64));
  EXPECT_TRUE(DestSet::single(64).within(65));
  EXPECT_FALSE(DestSet::single(65).within(65));
  EXPECT_TRUE(DestSet::single(127).within(128));
  EXPECT_FALSE(DestSet::single(128).within(128));
  EXPECT_TRUE(DestSet::single(128).within(129));
  // A cleared-back-to-canonical set has no phantom high ranks.
  DestSet s = DestSet::single(200);
  s.clear(200);
  EXPECT_TRUE(s.within(1));
}

TEST(DestSet, SetAlgebra) {
  DestSet a;
  a.set(2);
  a.set(70);
  DestSet b;
  b.set(2);
  b.set(130);
  a.or_with(b);
  EXPECT_EQ(members(a), (std::vector<u32>{2, 70, 130}));
  EXPECT_EQ(a.count(), 3u);
  EXPECT_TRUE(a.within(131));
  EXPECT_FALSE(a.within(130));

  // or_with a shorter set must not truncate the longer one.
  DestSet c = DestSet::single(1);
  a.or_with(c);
  EXPECT_EQ(members(a), (std::vector<u32>{1, 2, 70, 130}));

  a.clear(130);
  a.clear(70);
  DestSet expect;
  expect.set(1);
  expect.set(2);
  EXPECT_EQ(a, expect);
}

// Regression for the old `post(u32 dest_mask, ...)` API: a 32-bit mask made
// rank 32 unaddressable and anything past 63 unrepresentable. A message to
// a high rank must round-trip, including the heap-word region (rank >= 64).
TEST(DestSetBbp, HighRankRoundTrip) {
  constexpr u32 kProcs = 72;
  constexpr u32 kFar = 70;   // heap-word rank
  constexpr u32 kMid = 33;   // first rank the u32 mask path dropped
  harness::ScramnetOptions opts;
  opts.sim_jobs = 1;
  u32 far_got = 0, mid_got = 0, echo_got = 0;
  harness::run_scramnet_bbp(
      kProcs,
      [&](sim::Process&, bbp::Endpoint& ep) {
        const u32 me = ep.rank();
        std::vector<u8> buf(8);
        if (me == 0) {
          const std::vector<u32> dests{kMid, kFar};
          const std::vector<u8> msg{1, 2, 3, 4};
          ASSERT_TRUE(ep.mcast(dests, msg).ok());
          ASSERT_TRUE(ep.recv(kFar, buf).ok());
          echo_got = buf[0];
        } else if (me == kMid) {
          ASSERT_TRUE(ep.recv(0, buf).ok());
          mid_got = buf[2];
        } else if (me == kFar) {
          ASSERT_TRUE(ep.recv(0, buf).ok());
          far_got = buf[3];
          const std::vector<u8> echo{9};
          ASSERT_TRUE(ep.send(0, echo).ok());
        }
      },
      opts);
  EXPECT_EQ(mid_got, 3u);
  EXPECT_EQ(far_got, 4u);
  EXPECT_EQ(echo_got, 9u);
}

}  // namespace
}  // namespace scrnet::bbp
