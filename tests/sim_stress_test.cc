// Stress / fuzz tests for the DES kernel: randomized workloads must be
// exactly reproducible, conservation laws must hold, and the kernel must
// survive deep event cascades and many processes.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "sim/mailbox.h"
#include "sim/simulation.h"

namespace scrnet::sim {
namespace {

/// A randomized token-passing workload: N processes, random delays and
/// random next-hop choices, all derived from one seed. Returns a digest of
/// the execution (who held the token when).
u64 run_fuzz(u64 seed, u32 procs, u32 hops) {
  Simulation sim;
  std::vector<std::unique_ptr<Mailbox<u32>>> boxes;
  for (u32 i = 0; i < procs; ++i) boxes.push_back(std::make_unique<Mailbox<u32>>(sim));
  u64 digest = 14695981039346656037ULL;
  auto mix = [&digest](u64 v) {
    digest = (digest ^ v) * 1099511628211ULL;
  };
  for (u32 i = 0; i < procs; ++i) {
    sim.spawn("p" + std::to_string(i), [&, i](Process& p) {
      Rng rng(seed * 1000 + i);
      for (;;) {
        const u32 token = boxes[i]->pop(p);
        if (token == 0) {
          // Poison: forward once around the ring so everyone terminates.
          boxes[(i + 1) % procs]->push(0);
          return;
        }
        mix(static_cast<u64>(p.now()));
        mix(i);
        p.delay(ns(static_cast<i64>(rng.below(5000)) + 1));
        const u32 next = static_cast<u32>(rng.below(procs));
        boxes[next]->push(token - 1);  // reaches 0 after `hops` moves
      }
    });
  }
  sim.post(0, [&] { boxes[0]->push(hops); });  // kick off the token
  sim.run();
  return digest;
}

TEST(SimFuzz, DeterministicAcrossRepeatedRuns) {
  for (u64 seed : {1ULL, 42ULL, 987654321ULL}) {
    const u64 a = run_fuzz(seed, 6, 200);
    const u64 b = run_fuzz(seed, 6, 200);
    EXPECT_EQ(a, b) << "seed " << seed;
  }
}

TEST(SimFuzz, DifferentSeedsDiverge) {
  EXPECT_NE(run_fuzz(7, 5, 150), run_fuzz(8, 5, 150));
}

TEST(SimStress, DeepEventCascade) {
  Simulation sim;
  u64 count = 0;
  std::function<void()> chain = [&] {
    if (++count < 200000) sim.post(ns(1), chain);
  };
  sim.post(ns(1), chain);
  sim.run();
  EXPECT_EQ(count, 200000u);
  EXPECT_EQ(sim.now(), ns(200000));
}

TEST(SimStress, ManyProcessesAllFinish) {
  Simulation sim;
  constexpr u32 kProcs = 64;
  u32 done = 0;
  for (u32 i = 0; i < kProcs; ++i) {
    sim.spawn("p" + std::to_string(i), [&, i](Process& p) {
      for (u32 k = 0; k < 20; ++k) p.delay(ns(100 + i));
      ++done;
    });
  }
  sim.run();
  EXPECT_EQ(done, kProcs);
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(SimStress, MailboxConservationUnderRandomTraffic) {
  // Tokens are conserved: everything pushed is eventually popped exactly
  // once, across many producers/consumers with random routing.
  Simulation sim;
  constexpr u32 kProcs = 8;
  constexpr u32 kTokensPerProc = 50;
  std::vector<std::unique_ptr<Mailbox<u32>>> boxes;
  for (u32 i = 0; i < kProcs; ++i)
    boxes.push_back(std::make_unique<Mailbox<u32>>(sim));
  u64 pushed = 0, popped = 0;

  for (u32 i = 0; i < kProcs; ++i) {
    sim.spawn("p" + std::to_string(i), [&, i](Process& p) {
      Rng rng(99 + i);
      // Produce.
      for (u32 k = 0; k < kTokensPerProc; ++k) {
        p.delay(ns(static_cast<i64>(rng.below(2000))));
        boxes[rng.below(kProcs)]->push(1);
        ++pushed;
      }
      // Consume whatever lands here, with a deadline.
      const SimTime deadline = p.now() + ms(5);
      while (p.now() < deadline) {
        auto v = boxes[i]->pop_for(p, us(200));
        if (v) ++popped;
      }
      // Drain leftovers non-blockingly.
      while (boxes[i]->try_pop()) ++popped;
    });
  }
  sim.run();
  EXPECT_EQ(pushed, kProcs * kTokensPerProc);
  EXPECT_EQ(popped, pushed);
}

}  // namespace
}  // namespace scrnet::sim
