// Tests for the hybrid SCRAMNet+bulk-network channel (paper Section 7).
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"
#include "harness/cluster.h"

namespace scrnet::scrmpi {
namespace {

using harness::run_hybrid_mpi;
using harness::TcpFabricKind;

constexpr u32 kThreshold = 2048;

TEST(Hybrid, SmallAndLargeMessagesBothDeliver) {
  run_hybrid_mpi(2, TcpFabricKind::kMyrinet, kThreshold,
                 [](sim::Process&, Mpi& mpi) {
                   const Comm& w = mpi.world();
                   if (mpi.rank(w) == 0) {
                     std::vector<u8> small(64), large(32 * 1024);
                     fill_pattern(small, 1);
                     fill_pattern(large, 2);
                     mpi.send(small.data(), 64, Datatype::kByte, 1, 0, w);
                     mpi.send(large.data(), 32 * 1024, Datatype::kByte, 1, 0, w);
                   } else {
                     std::vector<u8> small(64), large(32 * 1024);
                     mpi.recv(small.data(), 64, Datatype::kByte, 0, 0, w);
                     mpi.recv(large.data(), 32 * 1024, Datatype::kByte, 0, 0, w);
                     EXPECT_TRUE(check_pattern(small, 1));
                     EXPECT_TRUE(check_pattern(large, 2));
                   }
                 });
}

TEST(Hybrid, CrossNetworkOrderingPreserved) {
  // Alternate small (SCRAMNet) and large (Myrinet) messages with the same
  // tag; MPI matching is FIFO per (src,tag), so delivery must stay in send
  // order even though the big ones take a different wire.
  run_hybrid_mpi(2, TcpFabricKind::kMyrinet, kThreshold,
                 [](sim::Process&, Mpi& mpi) {
                   const Comm& w = mpi.world();
                   constexpr int kN = 12;
                   if (mpi.rank(w) == 0) {
                     for (int i = 0; i < kN; ++i) {
                       const u32 n = (i % 2 == 0) ? 16u : 8000u;
                       std::vector<u8> msg(n);
                       fill_pattern(msg, static_cast<u32>(i));
                       mpi.send(msg.data(), n, Datatype::kByte, 1, 5, w);
                     }
                   } else {
                     for (int i = 0; i < kN; ++i) {
                       const u32 n = (i % 2 == 0) ? 16u : 8000u;
                       std::vector<u8> buf(n);
                       MpiStatus st =
                           mpi.recv(buf.data(), n, Datatype::kByte, 0, 5, w);
                       ASSERT_EQ(st.count_bytes, n)
                           << "message " << i << " out of order across networks";
                       ASSERT_TRUE(check_pattern(buf, static_cast<u32>(i)));
                     }
                   }
                 });
}

TEST(Hybrid, CollectivesStayOnScramnet) {
  run_hybrid_mpi(4, TcpFabricKind::kMyrinet, kThreshold,
                 [](sim::Process&, Mpi& mpi) {
                   mpi.set_bcast_algo(CollAlgo::kNativeMcast);
                   mpi.set_barrier_algo(CollAlgo::kNativeMcast);
                   const Comm& w = mpi.world();
                   std::vector<u8> buf(256);
                   if (mpi.rank(w) == 0) fill_pattern(buf, 9);
                   mpi.bcast(buf.data(), 256, Datatype::kByte, 0, w);
                   EXPECT_TRUE(check_pattern(buf, 9));
                   mpi.barrier(w);
                 });
}

TEST(Hybrid, LatencyTracksScramnetForSmall) {
  auto oneway = [](u32 bytes) {
    SimTime t0 = 0, t1 = 0;
    run_hybrid_mpi(2, TcpFabricKind::kMyrinet, kThreshold,
                   [&](sim::Process& p, Mpi& mpi) {
                     const Comm& w = mpi.world();
                     std::vector<u8> buf(std::max<u32>(bytes, 1));
                     if (mpi.rank(w) == 0) {
                       t0 = p.now();
                       mpi.send(buf.data(), bytes, Datatype::kByte, 1, 0, w);
                     } else {
                       mpi.recv(buf.data(), bytes, Datatype::kByte, 0, 0, w);
                       t1 = p.now();
                     }
                   });
    return to_us(t1 - t0);
  };
  // Small messages: near SCRAMNet-MPI latency (well under Myrinet TCP's).
  EXPECT_LT(oneway(4), 60.0);
  // Large messages: near Myrinet speed -- far faster than SCRAMNet's ring
  // (64 KB over 16.7 MB/s would be ~3900 us).
  EXPECT_LT(oneway(64 * 1024), 2600.0);
}

TEST(Hybrid, TrafficSplitMatchesThreshold) {
  // Count which device carried what via a hand-built pair of ranks.
  sim::Simulation sim;
  scramnet::Ring ring(sim, scramnet::RingConfig{});
  netmodels::MyrinetFabric fabric(sim, 2);
  u64 low = 0, high = 0;
  for (u32 r = 0; r < 2; ++r) {
    sim.spawn("rank" + std::to_string(r), [&, r](sim::Process& p) {
      scramnet::SimHostPort port(ring, r, p);
      bbp::Endpoint ep(port, 2, r);
      BbpChannel lowdev(ep);
      netmodels::TcpStack stack(fabric, r, netmodels::TcpConfig::myrinet());
      SockChannel highdev(stack, p, 2);
      HybridChannel dev(lowdev, highdev, kThreshold);
      Mpi mpi(dev);
      const Comm& w = mpi.world();
      if (r == 0) {
        std::vector<u8> msg(16 * 1024);
        for (int i = 0; i < 3; ++i)
          mpi.send(msg.data(), 100, Datatype::kByte, 1, 0, w);
        for (int i = 0; i < 2; ++i)
          mpi.send(msg.data(), 16 * 1024, Datatype::kByte, 1, 0, w);
        low = dev.low_packets();
        high = dev.high_packets();
      } else {
        std::vector<u8> buf(16 * 1024);
        for (int i = 0; i < 3; ++i)
          mpi.recv(buf.data(), 100, Datatype::kByte, 0, 0, w);
        for (int i = 0; i < 2; ++i)
          mpi.recv(buf.data(), 16 * 1024, Datatype::kByte, 0, 0, w);
      }
    });
  }
  sim.run();
  EXPECT_EQ(low, 3u);
  EXPECT_EQ(high, 2u);
}

TEST(Hybrid, FuzzRandomSizesAcrossThreshold) {
  // Random message sizes straddling the split point, same tag, both
  // directions concurrently: strict per-(src,tag) FIFO and bit-exact
  // payloads must survive the dual-rail split.
  constexpr int kMsgs = 60;
  run_hybrid_mpi(2, TcpFabricKind::kMyrinet, kThreshold,
                 [](sim::Process&, Mpi& mpi) {
                   const Comm& w = mpi.world();
                   const u32 me = static_cast<u32>(mpi.rank(w));
                   const u32 peer = 1 - me;
                   // Both sides derive the identical size plan per sender.
                   auto size_of = [](u32 sender, int i) {
                     Rng rng(sender * 7919u + static_cast<u32>(i));
                     return 1u + static_cast<u32>(rng.below(3 * kThreshold));
                   };
                   std::vector<Request> sends;
                   std::vector<std::vector<u8>> outs(kMsgs);
                   for (int i = 0; i < kMsgs; ++i) {
                     outs[static_cast<usize>(i)].resize(size_of(me, i));
                     fill_pattern(outs[static_cast<usize>(i)],
                                  me * 1000 + static_cast<u32>(i));
                     sends.push_back(mpi.isend(outs[static_cast<usize>(i)].data(),
                                               size_of(me, i), Datatype::kByte,
                                               static_cast<i32>(peer), 3, w));
                   }
                   for (int i = 0; i < kMsgs; ++i) {
                     const u32 n = size_of(peer, i);
                     std::vector<u8> buf(n);
                     MpiStatus st = mpi.recv(buf.data(), n, Datatype::kByte,
                                             static_cast<i32>(peer), 3, w);
                     ASSERT_EQ(st.count_bytes, n) << "order broken at " << i;
                     ASSERT_TRUE(check_pattern(buf, peer * 1000 + static_cast<u32>(i)));
                   }
                   mpi.waitall(sends, w);
                 });
}

}  // namespace
}  // namespace scrnet::scrmpi
