// Tests for the extended MPI surface: waitany, alltoall and call stats.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "harness/cluster.h"

namespace scrnet::scrmpi {
namespace {

using harness::run_scramnet_mpi;

TEST(MpiExt, WaitanyReturnsFirstCompletion) {
  run_scramnet_mpi(3, [](sim::Process& p, Mpi& mpi) {
    const Comm& w = mpi.world();
    const i32 me = mpi.rank(w);
    if (me == 0) {
      // Post receives from both peers; rank 2 sends much later, so the
      // rank-1 request must complete first via waitany.
      i32 a = 0, b = 0;
      std::vector<Request> rs;
      rs.push_back(mpi.irecv(&a, 1, Datatype::kInt32, 1, 0, w));
      rs.push_back(mpi.irecv(&b, 1, Datatype::kInt32, 2, 0, w));
      auto [idx1, st1] = mpi.waitany(rs, w);
      EXPECT_EQ(idx1, 0u);
      EXPECT_EQ(st1.source, 1);
      EXPECT_FALSE(rs[0].valid());
      auto [idx2, st2] = mpi.waitany(rs, w);
      EXPECT_EQ(idx2, 1u);
      EXPECT_EQ(st2.source, 2);
      EXPECT_EQ(a, 100);
      EXPECT_EQ(b, 200);
    } else if (me == 1) {
      const i32 v = 100;
      mpi.send(&v, 1, Datatype::kInt32, 0, 0, w);
    } else {
      p.delay(ms(2));
      const i32 v = 200;
      mpi.send(&v, 1, Datatype::kInt32, 0, 0, w);
    }
  });
}

TEST(MpiExt, AlltoallPersonalizedExchange) {
  run_scramnet_mpi(4, [](sim::Process&, Mpi& mpi) {
    const Comm& w = mpi.world();
    const u32 me = static_cast<u32>(mpi.rank(w));
    // Block (me -> j) carries value me*100 + j.
    std::vector<u32> in(4), out(4, 0xFFFFFFFFu);
    for (u32 j = 0; j < 4; ++j) in[j] = me * 100 + j;
    mpi.alltoall(in.data(), out.data(), 1, Datatype::kUint32, w);
    for (u32 j = 0; j < 4; ++j) EXPECT_EQ(out[j], j * 100 + me);
  });
}

TEST(MpiExt, AlltoallMultiElementBlocks) {
  run_scramnet_mpi(3, [](sim::Process&, Mpi& mpi) {
    const Comm& w = mpi.world();
    const u32 me = static_cast<u32>(mpi.rank(w));
    constexpr u32 kBlock = 16;
    std::vector<u8> in(3 * kBlock), out(3 * kBlock);
    for (u32 j = 0; j < 3; ++j)
      fill_pattern(std::span<u8>(in.data() + j * kBlock, kBlock), me * 10 + j);
    mpi.alltoall(in.data(), out.data(), kBlock, Datatype::kByte, w);
    for (u32 j = 0; j < 3; ++j) {
      EXPECT_TRUE(check_pattern(
          std::span<const u8>(out.data() + j * kBlock, kBlock), j * 10 + me));
    }
  });
}

TEST(MpiExt, CallStatsAccumulate) {
  run_scramnet_mpi(2, [](sim::Process&, Mpi& mpi) {
    const Comm& w = mpi.world();
    const i32 me = mpi.rank(w);
    std::vector<u8> buf(64);
    for (int i = 0; i < 3; ++i) {
      if (me == 0)
        mpi.send(buf.data(), 64, Datatype::kByte, 1, 0, w);
      else
        mpi.recv(buf.data(), 64, Datatype::kByte, 0, 0, w);
    }
    mpi.barrier(w);
    u32 v = 0;
    mpi.bcast(&v, 1, Datatype::kUint32, 0, w);
    const CallStats& st = mpi.stats();
    if (me == 0) {
      EXPECT_EQ(st.sends, 3u);
      EXPECT_EQ(st.bytes_sent, 192u);
    } else {
      EXPECT_EQ(st.recvs, 3u);
      EXPECT_EQ(st.bytes_received, 192u);
    }
    EXPECT_EQ(st.barriers, 1u);
    EXPECT_EQ(st.bcasts, 1u);
    EXPECT_GT(st.time_in_mpi, 0);
  });
}

TEST(MpiExt, TimeInMpiReflectsBlocking) {
  run_scramnet_mpi(2, [](sim::Process& p, Mpi& mpi) {
    const Comm& w = mpi.world();
    if (mpi.rank(w) == 0) {
      p.delay(ms(1));  // keep the receiver blocked ~1ms
      u8 b = 1;
      mpi.send(&b, 1, Datatype::kByte, 1, 0, w);
    } else {
      u8 b = 0;
      mpi.recv(&b, 1, Datatype::kByte, 0, 0, w);
      // The receiver spent ~1ms inside MPI_Recv.
      EXPECT_GT(mpi.stats().time_in_mpi, us(900));
    }
  });
}

class AllreduceAlgoTest
    : public ::testing::TestWithParam<std::tuple<u32 /*nodes*/, u32 /*count*/>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllreduceAlgoTest,
    ::testing::Combine(::testing::Values(2u, 3u, 4u, 5u, 8u),
                       ::testing::Values(1u, 7u, 64u)),
    [](const auto& ti) {
      return "n" + std::to_string(std::get<0>(ti.param)) + "_c" +
             std::to_string(std::get<1>(ti.param));
    });

TEST_P(AllreduceAlgoTest, RecursiveDoublingMatchesReduceBcast) {
  const auto [nodes, count] = GetParam();
  run_scramnet_mpi(nodes, [count = count](sim::Process&, Mpi& mpi) {
    const Comm& w = mpi.world();
    const i32 me = mpi.rank(w);
    std::vector<i64> in(count), a(count), b(count);
    for (u32 i = 0; i < count; ++i)
      in[i] = (me + 1) * 100 + static_cast<i64>(i);
    mpi.set_allreduce_algo(Mpi::AllreduceAlgo::kReduceBcast);
    mpi.allreduce(in.data(), a.data(), count, Datatype::kInt64, ReduceOp::kSum, w);
    mpi.set_allreduce_algo(Mpi::AllreduceAlgo::kRecursiveDoubling);
    mpi.allreduce(in.data(), b.data(), count, Datatype::kInt64, ReduceOp::kSum, w);
    EXPECT_EQ(a, b);
    // Closed form: sum over ranks r of (r+1)*100 + i.
    const i64 base = 100LL * (static_cast<i64>(mpi.size(w)) *
                              (static_cast<i64>(mpi.size(w)) + 1) / 2);
    for (u32 i = 0; i < count; ++i)
      EXPECT_EQ(a[i], base + static_cast<i64>(i) * static_cast<i64>(mpi.size(w)));
  });
}

TEST(MpiExt, RecursiveDoublingMaxOnNonPowerOfTwo) {
  run_scramnet_mpi(6, [](sim::Process&, Mpi& mpi) {
    mpi.set_allreduce_algo(Mpi::AllreduceAlgo::kRecursiveDoubling);
    const Comm& w = mpi.world();
    const double mine = 2.5 * (mpi.rank(w) + 1);
    double out = 0;
    mpi.allreduce(&mine, &out, 1, Datatype::kDouble, ReduceOp::kMax, w);
    EXPECT_DOUBLE_EQ(out, 15.0);
  });
}

}  // namespace
}  // namespace scrnet::scrmpi
