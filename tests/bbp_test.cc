// Tests for the BillBoard Protocol, on both the discrete-event SCRAMNet
// model and the real-threads replicated-memory backends.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "bbp/api.h"
#include "bbp/endpoint.h"
#include "common/bytes.h"
#include "scramnet/ring.h"
#include "scramnet/sim_port.h"
#include "scramnet/thread_backend.h"

namespace scrnet::bbp {
namespace {

using scramnet::Ring;
using scramnet::RingConfig;
using scramnet::SimHostPort;

/// Spin up a simulated BBP session: one process per rank, each body getting
/// (process, endpoint).
class SimSession {
 public:
  explicit SimSession(u32 procs, Config cfg = {}, RingConfig rcfg = {}) {
    rcfg.nodes = procs;
    ring_ = std::make_unique<Ring>(sim_, rcfg);
    bodies_.resize(procs);
    cfg_ = cfg;
  }

  void rank(u32 r, std::function<void(sim::Process&, Endpoint&)> body) {
    bodies_[r] = std::move(body);
  }

  void run() {
    for (u32 r = 0; r < bodies_.size(); ++r) {
      if (!bodies_[r]) continue;
      sim_.spawn("rank" + std::to_string(r), [this, r](sim::Process& p) {
        SimHostPort port(*ring_, r, p);
        Endpoint ep(port, static_cast<u32>(bodies_.size()), r, cfg_);
        bodies_[r](p, ep);
      });
    }
    sim_.run();
  }

  sim::Simulation& sim() { return sim_; }

 private:
  sim::Simulation sim_;
  std::unique_ptr<Ring> ring_;
  std::vector<std::function<void(sim::Process&, Endpoint&)>> bodies_;
  Config cfg_;
};

std::vector<u8> make_msg(usize n, u32 seed) {
  std::vector<u8> v(n);
  fill_pattern(v, seed);
  return v;
}

TEST(Bbp, PointToPointDeliversPayload) {
  SimSession s(2);
  const auto msg = make_msg(100, 7);
  s.rank(0, [&](sim::Process&, Endpoint& ep) { ASSERT_TRUE(ep.send(1, msg).ok()); });
  s.rank(1, [&](sim::Process&, Endpoint& ep) {
    std::vector<u8> buf(128);
    auto r = ep.recv(0, buf);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().src, 0u);
    EXPECT_EQ(r.value().len, 100u);
    EXPECT_EQ(r.value().copied, 100u);
    EXPECT_FALSE(r.value().truncated);
    EXPECT_TRUE(check_pattern(std::span<const u8>(buf.data(), 100), 7));
  });
  s.run();
}

TEST(Bbp, ZeroByteMessage) {
  SimSession s(2);
  s.rank(0, [&](sim::Process&, Endpoint& ep) { ASSERT_TRUE(ep.send(1, {}).ok()); });
  s.rank(1, [&](sim::Process&, Endpoint& ep) {
    std::vector<u8> buf(8);
    auto r = ep.recv(0, buf);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().len, 0u);
    EXPECT_EQ(r.value().copied, 0u);
  });
  s.run();
}

TEST(Bbp, FourByteLatencyNearPaperValue) {
  // Paper: 4-byte one-way latency 7.8 us; 0-byte 6.5 us. Allow a band.
  SimSession s(2);
  SimTime sent_at = 0, recvd_at = 0;
  const auto msg = make_msg(4, 3);
  s.rank(0, [&](sim::Process& p, Endpoint& ep) {
    sent_at = p.now();
    ASSERT_TRUE(ep.send(1, msg).ok());
  });
  s.rank(1, [&](sim::Process& p, Endpoint& ep) {
    std::vector<u8> buf(4);
    ASSERT_TRUE(ep.recv(0, buf).ok());
    recvd_at = p.now();
  });
  s.run();
  const double oneway_us = to_us(recvd_at - sent_at);
  EXPECT_GT(oneway_us, 5.0);
  EXPECT_LT(oneway_us, 11.0);
}

TEST(Bbp, InOrderDeliveryFromOneSender) {
  SimSession s(2);
  constexpr int kN = 100;
  s.rank(0, [&](sim::Process&, Endpoint& ep) {
    for (int i = 0; i < kN; ++i) {
      u32 v = static_cast<u32>(i);
      ASSERT_TRUE(ep.send(1, std::span<const u8>(reinterpret_cast<u8*>(&v), 4)).ok());
    }
    ep.drain();
  });
  s.rank(1, [&](sim::Process&, Endpoint& ep) {
    for (int i = 0; i < kN; ++i) {
      u32 v = 0;
      auto r = ep.recv(0, std::span<u8>(reinterpret_cast<u8*>(&v), 4));
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(v, static_cast<u32>(i)) << "out-of-order delivery";
    }
  });
  s.run();
}

TEST(Bbp, McastReachesAllDestinations) {
  SimSession s(4);
  const auto msg = make_msg(64, 11);
  s.rank(0, [&](sim::Process&, Endpoint& ep) {
    const u32 dests[] = {1, 2, 3};
    ASSERT_TRUE(ep.mcast(dests, msg).ok());
    ep.drain();
    EXPECT_EQ(ep.stats().mcasts, 1u);
  });
  for (u32 r = 1; r < 4; ++r) {
    s.rank(r, [&](sim::Process&, Endpoint& ep) {
      std::vector<u8> buf(64);
      auto res = ep.recv(0, buf);
      ASSERT_TRUE(res.ok());
      EXPECT_TRUE(check_pattern(buf, 11));
    });
  }
  s.run();
}

TEST(Bbp, McastSlotFreedOnlyAfterAllAcks) {
  Config cfg;
  cfg.slots = 2;  // tiny: forces reuse pressure
  SimSession s(3, cfg);
  s.rank(0, [&](sim::Process&, Endpoint& ep) {
    const u32 dests[] = {1, 2};
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(ep.mcast(dests, make_msg(32, static_cast<u32>(i))).ok());
    }
    ep.drain();
    EXPECT_EQ(ep.inflight(), 0u);
  });
  for (u32 r = 1; r < 3; ++r) {
    s.rank(r, [&](sim::Process& p, Endpoint& ep) {
      // Rank 2 delays to stagger acks.
      if (ep.rank() == 2) p.delay(us(50));
      std::vector<u8> buf(32);
      for (int i = 0; i < 10; ++i) {
        auto res = ep.recv(0, buf);
        ASSERT_TRUE(res.ok());
        EXPECT_TRUE(check_pattern(buf, static_cast<u32>(i)));
      }
    });
  }
  s.run();
}

TEST(Bbp, RecvAnyPicksUpBothSenders) {
  SimSession s(3);
  s.rank(0, [&](sim::Process&, Endpoint& ep) { ASSERT_TRUE(ep.send(2, make_msg(8, 1)).ok()); });
  s.rank(1, [&](sim::Process& p, Endpoint& ep) {
    p.delay(us(30));
    ASSERT_TRUE(ep.send(2, make_msg(8, 2)).ok());
  });
  s.rank(2, [&](sim::Process&, Endpoint& ep) {
    std::vector<u8> buf(8);
    u32 seen_mask = 0;
    for (int i = 0; i < 2; ++i) {
      auto r = ep.recv_any(buf);
      ASSERT_TRUE(r.ok());
      EXPECT_TRUE(check_pattern(buf, r.value().src == 0 ? 1u : 2u));
      seen_mask |= 1u << r.value().src;
    }
    EXPECT_EQ(seen_mask, 0b11u);
  });
  s.run();
}

TEST(Bbp, MsgAvailAndPeek) {
  SimSession s(2);
  s.rank(0, [&](sim::Process&, Endpoint& ep) { ASSERT_TRUE(ep.send(1, make_msg(24, 5)).ok()); });
  s.rank(1, [&](sim::Process& p, Endpoint& ep) {
    EXPECT_FALSE(ep.msg_avail_from(0));  // nothing yet at t=0... (almost surely)
    p.delay(us(50));                     // let the message propagate
    EXPECT_TRUE(ep.msg_avail_from(0));
    auto src = ep.msg_avail();
    ASSERT_TRUE(src.has_value());
    EXPECT_EQ(*src, 0u);
    auto len = ep.peek_len(0);
    ASSERT_TRUE(len.has_value());
    EXPECT_EQ(*len, 24u);
    std::vector<u8> buf(24);
    ASSERT_TRUE(ep.recv(0, buf).ok());
    EXPECT_FALSE(ep.msg_avail().has_value());
  });
  s.run();
}

TEST(Bbp, TruncatedReceiveReportsFullLength) {
  SimSession s(2);
  s.rank(0, [&](sim::Process&, Endpoint& ep) { ASSERT_TRUE(ep.send(1, make_msg(100, 9)).ok()); });
  s.rank(1, [&](sim::Process&, Endpoint& ep) {
    std::vector<u8> buf(10);
    auto r = ep.recv(0, buf);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().truncated);
    EXPECT_EQ(r.value().len, 100u);
    EXPECT_EQ(r.value().copied, 10u);
    EXPECT_TRUE(check_pattern(std::span<const u8>(buf.data(), 10), 9));
  });
  s.run();
}

TEST(Bbp, TrySendReportsNoSpaceWhenReceiverStalls) {
  Config cfg;
  cfg.slots = 4;
  SimSession s(2, cfg);
  s.rank(0, [&](sim::Process&, Endpoint& ep) {
    // Fill all 4 slots; 5th must fail (receiver never acks yet).
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(ep.try_send(1, make_msg(16, 1)).ok());
    auto st = ep.try_send(1, make_msg(16, 1));
    EXPECT_EQ(st.code(), StatusCode::kNoSpace);
    EXPECT_EQ(ep.inflight(), 4u);
  });
  s.rank(1, [&](sim::Process& p, Endpoint& ep) {
    p.delay(us(200));
    std::vector<u8> buf(16);
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(ep.recv(0, buf).ok());
  });
  s.run();
}

TEST(Bbp, BlockingSendUnblocksAfterGc) {
  Config cfg;
  cfg.slots = 2;
  SimSession s(2, cfg);
  int sent = 0;
  s.rank(0, [&](sim::Process&, Endpoint& ep) {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(ep.send(1, make_msg(16, static_cast<u32>(i))).ok());
      ++sent;
    }
    ep.drain();
    EXPECT_GT(ep.stats().gc_runs, 0u);
    EXPECT_GT(ep.stats().send_stalls, 0u);
  });
  s.rank(1, [&](sim::Process& p, Endpoint& ep) {
    std::vector<u8> buf(16);
    for (int i = 0; i < 8; ++i) {
      p.delay(us(20));  // slow consumer forces sender stalls
      ASSERT_TRUE(ep.recv(0, buf).ok());
      EXPECT_TRUE(check_pattern(buf, static_cast<u32>(i)));
    }
  });
  s.run();
  EXPECT_EQ(sent, 8);
}

TEST(Bbp, DataPartitionExhaustionTriggersGc) {
  Config cfg;
  cfg.slots = 32;
  RingConfig rcfg;
  rcfg.bank_words = 2048;  // tiny banks: ~1KB data partition per process
  SimSession s(2, cfg, rcfg);
  s.rank(0, [&](sim::Process&, Endpoint& ep) {
    const u32 cap = ep.layout().max_message_bytes();
    ASSERT_GE(cap, 512u);
    // Messages of ~1/3 capacity: the 4th send must wait for GC.
    for (int i = 0; i < 6; ++i)
      ASSERT_TRUE(ep.send(1, make_msg(cap / 3, static_cast<u32>(i))).ok());
    ep.drain();
  });
  s.rank(1, [&](sim::Process& p, Endpoint& ep) {
    std::vector<u8> buf(4096);
    for (int i = 0; i < 6; ++i) {
      p.delay(us(30));
      auto r = ep.recv(0, buf);
      ASSERT_TRUE(r.ok());
      EXPECT_TRUE(check_pattern(std::span<const u8>(buf.data(), r.value().len),
                                static_cast<u32>(i)));
    }
  });
  s.run();
}

TEST(Bbp, SelfSendWorks) {
  SimSession s(2);
  s.rank(0, [&](sim::Process&, Endpoint& ep) {
    ASSERT_TRUE(ep.send(0, make_msg(12, 4)).ok());
    std::vector<u8> buf(12);
    auto r = ep.recv(0, buf);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(check_pattern(buf, 4));
  });
  s.run();
}

TEST(Bbp, OversizeMessageRejected) {
  SimSession s(2);
  s.rank(0, [&](sim::Process&, Endpoint& ep) {
    std::vector<u8> huge(ep.layout().max_message_bytes() + 4);
    EXPECT_EQ(ep.send(1, huge).code(), StatusCode::kInvalidArg);
  });
  s.run();
}

TEST(Bbp, BadRanksRejected) {
  SimSession s(2);
  s.rank(0, [&](sim::Process&, Endpoint& ep) {
    EXPECT_EQ(ep.send(9, make_msg(4, 1)).code(), StatusCode::kInvalidArg);
    const u32 dests[] = {0u, 7u};
    EXPECT_EQ(ep.mcast(dests, make_msg(4, 1)).code(), StatusCode::kInvalidArg);
  });
  s.run();
}

// Regression: with procs == 32 the destination-mask range check used to
// compute dest_mask >> 32 -- undefined behavior that on x86 keeps the mask
// unchanged, so EVERY send at the layout's maximum process count failed
// with InvalidArg.
TEST(Bbp, ThirtyTwoProcsCanSendAndMcast) {
  constexpr u32 kProcs = 32;
  SimSession s(kProcs, {}, RingConfig{.bank_words = 1u << 15});
  s.rank(0, [&](sim::Process&, Endpoint& ep) {
    std::vector<u32> all(kProcs - 1);
    for (u32 r = 1; r < kProcs; ++r) all[r - 1] = r;
    ASSERT_TRUE(ep.mcast(all, make_msg(16, 5)).ok());
    std::vector<u8> buf(16);
    auto r = ep.recv(kProcs - 1, buf);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(check_pattern(buf, 6));
    ep.drain();
  });
  for (u32 r = 1; r < kProcs; ++r) {
    s.rank(r, [&, r](sim::Process&, Endpoint& ep) {
      std::vector<u8> buf(16);
      ASSERT_TRUE(ep.recv(0, buf).ok());
      EXPECT_TRUE(check_pattern(buf, 5));
      if (r == kProcs - 1) ASSERT_TRUE(ep.send(0, make_msg(16, 6)).ok());
      ep.drain();
    });
  }
  s.sim().set_time_limit(ms(50));  // fail (not hang) if a send is rejected
  s.run();
}

// Regression: a zero-length message left live at the front of the queue
// used to alias tail_ onto head_ (with data_empty_ == false), which reads
// as a FULL data partition -- later sends reported NoSpace with the
// billboard actually empty.
TEST(Bbp, ZeroLengthLiveSlotDoesNotCorruptAllocator) {
  SimSession s(2, {}, RingConfig{.bank_words = 1u << 14});
  s.rank(0, [&](sim::Process& p, Endpoint& ep) {
    const u32 max_bytes = ep.layout().max_message_bytes();
    ASSERT_TRUE(ep.send(1, make_msg(64, 1)).ok());  // payload-bearing
    ASSERT_TRUE(ep.send(1, {}).ok());               // zero-length
    // Wait until the first send is acked (receiver consumes it promptly)
    // while the zero-length one is still live.
    p.delay(us(200));
    // The data partition holds no payload now; a maximum-size message must
    // fit. Pre-fix this returned NoSpace.
    ASSERT_TRUE(ep.try_send(1, make_msg(max_bytes, 2)).ok());
    ep.drain();
  });
  s.rank(1, [&](sim::Process& p, Endpoint& ep) {
    const u32 max_bytes = ep.layout().max_message_bytes();
    std::vector<u8> buf(max_bytes);
    auto a = ep.recv(0, buf);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a.value().len, 64u);
    p.delay(us(400));  // hold the zero-length message in flight meanwhile
    auto b = ep.recv(0, buf);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(b.value().len, 0u);
    auto c = ep.recv(0, buf);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(c.value().len, max_bytes);
    EXPECT_TRUE(check_pattern(buf, 2));
  });
  s.sim().set_time_limit(ms(50));  // fail (not hang) if the big send is lost
  s.run();
}

TEST(Bbp, PaperApiVeneer) {
  sim::Simulation sim;
  Ring ring(sim, RingConfig{.nodes = 2, .bank_words = 4096});
  sim.spawn("rank0", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p);
    Bbp bbp;
    ASSERT_TRUE(bbp.init(port, 2, 0).ok());
    EXPECT_FALSE(bbp.init(port, 2, 0).ok());  // double init rejected
    const auto msg = make_msg(16, 2);
    ASSERT_TRUE(bbp.Send(1, msg).ok());
  });
  sim.spawn("rank1", [&](sim::Process& p) {
    SimHostPort port(ring, 1, p);
    Bbp bbp;
    ASSERT_TRUE(bbp.init(port, 2, 1).ok());
    p.delay(us(30));
    EXPECT_TRUE(bbp.MsgAvail());
    std::vector<u8> buf(16);
    auto r = bbp.Recv(0, buf);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(check_pattern(buf, 2));
  });
  sim.run();
}

TEST(Bbp, UninitializedApiReturnsUnavailable) {
  Bbp bbp;
  std::vector<u8> buf(4);
  EXPECT_EQ(bbp.Send(0, buf).code(), StatusCode::kUnavailable);
  EXPECT_FALSE(bbp.MsgAvail());
}

// ---------------------------------------------------------------------------
// Real-thread backends: the protocol logic must be correct under true
// concurrency, not just under the deterministic simulator.
// ---------------------------------------------------------------------------

template <typename Backend, typename Port>
void run_threaded_pingpong() {
  Backend backend(2, 1u << 16);
  constexpr int kIters = 200;
  std::thread t0([&] {
    Port port(backend, 0);
    Endpoint ep(port, 2, 0);
    std::vector<u8> buf(64);
    for (int i = 0; i < kIters; ++i) {
      ASSERT_TRUE(ep.send(1, make_msg(64, static_cast<u32>(i))).ok());
      auto r = ep.recv(1, buf);
      ASSERT_TRUE(r.ok());
      ASSERT_TRUE(check_pattern(buf, static_cast<u32>(i) ^ 0xFFu));
    }
    ep.drain();
  });
  std::thread t1([&] {
    Port port(backend, 1);
    Endpoint ep(port, 2, 1);
    std::vector<u8> buf(64);
    for (int i = 0; i < kIters; ++i) {
      auto r = ep.recv(0, buf);
      ASSERT_TRUE(r.ok());
      ASSERT_TRUE(check_pattern(buf, static_cast<u32>(i)));
      ASSERT_TRUE(ep.send(0, make_msg(64, static_cast<u32>(i) ^ 0xFFu)).ok());
    }
    ep.drain();
  });
  t0.join();
  t1.join();
}

TEST(BbpThreads, PingPongOnImmediateBackend) {
  run_threaded_pingpong<scramnet::ThreadBackend, scramnet::ThreadPort>();
}

TEST(BbpThreads, PingPongOnDelayedBackend) {
  run_threaded_pingpong<scramnet::DelayedThreadBackend, scramnet::DelayedThreadPort>();
}

TEST(BbpThreads, ManyToOneStress) {
  scramnet::DelayedThreadBackend backend(4, 1u << 16);
  constexpr int kPerSender = 300;
  std::vector<std::thread> senders;
  for (u32 s = 1; s < 4; ++s) {
    senders.emplace_back([&backend, s] {
      scramnet::DelayedThreadPort port(backend, s);
      Endpoint ep(port, 4, s);
      for (int i = 0; i < kPerSender; ++i) {
        u32 v = (s << 24) | static_cast<u32>(i);
        ASSERT_TRUE(ep.send(0, std::span<const u8>(reinterpret_cast<u8*>(&v), 4)).ok());
      }
      ep.drain();
    });
  }
  std::vector<u32> next(4, 0);
  {
    scramnet::DelayedThreadPort port(backend, 0);
    Endpoint ep(port, 4, 0);
    std::vector<u8> buf(4);
    for (int n = 0; n < 3 * kPerSender; ++n) {
      auto r = ep.recv_any(buf);
      ASSERT_TRUE(r.ok());
      u32 v;
      std::memcpy(&v, buf.data(), 4);
      const u32 s = v >> 24;
      const u32 i = v & 0xFFFFFF;
      EXPECT_EQ(s, r.value().src);
      EXPECT_EQ(i, next[s]) << "per-sender FIFO violated";
      next[s] = i + 1;
    }
  }
  for (auto& t : senders) t.join();
  for (u32 s = 1; s < 4; ++s) EXPECT_EQ(next[s], kPerSender);
}

TEST(BbpThreads, McastFanoutOnDelayedBackend) {
  scramnet::DelayedThreadBackend backend(4, 1u << 16);
  constexpr int kMsgs = 100;
  std::thread root([&] {
    scramnet::DelayedThreadPort port(backend, 0);
    Endpoint ep(port, 4, 0);
    const u32 dests[] = {1, 2, 3};
    for (int i = 0; i < kMsgs; ++i)
      ASSERT_TRUE(ep.mcast(dests, make_msg(32, static_cast<u32>(i))).ok());
    ep.drain();
  });
  std::vector<std::thread> leaves;
  std::atomic<int> ok_count{0};
  for (u32 r = 1; r < 4; ++r) {
    leaves.emplace_back([&backend, &ok_count, r] {
      scramnet::DelayedThreadPort port(backend, r);
      Endpoint ep(port, 4, r);
      std::vector<u8> buf(32);
      for (int i = 0; i < kMsgs; ++i) {
        auto res = ep.recv(0, buf);
        ASSERT_TRUE(res.ok());
        ASSERT_TRUE(check_pattern(buf, static_cast<u32>(i)));
      }
      ok_count.fetch_add(1);
    });
  }
  root.join();
  for (auto& t : leaves) t.join();
  EXPECT_EQ(ok_count.load(), 3);
}

}  // namespace
}  // namespace scrnet::bbp
