// Tests for the SCRAMNet ring device model.
#include <gtest/gtest.h>

#include <vector>

#include "scramnet/ring.h"
#include "scramnet/sim_port.h"

namespace scrnet::scramnet {
namespace {

RingConfig small_ring(u32 nodes = 4) {
  RingConfig cfg;
  cfg.nodes = nodes;
  cfg.bank_words = 4096;
  return cfg;
}

TEST(Ring, LocalWriteVisibleImmediately) {
  sim::Simulation sim;
  Ring ring(sim, small_ring());
  ring.host_write(0, 100, 0xDEADBEEF);
  EXPECT_EQ(ring.host_read(0, 100), 0xDEADBEEFu);
  // Remote copy not yet updated.
  EXPECT_EQ(ring.host_read(1, 100), 0u);
}

TEST(Ring, WriteReflectsToAllNodesAfterPropagation) {
  sim::Simulation sim;
  Ring ring(sim, small_ring());
  ring.host_write(0, 7, 42);
  sim.run();
  for (u32 n = 0; n < 4; ++n) EXPECT_EQ(ring.host_read(n, 7), 42u) << "node " << n;
}

TEST(Ring, PropagationTimingMatchesHopLatency) {
  sim::Simulation sim;
  RingConfig cfg = small_ring();
  cfg.hop_latency = ns(400);
  Ring ring(sim, cfg);
  ring.host_write(0, 7, 42);
  const SimTime occ = cfg.packet_occupancy(4);
  // Neighbor (1 hop): not yet visible just before occ + hop, visible after.
  sim.run_until(occ + ns(399));
  EXPECT_EQ(ring.host_read(1, 7), 0u);
  sim.run_until(occ + ns(400));
  EXPECT_EQ(ring.host_read(1, 7), 42u);
  // Farthest node (3 hops).
  EXPECT_EQ(ring.host_read(3, 7), 0u);
  sim.run_until(occ + ns(1200));
  EXPECT_EQ(ring.host_read(3, 7), 42u);
}

TEST(Ring, PerSenderFifoOrderPreserved) {
  sim::Simulation sim;
  Ring ring(sim, small_ring());
  // Writes to two addresses in order: data then flag. At any point where a
  // remote node sees the flag, it must also see the data.
  ring.host_write(0, 10, 111);
  ring.host_write(0, 11, 222);
  bool checked = false;
  // Sample remote node 2 at every event boundary via a polling process.
  sim.spawn("checker", [&](sim::Process& p) {
    for (int i = 0; i < 100; ++i) {
      p.delay(ns(50));
      if (ring.host_read(2, 11) == 222u) {
        EXPECT_EQ(ring.host_read(2, 10), 111u) << "flag visible before data";
        checked = true;
        return;
      }
    }
  });
  sim.run();
  EXPECT_TRUE(checked);
}

TEST(Ring, FixedModeOccupancyMatchesDataSheet) {
  RingConfig cfg = small_ring();
  cfg.mode = PacketMode::kFixed4;
  // 4 bytes at 6.5 MB/s = 615.38 ns.
  const SimTime occ = cfg.packet_occupancy(4);
  EXPECT_NEAR(to_ns(occ), 615.4, 0.1);
}

TEST(Ring, VariableModeOccupancyMatchesDataSheet) {
  RingConfig cfg = small_ring();
  cfg.mode = PacketMode::kVariable;
  // 1024 bytes at 16.7 MB/s = 61.3 us plus per-packet overhead.
  const SimTime occ = cfg.packet_occupancy(1024);
  EXPECT_NEAR(to_us(occ), 1024.0 / 16.7 + to_us(cfg.per_packet_overhead), 0.05);
}

TEST(Ring, FixedModeSplitsBlocksIntoWordPackets) {
  sim::Simulation sim;
  RingConfig cfg = small_ring();
  cfg.mode = PacketMode::kFixed4;
  Ring ring(sim, cfg);
  const std::vector<u32> data{1, 2, 3, 4, 5};
  ring.host_write_block(0, 20, data, ns(240));
  sim.run();
  EXPECT_EQ(ring.packets_sent(), 5u);
  for (u32 i = 0; i < 5; ++i) EXPECT_EQ(ring.host_read(3, 20 + i), data[i]);
}

TEST(Ring, VariableModeCoalescesBlocks) {
  sim::Simulation sim;
  RingConfig cfg = small_ring();
  cfg.mode = PacketMode::kVariable;
  cfg.max_var_packet_bytes = 64;  // 16 words per packet
  Ring ring(sim, cfg);
  std::vector<u32> data(40);
  for (u32 i = 0; i < 40; ++i) data[i] = i * 3 + 1;
  ring.host_write_block(0, 100, data, ns(240));
  sim.run();
  EXPECT_EQ(ring.packets_sent(), 3u);  // 16 + 16 + 8 words
  for (u32 i = 0; i < 40; ++i) EXPECT_EQ(ring.host_read(2, 100 + i), data[i]);
}

TEST(Ring, SingleSenderThroughputBoundedByMode) {
  sim::Simulation sim;
  RingConfig cfg = small_ring();
  cfg.mode = PacketMode::kVariable;
  cfg.bank_words = 1u << 15;
  Ring ring(sim, cfg);
  // Stream 64 KB as fast as the host can push (word_period 0 = instant).
  std::vector<u32> data(16384, 0xAB);
  ring.host_write_block(0, 0, data, 0);
  sim.run();
  const double secs = static_cast<double>(sim.now()) / 1e12;
  const double mbps = 65536.0 / 1e6 / secs;
  // Should be close to but not exceed 16.7 MB/s.
  EXPECT_LE(mbps, 16.8);
  EXPECT_GE(mbps, 15.0);
}

TEST(Ring, SharedMediumArbitratesBetweenSenders) {
  sim::Simulation sim;
  RingConfig cfg = small_ring();
  cfg.mode = PacketMode::kVariable;
  cfg.bank_words = 1u << 15;
  Ring ring(sim, cfg);
  std::vector<u32> data(8192, 1);  // 32 KB each
  ring.host_write_block(0, 0, data, 0);
  ring.host_write_block(1, 2000, data, 0);
  sim.run();
  const double secs = static_cast<double>(sim.now()) / 1e12;
  const double aggregate_mbps = 2 * 32768.0 / 1e6 / secs;
  EXPECT_LE(aggregate_mbps, 16.8);  // both share the ring
}

TEST(Ring, InterruptFiresOnNetworkDeliveryInRange) {
  sim::Simulation sim;
  Ring ring(sim, small_ring());
  std::vector<u32> fired;
  ring.set_interrupt(2, 50, 60, [&](u32 addr) { fired.push_back(addr); });
  ring.host_write(0, 55, 1);   // in range
  ring.host_write(0, 61, 2);   // out of range
  ring.host_write(2, 55, 3);   // local write at node 2: no interrupt there
  sim.run();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 55u);
  EXPECT_EQ(ring.interrupts_fired(), 1u);
}

TEST(Ring, NonCoherenceDifferentNodesMayDisagreeTransiently) {
  sim::Simulation sim;
  Ring ring(sim, small_ring());
  // Nodes 0 and 2 write the same word "concurrently". With ring delivery,
  // intermediate nodes see them in different orders; final state is
  // whichever packet arrives last at each bank -- banks may end up
  // different, which is exactly the non-coherence the paper warns about.
  ring.host_write(0, 99, 0xAAAA);
  ring.host_write(2, 99, 0xBBBB);
  sim.run();
  const u32 v1 = ring.host_read(1, 99);
  const u32 v3 = ring.host_read(3, 99);
  EXPECT_TRUE(v1 == 0xAAAA || v1 == 0xBBBB);
  EXPECT_TRUE(v3 == 0xAAAA || v3 == 0xBBBB);
}

TEST(SimHostPort, TimedWriteAndRead) {
  sim::Simulation sim;
  Ring ring(sim, small_ring());
  HostTimings t;
  sim.spawn("host0", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p, t);
    const SimTime t0 = p.now();
    port.write_u32(5, 77);
    EXPECT_EQ(p.now() - t0, t.pio_write);
    const SimTime t1 = p.now();
    const u32 v = port.read_u32(5);
    EXPECT_EQ(v, 77u);
    EXPECT_EQ(p.now() - t1, t.pio_read);
  });
  sim.run();
}

TEST(SimHostPort, BurstTimingsScaleWithLength) {
  sim::Simulation sim;
  Ring ring(sim, small_ring());
  HostTimings t;
  sim.spawn("host0", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p, t);
    std::vector<u32> data(10, 3);
    const SimTime t0 = p.now();
    port.write_block(200, data);
    EXPECT_EQ(p.now() - t0, t.pio_write + 9 * t.burst_write_word);
    const SimTime t1 = p.now();
    std::vector<u32> out(10);
    port.read_block(200, out);
    EXPECT_EQ(p.now() - t1, t.pio_read + 9 * t.burst_read_word);
    EXPECT_EQ(out, data);
  });
  sim.run();
}

TEST(SimHostPort, CrossNodeMessage) {
  sim::Simulation sim;
  Ring ring(sim, small_ring());
  bool got = false;
  sim.spawn("writer", [&](sim::Process& p) {
    SimHostPort port(ring, 0, p);
    port.write_u32(300, 123);
    port.write_u32(301, 1);  // flag
  });
  sim.spawn("poller", [&](sim::Process& p) {
    SimHostPort port(ring, 3, p);
    while (port.read_u32(301) == 0) port.poll_pause();
    EXPECT_EQ(port.read_u32(300), 123u);
    got = true;
  });
  sim.run();
  EXPECT_TRUE(got);
}

}  // namespace
}  // namespace scrnet::scramnet
