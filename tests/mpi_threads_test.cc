// The full MPI stack over *real threads*: BbpChannel on the
// DelayedThreadBackend (asynchronous replication, true concurrency). This
// validates that nothing in scrmpi depends on the deterministic simulator.
#include <gtest/gtest.h>

#include <thread>

#include "common/bytes.h"
#include "scramnet/thread_backend.h"
#include "scrmpi/ch_bbp.h"
#include "scrmpi/mpi.h"

namespace scrnet::scrmpi {
namespace {

/// Run `body(mpi, rank)` on `n` OS threads over a shared replicated-memory
/// backend.
template <typename Backend, typename Port>
void run_threads(u32 n, const std::function<void(Mpi&, u32)>& body) {
  Backend backend(n, 1u << 16);
  std::vector<std::thread> threads;
  for (u32 r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      Port port(backend, r);
      bbp::Endpoint ep(port, n, r);
      BbpChannel dev(ep);
      Mpi mpi(dev);
      body(mpi, r);
    });
  }
  for (auto& t : threads) t.join();
}

using DelayedRun = std::pair<scramnet::DelayedThreadBackend, scramnet::DelayedThreadPort>;

TEST(MpiThreads, PingPongOnDelayedBackend) {
  run_threads<scramnet::DelayedThreadBackend, scramnet::DelayedThreadPort>(
      2, [](Mpi& mpi, u32 r) {
        const Comm& w = mpi.world();
        std::vector<u8> buf(256);
        for (int i = 0; i < 50; ++i) {
          if (r == 0) {
            std::vector<u8> msg(256);
            fill_pattern(msg, static_cast<u32>(i));
            mpi.send(msg.data(), 256, Datatype::kByte, 1, i, w);
            MpiStatus st = mpi.recv(buf.data(), 256, Datatype::kByte, 1, i, w);
            EXPECT_EQ(st.tag, i);
            EXPECT_TRUE(check_pattern(buf, static_cast<u32>(i) ^ 0x55u));
          } else {
            mpi.recv(buf.data(), 256, Datatype::kByte, 0, i, w);
            EXPECT_TRUE(check_pattern(buf, static_cast<u32>(i)));
            std::vector<u8> msg(256);
            fill_pattern(msg, static_cast<u32>(i) ^ 0x55u);
            mpi.send(msg.data(), 256, Datatype::kByte, 0, i, w);
          }
        }
      });
}

TEST(MpiThreads, CollectivesOnImmediateBackend) {
  run_threads<scramnet::ThreadBackend, scramnet::ThreadPort>(
      4, [](Mpi& mpi, u32 r) {
        const Comm& w = mpi.world();
        mpi.set_bcast_algo(CollAlgo::kNativeMcast);
        mpi.set_barrier_algo(CollAlgo::kNativeMcast);
        for (u32 round = 0; round < 10; ++round) {
          u32 v = (r == 0) ? round * 7 + 1 : 0u;
          mpi.bcast(&v, 1, Datatype::kUint32, 0, w);
          EXPECT_EQ(v, round * 7 + 1);
          i32 sum = 0;
          const i32 mine = static_cast<i32>(r) + 1;
          mpi.allreduce(&mine, &sum, 1, Datatype::kInt32, ReduceOp::kSum, w);
          EXPECT_EQ(sum, 10);
          mpi.barrier(w);
        }
      });
}

TEST(MpiThreads, ManyToOneWildcardsUnderRealConcurrency) {
  run_threads<scramnet::DelayedThreadBackend, scramnet::DelayedThreadPort>(
      4, [](Mpi& mpi, u32 r) {
        const Comm& w = mpi.world();
        constexpr int kPer = 60;
        if (r == 0) {
          std::vector<int> counts(4, 0);
          i64 sum = 0;
          for (int i = 0; i < 3 * kPer; ++i) {
            i64 v = 0;
            MpiStatus st =
                mpi.recv(&v, 1, Datatype::kInt64, kAnySource, kAnyTag, w);
            ++counts[static_cast<usize>(st.source)];
            sum += v;
          }
          EXPECT_EQ(counts[1], kPer);
          EXPECT_EQ(counts[2], kPer);
          EXPECT_EQ(counts[3], kPer);
          // sum over s in {1,2,3}, i in [0,kPer): s*1000 + i
          const i64 expect = 3LL * (kPer * (kPer - 1) / 2) + 1000LL * kPer * 6;
          EXPECT_EQ(sum, expect);
        } else {
          for (int i = 0; i < kPer; ++i) {
            const i64 v = static_cast<i64>(r) * 1000 + i;
            mpi.send(&v, 1, Datatype::kInt64, 0, static_cast<i32>(r), w);
          }
        }
      });
}

}  // namespace
}  // namespace scrnet::scrmpi
