// Tests for the common utility layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "common/bytes.h"
#include "common/chart.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table.h"
#include "common/types.h"
#include "common/units.h"

namespace scrnet {
namespace {

TEST(Types, WordMath) {
  EXPECT_EQ(words_for_bytes(0), 0u);
  EXPECT_EQ(words_for_bytes(1), 1u);
  EXPECT_EQ(words_for_bytes(4), 1u);
  EXPECT_EQ(words_for_bytes(5), 2u);
  EXPECT_EQ(words_for_bytes(1024), 256u);
  EXPECT_EQ(align_up(5, 4), 8u);
  EXPECT_EQ(align_up(8, 4), 8u);
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(8, 2), 4);
}

TEST(Units, Conversions) {
  EXPECT_EQ(us(1), 1'000'000);
  EXPECT_EQ(ns(1000), us(1));
  EXPECT_DOUBLE_EQ(to_us(us(250)), 250.0);
  // 6.5 MB/s -> 4 bytes in ~615 ns.
  EXPECT_NEAR(to_ns(transfer_time(4, 6.5)), 615.4, 0.1);
  // 100 Mb/s -> 1000 bits in 10 us.
  EXPECT_NEAR(to_us(wire_time_bits(1000, 100.0)), 10.0, 1e-9);
}

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status s = Status::NoSpace("partition full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNoSpace);
  EXPECT_EQ(s.to_string(), "NO_SPACE: partition full");
  EXPECT_EQ(Status::Truncated(), Status::Truncated("other msg"));  // code equality
}

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_TRUE(ok.status().ok());

  Result<int> err(Status::NotFound());
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(err.value_or(7), 7);
}

TEST(Rng, DeterministicAndSeedSensitive) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 10; ++i)
    if (a2() != c()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Rng r(7);
  std::vector<u32> buckets(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const u64 v = r.below(10);
    ASSERT_LT(v, 10u);
    ++buckets[v];
  }
  for (u32 b : buckets) {
    EXPECT_GT(b, kN / 10 * 0.9);
    EXPECT_LT(b, kN / 10 * 1.1);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(99);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Stats, WelfordMatchesClosedForm) {
  RunningStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_NEAR(s.variance(), 841.666, 0.01);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 100.0);
}

TEST(Stats, SamplesPercentiles) {
  Samples s;
  for (int i = 100; i >= 1; --i) s.add(i);  // unsorted insert
  EXPECT_DOUBLE_EQ(s.median(), 50.5);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.01);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(LogHistogram, BucketRoundTripAndMonotonicity) {
  // lower_bound(bucket_of(v)) <= v, and the low 16 values are exact.
  for (u64 v = 0; v < LogHistogram::kSub; ++v) {
    EXPECT_EQ(LogHistogram::lower_bound(LogHistogram::bucket_of(v)), v);
  }
  for (u64 v : {u64{17}, u64{100}, u64{1000}, u64{123456}, u64{1} << 40,
                (u64{1} << 40) + 12345, ~u64{0}}) {
    const u32 b = LogHistogram::bucket_of(v);
    EXPECT_LT(b, LogHistogram::kBuckets);
    EXPECT_LE(LogHistogram::lower_bound(b), v);
    // The next bucket starts strictly above this one's lower bound.
    if (b + 1 < LogHistogram::kBuckets) {
      EXPECT_GT(LogHistogram::lower_bound(b + 1), LogHistogram::lower_bound(b));
    }
  }
}

TEST(LogHistogram, PercentilesOnKnownData) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile_permille(500), 0u);  // empty -> 0
  EXPECT_EQ(h.max(), 0u);
  // 1000 samples: 990 at 10, 9 at 1000, 1 at 8000.
  for (int i = 0; i < 990; ++i) h.add(10);
  for (int i = 0; i < 9; ++i) h.add(1000);
  h.add(8000);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.percentile_permille(500), 10u);
  EXPECT_EQ(h.percentile_permille(990), 10u);
  // p99.9 lands on the 999th sample: value 1000, reported as its bucket's
  // lower bound (within one sub-bucket, i.e. 1/16 of an octave, below).
  const u64 p999 = h.percentile_permille(999);
  EXPECT_LE(p999, 1000u);
  EXPECT_GT(p999, 1000u - (1000u >> LogHistogram::kSubBits) - 1);
  EXPECT_EQ(h.max(), 8000u);
}

TEST(LogHistogram, MergeMatchesCombinedStream) {
  LogHistogram a, b, all;
  for (u64 v = 1; v <= 500; ++v) {
    (v % 2 ? a : b).add(v * 7);
    all.add(v * 7);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.max(), all.max());
  for (u32 pm : {500u, 990u, 999u}) {
    EXPECT_EQ(a.percentile_permille(pm), all.percentile_permille(pm));
  }
}

TEST(Bytes, PackUnpackRoundTrip) {
  for (usize n : {0u, 1u, 3u, 4u, 5u, 100u, 1023u}) {
    std::vector<u8> in(n);
    fill_pattern(in, static_cast<u32>(n));
    const auto words = pack_words(in);
    EXPECT_EQ(words.size(), words_for_bytes(static_cast<u32>(n)));
    const auto out = unpack_bytes(words, n);
    EXPECT_EQ(in, out);
  }
}

TEST(Bytes, PatternCheckCatchesCorruption) {
  std::vector<u8> buf(64);
  fill_pattern(buf, 5);
  EXPECT_TRUE(check_pattern(buf, 5));
  EXPECT_FALSE(check_pattern(buf, 6));
  buf[33] ^= 1;
  EXPECT_FALSE(check_pattern(buf, 5));
}

TEST(Chart, RendersSeriesAndLegend) {
  AsciiChart c("test chart", "x", "y", 40, 10);
  c.add_series("up", 'U', {0, 10, 20}, {1, 5, 9});
  c.add_series("down", 'D', {0, 10, 20}, {9, 5, 1});
  std::ostringstream os;
  c.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("test chart"), std::string::npos);
  EXPECT_NE(out.find('U'), std::string::npos);
  EXPECT_NE(out.find('D'), std::string::npos);
  EXPECT_NE(out.find("U = up"), std::string::npos);
  // 11 grid rows + frame lines.
  EXPECT_GT(std::count(out.begin(), out.end(), '\n'), 12);
}

TEST(Chart, EmptyAndDegenerateInputsAreSafe) {
  std::ostringstream os;
  AsciiChart empty("e", "x", "y");
  empty.print(os);                       // no series: prints nothing
  EXPECT_TRUE(os.str().empty());
  AsciiChart flat("f", "x", "y", 20, 5);
  flat.add_series("s", 'S', {5}, {0});   // single point, zero range
  flat.print(os);
  EXPECT_NE(os.str().find('S'), std::string::npos);
}

TEST(Table, AlignedAndCsvOutput) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::num(1.5)});
  t.add_row({"b", "22"});
  std::ostringstream txt, csv;
  t.print(txt);
  t.print_csv(csv);
  EXPECT_NE(txt.str().find("alpha"), std::string::npos);
  EXPECT_NE(txt.str().find("|"), std::string::npos);
  EXPECT_EQ(csv.str(), "name,value\nalpha,1.50\nb,22\n");
}

}  // namespace
}  // namespace scrnet
