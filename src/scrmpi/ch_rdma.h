// ch_rdma: MPICH over an RDMA-capable NIC (netmodels/rdma.h) -- the
// MPICH2-over-InfiniBand design from PAPERS.md (arXiv cs/0310059) on the
// simulated testbed.
//
// Eager packets ride the two-sided frame path (one frame per packet, a
// staging copy into the NIC bounce buffer -- the classic channel cost).
// Rendezvous payloads skip all of it: the receiver registers its posted
// buffer (rndv_reserve), the sender's NIC DMAs the bytes straight into it
// (rndv_put) and the FIN frame follows the CQE, so by the time the ADI
// completes the request the data is already in user memory and
// rndv_complete costs one CQ poll.
#pragma once

#include "netmodels/rdma.h"
#include "scrmpi/channel.h"
#include "sim/simulation.h"

namespace scrnet::scrmpi {

class RdmaChannel final : public ChannelDevice {
 public:
  /// One channel per rank; `proc` is the simulated process running the
  /// rank and the channel's world rank equals its fabric host id.
  RdmaChannel(netmodels::RdmaFabric& fabric, sim::Process& proc, u32 host,
              u32 size, SimTime poll_gap = ns(500))
      : fabric_(fabric), proc_(proc), host_(host), size_(size),
        poll_gap_(poll_gap) {}

  std::string_view kind() const override { return "rdma"; }
  u32 rank() const override { return host_; }
  u32 size() const override { return size_; }

  Status send_packet(u32 dst, const PktHeader& hdr,
                     std::span<const u8> payload) override;
  std::optional<Packet> poll_packet() override;

  /// Eager path stages payload into the pinned bounce buffer (send) and
  /// copies out of the rx ring (recv) -- the copies rendezvous eliminates.
  SimTime pack_cost(u32 len) const override { return ns(10) * len; }
  SimTime unpack_cost(u32 len) const override { return ns(10) * len; }

  SimTime now() const override { return proc_.now(); }
  void cpu(SimTime dt) override { proc_.delay(dt); }
  void idle_pause() override { proc_.delay(poll_gap_); }

  /// One packet = one frame: envelope + payload must fit the wire MTU.
  u32 eager_limit() const override {
    return fabric_.mtu_payload() - kHeaderBytes;
  }
  u32 short_limit() const override { return eager_limit(); }

  // Zero-copy rendezvous: registration-based placement, NIC-executed put,
  // FIN sent only after the sender's CQE (data provably delivered).
  bool supports_put() const override { return true; }
  Result<RndvPlacement> rndv_reserve(u32 src, u32 bytes,
                                     std::span<u8> dest) override;
  Status rndv_put(u32 dst, const RndvPlacement& placement,
                  std::span<const u8> payload, const PktHeader& fin_hdr,
                  std::span<const u8> fin_payload) override;
  Status rndv_complete(const RndvPlacement& placement, std::span<u8> buf,
                       u32 len) override;
  void rndv_release(const RndvPlacement& placement) override;

  netmodels::RdmaFabric& fabric() { return fabric_; }

 private:
  netmodels::RdmaFabric& fabric_;
  sim::Process& proc_;
  u32 host_;
  u32 size_;
  SimTime poll_gap_;
  u64 next_wr_ = 1;
};

}  // namespace scrnet::scrmpi
