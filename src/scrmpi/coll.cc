#include "scrmpi/coll.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace scrnet::scrmpi::coll {

// ---------------------------------------------------------------------------
// Context: point-to-point through the binding-cost path
// ---------------------------------------------------------------------------

void Ctx::send(u32 dst, i32 tag, std::span<const u8> data) {
  eng.device().cpu(eng.costs().binding);
  eng.wait(eng.isend(comm.world_of(dst), comm.coll_ctx(), tag, data));
}

void Ctx::recv(u32 src, i32 tag, std::span<u8> buf) {
  eng.device().cpu(eng.costs().binding);
  eng.wait(eng.irecv(static_cast<i32>(comm.world_of(src)), comm.coll_ctx(),
                     tag, buf));
}

void Ctx::sendrecv(u32 dst, std::span<const u8> sdata, u32 src,
                   std::span<u8> rbuf, i32 tag) {
  eng.device().cpu(eng.costs().binding);
  Request rr =
      eng.irecv(static_cast<i32>(comm.world_of(src)), comm.coll_ctx(), tag, rbuf);
  Request sr = eng.isend(comm.world_of(dst), comm.coll_ctx(), tag, sdata);
  eng.wait(rr);
  eng.wait(sr);
}

// ---------------------------------------------------------------------------
// Broadcast
// ---------------------------------------------------------------------------

void bcast_binomial(Ctx& c, u8* buf, u32 bytes, u32 root) {
  const u32 np = c.np;
  const u32 rel = (c.me - root + np) % np;

  // Receive from the parent (clear the lowest set bit of rel), then
  // forward to the subtree leads.
  u32 mask = 1;
  while (mask < np) {
    if (rel & mask) {
      c.recv((rel - mask + root) % np, tag::kBcast, {buf, bytes});
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < np)
      c.send((rel + mask + root) % np, tag::kBcast, {buf, bytes});
    mask >>= 1;
  }
}

void bcast_scatter_allgather(Ctx& c, u8* buf, u32 bytes, u32 root) {
  const u32 np = c.np;
  if (np == 1 || bytes == 0) return;
  const u32 rel = (c.me - root + np) % np;
  // Relative rank i owns segment [i*seg, min((i+1)*seg, bytes)); the tail
  // segments can be short or empty when bytes < np*seg.
  const u32 seg = (bytes + np - 1) / np;
  const auto off = [&](u32 i) {
    return static_cast<u32>(
        std::min<u64>(bytes, static_cast<u64>(i) * seg));
  };
  const auto real = [&](u32 r) { return (r + root) % np; };

  // Phase 1: binomial scatter. A rank receives its whole subtree's span
  // from its parent, then halves it toward the leaves. Empty spans (tail
  // ranks) are skipped on both sides -- each side derives the same sizes.
  u32 mask = 1;
  while (mask < np) {
    if (rel & mask) {
      const u32 lo = off(rel), hi = off(std::min(np, rel + mask));
      if (hi > lo)
        c.recv(real(rel - mask), tag::kBcast, {buf + lo, hi - lo});
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < np) {
      const u32 child = rel + mask;
      const u32 lo = off(child), hi = off(std::min(np, child + mask));
      if (hi > lo) c.send(real(child), tag::kBcast, {buf + lo, hi - lo});
    }
    mask >>= 1;
  }

  // Phase 2: ring allgather of the np segments over relative ranks. Step s
  // passes segment (rel - s) right while segment (rel - s - 1) arrives
  // from the left; zero-size segments skip the transfer symmetrically.
  const u32 right = real(rel + 1), left = real(rel + np - 1);
  for (u32 s = 0; s + 1 < np; ++s) {
    const u32 sb = (rel + np - s) % np;
    const u32 rb = (rel + np - s - 1) % np;
    const u32 s0 = off(sb), s1 = off(sb + 1);
    const u32 r0 = off(rb), r1 = off(rb + 1);
    if (s1 > s0 && r1 > r0)
      c.sendrecv(right, {buf + s0, s1 - s0}, left, {buf + r0, r1 - r0},
                 tag::kBcast);
    else if (s1 > s0)
      c.send(right, tag::kBcast, {buf + s0, s1 - s0});
    else if (r1 > r0)
      c.recv(left, tag::kBcast, {buf + r0, r1 - r0});
  }
}

void bcast_ring(Ctx& c, u8* buf, u32 bytes, u32 root) {
  const u32 np = c.np;
  if (np == 1) return;
  const u32 rel = (c.me - root + np) % np;
  if (rel != 0) c.recv((rel - 1 + root) % np, tag::kBcast, {buf, bytes});
  if (rel != np - 1) c.send((rel + 1 + root) % np, tag::kBcast, {buf, bytes});
}

void bcast_chain(Ctx& c, u8* buf, u32 bytes, u32 root) {
  const u32 np = c.np;
  if (np == 1) return;
  const u32 rel = (c.me - root + np) % np;
  const u32 prev = (rel - 1 + root) % np, next = (rel + 1 + root) % np;
  // Forward each segment as soon as it lands; the upstream hop is already
  // pushing the next one, so segments overlap along the chain.
  for (u32 lo = 0; lo < bytes || (bytes == 0 && lo == 0);
       lo += kChainSegmentBytes) {
    const u32 n = std::min(kChainSegmentBytes, bytes - lo);
    if (rel != 0) c.recv(prev, tag::kBcast, {buf + lo, n});
    if (rel != np - 1) c.send(next, tag::kBcast, {buf + lo, n});
    if (bytes == 0) break;
  }
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

void barrier_combine_release(Ctx& c) {
  const u32 np = c.np, me = c.me;
  u8 token = 0;

  // Combine (tree gather) toward rank 0.
  u32 mask = 1;
  while (mask < np) {
    if (me & mask) {
      c.send(me - mask, tag::kBarrierUp, {&token, 1});
      break;
    }
    if (me + mask < np) c.recv(me + mask, tag::kBarrierUp, {&token, 1});
    mask <<= 1;
  }

  // Release: binomial broadcast of a token from rank 0.
  mask = 1;
  while (mask < np) {
    if (me & mask) {
      c.recv(me - mask, tag::kBarrierDown, {&token, 1});
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (me + mask < np) c.send(me + mask, tag::kBarrierDown, {&token, 1});
    mask >>= 1;
  }
}

void barrier_dissemination(Ctx& c) {
  const u32 np = c.np, me = c.me;
  u8 out = 0, in = 0;
  // Round r: notify (me + 2^r) mod np, wait for (me - 2^r) mod np. After
  // ceil(log2(np)) rounds every rank transitively heard from every other.
  // Distances are distinct per round, so one tag suffices.
  for (u32 d = 1; d < np; d <<= 1)
    c.sendrecv((me + d) % np, {&out, 1}, (me + np - d) % np, {&in, 1},
               tag::kDissem);
}

// ---------------------------------------------------------------------------
// Allreduce
// ---------------------------------------------------------------------------

void allreduce_recursive_doubling(Ctx& c, void* recvbuf, u32 count,
                                  Datatype dt, ReduceOp op) {
  // MPICH's recursive doubling: fold the ranks beyond the largest power of
  // two into their even neighbors, double among the survivors, then push
  // the result back out. Requires commutative ops (all of ReduceOp is).
  const u32 np = c.np, me = c.me;
  if (np == 1) return;
  const u32 bytes = coll_bytes(count, dt);
  u8* buf = static_cast<u8*>(recvbuf);

  u32 pof2 = 1;
  while (pof2 * 2 <= np) pof2 *= 2;
  const u32 rem = np - pof2;
  std::vector<u8> tmp(bytes);

  // Fold phase: odd ranks below 2*rem contribute to their even neighbor.
  i32 newrank;
  if (me < 2 * rem) {
    if (me % 2 == 1) {
      c.send(me - 1, tag::kAllreduce, {buf, bytes});
      newrank = -1;  // sits out of the doubling phase
    } else {
      c.recv(me + 1, tag::kAllreduce, tmp);
      apply_reduce(dt, op, buf, tmp.data(), count);
      newrank = static_cast<i32>(me / 2);
    }
  } else {
    newrank = static_cast<i32>(me - rem);
  }

  // Doubling phase among the pof2 survivors.
  if (newrank >= 0) {
    for (u32 mask = 1; mask < pof2; mask <<= 1) {
      const u32 newpeer = static_cast<u32>(newrank) ^ mask;
      const u32 peer = newpeer < rem ? newpeer * 2 : newpeer + rem;
      c.sendrecv(peer, {buf, bytes}, peer, tmp, tag::kAllreduce);
      apply_reduce(dt, op, buf, tmp.data(), count);
    }
  }

  // Unfold: even ranks push the final result to the neighbors that sat out.
  if (me < 2 * rem) {
    if (me % 2 == 1)
      c.recv(me - 1, tag::kAllreduce, {buf, bytes});
    else
      c.send(me + 1, tag::kAllreduce, {buf, bytes});
  }
}

void allreduce_rabenseifner(Ctx& c, void* recvbuf, u32 count, Datatype dt,
                            ReduceOp op) {
  const u32 np = c.np, me = c.me;
  if (np == 1) return;
  const u32 esz = datatype_size(dt);
  u8* buf = static_cast<u8*>(recvbuf);

  u32 pof2 = 1;
  while (pof2 * 2 <= np) pof2 *= 2;
  const u32 rem = np - pof2;
  std::vector<u8> tmp(static_cast<usize>(count) * esz);

  // Fold to a power of two, exactly like recursive doubling.
  i32 newrank;
  if (me < 2 * rem) {
    if (me % 2 == 1) {
      c.send(me - 1, tag::kAllreduce, {buf, tmp.size()});
      newrank = -1;
    } else {
      c.recv(me + 1, tag::kAllreduce, tmp);
      apply_reduce(dt, op, buf, tmp.data(), count);
      newrank = static_cast<i32>(me / 2);
    }
  } else {
    newrank = static_cast<i32>(me - rem);
  }

  if (newrank >= 0) {
    const u32 nr = static_cast<u32>(newrank);
    // The vector splits into pof2 blocks indexed by survivor rank; block
    // boundaries in elements (front blocks absorb the remainder).
    const auto eoff = [&](u32 i) {
      return i * (count / pof2) + std::min(i, count % pof2);
    };
    const auto real = [&](u32 nd) { return nd < rem ? nd * 2 : nd + rem; };
    const auto span_of = [&](u8* base, u32 b0, u32 b1) {
      return std::span<u8>{base + static_cast<usize>(eoff(b0)) * esz,
                           static_cast<usize>(eoff(b1) - eoff(b0)) * esz};
    };

    // Recursive-halving reduce-scatter: my block window [lo, hi) halves
    // every step toward the half containing block `nr`; I send the other
    // half and fold the peer's contribution into mine.
    u32 lo = 0, hi = pof2;
    for (u32 mask = pof2 >> 1; mask > 0; mask >>= 1) {
      const u32 peer = real(nr ^ mask);
      const u32 mid = lo + (hi - lo) / 2;
      const bool keep_low = (nr & mask) == 0;
      const u32 klo = keep_low ? lo : mid, khi = keep_low ? mid : hi;
      const u32 glo = keep_low ? mid : lo, ghi = keep_low ? hi : mid;
      c.sendrecv(peer, span_of(buf, glo, ghi), peer,
                 span_of(tmp.data(), klo, khi), tag::kAllreduce);
      apply_reduce(dt, op, buf + static_cast<usize>(eoff(klo)) * esz,
                   tmp.data() + static_cast<usize>(eoff(klo)) * esz,
                   eoff(khi) - eoff(klo));
      lo = klo;
      hi = khi;
    }

    // Recursive-doubling allgather: mirror the halving back out, swapping
    // reduced windows with the sibling at each scale.
    for (u32 mask = 1; mask < pof2; mask <<= 1) {
      const u32 peer = real(nr ^ mask);
      const u32 size = hi - lo;
      const bool low_half = (nr & mask) == 0;
      const u32 slo = low_half ? hi : lo - size;
      const u32 shi = low_half ? hi + size : lo;
      c.sendrecv(peer, span_of(buf, lo, hi), peer, span_of(buf, slo, shi),
                 tag::kAllreduce);
      lo = std::min(lo, slo);
      hi = std::max(hi, shi);
    }
  }

  // Unfold the folded-out odd ranks.
  if (me < 2 * rem) {
    if (me % 2 == 1)
      c.recv(me - 1, tag::kAllreduce, {buf, tmp.size()});
    else
      c.send(me + 1, tag::kAllreduce, {buf, tmp.size()});
  }
}

void allreduce_ring(Ctx& c, void* recvbuf, u32 count, Datatype dt,
                    ReduceOp op) {
  const u32 np = c.np, me = c.me;
  if (np == 1) return;
  const u32 esz = datatype_size(dt);
  u8* buf = static_cast<u8*>(recvbuf);
  // Block b holds cnt(b) elements; front blocks absorb the remainder.
  const auto cnt = [&](u32 b) { return count / np + (b < count % np ? 1u : 0u); };
  const auto eoff = [&](u32 b) {
    return b * (count / np) + std::min(b, count % np);
  };
  const auto blk = [&](u32 b) {
    return std::span<u8>{buf + static_cast<usize>(eoff(b)) * esz,
                         static_cast<usize>(cnt(b)) * esz};
  };
  const u32 right = (me + 1) % np, left = (me + np - 1) % np;
  std::vector<u8> tmp(static_cast<usize>(cnt(0)) * esz);  // largest block

  // Reduce-scatter: step s passes block (me - s) right while block
  // (me - s - 1) arrives from the left and folds in. After n-1 steps this
  // rank holds the fully reduced block (me + 1) mod n.
  for (u32 s = 0; s + 1 < np; ++s) {
    const u32 sb = (me + np - s) % np;
    const u32 rb = (me + np - s - 1) % np;
    c.sendrecv(right, blk(sb), left,
               {tmp.data(), static_cast<usize>(cnt(rb)) * esz},
               tag::kAllreduce);
    apply_reduce(dt, op, buf + static_cast<usize>(eoff(rb)) * esz, tmp.data(),
                 cnt(rb));
  }

  // Allgather: circulate the reduced blocks the rest of the way around.
  for (u32 s = 0; s + 1 < np; ++s) {
    const u32 sb = (me + 1 + np - s) % np;
    const u32 rb = (me + np - s) % np;
    c.sendrecv(right, blk(sb), left, blk(rb), tag::kAllreduce);
  }
}

// ---------------------------------------------------------------------------
// Allgather
// ---------------------------------------------------------------------------

void allgather_ring(Ctx& c, u8* recvbuf, u32 block_bytes) {
  const u32 np = c.np, me = c.me;
  if (np == 1) return;
  const u32 right = (me + 1) % np, left = (me + np - 1) % np;
  const auto blk = [&](u32 b) {
    return std::span<u8>{recvbuf + static_cast<usize>(b) * block_bytes,
                         block_bytes};
  };
  for (u32 s = 0; s + 1 < np; ++s) {
    const u32 sb = (me + np - s) % np;
    const u32 rb = (me + np - s - 1) % np;
    c.sendrecv(right, blk(sb), left, blk(rb), tag::kAllgather);
  }
}

// ---------------------------------------------------------------------------
// Decision-table name lookups
// ---------------------------------------------------------------------------

CollAlgo coll_algo_from_name(std::string_view name, CollAlgo fallback) {
  for (CollAlgo a :
       {CollAlgo::kPointToPoint, CollAlgo::kNativeMcast, CollAlgo::kBinomial,
        CollAlgo::kScatterAllgather, CollAlgo::kRing, CollAlgo::kChain,
        CollAlgo::kDissemination})
    if (coll_algo_name(a) == name) return a;
  return fallback;
}

AllreduceAlgo allreduce_algo_from_name(std::string_view name,
                                       AllreduceAlgo fallback) {
  for (AllreduceAlgo a :
       {AllreduceAlgo::kReduceBcast, AllreduceAlgo::kRecursiveDoubling,
        AllreduceAlgo::kRabenseifner, AllreduceAlgo::kRing})
    if (allreduce_algo_name(a) == name) return a;
  return fallback;
}

AllgatherAlgo allgather_algo_from_name(std::string_view name,
                                       AllgatherAlgo fallback) {
  for (AllgatherAlgo a : {AllgatherAlgo::kGatherBcast, AllgatherAlgo::kRing})
    if (allgather_algo_name(a) == name) return a;
  return fallback;
}

}  // namespace scrnet::scrmpi::coll
