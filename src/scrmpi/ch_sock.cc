#include "scrmpi/ch_sock.h"

#include <cstring>

namespace scrnet::scrmpi {

Status SockChannel::send_packet(u32 dst, const PktHeader& hdr,
                                std::span<const u8> payload) {
  std::vector<u8> frame(kHeaderBytes + payload.size());
  u32 words[kHeaderWords];
  encode_header(hdr, words);
  std::memcpy(frame.data(), words, kHeaderBytes);
  if (!payload.empty())
    std::memcpy(frame.data() + kHeaderBytes, payload.data(), payload.size());
  // The stack buffers and never blocks; a partitioned path fails at the
  // receiver (the stream goes silent), surfaced by the ADI's op timeout.
  stack_.send(proc_, dst, frame);
  return Status::Ok();
}

std::optional<Packet> SockChannel::poll_packet() {
  stack_.try_absorb(proc_);
  // Note: src == rank() is a valid stream too (MPI self-sends loop back
  // through the fabric).
  for (u32 src = 0; src < size_; ++src) {
    if (want_[src] == 0) {
      // Try to decode an envelope from this source's stream.
      u8 hdr_bytes[kHeaderBytes];
      if (!stack_.peek(src, hdr_bytes)) continue;
      u32 words[kHeaderWords];
      std::memcpy(words, hdr_bytes, kHeaderBytes);
      want_hdr_[src] = decode_header(words);
      want_[src] = kHeaderBytes + want_hdr_[src].len;
    }
    if (stack_.buffered(src) < want_[src]) continue;
    // Whole frame present: consume it.
    std::vector<u8> frame(want_[src]);
    stack_.consume(proc_, src, frame, want_[src]);
    Packet pkt;
    pkt.hdr = want_hdr_[src];
    pkt.payload.assign(frame.begin() + kHeaderBytes, frame.end());
    want_[src] = 0;
    return pkt;
  }
  return std::nullopt;
}

}  // namespace scrnet::scrmpi
