// ch_hybrid: a two-network channel device -- the paper's conclusion in
// code. Section 7: "SCRAMNet has characteristics complementary to those of
// networks usually used in clusters. This makes SCRAMNet a good candidate
// for use with a high bandwidth network within the same cluster. We are
// working on using SCRAMNet together with other networks such as Myrinet
// and ATM to design efficient communication subsystems ... which have low
// latency as well as high bandwidth."
//
// Small point-to-point packets ride the low-latency device (SCRAMNet/BBP);
// payloads above `threshold` ride the high-bandwidth device (e.g. TCP over
// Myrinet). MPI requires per-(src,dst) ordering, which a split across two
// networks would break, so point-to-point packets carry an 8-byte hybrid
// preamble with a per-destination sequence number and the receiver holds a
// reorder stash. Collective packets always use the low-latency device (it
// owns the hardware multicast and collectives are matched in arrival
// order), so they need no preamble.
#pragma once

#include <algorithm>
#include <cassert>
#include <map>
#include <vector>

#include "scrmpi/channel.h"

namespace scrnet::scrmpi {

class HybridChannel final : public ChannelDevice {
 public:
  /// Both devices must expose the same rank/size mapping (one host on both
  /// fabrics). `threshold` is the largest payload kept on `low_lat`.
  HybridChannel(ChannelDevice& low_lat, ChannelDevice& high_bw, u32 threshold)
      : low_(low_lat), high_(high_bw), threshold_(threshold),
        next_seq_(low_lat.size(), 0), expect_seq_(low_lat.size(), 0),
        stash_(low_lat.size()) {
    assert(low_.rank() == high_.rank() && low_.size() == high_.size());
  }

  std::string_view kind() const override { return "hybrid"; }
  u32 rank() const override { return low_.rank(); }
  u32 size() const override { return low_.size(); }

  Status send_packet(u32 dst, const PktHeader& hdr,
                     std::span<const u8> payload) override;
  std::optional<Packet> poll_packet() override;

  bool has_native_mcast() const override { return low_.has_native_mcast(); }
  Status mcast_packet(std::span<const u32> dsts, const PktHeader& hdr,
                      std::span<const u8> payload) override {
    return low_.mcast_packet(dsts, hdr, payload);  // collectives stay on SCRAMNet
  }
  u32 mcast_cap() const override { return low_.mcast_cap(); }

  /// Per-byte costs follow the wire the payload will actually take.
  SimTime pack_cost(u32 len) const override {
    return len <= threshold_ ? low_.pack_cost(len) : high_.pack_cost(len);
  }
  SimTime unpack_cost(u32 len) const override {
    return len <= threshold_ ? low_.unpack_cost(len) : high_.unpack_cost(len);
  }

  SimTime now() const override { return low_.now(); }
  void cpu(SimTime dt) override { low_.cpu(dt); }
  void idle_pause() override { low_.idle_pause(); }

  /// Large sends should stay eager on the bulk network when possible.
  u32 eager_limit() const override {
    return std::max(threshold_, high_.eager_limit() - kPreambleBytes);
  }

  /// Only payloads routed to the low-latency device can leave in a single
  /// network unit; anything above threshold_ streams on the bulk network.
  u32 short_limit() const override {
    return std::min(threshold_, low_.short_limit());
  }

  u32 threshold() const { return threshold_; }
  u64 low_packets() const { return low_pkts_; }
  u64 high_packets() const { return high_pkts_; }

  // Zero-copy rendezvous: delegate to whichever sub-device has the put
  // capability, preferring the one the payload size would route to. The
  // chosen leg is recorded in RndvPlacement::via (0 = low, 1 = high) so
  // the sender's put and the receiver's completion use the same device.
  bool supports_put() const override {
    return low_.supports_put() || high_.supports_put();
  }
  Result<RndvPlacement> rndv_reserve(u32 src, u32 bytes,
                                     std::span<u8> dest) override;
  Status rndv_put(u32 dst, const RndvPlacement& placement,
                  std::span<const u8> payload, const PktHeader& fin_hdr,
                  std::span<const u8> fin_payload) override;
  Status rndv_complete(const RndvPlacement& placement, std::span<u8> buf,
                       u32 len) override;
  void rndv_release(const RndvPlacement& placement) override;

 private:
  static constexpr u32 kPreambleBytes = 8;  // [seq, magic]
  static constexpr u32 kMagic = 0x48594252;  // "HYBR"

  static bool is_collective(PktKind k) {
    return k == PktKind::kCollData || k == PktKind::kCollBarrier ||
           k == PktKind::kCollRelease;
  }

  /// Unwrap a preambled p2p packet; returns its sequence number.
  static u32 unwrap(Packet& pkt);

  /// Release the next in-order packet from a source's stash, if present.
  std::optional<Packet> pop_ready(u32 src);

  ChannelDevice& leg(u32 via) { return via == 0 ? low_ : high_; }

  ChannelDevice& low_;
  ChannelDevice& high_;
  u32 threshold_;
  std::vector<u32> next_seq_;    // per destination
  std::vector<u32> expect_seq_;  // per source
  std::vector<std::map<u32, Packet>> stash_;  // per source: seq -> packet
  u64 low_pkts_ = 0, high_pkts_ = 0;
};

}  // namespace scrnet::scrmpi
