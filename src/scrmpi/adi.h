// The Abstract Device Interface layer: request objects, matching queues
// (posted + unexpected), the short/eager/rendezvous protocols, and the
// progress engine that drains the channel device.
//
// This mirrors MPICH's ADI-over-channel-interface structure the paper
// builds on. Software overheads of each layer are charged through
// LayerCosts -- the paper's Figure 1 shows MPI adding a near-constant
// ~37 us over the raw BBP API, and its Section 7 attributes much of it to
// the channel interface copy; both live here as explicit constants.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "scrmpi/channel.h"
#include "scrmpi/types.h"

namespace scrnet::scrmpi {

/// CPU cost of each MPICH-style software layer, charged via the device.
/// Defaults are calibrated so MPI-over-BBP measures ~44 us for a 0-byte
/// one-way send (paper Figure 1) on the simulated testbed.
struct LayerCosts {
  SimTime binding = us(4);        // MPI_* binding: argument/handle processing
  SimTime request_alloc = ns(5500);  // request creation bookkeeping
  SimTime adi_dispatch = us(4);   // ADI protocol selection + envelope build
  SimTime channel_pack = us(4);   // channel packetization fixed cost
  // Per-byte pack/unpack costs are owned by the channel *device*
  // (ChannelDevice::pack_cost / unpack_cost); this factor scales them --
  // the "remove the channel interface" ablation turns it down.
  double per_byte_scale = 1.0;
  SimTime match = us(5);          // matching-queue search per arrival
  SimTime complete = us(5);       // completion + status fill
  SimTime probe = us(2);
  SimTime coll_fast = us(1);      // native-multicast collective bookkeeping
                                  // (thin wrapper straight onto bbp_Mcast)
  // Bounded wait for wait()/probe(): once a blocking completion has made
  // no progress for this much virtual time the call returns with
  // MpiStatus::err = kTimedOut instead of spinning forever. A timed-out
  // rendezvous request is parked as a zombie (its id is never recycled)
  // so a late CTS/Data is dropped, not mis-matched. 0 = wait forever
  // (the default -- the paper's blocking semantics).
  SimTime op_timeout = 0;
  // Cap on the eager/rendezvous switch point: payloads above
  // min(device eager_limit, eager_cap) go rendezvous. 0 (the default)
  // defers to the device; the Engine constructor reads the
  // SCRNET_RNDV_EAGER_MAX environment knob into this field when it is 0,
  // so CI can force the rendezvous path across a whole run (an explicit
  // nonzero value here always wins over the environment).
  u32 eager_cap = 0;
};

class Engine {
 public:
  explicit Engine(ChannelDevice& dev, LayerCosts costs = {});

  u32 rank() const { return dev_.rank(); }
  u32 size() const { return dev_.size(); }
  ChannelDevice& device() { return dev_; }
  const LayerCosts& costs() const { return costs_; }

  // -- point to point ------------------------------------------------------
  Request isend(u32 dst, u16 ctx, i32 tag, std::span<const u8> data);
  Request irecv(i32 src, u16 ctx, i32 tag, std::span<u8> buf);
  MpiStatus wait(Request r);
  std::optional<MpiStatus> test(Request r);
  MpiStatus probe(i32 src, u16 ctx, i32 tag);
  std::optional<MpiStatus> iprobe(i32 src, u16 ctx, i32 tag);

  // -- progress ------------------------------------------------------------
  /// Drain every packet the device currently has; true if any arrived.
  bool progress();

  // -- native-multicast collective transport -------------------------------
  bool has_native_mcast() const { return dev_.has_native_mcast(); }
  /// Single-step multicast of a collective packet to world ranks `dsts`.
  void coll_mcast(std::span<const u32> dsts, u16 ctx, PktKind kind, u32 aux,
                  std::span<const u8> data);
  /// Send a collective packet point-to-point (barrier arrival etc.).
  void coll_send(u32 dst, u16 ctx, PktKind kind, u32 aux,
                 std::span<const u8> data);
  /// Block until the next kCollData packet from `root` on `ctx`; returns
  /// its payload. Multiple broadcasts match in arrival (FIFO) order.
  std::vector<u8> coll_wait_data(u16 ctx, u32 root);
  /// Block until `n` kCollBarrier packets with `epoch` arrived on `ctx`.
  void coll_wait_arrivals(u16 ctx, u32 epoch, u32 n);
  /// Block until a kCollRelease with >= `epoch` was seen on `ctx`.
  void coll_wait_release(u16 ctx, u32 epoch);

  // -- statistics ----------------------------------------------------------
  u64 packets_handled() const { return packets_handled_; }
  usize unexpected_depth() const { return unexpected_.size(); }
  usize posted_depth() const { return posted_.size(); }
  /// Blocking completions that returned kTimedOut.
  u64 op_timeouts() const { return timeouts_; }
  /// Packets referencing a dead (timed-out) or mismatched request, dropped.
  u64 stale_packets() const { return stale_packets_; }
  /// Undecodable packets (unknown kind / bad request index), dropped.
  u64 malformed_packets() const { return malformed_packets_; }
  /// Rendezvous protocol traffic (docs/adi.md "Counters").
  u64 rndv_rts() const { return rndv_rts_; }
  u64 rndv_cts() const { return rndv_cts_; }
  u64 rndv_puts() const { return rndv_put_; }
  u64 rndv_fins() const { return rndv_fin_; }
  /// Payload bytes that bypassed the channel-interface copy entirely
  /// (sender-side puts into receiver-granted placements).
  u64 zero_copy_bytes() const { return zero_copy_bytes_; }
  /// The switch point actually in force (device limit capped by
  /// LayerCosts::eager_cap / SCRNET_RNDV_EAGER_MAX).
  u32 effective_eager_limit() const;

 private:
  struct Req {
    // kZombie: a rendezvous request whose wait timed out while a
    // CTS/Data/FIN naming its id may still be in flight; parked so the id
    // is not recycled, reaped when the late packet (if any) arrives.
    enum class State : u8 { kFree, kSendWaitCts, kRecvPosted, kRecvWaitData,
                            kRecvWaitFin, kZombie, kDone };
    State state = State::kFree;
    // Send side (rendezvous): a *view* of the caller's payload, retained
    // until the CTS arrives. MPI semantics already require the buffer to
    // stay live until wait(), so the ADI no longer stages a copy of it.
    std::span<const u8> send_view;
    u32 dst = 0;
    // Recv side.
    i32 want_src = kAnySource;
    i32 want_tag = kAnyTag;
    u16 ctx = 0;
    std::span<u8> buf;
    // Zero-copy rendezvous: the placement granted in our CTS (valid in
    // state kRecvWaitFin; released on completion or timeout).
    RndvPlacement placement;
    MpiStatus status;
  };

  struct Unexpected {
    PktHeader hdr;            // kShort/kEager: payload present; kRndvRts: not
    std::vector<u8> payload;
  };

  /// Apply the LayerCosts scale to a device per-byte cost.
  SimTime scaled(SimTime device_cost) const {
    return static_cast<SimTime>(static_cast<double>(device_cost) *
                                costs_.per_byte_scale);
  }

  u32 alloc_req();
  void free_req(u32 idx);
  bool match(const Req& r, const PktHeader& h) const {
    return r.ctx == h.ctx &&
           (r.want_src == kAnySource || static_cast<u32>(r.want_src) == h.src) &&
           (r.want_tag == kAnyTag || r.want_tag == h.tag);
  }
  bool match(i32 src, u16 ctx, i32 tag, const PktHeader& h) const {
    return ctx == h.ctx && (src == kAnySource || static_cast<u32>(src) == h.src) &&
           (tag == kAnyTag || tag == h.tag);
  }
  void handle(Packet pkt);
  void complete_recv_into(u32 req_idx, const PktHeader& hdr,
                          std::span<const u8> payload);
  /// Answer an RTS matched to posted request `idx`: try to reserve a
  /// zero-copy placement (put-capable devices) and send the CTS -- with the
  /// placement as payload on success, empty for the copy path.
  void grant_rendezvous(u32 idx, const PktHeader& rts,
                        std::span<const u8> rts_payload);
  /// Run the progress loop until req is done; false when costs_.op_timeout
  /// is set and expired first.
  bool spin_until_done(u32 idx);
  /// Tear down a request whose wait timed out (unlink or zombie it) and
  /// build the kTimedOut status to hand the caller.
  MpiStatus timeout_request(u32 idx);
  MpiStatus status_of(const PktHeader& h) const {
    MpiStatus st;
    st.source = static_cast<i32>(h.src);
    st.tag = h.tag;
    st.count_bytes = h.len;
    return st;
  }

  ChannelDevice& dev_;
  LayerCosts costs_;
  std::vector<Req> reqs_;
  std::vector<u32> free_reqs_;
  std::deque<u32> posted_;          // posted irecv requests, FIFO
  std::deque<Unexpected> unexpected_;

  // Collective state.
  std::map<std::pair<u16, u32>, std::deque<std::vector<u8>>> collq_;  // (ctx,root)
  std::map<std::pair<u16, u32>, u32> barrier_count_;                  // (ctx,epoch)
  std::map<u16, u32> release_epoch_;                                  // ctx -> max

  u64 packets_handled_ = 0;
  u64 timeouts_ = 0;
  u64 stale_packets_ = 0;
  u64 malformed_packets_ = 0;
  u64 rndv_rts_ = 0;
  u64 rndv_cts_ = 0;
  u64 rndv_put_ = 0;
  u64 rndv_fin_ = 0;
  u64 zero_copy_bytes_ = 0;
};

}  // namespace scrnet::scrmpi
