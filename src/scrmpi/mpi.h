// scrmpi public API -- the MPI bindings layer.
//
// One Mpi instance per process (rank), bound to a channel device. The
// subset implemented is what the paper's evaluation and our examples use:
// blocking/nonblocking point-to-point with tag+source matching and
// wildcards, communicator dup/split, and the collectives -- each collective
// available both as MPICH's point-to-point tree algorithm and (on devices
// with hardware multicast, i.e. SCRAMNet) as the paper's single-step
// BBP-multicast implementation of MPI_Bcast / MPI_Barrier.
#pragma once

#include <map>
#include <span>
#include <string_view>
#include <vector>

#include "scrmpi/adi.h"
#include "scrmpi/types.h"

namespace scrnet::obs {
class Counters;
}

namespace scrnet::tune {
class DecisionTable;
}

namespace scrnet::scrmpi {

/// A communicator: an ordered group of world ranks plus context ids that
/// isolate its point-to-point and collective traffic.
class Comm {
 public:
  Comm() = default;
  Comm(u16 base_ctx, std::vector<u32> members)
      : base_ctx_(base_ctx), members_(std::move(members)) {}

  u32 size() const { return static_cast<u32>(members_.size()); }
  u16 p2p_ctx() const { return static_cast<u16>(base_ctx_ * 2); }
  u16 coll_ctx() const { return static_cast<u16>(base_ctx_ * 2 + 1); }
  const std::vector<u32>& members() const { return members_; }

  /// World rank of communicator rank r.
  u32 world_of(u32 r) const { return members_.at(r); }
  /// Communicator rank of a world rank; -1 if not a member.
  i32 rank_of_world(u32 world) const {
    for (u32 i = 0; i < members_.size(); ++i)
      if (members_[i] == world) return static_cast<i32>(i);
    return -1;
  }

 private:
  u16 base_ctx_ = 0;
  std::vector<u32> members_;
};

/// Per-rank MPI usage statistics (a PMPI-style accounting layer).
struct CallStats {
  u64 sends = 0, recvs = 0;
  u64 bcasts = 0, barriers = 0, reduces = 0, gathers = 0, scatters = 0;
  u64 allreduces = 0, allgathers = 0;
  u64 bytes_sent = 0, bytes_received = 0;
  SimTime time_in_mpi = 0;  // virtual time spent inside blocking MPI calls
};

class Mpi {
 public:
  /// Construct the MPI library instance for this rank over `dev`.
  explicit Mpi(ChannelDevice& dev, LayerCosts costs = {});

  // -- environment ---------------------------------------------------------
  const Comm& world() const { return world_; }
  i32 rank(const Comm& c) const { return c.rank_of_world(engine_.rank()); }
  u32 size(const Comm& c) const { return c.size(); }

  /// Select the MPI_Bcast / MPI_Barrier implementation (Figures 5 and 6
  /// compare kPointToPoint against kNativeMcast; the full zoo lives in
  /// coll.h). The default, kAuto, consults the sweep-generated decision
  /// table per (device, op, nodes, bytes) -- see src/tune/ and
  /// docs/collectives.md. kNativeMcast on a device without hardware
  /// multicast falls back to the binomial tree.
  void set_bcast_algo(CollAlgo a) { bcast_algo_ = a; }
  void set_barrier_algo(CollAlgo a) { barrier_algo_ = a; }

  /// MPI_Allreduce algorithm (bench/abl_allreduce compares these).
  using AllreduceAlgo = scrmpi::AllreduceAlgo;
  void set_allreduce_algo(AllreduceAlgo a) { allreduce_algo_ = a; }

  /// MPI_Allgather algorithm.
  void set_allgather_algo(AllgatherAlgo a) { allgather_algo_ = a; }

  /// Override the decision table kAuto consults (default: the process
  /// table, i.e. DecisionTable::active() -- the compiled-in sweep result
  /// unless SCRNET_COLL_TABLE names a file). Not owned; must outlive the
  /// Mpi instance.
  void set_decision_table(const tune::DecisionTable* t) { table_ = t; }

  Engine& engine() { return engine_; }

  // -- point to point ------------------------------------------------------
  /// Blocking send. The returned status carries err = kTimedOut when the
  /// engine's op_timeout (or the device's bounded wait) expired before the
  /// send could complete; existing callers may ignore it.
  MpiStatus send(const void* buf, u32 count, Datatype dt, i32 dest, i32 tag,
                 const Comm& comm);
  MpiStatus recv(void* buf, u32 count, Datatype dt, i32 src, i32 tag,
                 const Comm& comm);
  Request isend(const void* buf, u32 count, Datatype dt, i32 dest, i32 tag,
                const Comm& comm);
  Request irecv(void* buf, u32 count, Datatype dt, i32 src, i32 tag,
                const Comm& comm);
  MpiStatus wait(Request r, const Comm& comm);
  std::optional<MpiStatus> test(Request r, const Comm& comm);
  void waitall(std::span<Request> rs, const Comm& comm);
  /// Waits for any request to complete; returns its index in `rs` and its
  /// status. Completed entries are invalidated (like MPI_Waitany).
  std::pair<usize, MpiStatus> waitany(std::span<Request> rs, const Comm& comm);
  MpiStatus probe(i32 src, i32 tag, const Comm& comm);
  std::optional<MpiStatus> iprobe(i32 src, i32 tag, const Comm& comm);
  MpiStatus sendrecv(const void* sbuf, u32 scount, Datatype sdt, i32 dest,
                     i32 stag, void* rbuf, u32 rcount, Datatype rdt, i32 src,
                     i32 rtag, const Comm& comm);

  // -- collectives ---------------------------------------------------------
  void bcast(void* buf, u32 count, Datatype dt, i32 root, const Comm& comm);
  void barrier(const Comm& comm);
  void reduce(const void* sendbuf, void* recvbuf, u32 count, Datatype dt,
              ReduceOp op, i32 root, const Comm& comm);
  void allreduce(const void* sendbuf, void* recvbuf, u32 count, Datatype dt,
                 ReduceOp op, const Comm& comm);
  void gather(const void* sendbuf, u32 count, Datatype dt, void* recvbuf,
              i32 root, const Comm& comm);
  void scatter(const void* sendbuf, void* recvbuf, u32 count, Datatype dt,
               i32 root, const Comm& comm);
  void allgather(const void* sendbuf, u32 count, Datatype dt, void* recvbuf,
                 const Comm& comm);
  /// Personalized all-to-all: rank i's j-th block lands in rank j's i-th
  /// block. `count` elements per block.
  void alltoall(const void* sendbuf, void* recvbuf, u32 count, Datatype dt,
                const Comm& comm);

  /// Per-rank usage counters (virtual time + calls + bytes).
  const CallStats& stats() const { return stats_; }

  /// Publish stats() plus the engine's packet count into the registry
  /// under `group` (e.g. "mpi.rank0").
  void publish_counters(obs::Counters& c, std::string_view group) const;

  // -- communicator management --------------------------------------------
  /// Collective over `comm`: all members must call in the same order.
  Comm dup(const Comm& comm);
  /// Collective: groups by color, ordered by (key, rank). Color < 0 yields
  /// an empty communicator for that caller.
  Comm split(const Comm& comm, i32 color, i32 key);

 private:
  /// Blocking send/recv as the p2p collective algorithms use them: through
  /// the full MPI binding layer, exactly like MPICH collectives calling
  /// MPI_Send / MPI_Recv internally (this is where their cost comes from).
  void coll_p2p_send(u32 world_dst, u16 ctx, i32 tag, std::span<const u8> data);
  void coll_p2p_recv(u32 world_src, u16 ctx, i32 tag, std::span<u8> buf);

  /// The paper's BBP-multicast implementations (engine collective
  /// transport, not point-to-point; the p2p zoo lives in coll.cc).
  void bcast_native(void* buf, u32 bytes, i32 root, const Comm& comm);
  void barrier_native(const Comm& comm);

  /// Resolve a selector for this call: kAuto goes through the decision
  /// table; kNativeMcast downgrades to a p2p algorithm when the device
  /// has no hardware multicast.
  CollAlgo resolve_bcast(u32 nodes, u32 bytes);
  CollAlgo resolve_barrier(u32 nodes);
  AllreduceAlgo resolve_allreduce(u32 nodes, u32 bytes);
  AllgatherAlgo resolve_allgather(u32 nodes, u32 block_bytes);
  std::string_view table_pick(std::string_view op, u32 nodes, u32 bytes);
  std::span<const u8> as_bytes(const void* p, u32 count, Datatype dt) const {
    return {static_cast<const u8*>(p), static_cast<usize>(count) * datatype_size(dt)};
  }
  std::span<u8> as_bytes(void* p, u32 count, Datatype dt) const {
    return {static_cast<u8*>(p), static_cast<usize>(count) * datatype_size(dt)};
  }
  /// All world ranks in comm except this one (multicast destination list).
  std::vector<u32> others(const Comm& comm) const;

  /// RAII scope accumulating virtual time into stats_.time_in_mpi.
  class TimedCall;

  Engine engine_;
  Comm world_;
  CallStats stats_;
  u16 next_base_ctx_ = 1;
  std::map<u16, u32> barrier_epoch_;  // coll ctx -> last epoch used
  CollAlgo bcast_algo_ = CollAlgo::kAuto;
  CollAlgo barrier_algo_ = CollAlgo::kAuto;
  AllreduceAlgo allreduce_algo_ = AllreduceAlgo::kAuto;
  AllgatherAlgo allgather_algo_ = AllgatherAlgo::kAuto;
  const tune::DecisionTable* table_ = nullptr;  // nullptr: process table
};

/// Element-wise reduction: recv[i] = op(recv[i], in[i]).
void apply_reduce(Datatype dt, ReduceOp op, void* acc, const void* in, u32 count);

}  // namespace scrnet::scrmpi
