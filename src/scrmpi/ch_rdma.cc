#include "scrmpi/ch_rdma.h"

#include <cstring>
#include <stdexcept>

namespace scrnet::scrmpi {

Status RdmaChannel::send_packet(u32 dst, const PktHeader& hdr,
                                std::span<const u8> payload) {
  if (kHeaderBytes + payload.size() > fabric_.mtu_payload())
    return Status::InvalidArg("ch_rdma: packet exceeds frame MTU");
  proc_.delay(fabric_.config().doorbell);
  netmodels::Frame f;
  f.src = host_;
  f.dst = dst;
  f.payload.resize(kHeaderBytes + payload.size());
  u32 words[kHeaderWords];
  encode_header(hdr, words);
  std::memcpy(f.payload.data(), words, kHeaderBytes);
  if (!payload.empty())
    std::memcpy(f.payload.data() + kHeaderBytes, payload.data(),
                payload.size());
  fabric_.transmit(std::move(f));
  return Status::Ok();
}

std::optional<Packet> RdmaChannel::poll_packet() {
  auto f = fabric_.rx(host_).try_pop();
  if (!f) return std::nullopt;
  if (f->payload.size() < kHeaderBytes)
    throw std::runtime_error("ch_rdma: runt frame");
  Packet pkt;
  u32 words[kHeaderWords];
  std::memcpy(words, f->payload.data(), kHeaderBytes);
  pkt.hdr = decode_header(words);
  const usize body = f->payload.size() - kHeaderBytes;
  if (body != pkt.hdr.len)
    throw std::runtime_error("ch_rdma: length mismatch");
  pkt.payload.assign(f->payload.begin() + kHeaderBytes, f->payload.end());
  return pkt;
}

Result<RndvPlacement> RdmaChannel::rndv_reserve(u32 src, u32 bytes,
                                                std::span<u8> dest) {
  (void)src;  // any peer may write a registered region
  // Pin the posted user buffer itself: the NIC will DMA payload bytes
  // directly into it. Registration is the (real, charged) price of the
  // zero-copy path; amortized over a large message it is cheap.
  const u32 pages = (bytes + 4095) / 4096;
  proc_.delay(fabric_.config().reg_fixed +
              fabric_.config().reg_per_page * pages);
  const u32 rkey = fabric_.register_region(host_, dest.first(bytes));
  RndvPlacement pl;
  pl.addr = 0;  // offset within the registered region
  pl.bytes = bytes;
  pl.rkey = rkey;
  return pl;
}

Status RdmaChannel::rndv_put(u32 dst, const RndvPlacement& placement,
                             std::span<const u8> payload,
                             const PktHeader& fin_hdr,
                             std::span<const u8> fin_payload) {
  const u64 wr = next_wr_++;
  proc_.delay(fabric_.config().doorbell);
  fabric_.rdma_put(host_, placement.rkey, static_cast<u32>(placement.addr),
                   payload, wr);
  // Wait for my CQE before sending FIN: the completion proves the last
  // byte was acknowledged, so FIN-after-data holds even though the FIN
  // frame races nothing. The engine runs one fiber per rank, so this put
  // is the only one outstanding; a bounded wait surfaces lost chunks
  // (fault-injected drops = RC retry exhaustion) as kTimedOut.
  const SimTime timeout = fabric_.config().retry_timeout;
  for (;;) {
    std::optional<netmodels::CqEvent> ev =
        timeout > 0 ? fabric_.cq(host_).pop_for(proc_, timeout)
                    : std::optional<netmodels::CqEvent>(
                          fabric_.cq(host_).pop(proc_));
    if (!ev)
      return Status::TimedOut("ch_rdma: put completion never arrived");
    proc_.delay(fabric_.config().cq_poll);
    if (ev->wr_id == wr) break;  // stale CQE from a timed-out earlier put
  }
  return send_packet(dst, fin_hdr, fin_payload);
}

Status RdmaChannel::rndv_complete(const RndvPlacement& placement,
                                  std::span<u8> buf, u32 len) {
  (void)placement;
  (void)buf;
  (void)len;
  // The NIC already landed the payload in the registered user buffer;
  // completion is one CQ/teardown poll, independent of message size --
  // this is the whole point of the rendezvous path on real RDMA hardware.
  proc_.delay(fabric_.config().cq_poll);
  return Status::Ok();
}

void RdmaChannel::rndv_release(const RndvPlacement& placement) {
  fabric_.deregister(placement.rkey);
}

}  // namespace scrnet::scrmpi
