#include "scrmpi/mpi.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <string>

#include "obs/counters.h"
#include "obs/trace.h"
#include "scrmpi/coll.h"
#include "tune/table.h"

namespace scrnet::scrmpi {

namespace {
// Reserved collective tags (shared registry: coll.h).
constexpr i32 kTagReduce = coll::tag::kReduce;
constexpr i32 kTagGather = coll::tag::kGather;
constexpr i32 kTagScatter = coll::tag::kScatter;
constexpr i32 kTagSplit = coll::tag::kSplit;
constexpr i32 kTagAlltoall = coll::tag::kAlltoall;
}  // namespace

/// RAII scope accumulating virtual time spent inside a blocking MPI call.
class Mpi::TimedCall {
 public:
  explicit TimedCall(Mpi& m) : m_(m), t0_(m.engine_.device().now()) {}
  ~TimedCall() { m_.stats_.time_in_mpi += m_.engine_.device().now() - t0_; }
  TimedCall(const TimedCall&) = delete;
  TimedCall& operator=(const TimedCall&) = delete;

 private:
  Mpi& m_;
  SimTime t0_;
};

Mpi::Mpi(ChannelDevice& dev, LayerCosts costs) : engine_(dev, costs) {
  std::vector<u32> all(dev.size());
  std::iota(all.begin(), all.end(), 0u);
  world_ = Comm(0, std::move(all));
}

std::vector<u32> Mpi::others(const Comm& comm) const {
  std::vector<u32> out;
  out.reserve(comm.size() - 1);
  for (u32 w : comm.members())
    if (w != engine_.rank()) out.push_back(w);
  return out;
}

// ---------------------------------------------------------------------------
// Point to point
// ---------------------------------------------------------------------------

Request Mpi::isend(const void* buf, u32 count, Datatype dt, i32 dest, i32 tag,
                   const Comm& comm) {
  assert(dest >= 0 && static_cast<u32>(dest) < comm.size() && "bad dest rank");
  engine_.device().cpu(engine_.costs().binding);
  return engine_.isend(comm.world_of(static_cast<u32>(dest)), comm.p2p_ctx(), tag,
                       as_bytes(buf, count, dt));
}

Request Mpi::irecv(void* buf, u32 count, Datatype dt, i32 src, i32 tag,
                   const Comm& comm) {
  assert((src == kAnySource || (src >= 0 && static_cast<u32>(src) < comm.size())) &&
         "bad source rank");
  engine_.device().cpu(engine_.costs().binding);
  const i32 world_src =
      src == kAnySource ? kAnySource : static_cast<i32>(comm.world_of(static_cast<u32>(src)));
  return engine_.irecv(world_src, comm.p2p_ctx(), tag, as_bytes(buf, count, dt));
}

MpiStatus Mpi::send(const void* buf, u32 count, Datatype dt, i32 dest, i32 tag,
                    const Comm& comm) {
  TRACE_SPAN(obs::Layer::kMpi, engine_.rank(), "mpi.send", engine_.device());
  TimedCall tc(*this);
  ++stats_.sends;
  stats_.bytes_sent += static_cast<u64>(count) * datatype_size(dt);
  return wait(isend(buf, count, dt, dest, tag, comm), comm);
}

MpiStatus Mpi::recv(void* buf, u32 count, Datatype dt, i32 src, i32 tag,
                    const Comm& comm) {
  TRACE_SPAN(obs::Layer::kMpi, engine_.rank(), "mpi.recv", engine_.device());
  TimedCall tc(*this);
  ++stats_.recvs;
  const MpiStatus st = wait(irecv(buf, count, dt, src, tag, comm), comm);
  stats_.bytes_received += st.count_bytes;
  return st;
}

MpiStatus Mpi::wait(Request r, const Comm& comm) {
  MpiStatus st = engine_.wait(r);
  if (st.source != kAnySource) st.source = comm.rank_of_world(static_cast<u32>(st.source));
  return st;
}

std::optional<MpiStatus> Mpi::test(Request r, const Comm& comm) {
  auto st = engine_.test(r);
  if (st && st->source != kAnySource)
    st->source = comm.rank_of_world(static_cast<u32>(st->source));
  return st;
}

void Mpi::waitall(std::span<Request> rs, const Comm& comm) {
  for (Request& r : rs) wait(r, comm);
}

std::pair<usize, MpiStatus> Mpi::waitany(std::span<Request> rs, const Comm& comm) {
  assert(!rs.empty());
  for (;;) {
    bool any_valid = false;
    for (usize i = 0; i < rs.size(); ++i) {
      if (!rs[i].valid()) continue;
      any_valid = true;
      if (auto st = test(rs[i], comm)) {
        rs[i] = Request{};  // invalidated, like MPI_Waitany
        return {i, *st};
      }
    }
    assert(any_valid && "waitany with no valid requests");
    (void)any_valid;
    engine_.device().idle_pause();
  }
}

MpiStatus Mpi::probe(i32 src, i32 tag, const Comm& comm) {
  const i32 world_src =
      src == kAnySource ? kAnySource : static_cast<i32>(comm.world_of(static_cast<u32>(src)));
  MpiStatus st = engine_.probe(world_src, comm.p2p_ctx(), tag);
  if (st.source != kAnySource) st.source = comm.rank_of_world(static_cast<u32>(st.source));
  return st;
}

std::optional<MpiStatus> Mpi::iprobe(i32 src, i32 tag, const Comm& comm) {
  const i32 world_src =
      src == kAnySource ? kAnySource : static_cast<i32>(comm.world_of(static_cast<u32>(src)));
  auto st = engine_.iprobe(world_src, comm.p2p_ctx(), tag);
  if (st && st->source != kAnySource)
    st->source = comm.rank_of_world(static_cast<u32>(st->source));
  return st;
}

MpiStatus Mpi::sendrecv(const void* sbuf, u32 scount, Datatype sdt, i32 dest,
                        i32 stag, void* rbuf, u32 rcount, Datatype rdt, i32 src,
                        i32 rtag, const Comm& comm) {
  Request rr = irecv(rbuf, rcount, rdt, src, rtag, comm);
  Request sr = isend(sbuf, scount, sdt, dest, stag, comm);
  MpiStatus st = wait(rr, comm);
  wait(sr, comm);
  return st;
}

// ---------------------------------------------------------------------------
// Collectives: MPICH point-to-point tree algorithms
// ---------------------------------------------------------------------------


void Mpi::coll_p2p_send(u32 world_dst, u16 ctx, i32 tag,
                        std::span<const u8> data) {
  engine_.device().cpu(engine_.costs().binding);
  engine_.wait(engine_.isend(world_dst, ctx, tag, data));
}

void Mpi::coll_p2p_recv(u32 world_src, u16 ctx, i32 tag, std::span<u8> buf) {
  engine_.device().cpu(engine_.costs().binding);
  engine_.wait(engine_.irecv(static_cast<i32>(world_src), ctx, tag, buf));
}

// The point-to-point tree/ring/chain algorithm bodies live in coll.cc (the
// zoo); dispatch below resolves a selector and hands a coll::Ctx over.

// ---------------------------------------------------------------------------
// Collectives: the paper's BBP-multicast implementations
// ---------------------------------------------------------------------------

void Mpi::bcast_native(void* buf, u32 bytes, i32 root, const Comm& comm) {
  // Paper Section 4: "the process that is the root determines the processes
  // in the group [and] uses the multicast operation in the BBP API to
  // broadcast the data to each process in the group. ... not synchronizing
  // ... multiple MPI_Bcast operations are matched in order."
  // Payloads above the device's mcast cap (for BBP: the sender's billboard
  // data partition, which shrinks as procs grow) are chunked -- a single
  // oversized post would be rejected by the endpoint and, collective
  // transport being fire-and-forget, silently dropped with every receiver
  // blocked in coll_wait_data. Chunks from one root are matched in order
  // (the paper's non-synchronizing semantics), so receivers just
  // accumulate until the announced byte count is complete.
  const u32 me = static_cast<u32>(rank(comm));
  const u32 cap = std::max<u32>(4, engine_.device().mcast_cap());
  if (me == static_cast<u32>(root)) {
    if (comm.size() == 1) return;
    const std::vector<u32> dsts = others(comm);
    u32 off = 0;
    do {
      const u32 n = std::min(bytes - off, cap);
      engine_.coll_mcast(dsts, comm.coll_ctx(), PktKind::kCollData, 0,
                         {static_cast<const u8*>(buf) + off, n});
      off += n;
    } while (off < bytes);
    return;
  }
  const u32 root_world = comm.world_of(static_cast<u32>(root));
  u32 off = 0;
  do {
    const std::vector<u8> data =
        engine_.coll_wait_data(comm.coll_ctx(), root_world);
    if (data.size() > bytes - off || (data.empty() && bytes != off))
      throw std::runtime_error("scrmpi: bcast size mismatch across ranks");
    if (!data.empty()) std::memcpy(static_cast<u8*>(buf) + off, data.data(), data.size());
    off += static_cast<u32>(data.size());
  } while (off < bytes);
}

void Mpi::barrier_native(const Comm& comm) {
  // Paper Section 4: rank 0 coordinates -- it collects a null message from
  // every member, then multicasts a null release to all of them.
  const u32 size = comm.size();
  if (size == 1) return;
  const u32 me = static_cast<u32>(rank(comm));
  const u16 ctx = comm.coll_ctx();
  const u32 epoch = ++barrier_epoch_[ctx];

  if (me == 0) {
    engine_.coll_wait_arrivals(ctx, epoch, size - 1);
    engine_.coll_mcast(others(comm), ctx, PktKind::kCollRelease, epoch, {});
  } else {
    engine_.coll_send(comm.world_of(0), ctx, PktKind::kCollBarrier, epoch, {});
    engine_.coll_wait_release(ctx, epoch);
  }
}

// ---------------------------------------------------------------------------
// Selector resolution (the decision table behind kAuto)
// ---------------------------------------------------------------------------

std::string_view Mpi::table_pick(std::string_view op, u32 nodes,
                                 u32 bytes) {
  const tune::DecisionTable& t =
      table_ ? *table_ : tune::DecisionTable::active();
  return t.pick(engine_.device().kind(), op, nodes, bytes);
}

CollAlgo Mpi::resolve_bcast(u32 nodes, u32 bytes) {
  CollAlgo a = bcast_algo_;
  if (a == CollAlgo::kAuto)
    a = coll::coll_algo_from_name(table_pick("bcast", nodes, bytes),
                                  CollAlgo::kBinomial);
  if (a == CollAlgo::kNativeMcast && !engine_.has_native_mcast())
    a = CollAlgo::kBinomial;
  return a;
}

CollAlgo Mpi::resolve_barrier(u32 nodes) {
  CollAlgo a = barrier_algo_;
  if (a == CollAlgo::kAuto)
    a = coll::coll_algo_from_name(table_pick("barrier", nodes, 0),
                                  CollAlgo::kPointToPoint);
  if (a == CollAlgo::kNativeMcast && !engine_.has_native_mcast())
    a = CollAlgo::kPointToPoint;
  return a;
}

AllreduceAlgo Mpi::resolve_allreduce(u32 nodes, u32 bytes) {
  AllreduceAlgo a = allreduce_algo_;
  if (a == AllreduceAlgo::kAuto)
    a = coll::allreduce_algo_from_name(table_pick("allreduce", nodes, bytes),
                                       AllreduceAlgo::kReduceBcast);
  return a;
}

AllgatherAlgo Mpi::resolve_allgather(u32 nodes, u32 block_bytes) {
  AllgatherAlgo a = allgather_algo_;
  if (a == AllgatherAlgo::kAuto)
    a = coll::allgather_algo_from_name(
        table_pick("allgather", nodes, block_bytes),
        AllgatherAlgo::kGatherBcast);
  return a;
}

// ---------------------------------------------------------------------------
// Collective entry points
// ---------------------------------------------------------------------------

void Mpi::bcast(void* buf, u32 count, Datatype dt, i32 root, const Comm& comm) {
  assert(root >= 0 && static_cast<u32>(root) < comm.size());
  TRACE_SPAN(obs::Layer::kMpi, engine_.rank(), "mpi.bcast", engine_.device());
  TimedCall tc(*this);
  ++stats_.bcasts;
  engine_.device().cpu(engine_.costs().binding);
  const u32 bytes = coll_bytes(count, dt);
  u8* data = static_cast<u8*>(buf);
  const u32 vroot = static_cast<u32>(root);
  coll::Ctx cx(engine_, comm);
  switch (resolve_bcast(comm.size(), bytes)) {
    case CollAlgo::kNativeMcast:
      bcast_native(buf, bytes, root, comm);
      break;
    case CollAlgo::kScatterAllgather:
      coll::bcast_scatter_allgather(cx, data, bytes, vroot);
      break;
    case CollAlgo::kRing:
      coll::bcast_ring(cx, data, bytes, vroot);
      break;
    case CollAlgo::kChain:
      coll::bcast_chain(cx, data, bytes, vroot);
      break;
    default:  // kPointToPoint / kBinomial (and any stale selector)
      coll::bcast_binomial(cx, data, bytes, vroot);
      break;
  }
}

void Mpi::barrier(const Comm& comm) {
  TRACE_SPAN(obs::Layer::kMpi, engine_.rank(), "mpi.barrier", engine_.device());
  TimedCall tc(*this);
  ++stats_.barriers;
  engine_.device().cpu(engine_.costs().binding);
  coll::Ctx cx(engine_, comm);
  switch (resolve_barrier(comm.size())) {
    case CollAlgo::kNativeMcast:
      barrier_native(comm);
      break;
    case CollAlgo::kDissemination:
      coll::barrier_dissemination(cx);
      break;
    default:  // kPointToPoint and the bcast-only selectors
      coll::barrier_combine_release(cx);
      break;
  }
}

void Mpi::reduce(const void* sendbuf, void* recvbuf, u32 count, Datatype dt,
                 ReduceOp op, i32 root, const Comm& comm) {
  TRACE_SPAN(obs::Layer::kMpi, engine_.rank(), "mpi.reduce", engine_.device());
  TimedCall tc(*this);
  ++stats_.reduces;
  engine_.device().cpu(engine_.costs().binding);
  const u32 size = comm.size();
  const u32 me = static_cast<u32>(rank(comm));
  const u32 vroot = static_cast<u32>(root);
  const u32 rel = (me - vroot + size) % size;
  const u32 bytes = coll_bytes(count, dt);

  std::vector<u8> acc(bytes), tmp(bytes);
  std::memcpy(acc.data(), sendbuf, bytes);

  // Binomial combine toward the (virtual) root.
  u32 mask = 1;
  while (mask < size) {
    if (rel & mask) {
      const u32 parent = (rel - mask + vroot) % size;
      coll_p2p_send(comm.world_of(parent), comm.coll_ctx(), kTagReduce, acc);
      break;
    }
    if (rel + mask < size) {
      const u32 child = (rel + mask + vroot) % size;
      coll_p2p_recv(comm.world_of(child), comm.coll_ctx(), kTagReduce, tmp);
      apply_reduce(dt, op, acc.data(), tmp.data(), count);
    }
    mask <<= 1;
  }
  if (me == vroot) std::memcpy(recvbuf, acc.data(), bytes);
}

void Mpi::allreduce(const void* sendbuf, void* recvbuf, u32 count, Datatype dt,
                    ReduceOp op, const Comm& comm) {
  ++stats_.allreduces;
  const u32 bytes = coll_bytes(count, dt);
  const AllreduceAlgo a = resolve_allreduce(comm.size(), bytes);
  if (a == AllreduceAlgo::kReduceBcast) {
    // Composite: the inner reduce/bcast charge their own binding cost and
    // TimedCall scopes, exactly as before the zoo.
    reduce(sendbuf, recvbuf, count, dt, op, 0, comm);
    bcast(recvbuf, count, dt, 0, comm);
    return;
  }
  TimedCall tc(*this);
  engine_.device().cpu(engine_.costs().binding);
  if (bytes) std::memcpy(recvbuf, sendbuf, bytes);
  coll::Ctx cx(engine_, comm);
  switch (a) {
    case AllreduceAlgo::kRabenseifner:
      coll::allreduce_rabenseifner(cx, recvbuf, count, dt, op);
      break;
    case AllreduceAlgo::kRing:
      coll::allreduce_ring(cx, recvbuf, count, dt, op);
      break;
    default:
      coll::allreduce_recursive_doubling(cx, recvbuf, count, dt, op);
      break;
  }
}

void Mpi::gather(const void* sendbuf, u32 count, Datatype dt, void* recvbuf,
                 i32 root, const Comm& comm) {
  TimedCall tc(*this);
  ++stats_.gathers;
  engine_.device().cpu(engine_.costs().binding);
  const u32 me = static_cast<u32>(rank(comm));
  const u32 bytes = coll_bytes(count, dt);
  if (me != static_cast<u32>(root)) {
    coll_p2p_send(comm.world_of(static_cast<u32>(root)), comm.coll_ctx(), kTagGather,
                  as_bytes(sendbuf, count, dt));
    return;
  }
  u8* out = static_cast<u8*>(recvbuf);
  std::memcpy(out + static_cast<usize>(me) * bytes, sendbuf, bytes);
  for (u32 r = 0; r < comm.size(); ++r) {
    if (r == me) continue;
    coll_p2p_recv(comm.world_of(r), comm.coll_ctx(), kTagGather,
                  {out + static_cast<usize>(r) * bytes, bytes});
  }
}

void Mpi::scatter(const void* sendbuf, void* recvbuf, u32 count, Datatype dt,
                  i32 root, const Comm& comm) {
  TimedCall tc(*this);
  ++stats_.scatters;
  engine_.device().cpu(engine_.costs().binding);
  const u32 me = static_cast<u32>(rank(comm));
  const u32 bytes = coll_bytes(count, dt);
  if (me == static_cast<u32>(root)) {
    const u8* in = static_cast<const u8*>(sendbuf);
    for (u32 r = 0; r < comm.size(); ++r) {
      if (r == me) {
        std::memcpy(recvbuf, in + static_cast<usize>(r) * bytes, bytes);
        continue;
      }
      coll_p2p_send(comm.world_of(r), comm.coll_ctx(), kTagScatter,
                    {in + static_cast<usize>(r) * bytes, bytes});
    }
    return;
  }
  coll_p2p_recv(comm.world_of(static_cast<u32>(root)), comm.coll_ctx(), kTagScatter,
                as_bytes(recvbuf, count, dt));
}

void Mpi::allgather(const void* sendbuf, u32 count, Datatype dt, void* recvbuf,
                    const Comm& comm) {
  ++stats_.allgathers;
  const u32 block = coll_bytes(count, dt);
  // The assembled result must itself fit a 32-bit wire length.
  const u64 total = static_cast<u64>(block) * comm.size();
  if (total > 0xFFFFFFFFull)
    throw std::invalid_argument(
        "scrmpi: allgather result overflows 32-bit byte count");
  if (resolve_allgather(comm.size(), block) == AllgatherAlgo::kRing) {
    TimedCall tc(*this);
    engine_.device().cpu(engine_.costs().binding);
    const u32 me = static_cast<u32>(rank(comm));
    u8* out = static_cast<u8*>(recvbuf);
    if (block)
      std::memcpy(out + static_cast<usize>(me) * block, sendbuf, block);
    coll::Ctx cx(engine_, comm);
    coll::allgather_ring(cx, out, block);
    return;
  }
  // Composite reference: gather + bcast charge their own scopes.
  gather(sendbuf, count, dt, recvbuf, 0, comm);
  bcast(recvbuf, count * comm.size(), dt, 0, comm);
}

void Mpi::alltoall(const void* sendbuf, void* recvbuf, u32 count, Datatype dt,
                   const Comm& comm) {
  TimedCall tc(*this);
  engine_.device().cpu(engine_.costs().binding);
  const u32 me = static_cast<u32>(rank(comm));
  const u32 np = comm.size();
  const u32 bytes = coll_bytes(count, dt);
  const u8* in = static_cast<const u8*>(sendbuf);
  u8* out = static_cast<u8*>(recvbuf);
  std::memcpy(out + static_cast<usize>(me) * bytes,
              in + static_cast<usize>(me) * bytes, bytes);
  // Pairwise exchange: step i talks to (me XOR-free ring partners). Using
  // (me + i) / (me - i) keeps every step contention-balanced on the ring.
  for (u32 i = 1; i < np; ++i) {
    const u32 dst = (me + i) % np;
    const u32 src = (me + np - i) % np;
    Request rr = engine_.irecv(static_cast<i32>(comm.world_of(src)), comm.coll_ctx(),
                               kTagAlltoall, {out + static_cast<usize>(src) * bytes, bytes});
    Request sr = engine_.isend(comm.world_of(dst), comm.coll_ctx(), kTagAlltoall,
                               {in + static_cast<usize>(dst) * bytes, bytes});
    engine_.wait(rr);
    engine_.wait(sr);
  }
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

void Mpi::publish_counters(obs::Counters& c, std::string_view group) const {
  c.add(group, "sends", stats_.sends);
  c.add(group, "recvs", stats_.recvs);
  c.add(group, "bcasts", stats_.bcasts);
  c.add(group, "barriers", stats_.barriers);
  c.add(group, "reduces", stats_.reduces);
  c.add(group, "gathers", stats_.gathers);
  c.add(group, "scatters", stats_.scatters);
  c.add(group, "allreduces", stats_.allreduces);
  c.add(group, "allgathers", stats_.allgathers);
  c.add(group, "bytes_sent", stats_.bytes_sent);
  c.add(group, "bytes_received", stats_.bytes_received);
  c.add(group, "time_in_mpi_ns", static_cast<u64>(to_ns(stats_.time_in_mpi)));
  c.add(group, "packets_handled", engine_.packets_handled());
  c.add(group, "op_timeouts", engine_.op_timeouts());
  c.add(group, "stale_packets", engine_.stale_packets());
  c.add(group, "malformed_packets", engine_.malformed_packets());
  c.add(group, "rndv_rts", engine_.rndv_rts());
  c.add(group, "rndv_cts", engine_.rndv_cts());
  c.add(group, "rndv_puts", engine_.rndv_puts());
  c.add(group, "rndv_fins", engine_.rndv_fins());
  c.add(group, "zero_copy_bytes", engine_.zero_copy_bytes());
}

// ---------------------------------------------------------------------------
// Communicator management
// ---------------------------------------------------------------------------

Comm Mpi::dup(const Comm& comm) {
  const u16 ctx = next_base_ctx_++;
  return Comm(ctx, comm.members());
}

Comm Mpi::split(const Comm& comm, i32 color, i32 key) {
  // Allgather (color, key) pairs over the parent, then every rank computes
  // the same grouping locally.
  struct Entry {
    i32 color, key;
  };
  const u32 size = comm.size();
  const u32 me = static_cast<u32>(rank(comm));
  std::vector<Entry> entries(size);
  const Entry mine{color, key};

  // Simple linear exchange on a reserved tag (split is not hot).
  for (u32 r = 0; r < size; ++r) {
    if (r == me) {
      entries[r] = mine;
      continue;
    }
    Request sreq = engine_.isend(comm.world_of(r), comm.coll_ctx(), kTagSplit,
                                 {reinterpret_cast<const u8*>(&mine), sizeof(Entry)});
    Request rreq = engine_.irecv(static_cast<i32>(comm.world_of(r)), comm.coll_ctx(),
                                 kTagSplit,
                                 {reinterpret_cast<u8*>(&entries[r]), sizeof(Entry)});
    engine_.wait(rreq);
    engine_.wait(sreq);
  }

  const u16 ctx = next_base_ctx_++;
  if (color < 0) return Comm(ctx, {});

  std::vector<u32> group;  // comm ranks in my color
  for (u32 r = 0; r < size; ++r)
    if (entries[r].color == color) group.push_back(r);
  std::stable_sort(group.begin(), group.end(), [&](u32 a, u32 b) {
    return entries[a].key < entries[b].key;
  });
  std::vector<u32> members;
  members.reserve(group.size());
  for (u32 r : group) members.push_back(comm.world_of(r));
  return Comm(ctx, std::move(members));
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

namespace {
template <typename T>
void apply_typed(ReduceOp op, T* acc, const T* in, u32 count) {
  for (u32 i = 0; i < count; ++i) {
    switch (op) {
      case ReduceOp::kSum: acc[i] = static_cast<T>(acc[i] + in[i]); break;
      case ReduceOp::kProd: acc[i] = static_cast<T>(acc[i] * in[i]); break;
      case ReduceOp::kMax: acc[i] = std::max(acc[i], in[i]); break;
      case ReduceOp::kMin: acc[i] = std::min(acc[i], in[i]); break;
      case ReduceOp::kLand: acc[i] = static_cast<T>(acc[i] && in[i]); break;
      case ReduceOp::kLor: acc[i] = static_cast<T>(acc[i] || in[i]); break;
      case ReduceOp::kBand:
        if constexpr (std::is_integral_v<T>)
          acc[i] = static_cast<T>(acc[i] & in[i]);
        else
          throw std::runtime_error("scrmpi: BAND on floating type");
        break;
      case ReduceOp::kBor:
        if constexpr (std::is_integral_v<T>)
          acc[i] = static_cast<T>(acc[i] | in[i]);
        else
          throw std::runtime_error("scrmpi: BOR on floating type");
        break;
    }
  }
}
}  // namespace

void apply_reduce(Datatype dt, ReduceOp op, void* acc, const void* in, u32 count) {
  switch (dt) {
    case Datatype::kByte:
    case Datatype::kChar:
      apply_typed(op, static_cast<u8*>(acc), static_cast<const u8*>(in), count);
      return;
    case Datatype::kInt32:
      apply_typed(op, static_cast<i32*>(acc), static_cast<const i32*>(in), count);
      return;
    case Datatype::kUint32:
      apply_typed(op, static_cast<u32*>(acc), static_cast<const u32*>(in), count);
      return;
    case Datatype::kInt64:
      apply_typed(op, static_cast<i64*>(acc), static_cast<const i64*>(in), count);
      return;
    case Datatype::kFloat:
      apply_typed(op, static_cast<float*>(acc), static_cast<const float*>(in), count);
      return;
    case Datatype::kDouble:
      apply_typed(op, static_cast<double*>(acc), static_cast<const double*>(in), count);
      return;
  }
  throw std::runtime_error("scrmpi: unknown datatype");
}

}  // namespace scrnet::scrmpi
