// The Channel Interface -- the lowest layer of the MPICH architecture the
// paper ports ("we have developed a SCRAMNet Channel layer device which is
// a minimal implementation of the Channel Interface").
//
// MPICH's channel interface is MPID_SendControl / MPID_ControlMsgAvail /
// MPID_RecvAnyControl plus MPID_SendChannel / MPID_RecvFromChannel for
// bulk data. Here the control+data pair is fused into whole packets: a
// device accepts a (header, payload) and produces fully reassembled
// packets, which keeps the upper layers device-independent while letting
// each device choose its own framing (one BBP message per packet on
// SCRAMNet; header+stream bytes on sockets).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "common/units.h"

namespace scrnet::scrmpi {

/// Packet kinds used by the ADI protocols and collectives.
enum class PktKind : u8 {
  kShort = 1,     // envelope + payload inline (eager, small)
  kEager = 2,     // envelope + payload (eager, larger; device may stream)
  kRndvRts = 3,   // rendezvous request-to-send (aux = sender request id)
  kRndvCts = 4,   // rendezvous clear-to-send   (aux = sender request id)
  kRndvData = 5,  // rendezvous payload          (aux = receiver request id)
  kCollData = 6,  // native-multicast collective payload (Bcast)
  kCollBarrier = 7,   // barrier arrival notification (aux = epoch)
  kCollRelease = 8,   // barrier release from coordinator (aux = epoch)
};

/// Fixed 20-byte envelope carried by every packet.
struct PktHeader {
  PktKind kind = PktKind::kShort;
  u16 ctx = 0;     // communicator context id
  i32 tag = 0;
  u32 src = 0;     // world rank of the sender
  u32 len = 0;     // payload bytes
  u32 aux = 0;     // protocol-specific (request id / barrier epoch)
};

inline constexpr u32 kHeaderWords = 5;
inline constexpr u32 kHeaderBytes = kHeaderWords * 4;

/// Serialize/deserialize the envelope (word 0 packs kind+ctx).
inline void encode_header(const PktHeader& h, u32 out[kHeaderWords]) {
  out[0] = static_cast<u32>(h.kind) | (static_cast<u32>(h.ctx) << 8);
  out[1] = static_cast<u32>(h.tag);
  out[2] = h.src;
  out[3] = h.len;
  out[4] = h.aux;
}

inline PktHeader decode_header(const u32 in[kHeaderWords]) {
  PktHeader h;
  h.kind = static_cast<PktKind>(in[0] & 0xFF);
  h.ctx = static_cast<u16>(in[0] >> 8);
  h.tag = static_cast<i32>(in[1]);
  h.src = in[2];
  h.len = in[3];
  h.aux = in[4];
  return h;
}

struct Packet {
  PktHeader hdr;
  std::vector<u8> payload;
};

/// A channel device: one per MPI process.
class ChannelDevice {
 public:
  virtual ~ChannelDevice() = default;

  virtual u32 rank() const = 0;
  virtual u32 size() const = 0;

  /// MPID_SendControl (+ MPID_SendChannel fused): transmit one packet.
  /// Degraded-mode devices surface bounded-wait expiry as kTimedOut (the
  /// BBP device under a lost ACK path); a clean transmit is kOk. Malformed
  /// arguments are still programming errors.
  virtual Status send_packet(u32 dst, const PktHeader& hdr,
                             std::span<const u8> payload) = 0;

  /// MPID_ControlMsgAvail + MPID_RecvAnyControl fused: return the next
  /// fully reassembled packet if one is available (non-blocking).
  virtual std::optional<Packet> poll_packet() = 0;

  /// True when the device can multicast a packet in a single network step
  /// (SCRAMNet's hardware replication; the hook MPICH reserves for devices
  /// with extra functionality).
  virtual bool has_native_mcast() const { return false; }

  /// Multicast a packet; default loops over send_packet and stops at the
  /// first failure.
  virtual Status mcast_packet(std::span<const u32> dsts, const PktHeader& hdr,
                              std::span<const u8> payload) {
    for (u32 d : dsts) {
      if (Status st = send_packet(d, hdr, payload); !st.ok()) return st;
    }
    return Status::Ok();
  }

  /// CPU cost of packetizing `len` payload bytes into this device (the
  /// channel-interface copy). Device-specific: the BBP channel pays a real
  /// extra pass; a sockets channel folds it into the kernel copy the TCP
  /// stack already charges.
  virtual SimTime pack_cost(u32 len) const = 0;
  /// CPU cost of delivering `len` payload bytes out of this device.
  virtual SimTime unpack_cost(u32 len) const = 0;

  /// Account CPU time spent in the MPI software layers above the device.
  virtual void cpu(SimTime dt) = 0;

  /// Current virtual time (0 when the device has no clock, e.g. mocks or
  /// real-thread backends); used only for statistics.
  virtual SimTime now() const { return 0; }

  /// Back off when a blocking wait makes no progress.
  virtual void idle_pause() = 0;

  /// Largest payload the device prefers to carry eagerly; above this the
  /// ADI switches to rendezvous.
  virtual u32 eager_limit() const = 0;

  /// Largest payload the device can carry in a single network unit
  /// (envelope + payload inline); eager packets up to eager_limit() may
  /// need device-side streaming. The ADI marks packets at or below this
  /// kShort and larger eager packets kEager.
  virtual u32 short_limit() const = 0;
};

}  // namespace scrnet::scrmpi
