// The Channel Interface -- the lowest layer of the MPICH architecture the
// paper ports ("we have developed a SCRAMNet Channel layer device which is
// a minimal implementation of the Channel Interface").
//
// MPICH's channel interface is MPID_SendControl / MPID_ControlMsgAvail /
// MPID_RecvAnyControl plus MPID_SendChannel / MPID_RecvFromChannel for
// bulk data. Here the control+data pair is fused into whole packets: a
// device accepts a (header, payload) and produces fully reassembled
// packets, which keeps the upper layers device-independent while letting
// each device choose its own framing (one BBP message per packet on
// SCRAMNet; header+stream bytes on sockets).
#pragma once

#include <cstring>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "common/units.h"

namespace scrnet::scrmpi {

/// Packet kinds used by the ADI protocols and collectives.
enum class PktKind : u8 {
  kShort = 1,     // envelope + payload inline (eager, small)
  kEager = 2,     // envelope + payload (eager, larger; device may stream)
  kRndvRts = 3,   // rendezvous request-to-send (aux = sender request id)
  kRndvCts = 4,   // rendezvous clear-to-send   (aux = sender request id)
  kRndvData = 5,  // rendezvous payload          (aux = receiver request id)
  kCollData = 6,  // native-multicast collective payload (Bcast)
  kCollBarrier = 7,   // barrier arrival notification (aux = epoch)
  kCollRelease = 8,   // barrier release from coordinator (aux = epoch)
  kRndvFin = 9,   // zero-copy rendezvous completion (aux = receiver req id)
};

/// Fixed 20-byte envelope carried by every packet.
struct PktHeader {
  PktKind kind = PktKind::kShort;
  u16 ctx = 0;     // communicator context id
  i32 tag = 0;
  u32 src = 0;     // world rank of the sender
  u32 len = 0;     // payload bytes
  u32 aux = 0;     // protocol-specific (request id / barrier epoch)
};

inline constexpr u32 kHeaderWords = 5;
inline constexpr u32 kHeaderBytes = kHeaderWords * 4;

/// Serialize/deserialize the envelope (word 0 packs kind+ctx).
inline void encode_header(const PktHeader& h, u32 out[kHeaderWords]) {
  out[0] = static_cast<u32>(h.kind) | (static_cast<u32>(h.ctx) << 8);
  out[1] = static_cast<u32>(h.tag);
  out[2] = h.src;
  out[3] = h.len;
  out[4] = h.aux;
}

inline PktHeader decode_header(const u32 in[kHeaderWords]) {
  PktHeader h;
  h.kind = static_cast<PktKind>(in[0] & 0xFF);
  h.ctx = static_cast<u16>(in[0] >> 8);
  h.tag = static_cast<i32>(in[1]);
  h.src = in[2];
  h.len = in[3];
  h.aux = in[4];
  return h;
}

struct Packet {
  PktHeader hdr;
  std::vector<u8> payload;
};

/// Destination placement a receiver grants to a sender in a zero-copy
/// rendezvous CTS. Carried as the CTS payload (kPlacementBytes on the
/// wire); opaque to the ADI beyond round-tripping it back to the device.
///
///   addr  -- device-specific placement (billboard word address, RDMA VA)
///   bytes -- capacity granted (receiver clips to its posted buffer)
///   rkey  -- remote access key / registration handle (0 when unused)
///   via   -- routing cookie for composite devices (hybrid: which leg)
struct RndvPlacement {
  u64 addr = 0;
  u32 bytes = 0;
  u32 rkey = 0;
  u32 via = 0;
};

inline constexpr u32 kPlacementBytes = 20;

inline void encode_placement(const RndvPlacement& p, u8 out[kPlacementBytes]) {
  const u32 w[5] = {static_cast<u32>(p.addr), static_cast<u32>(p.addr >> 32),
                    p.bytes, p.rkey, p.via};
  std::memcpy(out, w, kPlacementBytes);
}

inline RndvPlacement decode_placement(std::span<const u8> in) {
  u32 w[5] = {};
  std::memcpy(w, in.data(), kPlacementBytes);
  RndvPlacement p;
  p.addr = static_cast<u64>(w[0]) | (static_cast<u64>(w[1]) << 32);
  p.bytes = w[2];
  p.rkey = w[3];
  p.via = w[4];
  return p;
}

/// A channel device: one per MPI process.
class ChannelDevice {
 public:
  virtual ~ChannelDevice() = default;

  virtual u32 rank() const = 0;
  virtual u32 size() const = 0;

  /// Short device-family name ("bbp", "sock", "hybrid", "rdma") keying the
  /// collective decision table (src/tune/). Mocks keep the default.
  virtual std::string_view kind() const { return "generic"; }

  /// MPID_SendControl (+ MPID_SendChannel fused): transmit one packet.
  /// Degraded-mode devices surface bounded-wait expiry as kTimedOut (the
  /// BBP device under a lost ACK path); a clean transmit is kOk. Malformed
  /// arguments are still programming errors.
  virtual Status send_packet(u32 dst, const PktHeader& hdr,
                             std::span<const u8> payload) = 0;

  /// MPID_ControlMsgAvail + MPID_RecvAnyControl fused: return the next
  /// fully reassembled packet if one is available (non-blocking).
  virtual std::optional<Packet> poll_packet() = 0;

  /// True when the device can multicast a packet in a single network step
  /// (SCRAMNet's hardware replication; the hook MPICH reserves for devices
  /// with extra functionality).
  virtual bool has_native_mcast() const { return false; }

  /// Largest single payload mcast_packet can carry. For BBP this is the
  /// sender's billboard data partition (bank/procs scaled): a larger post
  /// would be rejected -- and since collective transport is
  /// fire-and-forget, silently dropped, deadlocking the receivers. The
  /// native bcast chunks payloads above this cap.
  virtual u32 mcast_cap() const { return 0xFFFFFFFFu; }

  /// Multicast a packet; default loops over send_packet and stops at the
  /// first failure.
  virtual Status mcast_packet(std::span<const u32> dsts, const PktHeader& hdr,
                              std::span<const u8> payload) {
    for (u32 d : dsts) {
      if (Status st = send_packet(d, hdr, payload); !st.ok()) return st;
    }
    return Status::Ok();
  }

  /// CPU cost of packetizing `len` payload bytes into this device (the
  /// channel-interface copy). Device-specific: the BBP channel pays a real
  /// extra pass; a sockets channel folds it into the kernel copy the TCP
  /// stack already charges.
  virtual SimTime pack_cost(u32 len) const = 0;
  /// CPU cost of delivering `len` payload bytes out of this device.
  virtual SimTime unpack_cost(u32 len) const = 0;

  /// Account CPU time spent in the MPI software layers above the device.
  virtual void cpu(SimTime dt) = 0;

  /// Current virtual time (0 when the device has no clock, e.g. mocks or
  /// real-thread backends); used only for statistics.
  virtual SimTime now() const { return 0; }

  /// Back off when a blocking wait makes no progress.
  virtual void idle_pause() = 0;

  /// Largest payload the device prefers to carry eagerly; above this the
  /// ADI switches to rendezvous.
  virtual u32 eager_limit() const = 0;

  /// Largest payload the device can carry in a single network unit
  /// (envelope + payload inline); eager packets up to eager_limit() may
  /// need device-side streaming. The ADI marks packets at or below this
  /// kShort and larger eager packets kEager.
  virtual u32 short_limit() const = 0;

  // -------------------------------------------------------------------------
  // Optional zero-copy put capability (MPICH2/InfiniBand-style RDMA channel
  // extensions). Devices without remote-write hardware keep the defaults and
  // the ADI falls back to the copy-based kRndvData path per message.
  // -------------------------------------------------------------------------

  /// True when the device can land rendezvous payloads directly in a
  /// receiver-granted placement (billboard window, registered RDMA buffer).
  virtual bool supports_put() const { return false; }

  /// Receiver side: reserve placement for up to `bytes` from world rank
  /// `src`, targeting the posted user buffer `dest`. On success the
  /// placement travels back to the sender inside the CTS payload. Failure
  /// (window full, registration failed) is not an error -- the ADI falls
  /// back to the copy path for this message.
  virtual Result<RndvPlacement> rndv_reserve(u32 src, u32 bytes,
                                             std::span<u8> dest) {
    (void)src;
    (void)bytes;
    (void)dest;
    return Status::Unavailable("device has no put capability");
  }

  /// Sender side: remote-write `payload` into `placement` on `dst`, then
  /// deliver the FIN packet. The device guarantees FIN arrives after the
  /// data is visible at the placement (ring ordering on BBP, CQE-gated send
  /// on RDMA), so the receiver may complete on FIN alone.
  virtual Status rndv_put(u32 dst, const RndvPlacement& placement,
                          std::span<const u8> payload, const PktHeader& fin_hdr,
                          std::span<const u8> fin_payload) {
    (void)dst;
    (void)placement;
    (void)payload;
    (void)fin_hdr;
    (void)fin_payload;
    return Status::Unavailable("device has no put capability");
  }

  /// Receiver side, on FIN: make the first `len` placement bytes visible in
  /// `buf`. Devices that staged the payload in replicated memory pay the
  /// host read here (the data still has to reach host memory); true RDMA
  /// devices already landed it in `buf` and only poll their CQ.
  virtual Status rndv_complete(const RndvPlacement& placement,
                               std::span<u8> buf, u32 len) {
    (void)placement;
    (void)buf;
    (void)len;
    return Status::Unavailable("device has no put capability");
  }

  /// Receiver side: release a reservation (after completion, or on timeout
  /// when the sender died mid-rendezvous). Must be safe to call for any
  /// placement previously returned by rndv_reserve on this device.
  virtual void rndv_release(const RndvPlacement& placement) { (void)placement; }
};

}  // namespace scrnet::scrmpi
