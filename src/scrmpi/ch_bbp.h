// ch_bbp: the SCRAMNet channel device -- the paper's port of MPICH.
//
// Every packet becomes exactly one BillBoard Protocol message (envelope
// words followed by payload words), so BBP's per-sender in-order delivery
// directly gives the channel the ordering MPICH requires, and bbp_Mcast
// gives the native multicast hook used by MPI_Bcast / MPI_Barrier.
#pragma once

#include "bbp/endpoint.h"
#include "scrmpi/channel.h"

namespace scrnet::scrmpi {

class BbpChannel final : public ChannelDevice {
 public:
  /// `ep` must outlive the channel. Ranks are BBP ranks.
  explicit BbpChannel(bbp::Endpoint& ep) : ep_(ep) {
    rxbuf_.resize(kHeaderBytes + ep.layout().max_message_bytes());
  }

  std::string_view kind() const override { return "bbp"; }
  u32 rank() const override { return ep_.rank(); }
  u32 size() const override { return ep_.procs(); }

  Status send_packet(u32 dst, const PktHeader& hdr,
                     std::span<const u8> payload) override;
  std::optional<Packet> poll_packet() override;

  bool has_native_mcast() const override { return true; }
  Status mcast_packet(std::span<const u32> dsts, const PktHeader& hdr,
                      std::span<const u8> payload) override;
  /// One framed post must fit the sender's billboard data partition
  /// (bank/procs); past this Endpoint::post rejects the message outright.
  u32 mcast_cap() const override {
    const u32 room = ep_.layout().max_message_bytes();
    return room > kHeaderBytes ? (room - kHeaderBytes) & ~3u : 0;
  }

  /// The channel-interface copy is a real extra pass over the payload on
  /// this device (user buffer -> packet frame) -- the cost the paper's
  /// Section 7 proposes eliminating with a direct ADI.
  SimTime pack_cost(u32 len) const override { return ns(45) * len; }
  SimTime unpack_cost(u32 len) const override { return ns(35) * len; }

  SimTime now() const override { return ep_.port().now(); }
  void cpu(SimTime dt) override { ep_.port().cpu_delay(dt); }
  void idle_pause() override { ep_.port().poll_pause(); }

  /// Eager limit: keep single messages well under the data partition so
  /// several can be in flight; beyond this the ADI uses rendezvous.
  u32 eager_limit() const override {
    return ep_.layout().max_message_bytes() / 4;
  }

  /// Every packet is exactly one BBP message, so anything eager is also
  /// "short": a single network unit with the envelope inline.
  u32 short_limit() const override { return eager_limit(); }

  // Zero-copy rendezvous: any node can write any SCRAMNet address, so a
  // receiver-granted window extent (Layout::rndv_base) is a put target.
  // The ring's per-sender write ordering makes the FIN (a regular BBP
  // message from the same sender) arrive after the payload words.
  bool supports_put() const override {
    return ep_.layout().rndv_words > 0;
  }
  Result<RndvPlacement> rndv_reserve(u32 src, u32 bytes,
                                     std::span<u8> dest) override;
  Status rndv_put(u32 dst, const RndvPlacement& placement,
                  std::span<const u8> payload, const PktHeader& fin_hdr,
                  std::span<const u8> fin_payload) override;
  Status rndv_complete(const RndvPlacement& placement, std::span<u8> buf,
                       u32 len) override;
  void rndv_release(const RndvPlacement& placement) override;

  bbp::Endpoint& endpoint() { return ep_; }

 private:
  std::vector<u8> frame(const PktHeader& hdr, std::span<const u8> payload) const;

  bbp::Endpoint& ep_;
  std::vector<u8> rxbuf_;
};

}  // namespace scrnet::scrmpi
