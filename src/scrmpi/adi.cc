#include "scrmpi/adi.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "obs/trace.h"

namespace scrnet::scrmpi {

namespace {
/// The RTS payload is the 4-byte total message length (hdr.len must always
/// equal the *framed* payload size, which for an RTS is 4).
u32 rts_msg_len(std::span<const u8> payload) {
  assert(payload.size() == 4);
  u32 len = 0;
  std::memcpy(&len, payload.data(), 4);
  return len;
}
}  // namespace

Engine::Engine(ChannelDevice& dev, LayerCosts costs) : dev_(dev), costs_(costs) {
  // CI's forced-rendezvous leg lowers the eager/rendezvous switch point for
  // a whole run via the environment; an explicit eager_cap always wins.
  if (costs_.eager_cap == 0) {
    if (const char* e = std::getenv("SCRNET_RNDV_EAGER_MAX")) {
      costs_.eager_cap = static_cast<u32>(std::strtoul(e, nullptr, 10));
    }
  }
}

u32 Engine::effective_eager_limit() const {
  const u32 dev_limit = dev_.eager_limit();
  return costs_.eager_cap > 0 ? std::min(dev_limit, costs_.eager_cap)
                              : dev_limit;
}

u32 Engine::alloc_req() {
  dev_.cpu(costs_.request_alloc);
  if (!free_reqs_.empty()) {
    const u32 idx = free_reqs_.back();
    free_reqs_.pop_back();
    reqs_[idx] = Req{};
    return idx;
  }
  reqs_.emplace_back();
  return static_cast<u32>(reqs_.size() - 1);
}

void Engine::free_req(u32 idx) {
  reqs_[idx].state = Req::State::kFree;
  reqs_[idx].send_view = {};
  reqs_[idx].placement = {};
  free_reqs_.push_back(idx);
}

// ---------------------------------------------------------------------------
// Send side
// ---------------------------------------------------------------------------

Request Engine::isend(u32 dst, u16 ctx, i32 tag, std::span<const u8> data) {
  TRACE_SPAN(obs::Layer::kMpi, rank(), "adi.isend", dev_);
  const u32 idx = alloc_req();
  Req& r = reqs_[idx];
  dev_.cpu(costs_.adi_dispatch);

  PktHeader h;
  h.ctx = ctx;
  h.tag = tag;
  h.src = rank();
  h.len = static_cast<u32>(data.size());

  if (data.size() <= effective_eager_limit()) {
    // Short/eager: envelope + payload leave in one packet; the request is
    // complete as soon as the channel accepts it. A failed transmit (the
    // device waited out its bounded wait) completes the request with the
    // propagated error instead of hanging the caller.
    h.kind = data.size() <= dev_.short_limit() ? PktKind::kShort : PktKind::kEager;
    dev_.cpu(costs_.channel_pack +
             scaled(dev_.pack_cost(static_cast<u32>(data.size()))));
    const Status st = dev_.send_packet(dst, h, data);
    r.state = Req::State::kDone;
    if (!st.ok()) r.status.err = st.code();
    return Request{idx};
  }

  // Rendezvous: request-to-send now, payload when the receiver is ready.
  // hdr.len always equals the framed payload size (ch_sock relies on it);
  // the RTS therefore carries the full message length as a 4-byte payload.
  h.kind = PktKind::kRndvRts;
  h.aux = idx;  // so the CTS can find this request
  const u32 msg_len = static_cast<u32>(data.size());
  u8 len_payload[4];
  std::memcpy(len_payload, &msg_len, 4);
  h.len = 4;
  r.state = Req::State::kSendWaitCts;
  r.dst = dst;
  r.send_view = data;  // MPI keeps the buffer live until wait(): no copy
  dev_.cpu(costs_.channel_pack);
  ++rndv_rts_;
  const Status st = dev_.send_packet(dst, h, len_payload);
  if (!st.ok()) {
    r.send_view = {};
    r.state = Req::State::kDone;
    r.status.err = st.code();
  }
  return Request{idx};
}

// ---------------------------------------------------------------------------
// Receive side
// ---------------------------------------------------------------------------

Request Engine::irecv(i32 src, u16 ctx, i32 tag, std::span<u8> buf) {
  TRACE_SPAN(obs::Layer::kMpi, rank(), "adi.irecv", dev_);
  const u32 idx = alloc_req();
  Req& r = reqs_[idx];
  r.want_src = src;
  r.want_tag = tag;
  r.ctx = ctx;
  r.buf = buf;
  dev_.cpu(costs_.adi_dispatch);

  // Check the unexpected queue first (a message may already be here).
  dev_.cpu(costs_.match);
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (!match(r, it->hdr)) continue;
    Unexpected u = std::move(*it);
    unexpected_.erase(it);
    if (u.hdr.kind == PktKind::kRndvRts) {
      grant_rendezvous(idx, u.hdr, u.payload);
    } else {
      complete_recv_into(idx, u.hdr, u.payload);
    }
    return Request{idx};
  }
  r.state = Req::State::kRecvPosted;
  posted_.push_back(idx);
  return Request{idx};
}

void Engine::grant_rendezvous(u32 idx, const PktHeader& rts,
                              std::span<const u8> rts_payload) {
  Req& r = reqs_[idx];
  // CTS carries the sender's request id in aux and ours in tag
  // (documented protocol detail); the envelope fields of the eventual
  // completion come from the RTS, recorded now.
  PktHeader cts;
  cts.kind = PktKind::kRndvCts;
  cts.ctx = rts.ctx;
  cts.src = rank();
  cts.aux = rts.aux;
  cts.tag = static_cast<i32>(idx);
  r.status = status_of(rts);
  const u32 msg_len = rts_msg_len(rts_payload);
  r.status.count_bytes = msg_len;

  // Zero-copy grant: reserve placement inside the posted buffer region and
  // ship it back as the CTS payload. Any failure (no window space, device
  // without put) silently falls back to the copy path for this message.
  u8 placement_bytes[kPlacementBytes];
  std::span<const u8> cts_payload{};
  const u32 want =
      static_cast<u32>(std::min<usize>(msg_len, r.buf.size()));
  if (dev_.supports_put() && want > 0) {
    Result<RndvPlacement> res =
        dev_.rndv_reserve(rts.src, want, r.buf.first(want));
    if (res.ok()) {
      r.placement = res.value();
      r.state = Req::State::kRecvWaitFin;
      encode_placement(r.placement, placement_bytes);
      cts_payload = placement_bytes;
      cts.len = kPlacementBytes;
    }
  }
  if (cts_payload.empty()) r.state = Req::State::kRecvWaitData;
  ++rndv_cts_;
  if (const Status st = dev_.send_packet(rts.src, cts, cts_payload);
      !st.ok()) {
    if (r.state == Req::State::kRecvWaitFin) dev_.rndv_release(r.placement);
    r.state = Req::State::kDone;
    r.status.err = st.code();
  }
}

void Engine::complete_recv_into(u32 req_idx, const PktHeader& hdr,
                                std::span<const u8> payload) {
  Req& r = reqs_[req_idx];
  const usize n = std::min<usize>(payload.size(), r.buf.size());
  if (n) std::memcpy(r.buf.data(), payload.data(), n);
  dev_.cpu(costs_.complete + scaled(dev_.unpack_cost(static_cast<u32>(n))));
  r.status = status_of(hdr);
  r.status.truncated = payload.size() > r.buf.size();
  r.state = Req::State::kDone;
}

// ---------------------------------------------------------------------------
// Progress
// ---------------------------------------------------------------------------

bool Engine::progress() {
  bool any = false;
  while (auto pkt = dev_.poll_packet()) {
    handle(std::move(*pkt));
    any = true;
  }
  return any;
}

void Engine::handle(Packet pkt) {
  ++packets_handled_;
  const PktHeader& h = pkt.hdr;
  switch (h.kind) {
    case PktKind::kShort:
    case PktKind::kEager: {
      dev_.cpu(costs_.match);
      for (auto it = posted_.begin(); it != posted_.end(); ++it) {
        if (!match(reqs_[*it], h)) continue;
        const u32 idx = *it;
        posted_.erase(it);
        complete_recv_into(idx, h, pkt.payload);
        return;
      }
      unexpected_.push_back(Unexpected{h, std::move(pkt.payload)});
      return;
    }
    case PktKind::kRndvRts: {
      dev_.cpu(costs_.match);
      for (auto it = posted_.begin(); it != posted_.end(); ++it) {
        if (!match(reqs_[*it], h)) continue;
        const u32 idx = *it;
        posted_.erase(it);
        grant_rendezvous(idx, h, pkt.payload);
        return;
      }
      unexpected_.push_back(Unexpected{h, std::move(pkt.payload)});
      return;
    }
    case PktKind::kRndvCts: {
      const u32 idx = h.aux;
      if (idx >= reqs_.size()) {
        ++malformed_packets_;
        return;
      }
      Req& r = reqs_[idx];
      if (r.state == Req::State::kZombie) {
        // The sender's wait timed out before this CTS arrived; the request
        // id was parked exactly so this packet can be reaped safely.
        ++stale_packets_;
        free_req(idx);
        return;
      }
      if (r.state != Req::State::kSendWaitCts) {
        ++stale_packets_;
        return;
      }
      if (pkt.payload.size() == kPlacementBytes) {
        // Zero-copy grant: put the payload straight from the user buffer
        // into the receiver's placement, FIN rides behind it. No channel
        // packetization, no per-byte pack charge -- that is the win; the
        // device charges its own honest put cost (ring write / doorbell).
        const RndvPlacement pl = decode_placement(pkt.payload);
        PktHeader fin;
        fin.kind = PktKind::kRndvFin;
        fin.ctx = h.ctx;
        fin.src = rank();
        fin.len = 0;
        fin.aux = static_cast<u32>(h.tag);  // receiver's request id
        const std::span<const u8> data = r.send_view.first(
            std::min<usize>(r.send_view.size(), pl.bytes));
        const Status st = dev_.rndv_put(r.dst, pl, data, fin, {});
        ++rndv_put_;
        zero_copy_bytes_ += data.size();
        r.send_view = {};
        r.state = Req::State::kDone;
        if (!st.ok()) r.status.err = st.code();
        return;
      }
      PktHeader data_hdr;
      data_hdr.kind = PktKind::kRndvData;
      data_hdr.ctx = h.ctx;
      data_hdr.src = rank();
      data_hdr.len = static_cast<u32>(r.send_view.size());
      data_hdr.aux = static_cast<u32>(h.tag);  // receiver's request id
      dev_.cpu(costs_.channel_pack +
               scaled(dev_.pack_cost(static_cast<u32>(r.send_view.size()))));
      const Status st = dev_.send_packet(r.dst, data_hdr, r.send_view);
      r.send_view = {};
      r.state = Req::State::kDone;
      if (!st.ok()) r.status.err = st.code();
      return;
    }
    case PktKind::kRndvData: {
      const u32 idx = h.aux;
      if (idx >= reqs_.size()) {
        ++malformed_packets_;
        return;
      }
      Req& r = reqs_[idx];
      if (r.state == Req::State::kZombie) {
        ++stale_packets_;
        free_req(idx);
        return;
      }
      if (r.state != Req::State::kRecvWaitData) {
        ++stale_packets_;
        return;
      }
      const i32 keep_tag = r.status.tag;  // envelope came with the RTS
      const i32 keep_src = r.status.source;
      complete_recv_into(idx, h, pkt.payload);
      r.status.tag = keep_tag;
      r.status.source = keep_src;
      return;
    }
    case PktKind::kRndvFin: {
      const u32 idx = h.aux;
      if (idx >= reqs_.size()) {
        ++malformed_packets_;
        return;
      }
      Req& r = reqs_[idx];
      if (r.state == Req::State::kZombie) {
        // Receiver timed out mid-rendezvous: the placement was already
        // released by timeout_request, so only the id needs reaping.
        ++stale_packets_;
        free_req(idx);
        return;
      }
      if (r.state != Req::State::kRecvWaitFin) {
        ++stale_packets_;
        return;
      }
      // The device guarantees FIN-after-data: the payload is already at the
      // placement. Make it visible in the user buffer (free for true RDMA;
      // a replicated-memory read for BBP) -- note no per-byte unpack charge
      // and no channel-interface copy.
      const u32 n = static_cast<u32>(std::min<usize>(
          std::min<usize>(r.status.count_bytes, r.buf.size()),
          r.placement.bytes));
      dev_.cpu(costs_.complete);
      const Status st = dev_.rndv_complete(r.placement, r.buf, n);
      dev_.rndv_release(r.placement);
      ++rndv_fin_;
      r.status.truncated = r.status.count_bytes > n;
      r.state = Req::State::kDone;
      if (!st.ok()) r.status.err = st.code();
      return;
    }
    case PktKind::kCollData: {
      dev_.cpu(costs_.coll_fast);
      collq_[{h.ctx, h.src}].push_back(std::move(pkt.payload));
      return;
    }
    case PktKind::kCollBarrier: {
      dev_.cpu(costs_.coll_fast);
      ++barrier_count_[{h.ctx, h.aux}];
      return;
    }
    case PktKind::kCollRelease: {
      dev_.cpu(costs_.coll_fast);
      u32& e = release_epoch_[h.ctx];
      e = std::max(e, h.aux);
      return;
    }
  }
  // Unknown packet kind: under fault injection a corrupted or stale frame
  // can decode to garbage; count and drop rather than kill the rank.
  ++malformed_packets_;
}

// ---------------------------------------------------------------------------
// Completion
// ---------------------------------------------------------------------------

bool Engine::spin_until_done(u32 idx) {
  const SimTime deadline =
      costs_.op_timeout > 0 ? dev_.now() + costs_.op_timeout : 0;
  while (reqs_[idx].state != Req::State::kDone) {
    if (!progress()) {
      if (deadline != 0 && dev_.now() >= deadline) return false;
      dev_.idle_pause();
    }
  }
  return true;
}

MpiStatus Engine::timeout_request(u32 idx) {
  ++timeouts_;
  Req& r = reqs_[idx];
  MpiStatus st = r.status;
  st.err = StatusCode::kTimedOut;
  switch (r.state) {
    case Req::State::kRecvPosted: {
      // Never matched: nothing in flight names this request, so the id can
      // be recycled once it leaves the posted queue.
      auto it = std::find(posted_.begin(), posted_.end(), idx);
      if (it != posted_.end()) posted_.erase(it);
      free_req(idx);
      break;
    }
    case Req::State::kRecvWaitFin:
      // Mid-rendezvous with a placement outstanding: give the window space
      // back before parking (a late FIN is then reaped without touching
      // the dead buffer). A put already in flight lands in released window
      // memory -- harmless, it is never read.
      dev_.rndv_release(r.placement);
      r.placement = {};
      [[fallthrough]];
    case Req::State::kSendWaitCts:
    case Req::State::kRecvWaitData:
      // A late CTS/Data/FIN carrying this id may still arrive: park as
      // zombie (handle() reaps it) so the id is never recycled onto a live
      // request. The caller's buffer must be dropped now -- it dies with
      // this call.
      r.state = Req::State::kZombie;
      r.send_view = {};
      r.buf = {};
      break;
    default:
      free_req(idx);
      break;
  }
  return st;
}

MpiStatus Engine::wait(Request req) {
  TRACE_SPAN(obs::Layer::kMpi, rank(), "adi.wait", dev_);
  assert(req.valid() && req.idx < reqs_.size());
  assert(reqs_[req.idx].state != Req::State::kFree && "wait on freed request");
  if (!spin_until_done(req.idx)) return timeout_request(req.idx);
  const MpiStatus st = reqs_[req.idx].status;
  free_req(req.idx);
  return st;
}

std::optional<MpiStatus> Engine::test(Request req) {
  assert(req.valid() && req.idx < reqs_.size());
  progress();
  if (reqs_[req.idx].state != Req::State::kDone) return std::nullopt;
  const MpiStatus st = reqs_[req.idx].status;
  free_req(req.idx);
  return st;
}

MpiStatus Engine::probe(i32 src, u16 ctx, i32 tag) {
  const SimTime deadline =
      costs_.op_timeout > 0 ? dev_.now() + costs_.op_timeout : 0;
  for (;;) {
    if (auto st = iprobe(src, ctx, tag)) return *st;
    if (!progress()) {
      if (deadline != 0 && dev_.now() >= deadline) {
        ++timeouts_;
        MpiStatus st;
        st.err = StatusCode::kTimedOut;
        return st;
      }
      dev_.idle_pause();
    }
  }
}

std::optional<MpiStatus> Engine::iprobe(i32 src, u16 ctx, i32 tag) {
  dev_.cpu(costs_.probe);
  progress();
  for (const Unexpected& u : unexpected_) {
    if (!match(src, ctx, tag, u.hdr)) continue;
    MpiStatus st = status_of(u.hdr);
    if (u.hdr.kind == PktKind::kRndvRts) st.count_bytes = rts_msg_len(u.payload);
    return st;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Native-multicast collective transport
// ---------------------------------------------------------------------------

void Engine::coll_mcast(std::span<const u32> dsts, u16 ctx, PktKind kind,
                        u32 aux, std::span<const u8> data) {
  PktHeader h;
  h.kind = kind;
  h.ctx = ctx;
  h.src = rank();
  h.len = static_cast<u32>(data.size());
  h.aux = aux;
  dev_.cpu(costs_.coll_fast + scaled(dev_.pack_cost(static_cast<u32>(data.size()))));
  // Collective transport keeps fire-and-forget semantics: a degraded path
  // surfaces at the blocked coll_wait_* peer, not here.
  (void)dev_.mcast_packet(dsts, h, data);
}

void Engine::coll_send(u32 dst, u16 ctx, PktKind kind, u32 aux,
                       std::span<const u8> data) {
  PktHeader h;
  h.kind = kind;
  h.ctx = ctx;
  h.src = rank();
  h.len = static_cast<u32>(data.size());
  h.aux = aux;
  dev_.cpu(costs_.coll_fast);
  (void)dev_.send_packet(dst, h, data);
}

std::vector<u8> Engine::coll_wait_data(u16 ctx, u32 root) {
  auto& q = collq_[{ctx, root}];
  while (q.empty()) {
    if (!progress()) dev_.idle_pause();
  }
  std::vector<u8> data = std::move(q.front());
  q.pop_front();
  dev_.cpu(costs_.coll_fast + scaled(dev_.unpack_cost(static_cast<u32>(data.size()))));
  return data;
}

void Engine::coll_wait_arrivals(u16 ctx, u32 epoch, u32 n) {
  const auto key = std::make_pair(ctx, epoch);
  while (barrier_count_[key] < n) {
    if (!progress()) dev_.idle_pause();
  }
  barrier_count_.erase(key);
}

void Engine::coll_wait_release(u16 ctx, u32 epoch) {
  while (release_epoch_[ctx] < epoch) {
    if (!progress()) dev_.idle_pause();
  }
}

}  // namespace scrnet::scrmpi
