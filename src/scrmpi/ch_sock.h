// ch_sock: the sockets channel device -- MPICH-over-TCP/IP, used for the
// paper's Fast Ethernet, ATM and Myrinet(TCP) MPI baselines (Figures 3, 5
// and 6).
//
// Packets are framed on the per-source byte stream as
// [20-byte envelope][payload]. poll_packet() absorbs whatever frames the
// fabric has delivered and returns a packet once one source's stream holds
// a complete frame.
#pragma once

#include "netmodels/tcp.h"
#include "scrmpi/channel.h"
#include "sim/simulation.h"

namespace scrnet::scrmpi {

class SockChannel final : public ChannelDevice {
 public:
  /// One channel per rank; `stack` is this host's TCP stack and `proc` the
  /// simulated process running the rank.
  SockChannel(netmodels::TcpStack& stack, sim::Process& proc, u32 size,
              SimTime poll_gap = ns(500))
      : stack_(stack), proc_(proc), size_(size), poll_gap_(poll_gap),
        want_(size, 0) {}

  std::string_view kind() const override { return "sock"; }
  u32 rank() const override { return stack_.host(); }
  u32 size() const override { return size_; }

  Status send_packet(u32 dst, const PktHeader& hdr,
                     std::span<const u8> payload) override;
  std::optional<Packet> poll_packet() override;

  /// MPICH-over-TCP folds its packetization into the user<->kernel copy
  /// the stack already charges; only a small header/bookkeeping per-byte
  /// touch remains at this layer.
  SimTime pack_cost(u32 len) const override { return ns(8) * len; }
  SimTime unpack_cost(u32 len) const override { return ns(5) * len; }

  SimTime now() const override { return proc_.now(); }
  void cpu(SimTime dt) override { proc_.delay(dt); }
  void idle_pause() override { proc_.delay(poll_gap_); }

  /// TCP streams carry any size; cap eager at 64 KB so rendezvous is still
  /// exercised and huge sends don't monopolize socket buffers.
  u32 eager_limit() const override { return 64 * 1024; }

  /// A packet fits one network unit when envelope + payload fit one TCP
  /// segment; larger eager packets are streamed across segments.
  u32 short_limit() const override {
    const u32 mss = stack_.mss();
    return mss > kHeaderBytes ? mss - kHeaderBytes : 0;
  }

 private:
  netmodels::TcpStack& stack_;
  sim::Process& proc_;
  u32 size_;
  SimTime poll_gap_;
  // Per-source: decoded header of a partially arrived packet (want_ > 0
  // means we know the total frame size we are waiting for).
  std::vector<usize> want_;
  std::vector<PktHeader> want_hdr_ = std::vector<PktHeader>(size_);
};

}  // namespace scrnet::scrmpi
