// Public types for scrmpi, the MPICH-derived mini-MPI of the paper's
// Section 4. Naming follows MPI conventions; the subset implemented is the
// one the paper exercises plus natural extensions used by the examples.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/types.h"

namespace scrnet::scrmpi {

/// Wildcards (match MPI semantics).
inline constexpr i32 kAnySource = -1;
inline constexpr i32 kAnyTag = -1;

/// Elementary datatypes: scrmpi moves bytes; datatypes carry the element
/// size so Reduce can reinterpret and counts convert correctly.
enum class Datatype : u8 {
  kByte,
  kChar,
  kInt32,
  kUint32,
  kInt64,
  kFloat,
  kDouble,
};

constexpr u32 datatype_size(Datatype d) {
  switch (d) {
    case Datatype::kByte:
    case Datatype::kChar: return 1;
    case Datatype::kInt32:
    case Datatype::kUint32:
    case Datatype::kFloat: return 4;
    case Datatype::kInt64:
    case Datatype::kDouble: return 8;
  }
  return 1;
}

constexpr std::string_view datatype_name(Datatype d) {
  switch (d) {
    case Datatype::kByte: return "BYTE";
    case Datatype::kChar: return "CHAR";
    case Datatype::kInt32: return "INT32";
    case Datatype::kUint32: return "UINT32";
    case Datatype::kInt64: return "INT64";
    case Datatype::kFloat: return "FLOAT";
    case Datatype::kDouble: return "DOUBLE";
  }
  return "?";
}

/// Collective payload size: count * element size computed in 64-bit. The
/// naive u32 multiply silently wraps for count >= 2^29 with 8-byte
/// datatypes; packet headers carry 32-bit lengths (PktHeader::len), so a
/// collective payload past 4 GiB - 1 cannot be represented on the wire and
/// is rejected here, before any buffer is touched.
inline u32 coll_bytes(u32 count, Datatype dt) {
  const u64 bytes = static_cast<u64>(count) * datatype_size(dt);
  if (bytes > 0xFFFFFFFFull)
    throw std::invalid_argument(
        "scrmpi: collective payload overflows 32-bit byte count (count=" +
        std::to_string(count) + ", " + std::string(datatype_name(dt)) + ")");
  return static_cast<u32>(bytes);
}

/// Reduction operators.
enum class ReduceOp : u8 { kSum, kProd, kMax, kMin, kLand, kLor, kBand, kBor };

/// Completion status of a receive (subset of MPI_Status, plus an error
/// field like MPI_ERROR: kTimedOut when a bounded wait expired before the
/// operation completed, or the propagated channel error of a failed send).
struct MpiStatus {
  i32 source = kAnySource;
  i32 tag = kAnyTag;
  u32 count_bytes = 0;
  bool truncated = false;
  StatusCode err = StatusCode::kOk;

  bool ok() const { return err == StatusCode::kOk; }
};

/// Opaque request handle (index into the engine's request table).
struct Request {
  u32 idx = 0xFFFFFFFFu;
  bool valid() const { return idx != 0xFFFFFFFFu; }
};

/// Collective algorithm selection for MPI_Bcast / MPI_Barrier. The paper's
/// Figures 5 and 6 compare kPointToPoint against kNativeMcast; the zoo
/// entries below come from the tuning literature (arXiv cs/0408034,
/// 1603.06809) and docs/collectives.md catalogs them. kAuto consults the
/// tuner's decision table (src/tune/) per (device, op, nodes, bytes).
enum class CollAlgo {
  kAuto,             // decision-table lookup (sweep-generated, src/tune/)
  kPointToPoint,     // MPICH's default tree: binomial bcast / combine-release
  kNativeMcast,      // the paper's BBP-multicast-based implementation
  kBinomial,         // explicit binomial tree (same as kPointToPoint bcast)
  kScatterAllgather, // Rabenseifner/van de Geijn: binomial scatter + ring ag
  kRing,             // unsegmented relay around the logical ring
  kChain,            // segmented pipelined chain
  kDissemination,    // barrier only: log2(n) dissemination rounds
};

constexpr std::string_view coll_algo_name(CollAlgo a) {
  switch (a) {
    case CollAlgo::kAuto: return "auto";
    case CollAlgo::kPointToPoint: return "p2p";
    case CollAlgo::kNativeMcast: return "native";
    case CollAlgo::kBinomial: return "binomial";
    case CollAlgo::kScatterAllgather: return "scatter_allgather";
    case CollAlgo::kRing: return "ring";
    case CollAlgo::kChain: return "chain";
    case CollAlgo::kDissemination: return "dissemination";
  }
  return "?";
}

/// MPI_Allreduce algorithm (bench/abl_allreduce compares all of these).
enum class AllreduceAlgo {
  kAuto,               // decision-table lookup
  kReduceBcast,        // binomial reduce to 0, then MPI_Bcast
  kRecursiveDoubling,  // MPICH's recursive doubling
  kRabenseifner,       // recursive-halving reduce-scatter + rd allgather
  kRing,               // ring reduce-scatter + ring allgather
};

constexpr std::string_view allreduce_algo_name(AllreduceAlgo a) {
  switch (a) {
    case AllreduceAlgo::kAuto: return "auto";
    case AllreduceAlgo::kReduceBcast: return "reduce_bcast";
    case AllreduceAlgo::kRecursiveDoubling: return "recursive_doubling";
    case AllreduceAlgo::kRabenseifner: return "rabenseifner";
    case AllreduceAlgo::kRing: return "ring";
  }
  return "?";
}

/// MPI_Allgather algorithm.
enum class AllgatherAlgo {
  kAuto,         // decision-table lookup
  kGatherBcast,  // gather to rank 0, then MPI_Bcast (the naive reference)
  kRing,         // n-1 neighbor-exchange steps, each block travels once
};

constexpr std::string_view allgather_algo_name(AllgatherAlgo a) {
  switch (a) {
    case AllgatherAlgo::kAuto: return "auto";
    case AllgatherAlgo::kGatherBcast: return "gather_bcast";
    case AllgatherAlgo::kRing: return "ring";
  }
  return "?";
}

}  // namespace scrnet::scrmpi
