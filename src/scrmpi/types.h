// Public types for scrmpi, the MPICH-derived mini-MPI of the paper's
// Section 4. Naming follows MPI conventions; the subset implemented is the
// one the paper exercises plus natural extensions used by the examples.
#pragma once

#include <string_view>

#include "common/status.h"
#include "common/types.h"

namespace scrnet::scrmpi {

/// Wildcards (match MPI semantics).
inline constexpr i32 kAnySource = -1;
inline constexpr i32 kAnyTag = -1;

/// Elementary datatypes: scrmpi moves bytes; datatypes carry the element
/// size so Reduce can reinterpret and counts convert correctly.
enum class Datatype : u8 {
  kByte,
  kChar,
  kInt32,
  kUint32,
  kInt64,
  kFloat,
  kDouble,
};

constexpr u32 datatype_size(Datatype d) {
  switch (d) {
    case Datatype::kByte:
    case Datatype::kChar: return 1;
    case Datatype::kInt32:
    case Datatype::kUint32:
    case Datatype::kFloat: return 4;
    case Datatype::kInt64:
    case Datatype::kDouble: return 8;
  }
  return 1;
}

constexpr std::string_view datatype_name(Datatype d) {
  switch (d) {
    case Datatype::kByte: return "BYTE";
    case Datatype::kChar: return "CHAR";
    case Datatype::kInt32: return "INT32";
    case Datatype::kUint32: return "UINT32";
    case Datatype::kInt64: return "INT64";
    case Datatype::kFloat: return "FLOAT";
    case Datatype::kDouble: return "DOUBLE";
  }
  return "?";
}

/// Reduction operators.
enum class ReduceOp : u8 { kSum, kProd, kMax, kMin, kLand, kLor, kBand, kBor };

/// Completion status of a receive (subset of MPI_Status, plus an error
/// field like MPI_ERROR: kTimedOut when a bounded wait expired before the
/// operation completed, or the propagated channel error of a failed send).
struct MpiStatus {
  i32 source = kAnySource;
  i32 tag = kAnyTag;
  u32 count_bytes = 0;
  bool truncated = false;
  StatusCode err = StatusCode::kOk;

  bool ok() const { return err == StatusCode::kOk; }
};

/// Opaque request handle (index into the engine's request table).
struct Request {
  u32 idx = 0xFFFFFFFFu;
  bool valid() const { return idx != 0xFFFFFFFFu; }
};

/// Collective algorithm selection; the paper's Figures 5 and 6 compare
/// exactly these two implementations.
enum class CollAlgo {
  kAuto,          // native multicast when the device has it, else p2p
  kPointToPoint,  // MPICH's standard tree algorithms over MPI p2p
  kNativeMcast,   // the paper's BBP-multicast-based implementation
};

}  // namespace scrnet::scrmpi
