// The collective-algorithm zoo (ROADMAP item 4).
//
// Every algorithm here is expressed over blocking point-to-point operations
// through the full MPI binding layer -- exactly like MPICH collectives
// calling MPI_Send / MPI_Recv internally, which is where their cost comes
// from. The native BBP-multicast implementations stay in mpi.cc (they use
// the engine's collective transport, not point-to-point).
//
// Algorithm sources: MPICH 1.x (binomial trees, combine-release barrier,
// recursive doubling), Rabenseifner's allreduce and the van de Geijn
// scatter-allgather bcast (arXiv cs/0408034), and the ring / pipelined
// chain family surveyed in arXiv 1603.06809. docs/collectives.md catalogs
// the zoo and the sweep-driven decision table (src/tune/) that kAuto
// consults to choose among them.
//
// Matching discipline: each op family reuses one reserved tag. Within a
// (sender, receiver) pair every algorithm posts its receives in the same
// order the peer posts its sends -- the engine's FIFO non-overtaking then
// matches them correctly even across back-to-back collectives on the same
// communicator.
#pragma once

#include <span>

#include "scrmpi/adi.h"
#include "scrmpi/mpi.h"
#include "scrmpi/types.h"

namespace scrnet::scrmpi::coll {

/// Reserved tags for collective phases on the coll context -- one per op
/// family (see the matching-discipline note above). mpi.cc shares this
/// registry for the collectives it keeps (reduce/gather/scatter/...).
namespace tag {
inline constexpr i32 kBcast = 0x7001;
inline constexpr i32 kBarrierUp = 0x7002;
inline constexpr i32 kBarrierDown = 0x7003;
inline constexpr i32 kReduce = 0x7004;
inline constexpr i32 kGather = 0x7005;
inline constexpr i32 kScatter = 0x7006;
inline constexpr i32 kSplit = 0x7007;
inline constexpr i32 kAlltoall = 0x7008;
inline constexpr i32 kAllreduce = 0x7009;
inline constexpr i32 kDissem = 0x700A;
inline constexpr i32 kAllgather = 0x700B;
}  // namespace tag

/// Segment size for the pipelined chain broadcast. Fixed (not tuned per
/// call) so bench outputs are stable.
inline constexpr u32 kChainSegmentBytes = 4096;

/// Execution context handed to every algorithm: this rank's engine and its
/// position in the communicator. send/recv go through the binding-cost
/// path (one binding charge per operation, like Mpi::coll_p2p_*).
struct Ctx {
  Engine& eng;
  const Comm& comm;
  u32 me;  // comm rank
  u32 np;  // comm size

  Ctx(Engine& e, const Comm& c)
      : eng(e),
        comm(c),
        me(static_cast<u32>(c.rank_of_world(e.rank()))),
        np(c.size()) {}

  void send(u32 dst, i32 tag, std::span<const u8> data);
  void recv(u32 src, i32 tag, std::span<u8> buf);
  /// Nonblocking pair, then wait both (the recv first, like MPI_Sendrecv).
  void sendrecv(u32 dst, std::span<const u8> sdata, u32 src,
                std::span<u8> rbuf, i32 tag);
};

// -- broadcast --------------------------------------------------------------
// All variants broadcast `bytes` from comm rank `root` in place in `buf`.

/// MPICH's binomial tree: log2(n) rounds, every round doubles the set of
/// ranks holding the data. Latency-optimal for short messages.
void bcast_binomial(Ctx& c, u8* buf, u32 bytes, u32 root);

/// Van de Geijn / Rabenseifner long-message bcast: binomial scatter of
/// ceil(bytes/n) segments, then a ring allgather. Each byte crosses the
/// network ~2x instead of log2(n)x.
void bcast_scatter_allgather(Ctx& c, u8* buf, u32 bytes, u32 root);

/// Unsegmented relay around the logical ring: n-1 store-and-forward hops.
/// The baseline the chain variant pipelines.
void bcast_ring(Ctx& c, u8* buf, u32 bytes, u32 root);

/// Segmented pipelined chain: the ring relay split into
/// kChainSegmentBytes pieces so hop k forwards segment i while segment
/// i+1 is still in flight from hop k-1.
void bcast_chain(Ctx& c, u8* buf, u32 bytes, u32 root);

// -- barrier ----------------------------------------------------------------

/// MPICH 1.x: tree combine to rank 0, then a binomial release.
void barrier_combine_release(Ctx& c);

/// Dissemination barrier: ceil(log2(n)) rounds; in round r every rank
/// sends to (me + 2^r) mod n and receives from (me - 2^r) mod n. No
/// coordinator, ~half the critical path of combine-release.
void barrier_dissemination(Ctx& c);

// -- allreduce --------------------------------------------------------------
// All variants reduce in place: recvbuf enters holding the local
// contribution and exits holding the full reduction on every rank.
// Commutative ops only (all of ReduceOp is).

/// MPICH's recursive doubling: fold non-power-of-two ranks into even
/// neighbors, XOR-exchange whole vectors among the survivors, unfold.
void allreduce_recursive_doubling(Ctx& c, void* recvbuf, u32 count,
                                  Datatype dt, ReduceOp op);

/// Rabenseifner: recursive-halving reduce-scatter, then recursive-doubling
/// allgather of the reduced blocks. Each byte crosses ~2x instead of
/// log2(n)x; wins for long vectors.
void allreduce_rabenseifner(Ctx& c, void* recvbuf, u32 count, Datatype dt,
                            ReduceOp op);

/// Ring: n-1 reduce-scatter steps then n-1 allgather steps over 1/n-sized
/// blocks. Bandwidth-optimal; latency grows linearly in n.
void allreduce_ring(Ctx& c, void* recvbuf, u32 count, Datatype dt,
                    ReduceOp op);

// -- allgather --------------------------------------------------------------

/// Ring allgather of n uniform blocks: the caller has already placed its
/// own block at recvbuf + me*block_bytes; after n-1 neighbor-exchange
/// steps every rank holds all n blocks. Each block travels once.
void allgather_ring(Ctx& c, u8* recvbuf, u32 block_bytes);

// -- decision-table name lookups --------------------------------------------
// Inverse of the *_algo_name functions; `fallback` on unknown/empty names
// so a stale table degrades to a safe algorithm instead of throwing.

CollAlgo coll_algo_from_name(std::string_view name, CollAlgo fallback);
AllreduceAlgo allreduce_algo_from_name(std::string_view name,
                                       AllreduceAlgo fallback);
AllgatherAlgo allgather_algo_from_name(std::string_view name,
                                       AllgatherAlgo fallback);

}  // namespace scrnet::scrmpi::coll
