#include "scrmpi/ch_bbp.h"

#include <cstring>
#include <stdexcept>

namespace scrnet::scrmpi {

std::vector<u8> BbpChannel::frame(const PktHeader& hdr,
                                  std::span<const u8> payload) const {
  std::vector<u8> bytes(kHeaderBytes + payload.size());
  u32 words[kHeaderWords];
  encode_header(hdr, words);
  std::memcpy(bytes.data(), words, kHeaderBytes);
  if (!payload.empty())
    std::memcpy(bytes.data() + kHeaderBytes, payload.data(), payload.size());
  return bytes;
}

Status BbpChannel::send_packet(u32 dst, const PktHeader& hdr,
                               std::span<const u8> payload) {
  return ep_.send(dst, frame(hdr, payload));
}

Status BbpChannel::mcast_packet(std::span<const u32> dsts, const PktHeader& hdr,
                                std::span<const u8> payload) {
  return ep_.mcast(dsts, frame(hdr, payload));
}

std::optional<Packet> BbpChannel::poll_packet() {
  const auto src = ep_.msg_avail();
  if (!src) return std::nullopt;
  auto r = ep_.recv(*src, rxbuf_);
  if (!r.ok() || r.value().truncated)
    throw std::runtime_error("ch_bbp: malformed packet");
  if (r.value().len < kHeaderBytes)
    throw std::runtime_error("ch_bbp: runt packet");
  Packet pkt;
  u32 words[kHeaderWords];
  std::memcpy(words, rxbuf_.data(), kHeaderBytes);
  pkt.hdr = decode_header(words);
  const u32 body = r.value().len - kHeaderBytes;
  if (body != pkt.hdr.len) throw std::runtime_error("ch_bbp: length mismatch");
  pkt.payload.assign(rxbuf_.begin() + kHeaderBytes,
                     rxbuf_.begin() + kHeaderBytes + body);
  return pkt;
}

}  // namespace scrnet::scrmpi
