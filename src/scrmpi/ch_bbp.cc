#include "scrmpi/ch_bbp.h"

#include <cstring>
#include <stdexcept>

namespace scrnet::scrmpi {

std::vector<u8> BbpChannel::frame(const PktHeader& hdr,
                                  std::span<const u8> payload) const {
  std::vector<u8> bytes(kHeaderBytes + payload.size());
  u32 words[kHeaderWords];
  encode_header(hdr, words);
  std::memcpy(bytes.data(), words, kHeaderBytes);
  if (!payload.empty())
    std::memcpy(bytes.data() + kHeaderBytes, payload.data(), payload.size());
  return bytes;
}

Status BbpChannel::send_packet(u32 dst, const PktHeader& hdr,
                               std::span<const u8> payload) {
  return ep_.send(dst, frame(hdr, payload));
}

Status BbpChannel::mcast_packet(std::span<const u32> dsts, const PktHeader& hdr,
                                std::span<const u8> payload) {
  return ep_.mcast(dsts, frame(hdr, payload));
}

Result<RndvPlacement> BbpChannel::rndv_reserve(u32 src, u32 bytes,
                                               std::span<u8> dest) {
  (void)src;   // the window is mine; any sender may write the extent
  (void)dest;  // data lands in replicated memory, read out on FIN
  Result<u32> addr = ep_.rndv_reserve(bytes);
  if (!addr.ok()) return addr.status();
  RndvPlacement pl;
  pl.addr = addr.value();  // absolute SCRAMNet word address
  pl.bytes = bytes;
  return pl;
}

Status BbpChannel::rndv_put(u32 dst, const RndvPlacement& placement,
                            std::span<const u8> payload,
                            const PktHeader& fin_hdr,
                            std::span<const u8> fin_payload) {
  // Payload words first, FIN message second: both leave through my port in
  // program order and SCRAMNet delivers one sender's writes in order, so
  // the receiver seeing the FIN implies the payload words have landed.
  if (Status st = ep_.rndv_put(static_cast<u32>(placement.addr), payload);
      !st.ok())
    return st;
  return send_packet(dst, fin_hdr, fin_payload);
}

Status BbpChannel::rndv_complete(const RndvPlacement& placement,
                                 std::span<u8> buf, u32 len) {
  // The payload sits in replicated SCRAMNet memory; MPI semantics want it
  // in the user's host buffer, so the receiver pays one PIO block read --
  // but no channel frame, no staging copy, no per-byte unpack pass.
  return ep_.rndv_read(static_cast<u32>(placement.addr), buf, len);
}

void BbpChannel::rndv_release(const RndvPlacement& placement) {
  ep_.rndv_release(static_cast<u32>(placement.addr), placement.bytes);
}

std::optional<Packet> BbpChannel::poll_packet() {
  const auto src = ep_.msg_avail();
  if (!src) return std::nullopt;
  auto r = ep_.recv(*src, rxbuf_);
  if (!r.ok() || r.value().truncated)
    throw std::runtime_error("ch_bbp: malformed packet");
  if (r.value().len < kHeaderBytes)
    throw std::runtime_error("ch_bbp: runt packet");
  Packet pkt;
  u32 words[kHeaderWords];
  std::memcpy(words, rxbuf_.data(), kHeaderBytes);
  pkt.hdr = decode_header(words);
  const u32 body = r.value().len - kHeaderBytes;
  if (body != pkt.hdr.len) throw std::runtime_error("ch_bbp: length mismatch");
  pkt.payload.assign(rxbuf_.begin() + kHeaderBytes,
                     rxbuf_.begin() + kHeaderBytes + body);
  return pkt;
}

}  // namespace scrnet::scrmpi
