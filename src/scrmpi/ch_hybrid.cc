#include "scrmpi/ch_hybrid.h"

#include <cstring>
#include <stdexcept>

namespace scrnet::scrmpi {

Status HybridChannel::send_packet(u32 dst, const PktHeader& hdr,
                                  std::span<const u8> payload) {
  if (is_collective(hdr.kind)) {
    Status st = low_.send_packet(dst, hdr, payload);
    if (st.ok()) ++low_pkts_;
    return st;
  }
  // Point-to-point: preamble with the per-destination sequence number so
  // the receiver can restore cross-network ordering.
  std::vector<u8> wrapped(kPreambleBytes + payload.size());
  const u32 seq = next_seq_[dst]++;
  std::memcpy(wrapped.data(), &seq, 4);
  u32 magic = kMagic;
  std::memcpy(wrapped.data() + 4, &magic, 4);
  if (!payload.empty())
    std::memcpy(wrapped.data() + kPreambleBytes, payload.data(), payload.size());

  PktHeader h = hdr;
  h.len = static_cast<u32>(wrapped.size());
  // The sequence number stays consumed even if the transmit fails: the
  // receiver's stash skips a hole only when the whole path is already
  // degraded, and re-using the seq for a later packet would corrupt
  // ordering for good.
  if (payload.size() <= threshold_) {
    Status st = low_.send_packet(dst, h, wrapped);
    if (st.ok()) ++low_pkts_;
    return st;
  }
  Status st = high_.send_packet(dst, h, wrapped);
  if (st.ok()) ++high_pkts_;
  return st;
}

u32 HybridChannel::unwrap(Packet& pkt) {
  if (pkt.payload.size() < kPreambleBytes)
    throw std::runtime_error("ch_hybrid: runt p2p packet");
  u32 seq = 0, magic = 0;
  std::memcpy(&seq, pkt.payload.data(), 4);
  std::memcpy(&magic, pkt.payload.data() + 4, 4);
  if (magic != kMagic) throw std::runtime_error("ch_hybrid: bad preamble");
  pkt.payload.erase(pkt.payload.begin(),
                    pkt.payload.begin() + kPreambleBytes);
  pkt.hdr.len -= kPreambleBytes;
  return seq;
}

std::optional<Packet> HybridChannel::pop_ready(u32 src) {
  auto& stash = stash_[src];
  auto it = stash.find(expect_seq_[src]);
  if (it == stash.end()) return std::nullopt;
  Packet pkt = std::move(it->second);
  stash.erase(it);
  ++expect_seq_[src];
  return pkt;
}

std::optional<Packet> HybridChannel::poll_packet() {
  // Release any stashed packet that became in-order first.
  for (u32 src = 0; src < size(); ++src) {
    if (auto pkt = pop_ready(src)) return pkt;
  }
  // Drain both sub-devices; collectives pass straight through, p2p packets
  // go through the sequencing stash.
  for (ChannelDevice* dev : {&low_, &high_}) {
    while (auto pkt = dev->poll_packet()) {
      if (is_collective(pkt->hdr.kind)) return pkt;
      const u32 src = pkt->hdr.src;
      const u32 seq = unwrap(*pkt);
      if (seq == expect_seq_[src]) {
        ++expect_seq_[src];
        return pkt;
      }
      stash_[src].emplace(seq, std::move(*pkt));
    }
  }
  // A sub-device poll may have filled the stash in order.
  for (u32 src = 0; src < size(); ++src) {
    if (auto pkt = pop_ready(src)) return pkt;
  }
  return std::nullopt;
}

}  // namespace scrnet::scrmpi
