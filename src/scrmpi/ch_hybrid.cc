#include "scrmpi/ch_hybrid.h"

#include <cstring>
#include <stdexcept>

namespace scrnet::scrmpi {

Status HybridChannel::send_packet(u32 dst, const PktHeader& hdr,
                                  std::span<const u8> payload) {
  if (is_collective(hdr.kind)) {
    Status st = low_.send_packet(dst, hdr, payload);
    if (st.ok()) ++low_pkts_;
    return st;
  }
  // Point-to-point: preamble with the per-destination sequence number so
  // the receiver can restore cross-network ordering.
  std::vector<u8> wrapped(kPreambleBytes + payload.size());
  const u32 seq = next_seq_[dst]++;
  std::memcpy(wrapped.data(), &seq, 4);
  u32 magic = kMagic;
  std::memcpy(wrapped.data() + 4, &magic, 4);
  if (!payload.empty())
    std::memcpy(wrapped.data() + kPreambleBytes, payload.data(), payload.size());

  PktHeader h = hdr;
  h.len = static_cast<u32>(wrapped.size());
  // The sequence number stays consumed even if the transmit fails: the
  // receiver's stash skips a hole only when the whole path is already
  // degraded, and re-using the seq for a later packet would corrupt
  // ordering for good.
  // An RTS is a 4-byte control packet standing in for a large transfer:
  // route it by the message length it announces, not its own frame size.
  // Otherwise every rendezvous send -- whatever rail its data will ride --
  // lands on the low leg, and a burst of isends can fill the billboard's
  // slot ring in both directions before either peer reaches a progress
  // call (the classic eager flow-control deadlock). Keeping control
  // traffic on its payload's rail keeps per-rail backpressure
  // proportional to the traffic actually headed there.
  usize route_bytes = payload.size();
  if (hdr.kind == PktKind::kRndvRts && payload.size() >= 4) {
    u32 announced = 0;
    std::memcpy(&announced, payload.data(), 4);
    route_bytes = announced;
  }
  if (route_bytes <= threshold_) {
    Status st = low_.send_packet(dst, h, wrapped);
    if (st.ok()) ++low_pkts_;
    return st;
  }
  Status st = high_.send_packet(dst, h, wrapped);
  if (st.ok()) ++high_pkts_;
  return st;
}

u32 HybridChannel::unwrap(Packet& pkt) {
  if (pkt.payload.size() < kPreambleBytes)
    throw std::runtime_error("ch_hybrid: runt p2p packet");
  u32 seq = 0, magic = 0;
  std::memcpy(&seq, pkt.payload.data(), 4);
  std::memcpy(&magic, pkt.payload.data() + 4, 4);
  if (magic != kMagic) throw std::runtime_error("ch_hybrid: bad preamble");
  pkt.payload.erase(pkt.payload.begin(),
                    pkt.payload.begin() + kPreambleBytes);
  pkt.hdr.len -= kPreambleBytes;
  return seq;
}

std::optional<Packet> HybridChannel::pop_ready(u32 src) {
  auto& stash = stash_[src];
  auto it = stash.find(expect_seq_[src]);
  if (it == stash.end()) return std::nullopt;
  Packet pkt = std::move(it->second);
  stash.erase(it);
  ++expect_seq_[src];
  return pkt;
}

Result<RndvPlacement> HybridChannel::rndv_reserve(u32 src, u32 bytes,
                                                  std::span<u8> dest) {
  // Prefer the leg the payload would route to; fall back to the other if
  // it lacks the capability or its window/registration is exhausted.
  const u32 first = bytes > threshold_ ? 1u : 0u;
  for (const u32 via : {first, 1u - first}) {
    ChannelDevice& dev = leg(via);
    if (!dev.supports_put()) continue;
    Result<RndvPlacement> res = dev.rndv_reserve(src, bytes, dest);
    if (res.ok()) {
      RndvPlacement pl = res.value();
      pl.via = via;
      return pl;
    }
  }
  return Status::NoSpace("ch_hybrid: no leg could reserve placement");
}

Status HybridChannel::rndv_put(u32 dst, const RndvPlacement& placement,
                               std::span<const u8> payload,
                               const PktHeader& fin_hdr,
                               std::span<const u8> fin_payload) {
  // The receiver unwraps every p2p packet, so the FIN must carry the
  // hybrid preamble and consume a sequence number like any other packet --
  // and it must travel on the *same leg* as the put (placement.via) so the
  // leg's data-before-FIN guarantee survives the split across networks.
  std::vector<u8> wrapped(kPreambleBytes + fin_payload.size());
  const u32 seq = next_seq_[dst]++;
  std::memcpy(wrapped.data(), &seq, 4);
  u32 magic = kMagic;
  std::memcpy(wrapped.data() + 4, &magic, 4);
  if (!fin_payload.empty())
    std::memcpy(wrapped.data() + kPreambleBytes, fin_payload.data(),
                fin_payload.size());
  PktHeader h = fin_hdr;
  h.len = static_cast<u32>(wrapped.size());
  Status st = leg(placement.via).rndv_put(dst, placement, payload, h, wrapped);
  if (st.ok()) (placement.via == 0 ? low_pkts_ : high_pkts_) += 1;
  return st;
}

Status HybridChannel::rndv_complete(const RndvPlacement& placement,
                                    std::span<u8> buf, u32 len) {
  return leg(placement.via).rndv_complete(placement, buf, len);
}

void HybridChannel::rndv_release(const RndvPlacement& placement) {
  leg(placement.via).rndv_release(placement);
}

std::optional<Packet> HybridChannel::poll_packet() {
  // Release any stashed packet that became in-order first.
  for (u32 src = 0; src < size(); ++src) {
    if (auto pkt = pop_ready(src)) return pkt;
  }
  // Drain both sub-devices; collectives pass straight through, p2p packets
  // go through the sequencing stash.
  for (ChannelDevice* dev : {&low_, &high_}) {
    while (auto pkt = dev->poll_packet()) {
      if (is_collective(pkt->hdr.kind)) return pkt;
      const u32 src = pkt->hdr.src;
      const u32 seq = unwrap(*pkt);
      if (seq == expect_seq_[src]) {
        ++expect_seq_[src];
        return pkt;
      }
      stash_[src].emplace(seq, std::move(*pkt));
    }
  }
  // A sub-device poll may have filled the stash in order.
  for (u32 src = 0; src < size(); ++src) {
    if (auto pkt = pop_ready(src)) return pkt;
  }
  return std::nullopt;
}

}  // namespace scrnet::scrmpi
