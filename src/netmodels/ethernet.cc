#include "netmodels/ethernet.h"

#include <algorithm>
#include <cassert>

namespace scrnet::netmodels {

SimTime EthernetFabric::frame_wire_time(usize payload_bytes) const {
  // On-wire length: payload padded to the 64-byte minimum frame, plus
  // preamble/header/FCS/IFG overhead.
  const u64 frame = std::max<u64>(payload_bytes + 18, cfg_.min_frame) +
                    (cfg_.frame_overhead - 18);
  return wire_time_bits(frame * 8, cfg_.mbits_per_s);
}

void EthernetFabric::transmit(Frame f) {
  assert(f.src < hosts_ && f.dst < hosts_);
  assert(f.payload.size() <= cfg_.mtu);
  const SimTime wire = frame_wire_time(f.payload.size());

  // Source NIC serializes onto its uplink.
  const SimTime tx_start = std::max(sim_.now(), in_busy_[f.src]);
  const SimTime at_switch = tx_start + wire + cfg_.propagation;
  in_busy_[f.src] = tx_start + wire;

  // Cut-through: the switch starts forwarding once the header is in
  // (so the two link serializations overlap); store-and-forward waits for
  // the full frame before contending for the output port.
  const SimTime switch_ready = cfg_.store_and_forward
                                   ? at_switch + cfg_.switch_latency
                                   : tx_start + cfg_.propagation + cfg_.switch_latency;
  const SimTime out_start = std::max(switch_ready, out_busy_[f.dst]);
  const SimTime arrive = out_start + wire + cfg_.propagation;
  out_busy_[f.dst] = out_start + wire;

  deliver_at(arrive, std::move(f));
}

}  // namespace scrnet::netmodels
