#include "netmodels/atm.h"

#include <algorithm>
#include <cassert>

namespace scrnet::netmodels {

void AtmFabric::transmit(Frame f) {
  assert(f.src < hosts_ && f.dst < hosts_);
  assert(f.payload.size() <= cfg_.mtu);
  const u32 cells = cells_for(f.payload.size());
  const SimTime wire = wire_time_bits(static_cast<u64>(cells) * 53 * 8, cfg_.mbits_per_s);

  const SimTime tx_start = std::max(sim_.now(), in_busy_[f.src]);
  in_busy_[f.src] = tx_start + wire;

  // Cell cut-through: cells stream through the switch with a fixed pipeline
  // fill; the output port must also be free for the PDU's cell train.
  const SimTime out_start = std::max(tx_start + cfg_.switch_cell_latency +
                                         cfg_.propagation,
                                     out_busy_[f.dst]);
  const SimTime arrive = out_start + wire + cfg_.propagation;
  out_busy_[f.dst] = out_start + wire;

  deliver_at(arrive, std::move(f));
}

}  // namespace scrnet::netmodels
