// Myrinet model: 1.28 Gb/s links, source-routed wormhole (cut-through)
// crossbar switch -- plus the two host-side personalities the paper
// measures: the native Myrinet API and TCP/IP over Myrinet.
#pragma once

#include <span>

#include "netmodels/fabric.h"

namespace scrnet::netmodels {

struct MyrinetConfig {
  double mbits_per_s = 1280.0;
  u32 mtu = 8192;                  // native API message cap per network op
  u32 header_bytes = 16;           // route + type + CRC
  SimTime propagation = ns(300);
  SimTime switch_latency = ns(550);  // cut-through routing decision
};

class MyrinetFabric final : public Fabric {
 public:
  MyrinetFabric(sim::Simulation& sim, u32 hosts, MyrinetConfig cfg = {})
      : Fabric(sim, hosts), cfg_(cfg) {
    in_busy_.assign(hosts, 0);
    out_busy_.assign(hosts, 0);
  }

  u32 mtu_payload() const override { return cfg_.mtu; }
  const MyrinetConfig& config() const { return cfg_; }

  void transmit(Frame f) override;

 private:
  MyrinetConfig cfg_;
  std::vector<SimTime> in_busy_;
  std::vector<SimTime> out_busy_;
};

/// Host-side cost model of the vendor ("MyriAPI"-era) messaging library the
/// paper benchmarks as "Myrinet API": each operation crosses into the
/// kernel-assisted library, stages the payload for the LANai DMA, and the
/// receiver pays a matching dispatch cost. Contemporary measurements put
/// the small-message one-way latency of this path in the tens of
/// microseconds -- far above research layers like FM, and that is exactly
/// what Figure 2 shows (SCRAMNet beats it below ~500 bytes).
struct MyrinetApiCosts {
  SimTime send_fixed = us(20);       // library call + doorbell + DMA setup
  SimTime recv_fixed = us(22);       // event dispatch + completion
  SimTime per_byte_send = ns(12);    // staging copy to pinned DMA region
  SimTime per_byte_recv = ns(12);    // copy-out to user buffer
};

/// Blocking message API over MyrinetFabric for one host.
class MyrinetApi {
 public:
  MyrinetApi(MyrinetFabric& fabric, u32 host, MyrinetApiCosts costs = {})
      : fabric_(fabric), host_(host), c_(costs) {}

  /// Send `payload` to `dst`, splitting at the fabric MTU.
  void send(sim::Process& p, u32 dst, std::span<const u8> payload);

  /// Receive exactly `nbytes` from `src` (messages preserve boundaries but
  /// this API, like the paper's microbenchmarks, reads a known size).
  void recv(sim::Process& p, u32 src, std::span<u8> out, usize nbytes);

 private:
  MyrinetFabric& fabric_;
  u32 host_;
  MyrinetApiCosts c_;
  // Per-source reassembly buffers (frames can interleave across sources).
  std::vector<std::vector<u8>> pending_ =
      std::vector<std::vector<u8>>(fabric_.hosts());
};

}  // namespace scrnet::netmodels
