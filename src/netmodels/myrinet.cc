#include "netmodels/myrinet.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace scrnet::netmodels {

void MyrinetFabric::transmit(Frame f) {
  assert(f.src < hosts_ && f.dst < hosts_);
  assert(f.payload.size() <= cfg_.mtu);
  const SimTime wire = wire_time_bits(
      (static_cast<u64>(f.payload.size()) + cfg_.header_bytes) * 8, cfg_.mbits_per_s);

  const SimTime tx_start = std::max(sim_.now(), in_busy_[f.src]);
  in_busy_[f.src] = tx_start + wire;

  // Wormhole cut-through: the head flit reaches the output port after the
  // routing decision; the tail follows one wire time later. If the output
  // port is busy the worm stalls in place until it frees.
  const SimTime head_out =
      std::max(tx_start + cfg_.propagation + cfg_.switch_latency, out_busy_[f.dst]);
  const SimTime arrive = head_out + wire + cfg_.propagation;
  out_busy_[f.dst] = head_out + wire;

  deliver_at(arrive, std::move(f));
}

void MyrinetApi::send(sim::Process& p, u32 dst, std::span<const u8> payload) {
  // A zero-byte message still occupies one (dummy-byte) frame on the wire.
  static constexpr u8 kDummy = 0;
  std::span<const u8> data = payload.empty() ? std::span<const u8>(&kDummy, 1) : payload;
  usize off = 0;
  while (off < data.size()) {
    const usize n = std::min<usize>(data.size() - off, fabric_.mtu_payload());
    p.delay(c_.send_fixed + static_cast<SimTime>(n) * c_.per_byte_send);
    Frame f;
    f.src = host_;
    f.dst = dst;
    f.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(off),
                     data.begin() + static_cast<std::ptrdiff_t>(off + n));
    fabric_.transmit(std::move(f));
    off += n;
  }
}

void MyrinetApi::recv(sim::Process& p, u32 src, std::span<u8> out, usize nbytes) {
  assert(out.size() >= nbytes);
  const usize need = std::max<usize>(nbytes, 1);  // dummy byte for 0-byte msgs
  auto& buf = pending_[src];
  while (buf.size() < need) {
    Frame f = fabric_.rx(host_).pop(p);
    p.delay(c_.recv_fixed + static_cast<SimTime>(f.payload.size()) * c_.per_byte_recv);
    auto& dst_buf = pending_[f.src];
    dst_buf.insert(dst_buf.end(), f.payload.begin(), f.payload.end());
  }
  if (nbytes > 0) std::memcpy(out.data(), buf.data(), nbytes);
  buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(need));
}

}  // namespace scrnet::netmodels
