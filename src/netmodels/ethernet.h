// Switched Fast Ethernet (100BASE-TX) model: store-and-forward switch,
// full-duplex links, 1500-byte MTU.
#pragma once

#include "netmodels/fabric.h"

namespace scrnet::netmodels {

struct EthernetConfig {
  double mbits_per_s = 100.0;
  u32 mtu = 1500;                 // L3 payload per frame
  u32 frame_overhead = 38;        // preamble 8 + MAC hdr 14 + FCS 4 + IFG 12
  u32 min_frame = 64;             // minimum Ethernet frame (hdr+payload+FCS)
  SimTime propagation = ns(500);  // host<->switch cable
  SimTime switch_latency = us(4); // lookup + forwarding overhead per frame
  // 1998-era Fast Ethernet workgroup switches were commonly cut-through
  // (forward after the header), which is what the paper's measured slopes
  // imply. Store-and-forward is kept as an ablation knob.
  bool store_and_forward = false;
};

class EthernetFabric final : public Fabric {
 public:
  EthernetFabric(sim::Simulation& sim, u32 hosts, EthernetConfig cfg = {})
      : Fabric(sim, hosts), cfg_(cfg) {
    in_busy_.assign(hosts, 0);
    out_busy_.assign(hosts, 0);
  }

  u32 mtu_payload() const override { return cfg_.mtu; }
  const EthernetConfig& config() const { return cfg_; }

  void transmit(Frame f) override;

 private:
  SimTime frame_wire_time(usize payload_bytes) const;

  EthernetConfig cfg_;
  std::vector<SimTime> in_busy_;   // host -> switch link
  std::vector<SimTime> out_busy_;  // switch -> host link
};

}  // namespace scrnet::netmodels
