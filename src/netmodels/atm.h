// ATM (OC-3c, 155.52 Mb/s) model with AAL5 segmentation-and-reassembly.
//
// A PDU is padded (payload + 8-byte AAL5 trailer, rounded up to a multiple
// of 48) and carried in 53-byte cells. The switch is cell-cut-through: the
// PDU is available at the receiver when its last cell lands.
#pragma once

#include "netmodels/fabric.h"

namespace scrnet::netmodels {

struct AtmConfig {
  double mbits_per_s = 155.52;
  u32 mtu = 9180;                   // classical-IP-over-ATM default MTU
  SimTime propagation = ns(500);
  SimTime switch_cell_latency = us(2);  // first-cell pipeline fill in switch
};

class AtmFabric final : public Fabric {
 public:
  AtmFabric(sim::Simulation& sim, u32 hosts, AtmConfig cfg = {})
      : Fabric(sim, hosts), cfg_(cfg) {
    in_busy_.assign(hosts, 0);
    out_busy_.assign(hosts, 0);
  }

  u32 mtu_payload() const override { return cfg_.mtu; }
  const AtmConfig& config() const { return cfg_; }

  /// Number of 53-byte cells for a PDU of `payload_bytes` (AAL5).
  static u32 cells_for(usize payload_bytes) {
    const u64 padded = ceil_div<u64>(payload_bytes + 8, 48) * 48;
    return static_cast<u32>(padded / 48);
  }

  void transmit(Frame f) override;

 private:
  AtmConfig cfg_;
  std::vector<SimTime> in_busy_;
  std::vector<SimTime> out_busy_;
};

}  // namespace scrnet::netmodels
