// RDMA-capable NIC model (VIA / early InfiniBand class hardware) -- the
// device the MPICH2-over-InfiniBand design in PAPERS.md (arXiv cs/0310059)
// assumes: remote DMA writes into registered memory, completion queues,
// and explicit (costly) memory registration.
//
// Two personalities on one fabric:
//   * two-sided transmit()/rx() frames, like the other fabrics -- used by
//     the channel's eager path;
//   * one-sided rdma_put(): the NIC DMAs payload bytes straight into a
//     remote *registered* buffer (no rx mailbox, no receiver software on
//     the data path) and raises a completion-queue event at the sender
//     once the last byte is acknowledged.
//
// Registration pins pages and mints an rkey; a put whose rkey was
// deregistered before arrival is dropped and counted (rkey_miss), which is
// what makes receiver-side teardown after a timeout safe.
#pragma once

#include <span>

#include "netmodels/fabric.h"

namespace scrnet::netmodels {

struct RdmaConfig {
  double mbits_per_s = 8000.0;      // 8 Gb/s link (IB 4X-era data rate)
  u32 mtu = 2048;                   // max payload per wire frame
  u32 header_bytes = 30;            // LRH + BTH + RETH + CRCs
  SimTime propagation = ns(250);
  SimTime switch_latency = ns(200);
  SimTime doorbell = ns(400);       // WQE build + doorbell PIO write
  SimTime completion_delay = ns(500);  // last-byte ack -> CQE visible
  SimTime cq_poll = ns(150);        // one CQ poll by host software
  SimTime reg_fixed = us(10);       // registration syscall + pin setup
  SimTime reg_per_page = ns(300);   // per-4K-page pinning cost
  SimTime retry_timeout = ms(2);    // sender gives up waiting for its CQE
                                    // (lost chunk = RC retries exhausted);
                                    // 0 = wait forever
};

/// Completion-queue event, delivered to the *initiating* host's CQ.
struct CqEvent {
  u64 wr_id = 0;   // work-request id the initiator chose
  u32 rkey = 0;    // region the operation targeted
  u32 bytes = 0;   // payload bytes moved
};

class RdmaFabric final : public Fabric {
 public:
  RdmaFabric(sim::Simulation& sim, u32 hosts, RdmaConfig cfg = {});

  u32 mtu_payload() const override { return cfg_.mtu; }
  const RdmaConfig& config() const { return cfg_; }

  /// Two-sided frame path (eager packets, FIN): same wormhole occupancy
  /// model as the Myrinet fabric, ending in rx(dst).
  void transmit(Frame f) override;

  /// Pin `region` on `host` and mint an rkey for remote writes into it.
  /// The span must stay valid until deregister().
  u32 register_region(u32 host, std::span<u8> region);
  void deregister(u32 rkey);

  /// One-sided RDMA write: DMA `payload` into (rkey, offset) on the target
  /// host, chunked at the MTU. Returns immediately (NIC-executed); a
  /// CqEvent {wr_id, rkey, bytes} lands in cq(src_host) completion_delay
  /// after the last chunk arrives. A chunk dropped by the fault hook kills
  /// the CQE (RC retry exhaustion -> the initiator's bounded wait fires);
  /// a put racing a deregister is dropped and counted in rkey_misses().
  void rdma_put(u32 src_host, u32 rkey, u32 offset,
                std::span<const u8> payload, u64 wr_id);

  sim::Mailbox<CqEvent>& cq(u32 host) { return *cq_[host]; }

  u64 puts() const { return puts_.get(); }
  u64 put_bytes() const { return put_bytes_.get(); }
  u64 rkey_misses() const { return rkey_miss_.get(); }
  u64 registrations() const { return regs_.get(); }

 private:
  struct Region {
    u32 host = 0;
    u8* base = nullptr;
    usize len = 0;
    bool live = false;
  };
  struct PutOp {
    u32 src = 0;
    u32 rkey = 0;
    u64 wr_id = 0;
    u32 bytes = 0;
    u32 remaining = 0;  // chunks still in flight
    bool failed = false;
  };

  /// Occupancy-model a frame of `payload_bytes` from src to dst; returns
  /// the arrival instant (shared busy state with transmit()).
  SimTime schedule_wire(u32 src, u32 dst, usize payload_bytes);

  RdmaConfig cfg_;
  std::vector<SimTime> in_busy_;
  std::vector<SimTime> out_busy_;
  std::vector<std::unique_ptr<sim::Mailbox<CqEvent>>> cq_;
  std::vector<Region> regions_;  // rkey - 1 indexes this table
  Counter puts_, put_bytes_, rkey_miss_, regs_;
};

}  // namespace scrnet::netmodels
