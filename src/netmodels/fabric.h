// Baseline cluster fabrics (Fast Ethernet / ATM / Myrinet) -- the networks
// the paper compares SCRAMNet against in Figures 2, 3, 5 and 6.
//
// A Fabric connects `hosts` workstations through a single switch (the
// paper's testbed is a 4-node cluster). transmit() models NIC + wire +
// switch timing and delivers the frame into the destination host's RX
// mailbox at the simulated arrival instant. Host software costs (TCP/IP
// stack, native APIs) live in separate layers on top.
#pragma once

#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "sim/mailbox.h"
#include "sim/simulation.h"

namespace scrnet::netmodels {

struct Frame {
  u32 src = 0;
  u32 dst = 0;
  std::vector<u8> payload;  // includes any protocol headers added above L2
};

/// Injection point for deterministic fault plans (fault/plan.h). The fabric
/// consults the hook once per frame at delivery-scheduling time; the hook
/// may drop the frame (partition / fail-stop loss) or stretch its arrival
/// (congestion). Implementations must be deterministic functions of the
/// frame and virtual time -- the sweep engine depends on it.
class FaultHook {
 public:
  struct Verdict {
    bool drop = false;
    SimTime extra_delay = 0;
  };
  virtual ~FaultHook() = default;
  virtual Verdict on_frame(const Frame& f, SimTime arrival) = 0;
};

class Fabric {
 public:
  Fabric(sim::Simulation& sim, u32 hosts) : sim_(sim), hosts_(hosts) {
    rx_.reserve(hosts);
    for (u32 h = 0; h < hosts; ++h) rx_.push_back(std::make_unique<sim::Mailbox<Frame>>(sim));
  }
  virtual ~Fabric() = default;

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  u32 hosts() const { return hosts_; }
  sim::Simulation& simulation() { return sim_; }
  sim::Mailbox<Frame>& rx(u32 host) { return *rx_[host]; }

  /// Hand a frame to the source NIC. Returns immediately (the NIC queues);
  /// wire/switch timing is modeled inside, ending in an rx() push.
  virtual void transmit(Frame f) = 0;

  /// Maximum payload bytes a single frame may carry.
  virtual u32 mtu_payload() const = 0;

  u64 frames_delivered() const { return delivered_.get(); }
  u64 bytes_delivered() const { return bytes_.get(); }
  u64 frames_dropped() const { return dropped_.get(); }

  /// Install (or clear, with nullptr) the fault hook. Not owned; must
  /// outlive the fabric or be cleared first.
  void set_fault_hook(FaultHook* h) { fault_ = h; }

 protected:
  void deliver_at(SimTime t, Frame f) {
    if (fault_ != nullptr) {
      const FaultHook::Verdict v = fault_->on_frame(f, t);
      if (v.drop) {
        dropped_.inc();
        return;
      }
      t += v.extra_delay;
    }
    auto fp = std::make_shared<Frame>(std::move(f));
    sim_.post_at(t, [this, fp] {
      delivered_.inc();
      bytes_.inc(fp->payload.size());
      rx_[fp->dst]->push(std::move(*fp));
    });
  }

  sim::Simulation& sim_;
  u32 hosts_;
  std::vector<std::unique_ptr<sim::Mailbox<Frame>>> rx_;
  Counter delivered_, bytes_, dropped_;
  FaultHook* fault_ = nullptr;
};

}  // namespace scrnet::netmodels
