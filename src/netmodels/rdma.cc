#include "netmodels/rdma.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <memory>

namespace scrnet::netmodels {

RdmaFabric::RdmaFabric(sim::Simulation& sim, u32 hosts, RdmaConfig cfg)
    : Fabric(sim, hosts), cfg_(cfg) {
  in_busy_.assign(hosts, 0);
  out_busy_.assign(hosts, 0);
  cq_.reserve(hosts);
  for (u32 h = 0; h < hosts; ++h)
    cq_.push_back(std::make_unique<sim::Mailbox<CqEvent>>(sim));
}

SimTime RdmaFabric::schedule_wire(u32 src, u32 dst, usize payload_bytes) {
  const SimTime wire = wire_time_bits(
      (static_cast<u64>(payload_bytes) + cfg_.header_bytes) * 8,
      cfg_.mbits_per_s);
  const SimTime tx_start = std::max(sim_.now(), in_busy_[src]);
  in_busy_[src] = tx_start + wire;
  // Cut-through: head reaches the output port after the routing decision,
  // stalls there if the port is draining an earlier worm.
  const SimTime head_out =
      std::max(tx_start + cfg_.propagation + cfg_.switch_latency,
               out_busy_[dst]);
  out_busy_[dst] = head_out + wire;
  return head_out + wire + cfg_.propagation;
}

void RdmaFabric::transmit(Frame f) {
  assert(f.src < hosts_ && f.dst < hosts_);
  assert(f.payload.size() <= cfg_.mtu);
  const SimTime arrive = schedule_wire(f.src, f.dst, f.payload.size());
  deliver_at(arrive, std::move(f));
}

u32 RdmaFabric::register_region(u32 host, std::span<u8> region) {
  assert(host < hosts_);
  regions_.push_back(Region{host, region.data(), region.size(), true});
  regs_.inc();
  return static_cast<u32>(regions_.size());  // rkey = index + 1; 0 invalid
}

void RdmaFabric::deregister(u32 rkey) {
  if (rkey == 0 || rkey > regions_.size()) return;
  regions_[rkey - 1].live = false;
}

void RdmaFabric::rdma_put(u32 src_host, u32 rkey, u32 offset,
                          std::span<const u8> payload, u64 wr_id) {
  assert(src_host < hosts_);
  assert(rkey >= 1 && rkey <= regions_.size());
  const u32 dst_host = regions_[rkey - 1].host;

  auto op = std::make_shared<PutOp>();
  op->src = src_host;
  op->rkey = rkey;
  op->wr_id = wr_id;
  op->bytes = static_cast<u32>(payload.size());
  op->remaining = std::max<u32>(
      1, static_cast<u32>((payload.size() + cfg_.mtu - 1) / cfg_.mtu));
  puts_.inc();
  put_bytes_.inc(payload.size());

  usize off = 0;
  u32 chunks = 0;
  do {  // a zero-byte put still needs one wire op to generate its CQE
    const usize n = std::min<usize>(payload.size() - off, cfg_.mtu);
    SimTime arrive = schedule_wire(src_host, dst_host, n);
    // Fault plans see put chunks like any other frame (payload content is
    // never inspected by hooks, so no copy is made for the verdict).
    if (fault_ != nullptr) {
      Frame probe;
      probe.src = src_host;
      probe.dst = dst_host;
      const FaultHook::Verdict v = fault_->on_frame(probe, arrive);
      if (v.drop) {
        // RC retries exhaust without the ack: this put never completes, so
        // its CQE must not fire (the initiator's bounded wait surfaces it).
        dropped_.inc();
        op->failed = true;
        --op->remaining;
        off += n;
        ++chunks;
        continue;
      }
      arrive += v.extra_delay;
    }
    const u8* chunk_base = payload.empty() ? nullptr : payload.data() + off;
    const u32 chunk_off = offset + static_cast<u32>(off);
    sim_.post_at(arrive, [this, op, chunk_base, chunk_off, n] {
      const Region& r = regions_[op->rkey - 1];
      if (!r.live) {
        // Raced a deregister (receiver tore down after a timeout): the NIC
        // rejects the write; nothing lands in freed memory.
        rkey_miss_.inc();
        op->failed = true;
      } else if (n > 0) {
        assert(static_cast<usize>(chunk_off) + n <= r.len);
        std::memcpy(r.base + chunk_off, chunk_base, n);
        delivered_.inc();
        bytes_.inc(n);
      } else {
        delivered_.inc();
      }
      if (--op->remaining == 0 && !op->failed) {
        sim_.post_at(sim_.now() + cfg_.completion_delay, [this, op] {
          cq_[op->src]->push(CqEvent{op->wr_id, op->rkey, op->bytes});
        });
      }
    });
    off += n;
    ++chunks;
  } while (off < payload.size());
  (void)chunks;
}

}  // namespace scrnet::netmodels
