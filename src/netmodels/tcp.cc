#include "netmodels/tcp.h"

#include <algorithm>
#include <cassert>

namespace scrnet::netmodels {

void TcpStack::send(sim::Process& p, u32 dst, std::span<const u8> data) {
  assert(dst < fabric_.hosts());
  p.delay(cfg_.send_fixed);
  const u32 seg_cap = mss();
  usize off = 0;
  do {
    const usize n = std::min<usize>(data.size() - off, seg_cap);
    // Per-segment CPU: header build + copy + checksum. Charged before the
    // NIC gets the segment; segment k+1's CPU overlaps segment k's wire
    // time, which is what pipelines multi-MSS messages.
    p.delay(cfg_.per_segment_send +
            static_cast<SimTime>(n) * (cfg_.per_byte_copy + cfg_.per_byte_csum));
    Frame f;
    f.src = host_;
    f.dst = dst;
    f.payload.resize(cfg_.header_bytes + n);  // header bytes are modeled, zeroed
    if (n) std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(off), n,
                       f.payload.begin() + cfg_.header_bytes);
    fabric_.transmit(std::move(f));
    off += n;
  } while (off < data.size());
}

void TcpStack::absorb_frame(sim::Process& p) {
  Frame f = fabric_.rx(host_).pop(p);
  assert(f.payload.size() >= cfg_.header_bytes);
  const usize n = f.payload.size() - cfg_.header_bytes;
  p.delay(cfg_.per_segment_recv +
          static_cast<SimTime>(n) * (cfg_.per_byte_copy + cfg_.per_byte_csum));
  auto& s = streams_[f.src];
  s.insert(s.end(), f.payload.begin() + cfg_.header_bytes, f.payload.end());
}

usize TcpStack::try_absorb(sim::Process& p) {
  usize n = 0;
  while (!fabric_.rx(host_).empty()) {
    absorb_frame(p);
    ++n;
  }
  return n;
}

bool TcpStack::peek(u32 src, std::span<u8> out) const {
  const auto& s = streams_[src];
  if (s.size() < out.size()) return false;
  std::copy_n(s.begin(), out.size(), out.begin());
  return true;
}

void TcpStack::consume(sim::Process& p, u32 src, std::span<u8> out, usize nbytes) {
  auto& s = streams_[src];
  assert(s.size() >= nbytes && out.size() >= nbytes);
  std::copy_n(s.begin(), nbytes, out.begin());
  s.erase(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(nbytes));
  p.delay(cfg_.recv_fixed);
}

void TcpStack::recv(sim::Process& p, u32 src, std::span<u8> out, usize nbytes) {
  assert(src < fabric_.hosts());
  assert(out.size() >= nbytes);
  auto& s = streams_[src];
  while (s.size() < nbytes) absorb_frame(p);
  // Wakeup + protocol receive path + return from the syscall: charged once
  // the data is there (a blocked receiver pays this after the interrupt,
  // not while idling).
  p.delay(cfg_.recv_fixed);
  std::copy_n(s.begin(), nbytes, out.begin());
  s.erase(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(nbytes));
}

}  // namespace scrnet::netmodels
