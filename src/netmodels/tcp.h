// TCP/IP software-stack cost model (Linux 2.0-era, per the paper's testbed).
//
// This is deliberately a *cost* model, not a congestion/retransmission
// implementation: every experiment in the paper is a lossless LAN
// microbenchmark, so what matters is the overhead structure --
// syscall + protocol fixed costs, user<->kernel copies, software
// checksumming, per-segment processing, and MSS segmentation -- layered
// over a Fabric that models the wire.
//
// Semantics are stream-oriented like a connected TCP socket: send() writes
// bytes toward a destination host, recv() blocks until exactly n bytes
// from a given source have arrived.
#pragma once

#include <deque>
#include <span>
#include <vector>

#include "netmodels/fabric.h"

namespace scrnet::netmodels {

struct TcpConfig {
  SimTime send_fixed = us(18);      // syscall + tcp_sendmsg path, per call
  SimTime recv_fixed = us(20);      // syscall + wakeup, per call
  SimTime per_segment_send = us(2); // header build + driver handoff
  SimTime per_segment_recv = us(3); // interrupt + protocol input processing
  SimTime per_byte_copy = ns(10);   // user<->kernel copy, each direction
  SimTime per_byte_csum = ns(8);    // software checksum (0 if NIC offloads)
  u32 header_bytes = 40;            // TCP + IP headers per segment

  /// TCP over switched Fast Ethernet (the paper's baseline LAN).
  static TcpConfig fast_ethernet() {
    TcpConfig c;
    c.per_byte_copy = ns(12);
    c.per_byte_csum = ns(10);
    return c;
  }

  /// TCP over ATM (classical IP, AAL5). The adapter computes the AAL5 CRC
  /// in hardware, but the driver path is heavier than Ethernet's.
  static TcpConfig atm() {
    TcpConfig c;
    c.send_fixed = us(33);
    c.recv_fixed = us(38);
    c.per_segment_send = us(3);
    c.per_segment_recv = us(4);
    c.per_byte_csum = ns(0);
    return c;
  }

  /// TCP over Myrinet: a fast wire behind the same kernel stack plus a
  /// heavyweight encapsulation driver -- contemporary measurements put its
  /// small-message latency *above* Ethernet's, as Figure 2 shows.
  static TcpConfig myrinet() {
    TcpConfig c;
    c.send_fixed = us(40);
    c.recv_fixed = us(44);
    c.per_segment_send = us(4);
    c.per_segment_recv = us(5);
    return c;
  }
};

class TcpStack {
 public:
  /// One stack instance per host; it owns the host's fabric RX mailbox.
  TcpStack(Fabric& fabric, u32 host, TcpConfig cfg)
      : fabric_(fabric), host_(host), cfg_(cfg), streams_(fabric.hosts()) {}

  u32 host() const { return host_; }
  const TcpConfig& config() const { return cfg_; }
  u32 mss() const { return fabric_.mtu_payload() - cfg_.header_bytes; }

  /// Stream write toward `dst`; returns once the data is handed to the NIC
  /// (socket-buffer semantics; the benches' messages fit the send buffer).
  void send(sim::Process& p, u32 dst, std::span<const u8> data);

  /// Stream read: block until exactly `nbytes` from `src` are available,
  /// then copy them into `out` (out.size() >= nbytes).
  void recv(sim::Process& p, u32 src, std::span<u8> out, usize nbytes);

  /// Bytes currently buffered from `src` (testing aid).
  usize buffered(u32 src) const { return streams_[src].size(); }

  // -- non-blocking interface (used by poll-mode consumers like ch_sock) ---

  /// Absorb every frame the fabric has already delivered, paying RX costs;
  /// returns the number of frames absorbed.
  usize try_absorb(sim::Process& p);

  /// Copy the first out.size() buffered bytes from `src` without consuming;
  /// false if not enough bytes are buffered.
  bool peek(u32 src, std::span<u8> out) const;

  /// Consume exactly `nbytes` buffered bytes from `src` (caller must have
  /// verified availability); charges the syscall-return cost.
  void consume(sim::Process& p, u32 src, std::span<u8> out, usize nbytes);

 private:
  /// Pull one frame from the fabric, paying RX costs, and demux it.
  void absorb_frame(sim::Process& p);

  Fabric& fabric_;
  u32 host_;
  TcpConfig cfg_;
  std::vector<std::deque<u8>> streams_;  // reassembled bytes per source
};

}  // namespace scrnet::netmodels
