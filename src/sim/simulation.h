// Discrete-event simulation kernel.
//
// The kernel advances a virtual clock over a totally-ordered event queue
// (time, then insertion sequence -- fully deterministic). Two kinds of
// actors exist:
//
//  * event callbacks -- device models (ring, switch, NIC) post plain
//    functions to run at a future virtual time;
//  * processes -- protocol/application code (BBP endpoints, MPI ranks)
//    written as ordinary blocking C++ running on a stackful fiber
//    (sim/fiber.h). Exactly one context (kernel or one process) runs at
//    any instant *within a shard*; control moves by cooperative context
//    swap, so a Process::delay() costs nanoseconds, not a condvar round
//    trip. This lets the *real* protocol code execute unmodified inside
//    the simulation. Building with -DSCRNET_SIM_THREAD_PROCS=ON restores
//    the legacy one-std::thread-per-process backend (a sanitizer/
//    debugger-friendly fallback with identical event ordering).
//
// Parallel execution (SimConfig::sim_jobs / SCRNET_SIM_JOBS): the kernel
// can split its event population into per-worker *shards*, each with its
// own calendar queue, clock, fiber scheduler, and stack pool. Execution
// proceeds in conservative lockstep windows: with L = set_lookahead() (the
// harness passes the SCRAMNet per-hop propagation delay) and T the global
// minimum next-event time, every shard may safely drain its queue up to
// T + L, because any cross-shard effect of an event at t >= T lands at
// t + L >= T + L. Cross-shard deliveries are buffered in per-shard
// outboxes and exchanged at the window barrier in a deterministic merge
// order (timestamp, then source shard, then send order). jobs=1 is the
// bit-exact reference path: it never takes a branch into any of this
// machinery beyond one predicted-not-taken bool test per post.
//
// A process consumes virtual time with Process::delay() and blocks on
// conditions with sim::Signal. If the event queue drains while processes
// are still parked, the kernel reports a deadlock with the parked
// process names (a real protocol bug surface, exercised by tests).
#pragma once

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "sim/event_queue.h"
#include "sim/fiber.h"

namespace scrnet::obs {
class Sink;
}

namespace scrnet::sim {

class Simulation;
class Process;

namespace detail {
struct Shard;
}

/// Thrown by Simulation::run() when all events are exhausted but one or more
/// processes are still parked on a Signal.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown out of run() when a simulated process body threw.
class ProcessError : public std::runtime_error {
 public:
  explicit ProcessError(const std::string& what) : std::runtime_error(what) {}
};

/// Kernel tuning knobs (RingConfig-style: aggregate, all defaulted).
struct SimConfig {
  /// Usable stack bytes for each simulated process fiber, rounded up to
  /// whole pages; a PROT_NONE guard page is mapped below every stack.
  /// Ignored by the SCRNET_SIM_THREAD_PROCS fallback (OS threads size
  /// their own stacks).
  usize proc_stack_bytes = 256 * 1024;
  /// Event-execution shards inside this simulation. 0 = take the value of
  /// the SCRNET_SIM_JOBS environment variable (default 1). Clamped to
  /// [1, 64]. Shards only do anything once work is placed on them with
  /// spawn_on()/post_at_shard(); a simulation whose work all lives on
  /// shard 0 runs the plain sequential loop even when sim_jobs > 1.
  u32 sim_jobs = 0;
};

/// A simulated process. Instances are owned by the Simulation; user code
/// receives a reference in its body functor and must not retain it past
/// process exit.
class Process {
 public:
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Consume `dt` of virtual time (models CPU work / bus transactions).
  void delay(SimTime dt);

  /// Reschedule at the current time, after already-queued events. Useful to
  /// model "check again immediately but let the world make progress".
  void yield();

  /// Virtual now() shortcut (this process's shard clock).
  SimTime now() const;

  Simulation& simulation() const { return sim_; }
  const std::string& name() const { return name_; }
  u32 id() const { return id_; }
  bool finished() const { return state_ == State::kFinished; }

 private:
  friend class Simulation;
  friend class Signal;

  enum class State {
    kCreated,   // never dispatched, no execution context yet
    kReady,     // resume event queued
    kRunning,   // process context active
    kParked,    // waiting on a Signal (no resume event queued)
    kFinished,  // body returned or threw
  };

  Process(Simulation& sim, detail::Shard& shard, u32 id, std::string name,
          std::function<void(Process&)> body);

  /// Switch control process -> kernel. Called with proc about to block.
  void to_kernel();
  /// Regain control from the kernel (cancellation check on resume).
  void from_kernel_wait();
  /// Park on a signal: no resume event is scheduled; Signal::notify will.
  void park();

#if defined(SCRNET_SIM_THREAD_PROCS)
  void thread_main();
#else
  static void fiber_entry(void* self);
  void fiber_main();
#endif

  Simulation& sim_;
  detail::Shard* shard_;  // owning shard: queue, clock, scheduler affinity
  u32 id_;
  std::string name_;
  std::function<void(Process&)> body_;

#if defined(SCRNET_SIM_THREAD_PROCS)
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool proc_turn_ = false;    // true: process may run; false: kernel may run
#else
  detail::FiberContext fiber_;
  detail::FiberStack stack_;
  bool fiber_live_ = false;   // stack acquired + context armed
#endif

  bool cancelled_ = false;    // set during Simulation teardown
  bool wake_was_notify_ = false;  // distinguishes notify vs timeout wakeups
  State state_ = State::kCreated;
  u64 park_token_ = 0;        // incremented on every park, guards stale wakeups
  std::string error_;         // exception text if the body threw
};

namespace detail {

/// One event-execution shard: its own calendar queue, clock, processes,
/// fiber kernel context, and stack pool. Shard 0 ("home") is embedded in
/// the Simulation and is the only shard a sequential run ever touches.
struct Shard {
  Shard(u32 id_, usize stack_bytes) : id(id_), stacks(stack_bytes) {}

  const u32 id;
  SimTime now = 0;
  EventQueue queue;
  StackPool stacks;
#if !defined(SCRNET_SIM_THREAD_PROCS)
  FiberContext kctx;  // kernel-side context for this shard
#endif
  std::vector<std::unique_ptr<Process>> procs;

  /// A cross-shard send buffered during the current window; drained and
  /// merged by the coordinator at the barrier.
  struct CrossEvent {
    SimTime t;
    Shard* dst;
    std::function<void()> fn;
  };
  std::vector<CrossEvent> outbox;

  /// Earliest time of an operation this shard deferred to a barrier hook
  /// during the current window (Simulation::note_horizon); max() = none.
  /// Its cross-shard effects land at >= horizon + lookahead, which bounds
  /// how far an extended solo window may run.
  SimTime horizon = std::numeric_limits<SimTime>::max();

  /// Exclusive bound on virtual times this shard may *apply inline* during
  /// the currently executing event (see Simulation::inline_apply_bound):
  /// the live drain-window cap during a parallel window, the boundary
  /// during a sequential run_until, max() otherwise.
  SimTime inline_cap = std::numeric_limits<SimTime>::max();

  /// Latest virtual time this shard has applied inline (coalesced walk /
  /// chain deliveries run ahead of the event clock). The run's final clock
  /// convergence takes the max of this and `now`, so a run whose *tail* is
  /// coalesced still ends at the last delivery's virtual time exactly like
  /// the one-event-per-hop reference.
  SimTime inline_mark = 0;

  // Deferred failure state (rethrown by the coordinator between windows).
  std::string error;
  bool proc_error = false;  // error came from a ProcessError
  bool timed_out = false;   // hit the time-limit safety valve
};

}  // namespace detail

/// The simulation kernel.
class Simulation {
 private:
  using Shard = detail::Shard;

  /// Worker threads find their shard through this thread-local; the token
  /// ties it to one Simulation instance so a stale entry from a destroyed
  /// simulation can never alias a live one.
  struct TlsCtx {
    u64 token;
    Shard* shard;
  };
  static inline thread_local TlsCtx tls_ctx_{0, nullptr};

  /// RAII: route this thread's posts/now() to `s` for the scope's duration.
  class ShardScope {
   public:
    ShardScope(const Simulation& sim, Shard& s) : prev_(tls_ctx_) {
      tls_ctx_ = TlsCtx{sim.token_, &s};
    }
    ~ShardScope() { tls_ctx_ = prev_; }
    ShardScope(const ShardScope&) = delete;
    ShardScope& operator=(const ShardScope&) = delete;

   private:
    TlsCtx prev_;
  };

 public:
  Simulation() : Simulation(SimConfig{}) {}
  explicit Simulation(const SimConfig& cfg);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Virtual time of the calling context: the executing shard's clock
  /// during a parallel run, the (single) home clock otherwise.
  SimTime now() const {
    if (parallel_run_) [[unlikely]] return ctx_shard().now;
    return home_.now;
  }

  /// Post a device callback `delay` after now. Any callable works; one
  /// whose captures fit EventQueue::kInlineBytes is stored allocation-free.
  /// During a parallel run the event lands on the calling context's shard.
  template <typename F>
  void post(SimTime delay, F&& fn) {
    if (parallel_run_) [[unlikely]] {
      Shard& s = ctx_shard();
      s.queue.push(s.now + delay, std::forward<F>(fn));
      return;
    }
    home_.queue.push(home_.now + delay, std::forward<F>(fn));
  }
  /// Post a device callback at absolute time t (must be >= now).
  template <typename F>
  void post_at(SimTime t, F&& fn) {
    if (parallel_run_) [[unlikely]] {
      Shard& s = ctx_shard();
      assert(t >= s.now && "cannot post into the past");
      s.queue.push(t, std::forward<F>(fn));
      return;
    }
    assert(t >= home_.now && "cannot post into the past");
    home_.queue.push(t, std::forward<F>(fn));
  }

  /// Post a callback onto a specific shard's queue. Outside a parallel run
  /// (setup, or jobs=1) this is a plain deterministic push. During a
  /// parallel run, a cross-shard post is buffered in the sender's outbox
  /// and merged at the window barrier; conservative lookahead guarantees
  /// t >= the barrier time, which merge_outboxes() asserts.
  template <typename F>
  void post_at_shard(u32 shard, SimTime t, F&& fn) {
    Shard& dst = shard_at(shard);
    if (!parallel_run_) {
      dst.queue.push(t, std::forward<F>(fn));
      return;
    }
    Shard& cur = ctx_shard();
    if (&cur == &dst) {
      dst.queue.push(t, std::forward<F>(fn));
      return;
    }
    cur.outbox.push_back(
        Shard::CrossEvent{t, &dst, std::function<void()>(std::forward<F>(fn))});
  }

  /// Create a process; it starts at the current virtual time (or at start
  /// of run() if spawned before run()). Lands on the calling context's
  /// shard (home outside a parallel run).
  Process& spawn(std::string name, std::function<void(Process&)> body);
  /// Create a process bound to a specific shard (its fibers, resume events
  /// and queue all live there). Setup-time only, before run().
  Process& spawn_on(u32 shard, std::string name, std::function<void(Process&)> body);

  /// Run until the event queue is empty and every process has finished.
  /// Throws DeadlockError / ProcessError on failure.
  void run();

  /// Run until the given virtual time; returns true if work remains.
  /// Honors the same time-limit safety valve as run().
  bool run_until(SimTime t);

  /// Safety valve: abort run()/run_until() if virtual time passes this
  /// (0 = unlimited).
  void set_time_limit(SimTime t) { time_limit_ = t; }

  // -- parallel-execution surface ------------------------------------------

  /// Number of event-execution shards (1 = sequential reference kernel).
  u32 jobs() const { return jobs_; }
  /// Conservative lookahead: every cross-shard effect of an event at time t
  /// must land at >= t + lookahead. The harness passes the ring's per-hop
  /// propagation delay. 0 (the default) degenerates to 1 ps windows --
  /// correct but slow, so set it whenever shards are used.
  void set_lookahead(SimTime l) { lookahead_ = l; }
  SimTime lookahead() const { return lookahead_; }
  /// Shard of the calling context (0 outside a parallel run). Device
  /// models use this to tag per-shard staging buffers.
  u32 current_shard() const { return parallel_run_ ? ctx_shard().id : 0; }
  /// True while a parallel (jobs > 1, sharded-work) run is in progress.
  bool in_parallel_run() const { return parallel_run_; }
  /// Register a hook the window coordinator calls between windows (after
  /// all shards quiesced, before the outbox merge) with the window-end
  /// time. The SCRAMNet ring uses this to replay its serialization spine.
  /// Hooks run on the coordinating thread, in registration order.
  void add_barrier_hook(std::function<void(SimTime)> hook) {
    barrier_hooks_.push_back(std::move(hook));
  }
  /// A device model that defers an operation to a barrier hook (instead of
  /// sending through post_at_shard) must report the operation's timestamp
  /// here: its cross-shard effects land at >= t + lookahead, which bounds
  /// how far an extended solo window may keep running (drain_window).
  /// No-op outside a parallel run.
  void note_horizon(SimTime t) {
    if (parallel_run_) [[unlikely]] {
      Shard& s = ctx_shard();
      if (t < s.horizon) s.horizon = t;
    }
  }

  /// Exclusive upper bound on virtual times the currently executing event
  /// may *apply inline* -- mutate state timestamped in the future without
  /// posting an event for it. Sound because every other observer (a queued
  /// event, a process resume, a run_until return, a parallel-window
  /// barrier) runs at or after this bound, so a state change timestamped
  /// strictly below it is applied before anything could have read the old
  /// value. The ring's coalesced packet walk uses this to deliver a run of
  /// same-shard hops inside one pooled event. Recomputed after every
  /// inline application: the applied work may itself have posted events
  /// (e.g. an IRQ handler's reaction) that tighten the bound.
  SimTime inline_apply_bound() {
    Shard& s = ctx_shard();
    SimTime bound = s.inline_cap;
    if (!s.queue.empty()) bound = std::min(bound, s.queue.next_time());
    if (time_limit_ > 0) bound = std::min(bound, time_limit_ + 1);
    return bound;
  }

  /// Record that the calling context applied state with virtual time `t`
  /// inline (t must be below inline_apply_bound()).
  void note_inline_apply(SimTime t) {
    Shard& s = ctx_shard();
    if (s.inline_mark < t) s.inline_mark = t;
  }

  u64 events_executed() const;
  usize live_processes() const;

  /// Event-storage counters (pool growth, inline vs heap callables),
  /// aggregated over shards -- the allocation-free guarantee is asserted
  /// against these in tests.
  EventQueue::Stats queue_stats() const;
  /// Events currently queued (device callbacks + process resumes).
  usize events_pending() const;

  /// Fiber stack-pool counters (mmap'd vs recycled stacks), aggregated
  /// over shards. All zero on the SCRNET_SIM_THREAD_PROCS fallback, which
  /// has no fiber stacks.
  detail::StackPool::Stats stack_stats() const;
  /// Per-process usable stack bytes after page rounding.
  usize proc_stack_bytes() const { return home_.stacks.stack_bytes(); }

  /// The observability sink this simulation records into (TRACE_* hooks,
  /// published counters). Captured from obs::Sink::current() at
  /// construction: the global sink for ordinary single-run programs, the
  /// job's private sink inside a sweep::Runner job. run()/run_until()
  /// (re)install it as the thread-current sink for their duration (on
  /// every worker thread too during a parallel run).
  obs::Sink& sink() const { return *sink_; }
  void set_sink(obs::Sink& s) { sink_ = &s; }

 private:
  friend class Process;
  friend class Signal;

  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();
  /// Shard k's process ids start at k * kProcIdStride (shard 0 keeps the
  /// dense 0..n-1 ids the sequential kernel always had).
  static constexpr u32 kProcIdStride = 1u << 20;

  Shard& shard_at(u32 i) {
    assert(i < jobs_);
    return i == 0 ? home_ : *extra_[i - 1];
  }
  /// The shard the calling thread is draining, or home between windows /
  /// outside runs. The token check rejects entries left by other (possibly
  /// destroyed) simulations.
  Shard& ctx_shard() {
    return tls_ctx_.token == token_ ? *tls_ctx_.shard : home_;
  }
  const Shard& ctx_shard() const {
    return tls_ctx_.token == token_ ? *tls_ctx_.shard : home_;
  }

  template <typename Fn>
  void each_shard(Fn&& f) {
    f(home_);
    for (auto& s : extra_) f(*s);
  }
  template <typename Fn>
  void each_shard(Fn&& f) const {
    f(home_);
    for (const auto& s : extra_) f(*s);
  }

  Process& spawn_impl(Shard& sh, std::string name, std::function<void(Process&)> body);

  /// Schedule process resume at absolute time t (on the process's shard).
  void schedule_resume(Process& p, SimTime t);
  /// Give control to process p and wait until it blocks or finishes.
  void dispatch(Process& p);

  /// Execute one event on the home shard; returns false if the queue is
  /// empty. Inline so the sequential run() loop compiles down to pop /
  /// advance clock / indirect call.
  bool step() {
    EventQueue::Popped ev;
    if (!home_.queue.pop(&ev)) return false;
    assert(ev.t >= home_.now);
    home_.now = ev.t;
    home_.queue.run_and_release(ev);
    return true;
  }

  void check_time_limit();
  void check_deadlock() const;

  // -- parallel window machinery (see run_parallel in simulation.cc) -------
  bool parallel_needed() const;
  void run_parallel(SimTime until);  // until < 0: run to completion
  void drain_window(Shard& s, SimTime wend);
  void merge_outboxes(SimTime wend);
  void throw_shard_failure();
  void start_workers();
  void stop_workers();
  void worker_main(u32 worker_idx);
  void drain_claimed(u32 start);
  void unwind_procs(Shard& s);

  const u64 token_;  // unique per Simulation (validates tls_ctx_ entries)
  const u32 jobs_;
  SimTime lookahead_ = 0;
  bool parallel_run_ = false;
  SimTime time_limit_ = 0;
  obs::Sink* sink_;  // never null; set in the constructor
  Shard home_;
  std::vector<std::unique_ptr<Shard>> extra_;  // shards 1..jobs-1
  std::vector<std::function<void(SimTime)>> barrier_hooks_;
  std::vector<Shard::CrossEvent> merge_buf_;   // scratch, capacity reused
  bool running_ = false;

  // Worker rendezvous with work stealing: the coordinator stores
  // window_end_ and pending_, then publishes the window's shard set with a
  // *release* store to unclaimed_mask_ and bumps epoch_ to wake sleepers.
  // Every participant (coordinator included) then runs drain_claimed():
  // claim a shard bit with an acq_rel fetch_and, drain that whole shard's
  // window, decrement pending_, repeat until the mask is empty -- so a
  // shard that drains early immediately steals the next unclaimed shard
  // instead of idling out the window. The claim RMW synchronizes with the
  // mask's release store directly (not via epoch_), which makes a stale
  // claimer from the previous window safe: whatever bit its fetch_and
  // wins belongs to the *current* window, whose window_end_ cannot change
  // while the coordinator still spins on pending_ != 0.
  std::vector<std::thread> workers_;
  std::atomic<u64> epoch_{0};
  std::atomic<u32> pending_{0};
  std::atomic<bool> stop_workers_{false};
  std::atomic<SimTime> window_end_{0};
  std::atomic<u64> unclaimed_mask_{0};
  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
};

/// Condition-variable analog for simulated processes.
///
/// wait() parks the calling process until another actor calls notify_all/
/// notify_one. Wakeups are scheduled as regular events at the notifying
/// time, preserving determinism. Signals are shard-local: notifier and
/// waiter must live on the same shard (true for every device signal in the
/// tree -- ports, endpoints and channels are all node-local).
class Signal {
 public:
  explicit Signal(Simulation& sim) : sim_(sim) {}

  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  /// Park until notified.
  void wait(Process& p);

  /// Park until notified or until `timeout` elapses; true if notified.
  bool wait_for(Process& p, SimTime timeout);

  /// Wait until pred() holds, re-checking after every notification.
  template <typename Pred>
  void wait_until(Process& p, Pred pred) {
    while (!pred()) wait(p);
  }

  void notify_all();
  void notify_one();

  usize waiters() const { return waiting_.size(); }

 private:
  Simulation& sim_;
  std::deque<Process*> waiting_;
};

}  // namespace scrnet::sim
