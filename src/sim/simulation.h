// Discrete-event simulation kernel.
//
// The kernel advances a virtual clock over a totally-ordered event queue
// (time, then insertion sequence -- fully deterministic). Two kinds of
// actors exist:
//
//  * event callbacks -- device models (ring, switch, NIC) post plain
//    functions to run at a future virtual time;
//  * processes -- protocol/application code (BBP endpoints, MPI ranks)
//    written as ordinary blocking C++ running on a stackful fiber
//    (sim/fiber.h). Exactly one context (kernel or one process) runs at
//    any instant; control moves by cooperative context swap on the kernel
//    thread, so a Process::delay() costs nanoseconds, not a condvar
//    round trip. This lets the *real* protocol code execute unmodified
//    inside the simulation. Building with -DSCRNET_SIM_THREAD_PROCS=ON
//    restores the legacy one-std::thread-per-process backend (a
//    sanitizer/debugger-friendly fallback with identical event ordering).
//
// A process consumes virtual time with Process::delay() and blocks on
// conditions with sim::Signal. If the event queue drains while processes
// are still parked, the kernel reports a deadlock with the parked
// process names (a real protocol bug surface, exercised by tests).
#pragma once

#include <cassert>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#if defined(SCRNET_SIM_THREAD_PROCS)
#include <condition_variable>
#include <mutex>
#include <thread>
#endif

#include "common/types.h"
#include "common/units.h"
#include "sim/event_queue.h"
#include "sim/fiber.h"

namespace scrnet::obs {
class Sink;
}

namespace scrnet::sim {

class Simulation;
class Process;

/// Thrown by Simulation::run() when all events are exhausted but one or more
/// processes are still parked on a Signal.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown out of run() when a simulated process body threw.
class ProcessError : public std::runtime_error {
 public:
  explicit ProcessError(const std::string& what) : std::runtime_error(what) {}
};

/// Kernel tuning knobs (RingConfig-style: aggregate, all defaulted).
struct SimConfig {
  /// Usable stack bytes for each simulated process fiber, rounded up to
  /// whole pages; a PROT_NONE guard page is mapped below every stack.
  /// Ignored by the SCRNET_SIM_THREAD_PROCS fallback (OS threads size
  /// their own stacks).
  usize proc_stack_bytes = 256 * 1024;
};

/// A simulated process. Instances are owned by the Simulation; user code
/// receives a reference in its body functor and must not retain it past
/// process exit.
class Process {
 public:
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Consume `dt` of virtual time (models CPU work / bus transactions).
  void delay(SimTime dt);

  /// Reschedule at the current time, after already-queued events. Useful to
  /// model "check again immediately but let the world make progress".
  void yield();

  /// Virtual now() shortcut.
  SimTime now() const;

  Simulation& simulation() const { return sim_; }
  const std::string& name() const { return name_; }
  u32 id() const { return id_; }
  bool finished() const { return state_ == State::kFinished; }

 private:
  friend class Simulation;
  friend class Signal;

  enum class State {
    kCreated,   // never dispatched, no execution context yet
    kReady,     // resume event queued
    kRunning,   // process context active
    kParked,    // waiting on a Signal (no resume event queued)
    kFinished,  // body returned or threw
  };

  Process(Simulation& sim, u32 id, std::string name, std::function<void(Process&)> body);

  /// Switch control process -> kernel. Called with proc about to block.
  void to_kernel();
  /// Regain control from the kernel (cancellation check on resume).
  void from_kernel_wait();
  /// Park on a signal: no resume event is scheduled; Signal::notify will.
  void park();

#if defined(SCRNET_SIM_THREAD_PROCS)
  void thread_main();
#else
  static void fiber_entry(void* self);
  void fiber_main();
#endif

  Simulation& sim_;
  u32 id_;
  std::string name_;
  std::function<void(Process&)> body_;

#if defined(SCRNET_SIM_THREAD_PROCS)
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool proc_turn_ = false;    // true: process may run; false: kernel may run
#else
  detail::FiberContext fiber_;
  detail::FiberStack stack_;
  bool fiber_live_ = false;   // stack acquired + context armed
#endif

  bool cancelled_ = false;    // set during Simulation teardown
  bool wake_was_notify_ = false;  // distinguishes notify vs timeout wakeups
  State state_ = State::kCreated;
  u64 park_token_ = 0;        // incremented on every park, guards stale wakeups
  std::string error_;         // exception text if the body threw
};

/// The simulation kernel.
class Simulation {
 public:
  Simulation() : Simulation(SimConfig{}) {}
  explicit Simulation(const SimConfig& cfg);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  /// Post a device callback `delay` after now. Any callable works; one
  /// whose captures fit EventQueue::kInlineBytes is stored allocation-free.
  template <typename F>
  void post(SimTime delay, F&& fn) {
    post_at(now_ + delay, std::forward<F>(fn));
  }
  /// Post a device callback at absolute time t (must be >= now).
  template <typename F>
  void post_at(SimTime t, F&& fn) {
    assert(t >= now_ && "cannot post into the past");
    queue_.push(t, std::forward<F>(fn));
  }

  /// Create a process; it starts at the current virtual time (or at start
  /// of run() if spawned before run()).
  Process& spawn(std::string name, std::function<void(Process&)> body);

  /// Run until the event queue is empty and every process has finished.
  /// Throws DeadlockError / ProcessError on failure.
  void run();

  /// Run until the given virtual time; returns true if work remains.
  /// Honors the same time-limit safety valve as run().
  bool run_until(SimTime t);

  /// Safety valve: abort run()/run_until() if virtual time passes this
  /// (0 = unlimited).
  void set_time_limit(SimTime t) { time_limit_ = t; }

  u64 events_executed() const { return queue_.executed(); }
  usize live_processes() const;

  /// Event-storage counters (pool growth, inline vs heap callables) --
  /// the allocation-free guarantee is asserted against these in tests.
  EventQueue::Stats queue_stats() const { return queue_.stats(); }
  /// Events currently queued (device callbacks + process resumes).
  usize events_pending() const { return queue_.size(); }

  /// Fiber stack-pool counters (mmap'd vs recycled stacks). All zero on
  /// the SCRNET_SIM_THREAD_PROCS fallback, which has no fiber stacks.
  detail::StackPool::Stats stack_stats() const { return stack_pool_.stats(); }
  /// Per-process usable stack bytes after page rounding.
  usize proc_stack_bytes() const { return stack_pool_.stack_bytes(); }

  /// The observability sink this simulation records into (TRACE_* hooks,
  /// published counters). Captured from obs::Sink::current() at
  /// construction: the global sink for ordinary single-run programs, the
  /// job's private sink inside a sweep::Runner job. run()/run_until()
  /// (re)install it as the thread-current sink for their duration.
  obs::Sink& sink() const { return *sink_; }
  void set_sink(obs::Sink& s) { sink_ = &s; }

 private:
  friend class Process;
  friend class Signal;

  /// Schedule process resume at absolute time t.
  void schedule_resume(Process& p, SimTime t);
  /// Give control to process p and wait until it blocks or finishes.
  void dispatch(Process& p);

  /// Execute one event; returns false if the queue is empty. Inline so the
  /// run() loop compiles down to pop / advance clock / indirect call.
  bool step() {
    EventQueue::Popped ev;
    if (!queue_.pop(&ev)) return false;
    assert(ev.t >= now_);
    now_ = ev.t;
    queue_.run_and_release(ev);
    return true;
  }

  void check_time_limit();

  SimTime now_ = 0;
  SimTime time_limit_ = 0;
  obs::Sink* sink_;  // never null; set in the constructor
  EventQueue queue_;
  detail::StackPool stack_pool_;
#if !defined(SCRNET_SIM_THREAD_PROCS)
  detail::FiberContext kernel_ctx_;
#endif
  std::vector<std::unique_ptr<Process>> procs_;
  bool running_ = false;
};

/// Condition-variable analog for simulated processes.
///
/// wait() parks the calling process until another actor calls notify_all/
/// notify_one. Wakeups are scheduled as regular events at the notifying
/// time, preserving determinism.
class Signal {
 public:
  explicit Signal(Simulation& sim) : sim_(sim) {}

  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  /// Park until notified.
  void wait(Process& p);

  /// Park until notified or until `timeout` elapses; true if notified.
  bool wait_for(Process& p, SimTime timeout);

  /// Wait until pred() holds, re-checking after every notification.
  template <typename Pred>
  void wait_until(Process& p, Pred pred) {
    while (!pred()) wait(p);
  }

  void notify_all();
  void notify_one();

  usize waiters() const { return waiting_.size(); }

 private:
  Simulation& sim_;
  std::deque<Process*> waiting_;
};

}  // namespace scrnet::sim
