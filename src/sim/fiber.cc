#include "sim/fiber.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>

#if defined(SCRNET_FIBER_ASAN)
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif

namespace scrnet::sim::detail {

// ---------------------------------------------------------------------------
// StackPool
// ---------------------------------------------------------------------------

StackPool::StackPool(usize usable_bytes) {
  page_bytes_ = static_cast<usize>(sysconf(_SC_PAGESIZE));
  if (usable_bytes < page_bytes_) usable_bytes = page_bytes_;
  stack_bytes_ = (usable_bytes + page_bytes_ - 1) & ~(page_bytes_ - 1);
}

StackPool::~StackPool() {
  // Stacks still marked live belong to fibers the Simulation cancelled (or
  // leaked pathologically); their mappings die with the pool either way.
  for (const FiberStack& s : free_) munmap(s.base, s.map_bytes);
}

FiberStack StackPool::acquire() {
  ++stats_.live;
  if (!free_.empty()) {
    FiberStack s = free_.back();
    free_.pop_back();
    --stats_.pooled;
    ++stats_.reused;
    return s;
  }
  FiberStack s;
  s.guard_bytes = page_bytes_;
  s.map_bytes = stack_bytes_ + s.guard_bytes;
  void* mem = mmap(nullptr, s.map_bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (mem == MAP_FAILED) throw std::bad_alloc();
  if (mprotect(mem, s.guard_bytes, PROT_NONE) != 0) {
    munmap(mem, s.map_bytes);
    throw std::bad_alloc();
  }
  s.base = mem;
  ++stats_.mapped;
#if defined(SCRNET_FIBER_ASAN)
  // The mmap may land where a previously-unmapped allocation left stale
  // shadow; start from a clean slate.
  __asan_unpoison_memory_region(s.limit(), s.usable_bytes());
#endif
  return s;
}

void StackPool::release(const FiberStack& s) {
  assert(s && "releasing an empty stack");
#if defined(SCRNET_FIBER_ASAN)
  // The dead fiber's last frames (fiber entry/exit) never returned, so
  // their shadow poison is still on the stack; scrub it before the next
  // fiber -- or, after munmap, an unrelated allocation -- lands here.
  __asan_unpoison_memory_region(s.limit(), s.usable_bytes());
#endif
  assert(stats_.live > 0);
  --stats_.live;
  ++stats_.pooled;
  free_.push_back(s);
}

// ---------------------------------------------------------------------------
// FiberContext
// ---------------------------------------------------------------------------

namespace {
// Entry handoff: run_entry() starts on a brand-new stack with no saved
// registers, so the target/source contexts travel in thread-locals set by
// switch_from() just before the swap. Only the first resume of a context
// reads them.
thread_local FiberContext* g_switch_target = nullptr;
thread_local FiberContext* g_switch_source = nullptr;
}  // namespace

#if defined(SCRNET_FIBER_BACKEND_ASM)

// System-V x86-64 cooperative switch: save callee-saved registers plus the
// MXCSR/x87 control words on the suspending stack, publish its %rsp, adopt
// the resuming stack's %rsp, restore, ret. The `ret` consumes either the
// suspended switch's return address or, on first entry, the fabricated
// frame's run_entry slot. No syscall (cf. swapcontext's sigprocmask).
extern "C" void scrnet_fiber_switch_asm(void** save_sp, void* resume_sp);
asm(R"(
.text
.globl scrnet_fiber_switch_asm
.type scrnet_fiber_switch_asm,@function
.align 16
scrnet_fiber_switch_asm:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    subq  $8, %rsp
    stmxcsr (%rsp)
    fnstcw  4(%rsp)
    movq  %rsp, (%rdi)
    movq  %rsi, %rsp
    ldmxcsr (%rsp)
    fldcw   4(%rsp)
    addq  $8, %rsp
    popq  %r15
    popq  %r14
    popq  %r13
    popq  %r12
    popq  %rbx
    popq  %rbp
    retq
.size scrnet_fiber_switch_asm,.-scrnet_fiber_switch_asm
)");

void FiberContext::prepare(Entry entry, void* arg, const FiberStack& stack) {
  entry_ = entry;
  arg_ = arg;
#if defined(SCRNET_FIBER_ASAN)
  stack_bottom_ = stack.limit();
  stack_size_ = stack.usable_bytes();
  fake_stack_ = nullptr;
#endif
  // Fabricate the frame scrnet_fiber_switch_asm expects to pop. Keep the
  // run_entry slot 16-aligned so that after `ret`, %rsp % 16 == 8 -- the
  // ABI state at any function entry.
  uintptr_t top16 = reinterpret_cast<uintptr_t>(stack.top()) & ~uintptr_t{15};
  auto* entry_slot = reinterpret_cast<uintptr_t*>(top16 - 16);
  entry_slot[1] = 0;  // run_entry never returns; 0 also stops unwinders
  entry_slot[0] = reinterpret_cast<uintptr_t>(&FiberContext::run_entry);
  uintptr_t* frame = entry_slot - 7;  // fpctl, r15, r14, r13, r12, rbx, rbp
  std::memset(frame, 0, 7 * sizeof(uintptr_t));
  unsigned mxcsr;
  unsigned short fcw;
  asm volatile("stmxcsr %0\n\tfnstcw %1" : "=m"(mxcsr), "=m"(fcw));
  std::memcpy(frame, &mxcsr, sizeof(mxcsr));
  std::memcpy(reinterpret_cast<char*>(frame) + 4, &fcw, sizeof(fcw));
  sp_ = frame;
}

#else  // SCRNET_FIBER_BACKEND_UCONTEXT

void FiberContext::prepare(Entry entry, void* arg, const FiberStack& stack) {
  entry_ = entry;
  arg_ = arg;
#if defined(SCRNET_FIBER_ASAN)
  stack_bottom_ = stack.limit();
  stack_size_ = stack.usable_bytes();
  fake_stack_ = nullptr;
#endif
  if (getcontext(&ctx_) != 0) std::abort();
  ctx_.uc_stack.ss_sp = stack.limit();
  ctx_.uc_stack.ss_size = stack.usable_bytes();
  ctx_.uc_link = nullptr;  // run_entry never returns
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&FiberContext::run_entry), 0);
}

#endif  // backend

void FiberContext::run_entry() {
  FiberContext* self = g_switch_target;
#if defined(SCRNET_FIBER_ASAN)
  // First instants on this stack: complete the switch and learn the
  // resumer's stack extents so switches back can be annotated.
  FiberContext* source = g_switch_source;
  const void* prev_bottom = nullptr;
  usize prev_size = 0;
  __sanitizer_finish_switch_fiber(nullptr, &prev_bottom, &prev_size);
  if (source != nullptr && source->stack_bottom_ == nullptr) {
    source->stack_bottom_ = prev_bottom;
    source->stack_size_ = prev_size;
  }
#endif
  self->entry_(self->arg_);
  std::abort();  // the entry's contract is to switch away dying, not return
}

void FiberContext::switch_from(FiberContext& from, bool from_dying) {
  assert(this != &from && "switching a context into itself");
  g_switch_target = this;
  g_switch_source = &from;
#if defined(SCRNET_FIBER_ASAN)
  __sanitizer_start_switch_fiber(from_dying ? nullptr : &from.fake_stack_,
                                 stack_bottom_, stack_size_);
#else
  (void)from_dying;
#endif
#if defined(SCRNET_FIBER_BACKEND_ASM)
  scrnet_fiber_switch_asm(&from.sp_, sp_);
#else
  if (swapcontext(&from.ctx_, &ctx_) != 0) std::abort();
#endif
  // Control is back in `from` (somebody switch_from'd into it).
#if defined(SCRNET_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(from.fake_stack_, nullptr, nullptr);
#endif
}

}  // namespace scrnet::sim::detail
