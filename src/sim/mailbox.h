// Typed blocking FIFO between simulated actors, built on sim::Signal.
//
// Device models push from event context (no process needed); processes pop
// with blocking semantics. Used by the network models to hand received
// frames/segments to host stacks.
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "sim/simulation.h"

namespace scrnet::sim {

template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Simulation& sim) : signal_(sim) {}

  /// Push an item; wakes one blocked consumer.
  void push(T item) {
    q_.push_back(std::move(item));
    signal_.notify_one();
  }

  /// Blocking pop from a simulated process.
  T pop(Process& p) {
    while (q_.empty()) signal_.wait(p);
    T item = std::move(q_.front());
    q_.pop_front();
    return item;
  }

  /// Pop with timeout; nullopt if nothing arrived in time.
  std::optional<T> pop_for(Process& p, SimTime timeout) {
    const SimTime deadline = p.now() + timeout;
    while (q_.empty()) {
      const SimTime remain = deadline - p.now();
      if (remain <= 0 || !signal_.wait_for(p, remain)) {
        if (!q_.empty()) break;  // raced with a late push at the deadline
        return std::nullopt;
      }
    }
    T item = std::move(q_.front());
    q_.pop_front();
    return item;
  }

  /// Non-blocking peek/pop.
  bool empty() const { return q_.empty(); }
  usize size() const { return q_.size(); }
  const T& front() const { return q_.front(); }
  std::optional<T> try_pop() {
    if (q_.empty()) return std::nullopt;
    T item = std::move(q_.front());
    q_.pop_front();
    return item;
  }

 private:
  std::deque<T> q_;
  Signal signal_;
};

}  // namespace scrnet::sim
