// Stackful fibers for the simulation kernel.
//
// A simulated Process runs on a user-level fiber: a private mmap'd stack
// (PROT_NONE guard page below, pooled/recycled across spawn/exit) plus a
// saved CPU context. Handing control between the kernel and a process is
// one cooperative context swap on the kernel thread -- no mutex, no
// condvar, no kernel scheduling -- which is what makes Process::delay()
// cost nanoseconds instead of microseconds (BM_SimProcessSwitch).
//
// Two interchangeable switch backends sit behind FiberContext:
//
//  * asm (default on x86-64): a ~20-instruction System-V switch that saves
//    the callee-saved registers and the FP control words on the suspending
//    stack and swaps %rsp. glibc's swapcontext() performs a sigprocmask
//    system call per switch (~200 ns here); the simulator never changes
//    signal masks, so the syscall buys nothing and is skipped.
//  * ucontext (other POSIX targets, or -DSCRNET_SIM_UCONTEXT_FIBERS=ON):
//    portable getcontext/makecontext/swapcontext.
//
// Both backends carry the __sanitizer_start_switch_fiber /
// __sanitizer_finish_switch_fiber annotations, so AddressSanitizer tracks
// the live stack across swaps and fiber builds run clean under ASan.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

#if defined(__x86_64__) && !defined(SCRNET_SIM_UCONTEXT_FIBERS)
#define SCRNET_FIBER_BACKEND_ASM 1
#else
#define SCRNET_FIBER_BACKEND_UCONTEXT 1
#include <ucontext.h>
#endif

#if defined(__SANITIZE_ADDRESS__)
#define SCRNET_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SCRNET_FIBER_ASAN 1
#endif
#endif

namespace scrnet::sim::detail {

/// One mmap'd fiber stack. The lowest page is PROT_NONE: running off the
/// end of the usable region faults immediately instead of silently
/// corrupting an adjacent stack.
struct FiberStack {
  void* base = nullptr;   // mmap base; the guard page starts here
  usize map_bytes = 0;    // guard + usable
  usize guard_bytes = 0;  // PROT_NONE prefix

  void* limit() const { return static_cast<char*>(base) + guard_bytes; }
  void* top() const { return static_cast<char*>(base) + map_bytes; }
  usize usable_bytes() const { return map_bytes - guard_bytes; }
  explicit operator bool() const { return base != nullptr; }
};

/// Free-list of fiber stacks. Process exit returns the stack here; the
/// next spawn reuses it, so steady-state spawn/exit churn performs no
/// mmap/munmap traffic (BM_SimSpawnTeardown tracks this).
class StackPool {
 public:
  struct Stats {
    usize mapped = 0;  // stacks obtained from the OS (mmap)
    usize reused = 0;  // acquires served from the free list
    usize live = 0;    // stacks currently owned by a fiber
    usize pooled = 0;  // stacks parked on the free list
  };

  /// `usable_bytes` is rounded up to whole pages (stack_bytes() tells the
  /// rounded value); every stack additionally carries one guard page.
  explicit StackPool(usize usable_bytes);
  ~StackPool();

  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  FiberStack acquire();
  void release(const FiberStack& s);

  const Stats& stats() const { return stats_; }
  usize stack_bytes() const { return stack_bytes_; }

 private:
  usize page_bytes_;
  usize stack_bytes_;  // usable bytes, page-rounded
  std::vector<FiberStack> free_;
  Stats stats_;
};

/// A suspendable CPU context: either the kernel's (default-constructed,
/// its stack is whatever thread called Simulation::run) or a fiber's
/// (prepare()d onto a FiberStack). switch_from() transfers control.
class FiberContext {
 public:
  using Entry = void (*)(void* arg);

  FiberContext() = default;
  FiberContext(const FiberContext&) = delete;
  FiberContext& operator=(const FiberContext&) = delete;

  /// Arm this context so the first switch_from() into it runs entry(arg)
  /// on `stack`. entry must never return: its final act is a
  /// switch_from(self, /*from_dying=*/true) back to its resumer.
  void prepare(Entry entry, void* arg, const FiberStack& stack);

  /// Suspend the currently-executing context into `from` and resume
  /// *this. Returns when somebody later switches back into `from`.
  /// `from_dying` means `from`'s stack is dead after this swap (fiber
  /// exit): the sanitizer is told to retire it instead of keeping its
  /// fake-stack shadow alive.
  void switch_from(FiberContext& from, bool from_dying = false);

 private:
  [[noreturn]] static void run_entry();

#if defined(SCRNET_FIBER_BACKEND_ASM)
  void* sp_ = nullptr;  // saved stack pointer while suspended
#else
  ucontext_t ctx_ = {};
#endif
  Entry entry_ = nullptr;
  void* arg_ = nullptr;
#if defined(SCRNET_FIBER_ASAN)
  void* fake_stack_ = nullptr;        // ASan fake-stack handle while suspended
  const void* stack_bottom_ = nullptr;  // this context's stack, for ASan
  usize stack_size_ = 0;
#endif
};

}  // namespace scrnet::sim::detail
