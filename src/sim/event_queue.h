// Allocation-free event storage for the DES kernel.
//
// Two pieces, both tuned for the post/step cycle that every simulated
// experiment pays per event:
//
//  * EventNode -- a pooled, fixed-size node whose callable lives in an
//    inline small-buffer (kInlineBytes). Callables that fit (every device
//    lambda in this repo) cost zero heap traffic; larger ones fall back to
//    a counted heap allocation. Nodes are recycled through a freelist, so
//    steady-state posting never allocates at all.
//
//  * EventQueue -- a two-level calendar queue. Near-future events land in
//    one of kBuckets fixed-width time buckets (unsorted append, O(1));
//    events beyond the bucket horizon go to a sorted overflow heap and
//    migrate into buckets as the window advances. The bucket currently
//    being drained is kept as a small binary heap so same-bucket events
//    pop in exact (time, sequence) order.
//
// Ordering contract (identical to the priority_queue it replaced): events
// execute in ascending time, ties broken by post order. This is what makes
// every run bit-reproducible, and tests/sim_queue_test.cc locks it in.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace scrnet::sim {

class EventQueue {
 private:
  struct Node;

 public:
  /// Inline storage for the type-erased callable. 48 bytes covers every
  /// capture list in the tree (largest today: 32 bytes).
  static constexpr usize kInlineBytes = 48;

  /// An event popped but not yet run; opaque outside the kernel. Carries
  /// the invoke pointer so running it never has to chase node->invoke.
  struct Popped {
    SimTime t;
    Node* node;
    void (*invoke)(void*);
  };

  struct Stats {
    u64 posted = 0;          // total events enqueued
    u64 inline_stored = 0;   // callables that fit the inline buffer
    u64 heap_fallback = 0;   // callables that needed a heap allocation
    u64 pool_chunks = 0;     // node-pool growth events (chunk allocations)
    u64 overflow_posted = 0; // events that landed beyond the bucket horizon
    u64 max_calendar = 0;    // high-water mark of events in the calendar
  };

  EventQueue() : buckets_(kBuckets) { bitmap_.fill(0); }

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  ~EventQueue() {
    if (slot_.node != nullptr) destroy_node(slot_.node);
    for (auto& e : active_) destroy_node(e.node);
    for (auto& b : buckets_)
      for (auto& e : b) destroy_node(e.node);
    for (auto& e : overflow_) destroy_node(e.node);
  }

  /// Enqueue `fn` to run at absolute time `t`. Ties with already-queued
  /// events break in favor of the earlier push.
  ///
  /// Hot-slot fast path: the earliest queued event is cached in `slot_`
  /// (invariant: slot_ <= everything in the calendar, (t, seq) order). A
  /// simulation with one event in flight -- the post/step chain every
  /// device callback cascade reduces to -- never touches the calendar.
  template <typename F>
  [[gnu::always_inline]] inline void push(SimTime t, F&& fn) {
    Node* n = acquire();
    bind(n, std::forward<F>(fn));
    const u64 seq = seq_++;
    // Field-at-a-time slot stores: keeps the compiler from staging an Entry
    // on the stack and reloading it wide (a store-forwarding stall per post).
    if (slot_.node == nullptr) {
      if (calendar_live_ == 0) {  // queue was empty: this is the minimum
        slot_.t = t;
        slot_.seq = seq;
        slot_.node = n;
        slot_invoke_ = n->invoke;
        return;
      }
      enqueue(Entry{t, seq, n});  // calendar holds the minimum; slot stays
      return;
    }
    // Keep the smaller of the two as the slot (ties stay: n has higher seq).
    if (t < slot_.t) {
      enqueue(slot_);
      slot_.t = t;
      slot_.seq = seq;
      slot_.node = n;
      slot_invoke_ = n->invoke;
    } else {
      enqueue(Entry{t, seq, n});
    }
  }

  bool empty() const { return slot_.node == nullptr && calendar_live_ == 0; }
  usize size() const { return (slot_.node != nullptr ? 1u : 0u) + calendar_live_; }

  /// Time of the earliest queued event. Only valid when !empty().
  SimTime next_time() {
    if (slot_.node != nullptr) return slot_.t;
    const bool have = prime();
    assert(have && "next_time() on an empty queue");
    (void)have;
    return active_.front().t;
  }

  /// Pop the earliest event without running it (the caller advances the
  /// clock first, so the callable observes its own timestamp as now()).
  bool pop(Popped* out) {
    if (slot_.node != nullptr) {
      *out = Popped{slot_.t, slot_.node, slot_invoke_};
      slot_.node = nullptr;
      ++executed_;
      return true;
    }
    if (!prime()) return false;
    Entry e;
    if (active_.size() == 1) {
      // Single-entry heap (the normal case with ~16 ns buckets): take it
      // without the pop_heap shuffle.
      e = active_.front();
      active_.clear();
    } else {
      std::pop_heap(active_.begin(), active_.end(), EntryAfter{});
      e = active_.back();
      active_.pop_back();
    }
    --calendar_live_;
    ++executed_;
    *out = Popped{e.t, e.node, e.node->invoke};
    return true;
  }

  /// Run a popped event and recycle its node. Invoke also destroys the
  /// callable (fused at bind time); the node goes back on the freelist even
  /// if the callable throws (ProcessError unwinds through here) -- the
  /// guard runs after the callable's frame is gone.
  void run_and_release(const Popped& ev) {
    ReleaseGuard guard{this, ev.node};
    ev.invoke(ev.node->buf);
  }

  /// Total events ever popped for execution.
  u64 executed() const { return executed_; }

  Stats stats() const {
    Stats s = stats_;
    s.posted = seq_;
    s.inline_stored = seq_ - s.heap_fallback;
    return s;
  }

 private:
  /// Time and sequence live only in the queue's Entry records (one store
  /// fewer each on the push fast path); the node is pure callable storage.
  struct Node {
    void (*invoke)(void*);
    void (*destroy)(void*);  // null for trivially destructible callables
    Node* next_free;
    alignas(std::max_align_t) unsigned char buf[kInlineBytes];
  };

  struct Entry {
    SimTime t;
    u64 seq;
    Node* node;
  };
  /// Heap comparator: "a sorts after b" -> min-heap on (t, seq).
  struct EntryAfter {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  // Calendar geometry: 2048 buckets of 2^14 ps (~16.4 ns) cover a ~33.6 us
  // near-future window -- wider than every hop/occupancy delay in the
  // device models, so only long host-side waits (IRQ dispatch, MPI layer
  // costs, switchover) take the overflow path.
  static constexpr u32 kBuckets = 2048;
  static constexpr u32 kBucketShift = 14;
  static constexpr SimTime kSpan = static_cast<SimTime>(kBuckets) << kBucketShift;
  static constexpr usize kChunkNodes = 128;

  /// `invoke` runs the callable AND destroys it (fused so the pop path
  /// never inspects `destroy`; for the trivially-destructible callables
  /// this repo posts, the destructor folds away entirely). `destroy` is
  /// only for queue teardown: destruction without invocation.
  template <typename F>
  void bind(Node* n, F&& fn) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_v<Fn&>, "event callable must be invocable");
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t)) {
      new (static_cast<void*>(n->buf)) Fn(std::forward<F>(fn));
      n->invoke = [](void* p) {
        Fn* f = static_cast<Fn*>(p);
        DestroyGuard<Fn> g{f};  // destroyed even if the callable throws
        (*f)();
      };
      if constexpr (std::is_trivially_destructible_v<Fn>) {
        n->destroy = nullptr;
      } else {
        n->destroy = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
      }
    } else {
      auto* heap = new Fn(std::forward<F>(fn));
      std::memcpy(n->buf, &heap, sizeof(heap));
      n->invoke = [](void* p) {
        Fn* f;
        std::memcpy(&f, p, sizeof(f));
        DeleteGuard<Fn> g{f};
        (*f)();
      };
      n->destroy = [](void* p) {
        Fn* f;
        std::memcpy(&f, p, sizeof(f));
        delete f;
      };
      ++stats_.heap_fallback;
    }
  }

  Node* acquire() {
    // One-node hot cache: the node released by the event that is posting
    // right now. Takes a single load off the post/step cycle where the
    // freelist would chase free_ -> next_free.
    Node* n = hot_;
    if (n != nullptr) {
      hot_ = nullptr;
      return n;
    }
    if (free_ == nullptr) grow_pool();
    n = free_;
    free_ = n->next_free;
    return n;
  }

  [[gnu::cold]] [[gnu::noinline]] void grow_pool() {
    chunks_.push_back(std::make_unique<Node[]>(kChunkNodes));
    Node* chunk = chunks_.back().get();
    for (usize i = 0; i < kChunkNodes; ++i) {
      chunk[i].next_free = free_;
      free_ = &chunk[i];
    }
    ++stats_.pool_chunks;
  }

  template <typename Fn>
  struct DestroyGuard {
    Fn* f;
    ~DestroyGuard() { f->~Fn(); }
  };
  template <typename Fn>
  struct DeleteGuard {
    Fn* f;
    ~DeleteGuard() { delete f; }
  };

  /// Return a node whose callable has already been destroyed (by the fused
  /// invoke) to the hot cache, falling back to the freelist.
  void release(Node* n) {
    if (hot_ == nullptr) {
      hot_ = n;
      return;
    }
    n->next_free = free_;
    free_ = n;
  }

  /// Teardown path: destroy a never-invoked callable, then recycle.
  void destroy_node(Node* n) {
    if (n->destroy != nullptr) n->destroy(n->buf);
    release(n);
  }

  struct ReleaseGuard {
    EventQueue* q;
    Node* n;
    ~ReleaseGuard() { q->release(n); }
  };

  /// Calendar insert -- deliberately out of the hot inline path (the slot
  /// handles the common one-event-in-flight cycle).
  [[gnu::cold]] [[gnu::noinline]] void enqueue(const Entry& e) {
    ++calendar_live_;
    if (calendar_live_ > stats_.max_calendar) stats_.max_calendar = calendar_live_;
    if (e.t < win_start_) {
      // The window jumped past this time while the clock had not caught up
      // (possible for posts issued right after run_until). Every bucketed
      // event is later, so the active heap keeps global order.
      push_active(e);
      return;
    }
    const u64 off = static_cast<u64>(e.t - win_start_) >> kBucketShift;
    if (off >= kBuckets) {
      overflow_.push_back(e);
      std::push_heap(overflow_.begin(), overflow_.end(), EntryAfter{});
      ++stats_.overflow_posted;
      return;
    }
    const u32 idx = static_cast<u32>(off);
    if (idx < sweep_) {
      // This bucket was already drained into the active heap; join it there.
      push_active(e);
      return;
    }
    bucket_put(idx, e);
  }

  void push_active(const Entry& e) {
    active_.push_back(e);
    std::push_heap(active_.begin(), active_.end(), EntryAfter{});
  }

  void bucket_put(u32 idx, const Entry& e) {
    buckets_[idx].push_back(e);
    bitmap_[idx >> 6] |= u64{1} << (idx & 63);
    ++window_live_;
  }

  /// Move overflow events now inside the window into their buckets.
  void migrate_overflow() {
    const SimTime horizon = win_start_ + kSpan;
    // A handful of migrants (the typical window advance) is cheapest via
    // pop_heap; a bulk migration is cheaper as one partition pass plus a
    // re-heapify of whatever stays behind. Buckets sort on drain, so the
    // pop order of the migrated span doesn't matter here.
    u32 popped = 0;
    while (!overflow_.empty() && overflow_.front().t < horizon) {
      if (++popped > 8) {
        auto stay = std::partition(
            overflow_.begin(), overflow_.end(),
            [horizon](const Entry& e) { return e.t >= horizon; });
        for (auto it = stay; it != overflow_.end(); ++it) {
          bucket_put(
              static_cast<u32>(static_cast<u64>(it->t - win_start_) >> kBucketShift), *it);
        }
        overflow_.erase(stay, overflow_.end());
        std::make_heap(overflow_.begin(), overflow_.end(), EntryAfter{});
        return;
      }
      std::pop_heap(overflow_.begin(), overflow_.end(), EntryAfter{});
      const Entry e = overflow_.back();
      overflow_.pop_back();
      bucket_put(static_cast<u32>(static_cast<u64>(e.t - win_start_) >> kBucketShift), e);
    }
  }

  /// First non-empty bucket at or after `from`; kBuckets if none.
  u32 next_set_bucket(u32 from) const {
    if (from >= kBuckets) return kBuckets;
    u32 w = from >> 6;
    u64 word = bitmap_[w] & (~u64{0} << (from & 63));
    while (word == 0) {
      if (++w == kBuckets / 64) return kBuckets;
      word = bitmap_[w];
    }
    return (w << 6) + static_cast<u32>(std::countr_zero(word));
  }

  /// Ensure the globally-earliest event sits on the active heap. Returns
  /// false when the queue is fully empty.
  bool prime() {
    if (!active_.empty()) return true;
    while (true) {
      if (window_live_ == 0) {
        if (overflow_.empty()) return false;
        // Skip empty windows entirely: restart the window at the earliest
        // overflow time and pull everything inside the new horizon.
        win_start_ = overflow_.front().t;
        sweep_ = 0;
        migrate_overflow();
      }
      const u32 idx = next_set_bucket(sweep_);
      assert(idx < kBuckets && "window_live_ out of sync with bitmap");
      auto& b = buckets_[idx];
      if (b.size() == 1) {
        // Common case (buckets are ~16 ns wide): no heap needed, and the
        // bucket keeps its capacity in place for the next window.
        active_.push_back(b.front());
        b.clear();
      } else {
        active_.swap(b);
        std::make_heap(active_.begin(), active_.end(), EntryAfter{});
      }
      bitmap_[idx >> 6] &= ~(u64{1} << (idx & 63));
      window_live_ -= active_.size();
      sweep_ = idx + 1;
      if (sweep_ == kBuckets && window_live_ == 0) {
        // Window exhausted: advance and refill from overflow so posts keep
        // using bucket addressing relative to the live window.
        win_start_ += kSpan;
        sweep_ = 0;
        migrate_overflow();
      }
      if (!active_.empty()) return true;
    }
  }

  u64 seq_ = 0;        // next insertion sequence == total events posted
  u64 executed_ = 0;   // total events popped for execution
  usize calendar_live_ = 0;  // events in active_/buckets_/overflow_ (not slot)
  Stats stats_;

  Entry slot_{0, 0, nullptr};                 // cached global-minimum event
  void (*slot_invoke_)(void*) = nullptr;      // slot_.node->invoke, pre-loaded
  std::vector<Entry> active_;                 // heap: the bucket being drained
  std::vector<std::vector<Entry>> buckets_;   // fixed-width near-future buckets
  std::array<u64, kBuckets / 64> bitmap_{};   // non-empty-bucket index
  std::vector<Entry> overflow_;               // heap: beyond-horizon events
  SimTime win_start_ = 0;                     // time of bucket 0
  u32 sweep_ = 0;                             // next bucket index to drain
  usize window_live_ = 0;                     // events currently in buckets

  Node* hot_ = nullptr;   // most recently released node (single-node cache)
  Node* free_ = nullptr;
  std::vector<std::unique_ptr<Node[]>> chunks_;
};

}  // namespace scrnet::sim
