#include "sim/simulation.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <sstream>

#include "obs/sink.h"
#include "obs/trace.h"

namespace scrnet::sim {

namespace {
/// Internal exception used to unwind a process context (fiber stack or
/// hosted thread) when the Simulation is destroyed while the process is
/// still blocked. User destructors on the process stack run normally.
struct ProcessCancelled {};

/// SimConfig::sim_jobs resolution: explicit value wins, else SCRNET_SIM_JOBS,
/// else 1. Clamped to the 64-shard mask width.
u32 resolve_jobs(u32 requested) {
  u32 j = requested;
  if (j == 0) {
    if (const char* env = std::getenv("SCRNET_SIM_JOBS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && v > 0) j = static_cast<u32>(v);
    }
  }
  if (j == 0) j = 1;
  return std::min<u32>(j, 64);
}

u64 next_sim_token() {
  static std::atomic<u64> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Busy-wait hint for the window barrier spin loops.
inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}
}  // namespace

// ---------------------------------------------------------------------------
// Process -- backend-neutral surface
// ---------------------------------------------------------------------------

void Process::delay(SimTime dt) {
  assert(dt >= 0 && "negative delay");
  state_ = State::kReady;
  sim_.schedule_resume(*this, shard_->now + dt);
  to_kernel();
  from_kernel_wait();
}

void Process::yield() { delay(0); }

void Process::park() {
  TRACE_SPAN(obs::Layer::kSim, id_, "sim.parked", *this);
  state_ = State::kParked;
  ++park_token_;
  to_kernel();
  from_kernel_wait();
}

SimTime Process::now() const { return shard_->now; }

#if defined(SCRNET_SIM_THREAD_PROCS)

// ---------------------------------------------------------------------------
// Process/dispatch backend: one hosted std::thread per process, exchanged
// with the kernel through a mutex/condvar handshake (SystemC-style). Two OS
// context switches per virtual-time step -- kept as a fallback for tools
// that want real threads (TSan, debuggers); the fiber backend below is the
// default and >10x faster (BM_SimProcessSwitch). The handshake is
// thread-agnostic, so shard workers dispatch hosted processes unmodified.
// ---------------------------------------------------------------------------

Process::Process(Simulation& sim, detail::Shard& shard, u32 id, std::string name,
                 std::function<void(Process&)> body)
    : sim_(sim), shard_(&shard), id_(id), name_(std::move(name)), body_(std::move(body)) {
  thread_ = std::thread([this] { thread_main(); });
}

void Process::thread_main() {
  // The body runs on this hosted thread, not on the kernel/worker thread
  // that holds a ShardScope -- so bind this thread's post/now() routing to
  // the owning shard explicitly. The fiber backend needs no analog: fibers
  // execute on the draining thread and inherit its scope.
  Simulation::tls_ctx_ = Simulation::TlsCtx{sim_.token_, shard_};
  try {
    from_kernel_wait();  // wait for the first dispatch
    body_(*this);
  } catch (const ProcessCancelled&) {
    // Simulation is being torn down: exit without handing control back.
    state_ = State::kFinished;
    return;
  } catch (const std::exception& e) {
    error_ = e.what();
  } catch (...) {
    error_ = "unknown exception";
  }
  state_ = State::kFinished;
  to_kernel();
}

void Process::to_kernel() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    proc_turn_ = false;
  }
  cv_.notify_all();
}

void Process::from_kernel_wait() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] { return proc_turn_; });
  if (cancelled_) throw ProcessCancelled{};
}

void Simulation::unwind_procs(Shard& s) {
  // Unblock and join any process thread that has not finished.
  for (auto& up : s.procs) {
    Process& p = *up;
    if (!p.thread_.joinable()) continue;
    if (p.state_ != Process::State::kFinished) {
      {
        std::lock_guard<std::mutex> lk(p.mu_);
        p.cancelled_ = true;
        p.proc_turn_ = true;
      }
      p.cv_.notify_all();
    }
    p.thread_.join();
  }
}

void Simulation::dispatch(Process& p) {
  if (p.state_ == Process::State::kFinished) return;  // stale resume after error
  assert(p.state_ == Process::State::kReady && "dispatching a non-ready process");
  {
    std::lock_guard<std::mutex> lk(p.mu_);
    p.state_ = Process::State::kRunning;
    p.proc_turn_ = true;
  }
  p.cv_.notify_all();
  {
    std::unique_lock<std::mutex> lk(p.mu_);
    p.cv_.wait(lk, [&p] { return !p.proc_turn_; });
  }
  if (p.state_ == Process::State::kFinished && !p.error_.empty()) {
    throw ProcessError("process '" + p.name_ + "' failed: " + p.error_);
  }
}

#else  // fiber backend

// ---------------------------------------------------------------------------
// Process/dispatch backend: stackful fibers (sim/fiber.h). The kernel and
// every process of a shard share one OS thread at a time; dispatch/
// to_kernel are plain context swaps, and an exited process returns its
// stack to its shard's pool. A fiber always resumes through its shard's
// kernel context, so shard affinity is preserved no matter which thread
// (worker or coordinator) drains the shard's window.
// ---------------------------------------------------------------------------

Process::Process(Simulation& sim, detail::Shard& shard, u32 id, std::string name,
                 std::function<void(Process&)> body)
    : sim_(sim), shard_(&shard), id_(id), name_(std::move(name)), body_(std::move(body)) {
  // The execution context is created lazily on first dispatch, so a spawn
  // costs no stack until the process actually runs.
}

void Process::fiber_entry(void* self) { static_cast<Process*>(self)->fiber_main(); }

void Process::fiber_main() {
  try {
    if (cancelled_) throw ProcessCancelled{};
    body_(*this);
  } catch (const ProcessCancelled&) {
    // Simulation teardown: the body's frames were unwound above.
  } catch (const std::exception& e) {
    error_ = e.what();
  } catch (...) {
    error_ = "unknown exception";
  }
  state_ = State::kFinished;
  // Final swap out of a dying stack; dispatch() recycles it into the pool.
  shard_->kctx.switch_from(fiber_, /*from_dying=*/true);
  // Unreachable: nothing dispatches a finished process.
}

void Process::to_kernel() { shard_->kctx.switch_from(fiber_); }

void Process::from_kernel_wait() {
  if (cancelled_) throw ProcessCancelled{};
}

void Simulation::unwind_procs(Shard& s) {
  // Unwind any process still blocked mid-body so its destructors run, the
  // same way the thread backend cancels and joins its hosted threads.
  for (auto& up : s.procs) {
    Process& p = *up;
    if (p.state_ == Process::State::kFinished) continue;
    p.cancelled_ = true;
    if (!p.fiber_live_) {
      // Never dispatched: the body never started, nothing to unwind.
      p.state_ = Process::State::kFinished;
      continue;
    }
    p.state_ = Process::State::kReady;
    dispatch(p);
  }
}

void Simulation::dispatch(Process& p) {
  if (p.state_ == Process::State::kFinished) return;  // stale resume after error
  assert(p.state_ == Process::State::kReady && "dispatching a non-ready process");
  Shard& sh = *p.shard_;
  p.state_ = Process::State::kRunning;
  if (!p.fiber_live_) {
    p.stack_ = sh.stacks.acquire();
    p.fiber_.prepare(&Process::fiber_entry, &p, p.stack_);
    p.fiber_live_ = true;
  }
  p.fiber_.switch_from(sh.kctx);  // runs p until it blocks or finishes
  if (p.state_ == Process::State::kFinished) {
    sh.stacks.release(p.stack_);
    p.stack_ = {};
    p.fiber_live_ = false;
    if (!p.error_.empty()) {
      throw ProcessError("process '" + p.name_ + "' failed: " + p.error_);
    }
  }
}

#endif  // backend

// ---------------------------------------------------------------------------
// Simulation -- backend-neutral kernel loop
// ---------------------------------------------------------------------------

Simulation::Simulation(const SimConfig& cfg)
    : token_(next_sim_token()),
      jobs_(resolve_jobs(cfg.sim_jobs)),
      sink_(&obs::Sink::current()),
      home_(0, cfg.proc_stack_bytes) {
  extra_.reserve(jobs_ - 1);
  for (u32 i = 1; i < jobs_; ++i)
    extra_.push_back(std::make_unique<Shard>(i, cfg.proc_stack_bytes));
}

Simulation::~Simulation() {
  stop_workers();
  // Teardown runs on this thread, shard by shard; fiber switches are
  // thread-agnostic, so fibers last suspended on a worker unwind here.
  each_shard([this](Shard& s) { unwind_procs(s); });
}

Process& Simulation::spawn(std::string name, std::function<void(Process&)> body) {
  return spawn_impl(parallel_run_ ? ctx_shard() : home_, std::move(name), std::move(body));
}

Process& Simulation::spawn_on(u32 shard, std::string name,
                              std::function<void(Process&)> body) {
  assert(!parallel_run_ && "spawn_on is a setup-time operation");
  return spawn_impl(shard_at(shard), std::move(name), std::move(body));
}

Process& Simulation::spawn_impl(Shard& sh, std::string name,
                                std::function<void(Process&)> body) {
  const u32 id = sh.id * kProcIdStride + static_cast<u32>(sh.procs.size());
  sh.procs.push_back(std::unique_ptr<Process>(
      new Process(*this, sh, id, std::move(name), std::move(body))));
  Process& p = *sh.procs.back();
  TRACE_INSTANT(obs::Layer::kSim, p.id(), "sim.spawn", *this);
  p.state_ = Process::State::kReady;
  schedule_resume(p, sh.now);
  return p;
}

void Simulation::schedule_resume(Process& p, SimTime t) {
  // Resumes always land on the process's own shard. Cross-shard notify is
  // outside the Signal contract (signals are node-local); the assert keeps
  // a violation from silently racing on a foreign queue.
  assert(!parallel_run_ || p.shard_ == &ctx_shard());
  p.shard_->queue.push(t, [this, &p] { dispatch(p); });
}

void Simulation::check_time_limit() {
  if (time_limit_ > 0 && home_.now > time_limit_) {
    running_ = false;
    throw std::runtime_error("simulation exceeded time limit");
  }
}

void Simulation::check_deadlock() const {
  std::ostringstream parked;
  usize nparked = 0;
  each_shard([&](const Shard& s) {
    for (const auto& up : s.procs) {
      if (up->state_ == Process::State::kParked) {
        if (nparked++) parked << ", ";
        parked << up->name();
      }
    }
  });
  if (nparked > 0) {
    throw DeadlockError("simulation deadlock: " + std::to_string(nparked) +
                        " process(es) parked with no pending events: " + parked.str());
  }
}

void Simulation::run() {
  if (parallel_needed()) {
    run_parallel(/*until=*/-1);
    check_deadlock();
    return;
  }
  // All events (and the process fibers they dispatch) execute on this
  // thread until run() returns, so installing the simulation's sink as the
  // thread-current one routes every TRACE_* hook fired inside to it --
  // even when several simulations run concurrently on sibling threads.
  obs::Sink::Scope obs_scope(*sink_);
  running_ = true;
  if (time_limit_ > 0) {
    while (step()) check_time_limit();
  } else {
    while (step()) {
    }
  }
  running_ = false;
  // A coalesced tail may have applied deliveries past the last event; the
  // run still ends at the last delivery's virtual time.
  if (home_.now < home_.inline_mark) home_.now = home_.inline_mark;
  // Queue drained: every process must have finished, otherwise we deadlocked.
  check_deadlock();
}

bool Simulation::run_until(SimTime t) {
  if (parallel_needed()) {
    run_parallel(t);
    each_shard([&](Shard& s) {
      if (s.now < t) s.now = t;
    });
    bool more = false;
    each_shard([&](Shard& s) { more = more || !s.queue.empty(); });
    return more;
  }
  obs::Sink::Scope obs_scope(*sink_);
  // The caller observes state the moment this returns, so nothing may be
  // applied inline past the boundary (inline_apply_bound honors this cap).
  struct CapReset {
    SimTime* cap;
    ~CapReset() { *cap = kNever; }
  } cap_reset{&home_.inline_cap};
  home_.inline_cap = t + 1;
  while (!home_.queue.empty() && home_.queue.next_time() <= t) {
    step();
    check_time_limit();  // the safety valve guards bounded runs too
  }
  if (home_.now < t) home_.now = t;
  return !home_.queue.empty();
}

usize Simulation::live_processes() const {
  usize n = 0;
  each_shard([&](const Shard& s) {
    for (const auto& up : s.procs)
      if (up->state_ != Process::State::kFinished) ++n;
  });
  return n;
}

u64 Simulation::events_executed() const {
  u64 n = 0;
  each_shard([&](const Shard& s) { n += s.queue.executed(); });
  return n;
}

usize Simulation::events_pending() const {
  usize n = 0;
  each_shard([&](const Shard& s) { n += s.queue.size(); });
  return n;
}

EventQueue::Stats Simulation::queue_stats() const {
  EventQueue::Stats agg;
  each_shard([&](const Shard& s) {
    const EventQueue::Stats q = s.queue.stats();
    agg.posted += q.posted;
    agg.inline_stored += q.inline_stored;
    agg.heap_fallback += q.heap_fallback;
    agg.pool_chunks += q.pool_chunks;
    agg.overflow_posted += q.overflow_posted;
    agg.max_calendar = std::max(agg.max_calendar, q.max_calendar);
  });
  return agg;
}

detail::StackPool::Stats Simulation::stack_stats() const {
  detail::StackPool::Stats agg;
  each_shard([&](const Shard& s) {
    const detail::StackPool::Stats st = s.stacks.stats();
    agg.mapped += st.mapped;
    agg.reused += st.reused;
    agg.live += st.live;
    agg.pooled += st.pooled;
  });
  return agg;
}

// ---------------------------------------------------------------------------
// Parallel window coordinator
//
// Conservative lockstep: each iteration computes the global minimum next
// event time T across shards, sets the window end W = T + lookahead, and
// lets every shard with work before W drain concurrently (events executed
// at t < W can only affect other shards at >= t + lookahead >= W). The
// common case where a window touches a single shard -- e.g. a 2-rank
// ping-pong sharded 8 ways -- skips the worker rendezvous entirely and is
// drained inline by the coordinator.
// ---------------------------------------------------------------------------

bool Simulation::parallel_needed() const {
  for (const auto& sp : extra_) {
    const Shard& s = *sp;
    if (!s.queue.empty()) return true;
    for (const auto& p : s.procs)
      if (p->state_ != Process::State::kFinished) return true;
  }
  return false;
}

void Simulation::drain_window(Shard& s, SimTime wend) {
  obs::Sink::Scope obs_scope(*sink_);
  ShardScope ctx(*this, s);
  const SimTime look = lookahead_ > 0 ? lookahead_ : 1;
  // The window may shrink while it runs: the moment this shard emits
  // cross-shard work at time t -- an outbox send, or a spine op reported
  // through note_horizon() -- a foreign reaction can reach this shard at
  // t + lookahead, so no event at or past that time may execute before
  // the next barrier. Lockstep windows (wend = tmin + lookahead) are
  // never shortened by this, since every emission satisfies t >= tmin;
  // only the extended solo windows of run_parallel() feel the cap.
  SimTime cap = wend;
  usize ob_seen = s.outbox.size();
  s.horizon = kNever;
  // Publish the live cap so inline_apply_bound() keeps coalesced inline
  // applications inside this window (reset on every exit path).
  struct CapReset {
    SimTime* cap;
    ~CapReset() { *cap = kNever; }
  } cap_reset{&s.inline_cap};
  s.inline_cap = cap;
  EventQueue::Popped ev;
  try {
    while (!s.queue.empty() && s.queue.next_time() < cap) {
      s.queue.pop(&ev);
      assert(ev.t >= s.now);
      s.now = ev.t;
      s.queue.run_and_release(ev);
      if (time_limit_ > 0 && s.now > time_limit_) {
        s.timed_out = true;
        return;
      }
      for (; ob_seen < s.outbox.size(); ++ob_seen)
        cap = std::min(cap, s.outbox[ob_seen].t + look);
      if (s.horizon != kNever) cap = std::min(cap, s.horizon + look);
      s.inline_cap = cap;
    }
  } catch (const ProcessError& e) {
    s.proc_error = true;
    s.error = e.what();
  } catch (const std::exception& e) {
    s.error = e.what();
  }
}

void Simulation::merge_outboxes(SimTime wend) {
  (void)wend;
  merge_buf_.clear();
  each_shard([&](Shard& s) {
    for (auto& m : s.outbox) merge_buf_.push_back(std::move(m));
    s.outbox.clear();
  });
  if (merge_buf_.empty()) return;
  // Stable sort on timestamp only: ties keep (source shard, send order),
  // the deterministic merge order the determinism contract promises.
  std::stable_sort(merge_buf_.begin(), merge_buf_.end(),
                   [](const Shard::CrossEvent& a, const Shard::CrossEvent& b) {
                     return a.t < b.t;
                   });
  for (auto& m : merge_buf_) {
    // The conservative invariant: a cross-shard event can never land in
    // its receiver's past. (Extended solo windows run the sender far past
    // the lockstep wend, so t >= wend would be too strong a check.)
    assert(m.t >= m.dst->now && "cross-shard event violates the lookahead horizon");
    m.dst->queue.push(m.t, std::move(m.fn));
  }
  merge_buf_.clear();
}

void Simulation::throw_shard_failure() {
  bool timed_out = false;
  const Shard* failed = nullptr;
  each_shard([&](const Shard& s) {
    timed_out = timed_out || s.timed_out;
    if (failed == nullptr && !s.error.empty()) failed = &s;
  });
  if (timed_out) throw std::runtime_error("simulation exceeded time limit");
  if (failed != nullptr) {
    if (failed->proc_error) throw ProcessError(failed->error);
    throw std::runtime_error(failed->error);
  }
}

void Simulation::run_parallel(SimTime until) {
  obs::Sink::Scope obs_scope(*sink_);
  start_workers();
  parallel_run_ = true;
  struct Reset {
    bool* flag;
    ~Reset() { *flag = false; }
  } reset{&parallel_run_};
  const SimTime look = lookahead_ > 0 ? lookahead_ : 1;

  for (;;) {
    SimTime tmin = kNever;
    each_shard([&](Shard& s) {
      if (!s.queue.empty()) tmin = std::min(tmin, s.queue.next_time());
    });
    if (tmin == kNever) break;
    if (until >= 0 && tmin > until) break;
    SimTime wend = tmin + look;
    if (until >= 0 && wend > until) wend = until + 1;  // run events at == until

    u64 mask = 0;
    u32 active = 0, last = 0;
    for (u32 i = 0; i < jobs_; ++i) {
      Shard& s = shard_at(i);
      if (!s.queue.empty() && s.queue.next_time() < wend) {
        mask |= u64{1} << i;
        ++active;
        last = i;
      }
    }
    if (workers_.empty() && active > 1) {
      // Single-hardware-thread host: the rendezvous cannot buy concurrency,
      // so drain the window's shards inline, in shard order. Windows are
      // independent per-shard drains, so this is observably identical to
      // the threaded path (the merge order never depends on drain order).
      for (u32 i = 0; i < jobs_; ++i) {
        if ((mask >> i) & 1) drain_window(shard_at(i), wend);
      }
    } else if (active == 1) {
      // Solo window: every other shard is idle until its own next event at
      // other_min >= wend, so the active shard may keep draining well past
      // the lockstep wend. Extending collapses millions of tiny lockstep
      // windows (one per ring hop) into one long drain whenever activity
      // is momentarily confined to a single shard -- the dominant shape of
      // a ping-pong run sharded over idle partners. Two bounds keep it
      // conservative:
      //  * other_min, *strictly*: barrier-deferred spine ops replay in
      //    batch order across barriers, so no op recorded this window may
      //    time-sort after an op a foreign shard records later (foreign
      //    ops are all >= other_min). Costs at most one lookahead of
      //    extension; an empty rest-of-world (kNever) has no foreign ops
      //    to invert with and extends unboundedly.
      //  * drain_window() shrinks the cap the moment the shard emits
      //    cross-shard work of its own (outbox sends, spine ops via
      //    note_horizon), so a reaction to that work is never outrun.
      SimTime other_min = kNever;
      for (u32 i = 0; i < jobs_; ++i) {
        if (i == last) continue;
        Shard& o = shard_at(i);
        if (!o.queue.empty()) other_min = std::min(other_min, o.queue.next_time());
      }
      wend = other_min;  // >= tmin + look, so never shorter than lockstep
      if (until >= 0 && wend > until) wend = until + 1;
      drain_window(shard_at(last), wend);
    } else {
      // Work-stealing window: publish the shard set as a claimable mask
      // (release store -- a claimer's acq_rel fetch_and synchronizes with
      // it directly, so window_end_/pending_ stored beforehand are visible
      // even to a laggard worker arriving from the previous epoch), wake
      // the workers, then compete for claims like everyone else. A worker
      // that drains its claim early steals the next unclaimed shard, so a
      // skewed partition no longer serializes on its hottest shard.
      window_end_.store(wend, std::memory_order_relaxed);
      pending_.store(static_cast<u32>(std::popcount(mask)),
                     std::memory_order_relaxed);
      unclaimed_mask_.store(mask, std::memory_order_release);
      {
        // Lock/unlock pairs with the cv predicate check so a worker that
        // just decided to sleep cannot miss this epoch.
        std::lock_guard<std::mutex> lk(gate_mu_);
        epoch_.fetch_add(1, std::memory_order_release);
      }
      gate_cv_.notify_all();
      drain_claimed(0);
      for (u32 spins = 0; pending_.load(std::memory_order_acquire) != 0;) {
        if (++spins >= 256) {
          std::this_thread::yield();
          spins = 0;
        } else {
          cpu_pause();
        }
      }
    }

    for (auto& h : barrier_hooks_) h(wend);
    merge_outboxes(wend);

    bool failed = false;
    each_shard([&](const Shard& s) {
      failed = failed || s.timed_out || !s.error.empty();
    });
    if (failed) break;
  }

  // Converge the shard clocks so now() reports the global end time and
  // later posts on any shard are in its future. inline_mark folds in
  // coalesced deliveries that ran ahead of the shard's event clock.
  SimTime tmax = 0;
  each_shard([&](const Shard& s) {
    tmax = std::max({tmax, s.now, s.inline_mark});
  });
  each_shard([&](Shard& s) { s.now = tmax; });
  throw_shard_failure();
}

void Simulation::start_workers() {
  if (!workers_.empty() || jobs_ <= 1) return;
  // One hardware thread: worker threads would only timeshare with the
  // coordinator; run_parallel drains multi-shard windows inline instead.
  // SCRNET_SIM_FORCE_WORKERS=1 overrides, so sanitizer runs can exercise
  // the rendezvous even on single-core machines.
  const char* force = std::getenv("SCRNET_SIM_FORCE_WORKERS");
  const bool forced = force != nullptr && force[0] != '\0' && force[0] != '0';
  u32 nworkers = jobs_ - 1;
  if (!forced) {
    const u32 hw = std::thread::hardware_concurrency();
    if (hw <= 1) return;
    // Stealing decouples workers from shards: with more shards than cores
    // (jobs > hw), hw-1 workers plus the coordinator claim the shard set
    // dynamically instead of oversubscribing one thread per shard.
    nworkers = std::min(nworkers, hw - 1);
  }
  workers_.reserve(nworkers);
  for (u32 i = 1; i <= nworkers; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

void Simulation::stop_workers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(gate_mu_);
    stop_workers_.store(true, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
  }
  gate_cv_.notify_all();
  for (auto& t : workers_) t.join();
  workers_.clear();
  stop_workers_.store(false, std::memory_order_relaxed);
}

/// Claim-drain loop shared by the coordinator and every worker: pick an
/// unclaimed shard (preferring bits at or above `start` so participants
/// fan out before colliding), win it with an atomic fetch_and, drain its
/// window, repeat until no claims remain. window_end_ is read only *after*
/// a successful claim: the claim synchronizes with the mask's release
/// store, and the coordinator cannot publish a new window while this one
/// still has undrained claims (it spins on pending_), so the value always
/// belongs to the window the claimed bit came from -- even when the
/// claimer is a laggard that loaded its first `avail` in a previous epoch.
void Simulation::drain_claimed(u32 start) {
  for (;;) {
    const u64 avail = unclaimed_mask_.load(std::memory_order_acquire);
    if (avail == 0) return;
    const u64 hi = avail & (~u64{0} << start);
    const u32 i = static_cast<u32>(std::countr_zero(hi != 0 ? hi : avail));
    const u64 bit = u64{1} << i;
    if (unclaimed_mask_.fetch_and(~bit, std::memory_order_acq_rel) & bit) {
      drain_window(shard_at(i), window_end_.load(std::memory_order_relaxed));
      pending_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
}

void Simulation::worker_main(u32 worker_idx) {
  u64 seen = 0;
  for (;;) {
    u64 e = epoch_.load(std::memory_order_acquire);
    if (e == seen) {
      u32 spins = 0;
      while ((e = epoch_.load(std::memory_order_acquire)) == seen &&
             !stop_workers_.load(std::memory_order_relaxed)) {
        if (++spins < 4096) {
          cpu_pause();
          continue;
        }
        std::unique_lock<std::mutex> lk(gate_mu_);
        gate_cv_.wait(lk, [&] {
          return epoch_.load(std::memory_order_acquire) != seen ||
                 stop_workers_.load(std::memory_order_relaxed);
        });
        spins = 0;
      }
    }
    if (stop_workers_.load(std::memory_order_relaxed)) return;
    seen = e;
    drain_claimed(worker_idx % jobs_);
  }
}

// ---------------------------------------------------------------------------
// Signal
// ---------------------------------------------------------------------------

void Signal::wait(Process& p) {
  waiting_.push_back(&p);
  p.park();
}

bool Signal::wait_for(Process& p, SimTime timeout) {
  waiting_.push_back(&p);
  const u64 token = p.park_token_ + 1;  // token park() is about to use
  p.wake_was_notify_ = true;
  sim_.post(timeout, [this, &p, token] {
    if (p.state_ == Process::State::kParked && p.park_token_ == token) {
      // Still parked on this very wait: cancel it.
      for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
        if (*it == &p) {
          waiting_.erase(it);
          break;
        }
      }
      p.wake_was_notify_ = false;
      p.state_ = Process::State::kReady;
      sim_.dispatch(p);
    }
  });
  p.park();
  return p.wake_was_notify_;
}

void Signal::notify_all() {
  while (!waiting_.empty()) notify_one();
}

void Signal::notify_one() {
  if (waiting_.empty()) return;
  Process* p = waiting_.front();
  waiting_.pop_front();
  p->wake_was_notify_ = true;
  p->state_ = Process::State::kReady;
  sim_.schedule_resume(*p, sim_.now());
}

}  // namespace scrnet::sim
