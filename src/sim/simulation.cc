#include "sim/simulation.h"

#include <cassert>
#include <sstream>

namespace scrnet::sim {

namespace {
/// Internal exception used to unwind a hosted process thread when the
/// Simulation is destroyed while the process is still blocked.
struct ProcessCancelled {};
}  // namespace

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

Process::Process(Simulation& sim, u32 id, std::string name, std::function<void(Process&)> body)
    : sim_(sim), id_(id), name_(std::move(name)), body_(std::move(body)) {
  thread_ = std::thread([this] { thread_main(); });
}

void Process::thread_main() {
  try {
    from_kernel_wait();  // wait for the first dispatch
    body_(*this);
  } catch (const ProcessCancelled&) {
    // Simulation is being torn down: exit without handing control back.
    state_ = State::kFinished;
    return;
  } catch (const std::exception& e) {
    error_ = e.what();
  } catch (...) {
    error_ = "unknown exception";
  }
  state_ = State::kFinished;
  to_kernel();
}

void Process::to_kernel() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    proc_turn_ = false;
  }
  cv_.notify_all();
}

void Process::from_kernel_wait() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] { return proc_turn_; });
  if (cancelled_) throw ProcessCancelled{};
}

void Process::delay(SimTime dt) {
  assert(dt >= 0 && "negative delay");
  state_ = State::kReady;
  sim_.schedule_resume(*this, sim_.now() + dt);
  to_kernel();
  from_kernel_wait();
}

void Process::yield() { delay(0); }

void Process::park() {
  state_ = State::kParked;
  ++park_token_;
  to_kernel();
  from_kernel_wait();
}

SimTime Process::now() const { return sim_.now(); }

// ---------------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------------

Simulation::Simulation() = default;

Simulation::~Simulation() {
  // Unblock and join any process thread that has not finished.
  for (auto& up : procs_) {
    Process& p = *up;
    if (!p.thread_.joinable()) continue;
    if (p.state_ != Process::State::kFinished) {
      {
        std::lock_guard<std::mutex> lk(p.mu_);
        p.cancelled_ = true;
        p.proc_turn_ = true;
      }
      p.cv_.notify_all();
    }
    p.thread_.join();
  }
}

Process& Simulation::spawn(std::string name, std::function<void(Process&)> body) {
  procs_.push_back(std::unique_ptr<Process>(
      new Process(*this, static_cast<u32>(procs_.size()), std::move(name), std::move(body))));
  Process& p = *procs_.back();
  p.state_ = Process::State::kReady;
  schedule_resume(p, now_);
  return p;
}

void Simulation::schedule_resume(Process& p, SimTime t) {
  post_at(t, [this, &p] { dispatch(p); });
}

void Simulation::dispatch(Process& p) {
  if (p.state_ == Process::State::kFinished) return;  // stale resume after error
  assert(p.state_ == Process::State::kReady && "dispatching a non-ready process");
  {
    std::lock_guard<std::mutex> lk(p.mu_);
    p.state_ = Process::State::kRunning;
    p.proc_turn_ = true;
  }
  p.cv_.notify_all();
  {
    std::unique_lock<std::mutex> lk(p.mu_);
    p.cv_.wait(lk, [&p] { return !p.proc_turn_; });
  }
  if (p.state_ == Process::State::kFinished && !p.error_.empty()) {
    throw ProcessError("process '" + p.name_ + "' failed: " + p.error_);
  }
}

void Simulation::check_time_limit() {
  if (time_limit_ > 0 && now_ > time_limit_) {
    running_ = false;
    throw std::runtime_error("simulation exceeded time limit");
  }
}

void Simulation::run() {
  running_ = true;
  if (time_limit_ > 0) {
    while (step()) check_time_limit();
  } else {
    while (step()) {
    }
  }
  running_ = false;
  // Queue drained: every process must have finished, otherwise we deadlocked.
  std::ostringstream parked;
  usize nparked = 0;
  for (const auto& up : procs_) {
    if (up->state_ == Process::State::kParked) {
      if (nparked++) parked << ", ";
      parked << up->name();
    }
  }
  if (nparked > 0) {
    throw DeadlockError("simulation deadlock: " + std::to_string(nparked) +
                        " process(es) parked with no pending events: " + parked.str());
  }
}

bool Simulation::run_until(SimTime t) {
  while (!queue_.empty() && queue_.next_time() <= t) {
    step();
    check_time_limit();  // the safety valve guards bounded runs too
  }
  if (now_ < t) now_ = t;
  return !queue_.empty();
}

usize Simulation::live_processes() const {
  usize n = 0;
  for (const auto& up : procs_)
    if (up->state_ != Process::State::kFinished) ++n;
  return n;
}

// ---------------------------------------------------------------------------
// Signal
// ---------------------------------------------------------------------------

void Signal::wait(Process& p) {
  waiting_.push_back(&p);
  p.park();
}

bool Signal::wait_for(Process& p, SimTime timeout) {
  waiting_.push_back(&p);
  const u64 token = p.park_token_ + 1;  // token park() is about to use
  p.wake_was_notify_ = true;
  sim_.post(timeout, [this, &p, token] {
    if (p.state_ == Process::State::kParked && p.park_token_ == token) {
      // Still parked on this very wait: cancel it.
      for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
        if (*it == &p) {
          waiting_.erase(it);
          break;
        }
      }
      p.wake_was_notify_ = false;
      p.state_ = Process::State::kReady;
      sim_.dispatch(p);
    }
  });
  p.park();
  return p.wake_was_notify_;
}

void Signal::notify_all() {
  while (!waiting_.empty()) notify_one();
}

void Signal::notify_one() {
  if (waiting_.empty()) return;
  Process* p = waiting_.front();
  waiting_.pop_front();
  p->wake_was_notify_ = true;
  p->state_ = Process::State::kReady;
  sim_.schedule_resume(*p, sim_.now());
}

}  // namespace scrnet::sim
