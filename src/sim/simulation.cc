#include "sim/simulation.h"

#include <cassert>
#include <sstream>

#include "obs/sink.h"
#include "obs/trace.h"

namespace scrnet::sim {

namespace {
/// Internal exception used to unwind a process context (fiber stack or
/// hosted thread) when the Simulation is destroyed while the process is
/// still blocked. User destructors on the process stack run normally.
struct ProcessCancelled {};
}  // namespace

// ---------------------------------------------------------------------------
// Process -- backend-neutral surface
// ---------------------------------------------------------------------------

void Process::delay(SimTime dt) {
  assert(dt >= 0 && "negative delay");
  state_ = State::kReady;
  sim_.schedule_resume(*this, sim_.now() + dt);
  to_kernel();
  from_kernel_wait();
}

void Process::yield() { delay(0); }

void Process::park() {
  TRACE_SPAN(obs::Layer::kSim, id_, "sim.parked", *this);
  state_ = State::kParked;
  ++park_token_;
  to_kernel();
  from_kernel_wait();
}

SimTime Process::now() const { return sim_.now(); }

#if defined(SCRNET_SIM_THREAD_PROCS)

// ---------------------------------------------------------------------------
// Process/dispatch backend: one hosted std::thread per process, exchanged
// with the kernel through a mutex/condvar handshake (SystemC-style). Two OS
// context switches per virtual-time step -- kept as a fallback for tools
// that want real threads (TSan, debuggers); the fiber backend below is the
// default and >10x faster (BM_SimProcessSwitch).
// ---------------------------------------------------------------------------

Process::Process(Simulation& sim, u32 id, std::string name, std::function<void(Process&)> body)
    : sim_(sim), id_(id), name_(std::move(name)), body_(std::move(body)) {
  thread_ = std::thread([this] { thread_main(); });
}

void Process::thread_main() {
  try {
    from_kernel_wait();  // wait for the first dispatch
    body_(*this);
  } catch (const ProcessCancelled&) {
    // Simulation is being torn down: exit without handing control back.
    state_ = State::kFinished;
    return;
  } catch (const std::exception& e) {
    error_ = e.what();
  } catch (...) {
    error_ = "unknown exception";
  }
  state_ = State::kFinished;
  to_kernel();
}

void Process::to_kernel() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    proc_turn_ = false;
  }
  cv_.notify_all();
}

void Process::from_kernel_wait() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] { return proc_turn_; });
  if (cancelled_) throw ProcessCancelled{};
}

Simulation::~Simulation() {
  // Unblock and join any process thread that has not finished.
  for (auto& up : procs_) {
    Process& p = *up;
    if (!p.thread_.joinable()) continue;
    if (p.state_ != Process::State::kFinished) {
      {
        std::lock_guard<std::mutex> lk(p.mu_);
        p.cancelled_ = true;
        p.proc_turn_ = true;
      }
      p.cv_.notify_all();
    }
    p.thread_.join();
  }
}

void Simulation::dispatch(Process& p) {
  if (p.state_ == Process::State::kFinished) return;  // stale resume after error
  assert(p.state_ == Process::State::kReady && "dispatching a non-ready process");
  {
    std::lock_guard<std::mutex> lk(p.mu_);
    p.state_ = Process::State::kRunning;
    p.proc_turn_ = true;
  }
  p.cv_.notify_all();
  {
    std::unique_lock<std::mutex> lk(p.mu_);
    p.cv_.wait(lk, [&p] { return !p.proc_turn_; });
  }
  if (p.state_ == Process::State::kFinished && !p.error_.empty()) {
    throw ProcessError("process '" + p.name_ + "' failed: " + p.error_);
  }
}

#else  // fiber backend

// ---------------------------------------------------------------------------
// Process/dispatch backend: stackful fibers (sim/fiber.h). The kernel and
// every process share one OS thread; dispatch/to_kernel are plain context
// swaps, and an exited process returns its stack to the Simulation's pool.
// ---------------------------------------------------------------------------

Process::Process(Simulation& sim, u32 id, std::string name, std::function<void(Process&)> body)
    : sim_(sim), id_(id), name_(std::move(name)), body_(std::move(body)) {
  // The execution context is created lazily on first dispatch, so a spawn
  // costs no stack until the process actually runs.
}

void Process::fiber_entry(void* self) { static_cast<Process*>(self)->fiber_main(); }

void Process::fiber_main() {
  try {
    if (cancelled_) throw ProcessCancelled{};
    body_(*this);
  } catch (const ProcessCancelled&) {
    // Simulation teardown: the body's frames were unwound above.
  } catch (const std::exception& e) {
    error_ = e.what();
  } catch (...) {
    error_ = "unknown exception";
  }
  state_ = State::kFinished;
  // Final swap out of a dying stack; dispatch() recycles it into the pool.
  sim_.kernel_ctx_.switch_from(fiber_, /*from_dying=*/true);
  // Unreachable: nothing dispatches a finished process.
}

void Process::to_kernel() { sim_.kernel_ctx_.switch_from(fiber_); }

void Process::from_kernel_wait() {
  if (cancelled_) throw ProcessCancelled{};
}

Simulation::~Simulation() {
  // Unwind any process still blocked mid-body so its destructors run, the
  // same way the thread backend cancels and joins its hosted threads.
  for (auto& up : procs_) {
    Process& p = *up;
    if (p.state_ == Process::State::kFinished) continue;
    p.cancelled_ = true;
    if (!p.fiber_live_) {
      // Never dispatched: the body never started, nothing to unwind.
      p.state_ = Process::State::kFinished;
      continue;
    }
    p.state_ = Process::State::kReady;
    dispatch(p);
  }
}

void Simulation::dispatch(Process& p) {
  if (p.state_ == Process::State::kFinished) return;  // stale resume after error
  assert(p.state_ == Process::State::kReady && "dispatching a non-ready process");
  p.state_ = Process::State::kRunning;
  if (!p.fiber_live_) {
    p.stack_ = stack_pool_.acquire();
    p.fiber_.prepare(&Process::fiber_entry, &p, p.stack_);
    p.fiber_live_ = true;
  }
  p.fiber_.switch_from(kernel_ctx_);  // runs p until it blocks or finishes
  if (p.state_ == Process::State::kFinished) {
    stack_pool_.release(p.stack_);
    p.stack_ = {};
    p.fiber_live_ = false;
    if (!p.error_.empty()) {
      throw ProcessError("process '" + p.name_ + "' failed: " + p.error_);
    }
  }
}

#endif  // backend

// ---------------------------------------------------------------------------
// Simulation -- backend-neutral kernel loop
// ---------------------------------------------------------------------------

Simulation::Simulation(const SimConfig& cfg)
    : sink_(&obs::Sink::current()), stack_pool_(cfg.proc_stack_bytes) {}

Process& Simulation::spawn(std::string name, std::function<void(Process&)> body) {
  procs_.push_back(std::unique_ptr<Process>(
      new Process(*this, static_cast<u32>(procs_.size()), std::move(name), std::move(body))));
  Process& p = *procs_.back();
  TRACE_INSTANT(obs::Layer::kSim, p.id(), "sim.spawn", *this);
  p.state_ = Process::State::kReady;
  schedule_resume(p, now_);
  return p;
}

void Simulation::schedule_resume(Process& p, SimTime t) {
  post_at(t, [this, &p] { dispatch(p); });
}

void Simulation::check_time_limit() {
  if (time_limit_ > 0 && now_ > time_limit_) {
    running_ = false;
    throw std::runtime_error("simulation exceeded time limit");
  }
}

void Simulation::run() {
  // All events (and the process fibers they dispatch) execute on this
  // thread until run() returns, so installing the simulation's sink as the
  // thread-current one routes every TRACE_* hook fired inside to it --
  // even when several simulations run concurrently on sibling threads.
  obs::Sink::Scope obs_scope(*sink_);
  running_ = true;
  if (time_limit_ > 0) {
    while (step()) check_time_limit();
  } else {
    while (step()) {
    }
  }
  running_ = false;
  // Queue drained: every process must have finished, otherwise we deadlocked.
  std::ostringstream parked;
  usize nparked = 0;
  for (const auto& up : procs_) {
    if (up->state_ == Process::State::kParked) {
      if (nparked++) parked << ", ";
      parked << up->name();
    }
  }
  if (nparked > 0) {
    throw DeadlockError("simulation deadlock: " + std::to_string(nparked) +
                        " process(es) parked with no pending events: " + parked.str());
  }
}

bool Simulation::run_until(SimTime t) {
  obs::Sink::Scope obs_scope(*sink_);
  while (!queue_.empty() && queue_.next_time() <= t) {
    step();
    check_time_limit();  // the safety valve guards bounded runs too
  }
  if (now_ < t) now_ = t;
  return !queue_.empty();
}

usize Simulation::live_processes() const {
  usize n = 0;
  for (const auto& up : procs_)
    if (up->state_ != Process::State::kFinished) ++n;
  return n;
}

// ---------------------------------------------------------------------------
// Signal
// ---------------------------------------------------------------------------

void Signal::wait(Process& p) {
  waiting_.push_back(&p);
  p.park();
}

bool Signal::wait_for(Process& p, SimTime timeout) {
  waiting_.push_back(&p);
  const u64 token = p.park_token_ + 1;  // token park() is about to use
  p.wake_was_notify_ = true;
  sim_.post(timeout, [this, &p, token] {
    if (p.state_ == Process::State::kParked && p.park_token_ == token) {
      // Still parked on this very wait: cancel it.
      for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
        if (*it == &p) {
          waiting_.erase(it);
          break;
        }
      }
      p.wake_was_notify_ = false;
      p.state_ = Process::State::kReady;
      sim_.dispatch(p);
    }
  });
  p.park();
  return p.wake_was_notify_;
}

void Signal::notify_all() {
  while (!waiting_.empty()) notify_one();
}

void Signal::notify_one() {
  if (waiting_.empty()) return;
  Process* p = waiting_.front();
  waiting_.pop_front();
  p->wake_was_notify_ = true;
  p->state_ = Process::State::kReady;
  sim_.schedule_resume(*p, sim_.now());
}

}  // namespace scrnet::sim
