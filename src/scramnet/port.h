// MemPort: the host's view of its SCRAMNet NIC memory bank.
//
// The BillBoard Protocol is written entirely against this interface, so the
// identical protocol code runs on
//   * SimHostPort   -- the timed discrete-event model (benchmarks/figures);
//   * ThreadPort    -- a real-threads replicated-memory emulation
//                      (concurrency stress tests).
#pragma once

#include <span>

#include "common/types.h"
#include "common/units.h"

namespace scrnet::scramnet {

class MemPort {
 public:
  virtual ~MemPort() = default;

  /// This endpoint's node id on the ring.
  virtual u32 node() const = 0;
  /// Number of nodes sharing the replicated memory.
  virtual u32 nodes() const = 0;
  /// Size of the replicated bank in 32-bit words.
  virtual u32 bank_words() const = 0;

  /// Write one word (replicated to all nodes; visible locally at once).
  virtual void write_u32(u32 word_addr, u32 value) = 0;
  /// Read one word from the local replica.
  virtual u32 read_u32(u32 word_addr) = 0;
  /// Burst write / read (programmed I/O).
  virtual void write_block(u32 word_addr, std::span<const u32> words) = 0;
  virtual void read_block(u32 word_addr, std::span<u32> out) = 0;

  /// DMA write: the NIC masters the transfer; the calling process pays
  /// setup + completion and is *free during the transfer* (a subsequent
  /// port operation naturally lands after it). Default: fall back to PIO.
  virtual void dma_write(u32 word_addr, std::span<const u32> words) {
    write_block(word_addr, words);
  }
  /// True if dma_write is a real DMA engine rather than the PIO fallback.
  virtual bool has_dma() const { return false; }

  /// Current virtual time (0 on ports without a clock); statistics only.
  virtual SimTime now() const { return 0; }

  /// Debug read of the local replica with no virtual-time cost and no bus
  /// transaction -- for invariant checkers (bbp::Validator) that must not
  /// perturb simulated timing. Timed ports override this; the default is
  /// only correct where read_u32 is already free.
  virtual u32 peek_u32(u32 word_addr) { return read_u32(word_addr); }

  /// Host-side backoff between polls of a flag word.
  virtual void poll_pause() = 0;
  /// Account local CPU work (protocol bookkeeping). No-op on real threads.
  virtual void cpu_delay(SimTime dt) = 0;

  // -- optional interrupt support (the paper's Section 7 future work) ------

  /// True if the port can sleep until a network-delivered write lands in a
  /// watched address range instead of polling across the I/O bus.
  virtual bool supports_wait_write() const { return false; }
  /// Arm the watched range [lo, hi) (word addresses). One range per port.
  virtual void watch_range(u32 /*lo*/, u32 /*hi*/) {}
  /// Sleep until a network write lands in the watched range; returns
  /// immediately if one landed since the previous wait_write(). Includes
  /// the interrupt dispatch + process wakeup cost.
  virtual void wait_write() {}
};

}  // namespace scrnet::scramnet
