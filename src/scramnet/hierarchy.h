// Two-level SCRAMNet ring hierarchy (Section 2 of the paper: "For systems
// larger than 256 nodes, a hierarchy of rings can be used").
//
// K leaf rings of M nodes each are joined by a backbone ring whose members
// are the leaf rings' bridge nodes (local node 0 of each leaf). The
// replicated memory is global: a write anywhere is reflected into every
// bank in the system. Propagation:
//
//   source leaf ring  ->  bridge (store-and-forward)  ->  backbone ring
//                     ->  other bridges               ->  their leaf rings
//
// Each ring arbitrates its own bandwidth; bridges pay a forwarding latency
// and re-serialize the packet onto the next ring. HierarchyPort exposes
// the same MemPort interface as a flat ring, so BBP, scrmpi and scrshm run
// across the hierarchy unchanged.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "scramnet/config.h"
#include "scramnet/port.h"
#include "sim/simulation.h"

namespace scrnet::scramnet {

struct HierarchyConfig {
  u32 leaf_rings = 3;
  u32 nodes_per_ring = 4;   // including the bridge (local node 0)
  u32 bank_words = 1u << 20;
  PacketMode mode = PacketMode::kVariable;
  SimTime leaf_hop = ns(400);
  SimTime backbone_hop = ns(600);   // longer cable runs between cabinets
  SimTime bridge_latency = us(2);   // store-and-forward + re-framing
  double fixed_mbps = 6.5;
  double variable_mbps = 16.7;
  u32 max_var_packet_bytes = 1024;
  SimTime per_packet_overhead = ns(60);

  u32 total_nodes() const { return leaf_rings * nodes_per_ring; }
  SimTime packet_occupancy(u32 payload_bytes) const {
    if (mode == PacketMode::kFixed4) return transfer_time(4, fixed_mbps);
    return per_packet_overhead + transfer_time(payload_bytes, variable_mbps);
  }
};

class RingHierarchy {
 public:
  RingHierarchy(sim::Simulation& sim, HierarchyConfig cfg);

  const HierarchyConfig& config() const { return cfg_; }
  u32 nodes() const { return cfg_.total_nodes(); }
  u32 bank_words() const { return cfg_.bank_words; }
  sim::Simulation& simulation() { return sim_; }

  /// Which leaf ring a global node lives on / its local index there.
  u32 ring_of(u32 node) const { return node / cfg_.nodes_per_ring; }
  u32 local_of(u32 node) const { return node % cfg_.nodes_per_ring; }
  bool is_bridge(u32 node) const { return local_of(node) == 0; }

  void host_write(u32 node, u32 word_addr, u32 value);
  void host_write_block(u32 node, u32 word_addr, std::span<const u32> words,
                        SimTime word_period);
  u32 host_read(u32 node, u32 word_addr) const;
  void host_read_block(u32 node, u32 word_addr, std::span<u32> out) const;

  u64 packets_sent() const { return packets_.get(); }
  u64 backbone_packets() const { return backbone_packets_.get(); }

  /// Worst-case write propagation (farthest leaf-to-leaf path).
  SimTime full_propagation_bound() const;

 private:
  /// Serialize one packet onto a ring; returns serialization-done time.
  /// ring id: 0..K-1 = leaf rings, K = backbone.
  SimTime serialize(u32 ring, u32 payload_bytes, SimTime ready_at);

  /// One pooled delivery chain: a run of bank updates along one ring with
  /// a fixed time stride, carried by a single self-advancing event that
  /// coalesces steps inside the kernel's inline-apply bound -- the same
  /// trick as Ring's packet walk. One packet used to post one event per
  /// visited node ((K-1)*M + M-1 of them); it now posts one chain per ring
  /// plus one for the backbone bridges, O(rings) events.
  struct Chain {
    Chain* next_free = nullptr;
    SimTime t0 = 0;      // delivery time of step 1
    SimTime stride = 0;
    u32 k = 1;           // next step to deliver (1-based)
    u32 last = 0;        // final step
    u32 ring = 0;        // kLeaf: leaf ring id (kBridges: unused)
    u32 start = 0;       // kLeaf: source local index; kBridges: source ring
    enum class Kind : u8 { kLeaf, kBridges } kind = Kind::kLeaf;
    u32 word_addr = 0;
    std::shared_ptr<std::vector<u32>> words;
  };

  u32 chain_node(const Chain& c, u32 k) const;
  void chain_step(Chain* c);
  void chain_resume(Chain* c);
  void start_chain(Chain::Kind kind, u32 ring, u32 start, SimTime t0,
                   SimTime stride, u32 last, u32 word_addr,
                   const std::shared_ptr<std::vector<u32>>& words);
  Chain* acquire_chain();
  void release_chain(Chain* c);

  /// Propagate a packet from a source node across the whole system.
  void inject(u32 src, u32 word_addr, std::vector<u32> words, SimTime ready_at);

  sim::Simulation& sim_;
  HierarchyConfig cfg_;
  std::vector<std::vector<u32>> banks_;       // [global node][word]
  std::vector<SimTime> ring_free_;            // per leaf ring + backbone at [K]
  std::vector<SimTime> tx_free_;              // per global node
  std::deque<Chain> chain_pool_;              // stable-address chain states
  Chain* chain_free_ = nullptr;
  Counter packets_, backbone_packets_;
};

/// MemPort over a RingHierarchy node (same timing model as SimHostPort).
class HierarchyPort final : public MemPort {
 public:
  HierarchyPort(RingHierarchy& h, u32 node, sim::Process& proc, HostTimings t = {})
      : h_(h), node_(node), proc_(proc), t_(t) {}

  u32 node() const override { return node_; }
  u32 nodes() const override { return h_.nodes(); }
  u32 bank_words() const override { return h_.bank_words(); }

  /// Attach fault dials (see SimHostPort::set_dials); nullptr = nominal.
  void set_dials(const PortDials* d) { dials_ = d; }

  void write_u32(u32 word_addr, u32 value) override {
    proc_.delay(io_t(t_.pio_write));
    h_.host_write(node_, word_addr, value);
  }
  u32 read_u32(u32 word_addr) override {
    proc_.delay(io_t(t_.pio_read));
    return h_.host_read(node_, word_addr);
  }
  void write_block(u32 word_addr, std::span<const u32> words) override {
    if (words.empty()) return;
    h_.host_write_block(node_, word_addr, words, io_t(t_.burst_write_word));
    proc_.delay(io_t(t_.pio_write +
                     static_cast<SimTime>(words.size() - 1) * t_.burst_write_word));
  }
  void read_block(u32 word_addr, std::span<u32> out) override {
    if (out.empty()) return;
    proc_.delay(io_t(t_.pio_read +
                     static_cast<SimTime>(out.size() - 1) * t_.burst_read_word));
    h_.host_read_block(node_, word_addr, out);
  }
  SimTime now() const override { return proc_.now(); }
  void poll_pause() override { proc_.delay(cpu_t(t_.poll_gap)); }
  void cpu_delay(SimTime dt) override { proc_.delay(cpu_t(dt)); }

  u32 peek_u32(u32 word_addr) override { return h_.host_read(node_, word_addr); }

 private:
  SimTime io_t(SimTime t) const { return dials_ ? dial_scale(t, dials_->io) : t; }
  SimTime cpu_t(SimTime t) const { return dials_ ? dial_scale(t, dials_->cpu) : t; }

  RingHierarchy& h_;
  u32 node_;
  sim::Process& proc_;
  HostTimings t_;
  const PortDials* dials_ = nullptr;
};

}  // namespace scrnet::scramnet
