// SCRAMNet device-model configuration.
//
// Constants follow Section 2 of the paper and the SYSTRAN SCRAMNet+ data
// sheet it cites:
//   * ring of up to 256 nodes, fiber-optic, register-insertion;
//   * node-to-node propagation 250-800 ns depending on transmission mode;
//   * fixed 4-byte packets: 6.5 MB/s maximum throughput, lowest latency;
//   * variable packets (4 B..1 KB): 16.7 MB/s maximum throughput;
//   * writes to the NIC memory bank are reflected into every other bank
//     with bounded latency; memory is shared but NOT coherent.
//
// Host-interface timings model a PCI Pentium II/300 workstation (the
// paper's testbed): posted PIO writes are cheap, PIO reads across the I/O
// bus are expensive -- the paper explicitly blames receive overhead on
// "memory access across the I/O bus".
#pragma once

#include "common/types.h"
#include "common/units.h"

namespace scrnet::scramnet {

/// Ring transmission mode (Section 2 of the paper).
enum class PacketMode {
  kFixed4,    // fixed 4-byte packets, 6.5 MB/s, lowest per-packet latency
  kVariable,  // 4 B .. 1 KB packets, 16.7 MB/s peak
};

struct RingConfig {
  u32 nodes = 4;               // paper testbed: 4 workstations
  u32 bank_words = 1u << 20;   // 4 MB replicated memory bank (32-bit words)
  PacketMode mode = PacketMode::kVariable;
  SimTime hop_latency = ns(400);          // within the 250-800 ns band
  double fixed_mbps = 6.5;                // payload MB/s, fixed mode
  double variable_mbps = 16.7;            // payload MB/s, variable mode
  u32 max_var_packet_bytes = 1024;        // variable-mode packet cap
  SimTime per_packet_overhead = ns(60);   // framing/insertion per packet

  // Redundant cabling (a SCRAMNet+ deployment option): on a link failure
  // the nodes switch to the backup ring after `switchover`; without it,
  // traffic crossing a failed link is simply lost (SCRAMNet has no
  // retransmission -- reliability is a property of the ring).
  bool redundant_ring = false;
  SimTime switchover = us(50);

  /// Serialization occupancy of a packet carrying `payload_bytes`.
  SimTime packet_occupancy(u32 payload_bytes) const {
    if (mode == PacketMode::kFixed4) {
      return transfer_time(4, fixed_mbps);
    }
    return per_packet_overhead + transfer_time(payload_bytes, variable_mbps);
  }

  bool valid() const {
    return nodes >= 2 && nodes <= 256 && bank_words >= 64 &&
           max_var_packet_bytes >= 4 && (max_var_packet_bytes % 4) == 0;
  }
};

/// Host (CPU + I/O bus) access costs for one workstation.
struct HostTimings {
  SimTime pio_write = ns(250);        // posted PCI write, one 32-bit word
  SimTime pio_read = ns(900);         // PCI read (non-posted, round trip)
  SimTime burst_write_word = ns(240); // subsequent word in a write burst
  SimTime burst_read_word = ns(280);  // subsequent word in a read burst
  SimTime poll_gap = ns(300);         // host loop overhead between polls
  SimTime irq_dispatch = us(7);       // interrupt + process wakeup (Linux 2.0)

  // DMA engine (Section 2: "for larger data transfers, programmed I/O or
  // DMA can be used"): one descriptor setup, then the NIC masters the bus
  // at burst rate while the CPU is free; completion costs a check/IRQ.
  SimTime dma_setup = us(3);          // descriptor write + doorbell
  SimTime dma_per_word = ns(90);      // bus-master burst, faster than PIO
  SimTime dma_complete = us(1);       // completion status handling
};

/// Per-node runtime dials a fault plan can turn mid-run (fault/plan.h).
/// `io` scales every I/O-bus transaction (PIO, bursts, DMA pacing) --
/// modeling PCIe/host-port congestion; `cpu` scales protocol CPU costs and
/// the host's poll loop -- modeling a slow or overloaded node. Ports hold a
/// pointer so an armed plan's scheduled events take effect immediately;
/// both default to 1.0, and ports skip the multiply entirely at 1.0 so a
/// clean run's virtual timeline is bit-identical with or without a plan.
struct PortDials {
  double io = 1.0;
  double cpu = 1.0;
};

/// Scale a virtual-time cost by a dial factor (identity at 1.0).
inline SimTime dial_scale(SimTime t, double f) {
  if (f == 1.0) return t;
  return static_cast<SimTime>(static_cast<double>(t) * f);
}

}  // namespace scrnet::scramnet
