#include "scramnet/ring.h"

#include <cassert>
#include <stdexcept>

namespace scrnet::scramnet {

Ring::Ring(sim::Simulation& sim, RingConfig cfg) : sim_(sim), cfg_(cfg) {
  if (!cfg_.valid()) throw std::invalid_argument("invalid RingConfig");
  banks_.assign(cfg_.nodes, std::vector<u32>(cfg_.bank_words, 0u));
  tx_free_.assign(cfg_.nodes, 0);
  irq_.resize(cfg_.nodes);
  link_failed_.assign(cfg_.nodes, false);
}

void Ring::fail_link(u32 node) {
  assert(node < cfg_.nodes);
  link_failed_[node] = true;
  if (cfg_.redundant_ring)
    recover_at_ = std::max(recover_at_, sim_.now() + cfg_.switchover);
}

void Ring::heal_link(u32 node) {
  assert(node < cfg_.nodes);
  link_failed_[node] = false;
}

SimTime Ring::inject_packet(u32 src, u32 word_addr, std::vector<u32> words, SimTime ready_at) {
  const u32 payload = static_cast<u32>(words.size()) * 4u;
  const SimTime occ = cfg_.packet_occupancy(payload);
  SimTime start = std::max({ready_at, tx_free_[src], ring_free_});
  const SimTime done = start + occ;
  tx_free_[src] = done;
  ring_free_ = done;
  packets_.inc();
  words_.inc(words.size());

  // Deliver to each downstream node after k hop latencies past
  // serialization. A failed link on the path loses the packet for nodes
  // beyond it (no redundancy) or delays them past the switchover.
  auto shared = std::make_shared<std::vector<u32>>(std::move(words));
  bool path_broken = false;
  for (u32 k = 1; k < cfg_.nodes; ++k) {
    const u32 dst = (src + k) % cfg_.nodes;
    path_broken = path_broken || link_failed_[(src + k - 1) % cfg_.nodes];
    SimTime at = done + static_cast<SimTime>(k) * cfg_.hop_latency;
    if (path_broken) {
      if (!cfg_.redundant_ring) {
        lost_.inc();
        continue;
      }
      at = std::max(at, recover_at_ + static_cast<SimTime>(k) * cfg_.hop_latency);
    }
    sim_.post_at(at, [this, dst, word_addr, shared] { deliver(dst, word_addr, *shared); });
  }
  return done;
}

void Ring::deliver(u32 dst, u32 word_addr, const std::vector<u32>& words) {
  auto& bank = banks_[dst];
  assert(word_addr + words.size() <= bank.size());
  for (usize i = 0; i < words.size(); ++i) bank[word_addr + i] = words[i];
  const IrqRange& r = irq_[dst];
  if (r.handler) {
    const u32 end = word_addr + static_cast<u32>(words.size());
    if (word_addr < r.hi && end > r.lo) {
      irqs_.inc();
      r.handler(word_addr);
    }
  }
}

void Ring::host_write(u32 node, u32 word_addr, u32 value) {
  assert(node < cfg_.nodes && word_addr < cfg_.bank_words);
  banks_[node][word_addr] = value;
  inject_packet(node, word_addr, {value}, sim_.now());
}

void Ring::host_write_block(u32 node, u32 word_addr, std::span<const u32> words,
                            SimTime word_period) {
  assert(node < cfg_.nodes);
  assert(word_addr + words.size() <= cfg_.bank_words);
  if (words.empty()) return;

  // The host's PIO burst streams words into the NIC FIFO at `word_period`;
  // the TX engine cuts through: it starts serializing a packet as soon as
  // its first words arrive (ring rate ~ burst rate, so the FIFO never runs
  // dry mid-packet). A packet is therefore ready at its *first* word's
  // arrival; per-sender FIFO ordering is still enforced by the insertion
  // engine (tx_free_), and delivery of a chunk always trails the host's
  // write of that chunk because occupancy >= the chunk's pacing span.
  const u32 chunk_words =
      cfg_.mode == PacketMode::kFixed4 ? 1u : cfg_.max_var_packet_bytes / 4u;
  auto& bank = banks_[node];
  usize off = 0;
  while (off < words.size()) {
    const usize n = std::min<usize>(chunk_words, words.size() - off);
    std::vector<u32> chunk(words.begin() + static_cast<std::ptrdiff_t>(off),
                           words.begin() + static_cast<std::ptrdiff_t>(off + n));
    for (usize i = 0; i < n; ++i) bank[word_addr + off + i] = chunk[i];
    const SimTime ready = sim_.now() + static_cast<SimTime>(off) * word_period;
    inject_packet(node, word_addr + static_cast<u32>(off), std::move(chunk), ready);
    off += n;
  }
}

u32 Ring::host_read(u32 node, u32 word_addr) const {
  assert(node < cfg_.nodes && word_addr < cfg_.bank_words);
  return banks_[node][word_addr];
}

void Ring::host_read_block(u32 node, u32 word_addr, std::span<u32> out) const {
  assert(node < cfg_.nodes);
  assert(word_addr + out.size() <= cfg_.bank_words);
  const auto& bank = banks_[node];
  for (usize i = 0; i < out.size(); ++i) out[i] = bank[word_addr + i];
}

void Ring::set_interrupt(u32 node, u32 lo_addr, u32 hi_addr,
                         std::function<void(u32)> handler) {
  assert(node < cfg_.nodes && lo_addr <= hi_addr);
  irq_[node] = IrqRange{lo_addr, hi_addr, std::move(handler)};
}

void Ring::clear_interrupt(u32 node) { irq_[node] = IrqRange{}; }

SimTime Ring::full_propagation_bound() const {
  return cfg_.packet_occupancy(cfg_.mode == PacketMode::kFixed4 ? 4u
                                                                : cfg_.max_var_packet_bytes) +
         static_cast<SimTime>(cfg_.nodes - 1) * cfg_.hop_latency;
}

}  // namespace scrnet::scramnet
