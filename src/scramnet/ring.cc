#include "scramnet/ring.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "obs/counters.h"
#include "obs/trace.h"

namespace scrnet::scramnet {

Ring::Ring(sim::Simulation& sim, RingConfig cfg) : sim_(sim), cfg_(cfg) {
  if (!cfg_.valid()) throw std::invalid_argument("invalid RingConfig");
  banks_.assign(cfg_.nodes, std::vector<u32>(cfg_.bank_words, 0u));
  tx_free_.assign(cfg_.nodes, 0);
  irq_.resize(cfg_.nodes);
  link_failed_.assign(cfg_.nodes, false);
  speed_factor_.assign(cfg_.nodes, 1.0);
  irq_fired_.assign(cfg_.nodes, 0);
}

void Ring::set_partition(std::vector<u32> shard_of_node) {
  if (shard_of_node.size() != cfg_.nodes)
    throw std::invalid_argument("ring: partition size != node count");
  for (u32 s : shard_of_node) {
    if (s >= sim_.jobs())
      throw std::invalid_argument("ring: partition names shard " +
                                  std::to_string(s) + " beyond sim jobs");
  }
  const bool first = shard_of_.empty();
  shard_of_ = std::move(shard_of_node);
  lanes_ = std::vector<Lane>(sim_.jobs());
  if (first) sim_.add_barrier_hook([this](SimTime) { on_barrier(); });
}

void Ring::apply_fail(u32 node, SimTime t) {
  link_failed_[node] = true;
  if (cfg_.redundant_ring) {
    switchovers_.inc();
    recover_at_ = std::max(recover_at_, t + cfg_.switchover);
  }
}

Status Ring::fail_link(u32 node) {
  if (node >= cfg_.nodes)
    return Status::InvalidArg("ring: fail_link on nonexistent link " +
                              std::to_string(node));
  if (deferred()) [[unlikely]] {
    lanes_[sim_.current_shard()].ops.push_back(
        SpineOp{sim_.now(), node, SpineOp::Kind::kLinkDown});
    sim_.note_horizon(sim_.now());
    return Status::Ok();
  }
  apply_fail(node, sim_.now());
  return Status::Ok();
}

Status Ring::heal_link(u32 node) {
  if (node >= cfg_.nodes)
    return Status::InvalidArg("ring: heal_link on nonexistent link " +
                              std::to_string(node));
  if (deferred()) [[unlikely]] {
    lanes_[sim_.current_shard()].ops.push_back(
        SpineOp{sim_.now(), node, SpineOp::Kind::kLinkUp});
    sim_.note_horizon(sim_.now());
    return Status::Ok();
  }
  link_failed_[node] = false;
  return Status::Ok();
}

Status Ring::set_node_speed_factor(u32 node, double factor) {
  if (node >= cfg_.nodes)
    return Status::InvalidArg("ring: speed factor on nonexistent node " +
                              std::to_string(node));
  if (!(factor > 0.0))
    return Status::InvalidArg("ring: speed factor must be positive");
  if (deferred()) [[unlikely]] {
    SpineOp op{sim_.now(), node, SpineOp::Kind::kSpeed};
    op.factor = factor;
    lanes_[sim_.current_shard()].ops.push_back(op);
    sim_.note_horizon(sim_.now());
    return Status::Ok();
  }
  speed_factor_[node] = factor;
  return Status::Ok();
}

SimTime Ring::inject_packet(u32 src, u32 word_addr, std::span<const u32> words,
                            SimTime ready_at, SimTime issue_t) {
  const u32 payload = static_cast<u32>(words.size()) * 4u;
  // A wrong-speed NIC serializes slower, holding both its insertion engine
  // and the shared medium longer (register insertion: the ring waits on the
  // inserting node). Factor 1.0 is the untouched nominal path.
  const SimTime occ = dial_scale(cfg_.packet_occupancy(payload), speed_factor_[src]);
  SimTime start = std::max({ready_at, tx_free_[src], ring_free_});
  const SimTime done = start + occ;
  tx_free_[src] = done;
  ring_free_ = done;
  packets_.inc();
  words_.inc(words.size());
  // Explicit timestamp: when this runs at a window barrier the write's own
  // time is `issue_t`, not the coordinator's clock.
  if (obs::Tracer::enabled())
    obs::Tracer::current().instant(obs::Layer::kRing, src, "ring.inject", issue_t);

  // The packet visits each downstream node after k hop latencies past
  // serialization. Link state is sampled here, at injection, exactly as the
  // old per-node event posting did: a failed link on the path loses the
  // packet for nodes beyond it (no redundancy) or delays them past the
  // switchover. One pooled walk event then carries the packet hop to hop.
  u32 first_broken = kNoBrokenHop;
  for (u32 k = 1; k < cfg_.nodes; ++k) {
    if (link_failed_[(src + k - 1) % cfg_.nodes]) {
      first_broken = k;
      break;
    }
  }
  u32 last_hop = cfg_.nodes - 1;
  if (first_broken != kNoBrokenHop && !cfg_.redundant_ring) {
    lost_.inc(cfg_.nodes - first_broken);  // every node past the break
    last_hop = first_broken - 1;
  }
  if (last_hop == 0) return done;  // first hop is dead: nothing to deliver

  Walk* w = acquire_walk();
  w->base = done;
  w->recover = recover_at_;
  w->src = src;
  w->word_addr = word_addr;
  w->nwords = static_cast<u32>(words.size());
  w->k = 1;
  w->last_hop = last_hop;
  w->first_broken = first_broken;
  if (w->nwords <= kInlinePacketWords) {
    for (u32 i = 0; i < w->nwords; ++i) w->inline_words[i] = words[i];
  } else {
    w->big_words.assign(words.begin(), words.end());
  }
  post_first_hop(w);
  return done;
}

void Ring::post_first_hop(Walk* w) {
  const SimTime t = hop_time(*w, 1);
  if (partitioned()) [[unlikely]] {
    sim_.post_at_shard(shard_of_[(w->src + 1) % cfg_.nodes], t,
                       [this, w] { walk_hop(w); });
    return;
  }
  sim_.post_at(t, [this, w] { walk_hop(w); });
}

SimTime Ring::hop_time(const Walk& w, u32 k) const {
  const SimTime propagation = static_cast<SimTime>(k) * cfg_.hop_latency;
  if (k >= w.first_broken) return std::max(w.base, w.recover) + propagation;
  return w.base + propagation;
}

void Ring::walk_hop(Walk* w) {
  // A real hop event, executing at hop w->k's own tick.
  deliver((w->src + w->k) % cfg_.nodes, w->word_addr, w->data(), w->nwords);
  walk_advance(w);
}

void Ring::walk_advance(Walk* w) {
  // Hop w->k has been delivered. Keep walking *inside this event* for as
  // long as the next hop is provably unobservable: same shard, no IRQ
  // watch on the written range at the target (a handler must fire at its
  // own hop time), and strictly below the kernel's inline-apply bound --
  // every other observer (queued event, process resume, window barrier,
  // run_until return) runs at or past that bound, and no event can ever be
  // created below it, so applying the bank update early is invisible.
  // Virtual-time results are bit-identical to the per-hop event posting;
  // only the host event count drops: a quiet-ring broadcast at N=256
  // coalesces all 255 downstream deliveries into one event (per shard,
  // when partitioned). The bound is recomputed every hop because the hop
  // just applied may have tightened it (an IRQ handler on the *current*
  // hop can post same-window events).
  //
  // When a hop *does* need a real event, post it from the previous hop's
  // own tick -- the tick the one-event-per-hop reference posted it from --
  // bouncing through a relay event first if this event has coalesced past
  // that tick. Insertion order is the tiebreak for same-picosecond events,
  // so posting the hop from anywhere earlier would let it jump ahead of
  // equal-time observers (a poll read, a seq_flush) that the reference
  // ordered before it. The relay's own tick is below the bound, so it
  // collides with nothing.
  for (;;) {
    if (w->k >= w->last_hop) {
      if (deferred()) [[unlikely]] {
        // The freelist belongs to the injection spine (coordinator); park
        // the walk on this shard's lane until the barrier reclaims it.
        lanes_[sim_.current_shard()].released.push_back(w);
        return;
      }
      release_walk(w);
      return;
    }
    const SimTime t_prev = hop_time(*w, w->k);
    const u32 next_k = w->k + 1;
    const u32 next = (w->src + next_k) % cfg_.nodes;
    const SimTime t = hop_time(*w, next_k);
    const bool cross =
        partitioned() && shard_of_[next] != sim_.current_shard();
    const IrqRange& r = irq_[next];
    const bool irq_hit =
        r.handler && w->word_addr < r.hi && w->word_addr + w->nwords > r.lo;
    const bool observable = t >= sim_.inline_apply_bound();
    if (cross || irq_hit || observable) [[unlikely]] {
      if ((cross || observable) && sim_.now() != t_prev) {
        // An IRQ-only stop below the bound needs no relay: ticks below the
        // bound stay event-free, so nothing can tie with the hop event.
        sim_.post_at(t_prev, [this, w] { walk_advance(w); });
        return;
      }
      w->k = next_k;
      if (partitioned()) [[unlikely]] {
        // A cross-shard hop is a full hop_latency (== the configured
        // lookahead) in the future, so it always clears the window barrier.
        sim_.post_at_shard(shard_of_[next], t, [this, w] { walk_hop(w); });
      } else {
        sim_.post_at(t, [this, w] { walk_hop(w); });
      }
      return;
    }
    // Inline-apply hop next_k at its (future) time t and keep walking.
    w->k = next_k;
    deliver(next, w->word_addr, w->data(), w->nwords);
    sim_.note_inline_apply(t);
  }
}

Ring::Walk* Ring::acquire_walk() {
  if (walk_free_ == nullptr) {
    walk_pool_.emplace_back();
    return &walk_pool_.back();
  }
  Walk* w = walk_free_;
  walk_free_ = w->next_free;
  return w;
}

void Ring::release_walk(Walk* w) {
  w->big_words.clear();  // keeps capacity for the next large packet
  w->next_free = walk_free_;
  walk_free_ = w;
}

void Ring::deliver(u32 dst, u32 word_addr, const u32* words, u32 nwords) {
  auto& bank = banks_[dst];
  assert(word_addr + nwords <= bank.size());
  for (u32 i = 0; i < nwords; ++i) bank[word_addr + i] = words[i];
  const IrqRange& r = irq_[dst];
  if (r.handler) {
    const u32 end = word_addr + nwords;
    if (word_addr < r.hi && end > r.lo) {
      ++irq_fired_[dst];  // per-node cell: only dst's shard ever delivers here
      r.handler(word_addr);
    }
  }
}

void Ring::host_write(u32 node, u32 word_addr, u32 value) {
  assert(node < cfg_.nodes && word_addr < cfg_.bank_words);
  banks_[node][word_addr] = value;  // local copy is immediate in any mode
  SpineOp op{sim_.now(), node, SpineOp::Kind::kWrite};
  op.word_addr = word_addr;
  op.nwords = 1;
  if (deferred()) [[unlikely]] {
    Lane& lane = lanes_[sim_.current_shard()];
    op.payload_off = lane.payload.size();
    lane.payload.push_back(value);
    lane.ops.push_back(op);
    sim_.note_horizon(op.t);
    return;
  }
  seq_record(op, std::span<const u32>(&value, 1));
}

void Ring::host_write_block(u32 node, u32 word_addr, std::span<const u32> words,
                            SimTime word_period) {
  assert(node < cfg_.nodes);
  assert(word_addr + words.size() <= cfg_.bank_words);
  if (words.empty()) return;

  // The host's PIO burst streams words into the NIC FIFO at `word_period`;
  // the TX engine cuts through: it starts serializing a packet as soon as
  // its first words arrive (ring rate ~ burst rate, so the FIFO never runs
  // dry mid-packet). A packet is therefore ready at its *first* word's
  // arrival; per-sender FIFO ordering is still enforced by the insertion
  // engine (tx_free_), and delivery of a chunk always trails the host's
  // write of that chunk because occupancy >= the chunk's pacing span.
  auto& bank = banks_[node];
  // The whole burst lands in the local bank within this synchronous call
  // (no event can interleave), so write it in one pass instead of building
  // a chunk vector per packet -- in kFixed4 mode that used to mean one
  // 1-word vector per word written.
  for (usize i = 0; i < words.size(); ++i) bank[word_addr + i] = words[i];
  // One record for the whole burst; the replay (barrier or sequential
  // flush) re-runs the chunking loop with ready times anchored at this
  // op's time.
  SpineOp op{sim_.now(), node, SpineOp::Kind::kWrite};
  op.word_addr = word_addr;
  op.nwords = static_cast<u32>(words.size());
  op.word_period = word_period;
  if (deferred()) [[unlikely]] {
    Lane& lane = lanes_[sim_.current_shard()];
    op.payload_off = lane.payload.size();
    lane.payload.insert(lane.payload.end(), words.begin(), words.end());
    lane.ops.push_back(op);
    sim_.note_horizon(op.t);
    return;
  }
  seq_record(op, words);
}

void Ring::seq_record(const SpineOp& op, std::span<const u32> words) {
  seq_ops_.push_back(op);
  seq_ops_.back().payload_off = seq_payload_.size();
  seq_payload_.insert(seq_payload_.end(), words.begin(), words.end());
  if (seq_flush_posted_) return;
  seq_flush_posted_ = true;
  // The flush lands behind every event already queued at this timestamp,
  // so it collects all writes issued at this instant before arbitrating.
  sim_.post_at(sim_.now(), [this] { seq_flush(); });
}

void Ring::seq_flush() {
  seq_flush_posted_ = false;
  // Every pending op carries this flush's timestamp: the flush was posted
  // at the first op's time and a later instant starts a new batch. Sorting
  // by (node, kind) therefore reproduces the sharded spine's (time, node,
  // kind) barrier merge exactly.
  std::stable_sort(seq_ops_.begin(), seq_ops_.end(),
                   [](const SpineOp& a, const SpineOp& b) {
                     if (a.t != b.t) return a.t < b.t;
                     if (a.node != b.node) return a.node < b.node;
                     return static_cast<u8>(a.kind) < static_cast<u8>(b.kind);
                   });
  for (const SpineOp& op : seq_ops_)
    replay_op(op, seq_payload_.data() + op.payload_off);
  seq_ops_.clear();
  seq_payload_.clear();
}

void Ring::on_barrier() {
  // Reclaim walks that finished on worker shards during the window (the
  // freelist is spine state; shards may not touch it mid-window).
  for (Lane& lane : lanes_) {
    for (Walk* w : lane.released) release_walk(w);
    lane.released.clear();
  }
  bool any = false;
  for (const Lane& lane : lanes_)
    if (!lane.ops.empty()) any = true;
  if (!any) return;
  // Merge the per-shard operation streams into one deterministic order.
  // Each lane is already time-sorted (its shard executed in time order);
  // the sort key adds (node, kind) so the merged order is independent of
  // how nodes were partitioned: a node's writes all come from one lane
  // (stable within it), and fault flips -- recorded wherever the fault
  // plan's events run -- tie-break against writes by kind alone.
  spine_merge_.clear();
  for (const Lane& lane : lanes_)
    for (const SpineOp& op : lane.ops) spine_merge_.push_back(MergeRef{&op, &lane});
  std::stable_sort(spine_merge_.begin(), spine_merge_.end(),
                   [](const MergeRef& a, const MergeRef& b) {
                     if (a.op->t != b.op->t) return a.op->t < b.op->t;
                     if (a.op->node != b.op->node) return a.op->node < b.op->node;
                     return static_cast<u8>(a.op->kind) < static_cast<u8>(b.op->kind);
                   });
  for (const MergeRef& m : spine_merge_)
    replay_op(*m.op, m.lane->payload.data() + m.op->payload_off);
  spine_merge_.clear();
  for (Lane& lane : lanes_) {
    lane.ops.clear();
    lane.payload.clear();
  }
}

void Ring::replay_op(const SpineOp& op, const u32* payload) {
  switch (op.kind) {
    case SpineOp::Kind::kLinkDown:
      apply_fail(op.node, op.t);
      return;
    case SpineOp::Kind::kLinkUp:
      link_failed_[op.node] = false;
      return;
    case SpineOp::Kind::kSpeed:
      speed_factor_[op.node] = op.factor;
      return;
    case SpineOp::Kind::kWrite:
      break;
  }
  // The bank was already written on the owning shard; re-run only the
  // injection side, with the same chunking and pacing as the direct path.
  const u32 chunk_words =
      cfg_.mode == PacketMode::kFixed4 ? 1u : cfg_.max_var_packet_bytes / 4u;
  u32 off = 0;
  while (off < op.nwords) {
    const u32 n = std::min(chunk_words, op.nwords - off);
    const SimTime ready = op.t + static_cast<SimTime>(off) * op.word_period;
    inject_packet(op.node, op.word_addr + off, std::span<const u32>(payload + off, n),
                  ready, op.t);
    off += n;
  }
}

u32 Ring::host_read(u32 node, u32 word_addr) const {
  assert(node < cfg_.nodes && word_addr < cfg_.bank_words);
  return banks_[node][word_addr];
}

void Ring::host_read_block(u32 node, u32 word_addr, std::span<u32> out) const {
  assert(node < cfg_.nodes);
  assert(word_addr + out.size() <= cfg_.bank_words);
  const auto& bank = banks_[node];
  for (usize i = 0; i < out.size(); ++i) out[i] = bank[word_addr + i];
}

void Ring::set_interrupt(u32 node, u32 lo_addr, u32 hi_addr,
                         std::function<void(u32)> handler) {
  assert(node < cfg_.nodes && lo_addr <= hi_addr);
  irq_[node] = IrqRange{lo_addr, hi_addr, std::move(handler)};
}

void Ring::clear_interrupt(u32 node) { irq_[node] = IrqRange{}; }

void Ring::publish_counters(obs::Counters& c, std::string_view group) const {
  c.add(group, "packets_sent", packets_sent());
  c.add(group, "words_replicated", words_replicated());
  c.add(group, "interrupts_fired", interrupts_fired());
  c.add(group, "packets_lost", packets_lost());
  c.add(group, "switchovers", switchovers());
}

SimTime Ring::full_propagation_bound() const {
  return cfg_.packet_occupancy(cfg_.mode == PacketMode::kFixed4 ? 4u
                                                                : cfg_.max_var_packet_bytes) +
         static_cast<SimTime>(cfg_.nodes - 1) * cfg_.hop_latency;
}

}  // namespace scrnet::scramnet
