#include "scramnet/thread_backend.h"

#include <cassert>

namespace scrnet::scramnet {

// ---------------------------------------------------------------------------
// ThreadBackend
// ---------------------------------------------------------------------------

ThreadBackend::ThreadBackend(u32 nodes, u32 bank_words)
    : nodes_(nodes), bank_words_(bank_words) {
  assert(nodes >= 2);
  banks_.reserve(nodes);
  for (u32 n = 0; n < nodes; ++n) {
    auto bank = std::make_unique<std::atomic<u32>[]>(bank_words);
    for (u32 w = 0; w < bank_words; ++w) bank[w].store(0, std::memory_order_relaxed);
    banks_.push_back(std::move(bank));
  }
}

void ThreadBackend::write(u32 src_node, u32 word_addr, u32 value) {
  assert(src_node < nodes_ && word_addr < bank_words_);
  // Own bank first (host write-through), then replicas. seq_cst everywhere
  // keeps per-sender program order visible to every reader.
  banks_[src_node][word_addr].store(value, std::memory_order_seq_cst);
  for (u32 n = 0; n < nodes_; ++n) {
    if (n == src_node) continue;
    banks_[n][word_addr].store(value, std::memory_order_seq_cst);
  }
}

void ThreadBackend::write_block(u32 src_node, u32 word_addr, std::span<const u32> words) {
  assert(word_addr + words.size() <= bank_words_);
  for (usize i = 0; i < words.size(); ++i)
    write(src_node, word_addr + static_cast<u32>(i), words[i]);
}

u32 ThreadBackend::read(u32 node, u32 word_addr) const {
  assert(node < nodes_ && word_addr < bank_words_);
  return banks_[node][word_addr].load(std::memory_order_seq_cst);
}

void ThreadBackend::read_block(u32 node, u32 word_addr, std::span<u32> out) const {
  assert(word_addr + out.size() <= bank_words_);
  for (usize i = 0; i < out.size(); ++i)
    out[i] = read(node, word_addr + static_cast<u32>(i));
}

// ---------------------------------------------------------------------------
// DelayedThreadBackend
// ---------------------------------------------------------------------------

DelayedThreadBackend::DelayedThreadBackend(u32 nodes, u32 bank_words)
    : nodes_(nodes), bank_words_(bank_words) {
  assert(nodes >= 2);
  banks_.reserve(nodes);
  for (u32 n = 0; n < nodes; ++n) {
    auto bank = std::make_unique<std::atomic<u32>[]>(bank_words);
    for (u32 w = 0; w < bank_words; ++w) bank[w].store(0, std::memory_order_relaxed);
    banks_.push_back(std::move(bank));
  }
  appliers_.reserve(nodes);
  for (u32 n = 0; n < nodes; ++n) appliers_.push_back(std::make_unique<NodeApplier>());
  for (u32 n = 0; n < nodes; ++n)
    appliers_[n]->thread = std::thread([this, n] { applier_main(n); });
}

DelayedThreadBackend::~DelayedThreadBackend() {
  for (auto& a : appliers_) {
    {
      std::lock_guard<std::mutex> lk(a->mu);
      a->stop = true;
    }
    a->cv.notify_all();
  }
  for (auto& a : appliers_) a->thread.join();
}

void DelayedThreadBackend::applier_main(u32 node) {
  NodeApplier& a = *appliers_[node];
  auto& bank = banks_[node];
  std::unique_lock<std::mutex> lk(a.mu);
  for (;;) {
    a.cv.wait(lk, [&] { return a.stop || !a.q.empty(); });
    if (a.q.empty()) {
      if (a.stop) return;
      continue;
    }
    Update u = std::move(a.q.front());
    a.q.pop_front();
    lk.unlock();
    for (usize i = 0; i < u.words.size(); ++i)
      bank[u.addr + i].store(u.words[i], std::memory_order_seq_cst);
    a.applied.fetch_add(1, std::memory_order_release);
    lk.lock();
  }
}

void DelayedThreadBackend::write(u32 src_node, u32 word_addr, u32 value) {
  write_block(src_node, word_addr, std::span<const u32>(&value, 1));
}

void DelayedThreadBackend::write_block(u32 src_node, u32 word_addr,
                                       std::span<const u32> words) {
  assert(src_node < nodes_ && word_addr + words.size() <= bank_words_);
  // Local bank synchronously (host write-through).
  auto& own = banks_[src_node];
  for (usize i = 0; i < words.size(); ++i)
    own[word_addr + i].store(words[i], std::memory_order_seq_cst);
  // Remote banks asynchronously via per-node applier queues. Each sender
  // enqueues its own writes in program order, so per-sender FIFO holds at
  // every destination; interleaving *between* senders differs per node.
  Update u{word_addr, std::vector<u32>(words.begin(), words.end())};
  for (u32 n = 0; n < nodes_; ++n) {
    if (n == src_node) continue;
    NodeApplier& a = *appliers_[n];
    {
      std::lock_guard<std::mutex> lk(a.mu);
      a.q.push_back(u);
      a.enqueued.fetch_add(1, std::memory_order_release);
    }
    a.cv.notify_one();
  }
}

u32 DelayedThreadBackend::read(u32 node, u32 word_addr) const {
  assert(node < nodes_ && word_addr < bank_words_);
  return banks_[node][word_addr].load(std::memory_order_seq_cst);
}

void DelayedThreadBackend::read_block(u32 node, u32 word_addr, std::span<u32> out) const {
  assert(word_addr + out.size() <= bank_words_);
  for (usize i = 0; i < out.size(); ++i)
    out[i] = read(node, word_addr + static_cast<u32>(i));
}

void DelayedThreadBackend::quiesce() {
  for (auto& a : appliers_) {
    while (a->applied.load(std::memory_order_acquire) !=
           a->enqueued.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
}

}  // namespace scrnet::scramnet
