// SCRAMNet replicated shared-memory ring -- discrete-event device model.
//
// Every node owns a memory bank replicated across the ring. A host write
// lands in the local bank immediately and is injected onto the ring as a
// packet; the packet visits each downstream node after k hop latencies and
// updates that node's bank on arrival. Packets from one sender stay in
// FIFO order (register-insertion rings guarantee this and the BillBoard
// Protocol depends on it); packets from *different* senders may be applied
// at different nodes in different relative orders -- the non-coherence the
// paper describes in Section 2.
//
// Bandwidth is modeled at two choke points: a per-node insertion engine
// and the shared ring medium, both running at the mode's data rate.
//
// Parallel execution (sim_jobs > 1): set_partition() assigns each node to
// a simulation shard. Node-local state (bank, IRQ watch, delivery events)
// lives with the node's shard; the *serialization spine* -- injection
// arbitration over tx_free_/ring_free_, link-state sampling, and the
// global counters -- stays single-threaded by deferral: host writes and
// fault flips append per-shard operation records during a window, and the
// window-barrier hook merges them by (time, node, kind) and replays them
// through the ordinary injection path. Packet walks then hop shard to
// shard via Simulation::post_at_shard; each hop advances virtual time by
// exactly hop_latency, the lookahead the harness configures, so every
// cross-shard delivery lands beyond the window barrier by construction.
#pragma once

#include <deque>
#include <functional>
#include <limits>
#include <span>
#include <string_view>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"
#include "scramnet/config.h"
#include "sim/simulation.h"

namespace scrnet::obs {
class Counters;
}

namespace scrnet::scramnet {

class Ring {
 public:
  Ring(sim::Simulation& sim, RingConfig cfg);

  const RingConfig& config() const { return cfg_; }
  u32 nodes() const { return cfg_.nodes; }
  u32 bank_words() const { return cfg_.bank_words; }
  sim::Simulation& simulation() { return sim_; }

  /// Host writes one word at `node` (immediate locally, replicated on ring).
  void host_write(u32 node, u32 word_addr, u32 value);

  /// Host writes a block; injections are paced at `word_period` apart so the
  /// ring transfer overlaps the host's PIO burst (start of pacing = now).
  void host_write_block(u32 node, u32 word_addr, std::span<const u32> words,
                        SimTime word_period);

  /// Host reads from the local bank (the replicated copy at `node`).
  u32 host_read(u32 node, u32 word_addr) const;
  void host_read_block(u32 node, u32 word_addr, std::span<u32> out) const;

  /// Register an interrupt handler fired when a *network-delivered* write
  /// lands at `node` inside [lo_addr, hi_addr). Used by the interrupt-driven
  /// receive ablation (the paper's "future work" direction).
  void set_interrupt(u32 node, u32 lo_addr, u32 hi_addr,
                     std::function<void(u32 addr)> handler);
  void clear_interrupt(u32 node);

  /// Virtual time at which the write issued at `node` right now would have
  /// fully propagated to every other node (useful for tests).
  SimTime full_propagation_bound() const;

  // -- intra-run parallel partitioning --------------------------------------

  /// Assign each node to a simulation shard (map[node] = shard id, one
  /// entry per node, ids < sim.jobs()). Call once at setup, before run();
  /// registers the ring's window-barrier hook with the simulation. See the
  /// header comment for what moves where.
  void set_partition(std::vector<u32> shard_of_node);
  bool partitioned() const { return !shard_of_.empty(); }
  /// Shard owning `node` (0 when unpartitioned) -- the shard its host
  /// processes must be spawned on (harness::run_scramnet_* does this).
  u32 shard_of(u32 node) const { return partitioned() ? shard_of_[node] : 0; }

  // -- fault injection ------------------------------------------------------

  /// Fail the link from `node` to its downstream neighbor, effective now.
  /// With cfg.redundant_ring the fabric recovers after cfg.switchover and
  /// affected deliveries are delayed; without it they are lost.
  /// kInvalidArg if `node` names no link.
  Status fail_link(u32 node);
  /// Repair the link (takes effect for packets injected afterwards).
  Status heal_link(u32 node);
  /// Scale node `node`'s insertion-engine serialization time by `factor`
  /// (> 1.0 = a wrong-speed / degraded NIC; 1.0 restores nominal).
  Status set_node_speed_factor(u32 node, double factor);
  bool link_failed(u32 node) const {
    return node < cfg_.nodes && link_failed_[node];
  }
  u64 packets_lost() const { return lost_.get(); }
  /// Redundant-ring switchovers initiated by link failures.
  u64 switchovers() const { return switchovers_.get(); }

  // -- statistics ----------------------------------------------------------
  u64 packets_sent() const { return packets_.get(); }
  u64 words_replicated() const { return words_.get(); }
  u64 interrupts_fired() const {
    u64 n = 0;
    for (u64 v : irq_fired_) n += v;  // per-node cells: shard-race-free
    return n;
  }
  /// Packet-walk pool high-water mark (== max packets ever in flight);
  /// steady-state traffic reuses these slots without allocating.
  usize walk_pool_size() const { return walk_pool_.size(); }

  /// Publish the fabric counters into the registry under `group`.
  void publish_counters(obs::Counters& c, std::string_view group) const;

 private:
  struct IrqRange {
    u32 lo = 0, hi = 0;
    std::function<void(u32)> handler;
  };

  /// One in-flight packet working its way around the ring. The payload
  /// lives inline for small packets (every kFixed4 packet and every single
  /// host_write) and in a capacity-recycled vector for large variable-mode
  /// chunks. A single event per packet walks hop to hop instead of one
  /// pre-posted event per downstream node.
  static constexpr u32 kInlinePacketWords = 8;
  static constexpr u32 kNoBrokenHop = std::numeric_limits<u32>::max();
  struct Walk {
    Walk* next_free = nullptr;
    SimTime base = 0;       // serialization-done time (delivery anchor)
    SimTime recover = 0;    // recover_at_ snapshot at injection
    u32 src = 0;
    u32 word_addr = 0;
    u32 nwords = 0;
    u32 k = 0;              // next hop to deliver (1-based)
    u32 last_hop = 0;       // final hop to deliver
    u32 first_broken = 0;   // hops >= this ride the backup ring
    u32 inline_words[kInlinePacketWords] = {};
    std::vector<u32> big_words;  // payload when nwords > kInlinePacketWords
    const u32* data() const {
      return nwords <= kInlinePacketWords ? inline_words : big_words.data();
    }
  };

  /// One host-side ring operation recorded during a parallel window and
  /// replayed at the barrier. Writes carry their payload in the recording
  /// lane's arena (payload_off). `t` is the virtual time the operation
  /// executed on its shard; replay uses it for arbitration (ready_at),
  /// switchover deadlines, and trace timestamps.
  struct SpineOp {
    SimTime t;
    u32 node;
    enum class Kind : u8 { kLinkDown = 0, kLinkUp = 1, kSpeed = 2, kWrite = 3 } kind;
    u32 word_addr = 0;
    u32 nwords = 0;
    usize payload_off = 0;
    SimTime word_period = 0;  // block pacing; 0 for single-word writes
    double factor = 1.0;      // kSpeed only
  };

  /// Per-shard recording lane. Cache-line aligned so two shards appending
  /// concurrently never share a line through the vector headers.
  struct alignas(64) Lane {
    std::vector<SpineOp> ops;       // nondecreasing t (shard executes in order)
    std::vector<u32> payload;       // write payload arena
    std::vector<Walk*> released;    // walks finished on this shard this window
  };

  /// Schedule one packet of `words` (already applied to the sender's bank);
  /// earliest injection time is `ready_at`; `issue_t` is the host-write
  /// time (trace timestamp). Returns when the packet finishes serializing
  /// onto the ring.
  SimTime inject_packet(u32 src, u32 word_addr, std::span<const u32> words,
                        SimTime ready_at, SimTime issue_t);

  /// Delivery time of hop `k` for this walk (same formula the per-node
  /// event posting used: done + k*hop, pushed past switchover on the
  /// redundant ring when the path was broken at injection).
  SimTime hop_time(const Walk& w, u32 k) const;
  void walk_hop(Walk* w);
  void walk_advance(Walk* w);
  void post_first_hop(Walk* w);

  Walk* acquire_walk();
  void release_walk(Walk* w);

  void deliver(u32 dst, u32 word_addr, const u32* words, u32 nwords);

  /// True while host-side ring operations must be recorded instead of
  /// applied: a parallel window is executing over a partitioned ring.
  bool deferred() const { return !shard_of_.empty() && sim_.in_parallel_run(); }
  void apply_fail(u32 node, SimTime t);
  void on_barrier();
  void replay_op(const SpineOp& op, const u32* payload);

  /// Sequential-kernel write batching: record `op` (+ payload words) and
  /// make sure a flush event at the current timestamp is queued. The flush
  /// replays every write recorded at that instant sorted by (node, kind) --
  /// the same order the sharded spine's barrier merge uses -- so
  /// same-picosecond medium arbitration is node-ordered in every kernel.
  void seq_record(const SpineOp& op, std::span<const u32> words);
  void seq_flush();

  sim::Simulation& sim_;
  RingConfig cfg_;
  std::vector<std::vector<u32>> banks_;     // [node][word]
  std::vector<SimTime> tx_free_;            // per-node insertion engine
  SimTime ring_free_ = 0;                   // shared medium
  std::vector<IrqRange> irq_;               // per-node interrupt watch
  std::vector<bool> link_failed_;           // hop node -> node+1 broken
  std::vector<double> speed_factor_;        // per-node TX serialization scale
  SimTime recover_at_ = 0;                  // redundant switchover deadline
  std::deque<Walk> walk_pool_;              // stable-address packet states
  Walk* walk_free_ = nullptr;
  std::vector<u32> shard_of_;               // node -> shard (empty: unpartitioned)
  std::vector<Lane> lanes_;                 // one recording lane per shard
  struct MergeRef {
    const SpineOp* op;
    const Lane* lane;
  };
  std::vector<MergeRef> spine_merge_;       // barrier scratch, capacity reused
  std::vector<SpineOp> seq_ops_;            // same-instant sequential batch
  std::vector<u32> seq_payload_;            // its payload arena
  bool seq_flush_posted_ = false;
  std::vector<u64> irq_fired_;              // per node (written by its shard)
  Counter packets_, words_, lost_, switchovers_;
};

}  // namespace scrnet::scramnet
