// SCRAMNet replicated shared-memory ring -- discrete-event device model.
//
// Every node owns a memory bank replicated across the ring. A host write
// lands in the local bank immediately and is injected onto the ring as a
// packet; the packet visits each downstream node after k hop latencies and
// updates that node's bank on arrival. Packets from one sender stay in
// FIFO order (register-insertion rings guarantee this and the BillBoard
// Protocol depends on it); packets from *different* senders may be applied
// at different nodes in different relative orders -- the non-coherence the
// paper describes in Section 2.
//
// Bandwidth is modeled at two choke points: a per-node insertion engine
// and the shared ring medium, both running at the mode's data rate.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "scramnet/config.h"
#include "sim/simulation.h"

namespace scrnet::scramnet {

class Ring {
 public:
  Ring(sim::Simulation& sim, RingConfig cfg);

  const RingConfig& config() const { return cfg_; }
  u32 nodes() const { return cfg_.nodes; }
  u32 bank_words() const { return cfg_.bank_words; }
  sim::Simulation& simulation() { return sim_; }

  /// Host writes one word at `node` (immediate locally, replicated on ring).
  void host_write(u32 node, u32 word_addr, u32 value);

  /// Host writes a block; injections are paced at `word_period` apart so the
  /// ring transfer overlaps the host's PIO burst (start of pacing = now).
  void host_write_block(u32 node, u32 word_addr, std::span<const u32> words,
                        SimTime word_period);

  /// Host reads from the local bank (the replicated copy at `node`).
  u32 host_read(u32 node, u32 word_addr) const;
  void host_read_block(u32 node, u32 word_addr, std::span<u32> out) const;

  /// Register an interrupt handler fired when a *network-delivered* write
  /// lands at `node` inside [lo_addr, hi_addr). Used by the interrupt-driven
  /// receive ablation (the paper's "future work" direction).
  void set_interrupt(u32 node, u32 lo_addr, u32 hi_addr,
                     std::function<void(u32 addr)> handler);
  void clear_interrupt(u32 node);

  /// Virtual time at which the write issued at `node` right now would have
  /// fully propagated to every other node (useful for tests).
  SimTime full_propagation_bound() const;

  // -- fault injection ------------------------------------------------------

  /// Fail the link from `node` to its downstream neighbor, effective now.
  /// With cfg.redundant_ring the fabric recovers after cfg.switchover and
  /// affected deliveries are delayed; without it they are lost.
  void fail_link(u32 node);
  /// Repair the link (takes effect for packets injected afterwards).
  void heal_link(u32 node);
  bool link_failed(u32 node) const { return link_failed_[node]; }
  u64 packets_lost() const { return lost_.get(); }

  // -- statistics ----------------------------------------------------------
  u64 packets_sent() const { return packets_.get(); }
  u64 words_replicated() const { return words_.get(); }
  u64 interrupts_fired() const { return irqs_.get(); }

 private:
  struct IrqRange {
    u32 lo = 0, hi = 0;
    std::function<void(u32)> handler;
  };

  /// Schedule one packet of `words` (already applied to the sender's bank);
  /// earliest injection time is `ready_at`. Returns when the packet finishes
  /// serializing onto the ring.
  SimTime inject_packet(u32 src, u32 word_addr, std::vector<u32> words, SimTime ready_at);

  void deliver(u32 dst, u32 word_addr, const std::vector<u32>& words);

  sim::Simulation& sim_;
  RingConfig cfg_;
  std::vector<std::vector<u32>> banks_;     // [node][word]
  std::vector<SimTime> tx_free_;            // per-node insertion engine
  SimTime ring_free_ = 0;                   // shared medium
  std::vector<IrqRange> irq_;               // per-node interrupt watch
  std::vector<bool> link_failed_;           // hop node -> node+1 broken
  SimTime recover_at_ = 0;                  // redundant switchover deadline
  Counter packets_, words_, irqs_, lost_;
};

}  // namespace scrnet::scramnet
