// SimHostPort: MemPort implementation binding one simulated process to one
// node of the discrete-event Ring, with PCI-era PIO timing.
#pragma once

#include <cassert>
#include <memory>

#include "scramnet/config.h"
#include "scramnet/port.h"
#include "scramnet/ring.h"
#include "sim/simulation.h"

namespace scrnet::scramnet {

class SimHostPort final : public MemPort {
 public:
  SimHostPort(Ring& ring, u32 node, sim::Process& proc, HostTimings timings = {})
      : ring_(ring), node_(node), proc_(proc), t_(timings) {}

  u32 node() const override { return node_; }
  u32 nodes() const override { return ring_.nodes(); }
  u32 bank_words() const override { return ring_.bank_words(); }

  /// Attach this port's fault dials (fault::FaultPlan owns them and mutates
  /// them from scheduled events). nullptr (the default) means nominal.
  void set_dials(const PortDials* d) { dials_ = d; }

  void write_u32(u32 word_addr, u32 value) override {
    // Posted write: the bus transaction costs pio_write, after which the
    // word is in the NIC and on its way around the ring.
    proc_.delay(io_t(t_.pio_write));
    ring_.host_write(node_, word_addr, value);
  }

  u32 read_u32(u32 word_addr) override {
    // Non-posted PCI read: the CPU stalls for the full round trip and the
    // value it gets is the bank content at completion time.
    proc_.delay(io_t(t_.pio_read));
    return ring_.host_read(node_, word_addr);
  }

  void write_block(u32 word_addr, std::span<const u32> words) override {
    if (words.empty()) return;
    // Inject paced chunks first (pacing starts now), then burn the host
    // burst time; ring serialization overlaps the PIO burst.
    ring_.host_write_block(node_, word_addr, words, io_t(t_.burst_write_word));
    proc_.delay(io_t(t_.pio_write +
                     static_cast<SimTime>(words.size() - 1) * t_.burst_write_word));
  }

  void read_block(u32 word_addr, std::span<u32> out) override {
    if (out.empty()) return;
    proc_.delay(io_t(t_.pio_read +
                     static_cast<SimTime>(out.size() - 1) * t_.burst_read_word));
    ring_.host_read_block(node_, word_addr, out);
  }

  SimTime now() const override { return proc_.now(); }
  void poll_pause() override { proc_.delay(cpu_t(t_.poll_gap)); }
  void cpu_delay(SimTime dt) override { proc_.delay(cpu_t(dt)); }

  u32 peek_u32(u32 word_addr) override { return ring_.host_read(node_, word_addr); }

  // -- DMA (Section 2: "programmed I/O or DMA") -----------------------------

  bool has_dma() const override { return true; }

  void dma_write(u32 word_addr, std::span<const u32> words) override {
    if (words.empty()) return;
    // CPU: descriptor + doorbell, then the NIC masters the bus while the
    // process is free; ordering with later port writes is preserved by the
    // ring's per-sender insertion engine (tx_free_).
    proc_.delay(io_t(t_.dma_setup));
    ring_.host_write_block(node_, word_addr, words, io_t(t_.dma_per_word));
    proc_.delay(io_t(t_.dma_complete));
  }

  // -- interrupt-driven receive (paper Section 7 future work) --------------

  bool supports_wait_write() const override { return true; }

  void watch_range(u32 lo, u32 hi) override {
    if (!irq_) irq_ = std::make_unique<sim::Signal>(proc_.simulation());
    ring_.set_interrupt(node_, lo, hi, [this](u32) {
      ++pending_irqs_;
      irq_->notify_all();
    });
  }

  void wait_write() override {
    assert(irq_ && "watch_range() must be armed before wait_write()");
    while (pending_irqs_ == 0) irq_->wait(proc_);
    pending_irqs_ = 0;
    proc_.delay(t_.irq_dispatch);  // handler + process wakeup
  }

  const HostTimings& timings() const { return t_; }
  sim::Process& process() { return proc_; }

 private:
  SimTime io_t(SimTime t) const { return dials_ ? dial_scale(t, dials_->io) : t; }
  SimTime cpu_t(SimTime t) const { return dials_ ? dial_scale(t, dials_->cpu) : t; }

  Ring& ring_;
  u32 node_;
  sim::Process& proc_;
  HostTimings t_;
  const PortDials* dials_ = nullptr;
  std::unique_ptr<sim::Signal> irq_;
  u64 pending_irqs_ = 0;
};

}  // namespace scrnet::scramnet
