#include "scramnet/hierarchy.h"

#include <cassert>
#include <memory>
#include <stdexcept>

namespace scrnet::scramnet {

RingHierarchy::RingHierarchy(sim::Simulation& sim, HierarchyConfig cfg)
    : sim_(sim), cfg_(cfg) {
  if (cfg_.leaf_rings < 2 || cfg_.nodes_per_ring < 1)
    throw std::invalid_argument("hierarchy: need >=2 rings");
  if (cfg_.total_nodes() < 2) throw std::invalid_argument("hierarchy: too small");
  banks_.assign(cfg_.total_nodes(), std::vector<u32>(cfg_.bank_words, 0u));
  ring_free_.assign(cfg_.leaf_rings + 1, 0);
  tx_free_.assign(cfg_.total_nodes(), 0);
}

SimTime RingHierarchy::serialize(u32 ring, u32 payload_bytes, SimTime ready_at) {
  SimTime& free = ring_free_[ring];
  const SimTime start = std::max(ready_at, free);
  const SimTime done = start + cfg_.packet_occupancy(payload_bytes);
  free = done;
  return done;
}

u32 RingHierarchy::chain_node(const Chain& c, u32 k) const {
  const u32 m = cfg_.nodes_per_ring;
  if (c.kind == Chain::Kind::kLeaf) return c.ring * m + (c.start + k) % m;
  return ((c.start + k) % cfg_.leaf_rings) * m;  // bridge of the k-th ring on
}                                                // from the source ring

RingHierarchy::Chain* RingHierarchy::acquire_chain() {
  if (chain_free_ == nullptr) {
    chain_pool_.emplace_back();
    return &chain_pool_.back();
  }
  Chain* c = chain_free_;
  chain_free_ = c->next_free;
  return c;
}

void RingHierarchy::release_chain(Chain* c) {
  c->words.reset();
  c->next_free = chain_free_;
  chain_free_ = c;
}

// Deliver step k, then as many later steps as the kernel's inline-apply
// bound allows inside this one host event; when the next step's time
// becomes observable, fall back to a real event posted from the previous
// step's own tick (relaying there first if we coalesced past it) so
// same-picosecond event ordering stays as close to the one-event-per-node
// scheme as insertion order allows. Delivery times are bit-identical --
// only the host event count changes.
void RingHierarchy::chain_step(Chain* c) {
  for (;;) {
    const u32 node = chain_node(*c, c->k);
    auto& bank = banks_[node];
    assert(c->word_addr + c->words->size() <= bank.size());
    for (usize i = 0; i < c->words->size(); ++i)
      bank[c->word_addr + i] = (*c->words)[i];
    sim_.note_inline_apply(c->t0 + static_cast<SimTime>(c->k - 1) * c->stride);
    if (c->k >= c->last) break;
    const SimTime t_prev = c->t0 + static_cast<SimTime>(c->k - 1) * c->stride;
    ++c->k;
    const SimTime t = c->t0 + static_cast<SimTime>(c->k - 1) * c->stride;
    if (t >= sim_.inline_apply_bound()) {
      if (sim_.now() != t_prev) {
        Chain* chain = c;
        --chain->k;  // re-enter at the already-delivered step
        sim_.post_at(t_prev, [this, chain] { chain_resume(chain); });
      } else {
        sim_.post_at(t, [this, c] { chain_step(c); });
      }
      return;
    }
  }
  release_chain(c);
}

// Relay landing: step c->k is already delivered; continue from the check.
void RingHierarchy::chain_resume(Chain* c) {
  if (c->k >= c->last) {
    release_chain(c);
    return;
  }
  ++c->k;
  const SimTime t = c->t0 + static_cast<SimTime>(c->k - 1) * c->stride;
  if (t >= sim_.inline_apply_bound()) {
    sim_.post_at(t, [this, c] { chain_step(c); });
    return;
  }
  chain_step(c);  // bound moved: deliver inline and keep coalescing
}

void RingHierarchy::start_chain(Chain::Kind kind, u32 ring, u32 start,
                                SimTime t0, SimTime stride, u32 last,
                                u32 word_addr,
                                const std::shared_ptr<std::vector<u32>>& words) {
  if (last == 0) return;  // single-node ring: nothing downstream
  Chain* c = acquire_chain();
  c->t0 = t0;
  c->stride = stride;
  c->k = 1;
  c->last = last;
  c->ring = ring;
  c->start = start;
  c->kind = kind;
  c->word_addr = word_addr;
  c->words = words;
  sim_.post_at(t0, [this, c] { chain_step(c); });
}

void RingHierarchy::inject(u32 src, u32 word_addr, std::vector<u32> words,
                           SimTime ready_at) {
  const u32 payload = static_cast<u32>(words.size()) * 4u;
  const u32 src_ring = ring_of(src);
  const u32 m = cfg_.nodes_per_ring;
  packets_.inc();
  auto shared = std::make_shared<std::vector<u32>>(std::move(words));

  // 1. Source leaf ring: per-sender serialization, then hop-by-hop. One
  // chain covers all m-1 downstream nodes.
  const SimTime leaf_start = std::max(ready_at, tx_free_[src]);
  const SimTime leaf_done = serialize(src_ring, payload, leaf_start);
  tx_free_[src] = leaf_done;
  const u32 src_local = local_of(src);
  const SimTime at_bridge =   // bridge is m - local hops downstream of src
      src_local == 0 ? leaf_done
                     : leaf_done + static_cast<SimTime>(m - src_local) * cfg_.leaf_hop;
  start_chain(Chain::Kind::kLeaf, src_ring, src_local, leaf_done + cfg_.leaf_hop,
              cfg_.leaf_hop, m - 1, word_addr, shared);
  if (cfg_.leaf_rings < 2) return;

  // 2. Bridge forwards onto the backbone (store-and-forward).
  backbone_packets_.inc();
  const SimTime bb_ready = at_bridge + cfg_.bridge_latency;
  const SimTime bb_done = serialize(cfg_.leaf_rings, payload, bb_ready);

  // 3. Backbone visits the other bridges (one chain for all of them); each
  // forwards into its leaf ring (one chain per ring -- the down-ring start
  // times come from per-ring serialization, so they share no stride).
  start_chain(Chain::Kind::kBridges, 0, src_ring, bb_done + cfg_.backbone_hop,
              cfg_.backbone_hop, cfg_.leaf_rings - 1, word_addr, shared);
  for (u32 j = 1; j < cfg_.leaf_rings; ++j) {
    const u32 ring = (src_ring + j) % cfg_.leaf_rings;
    const SimTime at_other_bridge =
        bb_done + static_cast<SimTime>(j) * cfg_.backbone_hop;

    // 4. Down into the leaf ring.
    const SimTime down_ready = at_other_bridge + cfg_.bridge_latency;
    const SimTime down_done = serialize(ring, payload, down_ready);
    start_chain(Chain::Kind::kLeaf, ring, 0, down_done + cfg_.leaf_hop,
                cfg_.leaf_hop, m - 1, word_addr, shared);
  }
}

void RingHierarchy::host_write(u32 node, u32 word_addr, u32 value) {
  assert(node < nodes() && word_addr < cfg_.bank_words);
  banks_[node][word_addr] = value;
  inject(node, word_addr, {value}, sim_.now());
}

void RingHierarchy::host_write_block(u32 node, u32 word_addr,
                                     std::span<const u32> words,
                                     SimTime word_period) {
  assert(node < nodes());
  assert(word_addr + words.size() <= cfg_.bank_words);
  if (words.empty()) return;
  const u32 chunk_words =
      cfg_.mode == PacketMode::kFixed4 ? 1u : cfg_.max_var_packet_bytes / 4u;
  auto& bank = banks_[node];
  usize off = 0;
  while (off < words.size()) {
    const usize n = std::min<usize>(chunk_words, words.size() - off);
    std::vector<u32> chunk(words.begin() + static_cast<std::ptrdiff_t>(off),
                           words.begin() + static_cast<std::ptrdiff_t>(off + n));
    for (usize i = 0; i < n; ++i) bank[word_addr + off + i] = chunk[i];
    inject(node, word_addr + static_cast<u32>(off), std::move(chunk),
           sim_.now() + static_cast<SimTime>(off) * word_period);
    off += n;
  }
}

u32 RingHierarchy::host_read(u32 node, u32 word_addr) const {
  assert(node < nodes() && word_addr < cfg_.bank_words);
  return banks_[node][word_addr];
}

void RingHierarchy::host_read_block(u32 node, u32 word_addr,
                                    std::span<u32> out) const {
  assert(node < nodes());
  assert(word_addr + out.size() <= cfg_.bank_words);
  const auto& bank = banks_[node];
  for (usize i = 0; i < out.size(); ++i) out[i] = bank[word_addr + i];
}

SimTime RingHierarchy::full_propagation_bound() const {
  const u32 m = cfg_.nodes_per_ring;
  const SimTime occ = cfg_.packet_occupancy(
      cfg_.mode == PacketMode::kFixed4 ? 4u : cfg_.max_var_packet_bytes);
  // Worst path: full leaf traversal to the bridge, backbone all the way
  // round, bridge down, full leaf traversal again; three serializations.
  return 3 * occ + 2 * cfg_.bridge_latency +
         static_cast<SimTime>(2 * (m - 1)) * cfg_.leaf_hop +
         static_cast<SimTime>(cfg_.leaf_rings - 1) * cfg_.backbone_hop;
}

}  // namespace scrnet::scramnet
