#include "scramnet/hierarchy.h"

#include <cassert>
#include <memory>
#include <stdexcept>

namespace scrnet::scramnet {

RingHierarchy::RingHierarchy(sim::Simulation& sim, HierarchyConfig cfg)
    : sim_(sim), cfg_(cfg) {
  if (cfg_.leaf_rings < 2 || cfg_.nodes_per_ring < 1)
    throw std::invalid_argument("hierarchy: need >=2 rings");
  if (cfg_.total_nodes() < 2) throw std::invalid_argument("hierarchy: too small");
  banks_.assign(cfg_.total_nodes(), std::vector<u32>(cfg_.bank_words, 0u));
  ring_free_.assign(cfg_.leaf_rings + 1, 0);
  tx_free_.assign(cfg_.total_nodes(), 0);
}

SimTime RingHierarchy::serialize(u32 ring, u32 payload_bytes, SimTime ready_at) {
  SimTime& free = ring_free_[ring];
  const SimTime start = std::max(ready_at, free);
  const SimTime done = start + cfg_.packet_occupancy(payload_bytes);
  free = done;
  return done;
}

void RingHierarchy::deliver_at(SimTime at, u32 node, u32 word_addr,
                               const std::shared_ptr<std::vector<u32>>& words) {
  sim_.post_at(at, [this, node, word_addr, words] {
    auto& bank = banks_[node];
    assert(word_addr + words->size() <= bank.size());
    for (usize i = 0; i < words->size(); ++i) bank[word_addr + i] = (*words)[i];
  });
}

void RingHierarchy::inject(u32 src, u32 word_addr, std::vector<u32> words,
                           SimTime ready_at) {
  const u32 payload = static_cast<u32>(words.size()) * 4u;
  const u32 src_ring = ring_of(src);
  const u32 m = cfg_.nodes_per_ring;
  packets_.inc();
  auto shared = std::make_shared<std::vector<u32>>(std::move(words));

  // 1. Source leaf ring: per-sender serialization, then hop-by-hop.
  const SimTime leaf_start = std::max(ready_at, tx_free_[src]);
  const SimTime leaf_done = serialize(src_ring, payload, leaf_start);
  tx_free_[src] = leaf_done;
  SimTime at_bridge = leaf_done;  // if src IS the bridge
  for (u32 k = 1; k < m; ++k) {
    const u32 local = (local_of(src) + k) % m;
    const u32 dst = src_ring * m + local;
    const SimTime at = leaf_done + static_cast<SimTime>(k) * cfg_.leaf_hop;
    deliver_at(at, dst, word_addr, shared);
    if (local == 0) at_bridge = at;  // bridge reached after this many hops
  }
  if (cfg_.leaf_rings < 2) return;

  // 2. Bridge forwards onto the backbone (store-and-forward).
  backbone_packets_.inc();
  const SimTime bb_ready = at_bridge + cfg_.bridge_latency;
  const SimTime bb_done = serialize(cfg_.leaf_rings, payload, bb_ready);

  // 3. Backbone visits the other bridges; each forwards into its leaf ring.
  for (u32 j = 1; j < cfg_.leaf_rings; ++j) {
    const u32 ring = (src_ring + j) % cfg_.leaf_rings;
    const SimTime at_other_bridge =
        bb_done + static_cast<SimTime>(j) * cfg_.backbone_hop;
    const u32 bridge_node = ring * m;
    deliver_at(at_other_bridge, bridge_node, word_addr, shared);

    // 4. Down into the leaf ring.
    const SimTime down_ready = at_other_bridge + cfg_.bridge_latency;
    const SimTime down_done = serialize(ring, payload, down_ready);
    for (u32 k = 1; k < m; ++k) {
      const u32 dst = ring * m + k;
      deliver_at(down_done + static_cast<SimTime>(k) * cfg_.leaf_hop, dst,
                 word_addr, shared);
    }
  }
}

void RingHierarchy::host_write(u32 node, u32 word_addr, u32 value) {
  assert(node < nodes() && word_addr < cfg_.bank_words);
  banks_[node][word_addr] = value;
  inject(node, word_addr, {value}, sim_.now());
}

void RingHierarchy::host_write_block(u32 node, u32 word_addr,
                                     std::span<const u32> words,
                                     SimTime word_period) {
  assert(node < nodes());
  assert(word_addr + words.size() <= cfg_.bank_words);
  if (words.empty()) return;
  const u32 chunk_words =
      cfg_.mode == PacketMode::kFixed4 ? 1u : cfg_.max_var_packet_bytes / 4u;
  auto& bank = banks_[node];
  usize off = 0;
  while (off < words.size()) {
    const usize n = std::min<usize>(chunk_words, words.size() - off);
    std::vector<u32> chunk(words.begin() + static_cast<std::ptrdiff_t>(off),
                           words.begin() + static_cast<std::ptrdiff_t>(off + n));
    for (usize i = 0; i < n; ++i) bank[word_addr + off + i] = chunk[i];
    inject(node, word_addr + static_cast<u32>(off), std::move(chunk),
           sim_.now() + static_cast<SimTime>(off) * word_period);
    off += n;
  }
}

u32 RingHierarchy::host_read(u32 node, u32 word_addr) const {
  assert(node < nodes() && word_addr < cfg_.bank_words);
  return banks_[node][word_addr];
}

void RingHierarchy::host_read_block(u32 node, u32 word_addr,
                                    std::span<u32> out) const {
  assert(node < nodes());
  assert(word_addr + out.size() <= cfg_.bank_words);
  const auto& bank = banks_[node];
  for (usize i = 0; i < out.size(); ++i) out[i] = bank[word_addr + i];
}

SimTime RingHierarchy::full_propagation_bound() const {
  const u32 m = cfg_.nodes_per_ring;
  const SimTime occ = cfg_.packet_occupancy(
      cfg_.mode == PacketMode::kFixed4 ? 4u : cfg_.max_var_packet_bytes);
  // Worst path: full leaf traversal to the bridge, backbone all the way
  // round, bridge down, full leaf traversal again; three serializations.
  return 3 * occ + 2 * cfg_.bridge_latency +
         static_cast<SimTime>(2 * (m - 1)) * cfg_.leaf_hop +
         static_cast<SimTime>(cfg_.leaf_rings - 1) * cfg_.backbone_hop;
}

}  // namespace scrnet::scramnet
