// ThreadBackend: replicated-memory emulation on real OS threads.
//
// This is the "emulate SCRAMNet via shared memory" substitution path: each
// emulated node owns a bank of std::atomic words; a write is applied to the
// writer's own bank first and then to every other bank. All stores/loads
// are seq_cst, which gives the two properties the BillBoard Protocol needs
// from the hardware:
//   * per-sender FIFO: another node that observes a later write from sender
//     S also observes all earlier writes from S;
//   * single-writer words need no locks.
// It is deliberately *stronger* than real SCRAMNet (no propagation delay);
// DelayedThreadBackend in this header adds an asynchronous per-node applier
// that restores the delay/non-coherence for stress tests.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "scramnet/port.h"

namespace scrnet::scramnet {

class ThreadBackend {
 public:
  ThreadBackend(u32 nodes, u32 bank_words);

  u32 nodes() const { return nodes_; }
  u32 bank_words() const { return bank_words_; }

  void write(u32 src_node, u32 word_addr, u32 value);
  void write_block(u32 src_node, u32 word_addr, std::span<const u32> words);
  u32 read(u32 node, u32 word_addr) const;
  void read_block(u32 node, u32 word_addr, std::span<u32> out) const;

 private:
  u32 nodes_;
  u32 bank_words_;
  // One flat array per node; atomics sized once in the constructor.
  std::vector<std::unique_ptr<std::atomic<u32>[]>> banks_;
};

/// MemPort over ThreadBackend. Timing hooks are no-ops (real threads run at
/// real speed); poll_pause yields the OS thread.
class ThreadPort final : public MemPort {
 public:
  ThreadPort(ThreadBackend& backend, u32 node) : b_(backend), node_(node) {}

  u32 node() const override { return node_; }
  u32 nodes() const override { return b_.nodes(); }
  u32 bank_words() const override { return b_.bank_words(); }

  void write_u32(u32 word_addr, u32 value) override { b_.write(node_, word_addr, value); }
  u32 read_u32(u32 word_addr) override { return b_.read(node_, word_addr); }
  void write_block(u32 word_addr, std::span<const u32> words) override {
    b_.write_block(node_, word_addr, words);
  }
  void read_block(u32 word_addr, std::span<u32> out) override {
    b_.read_block(node_, word_addr, out);
  }
  void poll_pause() override { std::this_thread::yield(); }
  void cpu_delay(SimTime) override {}

 private:
  ThreadBackend& b_;
  u32 node_;
};

/// DelayedThreadBackend: like ThreadBackend but remote banks are updated by
/// a per-node applier thread draining per-sender FIFO queues, so remote
/// visibility is asynchronous and different nodes can observe concurrent
/// writers in different orders -- the real ring's non-coherence.
class DelayedThreadBackend {
 public:
  DelayedThreadBackend(u32 nodes, u32 bank_words);
  ~DelayedThreadBackend();

  DelayedThreadBackend(const DelayedThreadBackend&) = delete;
  DelayedThreadBackend& operator=(const DelayedThreadBackend&) = delete;

  u32 nodes() const { return nodes_; }
  u32 bank_words() const { return bank_words_; }

  void write(u32 src_node, u32 word_addr, u32 value);
  void write_block(u32 src_node, u32 word_addr, std::span<const u32> words);
  u32 read(u32 node, u32 word_addr) const;
  void read_block(u32 node, u32 word_addr, std::span<u32> out) const;

  /// Block until every queued write has been applied everywhere.
  void quiesce();

 private:
  struct Update {
    u32 addr;
    std::vector<u32> words;
  };
  struct NodeApplier {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Update> q;
    bool stop = false;
    std::thread thread;
    std::atomic<u64> enqueued{0};
    std::atomic<u64> applied{0};
  };

  void applier_main(u32 node);

  u32 nodes_;
  u32 bank_words_;
  std::vector<std::unique_ptr<std::atomic<u32>[]>> banks_;
  std::vector<std::unique_ptr<NodeApplier>> appliers_;
};

/// MemPort over DelayedThreadBackend.
class DelayedThreadPort final : public MemPort {
 public:
  DelayedThreadPort(DelayedThreadBackend& backend, u32 node) : b_(backend), node_(node) {}

  u32 node() const override { return node_; }
  u32 nodes() const override { return b_.nodes(); }
  u32 bank_words() const override { return b_.bank_words(); }

  void write_u32(u32 word_addr, u32 value) override { b_.write(node_, word_addr, value); }
  u32 read_u32(u32 word_addr) override { return b_.read(node_, word_addr); }
  void write_block(u32 word_addr, std::span<const u32> words) override {
    b_.write_block(node_, word_addr, words);
  }
  void read_block(u32 word_addr, std::span<u32> out) override {
    b_.read_block(node_, word_addr, out);
  }
  void poll_pause() override { std::this_thread::yield(); }
  void cpu_delay(SimTime) override {}

 private:
  DelayedThreadBackend& b_;
  u32 node_;
};

}  // namespace scrnet::scramnet
