#include "bbp/endpoint.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "common/bytes.h"

namespace scrnet::bbp {

namespace {
/// Wrap-aware sequence comparison (u32 sequence space).
inline bool seq_less(u32 a, u32 b) { return static_cast<i32>(a - b) < 0; }
}  // namespace

Endpoint::Endpoint(scramnet::MemPort& port, u32 procs, u32 me, Config cfg)
    : port_(port), layout_(port.bank_words(), procs, cfg.slots), cfg_(cfg), me_(me) {
  if (me >= procs) throw std::invalid_argument("bbp: rank out of range");
  slot_.resize(cfg_.slots);
  sent_flag_mirror_.assign(procs, 0);
  ack_base_.assign(procs, 0);
  ack_out_mirror_.assign(procs, 0);
  seen_msg_.assign(procs, 0);
  inq_.resize(procs);
  head_ = tail_ = layout_.data_base(me_);
  if (cfg_.recv_mode == RecvMode::kInterrupt && port_.supports_wait_write()) {
    mode_ = RecvMode::kInterrupt;
    // Any network write into my control partition (MESSAGE flags, ACK
    // flags) must wake me; descriptors of *other* processes live in their
    // regions and never interrupt here.
    port_.watch_range(layout_.region_base(me_),
                      layout_.region_base(me_) + layout_.control_words());
  }
}

void Endpoint::blocked_wait() {
  if (mode_ == RecvMode::kInterrupt) {
    port_.wait_write();
  } else {
    port_.poll_pause();
  }
}

// ---------------------------------------------------------------------------
// Send side
// ---------------------------------------------------------------------------

Result<u32> Endpoint::alloc_slot(u32 len_bytes, bool block) {
  const u32 words = words_for_bytes(len_bytes);
  const u32 base = layout_.data_base(me_);
  const u32 end = data_end();

  auto try_space = [&]() -> std::optional<u32> {
    if (words == 0) return head_;
    if (data_empty_) {
      head_ = tail_ = base;  // normalize when idle
      if (words <= layout_.data_words) return head_;
      return std::nullopt;
    }
    if (head_ >= tail_) {
      if (words <= end - head_) return head_;
      if (words < tail_ - base) return base;  // wrap (strict: keep head!=tail)
      return std::nullopt;
    }
    if (words < tail_ - head_) return head_;  // strict: full != empty
    return std::nullopt;
  };

  bool stalled = false;
  for (;;) {
    if (live_.size() < cfg_.slots) {
      if (auto off = try_space()) {
        // Find a free slot id (one must exist: live_.size() < slots).
        u32 id = 0;
        while (slot_[id].in_use) ++id;
        if (words > 0) {
          if (*off == base && head_ >= tail_ && !data_empty_) head_ = base;  // committed wrap
          head_ = *off + words;
        }
        data_empty_ = false;
        if (words == 0 && live_.empty()) data_empty_ = true;  // no space consumed
        return id;
      }
    }
    collect_garbage();
    // Retry immediately after GC before deciding to stall.
    if (live_.size() < cfg_.slots) {
      if (auto off = try_space()) {
        u32 id = 0;
        while (slot_[id].in_use) ++id;
        if (words > 0) head_ = *off + words;
        data_empty_ = false;
        if (words == 0 && live_.empty()) data_empty_ = true;
        return id;
      }
    }
    if (!block) return Status::NoSpace("billboard full");
    if (!stalled) {
      ++stats_.send_stalls;
      stalled = true;
    }
    blocked_wait();
  }
}

void Endpoint::collect_garbage() {
  ++stats_.gc_runs;
  u32 interested = 0;
  for (u32 id : live_) interested |= slot_[id].pending;
  for (u32 r = 0; r < layout_.procs; ++r) {
    if (!((interested >> r) & 1u)) continue;
    port_.cpu_delay(cfg_.cpu.gc_cpu);
    const u32 cur = port_.read_u32(layout_.ack_flag_addr(me_, r));
    const u32 changed = cur ^ ack_base_[r];
    if (!changed) continue;
    for (u32 b = 0; b < cfg_.slots; ++b) {
      if (!((changed >> b) & 1u)) continue;
      Slot& s = slot_[b];
      if (s.in_use && ((s.pending >> r) & 1u)) {
        s.pending &= ~(1u << r);
        ack_base_[r] ^= (1u << b);
      }
      // A toggled bit for a slot we are not waiting on would be a protocol
      // violation (receiver acked a slot never sent to it); surface loudly.
      else {
        assert(false && "bbp: unexpected ACK toggle");
      }
    }
  }
  // Reclaim completed slots in FIFO order; the circular allocator frees
  // space only from the tail, mirroring the paper's on-demand GC.
  while (!live_.empty() && slot_[live_.front()].pending == 0) {
    const u32 id = live_.front();
    live_.pop_front();
    slot_[id].in_use = false;
    ++stats_.slots_reclaimed;
    if (live_.empty()) {
      data_empty_ = true;
      head_ = tail_ = layout_.data_base(me_);
    } else {
      tail_ = slot_[live_.front()].offset_words;
    }
  }
}

Status Endpoint::post(u32 dest_mask, std::span<const u8> payload, bool block) {
  if (dest_mask == 0) return Status::InvalidArg("bbp: empty destination set");
  if (dest_mask >> layout_.procs) return Status::InvalidArg("bbp: destination out of range");
  if (payload.size() > layout_.max_message_bytes())
    return Status::InvalidArg("bbp: message exceeds data partition");
  const u32 len_bytes = static_cast<u32>(payload.size());

  port_.cpu_delay(cfg_.cpu.send_setup);
  Result<u32> slot_id = alloc_slot(len_bytes, block);
  if (!slot_id.ok()) return slot_id.status();
  const u32 id = slot_id.value();

  Slot& s = slot_[id];
  s.in_use = true;
  s.seq = seq_next_++;
  s.len_bytes = len_bytes;
  s.pending = dest_mask;
  s.offset_words = (len_bytes == 0) ? head_ : head_ - words_for_bytes(len_bytes);
  live_.push_back(id);

  // 1. payload into the billboard (zero-copy from the user buffer);
  if (len_bytes > 0) {
    const std::vector<u32> words = pack_words(payload);
    if (len_bytes >= cfg_.dma_threshold_bytes && port_.has_dma()) {
      port_.dma_write(s.offset_words, words);
      ++stats_.dma_sends;
    } else {
      port_.write_block(s.offset_words, words);
    }
  }
  // 2. descriptor;
  const u32 desc[3] = {s.seq, s.offset_words, s.len_bytes};
  port_.write_block(layout_.desc_addr(me_, id), desc);
  // 3. toggle the MESSAGE bit at every destination (single-step multicast).
  u32 ndest = 0;
  for (u32 r = 0; r < layout_.procs; ++r) {
    if (!((dest_mask >> r) & 1u)) continue;
    port_.cpu_delay(cfg_.cpu.send_per_dest);
    sent_flag_mirror_[r] ^= (1u << id);
    port_.write_u32(layout_.msg_flag_addr(r, me_), sent_flag_mirror_[r]);
    ++ndest;
  }
  if (ndest > 1)
    ++stats_.mcasts;
  else
    ++stats_.sends;
  return Status::Ok();
}

Status Endpoint::send(u32 dest, std::span<const u8> payload) {
  if (dest >= layout_.procs) return Status::InvalidArg("bbp: bad dest");
  return post(1u << dest, payload, /*block=*/true);
}

Status Endpoint::try_send(u32 dest, std::span<const u8> payload) {
  if (dest >= layout_.procs) return Status::InvalidArg("bbp: bad dest");
  return post(1u << dest, payload, /*block=*/false);
}

Status Endpoint::mcast(std::span<const u32> dests, std::span<const u8> payload) {
  u32 mask = 0;
  for (u32 d : dests) {
    if (d >= layout_.procs) return Status::InvalidArg("bbp: bad dest");
    mask |= 1u << d;
  }
  return post(mask, payload, /*block=*/true);
}

Status Endpoint::try_mcast(std::span<const u32> dests, std::span<const u8> payload) {
  u32 mask = 0;
  for (u32 d : dests) {
    if (d >= layout_.procs) return Status::InvalidArg("bbp: bad dest");
    mask |= 1u << d;
  }
  return post(mask, payload, /*block=*/false);
}

// ---------------------------------------------------------------------------
// Receive side
// ---------------------------------------------------------------------------

bool Endpoint::poll_sender(u32 s) {
  ++stats_.polls;
  const u32 cur = port_.read_u32(layout_.msg_flag_addr(me_, s));
  u32 changed = cur ^ seen_msg_[s];
  if (!changed) return false;
  while (changed) {
    const u32 b = static_cast<u32>(std::countr_zero(changed));
    changed &= changed - 1;
    port_.cpu_delay(cfg_.cpu.recv_detect);
    u32 desc[3] = {0, 0, 0};
    port_.read_block(layout_.desc_addr(s, b), desc);
    Incoming in{s, b, desc[0], desc[1], desc[2]};
    // In-order delivery: insert by sender sequence number (bits can be
    // discovered out of slot order after wrap-around).
    auto& q = inq_[s];
    auto it = q.end();
    while (it != q.begin() && seq_less(in.seq, std::prev(it)->seq)) --it;
    q.insert(it, in);
    seen_msg_[s] ^= (1u << b);
  }
  return true;
}

bool Endpoint::poll_all() {
  bool any = false;
  for (u32 s = 0; s < layout_.procs; ++s) any = poll_sender(s) || any;
  return any;
}

Result<RecvInfo> Endpoint::deliver(Incoming msg, std::span<u8> buf) {
  RecvInfo info;
  info.src = msg.src;
  info.len = msg.len_bytes;
  info.copied = static_cast<u32>(
      std::min<usize>(msg.len_bytes, buf.size()));
  info.truncated = info.copied < msg.len_bytes;

  if (info.copied > 0) {
    std::vector<u32> words(words_for_bytes(info.copied));
    port_.read_block(msg.offset_words, words);
    unpack_into(words, buf, info.copied);
  }
  port_.cpu_delay(cfg_.cpu.recv_deliver);

  // Acknowledge: toggle my bit for this slot in the sender's partition.
  ack_out_mirror_[msg.src] ^= (1u << msg.slot);
  port_.write_u32(layout_.ack_flag_addr(msg.src, me_), ack_out_mirror_[msg.src]);
  ++stats_.recvs;
  return info;
}

Result<RecvInfo> Endpoint::recv(u32 src, std::span<u8> buf) {
  if (src >= layout_.procs) return Status::InvalidArg("bbp: bad src");
  while (inq_[src].empty()) {
    if (!poll_sender(src)) blocked_wait();
  }
  Incoming msg = inq_[src].front();
  inq_[src].pop_front();
  return deliver(msg, buf);
}

Result<RecvInfo> Endpoint::recv_any(std::span<u8> buf) {
  for (;;) {
    for (u32 i = 0; i < layout_.procs; ++i) {
      const u32 s = (rr_next_ + i) % layout_.procs;
      if (!inq_[s].empty()) {
        rr_next_ = (s + 1) % layout_.procs;
        Incoming msg = inq_[s].front();
        inq_[s].pop_front();
        return deliver(msg, buf);
      }
    }
    if (!poll_all()) blocked_wait();
  }
}

std::optional<u32> Endpoint::msg_avail() {
  port_.cpu_delay(cfg_.cpu.msg_avail);
  for (u32 i = 0; i < layout_.procs; ++i) {
    const u32 s = (rr_next_ + i) % layout_.procs;
    if (!inq_[s].empty()) return s;
  }
  // Poll flag words round-robin and stop at the first sender with news --
  // an avail check does not need to sweep every sender.
  for (u32 i = 0; i < layout_.procs; ++i) {
    const u32 s = (rr_next_ + i) % layout_.procs;
    if (poll_sender(s) && !inq_[s].empty()) return s;
  }
  return std::nullopt;
}

bool Endpoint::msg_avail_from(u32 src) {
  if (src >= layout_.procs) return false;
  port_.cpu_delay(cfg_.cpu.msg_avail);
  if (!inq_[src].empty()) return true;
  poll_sender(src);
  return !inq_[src].empty();
}

std::optional<u32> Endpoint::peek_len(u32 src) {
  if (src >= layout_.procs) return std::nullopt;
  if (inq_[src].empty()) poll_sender(src);
  if (inq_[src].empty()) return std::nullopt;
  return inq_[src].front().len_bytes;
}

void Endpoint::drain() {
  while (inflight() > 0) {
    collect_garbage();
    if (inflight() > 0) blocked_wait();
  }
}

u32 Endpoint::inflight() const {
  u32 n = 0;
  for (const Slot& s : slot_)
    if (s.in_use) ++n;
  return n;
}

}  // namespace scrnet::bbp
