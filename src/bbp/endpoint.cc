#include "bbp/endpoint.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <string>

#include "bbp/validator.h"
#include "common/bytes.h"
#include "obs/counters.h"
#include "obs/trace.h"

// Protocol-invariant hooks (see bbp/validator.h): compiled in only under
// -DSCRNET_BBP_VALIDATE=ON; a regular build pays nothing.
#if defined(SCRNET_BBP_VALIDATE)
#define BBP_VALIDATE(ep, where) ::scrnet::bbp::Validator::check((ep), (where))
#else
#define BBP_VALIDATE(ep, where) ((void)0)
#endif

namespace scrnet::bbp {

namespace {
/// Wrap-aware sequence comparison (u32 sequence space).
inline bool seq_less(u32 a, u32 b) { return static_cast<i32>(a - b) < 0; }
}  // namespace

Endpoint::Endpoint(scramnet::MemPort& port, u32 procs, u32 me, Config cfg)
    : port_(port),
      layout_(port.bank_words(), procs, cfg.slots,
              words_for_bytes(cfg.rndv_window_bytes)),
      cfg_(cfg),
      me_(me) {
  if (me >= procs) throw std::invalid_argument("bbp: rank out of range");
  slot_.resize(cfg_.slots);
  sent_flag_mirror_.assign(procs, 0);
  ack_base_.assign(procs, 0);
  ack_out_mirror_.assign(procs, 0);
  seen_msg_.assign(procs, 0);
  inq_.resize(procs);
  last_deliv_seq_.assign(procs, 0);
  head_ = tail_ = layout_.data_base(me_);
  if (cfg_.recv_mode == RecvMode::kInterrupt && port_.supports_wait_write()) {
    mode_ = RecvMode::kInterrupt;
    // Any network write into my control partition (MESSAGE flags, ACK
    // flags) must wake me; descriptors of *other* processes live in their
    // regions and never interrupt here.
    port_.watch_range(layout_.region_base(me_),
                      layout_.region_base(me_) + layout_.control_words());
  }
}

void Endpoint::blocked_wait() {
  // A configured timeout needs time to advance even when the awaited write
  // never arrives; an interrupt sleep would park forever, so poll instead.
  if (mode_ == RecvMode::kInterrupt && cfg_.poll_timeout == 0) {
    port_.wait_write();
  } else {
    port_.poll_pause();
  }
}

// ---------------------------------------------------------------------------
// Send side
// ---------------------------------------------------------------------------

Result<u32> Endpoint::alloc_slot(u32 len_bytes, bool block) {
  const u32 words = words_for_bytes(len_bytes);
  const u32 base = layout_.data_base(me_);
  const u32 end = data_end();

  // Where can a `words`-sized payload go? Zero-length messages occupy no
  // data space and record offset = base, so a stale cursor value can never
  // leak into tail_ tracking when GC later walks past them.
  auto try_space = [&]() -> std::optional<u32> {
    if (words == 0) return base;
    if (data_empty_) {
      if (words <= layout_.data_words) return base;
      return std::nullopt;
    }
    if (head_ >= tail_) {
      if (words <= end - head_) return head_;
      if (words < tail_ - base) return base;  // wrap (strict: keep head!=tail)
      return std::nullopt;
    }
    if (words < tail_ - head_) return head_;  // strict: full != empty
    return std::nullopt;
  };

  // Claim a free slot id (one must exist: live_.size() < slots) and commit
  // the allocator cursor for an accepted offset.
  auto accept = [&](u32 off) -> u32 {
    u32 id = 0;
    while (slot_[id].in_use) ++id;
    slot_[id].offset_words = off;
    if (words > 0) {
      if (data_empty_) {
        tail_ = base;  // normalize when idle
        data_empty_ = false;
      }
      head_ = off + words;
    }
    return id;
  };

  bool stalled = false;
  const SimTime deadline = wait_deadline();
  for (;;) {
    // First pass uses the current state; the second reconciles ACKs (GC)
    // and retries before deciding to stall or fail.
    for (int pass = 0; pass < 2; ++pass) {
      if (pass == 1) collect_garbage();
      if (live_.size() < cfg_.slots) {
        if (auto off = try_space()) return accept(*off);
      }
    }
    if (!block) return Status::NoSpace("billboard full");
    if (deadline_passed(deadline)) {
      ++stats_.timeouts;
      return Status::TimedOut("bbp: send waited out poll_timeout for space");
    }
    if (!stalled) {
      ++stats_.send_stalls;
      TRACE_INSTANT(obs::Layer::kBbp, me_, "bbp.send_stall", port_);
      stalled = true;
    }
    blocked_wait();
  }
}

void Endpoint::collect_garbage() {
  TRACE_SPAN(obs::Layer::kBbp, me_, "bbp.gc", port_);
  ++stats_.gc_runs;
  // Only receivers some live slot still waits on are worth an ACK-word
  // read: O(active destinations), not O(procs) -- at N=256 an idle GC pass
  // touches nothing.
  DestSet interested;
  for (u32 id : live_) interested.or_with(slot_[id].pending);
  interested.for_each([&](u32 r) {
    port_.cpu_delay(cfg_.cpu.gc_cpu);
    const u32 cur = port_.read_u32(layout_.ack_flag_addr(me_, r));
    const u32 changed = cur ^ ack_base_[r];
    if (!changed) return;
    for (u32 b = 0; b < cfg_.slots; ++b) {
      if (!((changed >> b) & 1u)) continue;
      Slot& s = slot_[b];
      if (s.in_use && s.pending.test(r)) {
        s.pending.clear(r);
        ack_base_[r] ^= (1u << b);
      }
      // A toggled bit for a slot we are not waiting on would be a protocol
      // violation (receiver acked a slot never sent to it); surface loudly.
      else {
        assert(false && "bbp: unexpected ACK toggle");
      }
    }
  });
  // Reclaim completed slots in FIFO order; the circular allocator frees
  // space only from the tail, mirroring the paper's on-demand GC.
  while (!live_.empty() && slot_[live_.front()].pending.empty()) {
    const u32 id = live_.front();
    live_.pop_front();
    slot_[id].in_use = false;
    ++stats_.slots_reclaimed;
  }
  // Recompute the data extent. tail_ must follow the oldest live *payload*
  // slot: zero-length slots occupy no data words, and letting one of them
  // drag tail_ onto head_ made try_space read an empty partition as full
  // (spurious kNoSpace / send stalls).
  data_empty_ = true;
  for (u32 id : live_) {
    if (slot_[id].len_bytes == 0) continue;
    tail_ = slot_[id].offset_words;
    data_empty_ = false;
    break;
  }
  if (data_empty_) head_ = tail_ = layout_.data_base(me_);
  BBP_VALIDATE(*this, "collect_garbage");
}

Status Endpoint::post(const DestSet& dests, std::span<const u8> payload,
                      bool block) {
  TRACE_SPAN(obs::Layer::kBbp, me_, "bbp.post", port_);
  if (dests.empty()) return Status::InvalidArg("bbp: empty destination set");
  if (!dests.within(layout_.procs))
    return Status::InvalidArg("bbp: destination out of range");
  if (payload.size() > layout_.max_message_bytes())
    return Status::InvalidArg("bbp: message exceeds data partition");
  const u32 len_bytes = static_cast<u32>(payload.size());

  port_.cpu_delay(cfg_.cpu.send_setup);
  Result<u32> slot_id = alloc_slot(len_bytes, block);
  if (!slot_id.ok()) return slot_id.status();
  const u32 id = slot_id.value();

  // alloc_slot already recorded the payload offset in the slot it chose.
  Slot& s = slot_[id];
  s.in_use = true;
  s.seq = seq_next_++;
  s.len_bytes = len_bytes;
  s.pending = dests;
  live_.push_back(id);

  // 1. payload into the billboard (zero-copy from the user buffer);
  if (len_bytes > 0) {
    const std::vector<u32> words = pack_words(payload);
    if (len_bytes >= cfg_.dma_threshold_bytes && port_.has_dma()) {
      port_.dma_write(s.offset_words, words);
      ++stats_.dma_sends;
    } else {
      port_.write_block(s.offset_words, words);
    }
  }
  // 2. descriptor;
  const u32 desc[3] = {s.seq, s.offset_words, s.len_bytes};
  port_.write_block(layout_.desc_addr(me_, id), desc);
  // 3. toggle the MESSAGE bit at every destination (single-step multicast);
  // the DestSet walk visits members only, so a unicast at N=256 costs one
  // word write, not a 256-bit scan.
  u32 ndest = 0;
  dests.for_each([&](u32 r) {
    port_.cpu_delay(cfg_.cpu.send_per_dest);
    sent_flag_mirror_[r] ^= (1u << id);
    port_.write_u32(layout_.msg_flag_addr(r, me_), sent_flag_mirror_[r]);
    ++ndest;
  });
  if (ndest > 1)
    ++stats_.mcasts;
  else
    ++stats_.sends;
  BBP_VALIDATE(*this, "post");
  return Status::Ok();
}

Status Endpoint::send(u32 dest, std::span<const u8> payload) {
  if (dest >= layout_.procs) return Status::InvalidArg("bbp: bad dest");
  return post(DestSet::single(dest), payload, /*block=*/true);
}

Status Endpoint::try_send(u32 dest, std::span<const u8> payload) {
  if (dest >= layout_.procs) return Status::InvalidArg("bbp: bad dest");
  return post(DestSet::single(dest), payload, /*block=*/false);
}

Status Endpoint::mcast(std::span<const u32> dests, std::span<const u8> payload) {
  DestSet set;
  for (u32 d : dests) {
    if (d >= layout_.procs) return Status::InvalidArg("bbp: bad dest");
    set.set(d);
  }
  return post(set, payload, /*block=*/true);
}

Status Endpoint::try_mcast(std::span<const u32> dests, std::span<const u8> payload) {
  DestSet set;
  for (u32 d : dests) {
    if (d >= layout_.procs) return Status::InvalidArg("bbp: bad dest");
    set.set(d);
  }
  return post(set, payload, /*block=*/false);
}

// ---------------------------------------------------------------------------
// Receive side
// ---------------------------------------------------------------------------

bool Endpoint::poll_sender(u32 s) {
  ++stats_.polls;
  const u32 cur = port_.read_u32(layout_.msg_flag_addr(me_, s));
  u32 changed = cur ^ seen_msg_[s];
  if (!changed) return false;
  while (changed) {
    const u32 b = static_cast<u32>(std::countr_zero(changed));
    changed &= changed - 1;
    port_.cpu_delay(cfg_.cpu.recv_detect);
    u32 desc[3] = {0, 0, 0};
    port_.read_block(layout_.desc_addr(s, b), desc);
    Incoming in{s, b, desc[0], desc[1], desc[2]};
    // In-order delivery: insert by sender sequence number (bits can be
    // discovered out of slot order after wrap-around).
    auto& q = inq_[s];
    auto it = q.end();
    while (it != q.begin() && seq_less(in.seq, std::prev(it)->seq)) --it;
    q.insert(it, in);
    seen_msg_[s] ^= (1u << b);
  }
  return true;
}

bool Endpoint::poll_all() {
  bool any = false;
  for (u32 s = 0; s < layout_.procs; ++s) any = poll_sender(s) || any;
  return any;
}

Result<RecvInfo> Endpoint::deliver(Incoming msg, std::span<u8> buf) {
  RecvInfo info;
  info.src = msg.src;
  info.len = msg.len_bytes;
  info.copied = static_cast<u32>(
      std::min<usize>(msg.len_bytes, buf.size()));
  info.truncated = info.copied < msg.len_bytes;

  if (info.copied > 0) {
    std::vector<u32> words(words_for_bytes(info.copied));
    port_.read_block(msg.offset_words, words);
    unpack_into(words, buf, info.copied);
  }
  port_.cpu_delay(cfg_.cpu.recv_deliver);

  // Acknowledge: toggle my bit for this slot in the sender's partition.
  ack_out_mirror_[msg.src] ^= (1u << msg.slot);
  port_.write_u32(layout_.ack_flag_addr(msg.src, me_), ack_out_mirror_[msg.src]);
  ++stats_.recvs;
  last_deliv_seq_[msg.src] = msg.seq;
  BBP_VALIDATE(*this, "deliver");
  return info;
}

Result<RecvInfo> Endpoint::recv(u32 src, std::span<u8> buf) {
  TRACE_SPAN(obs::Layer::kBbp, me_, "bbp.recv", port_);
  if (src >= layout_.procs) return Status::InvalidArg("bbp: bad src");
  const SimTime deadline = wait_deadline();
  while (inq_[src].empty()) {
    if (!poll_sender(src)) {
      if (deadline_passed(deadline)) {
        ++stats_.timeouts;
        return Status::TimedOut("bbp: recv waited out poll_timeout");
      }
      blocked_wait();
    }
  }
  Incoming msg = inq_[src].front();
  inq_[src].pop_front();
  return deliver(msg, buf);
}

Result<RecvInfo> Endpoint::recv_any(std::span<u8> buf) {
  TRACE_SPAN(obs::Layer::kBbp, me_, "bbp.recv_any", port_);
  const SimTime deadline = wait_deadline();
  for (;;) {
    for (u32 i = 0; i < layout_.procs; ++i) {
      const u32 s = (rr_next_ + i) % layout_.procs;
      if (!inq_[s].empty()) {
        rr_next_ = (s + 1) % layout_.procs;
        Incoming msg = inq_[s].front();
        inq_[s].pop_front();
        return deliver(msg, buf);
      }
    }
    if (!poll_all()) {
      if (deadline_passed(deadline)) {
        ++stats_.timeouts;
        return Status::TimedOut("bbp: recv_any waited out poll_timeout");
      }
      blocked_wait();
    }
  }
}

std::optional<u32> Endpoint::msg_avail() {
  port_.cpu_delay(cfg_.cpu.msg_avail);
  for (u32 i = 0; i < layout_.procs; ++i) {
    const u32 s = (rr_next_ + i) % layout_.procs;
    if (!inq_[s].empty()) return s;
  }
  // Poll flag words round-robin and stop at the first sender with news --
  // an avail check does not need to sweep every sender.
  for (u32 i = 0; i < layout_.procs; ++i) {
    const u32 s = (rr_next_ + i) % layout_.procs;
    if (poll_sender(s) && !inq_[s].empty()) return s;
  }
  return std::nullopt;
}

bool Endpoint::msg_avail_from(u32 src) {
  if (src >= layout_.procs) return false;
  port_.cpu_delay(cfg_.cpu.msg_avail);
  if (!inq_[src].empty()) return true;
  poll_sender(src);
  return !inq_[src].empty();
}

std::optional<u32> Endpoint::peek_len(u32 src) {
  if (src >= layout_.procs) return std::nullopt;
  if (inq_[src].empty()) poll_sender(src);
  if (inq_[src].empty()) return std::nullopt;
  return inq_[src].front().len_bytes;
}

Status Endpoint::drain() {
  TRACE_SPAN(obs::Layer::kBbp, me_, "bbp.drain", port_);
  const SimTime deadline = wait_deadline();
  while (inflight() > 0) {
    collect_garbage();
    if (inflight() > 0) {
      if (deadline_passed(deadline)) {
        ++stats_.timeouts;
        return Status::TimedOut("bbp: drain waited out poll_timeout");
      }
      blocked_wait();
    }
  }
  return Status::Ok();
}

u32 Endpoint::inflight() const {
  u32 n = 0;
  for (const Slot& s : slot_)
    if (s.in_use) ++n;
  return n;
}

// ---------------------------------------------------------------------------
// Zero-copy rendezvous window
// ---------------------------------------------------------------------------

Result<u32> Endpoint::rndv_reserve(u32 bytes) {
  if (layout_.rndv_words == 0)
    return Status::Unavailable("bbp: no rendezvous window configured");
  const u32 words = words_for_bytes(bytes);
  if (words == 0 || words > layout_.rndv_words) {
    ++stats_.rndv_rejects;
    return Status::NoSpace("bbp: reservation exceeds rendezvous window");
  }
  // First fit over the gaps between live extents (rndv_live_ is sorted).
  const u32 base = layout_.rndv_base(me_);
  const u32 end = base + layout_.rndv_words;
  u32 cursor = base;
  auto it = rndv_live_.begin();
  for (; it != rndv_live_.end(); ++it) {
    if (it->off_words - cursor >= words) break;
    cursor = it->off_words + it->words;
  }
  if (it == rndv_live_.end() && end - cursor < words) {
    ++stats_.rndv_rejects;
    return Status::NoSpace("bbp: rendezvous window full");
  }
  rndv_live_.insert(it, RndvExtent{cursor, words});
  ++stats_.rndv_reserves;
  return cursor;
}

void Endpoint::rndv_release(u32 addr_words, u32 bytes) {
  const u32 words = words_for_bytes(bytes);
  for (auto it = rndv_live_.begin(); it != rndv_live_.end(); ++it) {
    if (it->off_words == addr_words && it->words == words) {
      rndv_live_.erase(it);
      return;
    }
  }
}

Status Endpoint::rndv_put(u32 addr_words, std::span<const u8> payload) {
  TRACE_SPAN(obs::Layer::kBbp, me_, "bbp.rndv_put", port_);
  if (payload.empty()) return Status::Ok();
  // Straight from the user buffer onto the ring: no slot, no descriptor,
  // no staging copy. The alloc/bookkeeping cost of the slot path is gone;
  // only the send setup (address arithmetic) remains.
  port_.cpu_delay(cfg_.cpu.send_setup);
  const std::vector<u32> words = pack_words(payload);
  if (payload.size() >= cfg_.dma_threshold_bytes && port_.has_dma()) {
    port_.dma_write(addr_words, words);
    ++stats_.dma_sends;
  } else {
    port_.write_block(addr_words, words);
  }
  ++stats_.rndv_puts;
  stats_.rndv_put_bytes += payload.size();
  return Status::Ok();
}

Status Endpoint::rndv_read(u32 addr_words, std::span<u8> buf, u32 len) {
  TRACE_SPAN(obs::Layer::kBbp, me_, "bbp.rndv_read", port_);
  const u32 n = static_cast<u32>(std::min<usize>(len, buf.size()));
  if (n > 0) {
    std::vector<u32> words(words_for_bytes(n));
    port_.read_block(addr_words, words);
    unpack_into(words, buf, n);
  }
  port_.cpu_delay(cfg_.cpu.recv_deliver);
  return Status::Ok();
}

u32 Endpoint::rndv_reserved_bytes() const {
  u32 words = 0;
  for (const RndvExtent& e : rndv_live_) words += e.words;
  return words * 4;
}

// ---------------------------------------------------------------------------
// Observability / test hooks
// ---------------------------------------------------------------------------

void Endpoint::publish_counters(obs::Counters& c, std::string_view group) const {
  c.add(group, "sends", stats_.sends);
  c.add(group, "mcasts", stats_.mcasts);
  c.add(group, "recvs", stats_.recvs);
  c.add(group, "polls", stats_.polls);
  c.add(group, "gc_runs", stats_.gc_runs);
  c.add(group, "slots_reclaimed", stats_.slots_reclaimed);
  c.add(group, "send_stalls", stats_.send_stalls);
  c.add(group, "dma_sends", stats_.dma_sends);
  c.add(group, "timeouts", stats_.timeouts);
  c.add(group, "rndv_reserves", stats_.rndv_reserves);
  c.add(group, "rndv_rejects", stats_.rndv_rejects);
  c.add(group, "rndv_puts", stats_.rndv_puts);
  c.add(group, "rndv_put_bytes", stats_.rndv_put_bytes);
}

void Endpoint::corrupt_for_test(Corrupt what) {
  switch (what) {
    case Corrupt::kTail:
      // Shift tail_ off the oldest payload slot's offset; the extent walk
      // can no longer start at a live slot boundary.
      tail_ += 1;
      data_empty_ = false;
      break;
    case Corrupt::kDataEmpty:
      data_empty_ = !data_empty_;
      break;
    case Corrupt::kFlagMirror:
      sent_flag_mirror_[me_ == 0 ? layout_.procs - 1 : 0] ^= 1u;
      break;
    case Corrupt::kAckMirror:
      ack_out_mirror_[me_ == 0 ? layout_.procs - 1 : 0] ^= 1u;
      break;
    case Corrupt::kSeq: {
      // Duplicate sequence numbers violate strict per-sender monotonicity
      // whether or not anything was queued before.
      Incoming fake{0, 0, 42, layout_.data_base(0), 0};
      inq_[0].push_back(fake);
      inq_[0].push_back(fake);
      break;
    }
  }
}

}  // namespace scrnet::bbp
