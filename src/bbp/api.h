// The BillBoard Protocol API exactly as the paper presents it (Section 3):
//
//   "The BBP API is quite simple. It provides 5 functions for
//    initialization (bbp_init), sending (bbp_Send), receiving (bbp_Recv)
//    and multicasting messages (bbp_Mcast) and checking for newly arrived
//    messages (bbp_MsgAvail)."
//
// These are thin veneers over bbp::Endpoint so examples and benchmarks can
// be written against the published interface.
#pragma once

#include <memory>

#include "bbp/endpoint.h"

namespace scrnet::bbp {

class Bbp {
 public:
  Bbp() = default;

  /// bbp_init: join a BBP session of `nprocs` processes as rank `me`.
  Status init(scramnet::MemPort& port, u32 nprocs, u32 me, Config cfg = {}) {
    if (ep_) return Status::InvalidArg("bbp_init: already initialized");
    try {
      ep_ = std::make_unique<Endpoint>(port, nprocs, me, cfg);
    } catch (const std::invalid_argument& e) {
      return Status::InvalidArg(e.what());
    }
    return Status::Ok();
  }

  /// bbp_Send: blocking point-to-point send.
  Status Send(u32 dest, std::span<const u8> payload) {
    if (!ep_) return Status::Unavailable("bbp: not initialized");
    return ep_->send(dest, payload);
  }

  /// bbp_Recv: blocking receive from `src`; returns message info.
  Result<RecvInfo> Recv(u32 src, std::span<u8> buf) {
    if (!ep_) return Status::Unavailable("bbp: not initialized");
    return ep_->recv(src, buf);
  }

  /// Receive from any source.
  Result<RecvInfo> RecvAny(std::span<u8> buf) {
    if (!ep_) return Status::Unavailable("bbp: not initialized");
    return ep_->recv_any(buf);
  }

  /// bbp_Mcast: single-step multicast to an explicit destination list.
  Status Mcast(std::span<const u32> dests, std::span<const u8> payload) {
    if (!ep_) return Status::Unavailable("bbp: not initialized");
    return ep_->mcast(dests, payload);
  }

  /// bbp_MsgAvail: has any message arrived? (one poll pass)
  bool MsgAvail() { return ep_ && ep_->msg_avail().has_value(); }

  /// Access the full endpoint for operations beyond the 5-call API.
  Endpoint& endpoint() {
    assert(ep_);
    return *ep_;
  }
  bool initialized() const { return ep_ != nullptr; }

 private:
  std::unique_ptr<Endpoint> ep_;
};

}  // namespace scrnet::bbp
