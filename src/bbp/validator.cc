#include "bbp/validator.h"

#include <sstream>

#include "bbp/endpoint.h"
#include "common/bytes.h"

namespace scrnet::bbp {

namespace {
inline bool seq_leq(u32 a, u32 b) { return static_cast<i32>(a - b) <= 0; }

[[noreturn]] void fail(const char* where, const std::string& detail) {
  std::ostringstream os;
  os << "bbp invariant violated after " << where << ": " << detail;
  throw ValidationError(os.str());
}
}  // namespace

void Validator::check(Endpoint& ep, const char* where) {
  const Layout& lay = ep.layout_;
  const u32 base = lay.data_base(ep.me_);
  const u32 end = base + lay.data_words;

  // -- allocator ring consistency ------------------------------------------
  u32 live_seen = 0;  // bitmask of slot ids found in live_
  bool any_payload = false;
  for (u32 id : ep.live_) {
    if (id >= ep.cfg_.slots) fail(where, "live_ holds slot id " + std::to_string(id));
    if ((live_seen >> id) & 1u) fail(where, "live_ lists slot " + std::to_string(id) + " twice");
    live_seen |= 1u << id;
    if (!ep.slot_[id].in_use) fail(where, "live_ slot " + std::to_string(id) + " not in_use");
    if (ep.slot_[id].len_bytes > 0) any_payload = true;
  }
  for (u32 id = 0; id < ep.cfg_.slots; ++id) {
    if (ep.slot_[id].in_use && !((live_seen >> id) & 1u))
      fail(where, "in_use slot " + std::to_string(id) + " missing from live_");
  }

  if (ep.data_empty_ != !any_payload) {
    fail(where, std::string("data_empty_ is ") + (ep.data_empty_ ? "true" : "false") +
                    " but " + (any_payload ? "a" : "no") + " live payload slot exists");
  }
  if (ep.data_empty_) {
    if (ep.head_ != base || ep.tail_ != base)
      fail(where, "empty data partition but head_/tail_ not at base");
  } else {
    if (ep.head_ < base || ep.head_ > end || ep.tail_ < base || ep.tail_ > end)
      fail(where, "head_/tail_ outside the data partition");
    // Payload extents must tile [tail_ .. head_) in FIFO order with at most
    // one wrap back to base (and post-wrap extents strictly below tail_).
    u32 cursor = ep.tail_;
    bool wrapped = false;
    for (u32 id : ep.live_) {
      const Endpoint::Slot& s = ep.slot_[id];
      if (s.len_bytes == 0) continue;
      const u32 words = words_for_bytes(s.len_bytes);
      if (s.offset_words != cursor) {
        if (!wrapped && s.offset_words == base && cursor != base) {
          wrapped = true;
        } else {
          fail(where, "slot " + std::to_string(id) + " extent at " +
                          std::to_string(s.offset_words) + " does not follow cursor " +
                          std::to_string(cursor));
        }
      }
      cursor = s.offset_words + words;
      if (cursor > end) fail(where, "slot " + std::to_string(id) + " extent passes data end");
      if (wrapped && cursor >= ep.tail_)
        fail(where, "wrapped extents reach tail_ (allocator overcommitted)");
    }
    if (cursor != ep.head_)
      fail(where, "extent walk ends at " + std::to_string(cursor) + ", head_ is " +
                      std::to_string(ep.head_));
  }

  // -- flag mirrors vs billboard words -------------------------------------
  for (u32 r = 0; r < lay.procs; ++r) {
    const u32 msg_word = ep.port_.peek_u32(lay.msg_flag_addr(r, ep.me_));
    if (msg_word != ep.sent_flag_mirror_[r])
      fail(where, "MESSAGE word for receiver " + std::to_string(r) +
                      " disagrees with sent_flag_mirror_");
    const u32 ack_word = ep.port_.peek_u32(lay.ack_flag_addr(r, ep.me_));
    if (ack_word != ep.ack_out_mirror_[r])
      fail(where, "ACK word toward sender " + std::to_string(r) +
                      " disagrees with ack_out_mirror_");
    // Inbound ACK toggles GC has not reconciled yet must name slots still
    // pending at that receiver (anything else is a protocol violation).
    const u32 changed = ep.port_.peek_u32(lay.ack_flag_addr(ep.me_, r)) ^ ep.ack_base_[r];
    for (u32 b = 0; b < ep.cfg_.slots; ++b) {
      if (!((changed >> b) & 1u)) continue;
      if (!ep.slot_[b].in_use || !ep.slot_[b].pending.test(r))
        fail(where, "receiver " + std::to_string(r) + " acked slot " + std::to_string(b) +
                        " which is not pending at it");
    }
  }

  // -- per-sender sequence monotonicity ------------------------------------
  for (u32 s = 0; s < lay.procs; ++s) {
    u32 prev = ep.last_deliv_seq_[s];
    for (const Endpoint::Incoming& in : ep.inq_[s]) {
      if (prev != 0 && seq_leq(in.seq, prev))
        fail(where, "sender " + std::to_string(s) + " queue seq " + std::to_string(in.seq) +
                        " not after " + std::to_string(prev));
      prev = in.seq;
    }
  }
}

}  // namespace scrnet::bbp
