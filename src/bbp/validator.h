// BillBoard Protocol invariant checker.
//
// Validator::check() cross-examines an Endpoint's private state against the
// billboard words it mirrors (via MemPort::peek_u32, which costs no virtual
// time, so checking never perturbs simulated results):
//
//   * allocator ring consistency -- live_ is a duplicate-free FIFO of
//     exactly the in_use slots; data_empty_ holds iff no live slot carries
//     payload; payload extents walk contiguously from tail_ to head_ with
//     at most one wrap (see the invariant table in bbp/layout.h);
//   * flag-mirror agreement -- sent_flag_mirror_ / ack_out_mirror_ equal
//     the MESSAGE/ACK words in the local bank (this endpoint is their only
//     writer), and inbound ACK toggles not yet reconciled by GC only name
//     slots actually pending at that receiver;
//   * per-sender sequence monotonicity -- each inbound queue is strictly
//     increasing and strictly newer than the last delivered message.
//
// The class is always compiled so tests can call check() directly (and
// prove it fires via Endpoint::corrupt_for_test). Building with
// -DSCRNET_BBP_VALIDATE=ON additionally runs it after every post, garbage
// collection and delivery.
#pragma once

#include <stdexcept>
#include <string>

namespace scrnet::bbp {

class Endpoint;

/// Thrown by Validator::check when an invariant does not hold.
class ValidationError : public std::logic_error {
 public:
  explicit ValidationError(const std::string& what) : std::logic_error(what) {}
};

class Validator {
 public:
  /// Check every invariant; throws ValidationError naming the violated
  /// invariant and `where` (the protocol step just completed).
  static void check(Endpoint& ep, const char* where);
};

}  // namespace scrnet::bbp
