// BillBoard Protocol memory layout (Section 3 of the paper).
//
// The replicated SCRAMNet memory is divided equally among the P
// participating processes. Process i's region holds:
//
//   * a control partition:
//       - MESSAGE flag words, one per potential *sender* s: written only by
//         s; bit b toggles when s posts a message in its slot b for me;
//       - ACK flag words, one per potential *receiver* r: written only by
//         r; bit b toggles when r has consumed my slot b;
//       - buffer descriptors, one per slot, written only by the owner:
//         {seq, data offset, length in bytes};
//   * a data partition: the billboard itself, where message payloads are
//     posted and read directly by any receiver (zero copy at the sender).
//
// Every word has exactly one writer, which is what makes the protocol
// lock-free on non-coherent memory.
//
// Data-partition allocator invariants (maintained by Endpoint, asserted by
// bbp::Validator, documented here because the layout defines the extents):
//
//   * the allocator is circular over [data_base, data_base + data_words)
//     with cursors head_ (next free word) and tail_ (oldest live payload);
//     space is reclaimed from the tail only, in slot-allocation FIFO order;
//   * data_empty_ holds iff NO live slot carries payload; zero-length
//     messages consume a slot but no data words, record offset = data_base,
//     and never participate in head_/tail_ tracking (letting one define
//     tail_ once aliased it onto head_, which reads as a FULL partition);
//   * when data_empty_, head_ == tail_ == data_base (normalized);
//   * otherwise the live payload extents tile [tail_, head_) contiguously
//     in FIFO order with at most one wrap back to data_base, and wrapped
//     extents stay strictly below tail_ -- head_ == tail_ therefore always
//     means "full never happens": the allocator keeps head_ != tail_ by
//     rejecting a wrap that would close the gap (strict < checks).
#pragma once

#include <stdexcept>

#include "common/types.h"

namespace scrnet::bbp {

/// Words per buffer descriptor: [seq, offset(words, absolute), len(bytes)] +
/// one reserved word keeping descriptors 16-byte aligned.
inline constexpr u32 kDescWords = 4;

/// Maximum processes: MESSAGE/ACK words are per process pair; destination
/// sets are DestSet (inline u64 up to 64 procs, heap words above), so the
/// cap is a sanity bound on control-partition growth, not a mask width.
/// The per-slot flag bitmasks stay 32-bit, which is what caps kMaxSlots.
inline constexpr u32 kMaxProcs = 1024;
inline constexpr u32 kMaxSlots = 32;

struct Layout {
  u32 procs = 0;        // P
  u32 slots = 0;        // buffer slots per process (<= 32, one flag bit each)
  u32 region_words = 0; // bank_words / P
  u32 data_words = 0;   // payload capacity per process
  u32 rndv_words = 0;   // zero-copy rendezvous window per process (opt-in)

  Layout() = default;
  Layout(u32 bank_words, u32 procs_, u32 slots_, u32 rndv_words_ = 0)
      : procs(procs_), slots(slots_), rndv_words(rndv_words_) {
    if (procs < 2 || procs > kMaxProcs) throw std::invalid_argument("bbp: procs out of range");
    if (slots < 1 || slots > kMaxSlots) throw std::invalid_argument("bbp: slots out of range");
    region_words = bank_words / procs;
    const u32 control = control_words();
    if (region_words <= control + rndv_words + 16)
      throw std::invalid_argument("bbp: bank too small for layout");
    data_words = region_words - control - rndv_words;
  }

  /// Control partition size in words.
  u32 control_words() const { return 2 * procs + slots * kDescWords; }

  /// Base of process p's region.
  u32 region_base(u32 p) const { return p * region_words; }

  /// MESSAGE flag word in receiver r's region, written by sender s.
  u32 msg_flag_addr(u32 r, u32 s) const { return region_base(r) + s; }

  /// ACK flag word in sender s's region, written by receiver r.
  u32 ack_flag_addr(u32 s, u32 r) const { return region_base(s) + procs + r; }

  /// Descriptor for slot `b` of process p.
  u32 desc_addr(u32 p, u32 b) const {
    return region_base(p) + 2 * procs + b * kDescWords;
  }

  /// Data partition of process p: [data_base, data_base + data_words).
  u32 data_base(u32 p) const { return region_base(p) + control_words(); }

  /// Rendezvous window of process p: [rndv_base, rndv_base + rndv_words).
  /// Carved from the top of the region, above the circular data partition,
  /// so the eager-path allocator invariants (and bbp::Validator's extent
  /// checks over [data_base, data_base + data_words)) are untouched. Senders
  /// remote-write rendezvous payloads here at CTS-granted offsets.
  u32 rndv_base(u32 p) const { return data_base(p) + data_words; }

  /// Largest single message in bytes.
  u32 max_message_bytes() const { return data_words * 4; }
};

}  // namespace scrnet::bbp
