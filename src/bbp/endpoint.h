// BillBoard Protocol endpoint -- the paper's primary contribution.
//
// One Endpoint per participating process. The protocol is zero-copy at the
// sender (payload goes straight from the user buffer into SCRAMNet memory)
// and lock-free (every shared word has a single writer; signaling is done
// by *toggling* MESSAGE/ACK flag bits, so no word is ever contended).
//
// Send path (paper Section 3):
//   1. allocate a buffer in my data partition (garbage-collect on demand);
//   2. write the payload into the buffer;
//   3. write the buffer descriptor {seq, offset, len};
//   4. toggle the MESSAGE flag bit for this slot in each destination's
//      control partition -- one extra word write per extra receiver, which
//      is why multicast is a single-step algorithm here.
//
// Receive path:
//   1. poll my MESSAGE flag words and diff against remembered values;
//   2. for each toggled bit, read the sender's descriptor; queue the
//      message, ordered by sender sequence number (in-order delivery);
//   3. on delivery, read the payload from the sender's data partition and
//      toggle my ACK bit in the sender's control partition.
//
// The sender reclaims a slot once every destination's ACK bit has toggled.
#pragma once

#include <deque>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "common/units.h"
#include "bbp/destset.h"
#include "bbp/layout.h"
#include "scramnet/port.h"

namespace scrnet::obs {
class Counters;
}

namespace scrnet::bbp {

/// Protocol software-overhead model. On the simulated port these charge
/// virtual CPU time (calibrated so a 4-byte one-way send measures 7.8 us as
/// in the paper); on the real-threads port they are no-ops.
struct CpuCosts {
  SimTime send_setup = ns(600);    // alloc + slot bookkeeping
  SimTime send_per_dest = ns(60);  // destination-mask bookkeeping
  SimTime recv_detect = ns(150);   // flag diff + queue insert
  SimTime recv_deliver = ns(650);  // copy-out + API return bookkeeping
  SimTime gc_cpu = ns(120);        // reconcile one ack word
  SimTime msg_avail = ns(100);     // bbp_MsgAvail bookkeeping
};

/// How a blocked receiver waits for new MESSAGE/ACK flag toggles.
enum class RecvMode {
  kPolling,    // spin on PIO reads across the I/O bus (the paper's BBP)
  kInterrupt,  // sleep until the NIC interrupts on a control-partition
               // write (the paper's Section 7 future-work direction;
               // falls back to polling if the port cannot interrupt)
};

struct Config {
  u32 slots = 32;  // buffer slots per process (1..32)
  RecvMode recv_mode = RecvMode::kPolling;
  // Payloads of at least this many bytes go out via the NIC DMA engine
  // instead of PIO (paper Section 2 offers both). DMA frees the sender's
  // CPU during the transfer, which pipelines back-to-back sends; wire time
  // is unchanged. Default: disabled (the paper's BBP measurements are PIO).
  u32 dma_threshold_bytes = 0xFFFFFFFFu;
  // Bounded wait for every blocking loop (send stalls, recv polling,
  // drain): once a call has waited this much virtual time without the
  // condition holding it returns kTimedOut instead of spinning forever --
  // the degraded-mode behavior fault scenarios rely on. 0 (the default)
  // preserves the paper's semantics: block indefinitely (a permanently
  // lost flag toggle then parks the fiber until deadlock detection).
  // With a timeout set, a blocked endpoint always advances virtual time
  // by polling, even in kInterrupt mode (an interrupt sleep has no
  // wake-up when the awaited write was lost on the ring).
  SimTime poll_timeout = 0;
  // Zero-copy rendezvous window carved from the top of this process's
  // region (see Layout::rndv_base). 0 (the default) keeps the layout
  // exactly as the paper describes; nonzero shrinks the circular data
  // partition by this many bytes and enables rndv_reserve/rndv_put.
  u32 rndv_window_bytes = 0;
  CpuCosts cpu;
};

/// Result of a successful receive.
struct RecvInfo {
  u32 src = 0;
  u32 len = 0;       // full message length in bytes (may exceed copied bytes)
  u32 copied = 0;    // bytes copied into the caller's buffer
  bool truncated = false;
};

/// Endpoint statistics (virtual-cost-free; used by tests and benches).
struct EndpointStats {
  u64 sends = 0;
  u64 mcasts = 0;
  u64 recvs = 0;
  u64 polls = 0;
  u64 gc_runs = 0;
  u64 slots_reclaimed = 0;
  u64 send_stalls = 0;  // times send had to wait for space/slots
  u64 dma_sends = 0;    // payloads that went out via the DMA engine
  u64 timeouts = 0;     // blocking calls that gave up at poll_timeout
  u64 rndv_reserves = 0;   // rendezvous window reservations granted
  u64 rndv_rejects = 0;    // reservations refused (window full / too big)
  u64 rndv_puts = 0;       // remote-writes into a peer's window
  u64 rndv_put_bytes = 0;  // payload bytes remote-written (zero staging copy)
};

class Endpoint {
 public:
  /// `port` must outlive the endpoint. `me` is this process's BBP rank in
  /// [0, procs); typically port.node(), but decoupled so several BBP
  /// processes can share a node in tests.
  Endpoint(scramnet::MemPort& port, u32 procs, u32 me, Config cfg = {});

  u32 rank() const { return me_; }
  u32 procs() const { return layout_.procs; }
  const Layout& layout() const { return layout_; }
  const EndpointStats& stats() const { return stats_; }
  scramnet::MemPort& port() { return port_; }

  /// Point-to-point send (blocking until buffer space is available).
  Status send(u32 dest, std::span<const u8> payload);

  /// Single-step multicast: one payload write, one descriptor, one MESSAGE
  /// flag toggle per destination.
  Status mcast(std::span<const u32> dests, std::span<const u8> payload);

  /// Non-blocking send attempt; kNoSpace if the billboard is full even
  /// after garbage collection.
  Status try_send(u32 dest, std::span<const u8> payload);
  Status try_mcast(std::span<const u32> dests, std::span<const u8> payload);

  /// Blocking receive from a specific source; kTimedOut once
  /// cfg.poll_timeout (if nonzero) elapses with nothing delivered.
  Result<RecvInfo> recv(u32 src, std::span<u8> buf);

  /// Blocking receive from any source; kTimedOut as above.
  Result<RecvInfo> recv_any(std::span<u8> buf);

  /// bbp_MsgAvail: one poll pass; returns the source of a waiting message.
  std::optional<u32> msg_avail();
  /// Check for a waiting message from a specific source (one poll).
  bool msg_avail_from(u32 src);

  /// Length of the next queued message from src without consuming it
  /// (polls once if the queue is empty).
  std::optional<u32> peek_len(u32 src);

  /// Wait until all of this endpoint's outstanding sends are acknowledged;
  /// kTimedOut once cfg.poll_timeout (if nonzero) elapses with slots still
  /// in flight (their ACK toggles were lost -- e.g. a broken ring link).
  Status drain();

  /// Count of in-flight (unacknowledged) slots.
  u32 inflight() const;

  // -- zero-copy rendezvous window (cfg.rndv_window_bytes > 0) --------------
  // A receiver reserves an extent in its OWN window and ships the absolute
  // word address to the sender (inside the ADI's CTS); the sender's ring
  // writes then land the payload directly at that address -- no slot, no
  // descriptor, no staging copy on either side. Completion is signaled by
  // the sender's FIN packet on the regular slot path, which the ring's
  // per-sender write ordering guarantees arrives after the payload words.

  /// Reserve `bytes` in my window (first fit). kNoSpace when fragmented or
  /// full; kUnavailable when no window is configured.
  Result<u32> rndv_reserve(u32 bytes);
  /// Release a reservation made by rndv_reserve (idempotent per extent).
  void rndv_release(u32 addr_words, u32 bytes);
  /// Remote-write `payload` at `addr_words` in a peer's window.
  Status rndv_put(u32 addr_words, std::span<const u8> payload);
  /// Read `len` bytes from my window at `addr_words` into `buf` (the host
  /// read MPI semantics require; charged at PIO block-read cost).
  Status rndv_read(u32 addr_words, std::span<u8> buf, u32 len);
  /// Total bytes currently reserved (0 when all rendezvous completed).
  u32 rndv_reserved_bytes() const;

  /// Active receive mode (kInterrupt only if the port supports it).
  RecvMode recv_mode() const { return mode_; }

  /// Publish stats_ into the counter registry under `group` (e.g.
  /// "bbp.rank0"); the harness calls this when counters are enabled.
  void publish_counters(obs::Counters& c, std::string_view group) const;

  /// Fault injection for bbp::Validator tests: deliberately break one
  /// protocol invariant so the corresponding check provably fires.
  enum class Corrupt {
    kTail,        // point tail_ into the middle of a live extent
    kDataEmpty,   // flip data_empty_ against the live payload slots
    kFlagMirror,  // desync sent_flag_mirror_ from the MESSAGE word
    kAckMirror,   // desync ack_out_mirror_ from the ACK word
    kSeq,         // break per-sender sequence monotonicity in inq_
  };
  void corrupt_for_test(Corrupt what);

 private:
  friend class Validator;
  struct Slot {
    bool in_use = false;
    u32 seq = 0;
    u32 offset_words = 0;  // absolute word address of payload
    u32 len_bytes = 0;
    DestSet pending;       // receivers that have not acked yet
  };

  struct Incoming {
    u32 src;
    u32 slot;
    u32 seq;
    u32 offset_words;
    u32 len_bytes;
  };

  // -- send side -----------------------------------------------------------
  /// Allocate a slot + payload space; runs GC and (if `block`) waits.
  Result<u32> alloc_slot(u32 len_bytes, bool block);
  /// Reconcile ACK words and reclaim completed slots (FIFO order).
  void collect_garbage();
  Status post(const DestSet& dests, std::span<const u8> payload, bool block);

  // -- receive side --------------------------------------------------------
  /// One poll pass over sender s's MESSAGE flag word; enqueues new arrivals.
  bool poll_sender(u32 s);
  /// One poll pass over all senders; true if anything was enqueued.
  bool poll_all();
  Result<RecvInfo> deliver(Incoming msg, std::span<u8> buf);

  u32 data_end() const { return layout_.data_base(me_) + layout_.data_words; }

  /// Back off while blocked: poll_pause or interrupt sleep per mode_
  /// (always poll_pause when a poll_timeout is configured).
  void blocked_wait();
  /// Deadline for the blocking call starting now; 0 = none.
  SimTime wait_deadline() const {
    return cfg_.poll_timeout > 0 ? port_.now() + cfg_.poll_timeout : 0;
  }
  bool deadline_passed(SimTime deadline) const {
    return deadline != 0 && port_.now() >= deadline;
  }

  scramnet::MemPort& port_;
  Layout layout_;
  Config cfg_;
  u32 me_;
  RecvMode mode_ = RecvMode::kPolling;

  // Sender state.
  u32 seq_next_ = 1;
  std::vector<Slot> slot_;
  std::deque<u32> live_;            // slot ids in allocation (FIFO) order
  u32 head_ = 0, tail_ = 0;         // circular data allocator (word offsets,
                                    // absolute addresses within my data part)
  bool data_empty_ = true;
  std::vector<u32> sent_flag_mirror_;  // per receiver: my MESSAGE word value
  std::vector<u32> ack_base_;          // per receiver: last reconciled ACK word

  // Receiver-as-acker state: value of the ACK word I write into each
  // sender's control partition (I am its only writer, so a mirror is exact).
  std::vector<u32> ack_out_mirror_;

  // Receiver state.
  std::vector<u32> seen_msg_;          // per sender: last observed MESSAGE word
  std::vector<std::deque<Incoming>> inq_;  // per sender, seq-ordered
  std::vector<u32> last_deliv_seq_;    // per sender: last delivered seq (0 = none)
  u32 rr_next_ = 0;                    // round-robin scan position

  // Rendezvous window reservations (my region only), sorted by offset.
  struct RndvExtent {
    u32 off_words;
    u32 words;
  };
  std::vector<RndvExtent> rndv_live_;

  EndpointStats stats_;
};

}  // namespace scrnet::bbp
