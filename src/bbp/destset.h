// Wide destination sets for the billboard protocol.
//
// The protocol's per-slot bookkeeping ("which receivers have not acked
// slot b yet") and the post() fan-out both used a u32 bitmask, which
// capped the addressable world at 32 procs (ROADMAP item 1). DestSet is
// the small-vector replacement: ranks 0..63 live in one inline u64 --
// the common case allocates nothing and compares/merges in a single
// word -- and ranks 64+ spill into heap words. All iteration is
// word-skipping, so flag-mirror scans and GC cost O(members + procs/64)
// words, not O(procs) bits.
#pragma once

#include <bit>
#include <vector>

#include "common/types.h"

namespace scrnet::bbp {

class DestSet {
 public:
  DestSet() = default;

  static DestSet single(u32 r) {
    DestSet s;
    s.set(r);
    return s;
  }

  void set(u32 r) {
    if (r < 64) {
      lo_ |= u64{1} << r;
      return;
    }
    const u32 w = r / 64 - 1;
    if (w >= hi_.size()) hi_.resize(w + 1, 0);
    hi_[w] |= u64{1} << (r % 64);
  }

  void clear(u32 r) {
    if (r < 64) {
      lo_ &= ~(u64{1} << r);
      return;
    }
    const u32 w = r / 64 - 1;
    if (w < hi_.size()) {
      hi_[w] &= ~(u64{1} << (r % 64));
      // Keep the representation canonical so == stays a plain compare.
      while (!hi_.empty() && hi_.back() == 0) hi_.pop_back();
    }
  }

  bool test(u32 r) const {
    if (r < 64) return (lo_ >> r) & 1u;
    const u32 w = r / 64 - 1;
    return w < hi_.size() && ((hi_[w] >> (r % 64)) & 1u);
  }

  bool empty() const { return lo_ == 0 && hi_.empty(); }

  u32 count() const {
    u32 n = static_cast<u32>(std::popcount(lo_));
    for (u64 w : hi_) n += static_cast<u32>(std::popcount(w));
    return n;
  }

  /// True iff every member rank is < procs.
  bool within(u32 procs) const {
    if (procs >= 64 + 64 * hi_.size()) return true;
    if (procs <= 64) {
      // Canonical hi_ never ends in a zero word, so non-empty means some
      // rank >= 64 is set.
      if (!hi_.empty()) return false;
      return procs == 64 || (lo_ >> procs) == 0;
    }
    const u32 w = procs / 64 - 1;  // hi_ word holding rank procs-1
    const u32 rem = procs % 64;
    // Words at and past the boundary must be empty; when procs is mid-word
    // the boundary word may keep its low `rem` bits.
    for (u32 i = rem == 0 ? w : w + 1; i < hi_.size(); ++i)
      if (hi_[i] != 0) return false;
    return rem == 0 || w >= hi_.size() || (hi_[w] >> rem) == 0;
  }

  void or_with(const DestSet& o) {
    lo_ |= o.lo_;
    if (o.hi_.size() > hi_.size()) hi_.resize(o.hi_.size(), 0);
    for (usize i = 0; i < o.hi_.size(); ++i) hi_[i] |= o.hi_[i];
  }

  /// Visit every member rank in ascending order, skipping empty words.
  template <typename F>
  void for_each(F&& f) const {
    for (u64 w = lo_; w != 0; w &= w - 1)
      f(static_cast<u32>(std::countr_zero(w)));
    for (usize i = 0; i < hi_.size(); ++i) {
      const u32 base = 64 + static_cast<u32>(i) * 64;
      for (u64 w = hi_[i]; w != 0; w &= w - 1)
        f(base + static_cast<u32>(std::countr_zero(w)));
    }
  }

  friend bool operator==(const DestSet& a, const DestSet& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

 private:
  u64 lo_ = 0;            // ranks 0..63 (inline; the whole set for P <= 64)
  std::vector<u64> hi_;   // ranks 64+, canonical (no trailing zero words)
};

}  // namespace scrnet::bbp
