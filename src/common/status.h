// Lightweight Status / Result types (no exceptions on hot paths).
//
// The protocol layers (BBP, scrmpi) report recoverable conditions --
// buffer exhaustion, truncation, no-message-available -- through these
// types rather than exceptions; programming errors still assert.
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace scrnet {

enum class StatusCode {
  kOk = 0,
  kNoSpace,        // data partition / queue exhausted even after GC
  kTruncated,      // receive buffer smaller than the message
  kNotFound,       // no matching message / entity
  kInvalidArg,     // caller error detectable at runtime
  kUnavailable,    // resource not usable in this state
  kInternal,       // invariant violation surfaced as an error
  kTimedOut,       // bounded wait expired before the condition held
};

/// Human-readable name for a StatusCode.
constexpr std::string_view to_string(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNoSpace: return "NO_SPACE";
    case StatusCode::kTruncated: return "TRUNCATED";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kInvalidArg: return "INVALID_ARG";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kTimedOut: return "TIMED_OUT";
  }
  return "UNKNOWN";
}

/// A status with optional message. Cheap to copy when OK.
class Status {
 public:
  Status() = default;
  explicit Status(StatusCode code, std::string msg = {})
      : code_(code), msg_(std::move(msg)) {}

  static Status Ok() { return Status{}; }
  static Status NoSpace(std::string m = {}) { return Status(StatusCode::kNoSpace, std::move(m)); }
  static Status Truncated(std::string m = {}) { return Status(StatusCode::kTruncated, std::move(m)); }
  static Status NotFound(std::string m = {}) { return Status(StatusCode::kNotFound, std::move(m)); }
  static Status InvalidArg(std::string m = {}) { return Status(StatusCode::kInvalidArg, std::move(m)); }
  static Status Unavailable(std::string m = {}) { return Status(StatusCode::kUnavailable, std::move(m)); }
  static Status Internal(std::string m = {}) { return Status(StatusCode::kInternal, std::move(m)); }
  static Status TimedOut(std::string m = {}) { return Status(StatusCode::kTimedOut, std::move(m)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string to_string() const {
    std::string s{scrnet::to_string(code_)};
    if (!msg_.empty()) {
      s += ": ";
      s += msg_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

/// Result<T>: either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}                       // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {                 // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(v_).ok() && "Result error must not be OK");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& take() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(v_);
  }
  const T& value_or(const T& alt) const { return ok() ? std::get<T>(v_) : alt; }

 private:
  std::variant<T, Status> v_;
};

}  // namespace scrnet
