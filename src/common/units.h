// Virtual-time units.
//
// All simulated time is carried as integral picoseconds (SimTime) so that
// bandwidth arithmetic (bytes / rate) never accumulates floating point
// error and event ordering is exactly reproducible.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace scrnet {

/// Virtual time in picoseconds.
using SimTime = std::int64_t;

constexpr SimTime kPicosecond = 1;
constexpr SimTime kNanosecond = 1'000;
constexpr SimTime kMicrosecond = 1'000'000;
constexpr SimTime kMillisecond = 1'000'000'000;
constexpr SimTime kSecond = 1'000'000'000'000;

constexpr SimTime ps(i64 v) { return v; }
constexpr SimTime ns(i64 v) { return v * kNanosecond; }
constexpr SimTime us(i64 v) { return v * kMicrosecond; }
constexpr SimTime ms(i64 v) { return v * kMillisecond; }

/// Convert to double microseconds for reporting.
constexpr double to_us(SimTime t) { return static_cast<double>(t) / static_cast<double>(kMicrosecond); }
constexpr double to_ns(SimTime t) { return static_cast<double>(t) / static_cast<double>(kNanosecond); }

/// Time to move `bytes` at `mbytes_per_s` (10^6 bytes per second, as used in
/// the SCRAMNet data sheets cited by the paper).
constexpr SimTime transfer_time(u64 bytes, double mbytes_per_s) {
  // ps = bytes / (MB/s * 1e6 B/s) * 1e12 ps/s = bytes * 1e6 / (MB/s)
  return static_cast<SimTime>(static_cast<double>(bytes) * 1e6 / mbytes_per_s);
}

/// Time to move `bits` at `mbits_per_s`.
constexpr SimTime wire_time_bits(u64 bits, double mbits_per_s) {
  return static_cast<SimTime>(static_cast<double>(bits) * 1e6 / mbits_per_s);
}

}  // namespace scrnet
