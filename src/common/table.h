// Plain-text + CSV table writer used by the benchmark harness to print the
// paper's figure series ("rows the paper reports").
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/types.h"

namespace scrnet {

/// Collects rows of string cells and renders an aligned ASCII table and/or CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  Table& add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int prec = 2) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(prec) << v;
    return ss.str();
  }

  void print(std::ostream& os) const {
    std::vector<usize> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (usize i = 0; i < row.size() && i < widths.size(); ++i)
        widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto emit = [&](const std::vector<std::string>& row) {
      os << "| ";
      for (usize i = 0; i < widths.size(); ++i) {
        os << std::setw(static_cast<int>(widths[i])) << (i < row.size() ? row[i] : "") << " | ";
      }
      os << '\n';
    };
    emit(header_);
    os << "|";
    for (usize w : widths) os << std::string(w + 2, '-') << "|";
    os << '\n';
    for (const auto& r : rows_) emit(r);
  }

  void print_csv(std::ostream& os) const {
    auto emit = [&](const std::vector<std::string>& row) {
      for (usize i = 0; i < row.size(); ++i) {
        if (i) os << ',';
        os << row[i];
      }
      os << '\n';
    };
    emit(header_);
    for (const auto& r : rows_) emit(r);
  }

  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace scrnet
