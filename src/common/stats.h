// Streaming statistics helpers for benchmark harnesses and device models.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "common/types.h"

namespace scrnet {

/// Welford streaming mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  u64 count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void reset() { *this = RunningStats{}; }

 private:
  u64 n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample reservoir with exact percentiles (benchmarks collect few samples).
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  usize size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }

  double percentile(double p) const {
    if (xs_.empty()) return 0.0;
    std::vector<double> v = xs_;
    std::sort(v.begin(), v.end());
    const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
    const usize lo = static_cast<usize>(rank);
    const usize hi = std::min(lo + 1, v.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
  }
  double median() const { return percentile(50.0); }
  double min() const { return percentile(0.0); }
  double max() const { return percentile(100.0); }
  double mean() const {
    if (xs_.empty()) return 0.0;
    double s = 0;
    for (double x : xs_) s += x;
    return s / static_cast<double>(xs_.size());
  }

 private:
  std::vector<double> xs_;
};

/// Log-bucketed latency histogram with deterministic integer percentiles.
///
/// The workload/fault scenario reports need p50/p99/p999 over up to
/// millions of per-op latencies, byte-identical across --jobs values and
/// platforms. Exact-sample percentiles (Samples) interpolate in floating
/// point; this histogram instead buckets values HDR-style -- 16 linear
/// sub-buckets per power of two, ~6% worst-case relative error -- and
/// reports the bucket's lower bound, so every arithmetic step is integral.
/// add() is O(1) with no allocation; merge() makes per-rank collection
/// order irrelevant.
class LogHistogram {
 public:
  static constexpr u32 kSubBits = 4;                    // 16 sub-buckets/octave
  static constexpr u32 kSub = 1u << kSubBits;
  // Octaves 1..(63-kSubBits+1) above the 16 exact low buckets.
  static constexpr u32 kBuckets = (64 - kSubBits + 1) * kSub;

  void add(u64 v) {
    ++counts_[bucket_of(v)];
    ++n_;
    max_ = std::max(max_, v);
  }

  void merge(const LogHistogram& o) {
    for (u32 i = 0; i < kBuckets; ++i) counts_[i] += o.counts_[i];
    n_ += o.n_;
    max_ = std::max(max_, o.max_);
  }

  u64 count() const { return n_; }
  u64 max() const { return n_ ? max_ : 0; }

  /// Value at permille rank `pm` (500 = p50, 990 = p99, 999 = p99.9):
  /// the lower bound of the bucket holding the ceil(n*pm/1000)-th sample.
  u64 percentile_permille(u32 pm) const {
    if (n_ == 0) return 0;
    const u64 rank = std::max<u64>(1, (n_ * pm + 999) / 1000);
    u64 cum = 0;
    for (u32 i = 0; i < kBuckets; ++i) {
      cum += counts_[i];
      if (cum >= rank) return lower_bound(i);
    }
    return lower_bound(kBuckets - 1);
  }

  void reset() { *this = LogHistogram{}; }

  static u32 bucket_of(u64 v) {
    if (v < kSub) return static_cast<u32>(v);
    const u32 msb = 63 - static_cast<u32>(std::countl_zero(v));
    const u32 shift = msb - kSubBits;
    return ((msb - kSubBits + 1) << kSubBits) +
           static_cast<u32>((v >> shift) & (kSub - 1));
  }

  static u64 lower_bound(u32 bucket) {
    const u32 octave = bucket >> kSubBits;
    const u64 sub = bucket & (kSub - 1);
    if (octave == 0) return sub;
    return (u64{1} << (octave + kSubBits - 1)) +
           (sub << (octave - 1));
  }

 private:
  std::array<u64, kBuckets> counts_{};
  u64 n_ = 0;
  u64 max_ = 0;
};

/// Simple monotonically-named counter set used by device models.
class Counter {
 public:
  void inc(u64 by = 1) { v_ += by; }
  u64 get() const { return v_; }
  void reset() { v_ = 0; }

 private:
  u64 v_ = 0;
};

}  // namespace scrnet
