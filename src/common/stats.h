// Streaming statistics helpers for benchmark harnesses and device models.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/types.h"

namespace scrnet {

/// Welford streaming mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  u64 count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void reset() { *this = RunningStats{}; }

 private:
  u64 n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample reservoir with exact percentiles (benchmarks collect few samples).
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  usize size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }

  double percentile(double p) const {
    if (xs_.empty()) return 0.0;
    std::vector<double> v = xs_;
    std::sort(v.begin(), v.end());
    const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
    const usize lo = static_cast<usize>(rank);
    const usize hi = std::min(lo + 1, v.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
  }
  double median() const { return percentile(50.0); }
  double min() const { return percentile(0.0); }
  double max() const { return percentile(100.0); }
  double mean() const {
    if (xs_.empty()) return 0.0;
    double s = 0;
    for (double x : xs_) s += x;
    return s / static_cast<double>(xs_.size());
  }

 private:
  std::vector<double> xs_;
};

/// Simple monotonically-named counter set used by device models.
class Counter {
 public:
  void inc(u64 by = 1) { v_ += by; }
  u64 get() const { return v_; }
  void reset() { v_ = 0; }

 private:
  u64 v_ = 0;
};

}  // namespace scrnet
