// Deterministic PRNG utilities (splitmix64 seeding + xoshiro256**).
//
// std::mt19937 is avoided: its state is large and its seeding is easy to
// get wrong; xoshiro256** is the standard choice for reproducible
// simulation workloads.
#pragma once

#include <array>
#include <limits>

#include "common/types.h"

namespace scrnet {

/// splitmix64: used to expand a single seed into xoshiro state.
constexpr u64 splitmix64(u64& state) {
  state += 0x9E3779B97f4A7C15ULL;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm).
class Rng {
 public:
  using result_type = u64;

  explicit Rng(u64 seed = 0x5CA3B0A7D15EA5EDULL) { reseed(seed); }

  void reseed(u64 seed) {
    u64 sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<u64>::max(); }

  u64 operator()() {
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  u64 below(u64 bound) {
    if (bound == 0) return 0;
    // 128-bit multiply-shift.
    unsigned __int128 m = static_cast<unsigned __int128>(operator()()) * bound;
    return static_cast<u64>(m >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  u64 range(u64 lo, u64 hi) { return lo + below(hi - lo + 1); }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(operator()() >> 11) * (1.0 / 9007199254740992.0); }

  /// Bernoulli with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  std::array<u64, 4> s_{};
};

}  // namespace scrnet
