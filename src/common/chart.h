// Minimal ASCII line-chart renderer: the bench binaries use it to draw the
// paper's figures (latency vs message size) directly in the terminal, one
// glyph per series, with linear or log2 x axes.
#pragma once

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "common/types.h"

namespace scrnet {

class AsciiChart {
 public:
  AsciiChart(std::string title, std::string x_label, std::string y_label,
             usize width = 68, usize height = 20)
      : title_(std::move(title)), x_label_(std::move(x_label)),
        y_label_(std::move(y_label)), width_(width), height_(height) {}

  /// Add a series; `glyph` is its plot marker.
  void add_series(std::string name, char glyph, std::vector<double> xs,
                  std::vector<double> ys) {
    series_.push_back({std::move(name), glyph, std::move(xs), std::move(ys)});
  }

  void print(std::ostream& os) const {
    if (series_.empty()) return;
    double xmin = 1e300, xmax = -1e300, ymin = 0.0, ymax = -1e300;
    for (const auto& s : series_) {
      for (double x : s.xs) {
        xmin = std::min(xmin, x);
        xmax = std::max(xmax, x);
      }
      for (double y : s.ys) ymax = std::max(ymax, y);
    }
    if (xmax <= xmin) xmax = xmin + 1;
    if (ymax <= ymin) ymax = ymin + 1;

    std::vector<std::string> grid(height_, std::string(width_, ' '));
    for (const auto& s : series_) {
      for (usize i = 0; i < s.xs.size(); ++i) {
        const usize cx = col_of(s.xs[i], xmin, xmax);
        const usize cy = row_of(s.ys[i], ymin, ymax);
        plot(grid, cx, cy, s.glyph);
        if (i + 1 < s.xs.size()) {
          // Sparse interpolation so the eye can follow the line.
          for (int step = 1; step < 4; ++step) {
            const double f = step / 4.0;
            const double xi = s.xs[i] * (1 - f) + s.xs[i + 1] * f;
            const double yi = s.ys[i] * (1 - f) + s.ys[i + 1] * f;
            plot(grid, col_of(xi, xmin, xmax), row_of(yi, ymin, ymax), '.');
          }
        }
      }
    }

    os << "\n  " << title_ << "\n";
    for (usize r = 0; r < height_; ++r) {
      const double yval = ymax - (ymax - ymin) * static_cast<double>(r) /
                                     static_cast<double>(height_ - 1);
      char label[16];
      std::snprintf(label, sizeof label, "%8.1f", yval);
      os << label << " |" << grid[r] << "\n";
    }
    os << "         +" << std::string(width_, '-') << "\n";
    char lo[16], hi[16];
    std::snprintf(lo, sizeof lo, "%.0f", xmin);
    std::snprintf(hi, sizeof hi, "%.0f", xmax);
    os << "          " << lo << std::string(width_ > 24 ? width_ - 10 : 1, ' ')
       << hi << "  (" << x_label_ << ")\n  " << y_label_ << ";  ";
    for (const auto& s : series_) os << s.glyph << " = " << s.name << "   ";
    os << "\n";
  }

 private:
  struct S {
    std::string name;
    char glyph;
    std::vector<double> xs, ys;
  };

  usize col_of(double x, double xmin, double xmax) const {
    const double f = (x - xmin) / (xmax - xmin);
    return static_cast<usize>(std::lround(f * static_cast<double>(width_ - 1)));
  }
  usize row_of(double y, double ymin, double ymax) const {
    const double f = (y - ymin) / (ymax - ymin);
    return height_ - 1 -
           static_cast<usize>(std::lround(f * static_cast<double>(height_ - 1)));
  }
  static void plot(std::vector<std::string>& grid, usize cx, usize cy, char g) {
    if (cy < grid.size() && cx < grid[cy].size()) {
      char& cell = grid[cy][static_cast<usize>(cx)];
      if (cell == ' ' || cell == '.' || g != '.') cell = g;
    }
  }

  std::string title_, x_label_, y_label_;
  usize width_, height_;
  std::vector<S> series_;
};

}  // namespace scrnet
