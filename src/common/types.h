// Fundamental fixed-width aliases and small helpers used across the project.
#pragma once

#include <cstddef>
#include <cstdint>

namespace scrnet {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using usize = std::size_t;

/// Number of 32-bit words needed to hold `bytes` bytes.
constexpr u32 words_for_bytes(u32 bytes) { return (bytes + 3u) / 4u; }

/// Round `v` up to the next multiple of `align` (align must be a power of 2).
constexpr u32 align_up(u32 v, u32 align) { return (v + align - 1u) & ~(align - 1u); }

/// Integer ceiling division.
template <typename T>
constexpr T ceil_div(T a, T b) {
  return (a + b - static_cast<T>(1)) / b;
}

}  // namespace scrnet
