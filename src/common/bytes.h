// Byte/word packing helpers shared by BBP and the network models.
//
// The BillBoard Protocol moves user bytes through 32-bit SCRAMNet words;
// these helpers centralise the (endian-fixed, word-padded) conversion.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "common/types.h"

namespace scrnet {

/// Pack an arbitrary byte span into little-endian 32-bit words, zero-padding
/// the final partial word.
inline std::vector<u32> pack_words(std::span<const u8> bytes) {
  std::vector<u32> out(words_for_bytes(static_cast<u32>(bytes.size())), 0u);
  if (!bytes.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

/// Unpack `nbytes` bytes out of a word span (inverse of pack_words).
inline std::vector<u8> unpack_bytes(std::span<const u32> words, usize nbytes) {
  std::vector<u8> out(nbytes);
  if (nbytes) std::memcpy(out.data(), words.data(), nbytes);
  return out;
}

/// Copy bytes out of a word span into a caller buffer; returns bytes copied.
inline usize unpack_into(std::span<const u32> words, std::span<u8> dst, usize nbytes) {
  const usize n = nbytes < dst.size() ? nbytes : dst.size();
  if (n) std::memcpy(dst.data(), words.data(), n);
  return n;
}

/// Fill a byte buffer with a deterministic pattern (for tests/benches).
inline void fill_pattern(std::span<u8> buf, u32 seed) {
  u32 x = seed * 2654435761u + 12345u;
  for (auto& b : buf) {
    x = x * 1664525u + 1013904223u;
    b = static_cast<u8>(x >> 24);
  }
}

/// Verify a buffer against fill_pattern(seed); returns true if identical.
inline bool check_pattern(std::span<const u8> buf, u32 seed) {
  u32 x = seed * 2654435761u + 12345u;
  for (u8 b : buf) {
    x = x * 1664525u + 1013904223u;
    if (b != static_cast<u8>(x >> 24)) return false;
  }
  return true;
}

}  // namespace scrnet
