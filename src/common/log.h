// Minimal leveled logging with virtual-time-aware prefixes.
//
// Logging is off by default (benchmarks must not pay for it); tests and
// examples can raise the level. Thread safety: a single global mutex --
// logging is never on a measured path.
#pragma once

#include <functional>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

#include "common/units.h"

namespace scrnet {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

class Logger {
 public:
  static Logger& instance() {
    static Logger g;
    return g;
  }

  void set_level(LogLevel lvl) { level_ = lvl; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel lvl) const { return lvl >= level_; }

  /// Optional hook supplying the current virtual time for prefixes.
  void set_clock(std::function<SimTime()> clock) {
    std::lock_guard<std::mutex> lk(mu_);
    clock_ = std::move(clock);
  }
  void clear_clock() { set_clock(nullptr); }

  void write(LogLevel lvl, std::string_view tag, const std::string& msg) {
    std::lock_guard<std::mutex> lk(mu_);
    std::ostream& os = std::cerr;
    os << '[' << level_name(lvl) << ']';
    if (clock_) os << " t=" << to_us(clock_()) << "us";
    if (!tag.empty()) os << " (" << tag << ')';
    os << ' ' << msg << '\n';
  }

 private:
  static const char* level_name(LogLevel lvl) {
    switch (lvl) {
      case LogLevel::kTrace: return "TRACE";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO ";
      case LogLevel::kWarn: return "WARN ";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff: return "OFF  ";
    }
    return "?";
  }

  LogLevel level_ = LogLevel::kOff;
  std::mutex mu_;
  std::function<SimTime()> clock_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel lvl, std::string_view tag) : lvl_(lvl), tag_(tag) {}
  ~LogLine() { Logger::instance().write(lvl_, tag_, ss_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::string_view tag_;
  std::ostringstream ss_;
};
}  // namespace detail

}  // namespace scrnet

#define SCRNET_LOG(lvl, tag)                                 \
  if (!::scrnet::Logger::instance().enabled(lvl)) {          \
  } else                                                     \
    ::scrnet::detail::LogLine(lvl, tag)

#define SCRNET_TRACE(tag) SCRNET_LOG(::scrnet::LogLevel::kTrace, tag)
#define SCRNET_DEBUG(tag) SCRNET_LOG(::scrnet::LogLevel::kDebug, tag)
#define SCRNET_INFO(tag) SCRNET_LOG(::scrnet::LogLevel::kInfo, tag)
#define SCRNET_WARN(tag) SCRNET_LOG(::scrnet::LogLevel::kWarn, tag)
#define SCRNET_ERROR(tag) SCRNET_LOG(::scrnet::LogLevel::kError, tag)
