#include "tune/measure.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "harness/cluster.h"
#include "scrmpi/coll.h"
#include "scrmpi/mpi.h"

namespace scrnet::tune {

namespace {

using scrmpi::AllgatherAlgo;
using scrmpi::AllreduceAlgo;
using scrmpi::CollAlgo;
using scrmpi::Comm;
using scrmpi::Datatype;
using scrmpi::Mpi;
using scrmpi::ReduceOp;

/// Per-round clock: start stamped by rank 0, done max-accumulated across
/// ranks (all ranks are fibers of one simulation, so no data races).
struct RoundClock {
  std::vector<SimTime> start, done;
  explicit RoundClock(u32 rounds) : start(rounds, 0), done(rounds, 0) {}
  void record_done(u32 round, SimTime t) {
    done[round] = std::max(done[round], t);
  }
  double avg_us(u32 warmup) const {
    double sum = 0;
    for (usize i = warmup; i < start.size(); ++i)
      sum += to_us(done[i] - start[i]);
    return sum / static_cast<double>(start.size() - warmup);
  }
};

void run_rounds(sim::Process& p, Mpi& mpi, const MeasureSpec& s,
                RoundClock& clk) {
  const Comm& w = mpi.world();
  const u32 me = static_cast<u32>(mpi.rank(w));
  const u32 rounds = s.warmup + s.iters;

  // Pin every selector so the measurement is independent of the decision
  // table (the tuner is *producing* the table): composite algorithms
  // (reduce_bcast, gather_bcast) run over the device's natural defaults,
  // and the inter-round sync barrier is always combine-release so it
  // never aliases the algorithm under test.
  mpi.set_bcast_algo(CollAlgo::kNativeMcast);  // binomial w/o the hardware
  mpi.set_barrier_algo(CollAlgo::kPointToPoint);
  mpi.set_allreduce_algo(AllreduceAlgo::kReduceBcast);
  mpi.set_allgather_algo(AllgatherAlgo::kGatherBcast);

  if (s.op == "barrier") {
    mpi.set_barrier_algo(
        scrmpi::coll::coll_algo_from_name(s.algo, CollAlgo::kPointToPoint));
    // Back-to-back barriers: steady-state per-call latency at rank 0
    // equals the true barrier period (the next combine cannot finish
    // before the previous release lands everywhere).
    for (u32 i = 0; i < rounds; ++i) {
      if (me == 0) clk.start[i] = p.now();
      mpi.barrier(w);
      if (me == 0) clk.record_done(i, p.now());
    }
    return;
  }

  if (s.op == "bcast") {
    mpi.set_bcast_algo(
        scrmpi::coll::coll_algo_from_name(s.algo, CollAlgo::kBinomial));
    std::vector<u8> buf(std::max<u32>(s.bytes, 1), 0x5a);
    for (u32 i = 0; i < rounds; ++i) {
      mpi.barrier(w);  // combine-release sync, outside the measured window
      if (me == 0) clk.start[i] = p.now();
      mpi.bcast(buf.data(), s.bytes, Datatype::kByte, 0, w);
      clk.record_done(i, p.now());
    }
    return;
  }

  if (s.op == "allreduce") {
    mpi.set_allreduce_algo(scrmpi::coll::allreduce_algo_from_name(
        s.algo, AllreduceAlgo::kReduceBcast));
    const u32 count = std::max<u32>(1, s.bytes / 8);
    // Small exact integers: every reduction order sums associatively
    // exactly, so the result (though unused) is algorithm-independent.
    std::vector<double> in(count), out(count);
    for (u32 i = 0; i < count; ++i) in[i] = static_cast<double>(i % 64);
    for (u32 i = 0; i < rounds; ++i) {
      mpi.barrier(w);
      if (me == 0) clk.start[i] = p.now();
      mpi.allreduce(in.data(), out.data(), count, Datatype::kDouble,
                    ReduceOp::kSum, w);
      clk.record_done(i, p.now());
    }
    return;
  }

  if (s.op == "allgather") {
    mpi.set_allgather_algo(scrmpi::coll::allgather_algo_from_name(
        s.algo, AllgatherAlgo::kGatherBcast));
    const u32 block = std::max<u32>(s.bytes, 1);
    std::vector<u8> in(block, static_cast<u8>(me)), out(block * s.nodes);
    for (u32 i = 0; i < rounds; ++i) {
      mpi.barrier(w);
      if (me == 0) clk.start[i] = p.now();
      mpi.allgather(in.data(), block, Datatype::kByte, out.data(), w);
      clk.record_done(i, p.now());
    }
    return;
  }

  throw std::invalid_argument("tune: unknown op '" + s.op + "'");
}

}  // namespace

std::vector<std::string> candidates(std::string_view device,
                                    std::string_view op) {
  std::vector<std::string> out;
  if (op == "bcast") {
    if (device == "bbp") out.push_back("native");
    out.insert(out.end(),
               {"binomial", "scatter_allgather", "ring", "chain"});
  } else if (op == "barrier") {
    if (device == "bbp") out.push_back("native");
    out.insert(out.end(), {"p2p", "dissemination"});
  } else if (op == "allreduce") {
    out = {"reduce_bcast", "recursive_doubling", "rabenseifner", "ring"};
  } else if (op == "allgather") {
    out = {"gather_bcast", "ring"};
  }
  return out;
}

double measure_us(const MeasureSpec& spec) {
  RoundClock clk(spec.warmup + spec.iters);
  const auto body = [&](sim::Process& p, Mpi& mpi) {
    run_rounds(p, mpi, spec, clk);
  };
  if (spec.device == "bbp") {
    harness::run_scramnet_mpi(spec.nodes, body, {});
  } else if (spec.device == "sock") {
    harness::run_tcp_mpi(spec.nodes, harness::TcpFabricKind::kFastEthernet,
                         body, {});
  } else if (spec.device == "rdma") {
    harness::run_rdma_mpi(spec.nodes, body, {});
  } else {
    throw std::invalid_argument("tune: unknown device '" + spec.device + "'");
  }
  return clk.avg_us(spec.warmup);
}

}  // namespace scrnet::tune
