// Collective measurement kernel shared by the tuner (src/tune/tuner.cc)
// and the broadcast ablation (bench/abl_bcast.cc). Both iterate the same
// grid, so the ablation's measured crossovers and the decision table's
// switch points agree by construction.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace scrnet::tune {

/// The sweep grid. Sizes are payload bytes for bcast, per-rank vector
/// bytes for allreduce, and per-rank block bytes for allgather; barrier
/// ignores the size axis.
inline const std::vector<u32> kSweepSizes{8, 256, 4096, 32768, 65536};
inline const std::vector<u32> kSweepNodes{4, 8, 12};
inline const std::vector<std::string> kSweepDevices{"bbp", "sock", "rdma"};
inline const std::vector<std::string> kSweepOps{"bcast", "barrier",
                                               "allreduce", "allgather"};

/// One cell of the sweep: a device, an op, one algorithm for that op, and
/// the grid coordinates.
struct MeasureSpec {
  std::string device;  // "bbp" | "sock" | "rdma"
  std::string op;      // "bcast" | "barrier" | "allreduce" | "allgather"
  std::string algo;    // algorithm name for the op (types.h *_algo_name)
  u32 nodes = 4;
  u32 bytes = 0;       // see the size-axis note above; ignored for barrier
  u32 iters = 4;
  u32 warmup = 1;
};

/// Algorithm names the tuner races for (device, op). Native multicast is
/// only a candidate on the device that has the hardware (bbp).
std::vector<std::string> candidates(std::string_view device,
                                    std::string_view op);

/// Average virtual-time latency (us) of one collective invocation:
/// root-start to last-rank-done for the data collectives, steady-state
/// per-call latency for barrier. One self-contained simulation per call;
/// deterministic, so safe to fan out over sweep::Runner.
double measure_us(const MeasureSpec& spec);

}  // namespace scrnet::tune
