// The collective auto-tuner (ROADMAP item 4): sweep every algorithm over
// the (device, op, nodes, bytes) grid in measure.h, print the measurement
// matrix, and emit the first-match decision table that kAuto consults.
//
// The winning algorithm is the measured argmin per grid cell; adjacent
// cells with the same winner compress into one rule whose max_bytes /
// max_nodes threshold is the midpoint to the next grid coordinate. A
// legacy-default catch-all tail ("*" device rules) keeps devices outside
// the grid (hybrid, mocks) on their pre-tuner behavior.
//
// Usage:
//   tuner [--jobs N] [--out table.txt] [--cc builtin_table.inc] [--quick]
//
// --quick shrinks the grid to a 2x2 (sizes x nodes) corner -- enough for
// the CI determinism leg to race Runner orderings without paying for the
// full sweep.
//
// Output is bit-identical at any --jobs and any SCRNET_SIM_JOBS: each
// grid cell is one self-contained deterministic simulation and results
// are collected in submission order (docs/sweep.md).
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.h"
#include "sweep/runner.h"
#include "tune/measure.h"
#include "tune/table.h"

using namespace scrnet;
using namespace scrnet::tune;

namespace {

u32 parse_jobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      return static_cast<u32>(std::atol(argv[i + 1]));
    if (std::strncmp(argv[i], "--jobs=", 7) == 0)
      return static_cast<u32>(std::atol(argv[i] + 7));
  }
  return 0;
}

const char* parse_opt(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  return nullptr;
}

/// Winner per (size index) for one (device, op, nodes) row group.
struct RowWinners {
  std::vector<std::string> algo;  // parallel to kSweepSizes (1 for barrier)
};

/// Midpoint threshold between adjacent grid coordinates; "*" past the end.
u32 limit_after(const std::vector<u32>& grid, usize i) {
  if (i + 1 >= grid.size()) return kUnlimited;
  return (grid[i] + grid[i + 1]) / 2;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  sweep::Runner runner(parse_jobs(argc, argv));
  const bool quick = has_flag(argc, argv, "--quick");
  const std::vector<u32> size_grid =
      quick ? std::vector<u32>{8, 4096} : kSweepSizes;
  const std::vector<u32> node_grid = quick ? std::vector<u32>{4, 8} : kSweepNodes;

  // ---- fan the full grid out ---------------------------------------------
  std::vector<MeasureSpec> specs;
  for (const std::string& dev : kSweepDevices)
    for (const std::string& op : kSweepOps)
      for (u32 nodes : node_grid)
        for (const std::string& algo : candidates(dev, op)) {
          if (op == "barrier") {
            specs.push_back({dev, op, algo, nodes, 0});
            continue;
          }
          for (u32 bytes : size_grid)
            specs.push_back({dev, op, algo, nodes, bytes});
        }

  const std::vector<double> us =
      runner.map("tune", specs, [](const MeasureSpec& s) {
        return measure_us(s);
      });

  // ---- print the measurement matrix --------------------------------------
  std::cout << "Collective auto-tuner: " << specs.size()
            << " measured cells over devices={bbp,sock,rdma}\n";
  Table t({"device", "op", "algo", "nodes", "bytes", "latency (us)"});
  for (usize i = 0; i < specs.size(); ++i) {
    const MeasureSpec& s = specs[i];
    t.add_row({s.device, s.op, s.algo, std::to_string(s.nodes),
               std::to_string(s.bytes), Table::num(us[i])});
  }
  t.print(std::cout);

  // ---- reduce to argmin winners per (device, op, nodes, size) ------------
  const auto latency_of = [&](const std::string& dev, const std::string& op,
                              const std::string& algo, u32 nodes, u32 bytes) {
    for (usize i = 0; i < specs.size(); ++i)
      if (specs[i].device == dev && specs[i].op == op &&
          specs[i].algo == algo && specs[i].nodes == nodes &&
          specs[i].bytes == bytes)
        return us[i];
    return -1.0;
  };

  DecisionTable table;
  for (const std::string& dev : kSweepDevices) {
    for (const std::string& op : kSweepOps) {
      const std::vector<u32> sizes =
          op == "barrier" ? std::vector<u32>{0} : size_grid;
      // Winners per node bucket.
      std::vector<RowWinners> winners(node_grid.size());
      for (usize ni = 0; ni < node_grid.size(); ++ni) {
        for (u32 bytes : sizes) {
          std::string best;
          double best_us = 0;
          for (const std::string& algo : candidates(dev, op)) {
            const double v = latency_of(dev, op, algo, node_grid[ni], bytes);
            if (best.empty() || v < best_us) {
              best = algo;
              best_us = v;
            }
          }
          winners[ni].algo.push_back(best);
        }
      }
      // Emit rules: per node bucket (merging identical adjacent buckets),
      // per size run of one winner.
      for (usize ni = 0; ni < node_grid.size(); ++ni) {
        usize nj = ni;
        while (nj + 1 < node_grid.size() &&
               winners[nj + 1].algo == winners[ni].algo)
          ++nj;
        const u32 max_nodes = limit_after(node_grid, nj);
        for (usize si = 0; si < sizes.size(); ++si) {
          usize sj = si;
          while (sj + 1 < sizes.size() &&
                 winners[ni].algo[sj + 1] == winners[ni].algo[si])
            ++sj;
          const u32 max_bytes =
              op == "barrier" ? kUnlimited : limit_after(size_grid, sj);
          table.add({dev, op, max_nodes, max_bytes, winners[ni].algo[si]});
          si = sj;
        }
        ni = nj;
      }
    }
  }
  // Legacy-default tail for devices outside the grid (hybrid, mocks):
  // exactly the pre-tuner kAuto behavior.
  table.add({"*", "bcast", kUnlimited, kUnlimited, "native"});
  table.add({"*", "barrier", kUnlimited, kUnlimited, "native"});
  table.add({"*", "allreduce", kUnlimited, kUnlimited, "reduce_bcast"});
  table.add({"*", "allgather", kUnlimited, kUnlimited, "gather_bcast"});

  std::cout << "\nDecision table (" << table.size() << " rules):\n"
            << table.serialize();

  if (const char* out = parse_opt(argc, argv, "--out")) {
    std::ofstream f(out);
    f << table.serialize();
    std::cout << "\nwrote " << out << "\n";
  }
  if (const char* cc = parse_opt(argc, argv, "--cc")) {
    std::ofstream f(cc);
    f << "// Generated by src/tune/tuner --cc; see docs/collectives.md for\n"
         "// the regeneration workflow. Parsed at first use by\n"
         "// DecisionTable::builtin().\n"
         "R\"tbl(\n"
      << table.serialize() << ")tbl\"\n";
    std::cout << "wrote " << cc << "\n";
  }
  return 0;
}
