#include "tune/table.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace scrnet::tune {

namespace {

/// "*" or a decimal u32.
u32 parse_limit(const std::string& tok, usize lineno) {
  if (tok == "*") return kUnlimited;
  char* end = nullptr;
  const unsigned long v = std::strtoul(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0' || v > kUnlimited)
    throw std::invalid_argument("tune: bad limit '" + tok + "' on line " +
                                std::to_string(lineno));
  return static_cast<u32>(v);
}

std::string fmt_limit(u32 v) {
  return v == kUnlimited ? "*" : std::to_string(v);
}

}  // namespace

DecisionTable DecisionTable::parse(std::string_view text) {
  DecisionTable t;
  std::istringstream in{std::string(text)};
  std::string line;
  usize lineno = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and whitespace-only lines.
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;
    if (!saw_header) {
      std::string ver;
      if (tok != "table" || !(ls >> ver) || ver != "v1")
        throw std::invalid_argument(
            "tune: decision table must start with 'table v1' (line " +
            std::to_string(lineno) + ")");
      saw_header = true;
      continue;
    }
    Rule r;
    r.device = tok;
    std::string nodes, bytes;
    if (!(ls >> r.op >> nodes >> bytes >> r.algo))
      throw std::invalid_argument("tune: short rule on line " +
                                  std::to_string(lineno));
    std::string extra;
    if (ls >> extra)
      throw std::invalid_argument("tune: trailing tokens on line " +
                                  std::to_string(lineno));
    r.max_nodes = parse_limit(nodes, lineno);
    r.max_bytes = parse_limit(bytes, lineno);
    t.add(std::move(r));
  }
  if (!saw_header)
    throw std::invalid_argument("tune: empty decision table (no 'table v1')");
  return t;
}

DecisionTable DecisionTable::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("tune: cannot read table '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse(buf.str());
}

std::string_view DecisionTable::pick(std::string_view device,
                                     std::string_view op, u32 nodes,
                                     u32 bytes) const {
  for (const Rule& r : rules_) {
    if (r.op != op) continue;
    if (r.device != "*" && r.device != device) continue;
    if (nodes > r.max_nodes || bytes > r.max_bytes) continue;
    return r.algo;
  }
  return {};
}

std::string DecisionTable::serialize() const {
  std::ostringstream out;
  out << "table v1\n";
  out << "# device op max_nodes max_bytes algorithm\n";
  for (const Rule& r : rules_)
    out << r.device << ' ' << r.op << ' ' << fmt_limit(r.max_nodes) << ' '
        << fmt_limit(r.max_bytes) << ' ' << r.algo << '\n';
  return out.str();
}

const DecisionTable& DecisionTable::builtin() {
  static const DecisionTable t = parse(
#include "tune/builtin_table.inc"
  );
  return t;
}

const DecisionTable& DecisionTable::active() {
  static const DecisionTable* t = []() -> const DecisionTable* {
    if (const char* path = std::getenv("SCRNET_COLL_TABLE"))
      return new DecisionTable(load(path));
    return &builtin();
  }();
  return *t;
}

}  // namespace scrnet::tune
