#include "fault/plan.h"

#include <algorithm>
#include <string>

#include "common/rng.h"
#include "obs/counters.h"
#include "scramnet/ring.h"

namespace scrnet::fault {

namespace {

bool is_ring_kind(FaultKind k) {
  return k == FaultKind::kLinkDown || k == FaultKind::kLinkUp ||
         k == FaultKind::kNicSpeed;
}

bool is_dial_kind(FaultKind k) {
  return k == FaultKind::kHostIo || k == FaultKind::kHostCpu;
}

std::string bad_node(std::string_view what, u32 node) {
  std::string s = "fault: ";
  s += what;
  s += " targets nonexistent node ";
  s += std::to_string(node);
  return s;
}

}  // namespace

// -- builders ---------------------------------------------------------------

FaultPlan& FaultPlan::link_down(SimTime at, u32 node) {
  events_.push_back({at, FaultKind::kLinkDown, node, 1.0});
  return *this;
}

FaultPlan& FaultPlan::link_up(SimTime at, u32 node) {
  events_.push_back({at, FaultKind::kLinkUp, node, 1.0});
  return *this;
}

FaultPlan& FaultPlan::flapping_link(u32 node, SimTime first_down,
                                    SimTime down_for, SimTime up_for,
                                    u32 cycles) {
  SimTime t = first_down;
  for (u32 c = 0; c < cycles; ++c) {
    link_down(t, node);
    link_up(t + down_for, node);
    t += down_for + up_for;
  }
  return *this;
}

FaultPlan& FaultPlan::nic_speed(SimTime at, u32 node, double factor) {
  events_.push_back({at, FaultKind::kNicSpeed, node, factor});
  return *this;
}

FaultPlan& FaultPlan::host_congestion(SimTime at, u32 node, double factor) {
  events_.push_back({at, FaultKind::kHostIo, node, factor});
  return *this;
}

FaultPlan& FaultPlan::slow_node(SimTime at, u32 node, double factor) {
  events_.push_back({at, FaultKind::kHostCpu, node, factor});
  return *this;
}

FaultPlan& FaultPlan::pause_node(u32 node, SimTime from, SimTime until) {
  pauses_.push_back({node, from, until});
  return *this;
}

FaultPlan& FaultPlan::crash_node(SimTime at, u32 node) {
  events_.push_back({at, FaultKind::kCrash, node, 1.0});
  return *this;
}

FaultPlan& FaultPlan::partition(SimTime at, u32 src, u32 dst) {
  partitions_.push_back({at, src, dst});
  return *this;
}

FaultPlan& FaultPlan::frame_loss(SimTime from, SimTime until, double prob,
                                 u64 seed) {
  loss_.push_back({from, until, prob, seed});
  return *this;
}

FaultPlan& FaultPlan::fabric_congestion(SimTime from, SimTime until,
                                        SimTime extra) {
  congestion_.push_back({from, until, extra});
  return *this;
}

// -- arming -----------------------------------------------------------------

Status FaultPlan::validate(const scramnet::Ring* ring,
                           const netmodels::Fabric* fabric, u32 nodes,
                           bool hosts_only) const {
  for (const FaultEvent& e : events_) {
    if (is_ring_kind(e.kind)) {
      if (hosts_only || ring == nullptr)
        return Status::InvalidArg(std::string("fault: ") +
                                  std::string(kind_name(e.kind)) +
                                  " requires a scramnet ring");
      if (e.node >= nodes) return Status::InvalidArg(bad_node(kind_name(e.kind), e.node));
      if (e.kind == FaultKind::kNicSpeed && !(e.factor > 0.0))
        return Status::InvalidArg("fault: nic_speed factor must be positive");
    } else if (is_dial_kind(e.kind)) {
      if (e.node >= nodes) return Status::InvalidArg(bad_node(kind_name(e.kind), e.node));
      if (!(e.factor > 0.0))
        return Status::InvalidArg("fault: dial factor must be positive");
    } else {  // kPause never lands in events_; kCrash does
      if (e.node >= nodes) return Status::InvalidArg(bad_node(kind_name(e.kind), e.node));
    }
  }
  for (const PauseWindow& p : pauses_) {
    if (p.node >= nodes) return Status::InvalidArg(bad_node("pause", p.node));
    if (p.until <= p.from)
      return Status::InvalidArg("fault: pause window must have until > from");
  }
  if (has_fabric_faults() && (hosts_only || fabric == nullptr))
    return Status::InvalidArg("fault: fabric faults require a fabric");
  for (const Partition& p : partitions_) {
    if (p.src != kAnyNode && p.src >= nodes)
      return Status::InvalidArg(bad_node("partition src", p.src));
    if (p.dst != kAnyNode && p.dst >= nodes)
      return Status::InvalidArg(bad_node("partition dst", p.dst));
  }
  for (const LossWindow& w : loss_) {
    if (w.prob < 0.0 || w.prob > 1.0)
      return Status::InvalidArg("fault: loss probability must be in [0, 1]");
    if (w.until <= w.from)
      return Status::InvalidArg("fault: loss window must have until > from");
  }
  for (const CongestionWindow& c : congestion_) {
    if (c.extra < 0)
      return Status::InvalidArg("fault: congestion extra delay must be >= 0");
    if (c.until <= c.from)
      return Status::InvalidArg("fault: congestion window must have until > from");
  }
  return Status::Ok();
}

Status FaultPlan::arm(sim::Simulation& sim, scramnet::Ring* ring,
                      netmodels::Fabric* fabric) {
  u32 nodes = 0;
  if (ring != nullptr) {
    nodes = ring->nodes();
  } else if (fabric != nullptr) {
    nodes = fabric->hosts();
  } else {
    return Status::InvalidArg("fault: arm requires a ring or a fabric");
  }
  return arm_impl(sim, ring, fabric, nodes, /*hosts_only=*/false);
}

Status FaultPlan::arm_hosts(sim::Simulation& sim, u32 nodes) {
  if (nodes == 0) return Status::InvalidArg("fault: arm_hosts needs nodes > 0");
  return arm_impl(sim, nullptr, nullptr, nodes, /*hosts_only=*/true);
}

Status FaultPlan::arm_impl(sim::Simulation& sim, scramnet::Ring* ring,
                           netmodels::Fabric* fabric, u32 nodes,
                           bool hosts_only) {
  if (armed_) return Status::Unavailable("fault: plan already armed");
  if (Status st = validate(ring, fabric, nodes, hosts_only); !st.ok()) return st;

  dials_.assign(nodes, scramnet::PortDials{});
  // On a partitioned ring, a node's dial block is read by its ports on the
  // owning shard every transaction -- the flip event must execute there
  // too. Ring faults stay wherever they are posted: the ring's fault API
  // defers them onto the serialization spine itself when partitioned.
  const auto dial_shard = [&](u32 node) -> u32 {
    return (ring != nullptr && ring->partitioned()) ? ring->shard_of(node) : 0;
  };
  for (const FaultEvent& e : events_) {
    switch (e.kind) {
      case FaultKind::kLinkDown:
        sim.post_at(e.at, [this, ring, e] {
          (void)ring->fail_link(e.node);  // index validated at arm
          fire(FaultKind::kLinkDown);
        });
        break;
      case FaultKind::kLinkUp:
        sim.post_at(e.at, [this, ring, e] {
          (void)ring->heal_link(e.node);
          fire(FaultKind::kLinkUp);
        });
        break;
      case FaultKind::kNicSpeed:
        sim.post_at(e.at, [this, ring, e] {
          (void)ring->set_node_speed_factor(e.node, e.factor);
          fire(FaultKind::kNicSpeed);
        });
        break;
      case FaultKind::kHostIo:
        sim.post_at_shard(dial_shard(e.node), e.at, [this, e] {
          dials_[e.node].io = e.factor;
          fire(FaultKind::kHostIo);
        });
        break;
      case FaultKind::kHostCpu:
        sim.post_at_shard(dial_shard(e.node), e.at, [this, e] {
          dials_[e.node].cpu = e.factor;
          fire(FaultKind::kHostCpu);
        });
        break;
      case FaultKind::kCrash:
        // The crash itself lives in plan data (crashed() is consulted by
        // the workload); the event only records that it took effect.
        sim.post_at(e.at, [this] { fire(FaultKind::kCrash); });
        break;
      default:
        break;
    }
  }
  for (const PauseWindow& p : pauses_) {
    sim.post_at(p.from, [this] { fire(FaultKind::kPause); });
  }
  if (has_fabric_faults()) fabric->set_fault_hook(this);
  armed_ = true;
  return Status::Ok();
}

// -- queries ----------------------------------------------------------------

bool FaultPlan::crashed(u32 node, SimTime t) const {
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kCrash && e.node == node && t >= e.at) return true;
  }
  return false;
}

SimTime FaultPlan::paused_until(u32 node, SimTime t) const {
  SimTime until = 0;
  for (const PauseWindow& p : pauses_) {
    if (p.node == node && t >= p.from && t < p.until)
      until = std::max(until, p.until);
  }
  return until;
}

bool FaultPlan::node_active(u32 node, SimTime t) const {
  return !crashed(node, t) && paused_until(node, t) == 0;
}

// -- fabric hook ------------------------------------------------------------

netmodels::FaultHook::Verdict FaultPlan::on_frame(const netmodels::Frame& f,
                                                  SimTime arrival) {
  Verdict v;
  for (const Partition& p : partitions_) {
    if (arrival >= p.at && (p.src == kAnyNode || p.src == f.src) &&
        (p.dst == kAnyNode || p.dst == f.dst)) {
      fire(FaultKind::kPartition);
      v.drop = true;
      return v;
    }
  }
  for (const LossWindow& w : loss_) {
    if (arrival < w.from || arrival >= w.until) continue;
    // Hash-based coin flip: a pure function of (seed, src, dst, arrival),
    // so the verdict does not depend on how many frames were seen before.
    u64 s = w.seed ^ ((u64{f.src} << 32) | f.dst);
    s ^= static_cast<u64>(arrival) * 0x9E3779B97F4A7C15ull;
    const u64 h = splitmix64(s);
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u < w.prob) {
      fire(FaultKind::kFrameLoss);
      v.drop = true;
      return v;
    }
  }
  for (const CongestionWindow& c : congestion_) {
    if (arrival >= c.from && arrival < c.until) {
      v.extra_delay += c.extra;
      fire(FaultKind::kCongestion);
    }
  }
  return v;
}

// -- observability ----------------------------------------------------------

void FaultPlan::publish_counters(obs::Counters& c,
                                 std::string_view group) const {
  for (u32 k = 0; k < static_cast<u32>(FaultKind::kCount); ++k) {
    c.add(group, kind_name(static_cast<FaultKind>(k)), fired_[k].get());
  }
}

}  // namespace scrnet::fault
