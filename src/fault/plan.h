// Deterministic fault-injection plans.
//
// A FaultPlan is a seeded, virtual-time-scheduled description of what goes
// wrong during a run: links flap, a NIC runs at the wrong speed, a host
// port saturates, a node slows down, pauses, or crashes, a switch
// partitions. The plan is a plain copyable value -- a sweep job copies the
// spec's plan into its own simulation and arms it there -- and every event
// it injects is a pure function of the plan's data and virtual time, so
// two runs with the same plan produce bit-identical timelines regardless
// of --jobs or host scheduling.
//
// Arming validates every target up front (nonexistent link/node indices
// are an error Status, never an assert or a silent no-op) and then posts
// the timed events into the simulation. Ring faults go through
// scramnet::Ring's fault API; fabric faults install the plan as the
// netmodels::FaultHook; host faults turn the per-node PortDials that
// SimHostPort / HierarchyPort consult on every bus transaction.
//
// Layering: this subsystem knows the device models (ring, fabric, ports)
// but nothing about BBP/scrmpi -- protocols observe faults only through
// their effects (missing deliveries, stretched costs) and surface them as
// timeout Statuses; see docs/faults.md.
#pragma once

#include <atomic>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "common/units.h"
#include "netmodels/fabric.h"
#include "scramnet/config.h"
#include "sim/simulation.h"

namespace scrnet::scramnet {
class Ring;
}
namespace scrnet::obs {
class Counters;
}

namespace scrnet::fault {

/// Everything a plan can inject, one tag per injection mechanism.
enum class FaultKind : u32 {
  kLinkDown,    // ring: fail the link node -> node+1
  kLinkUp,      // ring: repair it
  kNicSpeed,    // ring: scale node's serialization (wrong-speed NIC)
  kHostIo,      // port dial: scale I/O-bus costs (PCIe/host-port congestion)
  kHostCpu,     // port dial: scale CPU/poll costs (slow node)
  kPause,       // workload: node stops issuing ops for a window
  kCrash,       // workload: node stops issuing ops permanently
  kPartition,   // fabric: drop all frames matching src/dst from `at` on
  kFrameLoss,   // fabric: seeded probabilistic drop inside a window
  kCongestion,  // fabric: add delay to every frame inside a window
  kCount,
};

constexpr std::string_view kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kNicSpeed: return "nic_speed";
    case FaultKind::kHostIo: return "host_io";
    case FaultKind::kHostCpu: return "host_cpu";
    case FaultKind::kPause: return "pause";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kPartition: return "partition_drops";
    case FaultKind::kFrameLoss: return "loss_drops";
    case FaultKind::kCongestion: return "congested_frames";
    case FaultKind::kCount: break;
  }
  return "unknown";
}

/// One timed, targeted event (ring / dial / workload kinds).
struct FaultEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kLinkDown;
  u32 node = 0;
  double factor = 1.0;  // speed/dial kinds only
};

class FaultPlan final : public netmodels::FaultHook {
 public:
  /// Wildcard for partition endpoints.
  static constexpr u32 kAnyNode = 0xFFFFFFFFu;

  FaultPlan() = default;

  // -- builders (chainable; validated at arm time) -------------------------

  /// Fail the ring link from `node` to its downstream neighbor at `at`.
  FaultPlan& link_down(SimTime at, u32 node);
  /// Repair that link at `at`.
  FaultPlan& link_up(SimTime at, u32 node);
  /// A flapping link: starting at `first_down`, down for `down_for`, then
  /// up for `up_for`, repeated `cycles` times.
  FaultPlan& flapping_link(u32 node, SimTime first_down, SimTime down_for,
                           SimTime up_for, u32 cycles);
  /// Scale node `node`'s ring serialization by `factor` from `at` on
  /// (wrong-speed NIC; 1.0 restores nominal).
  FaultPlan& nic_speed(SimTime at, u32 node, double factor);
  /// Scale node `node`'s I/O-bus transaction costs by `factor` from `at`
  /// on (PCIe / host-port congestion).
  FaultPlan& host_congestion(SimTime at, u32 node, double factor);
  /// Scale node `node`'s protocol CPU + poll-loop costs by `factor` from
  /// `at` on (slow or overloaded node).
  FaultPlan& slow_node(SimTime at, u32 node, double factor);
  /// Node `node` issues no workload ops in [from, until).
  FaultPlan& pause_node(u32 node, SimTime from, SimTime until);
  /// Node `node` issues no workload ops from `at` on.
  FaultPlan& crash_node(SimTime at, u32 node);
  /// Drop every fabric frame from `src` to `dst` (kAnyNode wildcards)
  /// arriving at or after `at` -- a fail-stop partition. This is the only
  /// loss shape safe for the TCP stack: streams see a clean prefix then
  /// silence, never desynchronized framing (docs/faults.md).
  FaultPlan& partition(SimTime at, u32 src, u32 dst);
  /// Drop each fabric frame arriving in [from, until) with probability
  /// `prob`, decided by a seeded hash of (seed, src, dst, arrival) --
  /// deterministic and independent of delivery order.
  FaultPlan& frame_loss(SimTime from, SimTime until, double prob, u64 seed);
  /// Add `extra` to every fabric frame arriving in [from, until).
  FaultPlan& fabric_congestion(SimTime from, SimTime until, SimTime extra);

  bool empty() const {
    return events_.empty() && pauses_.empty() && partitions_.empty() &&
           loss_.empty() && congestion_.empty();
  }
  bool has_fabric_faults() const {
    return !partitions_.empty() || !loss_.empty() || !congestion_.empty();
  }

  // -- arming --------------------------------------------------------------

  /// Validate every event against the topology, then post the timed events
  /// into `sim` and (when fabric faults exist) install this plan as the
  /// fabric's FaultHook. The plan must outlive the simulation run and must
  /// not be copied or moved after arming (posted events point back at it).
  /// Node capacity comes from the ring when present, else the fabric.
  Status arm(sim::Simulation& sim, scramnet::Ring* ring,
             netmodels::Fabric* fabric = nullptr);

  /// Arm only host-level faults (dials, pause, crash) for a topology with
  /// `nodes` hosts and no flat Ring or Fabric -- e.g. a RingHierarchy.
  /// Ring and fabric kinds in the plan are an error here.
  Status arm_hosts(sim::Simulation& sim, u32 nodes);

  /// Per-node dial block for port attachment (stable address once armed);
  /// nullptr before arming or for an out-of-range node.
  const scramnet::PortDials* dials(u32 node) const {
    return node < dials_.size() ? &dials_[node] : nullptr;
  }

  // -- queries (pure functions of plan data + virtual time) ----------------

  /// False once `node` has crashed or while it is inside a pause window.
  bool node_active(u32 node, SimTime t) const;
  /// End of the pause window covering (node, t), or 0 if not paused.
  SimTime paused_until(u32 node, SimTime t) const;
  /// True once `node` has crashed (at or after its crash event).
  bool crashed(u32 node, SimTime t) const;

  // -- fabric hook ---------------------------------------------------------

  Verdict on_frame(const netmodels::Frame& f, SimTime arrival) override;

  // -- observability -------------------------------------------------------

  /// Count of injections of `k` that have actually taken effect so far.
  u64 fired(FaultKind k) const { return fired_[static_cast<u32>(k)].get(); }
  /// Publish per-kind injection counts under `group`.
  void publish_counters(obs::Counters& c, std::string_view group = "fault") const;

 private:
  /// Injection counter that tolerates concurrent shards: under sim_jobs > 1
  /// two same-kind events may take effect on different shards in one
  /// window (e.g. dial turns on two nodes). Relaxed ordering suffices --
  /// counts are only read after the run. Copyable so FaultPlan stays the
  /// plain value type sweep jobs copy around.
  struct RelaxedCounter {
    std::atomic<u64> v{0};
    RelaxedCounter() = default;
    RelaxedCounter(const RelaxedCounter& o)
        : v(o.v.load(std::memory_order_relaxed)) {}
    RelaxedCounter& operator=(const RelaxedCounter& o) {
      v.store(o.v.load(std::memory_order_relaxed), std::memory_order_relaxed);
      return *this;
    }
    void inc() { v.fetch_add(1, std::memory_order_relaxed); }
    u64 get() const { return v.load(std::memory_order_relaxed); }
  };

  struct PauseWindow {
    u32 node = 0;
    SimTime from = 0, until = 0;
  };
  struct Partition {
    SimTime at = 0;
    u32 src = kAnyNode, dst = kAnyNode;
  };
  struct LossWindow {
    SimTime from = 0, until = 0;
    double prob = 0.0;
    u64 seed = 0;
  };
  struct CongestionWindow {
    SimTime from = 0, until = 0;
    SimTime extra = 0;
  };

  Status validate(const scramnet::Ring* ring, const netmodels::Fabric* fabric,
                  u32 nodes, bool hosts_only) const;
  Status arm_impl(sim::Simulation& sim, scramnet::Ring* ring,
                  netmodels::Fabric* fabric, u32 nodes, bool hosts_only);
  void fire(FaultKind k) { fired_[static_cast<u32>(k)].inc(); }

  std::vector<FaultEvent> events_;
  std::vector<PauseWindow> pauses_;
  std::vector<Partition> partitions_;
  std::vector<LossWindow> loss_;
  std::vector<CongestionWindow> congestion_;
  std::vector<scramnet::PortDials> dials_;  // sized at arm; ports point here
  RelaxedCounter fired_[static_cast<u32>(FaultKind::kCount)];
  bool armed_ = false;
};

}  // namespace scrnet::fault
