// Benchmark operations: the paper's microbenchmarks (one-way latency via
// ping-pong, broadcast latency, barrier latency) measured in virtual time,
// producing the series each figure plots.
//
// Every operation comes in two forms: the scalar form (one measurement,
// one simulation, runs on the calling thread) and a *_sweep form taking a
// sweep::Runner, which fans the per-size (or per-node-count) simulations
// out across the runner's workers and returns the series in element
// order. Each point is an independent deterministic simulation, so the
// sweep result is bit-identical to calling the scalar form in a loop --
// at any --jobs value.
#pragma once

#include <vector>

#include "harness/cluster.h"
#include "sweep/runner.h"

namespace scrnet::harness {

/// Average one-way latency (us) of `bytes`-sized messages at the BBP API
/// level between ranks 0 and 1 of an `nodes`-node SCRAMNet cluster,
/// measured over `iters` ping-pong round trips after `warmup` rounds.
double bbp_oneway_us(u32 bytes, u32 nodes = 4, u32 iters = 20, u32 warmup = 4,
                     ScramnetOptions opts = {});

/// Same at the MPI layer over ch_bbp.
double mpi_scramnet_oneway_us(u32 bytes, u32 nodes = 4, u32 iters = 20,
                              u32 warmup = 4, ScramnetOptions opts = {});

/// One-way latency (us) over a TCP/IP fabric at the sockets API level.
double tcp_api_oneway_us(TcpFabricKind kind, u32 bytes, u32 iters = 20,
                         u32 warmup = 4, TcpOptions opts = {});

/// One-way latency (us) at the native Myrinet API level.
double myrinet_api_oneway_us(u32 bytes, u32 iters = 20, u32 warmup = 4);

/// One-way latency (us) at the MPI layer over ch_sock on a fabric.
double mpi_tcp_oneway_us(TcpFabricKind kind, u32 bytes, u32 iters = 20,
                         u32 warmup = 4, TcpOptions opts = {});

/// BBP-level broadcast latency (us): time from the root's send until the
/// *last* of the `nodes-1` receivers has the payload; averaged over iters
/// (receivers ack back a 0-byte message between rounds to resynchronize).
double bbp_bcast_us(u32 bytes, u32 nodes = 4, u32 iters = 20, u32 warmup = 4,
                    ScramnetOptions opts = {});

/// MPI_Bcast latency (us) with the given algorithm over SCRAMNet.
double mpi_scramnet_bcast_us(u32 bytes, scrmpi::CollAlgo algo, u32 nodes = 4,
                             u32 iters = 20, u32 warmup = 4,
                             ScramnetOptions opts = {});

/// MPI_Bcast latency (us) over a TCP fabric (always point-to-point trees).
double mpi_tcp_bcast_us(TcpFabricKind kind, u32 bytes, u32 iters = 20,
                        u32 warmup = 4, TcpOptions opts = {});

/// MPI_Barrier latency (us) over SCRAMNet with the given algorithm.
double mpi_scramnet_barrier_us(scrmpi::CollAlgo algo, u32 nodes = 4,
                               u32 iters = 20, u32 warmup = 4,
                               ScramnetOptions opts = {});

/// MPI_Barrier latency (us) over a TCP fabric.
double mpi_tcp_barrier_us(TcpFabricKind kind, u32 nodes = 4, u32 iters = 20,
                          u32 warmup = 4, TcpOptions opts = {});

/// Sustained one-way throughput (MB/s) at the BBP level for a message size.
double bbp_throughput_mbps(u32 bytes, u32 total_bytes, u32 nodes = 4,
                           ScramnetOptions opts = {});

// ---------------------------------------------------------------------------
// Sweep-native forms: one runner job per element, results in element
// order. These are what the bench/fig* and bench/tbl_* mains call.
// ---------------------------------------------------------------------------

std::vector<double> bbp_oneway_us_sweep(const std::vector<u32>& sizes,
                                        sweep::Runner& runner, u32 nodes = 4,
                                        u32 iters = 20, u32 warmup = 4,
                                        ScramnetOptions opts = {});

std::vector<double> mpi_scramnet_oneway_us_sweep(const std::vector<u32>& sizes,
                                                 sweep::Runner& runner,
                                                 u32 nodes = 4, u32 iters = 20,
                                                 u32 warmup = 4,
                                                 ScramnetOptions opts = {});

std::vector<double> tcp_api_oneway_us_sweep(TcpFabricKind kind,
                                            const std::vector<u32>& sizes,
                                            sweep::Runner& runner,
                                            u32 iters = 20, u32 warmup = 4,
                                            TcpOptions opts = {});

std::vector<double> myrinet_api_oneway_us_sweep(const std::vector<u32>& sizes,
                                                sweep::Runner& runner,
                                                u32 iters = 20, u32 warmup = 4);

std::vector<double> mpi_tcp_oneway_us_sweep(TcpFabricKind kind,
                                            const std::vector<u32>& sizes,
                                            sweep::Runner& runner,
                                            u32 iters = 20, u32 warmup = 4,
                                            TcpOptions opts = {});

std::vector<double> bbp_bcast_us_sweep(const std::vector<u32>& sizes,
                                       sweep::Runner& runner, u32 nodes = 4,
                                       u32 iters = 20, u32 warmup = 4,
                                       ScramnetOptions opts = {});

std::vector<double> mpi_scramnet_bcast_us_sweep(const std::vector<u32>& sizes,
                                                scrmpi::CollAlgo algo,
                                                sweep::Runner& runner,
                                                u32 nodes = 4, u32 iters = 20,
                                                u32 warmup = 4,
                                                ScramnetOptions opts = {});

std::vector<double> mpi_tcp_bcast_us_sweep(TcpFabricKind kind,
                                           const std::vector<u32>& sizes,
                                           sweep::Runner& runner,
                                           u32 iters = 20, u32 warmup = 4,
                                           TcpOptions opts = {});

/// Barrier sweeps run over *node counts* (Figure 6's x-axis), not sizes.
std::vector<double> mpi_scramnet_barrier_us_sweep(
    const std::vector<u32>& node_counts, scrmpi::CollAlgo algo,
    sweep::Runner& runner, u32 iters = 20, u32 warmup = 4,
    ScramnetOptions opts = {});

std::vector<double> mpi_tcp_barrier_us_sweep(TcpFabricKind kind,
                                             const std::vector<u32>& node_counts,
                                             sweep::Runner& runner,
                                             u32 iters = 20, u32 warmup = 4,
                                             TcpOptions opts = {});

std::vector<double> bbp_throughput_mbps_sweep(const std::vector<u32>& sizes,
                                              u32 total_bytes,
                                              sweep::Runner& runner,
                                              u32 nodes = 4,
                                              ScramnetOptions opts = {});

}  // namespace scrnet::harness
