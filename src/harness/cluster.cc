#include "harness/cluster.h"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "obs/counters.h"
#include "obs/sink.h"

namespace scrnet::harness {

namespace {
/// Arm an optional fault plan before any rank runs. Plans are validated
/// against the topology; a bad plan is a caller bug, surfaced as an
/// exception at startup rather than a silent no-op mid-run.
void arm_faults(fault::FaultPlan* plan, sim::Simulation& sim,
                scramnet::Ring* ring, netmodels::Fabric* fabric = nullptr) {
  if (!plan) return;
  const Status st = plan->arm(sim, ring, fabric);
  if (!st.ok()) throw std::invalid_argument("fault plan: " + st.to_string());
}

void publish_faults(const fault::FaultPlan* plan, const sim::Simulation& sim) {
  if (!plan || !obs::Counters::enabled()) return;
  plan->publish_counters(sim.sink().counters());
}

/// Per-rank stats flow into the registry only when someone armed it
/// (SCRNET_COUNTERS or an explicit enable); otherwise zero work. Stats go
/// to the *simulation's* sink, not the process singleton, so concurrent
/// sweep runs cannot mix their counters (obs/sink.h).
void publish_rank(const sim::Simulation& sim, const bbp::Endpoint& ep) {
  if (!obs::Counters::enabled()) return;
  ep.publish_counters(sim.sink().counters(),
                      "bbp.rank" + std::to_string(ep.rank()));
}

void publish_rank(const sim::Simulation& sim, const scrmpi::Mpi& mpi, u32 r) {
  if (!obs::Counters::enabled()) return;
  mpi.publish_counters(sim.sink().counters(), "mpi.rank" + std::to_string(r));
}

void publish_fabric(const netmodels::Fabric& fab, const sim::Simulation& sim) {
  if (!obs::Counters::enabled()) return;
  obs::Counters& c = sim.sink().counters();
  c.add("net", "frames_delivered", fab.frames_delivered());
  c.add("net", "bytes_delivered", fab.bytes_delivered());
  c.add("net", "frames_dropped", fab.frames_dropped());
}

void publish_run(const scramnet::Ring& ring, const sim::Simulation& sim) {
  if (!obs::Counters::enabled()) return;
  ring.publish_counters(sim.sink().counters(), "ring");
  sim.sink().counters().add("sim", "events_executed", sim.events_executed());
}

void publish_run(const sim::Simulation& sim) {
  if (!obs::Counters::enabled()) return;
  sim.sink().counters().add("sim", "events_executed", sim.events_executed());
}

/// Partition the ring over the simulation's shards when the run asked for
/// more than one (no-op at jobs=1, keeping the sequential reference path
/// branch-identical). The ring's per-hop propagation delay is the
/// conservative lookahead: every cross-shard effect -- a packet hop, a
/// replayed injection -- is at least one hop in the future.
void maybe_partition(sim::Simulation& sim, scramnet::Ring& ring,
                     const ScramnetOptions& opts) {
  if (sim.jobs() <= 1) return;
  const char* skew = std::getenv("SCRNET_SIM_SKEW");
  ring.set_partition(skew && *skew && *skew != '0'
                         ? skewed_partition(ring.nodes(), sim.jobs())
                         : block_partition(ring.nodes(), sim.jobs()));
  sim.set_lookahead(opts.ring.hop_latency);
}
}  // namespace

std::vector<u32> block_partition(u32 nodes, u32 shards) {
  std::vector<u32> map(nodes);
  for (u32 n = 0; n < nodes; ++n)
    map[n] = static_cast<u32>((static_cast<u64>(n) * shards) / nodes);
  return map;
}

std::vector<u32> skewed_partition(u32 nodes, u32 shards) {
  std::vector<u32> map(nodes, 0);
  if (shards <= 1) return map;
  // Tail shards get one node each; everything else piles onto shard 0.
  const u32 tail = std::min(shards - 1, nodes - 1);
  for (u32 i = 0; i < tail; ++i) map[nodes - tail + i] = shards - tail + i;
  return map;
}

SimTime run_scramnet_bbp(
    u32 nodes, const std::function<void(sim::Process&, bbp::Endpoint&)>& body,
    ScramnetOptions opts) {
  sim::Simulation sim(sim::SimConfig{.sim_jobs = opts.sim_jobs});
  opts.ring.nodes = nodes;
  scramnet::Ring ring(sim, opts.ring);
  maybe_partition(sim, ring, opts);
  arm_faults(opts.faults, sim, &ring);
  for (u32 r = 0; r < nodes; ++r) {
    sim.spawn_on(ring.shard_of(r), "bbp-rank" + std::to_string(r),
                 [&, r](sim::Process& p) {
                   scramnet::SimHostPort port(ring, r, p, opts.host);
                   if (opts.faults) port.set_dials(opts.faults->dials(r));
                   bbp::Endpoint ep(port, nodes, r, opts.bbp);
                   body(p, ep);
                   publish_rank(sim, ep);
                 });
  }
  sim.run();
  publish_run(ring, sim);
  publish_faults(opts.faults, sim);
  return sim.now();
}

SimTime run_scramnet_mpi(
    u32 nodes, const std::function<void(sim::Process&, scrmpi::Mpi&)>& body,
    ScramnetOptions opts) {
  sim::Simulation sim(sim::SimConfig{.sim_jobs = opts.sim_jobs});
  opts.ring.nodes = nodes;
  scramnet::Ring ring(sim, opts.ring);
  maybe_partition(sim, ring, opts);
  arm_faults(opts.faults, sim, &ring);
  for (u32 r = 0; r < nodes; ++r) {
    sim.spawn_on(ring.shard_of(r), "mpi-rank" + std::to_string(r),
                 [&, r](sim::Process& p) {
                   scramnet::SimHostPort port(ring, r, p, opts.host);
                   if (opts.faults) port.set_dials(opts.faults->dials(r));
                   bbp::Endpoint ep(port, nodes, r, opts.bbp);
                   scrmpi::BbpChannel dev(ep);
                   scrmpi::Mpi mpi(dev, opts.mpi);
                   body(p, mpi);
                   publish_rank(sim, ep);
                   publish_rank(sim, mpi, r);
                 });
  }
  sim.run();
  publish_run(ring, sim);
  publish_faults(opts.faults, sim);
  return sim.now();
}

SimTime run_hybrid_mpi(u32 nodes, TcpFabricKind bulk_kind, u32 threshold,
                       const std::function<void(sim::Process&, scrmpi::Mpi&)>& body,
                       ScramnetOptions sopts, TcpOptions topts) {
  sim::Simulation sim;
  sopts.ring.nodes = nodes;
  scramnet::Ring ring(sim, sopts.ring);
  auto fabric = make_fabric(sim, nodes, bulk_kind, topts);
  arm_faults(sopts.faults, sim, &ring, fabric.get());
  const netmodels::TcpConfig stack_cfg =
      topts.custom_stack ? topts.stack : default_stack(bulk_kind);
  for (u32 r = 0; r < nodes; ++r) {
    sim.spawn("hybrid-rank" + std::to_string(r), [&, r, stack_cfg](sim::Process& p) {
      scramnet::SimHostPort port(ring, r, p, sopts.host);
      if (sopts.faults) port.set_dials(sopts.faults->dials(r));
      bbp::Endpoint ep(port, nodes, r, sopts.bbp);
      scrmpi::BbpChannel low(ep);
      netmodels::TcpStack stack(*fabric, r, stack_cfg);
      scrmpi::SockChannel high(stack, p, nodes);
      scrmpi::HybridChannel dev(low, high, threshold);
      scrmpi::Mpi mpi(dev, sopts.mpi);
      body(p, mpi);
      publish_rank(sim, ep);
      publish_rank(sim, mpi, r);
    });
  }
  sim.run();
  publish_run(ring, sim);
  publish_fabric(*fabric, sim);
  publish_faults(sopts.faults, sim);
  return sim.now();
}

netmodels::TcpConfig default_stack(TcpFabricKind kind) {
  switch (kind) {
    case TcpFabricKind::kFastEthernet: return netmodels::TcpConfig::fast_ethernet();
    case TcpFabricKind::kAtm: return netmodels::TcpConfig::atm();
    case TcpFabricKind::kMyrinet: return netmodels::TcpConfig::myrinet();
  }
  return {};
}

std::unique_ptr<netmodels::Fabric> make_fabric(sim::Simulation& sim, u32 nodes,
                                               TcpFabricKind kind,
                                               const TcpOptions& opts) {
  switch (kind) {
    case TcpFabricKind::kFastEthernet:
      return std::make_unique<netmodels::EthernetFabric>(sim, nodes, opts.ethernet);
    case TcpFabricKind::kAtm:
      return std::make_unique<netmodels::AtmFabric>(sim, nodes, opts.atm);
    case TcpFabricKind::kMyrinet:
      return std::make_unique<netmodels::MyrinetFabric>(sim, nodes, opts.myrinet);
  }
  return nullptr;
}

SimTime run_rdma_mpi(u32 nodes,
                     const std::function<void(sim::Process&, scrmpi::Mpi&)>& body,
                     RdmaOptions opts) {
  sim::Simulation sim;
  netmodels::RdmaFabric fabric(sim, nodes, opts.nic);
  arm_faults(opts.faults, sim, /*ring=*/nullptr, &fabric);
  for (u32 r = 0; r < nodes; ++r) {
    sim.spawn("rdma-rank" + std::to_string(r), [&, r](sim::Process& p) {
      scrmpi::RdmaChannel dev(fabric, p, r, nodes);
      scrmpi::Mpi mpi(dev, opts.mpi);
      body(p, mpi);
      publish_rank(sim, mpi, r);
    });
  }
  sim.run();
  publish_run(sim);
  publish_fabric(fabric, sim);
  publish_faults(opts.faults, sim);
  return sim.now();
}

SimTime run_tcp_mpi(u32 nodes, TcpFabricKind kind,
                    const std::function<void(sim::Process&, scrmpi::Mpi&)>& body,
                    TcpOptions opts) {
  sim::Simulation sim;
  auto fabric = make_fabric(sim, nodes, kind, opts);
  arm_faults(opts.faults, sim, /*ring=*/nullptr, fabric.get());
  const netmodels::TcpConfig stack_cfg =
      opts.custom_stack ? opts.stack : default_stack(kind);
  for (u32 r = 0; r < nodes; ++r) {
    sim.spawn("mpi-" + to_string(kind) + "-rank" + std::to_string(r),
              [&, r, stack_cfg](sim::Process& p) {
                netmodels::TcpStack stack(*fabric, r, stack_cfg);
                scrmpi::SockChannel dev(stack, p, nodes);
                scrmpi::Mpi mpi(dev, opts.mpi);
                body(p, mpi);
                publish_rank(sim, mpi, r);
              });
  }
  sim.run();
  publish_run(sim);
  publish_fabric(*fabric, sim);
  publish_faults(opts.faults, sim);
  return sim.now();
}

}  // namespace scrnet::harness
