#include "harness/benchops.h"

#include <algorithm>
#include <cassert>

#include "common/bytes.h"

namespace scrnet::harness {

namespace {

/// Shared measurement state for one bench run.
struct PingPongClock {
  SimTime t_start = 0;
  SimTime t_end = 0;
  double oneway_us(u32 iters) const {
    return to_us(t_end - t_start) / (2.0 * iters);
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// One-way latency: ping-pong
// ---------------------------------------------------------------------------

double bbp_oneway_us(u32 bytes, u32 nodes, u32 iters, u32 warmup,
                     ScramnetOptions opts) {
  PingPongClock clk;
  run_scramnet_bbp(
      nodes,
      [&](sim::Process& p, bbp::Endpoint& ep) {
        if (ep.rank() > 1) return;  // paper: measurement between two nodes
        std::vector<u8> msg(bytes), buf(std::max<u32>(bytes, 4));
        fill_pattern(msg, 1);
        const u32 peer = 1 - ep.rank();
        for (u32 i = 0; i < warmup + iters; ++i) {
          if (ep.rank() == 0) {
            if (i == warmup) clk.t_start = p.now();
            (void)ep.send(peer, msg);
            (void)ep.recv(peer, buf);
            if (i == warmup + iters - 1) clk.t_end = p.now();
          } else {
            (void)ep.recv(peer, buf);
            (void)ep.send(peer, msg);
          }
        }
        ep.drain();
      },
      opts);
  return clk.oneway_us(iters);
}

namespace {
double mpi_pingpong(const std::function<SimTime(
                        const std::function<void(sim::Process&, scrmpi::Mpi&)>&)>& run,
                    u32 bytes, u32 iters, u32 warmup) {
  PingPongClock clk;
  run([&](sim::Process& p, scrmpi::Mpi& mpi) {
    const scrmpi::Comm& w = mpi.world();
    const i32 me = mpi.rank(w);
    if (me > 1) return;
    std::vector<u8> msg(std::max<u32>(bytes, 1)), buf(std::max<u32>(bytes, 1));
    const i32 peer = 1 - me;
    for (u32 i = 0; i < warmup + iters; ++i) {
      if (me == 0) {
        if (i == warmup) clk.t_start = p.now();
        mpi.send(msg.data(), bytes, scrmpi::Datatype::kByte, peer, 0, w);
        mpi.recv(buf.data(), bytes, scrmpi::Datatype::kByte, peer, 0, w);
        if (i == warmup + iters - 1) clk.t_end = p.now();
      } else {
        mpi.recv(buf.data(), bytes, scrmpi::Datatype::kByte, peer, 0, w);
        mpi.send(msg.data(), bytes, scrmpi::Datatype::kByte, peer, 0, w);
      }
    }
  });
  return clk.oneway_us(iters);
}
}  // namespace

double mpi_scramnet_oneway_us(u32 bytes, u32 nodes, u32 iters, u32 warmup,
                              ScramnetOptions opts) {
  return mpi_pingpong(
      [&](const std::function<void(sim::Process&, scrmpi::Mpi&)>& body) {
        return run_scramnet_mpi(nodes, body, opts);
      },
      bytes, iters, warmup);
}

double mpi_tcp_oneway_us(TcpFabricKind kind, u32 bytes, u32 iters, u32 warmup,
                         TcpOptions opts) {
  return mpi_pingpong(
      [&](const std::function<void(sim::Process&, scrmpi::Mpi&)>& body) {
        return run_tcp_mpi(2, kind, body, opts);
      },
      bytes, iters, warmup);
}

double tcp_api_oneway_us(TcpFabricKind kind, u32 bytes, u32 iters, u32 warmup,
                         TcpOptions opts) {
  PingPongClock clk;
  sim::Simulation sim;
  auto fabric = make_fabric(sim, 2, kind, opts);
  const netmodels::TcpConfig cfg =
      opts.custom_stack ? opts.stack : default_stack(kind);
  const u32 wire_bytes = std::max<u32>(bytes, 1);  // 0B -> 1 dummy byte
  for (u32 r = 0; r < 2; ++r) {
    sim.spawn("tcp-host" + std::to_string(r), [&, r](sim::Process& p) {
      netmodels::TcpStack stack(*fabric, r, cfg);
      std::vector<u8> msg(wire_bytes), buf(wire_bytes);
      const u32 peer = 1 - r;
      for (u32 i = 0; i < warmup + iters; ++i) {
        if (r == 0) {
          if (i == warmup) clk.t_start = p.now();
          stack.send(p, peer, msg);
          stack.recv(p, peer, buf, wire_bytes);
          if (i == warmup + iters - 1) clk.t_end = p.now();
        } else {
          stack.recv(p, peer, buf, wire_bytes);
          stack.send(p, peer, msg);
        }
      }
    });
  }
  sim.run();
  return clk.oneway_us(iters);
}

double myrinet_api_oneway_us(u32 bytes, u32 iters, u32 warmup) {
  PingPongClock clk;
  sim::Simulation sim;
  netmodels::MyrinetFabric fabric(sim, 2);
  for (u32 r = 0; r < 2; ++r) {
    sim.spawn("myr-host" + std::to_string(r), [&, r](sim::Process& p) {
      netmodels::MyrinetApi api(fabric, r);
      std::vector<u8> msg(bytes), buf(std::max<u32>(bytes, 1));
      const u32 peer = 1 - r;
      for (u32 i = 0; i < warmup + iters; ++i) {
        if (r == 0) {
          if (i == warmup) clk.t_start = p.now();
          api.send(p, peer, msg);
          api.recv(p, peer, buf, bytes);
          if (i == warmup + iters - 1) clk.t_end = p.now();
        } else {
          api.recv(p, peer, buf, bytes);
          api.send(p, peer, msg);
        }
      }
    });
  }
  sim.run();
  return clk.oneway_us(iters);
}

// ---------------------------------------------------------------------------
// Broadcast latency: root send -> last receiver done
// ---------------------------------------------------------------------------

namespace {
struct BcastClock {
  std::vector<SimTime> root_start;
  std::vector<SimTime> last_done;
  explicit BcastClock(u32 rounds) : root_start(rounds, 0), last_done(rounds, 0) {}
  double avg_us(u32 warmup) const {
    double sum = 0;
    for (usize i = warmup; i < root_start.size(); ++i)
      sum += to_us(last_done[i] - root_start[i]);
    return sum / static_cast<double>(root_start.size() - warmup);
  }
  void record_done(u32 round, SimTime t) {
    last_done[round] = std::max(last_done[round], t);
  }
};
}  // namespace

double bbp_bcast_us(u32 bytes, u32 nodes, u32 iters, u32 warmup,
                    ScramnetOptions opts) {
  const u32 rounds = warmup + iters;
  BcastClock clk(rounds);
  run_scramnet_bbp(
      nodes,
      [&](sim::Process& p, bbp::Endpoint& ep) {
        std::vector<u8> msg(bytes), buf(std::max<u32>(bytes, 4));
        fill_pattern(msg, 2);
        std::vector<u32> dests;
        for (u32 r = 1; r < nodes; ++r) dests.push_back(r);
        for (u32 i = 0; i < rounds; ++i) {
          if (ep.rank() == 0) {
            clk.root_start[i] = p.now();
            (void)ep.mcast(dests, msg);
            // Resynchronize: collect a 0-byte ack from every receiver
            // (outside the measured interval).
            for (u32 r = 1; r < nodes; ++r) (void)ep.recv(r, buf);
          } else {
            (void)ep.recv(0, buf);
            clk.record_done(i, p.now());
            (void)ep.send(0, {});
          }
        }
        ep.drain();
      },
      opts);
  return clk.avg_us(warmup);
}

namespace {
double mpi_bcast_measure(
    const std::function<SimTime(const std::function<void(sim::Process&, scrmpi::Mpi&)>&)>&
        run,
    u32 bytes, scrmpi::CollAlgo algo, u32 nodes, u32 iters, u32 warmup) {
  const u32 rounds = warmup + iters;
  BcastClock clk(rounds);
  run([&](sim::Process& p, scrmpi::Mpi& mpi) {
    mpi.set_bcast_algo(algo);
    const scrmpi::Comm& w = mpi.world();
    const i32 me = mpi.rank(w);
    std::vector<u8> buf(std::max<u32>(bytes, 1));
    u8 token = 0;
    for (u32 i = 0; i < rounds; ++i) {
      if (me == 0) {
        clk.root_start[i] = p.now();
        mpi.bcast(buf.data(), bytes, scrmpi::Datatype::kByte, 0, w);
        for (u32 r = 1; r < nodes; ++r)
          mpi.recv(&token, 1, scrmpi::Datatype::kByte, static_cast<i32>(r), 99, w);
      } else {
        mpi.bcast(buf.data(), bytes, scrmpi::Datatype::kByte, 0, w);
        clk.record_done(i, p.now());
        mpi.send(&token, 1, scrmpi::Datatype::kByte, 0, 99, w);
      }
    }
  });
  return clk.avg_us(warmup);
}
}  // namespace

double mpi_scramnet_bcast_us(u32 bytes, scrmpi::CollAlgo algo, u32 nodes,
                             u32 iters, u32 warmup, ScramnetOptions opts) {
  return mpi_bcast_measure(
      [&](const std::function<void(sim::Process&, scrmpi::Mpi&)>& body) {
        return run_scramnet_mpi(nodes, body, opts);
      },
      bytes, algo, nodes, iters, warmup);
}

double mpi_tcp_bcast_us(TcpFabricKind kind, u32 bytes, u32 iters, u32 warmup,
                        TcpOptions opts) {
  return mpi_bcast_measure(
      [&](const std::function<void(sim::Process&, scrmpi::Mpi&)>& body) {
        return run_tcp_mpi(4, kind, body, opts);
      },
      bytes, scrmpi::CollAlgo::kPointToPoint, 4, iters, warmup);
}

// ---------------------------------------------------------------------------
// Barrier latency
// ---------------------------------------------------------------------------

namespace {
double mpi_barrier_measure(
    const std::function<SimTime(const std::function<void(sim::Process&, scrmpi::Mpi&)>&)>&
        run,
    scrmpi::CollAlgo algo, u32 iters, u32 warmup) {
  SimTime t_start = 0, t_end = 0;
  run([&](sim::Process& p, scrmpi::Mpi& mpi) {
    mpi.set_barrier_algo(algo);
    const scrmpi::Comm& w = mpi.world();
    for (u32 i = 0; i < warmup + iters; ++i) {
      if (mpi.rank(w) == 0 && i == warmup) t_start = p.now();
      mpi.barrier(w);
      if (mpi.rank(w) == 0 && i == warmup + iters - 1) t_end = p.now();
    }
  });
  return to_us(t_end - t_start) / iters;
}
}  // namespace

double mpi_scramnet_barrier_us(scrmpi::CollAlgo algo, u32 nodes, u32 iters,
                               u32 warmup, ScramnetOptions opts) {
  return mpi_barrier_measure(
      [&](const std::function<void(sim::Process&, scrmpi::Mpi&)>& body) {
        return run_scramnet_mpi(nodes, body, opts);
      },
      algo, iters, warmup);
}

double mpi_tcp_barrier_us(TcpFabricKind kind, u32 nodes, u32 iters, u32 warmup,
                          TcpOptions opts) {
  return mpi_barrier_measure(
      [&](const std::function<void(sim::Process&, scrmpi::Mpi&)>& body) {
        return run_tcp_mpi(nodes, kind, body, opts);
      },
      scrmpi::CollAlgo::kPointToPoint, iters, warmup);
}

// ---------------------------------------------------------------------------
// Throughput
// ---------------------------------------------------------------------------

double bbp_throughput_mbps(u32 bytes, u32 total_bytes, u32 nodes,
                           ScramnetOptions opts) {
  assert(bytes > 0);
  const u32 msgs = total_bytes / bytes;
  SimTime t_start = 0, t_end = 0;
  run_scramnet_bbp(
      nodes,
      [&](sim::Process& p, bbp::Endpoint& ep) {
        if (ep.rank() > 1) return;
        if (ep.rank() == 0) {
          std::vector<u8> msg(bytes);
          t_start = p.now();
          for (u32 i = 0; i < msgs; ++i) (void)ep.send(1, msg);
          ep.drain();
        } else {
          std::vector<u8> buf(bytes);
          for (u32 i = 0; i < msgs; ++i) (void)ep.recv(0, buf);
          t_end = p.now();
        }
      },
      opts);
  const double secs = static_cast<double>(t_end - t_start) / 1e12;
  return static_cast<double>(msgs) * bytes / 1e6 / secs;
}

// ---------------------------------------------------------------------------
// Sweep-native forms
// ---------------------------------------------------------------------------
//
// Each sweep is runner.map over the x-axis: one job per point, each job
// one full self-contained simulation via the scalar form above. Options
// structs are captured by value so a job owns every byte it reads.

std::vector<double> bbp_oneway_us_sweep(const std::vector<u32>& sizes,
                                        sweep::Runner& runner, u32 nodes,
                                        u32 iters, u32 warmup,
                                        ScramnetOptions opts) {
  return runner.map("bbp_oneway", sizes, [=](u32 bytes) {
    return bbp_oneway_us(bytes, nodes, iters, warmup, opts);
  });
}

std::vector<double> mpi_scramnet_oneway_us_sweep(const std::vector<u32>& sizes,
                                                 sweep::Runner& runner,
                                                 u32 nodes, u32 iters,
                                                 u32 warmup,
                                                 ScramnetOptions opts) {
  return runner.map("mpi_scr_oneway", sizes, [=](u32 bytes) {
    return mpi_scramnet_oneway_us(bytes, nodes, iters, warmup, opts);
  });
}

std::vector<double> tcp_api_oneway_us_sweep(TcpFabricKind kind,
                                            const std::vector<u32>& sizes,
                                            sweep::Runner& runner, u32 iters,
                                            u32 warmup, TcpOptions opts) {
  return runner.map("tcp_api_oneway." + to_string(kind), sizes, [=](u32 bytes) {
    return tcp_api_oneway_us(kind, bytes, iters, warmup, opts);
  });
}

std::vector<double> myrinet_api_oneway_us_sweep(const std::vector<u32>& sizes,
                                                sweep::Runner& runner,
                                                u32 iters, u32 warmup) {
  return runner.map("myr_api_oneway", sizes, [=](u32 bytes) {
    return myrinet_api_oneway_us(bytes, iters, warmup);
  });
}

std::vector<double> mpi_tcp_oneway_us_sweep(TcpFabricKind kind,
                                            const std::vector<u32>& sizes,
                                            sweep::Runner& runner, u32 iters,
                                            u32 warmup, TcpOptions opts) {
  return runner.map("mpi_tcp_oneway." + to_string(kind), sizes, [=](u32 bytes) {
    return mpi_tcp_oneway_us(kind, bytes, iters, warmup, opts);
  });
}

std::vector<double> bbp_bcast_us_sweep(const std::vector<u32>& sizes,
                                       sweep::Runner& runner, u32 nodes,
                                       u32 iters, u32 warmup,
                                       ScramnetOptions opts) {
  return runner.map("bbp_bcast", sizes, [=](u32 bytes) {
    return bbp_bcast_us(bytes, nodes, iters, warmup, opts);
  });
}

std::vector<double> mpi_scramnet_bcast_us_sweep(const std::vector<u32>& sizes,
                                                scrmpi::CollAlgo algo,
                                                sweep::Runner& runner,
                                                u32 nodes, u32 iters,
                                                u32 warmup,
                                                ScramnetOptions opts) {
  return runner.map("mpi_scr_bcast", sizes, [=](u32 bytes) {
    return mpi_scramnet_bcast_us(bytes, algo, nodes, iters, warmup, opts);
  });
}

std::vector<double> mpi_tcp_bcast_us_sweep(TcpFabricKind kind,
                                           const std::vector<u32>& sizes,
                                           sweep::Runner& runner, u32 iters,
                                           u32 warmup, TcpOptions opts) {
  return runner.map("mpi_tcp_bcast." + to_string(kind), sizes, [=](u32 bytes) {
    return mpi_tcp_bcast_us(kind, bytes, iters, warmup, opts);
  });
}

std::vector<double> mpi_scramnet_barrier_us_sweep(
    const std::vector<u32>& node_counts, scrmpi::CollAlgo algo,
    sweep::Runner& runner, u32 iters, u32 warmup, ScramnetOptions opts) {
  return runner.map("mpi_scr_barrier", node_counts, [=](u32 nodes) {
    return mpi_scramnet_barrier_us(algo, nodes, iters, warmup, opts);
  });
}

std::vector<double> mpi_tcp_barrier_us_sweep(TcpFabricKind kind,
                                             const std::vector<u32>& node_counts,
                                             sweep::Runner& runner, u32 iters,
                                             u32 warmup, TcpOptions opts) {
  return runner.map("mpi_tcp_barrier." + to_string(kind), node_counts,
                    [=](u32 nodes) {
                      return mpi_tcp_barrier_us(kind, nodes, iters, warmup, opts);
                    });
}

std::vector<double> bbp_throughput_mbps_sweep(const std::vector<u32>& sizes,
                                              u32 total_bytes,
                                              sweep::Runner& runner, u32 nodes,
                                              ScramnetOptions opts) {
  return runner.map("bbp_throughput", sizes, [=](u32 bytes) {
    return bbp_throughput_mbps(bytes, total_bytes, nodes, opts);
  });
}

}  // namespace scrnet::harness
