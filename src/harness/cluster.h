// Cluster harness: spin up an N-rank session (BBP or MPI) over any of the
// modeled fabrics inside one deterministic simulation. Used by tests,
// examples and every benchmark.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bbp/endpoint.h"
#include "fault/plan.h"
#include "netmodels/atm.h"
#include "netmodels/ethernet.h"
#include "netmodels/myrinet.h"
#include "netmodels/rdma.h"
#include "netmodels/tcp.h"
#include "scramnet/ring.h"
#include "scramnet/sim_port.h"
#include "scrmpi/ch_bbp.h"
#include "scrmpi/ch_hybrid.h"
#include "scrmpi/ch_rdma.h"
#include "scrmpi/ch_sock.h"
#include "scrmpi/mpi.h"
#include "sim/simulation.h"

namespace scrnet::harness {

struct ScramnetOptions {
  scramnet::RingConfig ring;
  scramnet::HostTimings host;
  bbp::Config bbp;
  scrmpi::LayerCosts mpi;
  /// Optional fault plan, armed against the ring (and, for hybrid runs,
  /// the bulk fabric too) before any rank starts; per-node host dials are
  /// attached to every SimHostPort. Must outlive the run. An invalid plan
  /// (bad node index etc.) throws std::invalid_argument at startup.
  fault::FaultPlan* faults = nullptr;
  /// Event-execution shards for this run (sim::SimConfig::sim_jobs):
  /// 0 = SCRNET_SIM_JOBS env (default 1), 1 = the bit-exact sequential
  /// kernel, > 1 = conservative parallel DES with nodes block-partitioned
  /// over shards and the ring's hop latency as the lookahead window.
  /// Applies to the pure-SCRAMNet runs (bbp/mpi); the sock/hybrid paths
  /// always run sequentially (their TCP fabric is not partitioned).
  u32 sim_jobs = 0;
};

/// Contiguous block partition of `nodes` ring nodes over `shards` shards
/// (node n -> shard n*shards/nodes): neighbors stay together, so only the
/// block-boundary hops cross shards.
std::vector<u32> block_partition(u32 nodes, u32 shards);

/// Deliberately unbalanced block partition: shard 0 gets every node except
/// the last shards-1, which get one node each. One hot shard and a tail of
/// nearly-idle ones -- the worst case for lockstep windows and the best
/// case for work stealing. Results must be bit-identical to block_partition
/// (determinism does not depend on the cut); SCRNET_SIM_SKEW=1 makes the
/// harness use it so any golden suite can be replayed skewed.
std::vector<u32> skewed_partition(u32 nodes, u32 shards);

/// Which baseline fabric to put under TCP (Figures 2/3/5/6 comparisons).
enum class TcpFabricKind { kFastEthernet, kAtm, kMyrinet };

inline std::string to_string(TcpFabricKind k) {
  switch (k) {
    case TcpFabricKind::kFastEthernet: return "FastEthernet";
    case TcpFabricKind::kAtm: return "ATM";
    case TcpFabricKind::kMyrinet: return "Myrinet";
  }
  return "?";
}

struct TcpOptions {
  netmodels::EthernetConfig ethernet;
  netmodels::AtmConfig atm;
  netmodels::MyrinetConfig myrinet;
  netmodels::TcpConfig stack;   // overridden per-kind unless custom set
  bool custom_stack = false;
  // Per-byte channel costs are device-owned (SockChannel::pack_cost), so
  // the same LayerCosts work across devices.
  scrmpi::LayerCosts mpi;
  /// Optional fault plan, armed against the fabric before any rank starts
  /// (partitions, frame loss, congestion; host dials do not apply to the
  /// TCP path). Must outlive the run; invalid plans throw at startup.
  fault::FaultPlan* faults = nullptr;
};

/// Run `body` on every rank of an N-node SCRAMNet cluster at the BBP level.
/// Returns the final virtual time (picoseconds).
SimTime run_scramnet_bbp(
    u32 nodes, const std::function<void(sim::Process&, bbp::Endpoint&)>& body,
    ScramnetOptions opts = {});

/// Run `body` on every rank of an N-node SCRAMNet cluster at the MPI level
/// (ch_bbp device).
SimTime run_scramnet_mpi(
    u32 nodes, const std::function<void(sim::Process&, scrmpi::Mpi&)>& body,
    ScramnetOptions opts = {});

/// Run `body` on every rank of an N-node TCP/IP cluster over the given
/// fabric at the MPI level (ch_sock device).
SimTime run_tcp_mpi(u32 nodes, TcpFabricKind kind,
                    const std::function<void(sim::Process&, scrmpi::Mpi&)>& body,
                    TcpOptions opts = {});

struct RdmaOptions {
  netmodels::RdmaConfig nic;
  scrmpi::LayerCosts mpi;
  /// Optional fault plan, armed against the RDMA fabric (partitions, frame
  /// loss, congestion apply to eager frames and put chunks alike). Must
  /// outlive the run; invalid plans throw at startup.
  fault::FaultPlan* faults = nullptr;
};

/// Run `body` on every rank of an N-node RDMA cluster (ch_rdma device over
/// netmodels::RdmaFabric): eager frames two-sided, rendezvous payloads
/// NIC-put directly into registered receive buffers.
SimTime run_rdma_mpi(u32 nodes,
                     const std::function<void(sim::Process&, scrmpi::Mpi&)>& body,
                     RdmaOptions opts = {});

/// Run `body` on every rank of a *hybrid* cluster: every node sits on both
/// a SCRAMNet ring (latency) and a TCP fabric (bandwidth), glued by
/// scrmpi::HybridChannel with the given payload threshold. This is the
/// paper's Section 7 "SCRAMNet together with Myrinet/ATM" design.
SimTime run_hybrid_mpi(u32 nodes, TcpFabricKind bulk_kind, u32 threshold,
                       const std::function<void(sim::Process&, scrmpi::Mpi&)>& body,
                       ScramnetOptions sopts = {}, TcpOptions topts = {});

/// Default TCP stack parameters for a fabric kind.
netmodels::TcpConfig default_stack(TcpFabricKind kind);

/// Build the fabric for a kind (caller owns it through the returned ptr).
std::unique_ptr<netmodels::Fabric> make_fabric(sim::Simulation& sim, u32 nodes,
                                               TcpFabricKind kind,
                                               const TcpOptions& opts);

}  // namespace scrnet::harness
