// Parallel sweep engine: run independent deterministic simulations across
// all cores, bit-identically.
//
// A DES parameter sweep (message sizes x fabrics x node counts -- the
// paper's own methodology, and the shape of every bench/fig* main) is
// embarrassingly parallel: each point is one self-contained
// sim::Simulation that shares no mutable state with its siblings. The
// Runner exploits that:
//
//  * submit(fn) hands one simulation-returning-a-value job to a
//    work-stealing thread pool and returns a Future<T>;
//  * results are collected through the futures in *submission order*, so
//    a sweep's output is byte-identical to running the same jobs
//    sequentially -- at any --jobs value, in any completion order;
//  * each job runs under its own obs::Sink (see obs/sink.h), so tracing
//    or counters armed during a sweep write one well-formed
//    "<path>.<label>" file per run instead of interleaving runs into one
//    document.
//
// Determinism contract (docs/sweep.md):
//  1. a job must not touch mutable state outside its own closure -- a
//     sim::Simulation plus everything built on it qualifies by
//     construction (the PR de-globalized the one exception, obs);
//  2. each worker thread runs one simulation at a time to completion;
//     fiber switch state (sim/fiber.cc) is thread_local, so sims on
//     sibling workers cannot observe each other's switches;
//  3. the value a job returns must depend only on its inputs -- virtual
//     time, never wall clock.
//
// jobs == 1 degenerates to inline execution on the submitting thread (no
// pool, no threads): the literal sequential baseline the parallel results
// are compared against.
#pragma once

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.h"
#include "obs/sink.h"

namespace scrnet::sweep {

namespace detail {

/// Type-erased unit of work: runs the user job under its sink and
/// fulfills its future. noexcept -- job exceptions are captured into the
/// future and rethrown at get().
struct TaskBase {
  virtual ~TaskBase() = default;
  virtual void run() noexcept = 0;
};

template <typename T>
struct FutureState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
  std::optional<T> value;

  void fulfill(std::optional<T>&& v, std::exception_ptr e) {
    {
      std::lock_guard<std::mutex> lk(mu);
      value = std::move(v);
      error = e;
      done = true;
    }
    cv.notify_all();
  }
};

template <typename T, typename F>
struct Task final : TaskBase {
  F fn;
  std::string label;
  std::shared_ptr<FutureState<T>> state;

  Task(F&& f, std::string lbl, std::shared_ptr<FutureState<T>> st)
      : fn(std::move(f)), label(std::move(lbl)), state(std::move(st)) {}

  void run() noexcept override {
    // One private sink per run: simulations constructed inside fn capture
    // it, TRACE_* hooks on this thread record into it, and armed
    // SCRNET_TRACE / SCRNET_COUNTERS output lands in "<path>.<label>".
    obs::Sink sink(label);
    std::optional<T> value;
    std::exception_ptr error;
    {
      obs::Sink::Scope scope(sink);
      try {
        value.emplace(fn());
      } catch (...) {
        error = std::current_exception();
      }
    }
    sink.flush_env();
    state->fulfill(std::move(value), error);
  }
};

}  // namespace detail

/// Handle to one submitted job's result. get() blocks until the job
/// finishes and rethrows any exception the job threw.
template <typename T>
class Future {
 public:
  Future() = default;

  bool valid() const { return st_ != nullptr; }

  bool ready() const {
    std::lock_guard<std::mutex> lk(st_->mu);
    return st_->done;
  }

  T get() {
    std::unique_lock<std::mutex> lk(st_->mu);
    st_->cv.wait(lk, [&] { return st_->done; });
    if (st_->error) std::rethrow_exception(st_->error);
    return std::move(*st_->value);
  }

 private:
  friend class Runner;
  explicit Future(std::shared_ptr<detail::FutureState<T>> st) : st_(std::move(st)) {}
  std::shared_ptr<detail::FutureState<T>> st_;
};

class Runner {
 public:
  /// jobs == 0 resolves default_jobs(). jobs == 1 runs every submit
  /// inline on the calling thread; jobs > 1 starts that many workers.
  explicit Runner(u32 jobs = 0);
  /// Drains outstanding work, then stops and joins the workers.
  ~Runner();

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  u32 jobs() const { return jobs_; }

  /// SCRNET_JOBS if set (>0), else std::thread::hardware_concurrency().
  static u32 default_jobs() {
    if (const char* env = std::getenv("SCRNET_JOBS")) {
      const long v = std::atol(env);
      if (v > 0) return static_cast<u32>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
  }

  /// Submit one job; fn is invoked exactly once, on a worker thread (or
  /// inline when jobs()==1). `label` names the job's obs::Sink output
  /// ("<label>-<seq>" with a process-wide sequence number, so per-run
  /// trace/counter files are unique and stable across --jobs values).
  template <typename F, typename T = std::invoke_result_t<std::decay_t<F>&>>
  Future<T> submit(std::string_view label, F&& fn) {
    static_assert(!std::is_void_v<T>, "sweep jobs must return a value");
    auto st = std::make_shared<detail::FutureState<T>>();
    auto task = std::make_unique<detail::Task<T, std::decay_t<F>>>(
        std::decay_t<F>(std::forward<F>(fn)), next_label(label), st);
    if (jobs_ == 1) {
      task->run();  // sequential baseline: run now, in submission order
    } else {
      enqueue(std::move(task));
    }
    return Future<T>(std::move(st));
  }

  template <typename F, typename T = std::invoke_result_t<std::decay_t<F>&>>
  Future<T> submit(F&& fn) {
    return submit("job", std::forward<F>(fn));
  }

  /// Run fn over every element, returning results in element order --
  /// the sweep primitive the figure benches are built on.
  template <typename In, typename F,
            typename T = std::invoke_result_t<std::decay_t<F>&, const In&>>
  std::vector<T> map(std::string_view label, const std::vector<In>& xs, F fn) {
    std::vector<Future<T>> futs;
    futs.reserve(xs.size());
    for (const In& x : xs)
      futs.push_back(submit(label, [fn, x]() { return fn(x); }));
    std::vector<T> out;
    out.reserve(futs.size());
    for (auto& f : futs) out.push_back(f.get());
    return out;
  }

 private:
  /// Per-worker locked deque. The owner takes from the front (submission
  /// order); an idle worker steals from another's back.
  struct Shard {
    std::mutex mu;
    std::deque<std::unique_ptr<detail::TaskBase>> dq;
  };

  std::string next_label(std::string_view base);
  void enqueue(std::unique_ptr<detail::TaskBase> task);
  std::unique_ptr<detail::TaskBase> take(u32 me);
  void worker(u32 me);

  u32 jobs_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> threads_;

  // Pool state: queued counts tasks sitting in shards, active counts
  // tasks currently executing. The destructor drains (queued+active == 0)
  // before stopping, so futures never dangle unfulfilled.
  std::mutex pool_mu_;
  std::condition_variable work_cv_;   // workers: work available / stopping
  std::condition_variable drain_cv_;  // destructor: pool went idle
  usize queued_ = 0;
  usize active_ = 0;
  u64 next_shard_ = 0;
  bool stop_ = false;
};

}  // namespace scrnet::sweep
