#include "sweep/runner.h"

#include <atomic>

namespace scrnet::sweep {

namespace {
/// Process-wide job sequence for sink labels. Assigned at submit() time on
/// the submitting thread, so the label of the Nth submitted job -- and
/// with it the name of any per-run trace/counters file -- is identical at
/// any --jobs value.
std::atomic<u64> g_job_seq{0};
}  // namespace

std::string Runner::next_label(std::string_view base) {
  const u64 seq = g_job_seq.fetch_add(1, std::memory_order_relaxed);
  std::string n = std::to_string(seq);
  if (n.size() < 4) n.insert(0, 4 - n.size(), '0');
  return std::string(base) + "-" + n;
}

Runner::Runner(u32 jobs) : jobs_(jobs == 0 ? default_jobs() : jobs) {
  if (jobs_ == 1) return;  // inline mode: no shards, no threads
  shards_.reserve(jobs_);
  for (u32 i = 0; i < jobs_; ++i) shards_.push_back(std::make_unique<Shard>());
  threads_.reserve(jobs_);
  for (u32 i = 0; i < jobs_; ++i) threads_.emplace_back([this, i] { worker(i); });
}

Runner::~Runner() {
  if (jobs_ == 1) return;
  {
    std::unique_lock<std::mutex> lk(pool_mu_);
    drain_cv_.wait(lk, [&] { return queued_ == 0 && active_ == 0; });
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void Runner::enqueue(std::unique_ptr<detail::TaskBase> task) {
  // Round-robin the submission stream across shards: with W workers and a
  // batch of N jobs, worker i starts on job i without contending for a
  // single shared queue; stealing rebalances from there.
  u64 target;
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    target = next_shard_++;
    ++queued_;
  }
  Shard& s = *shards_[target % shards_.size()];
  {
    std::lock_guard<std::mutex> lk(s.mu);
    s.dq.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

std::unique_ptr<detail::TaskBase> Runner::take(u32 me) {
  // Own queue first, oldest first (the front is this worker's share of
  // the submission order).
  {
    Shard& s = *shards_[me];
    std::lock_guard<std::mutex> lk(s.mu);
    if (!s.dq.empty()) {
      auto t = std::move(s.dq.front());
      s.dq.pop_front();
      return t;
    }
  }
  // Steal from a sibling's back: the youngest job, the one its owner
  // would reach last.
  for (u32 k = 1; k < jobs_; ++k) {
    Shard& s = *shards_[(me + k) % jobs_];
    std::lock_guard<std::mutex> lk(s.mu);
    if (!s.dq.empty()) {
      auto t = std::move(s.dq.back());
      s.dq.pop_back();
      return t;
    }
  }
  return nullptr;
}

void Runner::worker(u32 me) {
  for (;;) {
    std::unique_ptr<detail::TaskBase> task;
    {
      std::unique_lock<std::mutex> lk(pool_mu_);
      work_cv_.wait(lk, [&] { return stop_ || queued_ > 0; });
      if (stop_) return;
      // queued_ > 0 does not guarantee *this* worker finds the task (a
      // sibling may grab it between unlock and take); loop if raced.
      lk.unlock();
      task = take(me);
      if (!task) continue;
      lk.lock();
      --queued_;
      ++active_;
    }
    task->run();
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
      --active_;
      if (queued_ == 0 && active_ == 0) drain_cv_.notify_all();
    }
  }
}

}  // namespace scrnet::sweep
