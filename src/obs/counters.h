// Unified counter registry: the one place per-run statistics end up.
//
// Each layer keeps its cheap ad-hoc stats struct for the hot path
// (bbp::EndpointStats, scrmpi::CallStats, the ring's Counter fields) and
// *publishes* it here -- Endpoint::publish_counters, Mpi::publish_counters,
// Ring::publish_counters -- typically once per rank at the end of a harness
// run. The registry then renders everything through one API: JSON for
// machines, an aligned table for humans.
//
// Counters are grouped ("bbp.rank0", "ring", "sim") and, like the tracer,
// disabled by default so tests and benches that do not ask for statistics
// pay nothing. SCRNET_COUNTERS=<path|-> enables collection at startup and
// dumps at exit ("-" = table on stderr, otherwise JSON to the path).
#pragma once

#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/types.h"

namespace scrnet::obs {

class Counters {
 public:
  /// Process-wide registry: the global obs::Sink's counters (the
  /// single-run default, dumped at process exit when SCRNET_COUNTERS is
  /// set).
  static Counters& global();

  /// The current obs::Sink's registry on this thread -- per-run inside a
  /// sweep job, global() otherwise.
  static Counters& current();

  static bool enabled() { return enabled_; }
  void enable(bool on) { enabled_ = on; }

  /// Accumulate `delta` onto group/name (creates the counter at 0).
  void add(std::string_view group, std::string_view name, u64 delta);
  /// Overwrite group/name.
  void set(std::string_view group, std::string_view name, u64 value);
  /// Read a counter; 0 if never published.
  u64 get(std::string_view group, std::string_view name) const;

  bool empty() const;
  void clear();

  /// {"group":{"name":value,...},...}
  void write_json(std::ostream& os) const;
  bool write_json_file(const std::string& path) const;
  /// Aligned "group.name  value" table, groups and names sorted.
  void write_table(std::ostream& os) const;

 private:
  using NameMap = std::map<std::string, u64, std::less<>>;

  mutable std::mutex mu_;
  std::map<std::string, NameMap, std::less<>> groups_;

  static inline bool enabled_ = false;
};

}  // namespace scrnet::obs
