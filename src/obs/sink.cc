#include "obs/sink.h"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string_view>

namespace scrnet::obs {

namespace {

thread_local Sink* t_current = nullptr;

/// Serializes the "-" (stderr table) counters mode across concurrently
/// finishing sweep jobs so two runs' tables never interleave.
std::mutex& stderr_table_mutex() {
  static std::mutex mu;
  return mu;
}

struct EnvPaths {
  const char* trace = nullptr;
  const char* counters = nullptr;
  EnvPaths() {
    trace = std::getenv("SCRNET_TRACE");
    counters = std::getenv("SCRNET_COUNTERS");
    if (trace && !*trace) trace = nullptr;
    if (counters && !*counters) counters = nullptr;
  }
};

const EnvPaths& env_paths() {
  static EnvPaths p;
  return p;
}

}  // namespace

const char* trace_env_path() { return env_paths().trace; }
const char* counters_env_path() { return env_paths().counters; }

Sink& Sink::global() {
  static Sink s;
  return s;
}

Sink& Sink::current() { return t_current ? *t_current : global(); }

Sink::Scope::Scope(Sink& s) : prev_(t_current) { t_current = &s; }
Sink::Scope::~Scope() { t_current = prev_; }

std::string Sink::suffixed(const std::string& base) const {
  return label_.empty() ? base : base + "." + label_;
}

bool Sink::flush_trace_to(const std::string& base) const {
  if (tracer_.events() == 0) return false;
  return tracer_.write_json_file(suffixed(base));
}

bool Sink::flush_counters_to(const std::string& base) const {
  if (counters_.empty()) return false;
  return counters_.write_json_file(suffixed(base));
}

void Sink::flush_env() {
  if (const char* path = trace_env_path()) (void)flush_trace_to(path);
  if (const char* path = counters_env_path()) {
    if (std::string_view(path) == "-") {
      if (!counters_.empty()) {
        std::lock_guard<std::mutex> lk(stderr_table_mutex());
        if (!label_.empty()) std::cerr << "== counters: " << label_ << " ==\n";
        counters_.write_table(std::cerr);
      }
    } else {
      (void)flush_counters_to(path);
    }
  }
}

// The global() singletons of Tracer/Counters are views into the global
// sink, so "Sink" is purely additive: every pre-sweep call site keeps its
// exact behavior.
Tracer& Tracer::global() { return Sink::global().tracer(); }
Tracer& Tracer::current() { return Sink::current().tracer(); }
Counters& Counters::global() { return Sink::global().counters(); }
Counters& Counters::current() { return Sink::current().counters(); }

namespace {

/// Process-lifetime hook: SCRNET_TRACE=<path> arms the tracer at startup
/// and dumps the *global* sink's JSON at exit; SCRNET_COUNTERS=<path|->
/// does the same for the counter registry ("-" = table on stderr).
/// Labeled per-run sinks flush themselves at job end instead (flush_env),
/// so the exit dump is skipped when the global sink recorded nothing.
/// Constructing the global sink here first guarantees it outlives this
/// hook.
struct EnvHook {
  EnvHook() {
    (void)Sink::global();
    (void)env_paths();
    if (trace_env_path()) Tracer::global().enable(true);
    if (counters_env_path()) Counters::global().enable(true);
  }

  ~EnvHook() {
    Sink& g = Sink::global();
    if (const char* path = trace_env_path()) {
      if (g.tracer().events() > 0) (void)g.tracer().write_json_file(path);
    }
    if (const char* path = counters_env_path()) {
      if (!g.counters().empty()) {
        if (std::string_view(path) == "-" ||
            !g.counters().write_json_file(path)) {
          g.counters().write_table(std::cerr);
        }
      }
    }
  }
};

EnvHook env_hook;

}  // namespace

}  // namespace scrnet::obs
