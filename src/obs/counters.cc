#include "obs/counters.h"

#include <fstream>
#include <iomanip>
#include <iostream>
#include <ostream>

namespace scrnet::obs {

// Counters::global()/current() are defined in sink.cc: they are views
// into the global / thread-current obs::Sink.

void Counters::add(std::string_view group, std::string_view name, u64 delta) {
  std::lock_guard<std::mutex> lk(mu_);
  auto git = groups_.find(group);
  if (git == groups_.end())
    git = groups_.emplace(std::string(group), NameMap()).first;
  auto nit = git->second.find(name);
  if (nit == git->second.end())
    git->second.emplace(std::string(name), delta);
  else
    nit->second += delta;
}

void Counters::set(std::string_view group, std::string_view name, u64 value) {
  std::lock_guard<std::mutex> lk(mu_);
  auto git = groups_.find(group);
  if (git == groups_.end())
    git = groups_.emplace(std::string(group), NameMap()).first;
  auto nit = git->second.find(name);
  if (nit == git->second.end())
    git->second.emplace(std::string(name), value);
  else
    nit->second = value;
}

u64 Counters::get(std::string_view group, std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto git = groups_.find(group);
  if (git == groups_.end()) return 0;
  auto nit = git->second.find(name);
  return nit == git->second.end() ? 0 : nit->second;
}

bool Counters::empty() const {
  std::lock_guard<std::mutex> lk(mu_);
  return groups_.empty();
}

void Counters::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  groups_.clear();
}

void Counters::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  os << "{";
  bool gfirst = true;
  for (const auto& [group, names] : groups_) {
    if (!gfirst) os << ",";
    gfirst = false;
    os << "\"" << group << "\":{";
    bool nfirst = true;
    for (const auto& [name, value] : names) {
      if (!nfirst) os << ",";
      nfirst = false;
      os << "\"" << name << "\":" << value;
    }
    os << "}";
  }
  os << "}\n";
}

bool Counters::write_json_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    std::cerr << "obs: cannot write counters to " << path << "\n";
    return false;
  }
  write_json(f);
  return true;
}

void Counters::write_table(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  usize width = 0;
  for (const auto& [group, names] : groups_)
    for (const auto& [name, value] : names)
      width = std::max(width, group.size() + 1 + name.size());
  for (const auto& [group, names] : groups_) {
    for (const auto& [name, value] : names) {
      os << std::left << std::setw(static_cast<int>(width) + 2)
         << (group + "." + name) << value << "\n";
    }
  }
}

}  // namespace scrnet::obs
