// Per-run observability context: one Tracer plus one Counters registry,
// bundled so every simulation records into its *own* sink instead of the
// process-wide singletons.
//
// Before the parallel sweep engine (src/sweep/) existed, Tracer::global()
// and Counters::global() were the only instances, which was fine when a
// process ran one simulation at a time. A sweep runs many independent
// simulations concurrently; funneling them into one registry would
// interleave their events (and their SCRNET_TRACE / SCRNET_COUNTERS output
// files). The Sink restores isolation:
//
//  * Sink::global() is the process-wide default -- single-run programs
//    (tests, examples, a bench run outside a sweep) behave exactly as
//    before, and the EnvHook still dumps it at process exit.
//  * Sink::current() is a thread-local pointer, defaulting to global().
//    sweep::Runner installs a fresh labeled Sink around each job
//    (Sink::Scope), and sim::Simulation captures current() at construction
//    so harness code can publish into sim.sink() explicitly.
//  * When SCRNET_TRACE / SCRNET_COUNTERS are armed, a labeled sink flushes
//    to "<path>.<label>" at job end -- one well-formed file per run, never
//    two runs interleaved in one JSON document.
//
// The enable flags (Tracer::enabled_ / Counters::enabled_) deliberately
// stay process-wide static bools: the disabled fast path must remain a
// single static load + branch, and "armed" is a per-process decision even
// when recording is per-run.
#pragma once

#include <string>

#include "obs/counters.h"
#include "obs/trace.h"

namespace scrnet::obs {

class Sink {
 public:
  Sink() = default;
  explicit Sink(std::string label) : label_(std::move(label)) {}

  Sink(const Sink&) = delete;
  Sink& operator=(const Sink&) = delete;

  /// Process-wide default sink; Tracer::global()/Counters::global() are
  /// views into it.
  static Sink& global();

  /// The sink new Simulations and TRACE_* hooks record into on this
  /// thread. Defaults to global(); sweep jobs install their own via Scope.
  static Sink& current();

  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }

  const std::string& label() const { return label_; }
  bool is_global() const { return this == &global(); }

  /// Flush recorded data to the SCRNET_TRACE / SCRNET_COUNTERS targets,
  /// suffixed with this sink's label ("<path>.<label>"). No-op for
  /// whatever is not armed or recorded nothing. Called by sweep::Runner
  /// at the end of each job; the unlabeled global sink is instead dumped
  /// once at process exit (EnvHook), exactly as before.
  void flush_env();

  /// Explicit-path variants (tests use these; flush_env composes them).
  /// Write this sink's trace JSON / counters JSON to "<base>.<label>"
  /// (or "<base>" when the label is empty). False if the file cannot be
  /// opened or nothing was recorded.
  bool flush_trace_to(const std::string& base) const;
  bool flush_counters_to(const std::string& base) const;

  /// RAII: install a sink as this thread's current() for a scope.
  class Scope {
   public:
    explicit Scope(Sink& s);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Sink* prev_;
  };

 private:
  std::string suffixed(const std::string& base) const;

  Tracer tracer_;
  Counters counters_;
  std::string label_;
};

/// SCRNET_TRACE / SCRNET_COUNTERS values captured at process start
/// (nullptr when unset or empty). Exposed so the sweep runner can skip
/// flush work entirely when nothing is armed.
const char* trace_env_path();
const char* counters_env_path();

}  // namespace scrnet::obs
