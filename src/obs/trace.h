// Virtual-time tracing: span/instant events recorded against the simulated
// clock and exported as Chrome trace-event JSON (chrome://tracing /
// Perfetto "Open trace file").
//
// Every protocol layer is instrumented with TRACE_SPAN / TRACE_INSTANT
// hooks; recording is off by default and the disabled path is a single
// static-bool branch, so the hooks are free to leave compiled into release
// builds (BM_BbpPingPongSim guards the <2% budget). Recording never
// consumes *virtual* time -- it only reads the clock -- so enabling the
// tracer does not change any simulated result; the figure benches stay
// bit-identical with tracing on or off.
//
// Mapping onto the trace-event model: pid = simulated node/rank,
// tid = protocol layer (sim / scramnet / bbp / scrmpi), ts/dur in
// microseconds of virtual time. Names must be string literals (the tracer
// stores the pointer, not a copy).
//
// Environment: SCRNET_TRACE=<path> enables recording at startup and writes
// the JSON to <path> at process exit (used by the CI trace artifact).
#pragma once

#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace scrnet::obs {

/// Instrumented protocol layers, rendered as one trace "thread" per layer
/// within each node's process group.
enum class Layer : u8 { kSim = 0, kRing = 1, kBbp = 2, kMpi = 3 };
inline constexpr u32 kLayers = 4;

const char* layer_name(Layer l);

class Tracer {
 public:
  /// Process-wide tracer instance: the global obs::Sink's tracer. The
  /// single-run default -- everything recorded here is dumped once at
  /// process exit when SCRNET_TRACE is set.
  static Tracer& global();

  /// The tracer TRACE_SPAN / TRACE_INSTANT record into on this thread:
  /// the current obs::Sink's tracer. Identical to global() except inside
  /// a sweep job, where sweep::Runner installs a per-run sink.
  static Tracer& current();

  /// Disabled-path check: a single static load + branch, no call. The
  /// armed flag is process-wide on purpose (see obs/sink.h); recording
  /// is per-sink.
  static bool enabled() { return enabled_; }
  void enable(bool on) { enabled_ = on; }

  /// Record a complete ("X") event covering [t0, t1] of virtual time.
  /// `name` must have static storage duration.
  void span(Layer layer, u32 node, const char* name, SimTime t0, SimTime t1);
  /// Record an instant ("i") event at virtual time t.
  void instant(Layer layer, u32 node, const char* name, SimTime t);

  usize events() const;
  void clear();

  /// Emit the Chrome trace-event JSON document (traceEvents array plus
  /// process/thread naming metadata).
  void write_json(std::ostream& os) const;
  /// Write to a file; false (with a note on stderr) if it cannot be opened.
  bool write_json_file(const std::string& path) const;

 private:
  struct Event {
    const char* name;
    SimTime t0;
    SimTime dur;  // <0 marks an instant event
    u32 node;
    Layer layer;
  };

  mutable std::mutex mu_;
  std::vector<Event> events_;

  static inline bool enabled_ = false;
};

/// RAII virtual-time span. Captures the clock object by pointer and reads
/// it again at scope exit; when the tracer is disabled construction is just
/// the enabled() branch. `clock` is anything with SimTime now() const
/// (MemPort, ChannelDevice, Process, Simulation) and must outlive the span.
class Span {
 public:
  template <typename Clock>
  Span(Layer layer, u32 node, const char* name, const Clock& clock)
      : layer_(layer), node_(node), name_(name) {
    if (!Tracer::enabled()) return;
    obj_ = &clock;
    read_ = [](const void* o) { return static_cast<const Clock*>(o)->now(); };
    t0_ = read_(obj_);
  }

  ~Span() {
    if (obj_) Tracer::current().span(layer_, node_, name_, t0_, read_(obj_));
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const void* obj_ = nullptr;
  SimTime (*read_)(const void*) = nullptr;
  SimTime t0_ = 0;
  Layer layer_;
  u32 node_;
  const char* name_;
};

#define SCRNET_OBS_CAT2(a, b) a##b
#define SCRNET_OBS_CAT(a, b) SCRNET_OBS_CAT2(a, b)

/// Open a span covering the rest of the enclosing scope.
#define TRACE_SPAN(layer, node, name, clock) \
  ::scrnet::obs::Span SCRNET_OBS_CAT(scrnet_obs_span_, __LINE__)((layer), (node), (name), (clock))

/// Record a point event at the clock's current virtual time.
#define TRACE_INSTANT(layer, node, name, clock)                                         \
  do {                                                                                  \
    if (::scrnet::obs::Tracer::enabled())                                               \
      ::scrnet::obs::Tracer::current().instant((layer), (node), (name), (clock).now()); \
  } while (0)

}  // namespace scrnet::obs
