#include "obs/trace.h"

#include <fstream>
#include <iostream>
#include <map>
#include <ostream>

namespace scrnet::obs {

// Tracer::global()/current() are defined in sink.cc: they are views into
// the global / thread-current obs::Sink.

const char* layer_name(Layer l) {
  switch (l) {
    case Layer::kSim: return "sim";
    case Layer::kRing: return "scramnet";
    case Layer::kBbp: return "bbp";
    case Layer::kMpi: return "scrmpi";
  }
  return "?";
}

void Tracer::span(Layer layer, u32 node, const char* name, SimTime t0, SimTime t1) {
  std::lock_guard<std::mutex> lk(mu_);
  events_.push_back(Event{name, t0, t1 - t0, node, layer});
}

void Tracer::instant(Layer layer, u32 node, const char* name, SimTime t) {
  std::lock_guard<std::mutex> lk(mu_);
  events_.push_back(Event{name, t, -1, node, layer});
}

usize Tracer::events() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  events_.clear();
}

namespace {
/// Trace-event timestamps are microseconds; SimTime is picoseconds.
double trace_us(SimTime t) { return to_us(t); }

void write_event(std::ostream& os, const char* name, Layer layer, u32 node,
                 SimTime t0, SimTime dur) {
  os << "{\"name\":\"" << name << "\",\"cat\":\"" << layer_name(layer)
     << "\",\"ph\":\"" << (dur < 0 ? 'i' : 'X') << "\",\"ts\":" << trace_us(t0);
  if (dur >= 0) os << ",\"dur\":" << trace_us(dur);
  if (dur < 0) os << ",\"s\":\"t\"";
  os << ",\"pid\":" << node << ",\"tid\":" << static_cast<u32>(layer) << "}";
}
}  // namespace

void Tracer::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Name each (pid, tid) pair seen so Perfetto shows node/layer labels
  // instead of bare numbers.
  std::map<u32, u32> layers_of_node;  // node -> bitmask of layers seen
  for (const Event& e : events_) layers_of_node[e.node] |= 1u << static_cast<u32>(e.layer);
  for (const auto& [node, mask] : layers_of_node) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << node
       << ",\"args\":{\"name\":\"node" << node << "\"}}";
    for (u32 l = 0; l < kLayers; ++l) {
      if (!((mask >> l) & 1u)) continue;
      os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << node
         << ",\"tid\":" << l << ",\"args\":{\"name\":\""
         << layer_name(static_cast<Layer>(l)) << "\"}}";
    }
  }
  for (const Event& e : events_) {
    if (!first) os << ",";
    first = false;
    write_event(os, e.name, e.layer, e.node, e.t0, e.dur);
  }
  os << "]}\n";
}

bool Tracer::write_json_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    std::cerr << "obs: cannot write trace to " << path << "\n";
    return false;
  }
  write_json(f);
  return true;
}

}  // namespace scrnet::obs
