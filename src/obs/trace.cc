#include "obs/trace.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <ostream>

#include "obs/counters.h"

namespace scrnet::obs {

const char* layer_name(Layer l) {
  switch (l) {
    case Layer::kSim: return "sim";
    case Layer::kRing: return "scramnet";
    case Layer::kBbp: return "bbp";
    case Layer::kMpi: return "scrmpi";
  }
  return "?";
}

Tracer& Tracer::global() {
  static Tracer t;
  return t;
}

void Tracer::span(Layer layer, u32 node, const char* name, SimTime t0, SimTime t1) {
  std::lock_guard<std::mutex> lk(mu_);
  events_.push_back(Event{name, t0, t1 - t0, node, layer});
}

void Tracer::instant(Layer layer, u32 node, const char* name, SimTime t) {
  std::lock_guard<std::mutex> lk(mu_);
  events_.push_back(Event{name, t, -1, node, layer});
}

usize Tracer::events() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  events_.clear();
}

namespace {
/// Trace-event timestamps are microseconds; SimTime is picoseconds.
double trace_us(SimTime t) { return to_us(t); }

void write_event(std::ostream& os, const char* name, Layer layer, u32 node,
                 SimTime t0, SimTime dur) {
  os << "{\"name\":\"" << name << "\",\"cat\":\"" << layer_name(layer)
     << "\",\"ph\":\"" << (dur < 0 ? 'i' : 'X') << "\",\"ts\":" << trace_us(t0);
  if (dur >= 0) os << ",\"dur\":" << trace_us(dur);
  if (dur < 0) os << ",\"s\":\"t\"";
  os << ",\"pid\":" << node << ",\"tid\":" << static_cast<u32>(layer) << "}";
}
}  // namespace

void Tracer::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Name each (pid, tid) pair seen so Perfetto shows node/layer labels
  // instead of bare numbers.
  std::map<u32, u32> layers_of_node;  // node -> bitmask of layers seen
  for (const Event& e : events_) layers_of_node[e.node] |= 1u << static_cast<u32>(e.layer);
  for (const auto& [node, mask] : layers_of_node) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << node
       << ",\"args\":{\"name\":\"node" << node << "\"}}";
    for (u32 l = 0; l < kLayers; ++l) {
      if (!((mask >> l) & 1u)) continue;
      os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << node
         << ",\"tid\":" << l << ",\"args\":{\"name\":\""
         << layer_name(static_cast<Layer>(l)) << "\"}}";
    }
  }
  for (const Event& e : events_) {
    if (!first) os << ",";
    first = false;
    write_event(os, e.name, e.layer, e.node, e.t0, e.dur);
  }
  os << "]}\n";
}

bool Tracer::write_json_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    std::cerr << "obs: cannot write trace to " << path << "\n";
    return false;
  }
  write_json(f);
  return true;
}

namespace {
/// Process-lifetime hook: SCRNET_TRACE=<path> arms the tracer at startup
/// and dumps the JSON at exit; SCRNET_COUNTERS=<path|-> does the same for
/// the counter registry ("-" prints the table to stderr). Constructing the
/// singletons here first guarantees they outlive this hook.
struct EnvHook {
  const char* trace_path;
  const char* counters_path;

  EnvHook() {
    (void)Tracer::global();
    (void)Counters::global();
    trace_path = std::getenv("SCRNET_TRACE");
    counters_path = std::getenv("SCRNET_COUNTERS");
    if (trace_path && *trace_path) Tracer::global().enable(true);
    if (counters_path && *counters_path) Counters::global().enable(true);
  }

  ~EnvHook() {
    if (trace_path && *trace_path) Tracer::global().write_json_file(trace_path);
    if (counters_path && *counters_path) {
      if (std::string_view(counters_path) == "-") {
        Counters::global().write_table(std::cerr);
      } else if (!Counters::global().write_json_file(counters_path)) {
        Counters::global().write_table(std::cerr);
      }
    }
  }
};

EnvHook env_hook;
}  // namespace

}  // namespace scrnet::obs
