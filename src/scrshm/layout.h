// Shared-variable layout helpers for the SCRAMNet shared-memory
// programming model (the usage Section 2 of the paper says SCRAMNet was
// "almost exclusively" put to before BBP).
//
// Everything here follows the single-writer discipline that makes
// algorithms correct on *non-coherent* replicated memory: each word is
// written by exactly one process, and per-sender FIFO propagation makes
// every such word a regular register (readers see a monotone prefix of
// the writer's writes) -- the register model Lamport's algorithms assume.
#pragma once

#include <stdexcept>

#include "common/types.h"
#include "scramnet/port.h"

namespace scrnet::scrshm {

/// A bump allocator over a word range of the replicated memory, used to
/// lay out synchronization objects identically on every process.
class Arena {
 public:
  Arena(u32 base_word, u32 size_words) : base_(base_word), end_(base_word + size_words), next_(base_word) {}

  /// Allocate `words`, aligned to `align` words.
  u32 alloc(u32 words, u32 align = 1) {
    const u32 at = align_up(next_, align);
    if (at + words > end_) throw std::invalid_argument("scrshm: arena exhausted");
    next_ = at + words;
    return at;
  }

  u32 remaining() const { return end_ - next_; }

 private:
  u32 base_, end_, next_;
};

}  // namespace scrnet::scrshm
