// Dissemination barrier on replicated shared memory.
//
// log2(N) rounds; in round r, process i signals (i + 2^r) mod N and waits
// for (i - 2^r) mod N. Every flag word has a single writer and carries the
// barrier *epoch*, so no flag ever needs resetting (monotone values are
// stale-read-proof on the ring).
//
// Layout: N * rounds words, writer of word (i, r) = process i.
#pragma once

#include <bit>

#include "scramnet/port.h"
#include "scrshm/layout.h"

namespace scrnet::scrshm {

class DisseminationBarrier {
 public:
  DisseminationBarrier(scramnet::MemPort& port, Arena& arena, u32 procs, u32 me)
      : port_(port), procs_(procs), me_(me),
        rounds_(procs > 1 ? static_cast<u32>(std::bit_width(procs - 1)) : 0),
        flags_(arena.alloc(procs * std::max(rounds_, 1u))) {
    if (me >= procs) throw std::invalid_argument("scrshm: rank out of range");
  }

  void wait() {
    ++epoch_;
    for (u32 r = 0; r < rounds_; ++r) {
      const u32 dist = 1u << r;
      const u32 peer = (me_ + procs_ - dist) % procs_;  // I wait on this one
      // Signal my round-r flag with the current epoch...
      port_.write_u32(flag_addr(me_, r), epoch_);
      // ...and wait until my predecessor reached this round of this epoch.
      while (port_.read_u32(flag_addr(peer, r)) < epoch_) port_.poll_pause();
    }
  }

  u32 epoch() const { return epoch_; }
  u32 rounds() const { return rounds_; }

 private:
  u32 flag_addr(u32 proc, u32 round) const { return flags_ + proc * rounds_ + round; }

  scramnet::MemPort& port_;
  u32 procs_, me_, rounds_;
  u32 flags_;
  u32 epoch_ = 0;
};

}  // namespace scrnet::scrshm
