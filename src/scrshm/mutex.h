// Lamport's bakery lock on SCRAMNet replicated memory.
//
// Mutual exclusion on a non-coherent reflective memory cannot use
// compare-and-swap (there is none) or multi-writer words (writes race on
// the ring). The bakery algorithm needs neither: every process writes only
// its own `choosing` and `number` words, and its correctness is proven for
// non-atomic (safe/regular) registers -- exactly what a replicated word
// with bounded propagation and per-sender FIFO provides. This is the class
// of mechanism the paper's reference [10] (Menke, Moir, Ramamurthy,
// PODC'97, "Synchronization Mechanisms for SCRAMNet+ Systems") studies.
//
// Layout: 2*N words from an Arena -- choosing[i], number[i], writer = i.
#pragma once

#include "scramnet/port.h"
#include "scrshm/layout.h"

namespace scrnet::scrshm {

class BakeryMutex {
 public:
  /// All participants must construct with the same arena state and count.
  BakeryMutex(scramnet::MemPort& port, Arena& arena, u32 procs, u32 me)
      : port_(port), procs_(procs), me_(me),
        choosing_(arena.alloc(procs)), number_(arena.alloc(procs)) {
    if (me >= procs) throw std::invalid_argument("scrshm: rank out of range");
  }

  void lock() {
    // Doorway: pick a ticket one larger than every visible ticket.
    port_.write_u32(choosing_ + me_, 1);
    u32 max = 0;
    for (u32 j = 0; j < procs_; ++j) {
      const u32 n = port_.read_u32(number_ + j);
      if (n > max) max = n;
    }
    my_number_ = max + 1;
    port_.write_u32(number_ + me_, my_number_);
    port_.write_u32(choosing_ + me_, 0);

    // Wait for every earlier ticket (lexicographic (number, id) order).
    for (u32 j = 0; j < procs_; ++j) {
      if (j == me_) continue;
      while (port_.read_u32(choosing_ + j) != 0) port_.poll_pause();
      for (;;) {
        const u32 nj = port_.read_u32(number_ + j);
        if (nj == 0 || nj > my_number_ || (nj == my_number_ && j > me_)) break;
        port_.poll_pause();
      }
    }
  }

  void unlock() {
    my_number_ = 0;
    port_.write_u32(number_ + me_, 0);
  }

  /// RAII guard.
  class Guard {
   public:
    explicit Guard(BakeryMutex& m) : m_(m) { m_.lock(); }
    ~Guard() { m_.unlock(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    BakeryMutex& m_;
  };

 private:
  scramnet::MemPort& port_;
  u32 procs_, me_;
  u32 choosing_, number_;  // word addresses of the per-process arrays
  u32 my_number_ = 0;
};

}  // namespace scrnet::scrshm
