// Single-writer seqlock: consistent multi-word publication on replicated
// memory -- the idiom real SCRAMNet deployments used to publish state
// vectors (aircraft state, telemetry frames) that readers must never see
// torn.
//
// Writer (exactly one process): seq -> odd, payload words, seq -> even.
// Reader (anyone): read seq, payload, seq again; retry on odd/changed.
// Per-sender FIFO propagation means a reader's replica replays the
// writer's sequence in order, so the even/odd protocol is sound on the
// ring just as it is on a cache-coherent machine.
#pragma once

#include <span>

#include "scramnet/port.h"
#include "scrshm/layout.h"

namespace scrnet::scrshm {

class SeqLock {
 public:
  /// `payload_words` data words; only `writer` may call publish().
  SeqLock(scramnet::MemPort& port, Arena& arena, u32 payload_words, u32 writer)
      : port_(port), writer_(writer), words_(payload_words),
        seq_addr_(arena.alloc(1)), data_addr_(arena.alloc(payload_words)) {}

  /// Publish a new version. Only the designated writer process may call
  /// this (single-writer discipline; not enforceable across nodes here).
  void publish(std::span<const u32> data) {
    assert(data.size() == words_);
    seq_ += 1;  // odd: in progress
    port_.write_u32(seq_addr_, seq_);
    port_.write_block(data_addr_, data);
    seq_ += 1;  // even: stable
    port_.write_u32(seq_addr_, seq_);
  }

  /// Read a consistent snapshot; returns the (even) version number, 0 if
  /// nothing has ever been published. Spins through in-progress versions.
  u32 snapshot(std::span<u32> out) {
    assert(out.size() == words_);
    for (;;) {
      const u32 s1 = port_.read_u32(seq_addr_);
      if (s1 & 1u) {
        port_.poll_pause();
        continue;
      }
      port_.read_block(data_addr_, out);
      const u32 s2 = port_.read_u32(seq_addr_);
      if (s1 == s2) return s1;
      port_.poll_pause();
    }
  }

  /// Latest version number visible locally (cheap freshness probe).
  u32 version() { return port_.read_u32(seq_addr_) & ~1u; }

 private:
  scramnet::MemPort& port_;
  u32 writer_;
  u32 words_;
  u32 seq_addr_, data_addr_;
  u32 seq_ = 0;  // writer's local mirror
};

}  // namespace scrnet::scrshm
