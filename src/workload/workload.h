// Synthetic traffic generator for fault scenarios and tail-latency studies.
//
// A Spec describes one run: a traffic pattern (RPC client/server, incast,
// hot-spot, all-to-all), a channel device (BBP, sockets, hybrid), node
// count, message shape, a seed, bounded-wait timeouts, and an optional
// fault::FaultPlan that is copied into the run and armed against its
// private simulation. run() executes the pattern over the harness at the
// MPI level, collects every completed operation's latency into a
// log-bucketed histogram (common/stats.h) and returns a Report whose
// render() is a pure function of the Spec -- byte-identical across
// --jobs values and host schedules, which is what the golden files and
// the determinism tests compare.
//
// Degraded-mode semantics: with Spec::op_timeout set, blocking sends and
// receives return kTimedOut instead of hanging when a fault makes
// delivery impossible. A sender abandons its remaining operations after
// two consecutive post-retry failures; a receiver after three
// consecutive idle timeouts -- so a partitioned run terminates with
// counted timeouts rather than a deadlock (docs/faults.md).
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "common/stats.h"
#include "common/types.h"
#include "common/units.h"
#include "fault/plan.h"
#include "harness/cluster.h"

namespace scrnet::workload {

enum class Pattern : u8 {
  kRpc,       // ranks [0, n/2) are clients of ranks [n/2, n); round trips
  kIncast,    // every rank != 0 sends all its ops to rank 0
  kHotspot,   // seeded destinations, biased toward rank 0 by hot_fraction
  kAllToAll,  // round-robin destinations over all peers
};

enum class Device : u8 { kBbp, kSock, kHybrid };

constexpr std::string_view to_string(Pattern p) {
  switch (p) {
    case Pattern::kRpc: return "rpc";
    case Pattern::kIncast: return "incast";
    case Pattern::kHotspot: return "hotspot";
    case Pattern::kAllToAll: return "alltoall";
  }
  return "?";
}

constexpr std::string_view to_string(Device d) {
  switch (d) {
    case Device::kBbp: return "bbp";
    case Device::kSock: return "sock";
    case Device::kHybrid: return "hybrid";
  }
  return "?";
}

struct Spec {
  std::string name;  // report label
  Pattern pattern = Pattern::kIncast;
  Device device = Device::kBbp;
  // Bulk fabric for kSock and kHybrid runs.
  harness::TcpFabricKind fabric = harness::TcpFabricKind::kMyrinet;
  u32 hybrid_threshold = 512;  // payload split for kHybrid
  u32 nodes = 8;
  u32 ops = 24;        // operations per sender (per client for kRpc)
  u32 msg_bytes = 64;  // request payload (floored at 8 for the timestamp)
  u32 reply_bytes = 16;       // kRpc reply payload
  double hot_fraction = 0.7;  // kHotspot bias toward rank 0
  u64 seed = 1;
  u32 bbp_slots = 16;
  bool redundant_ring = false;  // SCRAMNet redundant-ring switchover
  // Bounded wait applied to the BBP endpoint (poll_timeout) and the ADI
  // (op_timeout). 0 = block forever: the paper's clean-run semantics.
  SimTime op_timeout = 0;
  u32 retries = 0;  // immediate resends after a send timeout
  // Copied and armed per run; empty = no injection.
  fault::FaultPlan faults;
};

struct Report {
  /// Per-operation latency in nanoseconds: round-trip at the client for
  /// kRpc, one-way (embedded virtual send timestamp) at the receiver for
  /// the other patterns.
  LogHistogram latency;
  u64 ops_ok = 0;       // operations completed end to end
  u64 ops_timeout = 0;  // blocking calls that returned kTimedOut
  u64 ops_error = 0;    // other non-OK completions
  u64 retried = 0;      // send retries consumed
  u64 aborted = 0;      // operations abandoned by the degraded-mode policy
  /// Operations completed at each rank (receives; client round trips).
  std::vector<u64> node_ops;
  /// Injection counts from the run's armed plan, indexed by FaultKind.
  std::array<u64, static_cast<u32>(fault::FaultKind::kCount)> fault_fired{};
  SimTime makespan = 0;  // final virtual time of the run

  /// Deterministic (integer-only) text form; what goldens compare.
  std::string render(const Spec& spec) const;
};

/// Execute one spec in its own simulation. Safe to call from sweep jobs:
/// the run shares no mutable state with its siblings.
Report run(Spec spec);

}  // namespace scrnet::workload
