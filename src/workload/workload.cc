#include "workload/workload.h"

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "scrmpi/mpi.h"
#include "sim/simulation.h"

namespace scrnet::workload {

namespace {

/// Per-rank accumulator; ranks are fibers of one simulation, so plain
/// writes into a per-rank slot are race-free. Merged in rank order.
struct RankStats {
  LogHistogram lat;
  u64 ok = 0, timeout = 0, error = 0, retried = 0, aborted = 0;
};

// A sender abandons its remaining ops after this many consecutive
// post-retry failures; a receiver after this many consecutive idle
// timeouts. Keeps partitioned runs short instead of paying the full
// timeout once per remaining op.
constexpr u32 kSendAbortStreak = 2;
constexpr u32 kRecvAbortStreak = 3;

/// One-way latency is measured with a virtual-time stamp in the first 8
/// payload bytes -- sender and receiver share the simulation clock, so
/// the difference is exact (and deterministic).
void store_stamp(std::span<u8> buf, SimTime t) {
  const u64 v = static_cast<u64>(t);
  std::memcpy(buf.data(), &v, sizeof v);
}

u64 one_way_ns(std::span<const u8> buf, SimTime now) {
  u64 v = 0;
  std::memcpy(&v, buf.data(), sizeof v);
  const SimTime sent_at = static_cast<SimTime>(v);
  return static_cast<u64>(now > sent_at ? (now - sent_at) / kNanosecond : 0);
}

/// Destination sequence for every sender, as a pure function of the spec.
/// Every rank computes the same table, so receivers know exactly how many
/// messages to expect without any control traffic.
std::vector<std::vector<u32>> dest_table(const Spec& s) {
  std::vector<std::vector<u32>> t(s.nodes);
  if (s.nodes < 2) return t;
  switch (s.pattern) {
    case Pattern::kIncast:
      for (u32 r = 1; r < s.nodes; ++r) t[r].assign(s.ops, 0);
      break;
    case Pattern::kHotspot:
      for (u32 r = 1; r < s.nodes; ++r) {
        Rng rng(s.seed + 0x9E3779B97F4A7C15ull * (r + 1));
        for (u32 k = 0; k < s.ops; ++k) {
          u32 d = 0;
          if (s.nodes > 2 && !rng.chance(s.hot_fraction)) {
            d = static_cast<u32>(rng.below(s.nodes - 1));
            if (d >= r) ++d;  // uniform over ranks != r
          }
          t[r].push_back(d);
        }
      }
      break;
    case Pattern::kAllToAll:
      for (u32 r = 0; r < s.nodes; ++r)
        for (u32 k = 0; k < s.ops; ++k)
          t[r].push_back((r + 1 + k % (s.nodes - 1)) % s.nodes);
      break;
    case Pattern::kRpc:
      break;  // request/reply pairing, not a broadcast table
  }
  return t;
}

/// True if the rank should stop issuing work; handles pause windows by
/// sleeping until the window ends.
bool crashed_or_wait(sim::Process& p, const fault::FaultPlan* plan, u32 me) {
  if (plan == nullptr) return false;
  for (;;) {
    const SimTime now = p.now();
    if (plan->crashed(me, now)) return true;
    const SimTime until = plan->paused_until(me, now);
    if (until <= now) return false;
    p.delay(until - now);
  }
}

/// Sender/receiver loop shared by incast, hotspot and all-to-all: fire
/// this rank's scripted sends, draining arrivals opportunistically, then
/// block (bounded) for the remaining expected messages.
void run_oneway(sim::Process& p, scrmpi::Mpi& mpi, const Spec& s,
                const std::vector<u32>& mine, u32 expect,
                const fault::FaultPlan* plan, RankStats& st) {
  const scrmpi::Comm& world = mpi.world();
  const u32 me = mpi.engine().rank();
  const u32 msg = std::max<u32>(s.msg_bytes, 8);
  std::vector<u8> payload(msg, 0);
  fill_pattern(payload, me);
  std::vector<u8> rbuf(msg, 0);

  const u32 total = static_cast<u32>(mine.size());
  u32 sent = 0, got = 0;
  u32 send_streak = 0, idle = 0;
  while (sent < total || got < expect) {
    if (crashed_or_wait(p, plan, me)) {
      st.aborted += (total - sent) + (expect - got);
      return;
    }
    if (sent < total) {
      store_stamp(payload, p.now());
      scrmpi::MpiStatus ms =
          mpi.send(payload.data(), msg, scrmpi::Datatype::kByte,
                   static_cast<i32>(mine[sent]), /*tag=*/0, world);
      for (u32 tries = 0; !ms.ok() && tries < s.retries; ++tries) {
        ++st.retried;
        store_stamp(payload, p.now());
        ms = mpi.send(payload.data(), msg, scrmpi::Datatype::kByte,
                      static_cast<i32>(mine[sent]), 0, world);
      }
      ++sent;
      if (ms.ok()) {
        send_streak = 0;
      } else {
        ms.err == StatusCode::kTimedOut ? ++st.timeout : ++st.error;
        if (++send_streak >= kSendAbortStreak) {
          st.aborted += total - sent;
          sent = total;
        }
      }
    }
    // Drain whatever already arrived without blocking, then -- once all
    // sends are out -- block (bounded by op_timeout) for the rest.
    while (got < expect) {
      const auto pr = mpi.iprobe(scrmpi::kAnySource, scrmpi::kAnyTag, world);
      if (!pr) break;
      const scrmpi::MpiStatus ms =
          mpi.recv(rbuf.data(), msg, scrmpi::Datatype::kByte, pr->source,
                   pr->tag, world);
      ++got;
      if (ms.ok()) {
        st.lat.add(one_way_ns(rbuf, p.now()));
        ++st.ok;
        idle = 0;
      } else {
        ++st.error;
      }
    }
    if (sent == total && got < expect) {
      const scrmpi::MpiStatus ms =
          mpi.recv(rbuf.data(), msg, scrmpi::Datatype::kByte,
                   scrmpi::kAnySource, scrmpi::kAnyTag, world);
      if (ms.ok()) {
        st.lat.add(one_way_ns(rbuf, p.now()));
        ++st.ok;
        ++got;
        idle = 0;
      } else if (ms.err == StatusCode::kTimedOut) {
        ++st.timeout;
        if (++idle >= kRecvAbortStreak) {
          st.aborted += expect - got;
          return;
        }
      } else {
        ++st.error;
        ++got;
      }
    }
  }
}

/// Paired request/reply: clients [0, n/2) call servers [n/2, n). The
/// round trip is timed at the client; a timeout on either leg counts once.
void run_rpc(sim::Process& p, scrmpi::Mpi& mpi, const Spec& s,
             const fault::FaultPlan* plan, RankStats& st) {
  const scrmpi::Comm& world = mpi.world();
  const u32 me = mpi.engine().rank();
  const u32 half = s.nodes / 2;
  const u32 req_n = std::max<u32>(s.msg_bytes, 8);
  const u32 rep_n = std::max<u32>(s.reply_bytes, 8);
  if (me >= 2 * half) return;  // odd node count: last rank sits out

  if (me < half) {
    const i32 server = static_cast<i32>(me + half);
    std::vector<u8> req(req_n, 0), reply(rep_n, 0);
    fill_pattern(req, me);
    u32 streak = 0;
    for (u32 k = 0; k < s.ops; ++k) {
      if (crashed_or_wait(p, plan, me)) {
        st.aborted += s.ops - k;
        return;
      }
      const SimTime t0 = p.now();
      scrmpi::MpiStatus ms = mpi.send(req.data(), req_n, scrmpi::Datatype::kByte,
                                      server, static_cast<i32>(k), world);
      for (u32 tries = 0; !ms.ok() && tries < s.retries; ++tries) {
        ++st.retried;
        ms = mpi.send(req.data(), req_n, scrmpi::Datatype::kByte, server,
                      static_cast<i32>(k), world);
      }
      if (ms.ok()) {
        ms = mpi.recv(reply.data(), rep_n, scrmpi::Datatype::kByte, server,
                      static_cast<i32>(k), world);
      }
      if (ms.ok()) {
        st.lat.add(static_cast<u64>((p.now() - t0) / kNanosecond));
        ++st.ok;
        streak = 0;
      } else {
        ms.err == StatusCode::kTimedOut ? ++st.timeout : ++st.error;
        if (++streak >= kSendAbortStreak) {
          st.aborted += s.ops - k - 1;
          return;
        }
      }
    }
  } else {
    const i32 client = static_cast<i32>(me - half);
    std::vector<u8> req(req_n, 0), reply(rep_n, 0);
    fill_pattern(reply, me);
    u32 streak = 0;
    for (u32 k = 0; k < s.ops; ++k) {
      if (crashed_or_wait(p, plan, me)) {
        st.aborted += s.ops - k;
        return;
      }
      scrmpi::MpiStatus ms = mpi.recv(req.data(), req_n, scrmpi::Datatype::kByte,
                                      client, static_cast<i32>(k), world);
      if (!ms.ok()) {
        ms.err == StatusCode::kTimedOut ? ++st.timeout : ++st.error;
        if (++streak >= kRecvAbortStreak) {
          st.aborted += s.ops - k - 1;
          return;
        }
        continue;
      }
      streak = 0;
      ms = mpi.send(reply.data(), rep_n, scrmpi::Datatype::kByte, client,
                    static_cast<i32>(k), world);
      if (!ms.ok())
        ms.err == StatusCode::kTimedOut ? ++st.timeout : ++st.error;
    }
  }
}

}  // namespace

Report run(Spec spec) {
  const auto dests = dest_table(spec);
  std::vector<u32> expect(spec.nodes, 0);
  for (const auto& seq : dests)
    for (u32 d : seq) ++expect[d];

  fault::FaultPlan* plan = spec.faults.empty() ? nullptr : &spec.faults;
  std::vector<RankStats> per(spec.nodes);
  const auto body = [&](sim::Process& p, scrmpi::Mpi& mpi) {
    const u32 me = mpi.engine().rank();
    if (spec.pattern == Pattern::kRpc)
      run_rpc(p, mpi, spec, plan, per[me]);
    else
      run_oneway(p, mpi, spec, dests[me], expect[me], plan, per[me]);
  };

  SimTime end = 0;
  switch (spec.device) {
    case Device::kBbp: {
      harness::ScramnetOptions o;
      o.ring.redundant_ring = spec.redundant_ring;
      o.bbp.slots = spec.bbp_slots;
      o.bbp.poll_timeout = spec.op_timeout;
      o.mpi.op_timeout = spec.op_timeout;
      o.faults = plan;
      end = harness::run_scramnet_mpi(spec.nodes, body, o);
      break;
    }
    case Device::kSock: {
      harness::TcpOptions o;
      o.mpi.op_timeout = spec.op_timeout;
      o.faults = plan;
      end = harness::run_tcp_mpi(spec.nodes, spec.fabric, body, o);
      break;
    }
    case Device::kHybrid: {
      harness::ScramnetOptions so;
      so.ring.redundant_ring = spec.redundant_ring;
      so.bbp.slots = spec.bbp_slots;
      so.bbp.poll_timeout = spec.op_timeout;
      so.mpi.op_timeout = spec.op_timeout;
      so.faults = plan;
      harness::TcpOptions to;
      end = harness::run_hybrid_mpi(spec.nodes, spec.fabric,
                                    spec.hybrid_threshold, body, so, to);
      break;
    }
  }

  Report rep;
  rep.node_ops.assign(spec.nodes, 0);
  for (u32 r = 0; r < spec.nodes; ++r) {
    const RankStats& st = per[r];
    rep.latency.merge(st.lat);
    rep.ops_ok += st.ok;
    rep.ops_timeout += st.timeout;
    rep.ops_error += st.error;
    rep.retried += st.retried;
    rep.aborted += st.aborted;
    rep.node_ops[r] = st.ok;
  }
  if (plan != nullptr) {
    for (u32 k = 0; k < static_cast<u32>(fault::FaultKind::kCount); ++k)
      rep.fault_fired[k] = plan->fired(static_cast<fault::FaultKind>(k));
  }
  rep.makespan = end;
  return rep;
}

std::string Report::render(const Spec& spec) const {
  std::string s;
  s += "[";
  s += spec.name;
  s += "] pattern=";
  s += to_string(spec.pattern);
  s += " device=";
  s += to_string(spec.device);
  if (spec.device != Device::kBbp) {
    s += " fabric=";
    s += harness::to_string(spec.fabric);
  }
  s += " nodes=" + std::to_string(spec.nodes);
  s += " ops=" + std::to_string(spec.ops);
  s += " msg=" + std::to_string(spec.msg_bytes);
  if (spec.pattern == Pattern::kRpc)
    s += " reply=" + std::to_string(spec.reply_bytes);
  if (spec.pattern == Pattern::kHotspot)
    s += " hot_permille=" +
         std::to_string(static_cast<u64>(spec.hot_fraction * 1000.0 + 0.5));
  s += " seed=" + std::to_string(spec.seed);
  s += "\n  ops: ok=" + std::to_string(ops_ok);
  s += " timeout=" + std::to_string(ops_timeout);
  s += " error=" + std::to_string(ops_error);
  s += " retried=" + std::to_string(retried);
  s += " aborted=" + std::to_string(aborted);
  s += "\n  latency_ns: n=" + std::to_string(latency.count());
  s += " p50=" + std::to_string(latency.percentile_permille(500));
  s += " p99=" + std::to_string(latency.percentile_permille(990));
  s += " p999=" + std::to_string(latency.percentile_permille(999));
  s += " max=" + std::to_string(latency.max());
  s += "\n  node_ops:";
  for (u64 n : node_ops) s += " " + std::to_string(n);
  s += "\n  makespan_us=" + std::to_string(makespan / kMicrosecond);
  s += "\n  faults:";
  bool any = false;
  for (u32 k = 0; k < static_cast<u32>(fault::FaultKind::kCount); ++k) {
    if (fault_fired[k] == 0) continue;
    any = true;
    s += " ";
    s += fault::kind_name(static_cast<fault::FaultKind>(k));
    s += "=" + std::to_string(fault_fired[k]);
  }
  if (!any) s += " none";
  s += "\n";
  return s;
}

}  // namespace scrnet::workload
