file(REMOVE_RECURSE
  "CMakeFiles/shm_coordination.dir/shm_coordination.cpp.o"
  "CMakeFiles/shm_coordination.dir/shm_coordination.cpp.o.d"
  "shm_coordination"
  "shm_coordination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shm_coordination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
