# Empty compiler generated dependencies file for shm_coordination.
# This may be replaced when dependencies are built.
