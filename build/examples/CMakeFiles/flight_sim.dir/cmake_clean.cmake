file(REMOVE_RECURSE
  "CMakeFiles/flight_sim.dir/flight_sim.cpp.o"
  "CMakeFiles/flight_sim.dir/flight_sim.cpp.o.d"
  "flight_sim"
  "flight_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flight_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
