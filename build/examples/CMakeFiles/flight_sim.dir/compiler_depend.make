# Empty compiler generated dependencies file for flight_sim.
# This may be replaced when dependencies are built.
