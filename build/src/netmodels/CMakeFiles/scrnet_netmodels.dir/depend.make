# Empty dependencies file for scrnet_netmodels.
# This may be replaced when dependencies are built.
