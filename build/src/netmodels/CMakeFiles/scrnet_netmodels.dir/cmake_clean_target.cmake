file(REMOVE_RECURSE
  "libscrnet_netmodels.a"
)
