
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netmodels/atm.cc" "src/netmodels/CMakeFiles/scrnet_netmodels.dir/atm.cc.o" "gcc" "src/netmodels/CMakeFiles/scrnet_netmodels.dir/atm.cc.o.d"
  "/root/repo/src/netmodels/ethernet.cc" "src/netmodels/CMakeFiles/scrnet_netmodels.dir/ethernet.cc.o" "gcc" "src/netmodels/CMakeFiles/scrnet_netmodels.dir/ethernet.cc.o.d"
  "/root/repo/src/netmodels/myrinet.cc" "src/netmodels/CMakeFiles/scrnet_netmodels.dir/myrinet.cc.o" "gcc" "src/netmodels/CMakeFiles/scrnet_netmodels.dir/myrinet.cc.o.d"
  "/root/repo/src/netmodels/tcp.cc" "src/netmodels/CMakeFiles/scrnet_netmodels.dir/tcp.cc.o" "gcc" "src/netmodels/CMakeFiles/scrnet_netmodels.dir/tcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/scrnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
