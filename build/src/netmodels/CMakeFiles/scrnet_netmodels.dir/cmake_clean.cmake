file(REMOVE_RECURSE
  "CMakeFiles/scrnet_netmodels.dir/atm.cc.o"
  "CMakeFiles/scrnet_netmodels.dir/atm.cc.o.d"
  "CMakeFiles/scrnet_netmodels.dir/ethernet.cc.o"
  "CMakeFiles/scrnet_netmodels.dir/ethernet.cc.o.d"
  "CMakeFiles/scrnet_netmodels.dir/myrinet.cc.o"
  "CMakeFiles/scrnet_netmodels.dir/myrinet.cc.o.d"
  "CMakeFiles/scrnet_netmodels.dir/tcp.cc.o"
  "CMakeFiles/scrnet_netmodels.dir/tcp.cc.o.d"
  "libscrnet_netmodels.a"
  "libscrnet_netmodels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrnet_netmodels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
