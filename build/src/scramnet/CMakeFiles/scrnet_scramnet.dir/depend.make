# Empty dependencies file for scrnet_scramnet.
# This may be replaced when dependencies are built.
