file(REMOVE_RECURSE
  "libscrnet_scramnet.a"
)
