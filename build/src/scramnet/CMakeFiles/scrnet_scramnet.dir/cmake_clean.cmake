file(REMOVE_RECURSE
  "CMakeFiles/scrnet_scramnet.dir/hierarchy.cc.o"
  "CMakeFiles/scrnet_scramnet.dir/hierarchy.cc.o.d"
  "CMakeFiles/scrnet_scramnet.dir/ring.cc.o"
  "CMakeFiles/scrnet_scramnet.dir/ring.cc.o.d"
  "CMakeFiles/scrnet_scramnet.dir/thread_backend.cc.o"
  "CMakeFiles/scrnet_scramnet.dir/thread_backend.cc.o.d"
  "libscrnet_scramnet.a"
  "libscrnet_scramnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrnet_scramnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
