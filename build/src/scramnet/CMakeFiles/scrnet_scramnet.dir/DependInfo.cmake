
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scramnet/hierarchy.cc" "src/scramnet/CMakeFiles/scrnet_scramnet.dir/hierarchy.cc.o" "gcc" "src/scramnet/CMakeFiles/scrnet_scramnet.dir/hierarchy.cc.o.d"
  "/root/repo/src/scramnet/ring.cc" "src/scramnet/CMakeFiles/scrnet_scramnet.dir/ring.cc.o" "gcc" "src/scramnet/CMakeFiles/scrnet_scramnet.dir/ring.cc.o.d"
  "/root/repo/src/scramnet/thread_backend.cc" "src/scramnet/CMakeFiles/scrnet_scramnet.dir/thread_backend.cc.o" "gcc" "src/scramnet/CMakeFiles/scrnet_scramnet.dir/thread_backend.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/scrnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
