# Empty compiler generated dependencies file for scrnet_bbp.
# This may be replaced when dependencies are built.
