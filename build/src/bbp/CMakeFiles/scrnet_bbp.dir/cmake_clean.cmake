file(REMOVE_RECURSE
  "CMakeFiles/scrnet_bbp.dir/endpoint.cc.o"
  "CMakeFiles/scrnet_bbp.dir/endpoint.cc.o.d"
  "libscrnet_bbp.a"
  "libscrnet_bbp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrnet_bbp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
