file(REMOVE_RECURSE
  "libscrnet_bbp.a"
)
