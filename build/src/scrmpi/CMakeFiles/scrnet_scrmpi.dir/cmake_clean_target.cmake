file(REMOVE_RECURSE
  "libscrnet_scrmpi.a"
)
