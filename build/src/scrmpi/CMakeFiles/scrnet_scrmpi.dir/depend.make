# Empty dependencies file for scrnet_scrmpi.
# This may be replaced when dependencies are built.
