file(REMOVE_RECURSE
  "CMakeFiles/scrnet_scrmpi.dir/adi.cc.o"
  "CMakeFiles/scrnet_scrmpi.dir/adi.cc.o.d"
  "CMakeFiles/scrnet_scrmpi.dir/ch_bbp.cc.o"
  "CMakeFiles/scrnet_scrmpi.dir/ch_bbp.cc.o.d"
  "CMakeFiles/scrnet_scrmpi.dir/ch_hybrid.cc.o"
  "CMakeFiles/scrnet_scrmpi.dir/ch_hybrid.cc.o.d"
  "CMakeFiles/scrnet_scrmpi.dir/ch_sock.cc.o"
  "CMakeFiles/scrnet_scrmpi.dir/ch_sock.cc.o.d"
  "CMakeFiles/scrnet_scrmpi.dir/mpi.cc.o"
  "CMakeFiles/scrnet_scrmpi.dir/mpi.cc.o.d"
  "libscrnet_scrmpi.a"
  "libscrnet_scrmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrnet_scrmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
