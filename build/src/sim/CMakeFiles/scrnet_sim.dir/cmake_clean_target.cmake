file(REMOVE_RECURSE
  "libscrnet_sim.a"
)
