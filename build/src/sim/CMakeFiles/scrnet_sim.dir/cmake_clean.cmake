file(REMOVE_RECURSE
  "CMakeFiles/scrnet_sim.dir/simulation.cc.o"
  "CMakeFiles/scrnet_sim.dir/simulation.cc.o.d"
  "libscrnet_sim.a"
  "libscrnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrnet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
