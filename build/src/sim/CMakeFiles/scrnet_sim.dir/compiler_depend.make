# Empty compiler generated dependencies file for scrnet_sim.
# This may be replaced when dependencies are built.
