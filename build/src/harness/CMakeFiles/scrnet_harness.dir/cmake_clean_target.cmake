file(REMOVE_RECURSE
  "libscrnet_harness.a"
)
