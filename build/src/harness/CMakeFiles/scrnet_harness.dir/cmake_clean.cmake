file(REMOVE_RECURSE
  "CMakeFiles/scrnet_harness.dir/benchops.cc.o"
  "CMakeFiles/scrnet_harness.dir/benchops.cc.o.d"
  "CMakeFiles/scrnet_harness.dir/cluster.cc.o"
  "CMakeFiles/scrnet_harness.dir/cluster.cc.o.d"
  "libscrnet_harness.a"
  "libscrnet_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrnet_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
