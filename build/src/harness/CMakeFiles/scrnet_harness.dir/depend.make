# Empty dependencies file for scrnet_harness.
# This may be replaced when dependencies are built.
