# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/ring_test[1]_include.cmake")
include("/root/repo/build/tests/bbp_test[1]_include.cmake")
include("/root/repo/build/tests/netmodels_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/bbp_property_test[1]_include.cmake")
include("/root/repo/build/tests/bbp_interrupt_test[1]_include.cmake")
include("/root/repo/build/tests/hybrid_test[1]_include.cmake")
include("/root/repo/build/tests/adi_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_threads_test[1]_include.cmake")
include("/root/repo/build/tests/scrshm_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/dma_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_ext_test[1]_include.cmake")
include("/root/repo/build/tests/netmodels_contention_test[1]_include.cmake")
include("/root/repo/build/tests/sim_stress_test[1]_include.cmake")
