# Empty dependencies file for mpi_ext_test.
# This may be replaced when dependencies are built.
