file(REMOVE_RECURSE
  "CMakeFiles/bbp_interrupt_test.dir/bbp_interrupt_test.cc.o"
  "CMakeFiles/bbp_interrupt_test.dir/bbp_interrupt_test.cc.o.d"
  "bbp_interrupt_test"
  "bbp_interrupt_test.pdb"
  "bbp_interrupt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbp_interrupt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
