
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bbp_interrupt_test.cc" "tests/CMakeFiles/bbp_interrupt_test.dir/bbp_interrupt_test.cc.o" "gcc" "tests/CMakeFiles/bbp_interrupt_test.dir/bbp_interrupt_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bbp/CMakeFiles/scrnet_bbp.dir/DependInfo.cmake"
  "/root/repo/build/src/scramnet/CMakeFiles/scrnet_scramnet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scrnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
