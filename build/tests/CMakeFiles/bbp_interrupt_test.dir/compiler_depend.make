# Empty compiler generated dependencies file for bbp_interrupt_test.
# This may be replaced when dependencies are built.
