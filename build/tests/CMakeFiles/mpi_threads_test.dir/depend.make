# Empty dependencies file for mpi_threads_test.
# This may be replaced when dependencies are built.
