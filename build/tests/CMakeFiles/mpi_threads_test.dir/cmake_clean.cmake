file(REMOVE_RECURSE
  "CMakeFiles/mpi_threads_test.dir/mpi_threads_test.cc.o"
  "CMakeFiles/mpi_threads_test.dir/mpi_threads_test.cc.o.d"
  "mpi_threads_test"
  "mpi_threads_test.pdb"
  "mpi_threads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_threads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
