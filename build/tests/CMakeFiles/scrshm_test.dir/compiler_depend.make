# Empty compiler generated dependencies file for scrshm_test.
# This may be replaced when dependencies are built.
