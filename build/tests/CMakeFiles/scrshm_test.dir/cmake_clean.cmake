file(REMOVE_RECURSE
  "CMakeFiles/scrshm_test.dir/scrshm_test.cc.o"
  "CMakeFiles/scrshm_test.dir/scrshm_test.cc.o.d"
  "scrshm_test"
  "scrshm_test.pdb"
  "scrshm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrshm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
