# Empty compiler generated dependencies file for adi_test.
# This may be replaced when dependencies are built.
