file(REMOVE_RECURSE
  "CMakeFiles/adi_test.dir/adi_test.cc.o"
  "CMakeFiles/adi_test.dir/adi_test.cc.o.d"
  "adi_test"
  "adi_test.pdb"
  "adi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
