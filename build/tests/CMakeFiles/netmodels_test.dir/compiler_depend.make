# Empty compiler generated dependencies file for netmodels_test.
# This may be replaced when dependencies are built.
