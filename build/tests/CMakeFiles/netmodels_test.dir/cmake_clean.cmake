file(REMOVE_RECURSE
  "CMakeFiles/netmodels_test.dir/netmodels_test.cc.o"
  "CMakeFiles/netmodels_test.dir/netmodels_test.cc.o.d"
  "netmodels_test"
  "netmodels_test.pdb"
  "netmodels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmodels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
