file(REMOVE_RECURSE
  "CMakeFiles/netmodels_contention_test.dir/netmodels_contention_test.cc.o"
  "CMakeFiles/netmodels_contention_test.dir/netmodels_contention_test.cc.o.d"
  "netmodels_contention_test"
  "netmodels_contention_test.pdb"
  "netmodels_contention_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmodels_contention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
