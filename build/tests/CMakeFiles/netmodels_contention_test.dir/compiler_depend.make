# Empty compiler generated dependencies file for netmodels_contention_test.
# This may be replaced when dependencies are built.
