# Empty dependencies file for bbp_property_test.
# This may be replaced when dependencies are built.
