file(REMOVE_RECURSE
  "CMakeFiles/bbp_property_test.dir/bbp_property_test.cc.o"
  "CMakeFiles/bbp_property_test.dir/bbp_property_test.cc.o.d"
  "bbp_property_test"
  "bbp_property_test.pdb"
  "bbp_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbp_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
