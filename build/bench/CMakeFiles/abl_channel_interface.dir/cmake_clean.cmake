file(REMOVE_RECURSE
  "CMakeFiles/abl_channel_interface.dir/abl_channel_interface.cc.o"
  "CMakeFiles/abl_channel_interface.dir/abl_channel_interface.cc.o.d"
  "abl_channel_interface"
  "abl_channel_interface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_channel_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
