# Empty dependencies file for abl_channel_interface.
# This may be replaced when dependencies are built.
