file(REMOVE_RECURSE
  "CMakeFiles/abl_ring_scaling.dir/abl_ring_scaling.cc.o"
  "CMakeFiles/abl_ring_scaling.dir/abl_ring_scaling.cc.o.d"
  "abl_ring_scaling"
  "abl_ring_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ring_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
