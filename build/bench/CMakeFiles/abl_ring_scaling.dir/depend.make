# Empty dependencies file for abl_ring_scaling.
# This may be replaced when dependencies are built.
