file(REMOVE_RECURSE
  "CMakeFiles/abl_allreduce.dir/abl_allreduce.cc.o"
  "CMakeFiles/abl_allreduce.dir/abl_allreduce.cc.o.d"
  "abl_allreduce"
  "abl_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
