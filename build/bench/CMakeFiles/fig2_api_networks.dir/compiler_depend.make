# Empty compiler generated dependencies file for fig2_api_networks.
# This may be replaced when dependencies are built.
