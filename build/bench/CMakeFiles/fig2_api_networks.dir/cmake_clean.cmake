file(REMOVE_RECURSE
  "CMakeFiles/fig2_api_networks.dir/fig2_api_networks.cc.o"
  "CMakeFiles/fig2_api_networks.dir/fig2_api_networks.cc.o.d"
  "fig2_api_networks"
  "fig2_api_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_api_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
