# Empty dependencies file for fig5_mpi_bcast.
# This may be replaced when dependencies are built.
