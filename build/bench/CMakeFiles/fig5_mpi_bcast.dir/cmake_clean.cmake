file(REMOVE_RECURSE
  "CMakeFiles/fig5_mpi_bcast.dir/fig5_mpi_bcast.cc.o"
  "CMakeFiles/fig5_mpi_bcast.dir/fig5_mpi_bcast.cc.o.d"
  "fig5_mpi_bcast"
  "fig5_mpi_bcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_mpi_bcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
