file(REMOVE_RECURSE
  "CMakeFiles/fig3_mpi_networks.dir/fig3_mpi_networks.cc.o"
  "CMakeFiles/fig3_mpi_networks.dir/fig3_mpi_networks.cc.o.d"
  "fig3_mpi_networks"
  "fig3_mpi_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_mpi_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
