# Empty compiler generated dependencies file for fig3_mpi_networks.
# This may be replaced when dependencies are built.
