# Empty dependencies file for microbench_simcore.
# This may be replaced when dependencies are built.
