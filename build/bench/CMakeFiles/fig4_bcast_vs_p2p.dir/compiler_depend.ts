# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig4_bcast_vs_p2p.
