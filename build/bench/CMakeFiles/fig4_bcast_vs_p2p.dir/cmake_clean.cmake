file(REMOVE_RECURSE
  "CMakeFiles/fig4_bcast_vs_p2p.dir/fig4_bcast_vs_p2p.cc.o"
  "CMakeFiles/fig4_bcast_vs_p2p.dir/fig4_bcast_vs_p2p.cc.o.d"
  "fig4_bcast_vs_p2p"
  "fig4_bcast_vs_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_bcast_vs_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
