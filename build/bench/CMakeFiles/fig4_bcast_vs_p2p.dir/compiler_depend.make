# Empty compiler generated dependencies file for fig4_bcast_vs_p2p.
# This may be replaced when dependencies are built.
