# Empty dependencies file for abl_ethernet_switch.
# This may be replaced when dependencies are built.
