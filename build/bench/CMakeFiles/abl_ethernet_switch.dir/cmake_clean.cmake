file(REMOVE_RECURSE
  "CMakeFiles/abl_ethernet_switch.dir/abl_ethernet_switch.cc.o"
  "CMakeFiles/abl_ethernet_switch.dir/abl_ethernet_switch.cc.o.d"
  "abl_ethernet_switch"
  "abl_ethernet_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ethernet_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
