file(REMOVE_RECURSE
  "CMakeFiles/abl_packet_mode.dir/abl_packet_mode.cc.o"
  "CMakeFiles/abl_packet_mode.dir/abl_packet_mode.cc.o.d"
  "abl_packet_mode"
  "abl_packet_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_packet_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
