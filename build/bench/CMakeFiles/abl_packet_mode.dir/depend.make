# Empty dependencies file for abl_packet_mode.
# This may be replaced when dependencies are built.
