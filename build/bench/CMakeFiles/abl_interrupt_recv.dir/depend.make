# Empty dependencies file for abl_interrupt_recv.
# This may be replaced when dependencies are built.
