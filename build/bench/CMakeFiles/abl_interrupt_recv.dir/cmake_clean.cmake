file(REMOVE_RECURSE
  "CMakeFiles/abl_interrupt_recv.dir/abl_interrupt_recv.cc.o"
  "CMakeFiles/abl_interrupt_recv.dir/abl_interrupt_recv.cc.o.d"
  "abl_interrupt_recv"
  "abl_interrupt_recv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_interrupt_recv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
