
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig1_latency.cc" "bench/CMakeFiles/fig1_latency.dir/fig1_latency.cc.o" "gcc" "bench/CMakeFiles/fig1_latency.dir/fig1_latency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/scrnet_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/scrmpi/CMakeFiles/scrnet_scrmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/bbp/CMakeFiles/scrnet_bbp.dir/DependInfo.cmake"
  "/root/repo/build/src/netmodels/CMakeFiles/scrnet_netmodels.dir/DependInfo.cmake"
  "/root/repo/build/src/scramnet/CMakeFiles/scrnet_scramnet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scrnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
