# Empty dependencies file for tbl_ring_throughput.
# This may be replaced when dependencies are built.
