file(REMOVE_RECURSE
  "CMakeFiles/tbl_ring_throughput.dir/tbl_ring_throughput.cc.o"
  "CMakeFiles/tbl_ring_throughput.dir/tbl_ring_throughput.cc.o.d"
  "tbl_ring_throughput"
  "tbl_ring_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_ring_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
