file(REMOVE_RECURSE
  "CMakeFiles/fig6_barrier.dir/fig6_barrier.cc.o"
  "CMakeFiles/fig6_barrier.dir/fig6_barrier.cc.o.d"
  "fig6_barrier"
  "fig6_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
