# Empty dependencies file for fig6_barrier.
# This may be replaced when dependencies are built.
