# Empty compiler generated dependencies file for abl_dma.
# This may be replaced when dependencies are built.
