file(REMOVE_RECURSE
  "CMakeFiles/abl_dma.dir/abl_dma.cc.o"
  "CMakeFiles/abl_dma.dir/abl_dma.cc.o.d"
  "abl_dma"
  "abl_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
